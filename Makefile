GO ?= go
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
LDFLAGS := -ldflags "-X cludistream/internal/buildinfo.Version=$(VERSION) -X cludistream/internal/buildinfo.Commit=$(COMMIT)"

.PHONY: all build vet lint test race race-em race-parallel race-score race-query alloc-gate alloc-gate-query recover check tier1 fuzz bench bench-compare obs-demo trace-demo dst dst-tree dst-long

all: check

build:
	$(GO) build $(LDFLAGS) ./...

vet:
	$(GO) vet ./...

# Static hygiene gate: vet plus gofmt, failing loudly on any unformatted
# file instead of silently reformatting it.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# The chaos and concurrency suites must be race-clean.
race:
	$(GO) test -race ./...

# Focused race pass over the parallel fused E-step and everything that
# embeds it (sites score chunks through it, the goroutine-per-site layer
# pins Workers=1 on top of it).
race-em:
	$(GO) test -race ./internal/em/ ./internal/gaussian/ ./internal/parallel/

# Sharded-apply determinism and Feed/Close lifecycle races, run twice so
# goroutine interleavings get a second roll of the dice.
race-parallel:
	$(GO) test -race -run 'TestShardedApplyMatchesMutex|TestFeedCloseConcurrencyHammer|TestQueueDepthGauges' -count 2 ./internal/parallel/

# The sublinear scoring hot path under the race detector at several
# GOMAXPROCS settings: the per-model score index builds lazily on first
# use and the pruned/shared/incremental parity suites hammer it.
race-score:
	for procs in 1 2 4; do \
		GOMAXPROCS=$$procs $(GO) test -race -count=1 \
		  -run 'TestScoreIndexConcurrentBuild|TestPrunedPathBitIdenticalToExact|TestPrunedParityQuick|TestIncrementalRemergeMatchesExact' \
		  ./internal/site/ ./internal/gaussian/ ./internal/coordinator/ || exit 1; \
	done

# The RCU query tier under the race detector at several GOMAXPROCS
# settings: concurrent readers hammer Classify/LogDensity/TopK while a
# writer keeps ingesting and republishing snapshots, plus the deep-copy
# immutability pin.
race-query:
	for procs in 1 2 4; do \
		GOMAXPROCS=$$procs $(GO) test -race -count=1 \
		  -run 'TestQueryRaceHammer|TestSnapshotImmutableUnderIngest' \
		  ./internal/query/ || exit 1; \
	done

# The query read path must not allocate: Classify, LogDensity, TopK and
# Current are all asserted at 0 allocs/op via testing.AllocsPerRun.
alloc-gate-query:
	$(GO) test -run 'TestQueryReadPathZeroAlloc' -count=1 ./internal/query/

# Steady-state ingest must not allocate: the benchmark itself asserts
# 0 allocs/record via testing.AllocsPerRun before timing, so a handful of
# iterations is enough to enforce the gate. The regex is a prefix match,
# so it covers both the exact-path and the K=16 pruned-path benchmarks —
# the latter gates the shared-stats workspace and bound accumulators.
alloc-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkSiteSteadyState' -benchtime 100x .

# Crash-recovery gate: the coordinator is killed mid-merge under 20%
# message loss and must recover bit-identical state from its checkpoint +
# WAL store — in-process (chaos test) and across a real TCP server
# restart with the reconnect handshake.
recover:
	$(GO) test -race -run 'TestChaosCoordinatorCrashRecovery' .
	$(GO) test -race -run 'TestServerRestartRecoveryOverTCP|TestHandshakePrunesRecoveredSuffix' ./internal/netio/

# Full pre-merge gate.
check: build lint race-em race-parallel race-score race-query alloc-gate alloc-gate-query recover race dst dst-tree

# Deterministic simulation testing (internal/dst): sweep seeded
# whole-system scenarios — random deployments, drift programs, and fault
# schedules — under the full invariant suite. A failure prints the seed
# and writes a replayable artifact; `go run ./cmd/dst replay -seed N`
# reproduces it bit-identically.
dst:
	$(GO) run ./cmd/dst run -seeds 150

# Tree-topology DST: random 1-3-layer trees of 100+ sites with
# heterogeneous links, interior-node partitions, and aggregator
# crash/recovery, checked hop by hop (per-layer exactly-once, Theorem-3
# byte/memory bounds, tree-vs-flat equivalence). Seeds fan out across
# cores; `go run ./cmd/dst replay -tree -seed N` reproduces a failure.
dst-tree:
	$(GO) run ./cmd/dst run -tree -seeds 150

# Nightly depth: more seeds, larger deployments and drift programs, and
# tree topologies up to 1000 sites and 3 aggregator layers.
dst-long:
	$(GO) run ./cmd/dst run -seeds 500 -long
	$(GO) run ./cmd/dst run -seeds 1500
	$(GO) run ./cmd/dst run -tree -long -seeds 100

# The repo's minimal health check (see ROADMAP.md).
tier1:
	$(GO) build ./... && $(GO) test ./...

# Short fuzz pass over the wire decoders, the frame/ack protocol, and the
# durable formats (site archive, coordinator checkpoint, WAL).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/transport/
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=10s ./internal/netio/
	$(GO) test -run=^$$ -fuzz=FuzzReadAck -fuzztime=5s ./internal/netio/
	$(GO) test -run=^$$ -fuzz=FuzzLoad$$ -fuzztime=10s ./internal/persist/
	$(GO) test -run=^$$ -fuzz=FuzzLoadCoordinatorState -fuzztime=10s ./internal/persist/
	$(GO) test -run=^$$ -fuzz=FuzzReadWAL -fuzztime=10s ./internal/persist/

# Machine-readable benchmark snapshot: one pass over every figure
# reproduction (-benchtime 1x — each figure is a full experiment) plus the
# hot-path micro-benchmarks, converted to JSON. Commit the refreshed file
# when performance-relevant code changes.
bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkFig|BenchmarkAblation' -benchtime 1x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkMixture|BenchmarkEMFit|BenchmarkSite|BenchmarkSystem|BenchmarkCholesky|BenchmarkFitMerge|BenchmarkSMEM|BenchmarkScore|BenchmarkPosterior|BenchmarkQuadForm|BenchmarkTelemetry|BenchmarkMultiTest|BenchmarkRemerge' -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkQuery' -benchmem ./internal/query/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkTreeLoad' -benchtime 1x ./internal/tree/ ; } \
	  | tee /dev/stderr | $(GO) run $(LDFLAGS) ./cmd/benchjson > BENCH_quick.json

# Regression check against the committed snapshot: rerun the hot-path
# micro-benchmarks (skipping the slow figure reproductions), convert to
# JSON, and diff ns/op against BENCH_quick.json. Fails when any shared
# benchmark slowed down by more than 10%; figure benchmarks present only
# in the snapshot show up as informational "(no baseline)" rows.
bench-compare:
	@tmp=$$(mktemp) && \
	{ $(GO) test -run '^$$' -bench 'BenchmarkMixture|BenchmarkEMFit|BenchmarkSite|BenchmarkSystem|BenchmarkCholesky|BenchmarkFitMerge|BenchmarkSMEM|BenchmarkScore|BenchmarkPosterior|BenchmarkQuadForm|BenchmarkTelemetry|BenchmarkMultiTest|BenchmarkRemerge' -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkQuery' -benchmem ./internal/query/ ; } \
	  | $(GO) run $(LDFLAGS) ./cmd/benchjson > $$tmp && \
	$(GO) run ./cmd/benchjson -compare BENCH_quick.json $$tmp; \
	rc=$$?; rm -f $$tmp; exit $$rc

# Live observability demo: run the distributed example with debug
# endpoints up, snapshot them mid-flight with obsdump, and print the
# event journal. Everything runs on loopback and exits on its own.
obs-demo:
	$(GO) run ./examples/distributed -debug-addr 127.0.0.1:7171 -linger 4s & \
	sleep 2.5; \
	$(GO) run ./cmd/obsdump -addr 127.0.0.1:7171; \
	echo; echo "--- event journal ---"; \
	$(GO) run ./cmd/obsdump -addr 127.0.0.1:7171 -events -limit 20; \
	wait

# Tracing demo: same distributed example, but the mid-flight snapshot is
# the causal-trace view — cumulative span counts plus the slowest
# ingest→visible chunk traces rendered as span waterfalls.
trace-demo:
	$(GO) run ./examples/distributed -debug-addr 127.0.0.1:7171 -linger 4s & \
	sleep 2.5; \
	$(GO) run ./cmd/obsdump -addr 127.0.0.1:7171 trace; \
	wait
