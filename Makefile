GO ?= go
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X cludistream/internal/buildinfo.Version=$(VERSION)"

.PHONY: all build vet lint test race race-em check tier1 fuzz bench obs-demo

all: check

build:
	$(GO) build $(LDFLAGS) ./...

vet:
	$(GO) vet ./...

# Static hygiene gate: vet plus gofmt, failing loudly on any unformatted
# file instead of silently reformatting it.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# The chaos and concurrency suites must be race-clean.
race:
	$(GO) test -race ./...

# Focused race pass over the parallel fused E-step and everything that
# embeds it (sites score chunks through it, the goroutine-per-site layer
# pins Workers=1 on top of it).
race-em:
	$(GO) test -race ./internal/em/ ./internal/gaussian/ ./internal/parallel/

# Full pre-merge gate.
check: build lint race-em race

# The repo's minimal health check (see ROADMAP.md).
tier1:
	$(GO) build ./... && $(GO) test ./...

# Short fuzz pass over the wire decoders and the frame/ack protocol.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/transport/
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=10s ./internal/netio/
	$(GO) test -run=^$$ -fuzz=FuzzReadAck -fuzztime=5s ./internal/netio/

# Machine-readable benchmark snapshot: one pass over every figure
# reproduction (-benchtime 1x — each figure is a full experiment) plus the
# hot-path micro-benchmarks, converted to JSON. Commit the refreshed file
# when performance-relevant code changes.
bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkFig|BenchmarkAblation' -benchtime 1x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkMixture|BenchmarkEMFit|BenchmarkSite|BenchmarkSystem|BenchmarkCholesky|BenchmarkFitMerge|BenchmarkSMEM|BenchmarkScore|BenchmarkPosterior|BenchmarkQuadForm|BenchmarkTelemetry' -benchmem . ; } \
	  | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_quick.json

# Live observability demo: run the distributed example with debug
# endpoints up, snapshot them mid-flight with obsdump, and print the
# event journal. Everything runs on loopback and exits on its own.
obs-demo:
	$(GO) run ./examples/distributed -debug-addr 127.0.0.1:7171 -linger 4s & \
	sleep 2.5; \
	$(GO) run ./cmd/obsdump -addr 127.0.0.1:7171; \
	echo; echo "--- event journal ---"; \
	$(GO) run ./cmd/obsdump -addr 127.0.0.1:7171 -events -limit 20; \
	wait
