GO ?= go

.PHONY: all build vet test race race-em check tier1 fuzz bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The chaos and concurrency suites must be race-clean.
race:
	$(GO) test -race ./...

# Focused race pass over the parallel fused E-step and everything that
# embeds it (sites score chunks through it, the goroutine-per-site layer
# pins Workers=1 on top of it).
race-em:
	$(GO) test -race ./internal/em/ ./internal/gaussian/ ./internal/parallel/

# Full pre-merge gate.
check: build vet race-em race

# The repo's minimal health check (see ROADMAP.md).
tier1:
	$(GO) build ./... && $(GO) test ./...

# Short fuzz pass over the wire decoders and the frame/ack protocol.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/transport/
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=10s ./internal/netio/
	$(GO) test -run=^$$ -fuzz=FuzzReadAck -fuzztime=5s ./internal/netio/

# Machine-readable benchmark snapshot: one pass over every figure
# reproduction (-benchtime 1x — each figure is a full experiment) plus the
# hot-path micro-benchmarks, converted to JSON. Commit the refreshed file
# when performance-relevant code changes.
bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkFig|BenchmarkAblation' -benchtime 1x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkMixture|BenchmarkEMFit|BenchmarkSite|BenchmarkSystem|BenchmarkCholesky|BenchmarkFitMerge|BenchmarkSMEM|BenchmarkScore|BenchmarkPosterior|BenchmarkQuadForm' -benchmem . ; } \
	  | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_quick.json
