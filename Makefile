GO ?= go

.PHONY: all build vet test race check tier1 fuzz

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The chaos and concurrency suites must be race-clean.
race:
	$(GO) test -race ./...

# Full pre-merge gate.
check: build vet race

# The repo's minimal health check (see ROADMAP.md).
tier1:
	$(GO) build ./... && $(GO) test ./...

# Short fuzz pass over the wire decoders and the frame/ack protocol.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/transport/
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=10s ./internal/netio/
	$(GO) test -run=^$$ -fuzz=FuzzReadAck -fuzztime=5s ./internal/netio/
