package cludistream_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each BenchmarkFigN
// executes the corresponding experiment at the Quick profile and reports
// figure-specific metrics (bytes, ratios, average log-likelihoods) through
// b.ReportMetric, so a bench run doubles as a reproduction report. The
// micro-benchmarks at the bottom cover the hot paths the figures aggregate.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/coordinator"
	"cludistream/internal/em"
	"cludistream/internal/experiments"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/smem"
	"cludistream/internal/stream"
	"cludistream/internal/telemetry"

	cludistream "cludistream"
)

// nan returns NaN without importing math at every use site.
func nan() float64 { return math.NaN() }

// benchParams returns the Quick profile with a bench-stable seed.
func benchParams() experiments.Params {
	p := experiments.Quick()
	p.Seed = 1
	return p
}

// runFigure executes one experiment per iteration and lets the caller
// export headline metrics from the final table.
func runFigure(b *testing.B, run func(experiments.Params) (*experiments.Table, error), report func(*testing.B, *experiments.Table)) {
	b.Helper()
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tb, err := run(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		last = tb
	}
	if report != nil && last != nil {
		report(b, last)
	}
}

func BenchmarkFig1MergeCriterion(b *testing.B) {
	runFigure(b, func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Fig1(p, true)
	}, nil)
}

func BenchmarkFig2CommunicationCost(b *testing.B) {
	runFigure(b, experiments.Fig2a, func(b *testing.B, tb *experiments.Table) {
		last := tb.Rows[len(tb.Rows)-1]
		b.ReportMetric(last[1], "clud-bytes")
		b.ReportMetric(last[2], "sem-bytes")
		if last[1] > 0 {
			b.ReportMetric(last[2]/last[1], "sem/clud-ratio")
		}
	})
}

func BenchmarkFig2bCommunicationCostPd(b *testing.B) {
	runFigure(b, experiments.Fig2b, func(b *testing.B, tb *experiments.Table) {
		last := tb.Rows[len(tb.Rows)-1]
		b.ReportMetric(last[1], "clud-bytes-pd0.1")
		b.ReportMetric(last[3], "clud-bytes-pd0.5")
		b.ReportMetric(last[4], "sem-bytes")
	})
}

func BenchmarkFig3Histograms(b *testing.B) {
	runFigure(b, experiments.Fig3, nil)
}

func BenchmarkFig4NoiseRobustness(b *testing.B) {
	runFigure(b, experiments.Fig4, nil)
}

func BenchmarkFig5HorizonQuality(b *testing.B) {
	runFigure(b, experiments.Fig5, func(b *testing.B, tb *experiments.Table) {
		last := tb.Rows[len(tb.Rows)-1]
		b.ReportMetric(last[1], "clud-avgLL")
		b.ReportMetric(last[2], "sem-avgLL")
	})
}

func BenchmarkFig6LandmarkQuality(b *testing.B) {
	runFigure(b, experiments.Fig6, func(b *testing.B, tb *experiments.Table) {
		last := tb.Rows[len(tb.Rows)-1]
		b.ReportMetric(last[1], "clud-avgLL")
		b.ReportMetric(last[2], "sem-avgLL")
		b.ReportMetric(last[3], "sampling-avgLL")
	})
}

func BenchmarkFig7CoordinatorQuality(b *testing.B) {
	runFigure(b, func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Fig7(p, false)
	}, func(b *testing.B, tb *experiments.Table) {
		last := tb.Rows[len(tb.Rows)-1]
		b.ReportMetric(last[1], "clud-avgLL")
		b.ReportMetric(last[2], "central-sem-avgLL")
	})
}

func BenchmarkFig8Throughput(b *testing.B) {
	runFigure(b, func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Fig8(p, false)
	}, func(b *testing.B, tb *experiments.Table) {
		last := tb.Rows[len(tb.Rows)-1]
		b.ReportMetric(last[0]/last[1], "clud-updates/s")
		b.ReportMetric(last[0]/last[2], "sem-updates/s")
	})
}

func BenchmarkFig9aVaryK(b *testing.B) {
	runFigure(b, experiments.Fig9a, nil)
}

func BenchmarkFig9bVaryD(b *testing.B) {
	runFigure(b, experiments.Fig9b, nil)
}

func BenchmarkFig10Memory(b *testing.B) {
	runFigure(b, experiments.Fig10a, func(b *testing.B, tb *experiments.Table) {
		last := tb.Rows[len(tb.Rows)-1]
		b.ReportMetric(last[1], "clud-bytes")
		b.ReportMetric(last[2], "sem-bytes")
	})
}

func BenchmarkFig10bMemoryModel(b *testing.B) {
	runFigure(b, experiments.Fig10b, nil)
}

func BenchmarkFig11VaryEpsilon(b *testing.B) {
	runFigure(b, experiments.Fig11, nil)
}

func BenchmarkFig12VaryDelta(b *testing.B) {
	runFigure(b, experiments.Fig12, nil)
}

func BenchmarkFig13VaryCmax(b *testing.B) {
	runFigure(b, experiments.Fig13, func(b *testing.B, tb *experiments.Table) {
		b.ReportMetric(tb.Rows[0][2], "em-runs-cmax1")
		b.ReportMetric(tb.Rows[3][2], "em-runs-cmax4")
	})
}

func BenchmarkFig14VaryPd(b *testing.B) {
	runFigure(b, experiments.Fig14, func(b *testing.B, tb *experiments.Table) {
		b.ReportMetric(tb.Rows[0][1], "sec-pd0.1")
		b.ReportMetric(tb.Rows[len(tb.Rows)-1][1], "sec-pd1.0")
	})
}

func BenchmarkAblationAlwaysCluster(b *testing.B) {
	runFigure(b, experiments.AblationTestAndCluster, func(b *testing.B, tb *experiments.Table) {
		b.ReportMetric(tb.Rows[0][3], "speedup-pd0.1")
	})
}

func BenchmarkAblationMergeFit(b *testing.B) {
	runFigure(b, experiments.AblationMergeFit, func(b *testing.B, tb *experiments.Table) {
		b.ReportMetric(tb.Rows[0][0], "moment-L1")
		b.ReportMetric(tb.Rows[0][1], "simplex-L1")
	})
}

func BenchmarkAblationCovType(b *testing.B) {
	runFigure(b, experiments.AblationCovType, nil)
}

func BenchmarkAblationTestStatistic(b *testing.B) {
	runFigure(b, experiments.AblationSharpTest, nil)
}

func BenchmarkAblationVsDEM(b *testing.B) {
	runFigure(b, experiments.AblationVsDEM, func(b *testing.B, tb *experiments.Table) {
		b.ReportMetric(tb.Rows[0][0], "clud-bytes")
		b.ReportMetric(tb.Rows[0][1], "dem-bytes")
	})
}

func BenchmarkAblationMergeTree(b *testing.B) {
	runFigure(b, experiments.AblationMergeTree, func(b *testing.B, tb *experiments.Table) {
		b.ReportMetric(tb.Rows[0][0], "merged-K")
		b.ReportMetric(tb.Rows[0][1], "flat-K")
	})
}

// --- micro-benchmarks over the hot paths ---

func benchMixture(k, d int) *gaussian.Mixture {
	rng := rand.New(rand.NewSource(1))
	comps := make([]*gaussian.Component, k)
	ws := make([]float64, k)
	for j := range comps {
		mean := linalg.NewVector(d)
		for i := range mean {
			mean[i] = rng.NormFloat64() * 5
		}
		comps[j] = gaussian.Spherical(mean, 1+rng.Float64())
		ws[j] = 1
	}
	return gaussian.MustMixture(ws, comps)
}

func BenchmarkMixtureLogPDF(b *testing.B) {
	m := benchMixture(5, 4)
	x := linalg.Vector{1, -1, 0.5, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.LogPDF(x)
	}
}

func BenchmarkMixturePosterior(b *testing.B) {
	m := benchMixture(5, 4)
	x := linalg.Vector{1, -1, 0.5, 2}
	dst := make([]float64, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PosteriorInto(x, dst)
	}
}

func BenchmarkEMFitChunk(b *testing.B) {
	m := benchMixture(5, 4)
	data := m.SampleN(rand.New(rand.NewSource(2)), 314)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Fit(data, em.Config{K: 5, Seed: 1, MaxIter: 50, Tol: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSiteObserve(b *testing.B) {
	st, err := site.New(site.Config{
		SiteID: 1, Dim: 4, K: 5, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := stream.NewSynthetic(stream.SyntheticConfig{Dim: 4, K: 5, Pd: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	data := stream.Take(gen, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Observe(data[i%len(data)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSystemFeed(b *testing.B) {
	sys, err := cludistream.New(cludistream.Config{NumSites: 4, Dim: 4, K: 5, Epsilon: 0.1, FitEps: 0.8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := stream.NewSynthetic(stream.SyntheticConfig{Dim: 4, K: 5, Pd: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	data := stream.Take(gen, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Feed(i%4, data[i%len(data)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSnapshots(b *testing.B) {
	runFigure(b, experiments.AblationSnapshots, func(b *testing.B, tb *experiments.Table) {
		b.ReportMetric(tb.Rows[0][2], "event-driven-accuracy")
		b.ReportMetric(tb.Rows[3][2], "sparse-snapshot-accuracy")
	})
}

func BenchmarkAblationHierarchy(b *testing.B) {
	runFigure(b, experiments.AblationHierarchy, func(b *testing.B, tb *experiments.Table) {
		b.ReportMetric(tb.Rows[0][2], "flat-steady-bytes")
		b.ReportMetric(tb.Rows[1][2], "tree-steady-bytes")
	})
}

func BenchmarkAblationIncomplete(b *testing.B) {
	runFigure(b, experiments.AblationIncomplete, func(b *testing.B, tb *experiments.Table) {
		b.ReportMetric(tb.Rows[0][1], "avgLL-clean")
		b.ReportMetric(tb.Rows[2][1], "avgLL-30pct-missing")
	})
}

func BenchmarkEMFitIncomplete(b *testing.B) {
	m := benchMixture(5, 4)
	rng := rand.New(rand.NewSource(6))
	data := m.SampleN(rng, 314)
	for _, x := range data {
		if rng.Float64() < 0.5 {
			x[rng.Intn(4)] = nan()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.FitIncomplete(data, em.Config{K: 5, Seed: 1, MaxIter: 50, Tol: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSMEMFit(b *testing.B) {
	m := benchMixture(3, 2)
	data := m.SampleN(rand.New(rand.NewSource(7)), 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smem.Fit(data, smem.Config{EM: em.Config{K: 3, Seed: 1, MaxIter: 40, Tol: 1e-3}}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchData samples n points from a bench mixture for batch benchmarks.
func benchData(m *gaussian.Mixture, n int, seed int64) []linalg.Vector {
	return m.SampleN(rand.New(rand.NewSource(seed)), n)
}

// BenchmarkScoreScalar / BenchmarkScoreBatch compare per-record LogPDF
// against the blocked panel scorer on the same 1024-record workload
// (d=8, K=4 — the regime the batch layer targets).
func BenchmarkScoreScalar(b *testing.B) {
	m := benchMixture(4, 8)
	data := benchData(m, 1024, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, x := range data {
			sum += m.LogPDF(x)
		}
		_ = sum
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(data)), "ns/record")
}

func BenchmarkScoreBatch(b *testing.B) {
	m := benchMixture(4, 8)
	data := benchData(m, 1024, 4)
	dst := make([]float64, len(data))
	scratch := gaussian.NewBatchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreBatch(data, dst, scratch)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(data)), "ns/record")
}

// BenchmarkPosteriorScalar / BenchmarkPosteriorBatch compare the E-step
// responsibility computation record-at-a-time against the batched panel
// path.
func BenchmarkPosteriorScalar(b *testing.B) {
	m := benchMixture(4, 8)
	data := benchData(m, 1024, 5)
	post := make([]float64, m.K())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, x := range data {
			sum += m.PosteriorInto(x, post)
		}
		_ = sum
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(data)), "ns/record")
}

func BenchmarkPosteriorBatch(b *testing.B) {
	m := benchMixture(4, 8)
	data := benchData(m, 1024, 5)
	post := linalg.NewMatrix(0, 0)
	scratch := gaussian.NewBatchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PosteriorBatch(data, post, nil, scratch)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(data)), "ns/record")
}

// BenchmarkEMFitWorkers measures the fused parallel E+M pass at several
// worker counts on a d=8, K=4, n=4096 workload. The fitted model is
// bit-identical at every count (see em.TestFitWorkerCountInvariant), so
// the sub-benchmarks differ only in wall clock; on a multi-core machine
// workers=4/8 should beat workers=1 by the core count, saturating at
// GOMAXPROCS.
func BenchmarkEMFitWorkers(b *testing.B) {
	m := benchMixture(4, 8)
	data := benchData(m, 4096, 8)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := em.Fit(data, em.Config{K: 4, Seed: 1, MaxIter: 30, Tol: 1e-4, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCholeskyDecompose(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	d := 8
	cov := linalg.NewSym(d)
	for t := 0; t < d+2; t++ {
		v := linalg.NewVector(d)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		cov.AddOuterScaled(1, v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.CholeskyDecompose(cov); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuadFormScalar / BenchmarkQuadFormPanel compare the scalar
// Mahalanobis quadratic form against the blocked panel solve at d=8 over
// a 128-record panel (one batch block).
func BenchmarkQuadFormScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const d, n = 8, 128
	cov := linalg.NewSym(d)
	for t := 0; t < d+2; t++ {
		v := linalg.NewVector(d)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		cov.AddOuterScaled(1, v)
	}
	chol, err := linalg.CholeskyDecompose(cov)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]linalg.Vector, n)
	for p := range xs {
		xs[p] = linalg.NewVector(d)
		for i := range xs[p] {
			xs[p][i] = rng.NormFloat64()
		}
	}
	scratch := linalg.NewVector(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, x := range xs {
			sum += chol.QuadFormScratch(x, scratch)
		}
		_ = sum
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/record")
}

func BenchmarkQuadFormPanel(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const d, n = 8, 128
	cov := linalg.NewSym(d)
	for t := 0; t < d+2; t++ {
		v := linalg.NewVector(d)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		cov.AddOuterScaled(1, v)
	}
	chol, err := linalg.CholeskyDecompose(cov)
	if err != nil {
		b.Fatal(err)
	}
	src := make([]float64, d*n)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	panel := make([]float64, d*n)
	dst := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(panel, src) // the solve is in-place; restore the rhs each round
		chol.QuadFormPanel(panel, n, n, dst)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/record")
}

func BenchmarkFitMerge(b *testing.B) {
	a := gaussian.Spherical(linalg.Vector{-1, 0, 0, 0}, 1)
	c := gaussian.Spherical(linalg.Vector{1, 0.5, 0, 0}, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = gaussian.FitMerge(0.5, a, 0.5, c, gaussian.MergeOptions{Seed: 1})
	}
}

// BenchmarkTelemetryOverheadEMFit pins the disabled-telemetry cost of the
// EM hot path at (approximately) zero: the "off" and "on" sub-benchmarks
// run the identical d=8, K=4, n=4096 fit with and without a registry
// attached. Instruments fire per EM *fit*, never per record or iteration,
// so both arms should agree within noise (< 2%).
func BenchmarkTelemetryOverheadEMFit(b *testing.B) {
	m := benchMixture(4, 8)
	data := benchData(m, 4096, 8)
	run := func(b *testing.B, reg *telemetry.Registry) {
		for i := 0; i < b.N; i++ {
			if _, err := em.Fit(data, em.Config{K: 4, Seed: 1, MaxIter: 30, Tol: 1e-4, Telemetry: reg}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, telemetry.NewRegistry()) })
}

// BenchmarkTelemetryOverheadSystem measures the end-to-end stream path —
// site chunking, J_fit tests, EM refits, simulated delivery, coordinator
// merging — with telemetry off and on. This covers the per-record
// instrument (one atomic increment) plus all per-chunk decision tracing.
func BenchmarkTelemetryOverheadSystem(b *testing.B) {
	g, err := stream.NewSynthetic(stream.SyntheticConfig{Dim: 1, K: 2, Pd: 0.5, RegimeLen: 250, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	records := stream.Take(g, 200*5*3)
	run := func(b *testing.B, attach bool) {
		for i := 0; i < b.N; i++ {
			cfg := cludistream.Config{
				NumSites: 3, Dim: 1, K: 2, Epsilon: 0.5, Delta: 0.01,
				Seed: 1, ChunkSize: 200,
				Merge: gaussian.MergeOptions{MomentOnly: true},
			}
			if attach {
				cfg.Telemetry = telemetry.NewRegistry()
			}
			sys, err := cludistream.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.FeedRoundRobin(records); err != nil {
				b.Fatal(err)
			}
			if err := sys.Drain(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// benchDriftMix builds the warm-start drift workload mixture: three
// overlapping 4-d components centred near mean (overlap is what makes cold
// k-means++ EM iterate long enough for warm seeding to matter).
func benchDriftMix(mean float64) *gaussian.Mixture {
	comps := make([]*gaussian.Component, 3)
	ws := []float64{0.5, 0.3, 0.2}
	for j := range comps {
		mu := linalg.NewVector(4)
		for i := range mu {
			mu[i] = mean + float64(j)*2 + 0.3*float64(i)
		}
		comps[j] = gaussian.Spherical(mu, 1)
	}
	return gaussian.MustMixture(ws, comps)
}

// BenchmarkSiteSteadyState measures the paper's common case — a stationary
// stream where every chunk passes the J_fit test and EM never runs — and
// asserts the pooled ingest path stays at 0 allocs/record (the chunker's
// two-buffer recycle protocol plus the pooled batch scorer).
func BenchmarkSiteSteadyState(b *testing.B) {
	st, err := site.New(site.Config{
		SiteID: 1, Dim: 4, K: 5, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	data := benchData(benchMixture(5, 4), 100_000, 2)
	// Establish the first model so the measured loop is pure test-mode.
	for _, x := range data[:2*st.ChunkSize()] {
		if _, err := st.Observe(x); err != nil {
			b.Fatal(err)
		}
	}
	idx := 0
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := st.Observe(data[idx%len(data)]); err != nil {
			b.Fatal(err)
		}
		idx++
	}); avg != 0 {
		b.Fatalf("steady-state Observe allocates %v per record, want 0", avg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Observe(data[i%len(data)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkSiteRefit drives a gradual-drift stream (mean moves 0.3 per
// chunk, past ε but inside the WarmMargin gate) through a site with warm
// starts off and on. The em-iters/fit metric is the tentpole number: warm
// seeding plus the relative early-stop should cut EM iterations per refit
// well below the cold k-means++ baseline on the same stream.
func BenchmarkSiteRefit(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var data []linalg.Vector
	for d := 0; d <= 14; d++ {
		data = append(data, benchDriftMix(0.3*float64(d)).SampleN(rng, 300)...)
	}
	run := func(b *testing.B, ws string) {
		reg := telemetry.NewRegistry()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := site.New(site.Config{
				SiteID: 1, Dim: 4, K: 3, Epsilon: 0.1, Delta: 0.01,
				Seed: 1, ChunkSize: 300, WarmStart: ws, Telemetry: reg,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, x := range data {
				if _, err := st.Observe(x); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		if fits := reg.Counter("em.fits").Value(); fits > 0 {
			b.ReportMetric(float64(reg.Counter("em.iterations").Value())/float64(fits), "em-iters/fit")
		}
		if n := float64(b.N); n > 0 {
			b.ReportMetric(float64(reg.Counter("site.warm_refits").Value())/n, "warm-refits")
			b.ReportMetric(float64(reg.Counter("site.warm_fallbacks").Value())/n, "warm-fallbacks")
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, site.WarmStartCold) })
	b.Run("warm", func(b *testing.B) { run(b, site.WarmStartOn) })
}

// BenchmarkScorePruned measures the steady-state J_fit test at growing K
// with the k-d-pruned scorer off (exact per-record scan over all K
// components) and on (top-m candidates from the mean index, exact-fallback
// guarded). Decisions are bit-identical across arms — the pruned bound only
// replaces scans it can prove decisive — so the records/s gap is pure
// pruning win. At K=4 the prune gate (K ≥ 2m) keeps both arms exact.
func BenchmarkScorePruned(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		for _, arm := range []struct {
			name string
			topM int
		}{{"exact", -1}, {"pruned", 0}} {
			b.Run(fmt.Sprintf("K=%d/%s", k, arm.name), func(b *testing.B) {
				st, err := site.New(site.Config{
					SiteID: 1, Dim: 4, K: k, Epsilon: 0.1, FitEps: 8, Delta: 0.01,
					Seed: 1, ChunkSize: 64 * k, PruneTopM: arm.topM,
				})
				if err != nil {
					b.Fatal(err)
				}
				data := benchData(benchMixture(k, 4), 50_000, 2)
				defer func() {
					if st.Stats().Refits > 1 {
						b.Fatalf("stream refit %d times; the loop is no longer pure test-mode", st.Stats().Refits)
					}
				}()
				for _, x := range data[:2*st.ChunkSize()] {
					if _, err := st.Observe(x); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := st.Observe(data[i%len(data)]); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}

// BenchmarkSiteSteadyStatePruned is BenchmarkSiteSteadyState at K=16 with
// the pruned scorer active: the J_fit hot path must stay at 0 allocs/record
// with the k-d candidate walk and bound accumulators running. The name
// shares the BenchmarkSiteSteadyState prefix so the Makefile alloc-gate
// exercises both.
func BenchmarkSiteSteadyStatePruned(b *testing.B) {
	st, err := site.New(site.Config{
		SiteID: 1, Dim: 4, K: 16, Epsilon: 0.1, FitEps: 8, Delta: 0.01, Seed: 1,
		ChunkSize: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	data := benchData(benchMixture(16, 4), 50_000, 2)
	for _, x := range data[:2*st.ChunkSize()] {
		if _, err := st.Observe(x); err != nil {
			b.Fatal(err)
		}
	}
	idx := 0
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := st.Observe(data[idx%len(data)]); err != nil {
			b.Fatal(err)
		}
		idx++
	}); avg != 0 {
		b.Fatalf("pruned steady-state Observe allocates %v per record, want 0", avg)
	}
	if st.Stats().PruneHits == 0 {
		b.Fatal("pruned scorer never decided a verdict; benchmark is not exercising the pruned path")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Observe(data[i%len(data)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// benchPhaseMix builds a K-component mixture whose means sit on a circle
// rotated by phase — the multi-test benchmark cycles phases so chunks keep
// re-testing the CMax-deep archive.
func benchPhaseMix(k int, phase float64) *gaussian.Mixture {
	comps := make([]*gaussian.Component, k)
	ws := make([]float64, k)
	for j := range comps {
		ang := phase + 2*math.Pi*float64(j)/float64(k)
		comps[j] = gaussian.Spherical(linalg.Vector{6 * math.Cos(ang), 6 * math.Sin(ang)}, 0.4)
		ws[j] = float64(1 + j%3)
	}
	return gaussian.MustMixture(ws, comps)
}

// BenchmarkMultiTestDepth drives a regime-cycling stream that keeps the
// CMax archive full, so every chunk runs the multi-test deep before
// refitting. The rescan arm re-traverses the chunk for every probe and
// refit re-score; the shared arm (default) completes the chunk once and
// serves refit re-scores from the multi-test memo. stat-hits/chunk reports
// how many chunk traversals the memo absorbed.
func BenchmarkMultiTestDepth(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var data []linalg.Vector
	for c := 0; c < 24; c++ {
		// A continuously rotating regime: every chunk is novel, so the site
		// tests the full CMax archive and then refits — the deepest
		// multi-test workload Algorithm 1 produces.
		data = append(data, benchPhaseMix(8, 0.45*float64(c)).SampleN(rng, 200)...)
	}
	run := func(b *testing.B, shared string) {
		var last site.Stats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := site.New(site.Config{
				SiteID: 1, Dim: 2, K: 8, Epsilon: 0.5, Delta: 0.01, CMax: 4,
				Seed: 7, ChunkSize: 200, SharedChunkStats: shared,
				// Pruning off isolates the shared-workspace axis: probes
				// score exactly, so refit re-scores can hit the memo.
				PruneTopM: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, x := range data {
				if _, err := st.Observe(x); err != nil {
					b.Fatal(err)
				}
			}
			last = st.Stats()
		}
		b.ReportMetric(float64(b.N)*float64(len(data))/b.Elapsed().Seconds(), "records/s")
		if last.Chunks > 0 {
			b.ReportMetric(float64(last.Tests)/float64(last.Chunks), "tests/chunk")
		}
		if last.Refits > 0 {
			b.ReportMetric(float64(last.StatCacheHits)/float64(last.Refits), "stat-hits/refit")
		}
	}
	b.Run("rescan", func(b *testing.B) { run(b, site.SharedStatsOff) })
	b.Run("shared", func(b *testing.B) { run(b, site.SharedStatsOn) })
}

// BenchmarkRemergeIncremental replays one deterministic model-update stream
// through the coordinator under the exhaustive per-update stability sweep
// ("exact") and the default dirty-group schedule ("on"). Both reach
// bit-identical trees (pinned by TestIncrementalRemergeMatchesExact); the
// updates/s gap is the work the dirty tracking avoids.
func BenchmarkRemergeIncremental(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	type upd struct {
		siteID, modelID, count int
		mix                    *gaussian.Mixture
	}
	var updates []upd
	for i := 0; i < 400; i++ {
		siteID := i%40 + 1
		k := rng.Intn(3) + 1
		comps := make([]*gaussian.Component, k)
		ws := make([]float64, k)
		for j := range comps {
			comps[j] = gaussian.Spherical(linalg.Vector{rng.NormFloat64() * 40}, 0.5+rng.Float64())
			ws[j] = rng.Float64() + 0.2
		}
		updates = append(updates, upd{siteID, i/40 + 1, rng.Intn(500) + 50, gaussian.MustMixture(ws, comps)})
	}
	run := func(b *testing.B, mode string) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := coordinator.New(coordinator.Config{
				Dim:                1,
				Merge:              gaussian.MergeOptions{MomentOnly: true},
				IndexMinGroups:     4,
				IncrementalRemerge: mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, u := range updates {
				if err := c.HandleUpdate(site.Update{
					SiteID: u.siteID, ModelID: u.modelID, Kind: site.NewModel,
					Mixture: u.mix, Count: u.count,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(updates))/b.Elapsed().Seconds(), "updates/s")
	}
	b.Run("exact", func(b *testing.B) { run(b, coordinator.RemergeExact) })
	b.Run("on", func(b *testing.B) { run(b, coordinator.RemergeOn) })
}
