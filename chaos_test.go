package cludistream

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/netsim"
	"cludistream/internal/transport"
)

// chaosStream is a deterministic single-site stream crossing three
// well-separated regimes — several NewModel transmissions, so there is
// real state to lose and recover.
func chaosStream() []linalg.Vector {
	rng := rand.New(rand.NewSource(17))
	recs := make([]linalg.Vector, 3000)
	means := []float64{-50, 0, 50}
	for i := range recs {
		recs[i] = bimodal(means[3*i/len(recs)]).Sample(rng)
	}
	return recs
}

func singleSiteConfig() Config {
	return Config{
		NumSites:  1,
		Dim:       1,
		K:         2,
		Epsilon:   0.5,
		Delta:     0.01,
		Seed:      1,
		ChunkSize: 200,
		Merge:     gaussian.MergeOptions{MomentOnly: true},
	}
}

// encodeGlobal canonicalizes the final model to exact wire bytes:
// "recovered" means bit-identical, not merely close.
func encodeGlobal(t *testing.T, sys *System) []byte {
	t.Helper()
	gm := sys.GlobalMixture()
	if gm == nil {
		t.Fatal("nil global mixture")
	}
	return transport.Encode(transport.Message{Kind: transport.MsgNewModel, Mixture: gm})
}

// TestChaosBitIdenticalRecovery is the acceptance scenario: 20% message
// loss, a 5-second coordinator outage, and a site crash/restart with full
// replay. The final global mixture must be byte-for-byte identical to a
// fault-free run over the same records.
func TestChaosBitIdenticalRecovery(t *testing.T) {
	records := chaosStream()

	clean, err := New(singleSiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range records {
		if err := clean.Feed(0, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := clean.Drain(); err != nil {
		t.Fatal(err)
	}
	want := encodeGlobal(t, clean)

	cfg := singleSiteConfig()
	cfg.Fault = &netsim.FaultPlan{
		DropProb: 0.2,
		Rand:     rand.New(rand.NewSource(9)),
		// The records span ~3 simulated seconds at the default arrival
		// rate; this 5-second window blacks out the coordinator from
		// mid-stream until well past the end, so recovery rides entirely
		// on courier retransmission during Drain.
		Outages: []netsim.Outage{{Start: 1.2, End: 6.2}},
	}
	faulty, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First incarnation processes half the stream, then the process dies.
	for _, x := range records[:1500] {
		if err := faulty.Feed(0, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := faulty.CrashSite(0); err != nil {
		t.Fatal(err)
	}
	// The restarted site replays the stream from the beginning — the
	// model list is the replay log (Section 6 recovery).
	for _, x := range records {
		if err := faulty.Feed(0, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := faulty.Drain(); err != nil {
		t.Fatal(err)
	}

	d := faulty.DeliveryStats()
	if d.Pending != 0 {
		t.Fatalf("%d payloads still pending after Drain", d.Pending)
	}
	if d.DroppedMessages == 0 || d.RetransmitBytes == 0 || d.Retries == 0 {
		t.Fatalf("fault plan never bit: %+v", d)
	}
	if d.SiteResets != 1 {
		t.Fatalf("site resets = %d, want 1", d.SiteResets)
	}
	if got := encodeGlobal(t, faulty); !bytes.Equal(got, want) {
		t.Fatalf("final mixture diverged under faults:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	// A fault-free system has zero overhead: every wire byte is goodput.
	cd := clean.DeliveryStats()
	if cd.RetransmitBytes != 0 || cd.DroppedMessages != 0 || cd.Retries != 0 || cd.SiteResets != 0 {
		t.Fatalf("clean run has fault-tolerance overhead: %+v", cd)
	}
	if cd.GoodputBytes != clean.TotalBytes() {
		t.Fatalf("clean goodput %d != wire total %d", cd.GoodputBytes, clean.TotalBytes())
	}
}

// TestChaosCoordinatorCrashRecovery kills the coordinator twice mid-merge
// under 20% message loss and recovers it from its checkpoint + WAL store.
// The final global mixture must be byte-for-byte identical to a crash-free,
// fault-free run over the same records — recovery is bit-identical, not
// merely close.
func TestChaosCoordinatorCrashRecovery(t *testing.T) {
	records := chaosStream()

	clean, err := New(singleSiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range records {
		if err := clean.Feed(0, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := clean.Drain(); err != nil {
		t.Fatal(err)
	}
	want := encodeGlobal(t, clean)

	cfg := singleSiteConfig()
	cfg.Fault = &netsim.FaultPlan{
		DropProb: 0.2,
		Rand:     rand.New(rand.NewSource(9)),
	}
	cfg.Durability = &DurabilityConfig{
		Dir: t.TempDir(),
		// No automatic checkpoint inside this run: every recovery must
		// rebuild through a genuine WAL replay, not a fresh checkpoint.
		CheckpointEvery: 1 << 20,
		Fsync:           "always",
		SelfCheck:       true,
	}
	faulty, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range records {
		if i == len(records)/3 || i == 2*len(records)/3 {
			if err := faulty.CrashCoordinator(); err != nil {
				t.Fatal(err)
			}
		}
		if err := faulty.Feed(0, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := faulty.Drain(); err != nil {
		t.Fatal(err)
	}

	d := faulty.DeliveryStats()
	if d.Pending != 0 {
		t.Fatalf("%d payloads still pending after Drain", d.Pending)
	}
	if d.DroppedMessages == 0 || d.RetransmitBytes == 0 || d.Retries == 0 {
		t.Fatalf("fault plan never bit: %+v", d)
	}
	rec := faulty.Recovery()
	if rec.Restarts != 2 {
		t.Fatalf("coordinator restarts = %d, want 2", rec.Restarts)
	}
	if rec.RecordsReplayed == 0 {
		t.Fatal("recovery never replayed a WAL record — the crash path was not exercised")
	}
	if got := encodeGlobal(t, faulty); !bytes.Equal(got, want) {
		t.Fatalf("final mixture diverged across coordinator crashes:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
}

// canonicalComponents returns (weight, mean, variance) triples sorted by
// mean — the order-free fingerprint of a 1-d mixture.
func canonicalComponents(t *testing.T, sys *System) [][3]float64 {
	t.Helper()
	gm := sys.GlobalMixture()
	if gm == nil {
		t.Fatal("nil global mixture")
	}
	out := make([][3]float64, gm.K())
	for j := 0; j < gm.K(); j++ {
		c := gm.Component(j)
		out[j] = [3]float64{gm.Weight(j), c.Mean()[0], c.Cov().At(0, 0)}
	}
	sort.Slice(out, func(a, b int) bool { return out[a][1] < out[b][1] })
	return out
}

// TestChaosMultiSiteLoss runs three sites with far-separated regimes under
// 20% loss. Retransmission delays reorder arrivals across sites — so group
// ids differ — but the recovered component set must match the fault-free
// run exactly, component for component.
func TestChaosMultiSiteLoss(t *testing.T) {
	cfg := smallConfig()
	records := make([]linalg.Vector, 3600)
	rng := rand.New(rand.NewSource(23))
	for i := range records {
		// Round-robin feed: record i goes to site i%3, each site with its
		// own distant regime.
		records[i] = bimodal(float64(i%3) * 200).Sample(rng)
	}

	run := func(fault *netsim.FaultPlan) *System {
		c := cfg
		c.Fault = fault
		sys, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.FeedRoundRobin(records); err != nil {
			t.Fatal(err)
		}
		if err := sys.Drain(); err != nil {
			t.Fatal(err)
		}
		return sys
	}

	clean := run(nil)
	faulty := run(&netsim.FaultPlan{DropProb: 0.2, Rand: rand.New(rand.NewSource(31))})

	d := faulty.DeliveryStats()
	if d.DroppedMessages == 0 || d.RetransmitBytes == 0 {
		t.Fatalf("loss never bit: %+v", d)
	}
	if d.Pending != 0 {
		t.Fatalf("%d payloads pending after Drain", d.Pending)
	}
	// Every wire byte is either goodput or a loss; retransmissions are the
	// overhead subset flagged separately.
	if faulty.TotalBytes() != d.GoodputBytes+d.DroppedBytes {
		t.Fatalf("byte accounting inconsistent: total=%d stats=%+v", faulty.TotalBytes(), d)
	}
	if d.RetransmitBytes >= faulty.TotalBytes() {
		t.Fatalf("retransmit bytes %d exceed wire total %d", d.RetransmitBytes, faulty.TotalBytes())
	}

	got, want := canonicalComponents(t, faulty), canonicalComponents(t, clean)
	if len(got) != len(want) {
		t.Fatalf("component count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("component %d diverged:\n got %v\nwant %v", i, got[i], want[i])
		}
	}
}
