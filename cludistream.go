// Package cludistream is a from-scratch Go implementation of CluDistream,
// the EM-based framework for clustering distributed data streams of Zhou,
// Cao, Yan, Sha and He (ICDE 2007).
//
// A System wires r remote sites to one coordinator over a simulated network
// with exact communication-cost accounting. Each site runs the paper's
// test-and-cluster strategy (Algorithm 1): incoming records are grouped
// into chunks of the Theorem-1 size M(d, ε, δ); a chunk that fits the
// current Gaussian mixture model only bumps a counter and transmits
// nothing, while a chunk that does not fit is re-clustered with EM and the
// new model synopsis is shipped to the coordinator. The coordinator merges
// per-site components into a global mixture with the M_merge / M_split /
// M_remerge criteria (Algorithm 2).
//
// The subpackages under internal/ expose the substrates — EM, Gaussian
// mixtures, the SEM baseline, stream generators, the discrete-event network
// simulator — and internal/experiments regenerates every figure of the
// paper's evaluation.
package cludistream

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"cludistream/internal/coordinator"
	"cludistream/internal/durable"
	"cludistream/internal/em"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/netsim"
	"cludistream/internal/persist"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
	"cludistream/internal/transport"
	"cludistream/internal/window"
)

// Config assembles a distributed deployment. Zero values select the
// paper's defaults where one exists.
type Config struct {
	// NumSites is r, the number of remote sites (paper default 20).
	NumSites int
	// Dim is the record dimensionality d (paper default 4).
	Dim int
	// K is the number of mixture components per site model (paper default 5).
	K int
	// Epsilon is ε, the average-log-likelihood error bound (paper default
	// 0.02).
	Epsilon float64
	// FitEps optionally decouples the J_fit threshold from ε (see
	// site.Config.FitEps). Zero keeps the paper's coupling FitEps = ε.
	FitEps float64
	// Delta is δ, the probability error bound (paper default 0.01).
	Delta float64
	// CMax is c_max, the maximum tests per chunk (paper default 4).
	CMax int
	// Seed drives all deterministic initialization.
	Seed int64
	// ChunkSize overrides the Theorem-1 chunk size when positive.
	ChunkSize int
	// EM tunes the inner EM runs (tolerance ϖ, iteration caps, covariance
	// type).
	EM em.Config
	// Merge tunes the coordinator's component merging.
	Merge gaussian.MergeOptions
	// SharpTest selects the max-component J_fit statistic.
	SharpTest bool
	// UseSMEM clusters chunks with split-and-merge EM (requires K ≥ 3).
	UseSMEM bool
	// AutoKMax, when positive, lets every site pick each model's K by BIC
	// over [AutoKMin, AutoKMax] instead of the fixed K.
	AutoKMax int
	// AutoKMin is the lower bound of the AutoKMax sweep (default 1).
	AutoKMin int
	// WarmStart controls whether sites seed EM refits from the
	// best-scoring archived model when the chunk drifted only slightly
	// past the fit threshold (see site.Config.WarmStart). Empty selects
	// site.WarmStartOn; site.WarmStartCold restores cold k-means++ inits.
	WarmStart string
	// WarmAuditEvery audits every Nth warm refit against a cold run and
	// keeps the higher-likelihood model (default 8; see site.Config).
	WarmAuditEvery int
	// WarmMargin bounds how far past the fit threshold a chunk may land
	// while still warm-starting (default 4×FitEps; negative disables the
	// bound; see site.Config.WarmMargin).
	WarmMargin float64
	// PruneTopM bounds each site's per-record J_fit scoring to the top-m
	// nearest-mean components via a k-d index, with an exact-fallback guard
	// that keeps every decision bit-identical to the exact scan (see
	// site.Config.PruneTopM). Zero selects the default (4); negative
	// disables pruning.
	PruneTopM int
	// SharedChunkStats controls the sites' shared per-chunk scoring
	// workspace (see site.Config.SharedChunkStats). Empty selects
	// site.SharedStatsOn; site.SharedStatsOff restores per-probe re-scans.
	SharedChunkStats string
	// IncrementalRemerge schedules the coordinator's Algorithm-2 stability
	// checks (see coordinator.Config.IncrementalRemerge). Empty selects
	// coordinator.RemergeOn — the dirty-group sweep; "exact" re-checks
	// every group per update; "off" restores the legacy
	// updated-model-only check.
	IncrementalRemerge string
	// RemergeAuditEvery, when positive, audits the coordinator's dirty
	// tracking every Nth update (see coordinator.Config.RemergeAuditEvery).
	RemergeAuditEvery int

	// LinkLatency is the one-way site→coordinator delay in simulated
	// seconds (default 0.05).
	LinkLatency float64
	// LinkBandwidth is bytes/second per link; 0 means unlimited.
	LinkBandwidth float64
	// ArrivalRate is records/second/site on the simulated clock (default
	// 1000, the paper's observed CluDistream processing rate).
	ArrivalRate float64

	// SlidingHorizonChunks, when positive, ages records out of a sliding
	// window of that many chunks per site, emitting deletion messages
	// (Section 7). Zero keeps the landmark-window behaviour.
	SlidingHorizonChunks int

	// Fault, when non-nil, subjects every site→coordinator link to the
	// given fault plan and switches delivery to fault-tolerant mode: each
	// site sends through a retransmitting Courier with sequence-numbered,
	// epoch-tagged messages, and the coordinator dedupes so updates are
	// applied exactly once. Nil keeps perfect links and the legacy v1
	// encoding, preserving the figures' byte-for-byte cost model.
	Fault *netsim.FaultPlan
	// RetryBackoff is the couriers' first retransmit delay in simulated
	// seconds (default 0.1); it doubles per failure up to RetryMaxBackoff
	// (default 2) with deterministic jitter.
	RetryBackoff    float64
	RetryMaxBackoff float64

	// Telemetry, when non-nil, instruments the whole deployment — sites,
	// EM runs, coordinator merges, links and couriers — into the given
	// registry. Nil (the default) keeps every hot path on a bare nil
	// check; clustering output is bit-identical either way, because
	// telemetry only reads values the algorithms already computed.
	Telemetry *telemetry.Registry

	// OnApply, when non-nil, is invoked inside the simulation immediately
	// after a delivered message is applied to the coordinator — after the
	// exactly-once dedupe let it through. The deterministic simulation
	// tests hang their per-update invariant suite on this hook; it must
	// not mutate the system. Duplicates and stale-epoch messages that the
	// dedupe drops never reach it.
	OnApply func(transport.Message)

	// Durability, when non-nil, makes the coordinator crash-durable: every
	// delivered payload is logged to a write-ahead log before the
	// dedupe-then-apply sequence runs, checkpoints rotate automatically,
	// and CrashCoordinator models a coordinator process dying and
	// recovering from disk.
	Durability *DurabilityConfig
}

// DurabilityConfig tunes the coordinator's checkpoint + WAL store.
type DurabilityConfig struct {
	// Dir is the state directory (required). The caller owns its
	// lifecycle; an existing directory is recovered, an empty one starts
	// fresh.
	Dir string
	// CheckpointEvery is the WAL records per automatic checkpoint
	// (default 256).
	CheckpointEvery int
	// Fsync is the WAL sync policy: "always" (default), "interval" or
	// "never" (see persist.FsyncMode).
	Fsync string
	// FsyncInterval is the records-per-sync cadence for "interval"
	// (default 32).
	FsyncInterval int
	// SelfCheck byte-compares the persisted pre-crash state against the
	// recovered state on every CrashCoordinator, surfacing any divergence
	// as ErrRecoveryMismatch. Requires Fsync "always" (weaker modes lose
	// acknowledged records by design, so the states legitimately differ).
	SelfCheck bool
}

// ErrRecoveryMismatch reports that a recovered coordinator's state is not
// bit-identical to the state persisted before the crash — a durability
// bug, surfaced by DurabilityConfig.SelfCheck.
var ErrRecoveryMismatch = errors.New("cludistream: recovered coordinator state differs from pre-crash state")

// RecoveryStats counts coordinator crash-recovery work.
type RecoveryStats struct {
	// Restarts is how many times CrashCoordinator ran.
	Restarts int
	// RecordsReplayed is the total WAL records re-applied across restarts.
	RecordsReplayed int
	// TornBytes is the total torn-tail bytes recovery tolerated.
	TornBytes int
}

func (c Config) withDefaults() Config {
	if c.NumSites == 0 {
		c.NumSites = 20
	}
	if c.Dim == 0 {
		c.Dim = 4
	}
	if c.K == 0 {
		c.K = 5
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.02
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.CMax == 0 {
		c.CMax = 4
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 0.05
	}
	if c.ArrivalRate == 0 {
		c.ArrivalRate = 1000
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 0.1
	}
	if c.RetryMaxBackoff == 0 {
		c.RetryMaxBackoff = 2
	}
	return c
}

// System is a running deployment: r sites, one coordinator, and the links
// between them on a discrete-event simulated network.
type System struct {
	cfg      Config
	sim      *netsim.Simulator
	sites    []*site.Site
	siteCfgs []site.Config // kept verbatim so CrashSite can rebuild a site
	trackers []*window.Tracker
	links    []*netsim.Link
	coord    *coordinator.Coordinator
	fed      []int // records fed per site (drives the virtual clock)

	// outstanding mirrors, per site, each model's net record count at the
	// coordinator (sends minus deletions, in emission order — links and
	// couriers are FIFO, so the mirror matches the coordinator's state at
	// the moment each message is applied). The coordinator deletes a model
	// whose weight drains to zero (Section 7's sliding-window rule), so a
	// later WeightUpdate referencing it must be upgraded to a full
	// synopsis; see sendUpdate.
	outstanding []map[int]int

	// Fault-tolerant mode (cfg.Fault != nil): per-site couriers, sender
	// epochs and sequence numbers, plus the coordinator-side dedupe table
	// shared with netio.Server (durable.Dedupe). The table also exists in
	// durable mode without faults so checkpoints always carry it.
	couriers []*netsim.Courier
	epochs   []uint32
	seqs     []uint64
	ded      *durable.Dedupe
	dup      int
	resets   int

	// Coordinator durability (cfg.Durability != nil).
	store *durable.Store
	recov RecoveryStats

	// Facade-level delivery instruments (nil ⇒ no-op).
	teleDedupe *telemetry.Counter
	teleResets *telemetry.Counter
	// tracer is the registry's tracer when Config.Telemetry has tracing
	// enabled (nil otherwise). The facade rebinds its clock to the
	// simulator so every span timestamp is virtual time — deterministic
	// under DST, and the freshness SLOs measure simulated lag.
	tracer *telemetry.Tracer

	// dedupeBroken disables the sequence-number half of the exactly-once
	// dedupe — a deliberately injected bug used by the deterministic
	// simulation tests to prove their invariant suite has teeth. Never set
	// in production paths; see InjectDedupeFault. Mirrored into ded so it
	// survives coordinator restarts.
	dedupeBroken bool

	deliveryErr error
}

// New builds a System. With Config.Durability set, the coordinator is
// opened through its durable store: an existing state directory is
// recovered (checkpoint + WAL replay) and the system resumes exactly-once
// application where the persisted state left off.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if cfg.NumSites < 1 {
		return nil, fmt.Errorf("cludistream: NumSites = %d", cfg.NumSites)
	}
	s := &System{
		cfg: cfg,
		sim: netsim.NewSimulator(),
		fed: make([]int, cfg.NumSites),
	}
	coordCfg := coordinator.Config{
		Dim: cfg.Dim, Merge: cfg.Merge, Telemetry: cfg.Telemetry,
		IncrementalRemerge: cfg.IncrementalRemerge,
		RemergeAuditEvery:  cfg.RemergeAuditEvery,
	}
	if cfg.Durability != nil {
		opts, err := cfg.Durability.storeOptions(cfg.Telemetry)
		if err != nil {
			return nil, err
		}
		store, rec, err := durable.Open(cfg.Durability.Dir, coordCfg, opts)
		if err != nil {
			return nil, err
		}
		s.store = store
		s.coord = rec.Coord
		s.ded = rec.Dedupe
	} else {
		coord, err := coordinator.New(coordCfg)
		if err != nil {
			return nil, err
		}
		s.coord = coord
		if cfg.Fault != nil {
			s.ded = durable.NewDedupe()
		}
	}
	if cfg.Telemetry != nil {
		s.teleDedupe = cfg.Telemetry.Counter("coord.dedupe_dropped")
		s.teleResets = cfg.Telemetry.Counter("coord.epoch_resets")
		if tr := cfg.Telemetry.Tracer(); tr != nil {
			tr.SetClock(s.sim.Now)
			s.tracer = tr
		}
	}
	if cfg.Fault != nil {
		s.epochs = make([]uint32, cfg.NumSites)
		s.seqs = make([]uint64, cfg.NumSites)
	}
	for i := 0; i < cfg.NumSites; i++ {
		sc := site.Config{
			SiteID:           i + 1,
			Dim:              cfg.Dim,
			K:                cfg.K,
			Epsilon:          cfg.Epsilon,
			FitEps:           cfg.FitEps,
			Delta:            cfg.Delta,
			CMax:             cfg.CMax,
			EM:               cfg.EM,
			Seed:             cfg.Seed + int64(i)*7919, // distinct, deterministic
			SharpTest:        cfg.SharpTest,
			UseSMEM:          cfg.UseSMEM,
			AutoKMax:         cfg.AutoKMax,
			AutoKMin:         cfg.AutoKMin,
			ChunkSize:        cfg.ChunkSize,
			WarmStart:        cfg.WarmStart,
			WarmAuditEvery:   cfg.WarmAuditEvery,
			WarmMargin:       cfg.WarmMargin,
			PruneTopM:        cfg.PruneTopM,
			SharedChunkStats: cfg.SharedChunkStats,
			// Sliding windows require the coordinator's weights to track
			// the site counters, or deletions would underflow.
			EmitFitWeightUpdates: cfg.SlidingHorizonChunks > 0,
			Telemetry:            cfg.Telemetry,
		}
		st, err := site.New(sc)
		if err != nil {
			return nil, err
		}
		s.siteCfgs = append(s.siteCfgs, sc)
		s.sites = append(s.sites, st)
		s.outstanding = append(s.outstanding, make(map[int]int))
		link, err := s.sim.NewFaultyLink(cfg.LinkLatency, cfg.LinkBandwidth, cfg.Fault, s.deliver)
		if err != nil {
			return nil, err
		}
		link.SetTelemetry(cfg.Telemetry)
		s.links = append(s.links, link)
		if cfg.Fault != nil {
			s.epochs[i] = 1
			rng := rand.New(rand.NewSource(cfg.Seed + 104729*int64(i+1)))
			cour, err := s.sim.NewCourier(link, cfg.RetryBackoff, cfg.RetryMaxBackoff, rng)
			if err != nil {
				return nil, err
			}
			cour.SetTelemetry(cfg.Telemetry)
			s.couriers = append(s.couriers, cour)
		}
		if cfg.SlidingHorizonChunks > 0 {
			tr, err := window.NewTracker(st, cfg.SlidingHorizonChunks)
			if err != nil {
				return nil, err
			}
			s.trackers = append(s.trackers, tr)
		}
	}
	return s, nil
}

// storeOptions maps the facade durability knobs onto durable.Options.
func (d *DurabilityConfig) storeOptions(reg *telemetry.Registry) (durable.Options, error) {
	if d.Dir == "" {
		return durable.Options{}, fmt.Errorf("cludistream: Durability.Dir is required")
	}
	mode, err := persist.ParseFsyncMode(d.Fsync)
	if err != nil {
		return durable.Options{}, err
	}
	if d.SelfCheck && mode != persist.FsyncAlways {
		return durable.Options{}, fmt.Errorf("cludistream: Durability.SelfCheck requires Fsync %q, got %q", persist.FsyncAlways, mode)
	}
	return durable.Options{
		CheckpointEvery: d.CheckpointEvery,
		Fsync:           mode,
		FsyncInterval:   d.FsyncInterval,
		Telemetry:       reg,
	}, nil
}

// deliver runs inside the simulation when a message arrives at the
// coordinator. In durable mode the payload is WAL-logged first — replay
// re-runs the byte stream through the identical dedupe-then-apply path —
// and in fault-tolerant mode the dedupe mirrors netio.Server:
// sequence-numbered messages are applied at most once per (site, epoch),
// and a higher epoch resets the dead incarnation's state first.
func (s *System) deliver(payload []byte) {
	msg, err := transport.Decode(payload)
	if err != nil {
		s.deliveryErr = err
		return
	}
	if s.store != nil {
		walSpan := s.tracer.Begin(msg.TraceID, msg.SpanID, "wal-append", int(msg.SiteID), int(msg.ModelID))
		err := s.store.Append(payload)
		walSpan.End(len(payload), "")
		if err != nil {
			if s.deliveryErr == nil {
				s.deliveryErr = err
			}
			return
		}
	}
	if s.ded != nil {
		verdict := s.ded.Admit(msg.SiteID, msg.Epoch, msg.Seq)
		if s.tracer != nil && msg.TraceID != 0 {
			now := s.tracer.Now()
			s.tracer.Record(msg.TraceID, msg.SpanID, "dedupe",
				int(msg.SiteID), int(msg.ModelID), now, now, 0, verdictNote(verdict))
		}
		switch verdict {
		case durable.DropStale, durable.DropDuplicate:
			s.dup++
			s.teleDedupe.Inc()
			return
		case durable.AdmitNewEpoch:
			s.coord.ResetSite(int(msg.SiteID))
			s.resets++
			s.teleResets.Inc()
		}
	}
	switch msg.Kind {
	case transport.MsgDeletion:
		// Deletions carry no site.Update, so the trace context rides in
		// side-band; HandleUpdate reads it off the update itself.
		s.coord.SetTraceContext(msg.TraceID, msg.SpanID)
		err = s.coord.HandleDeletion(int(msg.SiteID), int(msg.ModelID), int(msg.Count))
	default:
		err = s.coord.HandleUpdate(msg.ToSiteUpdate())
	}
	if err != nil && s.deliveryErr == nil {
		s.deliveryErr = err
	}
	if s.cfg.OnApply != nil {
		s.cfg.OnApply(msg)
	}
	if s.store != nil && s.store.NeedCheckpoint() {
		if err := s.store.Checkpoint(s.coord, s.ded); err != nil && s.deliveryErr == nil {
			s.deliveryErr = err
		}
	}
}

// verdictNote maps a dedupe verdict to the span note recorded on the
// trace's "dedupe" span.
func verdictNote(v durable.Verdict) string {
	switch v {
	case durable.DropDuplicate:
		return "dup"
	case durable.DropStale:
		return "stale"
	case durable.AdmitNewEpoch:
		return "new-epoch"
	default:
		return "admit"
	}
}

// InjectDedupeFault deliberately breaks the sequence-number dedupe so
// duplicate deliveries are applied twice. It exists solely for the
// deterministic simulation tests (internal/dst), which use it to prove
// the exactly-once invariant catches a real dedupe regression; calling it
// anywhere else forfeits the exactly-once guarantee.
func (s *System) InjectDedupeFault() {
	s.dedupeBroken = true
	if s.ded != nil {
		s.ded.Broken = true
	}
}

// Feed delivers one record to site siteIdx (0-based). The simulated clock
// advances to the record's arrival time (records arrive at ArrivalRate per
// site); any updates the site emits are encoded and sent on the site's
// link.
func (s *System) Feed(siteIdx int, x linalg.Vector) error {
	if siteIdx < 0 || siteIdx >= len(s.sites) {
		return fmt.Errorf("cludistream: site index %d of %d", siteIdx, len(s.sites))
	}
	t := float64(s.fed[siteIdx]) / s.cfg.ArrivalRate
	s.fed[siteIdx]++
	s.sim.RunUntil(t)

	ups, err := s.sites[siteIdx].Observe(x)
	if err != nil {
		return err
	}
	for _, u := range ups {
		s.sendUpdate(siteIdx, u)
	}
	if s.trackers != nil {
		// Deletions ride the trace of the chunk whose completion expired
		// them: the site has no Update in hand, so the trace context comes
		// from the last minted chunk trace.
		delTrace, delSpan := s.sites[siteIdx].LastTrace()
		for _, d := range s.trackers[siteIdx].Expire(siteIdx + 1) {
			s.outstanding[siteIdx][d.ModelID] -= d.Count
			s.send(siteIdx, transport.Message{
				Kind:    transport.MsgDeletion,
				SiteID:  int32(d.SiteID),
				ModelID: int32(d.ModelID),
				Count:   int64(d.Count),
				TraceID: delTrace,
				SpanID:  delSpan,
			})
		}
	}
	return s.deliveryErr
}

// sendUpdate routes one site update to the coordinator, upgrading a
// WeightUpdate whose model the coordinator has deleted (sliding windows:
// every record of the model expired, so its weight drained to zero and
// Section 7's rule removed it) into a full NewModel synopsis. The site
// cannot know the coordinator dropped the model — only the sender, which
// also emits the deletions, can; without the upgrade the coordinator
// would reject the update as referencing an unknown model.
func (s *System) sendUpdate(siteIdx int, u site.Update) {
	if u.Kind == site.WeightUpdate && s.outstanding[siteIdx][u.ModelID] <= 0 {
		for _, m := range s.sites[siteIdx].Models() {
			if m.ID == u.ModelID {
				u.Kind = site.NewModel
				u.Mixture = m.Mixture
				break
			}
		}
	}
	s.outstanding[siteIdx][u.ModelID] += u.Count
	s.send(siteIdx, transport.FromSiteUpdate(u))
}

// send routes one message onto site siteIdx's link. In fault-tolerant mode
// the message is stamped with the site's epoch and next sequence number
// and handed to the retransmitting courier; otherwise it goes straight on
// the perfect link in the legacy v1 encoding.
func (s *System) send(siteIdx int, msg transport.Message) {
	if s.tracer != nil && msg.TraceID != 0 {
		// Enqueue is a point span: in the simulation the outbox hands the
		// payload to the link/courier at the same virtual instant.
		now := s.tracer.Now()
		s.tracer.Record(msg.TraceID, msg.SpanID, "enqueue",
			int(msg.SiteID), int(msg.ModelID), now, now, msg.WireSize(), "")
	}
	if s.couriers == nil {
		s.links[siteIdx].TrySendTraced(transport.Encode(msg), false, msg.TraceID, msg.SpanID)
		return
	}
	s.seqs[siteIdx]++
	msg.Seq = s.seqs[siteIdx]
	msg.Epoch = s.epochs[siteIdx]
	s.couriers[siteIdx].SendTraced(transport.Encode(msg), msg.TraceID, msg.SpanID)
}

// CrashSite models a site process dying and restarting (fault-tolerant
// mode only): the in-memory site state and any queued retransmissions are
// lost, and the replacement site — same configuration and seed — comes
// back with a higher epoch and a fresh sequence space, so the coordinator
// discards the dead incarnation's contribution when the restarted site
// replays its stream from the beginning.
func (s *System) CrashSite(siteIdx int) error {
	if siteIdx < 0 || siteIdx >= len(s.sites) {
		return fmt.Errorf("cludistream: site index %d of %d", siteIdx, len(s.sites))
	}
	if s.couriers == nil {
		return fmt.Errorf("cludistream: CrashSite requires fault-tolerant mode (Config.Fault)")
	}
	st, err := site.New(s.siteCfgs[siteIdx])
	if err != nil {
		return err
	}
	s.sites[siteIdx] = st
	if s.trackers != nil {
		tr, err := window.NewTracker(st, s.cfg.SlidingHorizonChunks)
		if err != nil {
			return err
		}
		s.trackers[siteIdx] = tr
	}
	s.couriers[siteIdx].Crash()
	s.epochs[siteIdx]++
	s.seqs[siteIdx] = 0
	s.fed[siteIdx] = 0
	// The coordinator discards the dead incarnation's models on the first
	// higher-epoch message; the outstanding mirror starts over with it.
	s.outstanding[siteIdx] = make(map[int]int)
	return nil
}

// CrashCoordinator models the coordinator process dying and recovering
// from its durable store (requires Config.Durability): the in-memory
// coordinator and dedupe table are dropped, the WAL is abandoned without
// flushing (records an fsync policy weaker than "always" had not synced
// are lost, exactly as a real crash would lose them), and the replacement
// coordinator is rebuilt from the latest checkpoint plus the surviving
// WAL tail. Queued courier retransmissions are unaffected — sites keep
// retrying through the outage, and the recovered dedupe table drops what
// was already applied.
//
// With DurabilityConfig.SelfCheck, the persisted pre-crash state is
// byte-compared against the recovered state and any divergence returns
// ErrRecoveryMismatch.
func (s *System) CrashCoordinator() error {
	if s.store == nil {
		return fmt.Errorf("cludistream: CrashCoordinator requires Config.Durability")
	}
	var want []byte
	if s.cfg.Durability.SelfCheck {
		var err error
		if want, err = encodeState(s.coord, s.ded, s.store.Applied()); err != nil {
			return err
		}
	}
	if err := s.store.Crash(); err != nil {
		return err
	}
	opts, err := s.cfg.Durability.storeOptions(s.cfg.Telemetry)
	if err != nil {
		return err
	}
	coordCfg := coordinator.Config{
		Dim: s.cfg.Dim, Merge: s.cfg.Merge, Telemetry: s.cfg.Telemetry,
		IncrementalRemerge: s.cfg.IncrementalRemerge,
		RemergeAuditEvery:  s.cfg.RemergeAuditEvery,
	}
	store, rec, err := durable.Open(s.cfg.Durability.Dir, coordCfg, opts)
	if err != nil {
		return err
	}
	s.store = store
	s.coord = rec.Coord
	s.ded = rec.Dedupe
	s.ded.Broken = s.dedupeBroken
	s.recov.Restarts++
	s.recov.RecordsReplayed += rec.RecordsReplayed
	s.recov.TornBytes += rec.TornBytes
	if want != nil {
		got, err := encodeState(s.coord, s.ded, s.store.Applied())
		if err != nil {
			return err
		}
		if !bytes.Equal(want, got) {
			return fmt.Errorf("%w (pre-crash %d bytes, recovered %d bytes)", ErrRecoveryMismatch, len(want), len(got))
		}
	}
	return nil
}

// RestartCoordinatorAt schedules a CrashCoordinator at simulated time t —
// how the deterministic simulation tests model a coordinator-restart
// outage window: the coordinator dies at the window's start (arrivals in
// the window are already lost to the outage) and recovers from disk at
// its end. A recovery failure surfaces from the next Feed or Drain.
func (s *System) RestartCoordinatorAt(t float64) {
	s.sim.ScheduleAt(t, func() {
		if err := s.CrashCoordinator(); err != nil && s.deliveryErr == nil {
			s.deliveryErr = err
		}
	})
}

// Recovery returns the accumulated coordinator crash-recovery counters.
func (s *System) Recovery() RecoveryStats { return s.recov }

// encodeState serializes the full durable state for self-check
// comparison.
func encodeState(coord *coordinator.Coordinator, ded *durable.Dedupe, applied uint64) ([]byte, error) {
	var buf bytes.Buffer
	st := &persist.CoordinatorState{Applied: applied, Snapshot: coord.Snapshot(), Dedupe: ded.Entries()}
	if err := persist.SaveCoordinatorState(&buf, st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FeedRoundRobin distributes the records across all sites in round-robin
// order — the simplest way to drive a whole deployment from one stream.
func (s *System) FeedRoundRobin(records []linalg.Vector) error {
	for i, x := range records {
		if err := s.Feed(i%len(s.sites), x); err != nil {
			return err
		}
	}
	return nil
}

// Drain runs the simulation until all in-flight messages are delivered.
// Call it before reading coordinator state at the end of a run.
func (s *System) Drain() error {
	s.sim.Run()
	return s.deliveryErr
}

// GlobalMixture returns the coordinator's merged model (after Drain).
func (s *System) GlobalMixture() *gaussian.Mixture { return s.coord.GlobalMixture() }

// Site returns site i (0-based).
func (s *System) Site(i int) *site.Site { return s.sites[i] }

// NumSites returns r.
func (s *System) NumSites() int { return len(s.sites) }

// Coordinator exposes the coordinator for inspection.
func (s *System) Coordinator() *coordinator.Coordinator { return s.coord }

// Now returns the simulated time in seconds.
func (s *System) Now() float64 { return s.sim.Now() }

// TotalBytes returns the total site→coordinator traffic so far.
func (s *System) TotalBytes() int {
	var total int
	for _, l := range s.links {
		total += l.BytesSent()
	}
	return total
}

// DeliveryStats aggregates the fault-tolerance accounting across the
// deployment: goodput (payload bytes that reached the coordinator, counted
// once), the retransmission overhead on top, losses, and the coordinator's
// dedupe work. All zeros on a fault-free system.
type DeliveryStats struct {
	GoodputBytes    int
	RetransmitBytes int
	DroppedMessages int
	DroppedBytes    int
	DupDelivered    int // messages the fault plan delivered twice
	Retries         int
	Duplicates      int
	SiteResets      int
	Pending         int // payloads still queued in couriers
}

// DeliveryStats returns the current fault-tolerance counters.
func (s *System) DeliveryStats() DeliveryStats {
	var d DeliveryStats
	for _, l := range s.links {
		d.GoodputBytes += l.GoodputBytes()
		d.RetransmitBytes += l.RetransmitBytes()
		m, b := l.Dropped()
		d.DroppedMessages += m
		d.DroppedBytes += b
		d.DupDelivered += l.DupDelivered()
	}
	for _, c := range s.couriers {
		d.Retries += c.Retries()
		d.Pending += c.Pending()
	}
	d.Duplicates = s.dup
	d.SiteResets = s.resets
	return d
}

// TotalMessages returns the number of messages sent.
func (s *System) TotalMessages() int {
	var total int
	for _, l := range s.links {
		total += l.Messages()
	}
	return total
}

// CostSeries returns the cumulative communication cost sampled every width
// simulated seconds — the paper's per-second cost collection.
func (s *System) CostSeries(width float64) []int {
	series := make([][]int, len(s.links))
	until := s.sim.Now()
	if until <= 0 {
		until = width
	}
	for i, l := range s.links {
		series[i] = l.CostSeries(width, until)
	}
	return netsim.MergeCostSeries(series...)
}

// ChunkSize returns the chunk size M in effect at every site.
func (s *System) ChunkSize() int { return s.sites[0].ChunkSize() }
