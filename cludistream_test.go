package cludistream

import (
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/stream"
)

func smallConfig() Config {
	return Config{
		NumSites:  3,
		Dim:       1,
		K:         2,
		Epsilon:   0.5,
		Delta:     0.01,
		Seed:      1,
		ChunkSize: 200,
		Merge:     gaussian.MergeOptions{MomentOnly: true},
	}
}

func bimodal(mean float64) *gaussian.Mixture {
	return gaussian.MustMixture(
		[]float64{0.5, 0.5},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{mean - 2}, 0.5),
			gaussian.Spherical(linalg.Vector{mean + 2}, 0.5),
		})
}

func TestSystemEndToEnd(t *testing.T) {
	sys, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mix := bimodal(0)
	for i := 0; i < 200*3*3; i++ {
		if err := sys.Feed(i%3, mix.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	gm := sys.GlobalMixture()
	if gm == nil {
		t.Fatal("no global mixture")
	}
	// All sites saw the same regime: merged model should be compact and
	// explain the data.
	if gm.K() > 3 {
		t.Fatalf("global K = %d, want ≈2 after merging", gm.K())
	}
	probe := []linalg.Vector{{-2}, {2}}
	if ll := gm.AvgLogLikelihood(probe); ll < -4 {
		t.Fatalf("global LL = %v", ll)
	}
}

func TestSystemDefaults(t *testing.T) {
	sys, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumSites() != 20 {
		t.Fatalf("default sites = %d", sys.NumSites())
	}
	if sys.ChunkSize() != 1567 {
		t.Fatalf("default chunk size = %d, want 1567", sys.ChunkSize())
	}
}

func TestSystemCommunicationSilenceWhenStable(t *testing.T) {
	sys, _ := New(smallConfig())
	rng := rand.New(rand.NewSource(2))
	mix := bimodal(0)
	feed := func(n int) {
		for i := 0; i < n; i++ {
			if err := sys.Feed(i%3, mix.Sample(rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(200 * 2 * 3)
	after := sys.TotalBytes()
	feed(200 * 8 * 3)
	if sys.TotalBytes() != after {
		t.Fatalf("stable stream kept transmitting: %d -> %d", after, sys.TotalBytes())
	}
	if sys.TotalMessages() != 3 {
		t.Fatalf("messages = %d, want 3 (one model per site)", sys.TotalMessages())
	}
}

func TestSystemRegimeChangeCosts(t *testing.T) {
	sys, _ := New(smallConfig())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200*2*3; i++ {
		_ = sys.Feed(i%3, bimodal(0).Sample(rng))
	}
	before := sys.TotalBytes()
	for i := 0; i < 200*2*3; i++ {
		_ = sys.Feed(i%3, bimodal(50).Sample(rng))
	}
	if sys.TotalBytes() <= before {
		t.Fatal("regime change transmitted nothing")
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	if sys.Coordinator().NumModels() != 6 { // 2 models × 3 sites
		t.Fatalf("coordinator models = %d, want 6", sys.Coordinator().NumModels())
	}
}

func TestSystemCostSeriesMonotone(t *testing.T) {
	sys, _ := New(smallConfig())
	g, _ := stream.NewSynthetic(stream.SyntheticConfig{Dim: 1, K: 2, Pd: 1, RegimeLen: 300, Seed: 4})
	if err := sys.FeedRoundRobin(stream.Take(g, 200*4*3)); err != nil {
		t.Fatal(err)
	}
	_ = sys.Drain()
	series := sys.CostSeries(0.5)
	if len(series) == 0 {
		t.Fatal("empty cost series")
	}
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Fatalf("cost series not monotone at %d: %v", i, series[:i+1])
		}
	}
	if series[len(series)-1] != sys.TotalBytes() {
		t.Fatalf("series end %d != total %d", series[len(series)-1], sys.TotalBytes())
	}
}

func TestSystemVirtualClockAdvances(t *testing.T) {
	sys, _ := New(smallConfig())
	rng := rand.New(rand.NewSource(5))
	mix := bimodal(0)
	for i := 0; i < 1000; i++ {
		_ = sys.Feed(0, mix.Sample(rng))
	}
	// 1000 records at 1000/s = ~1 simulated second.
	if now := sys.Now(); math.Abs(now-0.999) > 0.01 {
		t.Fatalf("Now = %v, want ≈1", now)
	}
}

func TestSystemSlidingWindowDeletions(t *testing.T) {
	cfg := smallConfig()
	cfg.NumSites = 1
	cfg.SlidingHorizonChunks = 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200*6; i++ {
		if err := sys.Feed(0, bimodal(0).Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	// 6 chunks seen, horizon 2 → 4 chunks expired; the model's coordinator
	// weight must be 2 chunks = 400 records.
	var total float64
	for _, g := range sys.Coordinator().Groups() {
		total += g.Weight()
	}
	if math.Abs(total-400) > 1e-6 {
		t.Fatalf("coordinator mass = %v, want 400 after expiry", total)
	}
}

func TestSystemFeedValidation(t *testing.T) {
	sys, _ := New(smallConfig())
	if err := sys.Feed(99, linalg.Vector{0}); err == nil {
		t.Fatal("bad site index accepted")
	}
	if err := sys.Feed(0, linalg.Vector{0, 1}); err == nil {
		t.Fatal("bad dimension accepted")
	}
	if _, err := New(Config{NumSites: -1}); err == nil {
		t.Fatal("negative NumSites accepted")
	}
}

func TestSystemAutoK(t *testing.T) {
	cfg := smallConfig()
	cfg.NumSites = 1
	cfg.AutoKMax = 4
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	mix := bimodal(0)
	for i := 0; i < 200*2; i++ {
		if err := sys.Feed(0, mix.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	cur := sys.Site(0).Current()
	if cur == nil {
		t.Fatal("no model")
	}
	if cur.Mixture.K() != 2 {
		t.Fatalf("auto-K chose %d on bimodal data", cur.Mixture.K())
	}
}

func TestSystemIncompleteRecords(t *testing.T) {
	// A 2-d stream where 20% of attributes are missing (NaN): sites route
	// such chunks to missing-data EM and the pipeline stays healthy.
	cfg := smallConfig()
	cfg.NumSites = 1
	cfg.Dim = 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := stream.NewSynthetic(stream.SyntheticConfig{
		Dim: 2, K: 2, Pd: 0, MissingFrac: 0.2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200*2; i++ {
		if err := sys.Feed(0, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	if sys.GlobalMixture() == nil {
		t.Fatal("no global model from incomplete stream")
	}
}

func TestSystemDeterministic(t *testing.T) {
	run := func() (int, float64) {
		sys, _ := New(smallConfig())
		g, _ := stream.NewSynthetic(stream.SyntheticConfig{Dim: 1, K: 2, Pd: 0.5, RegimeLen: 250, Seed: 7})
		if err := sys.FeedRoundRobin(stream.Take(g, 200*5*3)); err != nil {
			t.Fatal(err)
		}
		_ = sys.Drain()
		gm := sys.GlobalMixture()
		return sys.TotalBytes(), gm.AvgLogLikelihood([]linalg.Vector{{0}, {1}})
	}
	b1, ll1 := run()
	b2, ll2 := run()
	if b1 != b2 || ll1 != ll2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", b1, ll1, b2, ll2)
	}
}
