// Command aggd is the multi-layer aggregator daemon (Section 7's
// tree-structured network over real links): it accepts connections from
// children (sited or further aggd processes) on one port, merges their
// models in a local coordinator, and uploads its locally-observed global
// mixture to a parent coordinator (coordd or another aggd) only when that
// mixture changes.
//
// Usage:
//
//	coordd -listen :7070 -dim 4 &
//	aggd   -listen :7071 -connect localhost:7070 -node-id 100 -dim 4 &
//	sited  -connect localhost:7071 -site-id 1 ...
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cludistream/internal/buildinfo"
	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/netio"
	"cludistream/internal/telemetry"
)

func main() {
	listen := flag.String("listen", ":7071", "TCP address to accept children on")
	connect := flag.String("connect", "", "parent coordinator address (empty: act as a root, no uploads)")
	nodeID := flag.Int("node-id", 100, "pseudo-site id this aggregator uses at its parent")
	dim := flag.Int("dim", 4, "data dimensionality d")
	interval := flag.Duration("interval", 2*time.Second, "how often to check for model changes to upload")
	maxRetry := flag.Int("max-retry", 12, "initial parent-dial attempts before giving up (-1 = retry forever)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second, "graceful-shutdown wait for children and the parent upload drain")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/events and pprof on this address (empty = off)")
	trace := flag.Bool("trace", false, "with -debug-addr: trace child applies and parent uploads (/debug/traces; negotiates the wire trace suffix both ways)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("aggd"))
		return
	}

	var reg *telemetry.Registry
	if *debugAddr != "" {
		reg = telemetry.NewRegistry()
		if *trace {
			reg.EnableTracing(telemetry.TraceOptions{})
		}
		dbg, err := telemetry.Serve(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer dbg.Close()
		fmt.Printf("aggd %d: debug endpoints on http://%v/debug/vars\n", *nodeID, dbg.Addr())
	}

	coord, err := coordinator.New(coordinator.Config{Dim: *dim, Telemetry: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	srv, err := netio.NewServerTelemetry(*listen, coord, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("aggd: version=%s node=%d listen=%v parent=%s dim=%d interval=%v debug_addr=%s\n",
		buildinfo.Version, *nodeID, srv.Addr(), *connect, *dim, *interval, *debugAddr)

	var up *netio.Uploader
	var parent *netio.Conn
	if *connect != "" {
		parent, err = dialConnRetry(*connect, *nodeID, *maxRetry, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer parent.Close()
		up = netio.NewUploader(parent, *nodeID)
		fmt.Printf("aggd %d: uploading to %s\n", *nodeID, *connect)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	for {
		select {
		case <-ticker.C:
			if up == nil {
				continue
			}
			var mix *coordinatorSnapshot
			srv.Snapshot(func(c *coordinator.Coordinator) {
				var total float64
				for _, g := range c.Groups() {
					total += g.Weight()
				}
				mix = &coordinatorSnapshot{m: c.GlobalMixture(), weight: total}
			})
			if mix == nil || mix.m == nil {
				continue
			}
			sent, err := up.Sync(mix.m, mix.weight)
			if err != nil {
				// The connection's outbox keeps retrying delivery; a
				// rejected upload is logged and retried at the next tick
				// rather than killing the aggregation tree.
				fmt.Fprintf(os.Stderr, "aggd %d: upload: %v (will retry)\n", *nodeID, err)
				continue
			}
			if sent {
				fmt.Printf("aggd %d: uploaded refreshed model (K=%d)\n", *nodeID, mix.m.K())
			}
		case sig := <-sigCh:
			fmt.Printf("aggd %d: %v — shutting down (waiting up to %v)\n", *nodeID, sig, *shutdownTimeout)
			// Stop accepting children first, then drain any queued
			// uploads so the parent sees our final mixture.
			if err := srv.Shutdown(*shutdownTimeout); err != nil {
				fmt.Fprintf(os.Stderr, "aggd %d: shutdown: %v\n", *nodeID, err)
			}
			if parent != nil {
				if err := parent.Flush(*shutdownTimeout); err != nil {
					fmt.Fprintf(os.Stderr, "aggd %d: final upload drain: %v\n", *nodeID, err)
				}
			}
			srv.Snapshot(func(c *coordinator.Coordinator) {
				fmt.Printf("aggd %d: final state — %d child models, %d groups\n",
					*nodeID, c.NumModels(), len(c.Groups()))
			})
			return
		}
	}
}

// coordinatorSnapshot carries state out of the Snapshot closure.
type coordinatorSnapshot struct {
	m      *gaussian.Mixture
	weight float64
}

// dialConnRetry retries the parent dial with doubling backoff so an
// aggregation tree can start leaves-first or ride out a parent restart.
func dialConnRetry(addr string, nodeID, maxRetry int, reg *telemetry.Registry) (*netio.Conn, error) {
	backoff := 500 * time.Millisecond
	for attempt := 1; ; attempt++ {
		conn, err := netio.DialConnRetry(addr, netio.RetryPolicy{Telemetry: reg})
		if err == nil {
			return conn, nil
		}
		if maxRetry >= 0 && attempt >= maxRetry {
			return nil, fmt.Errorf("dial %s: %w (after %d attempts)", addr, err, attempt)
		}
		fmt.Fprintf(os.Stderr, "aggd %d: dial %s: %v — retrying in %v\n", nodeID, addr, err, backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > 10*time.Second {
			backoff = 10 * time.Second
		}
	}
}
