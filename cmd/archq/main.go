// Command archq queries a site archive written by `sited -archive` (or the
// persist package): the offline form of Section 7's evolving analysis.
//
// Usage:
//
//	archq -in site1.arch                    # summary: models + event table
//	archq -in site1.arch -window 5:12      # mixture covering chunks 5..12
//	archq -in site1.arch -at 7             # which model governed chunk 7
//	archq -in site1.arch -eval data.csv    # avg log-likelihood of the
//	                                       # landmark model on a CSV data set
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cludistream/internal/persist"
	"cludistream/internal/stream"
)

func main() {
	in := flag.String("in", "", "archive file (required)")
	window := flag.String("window", "", "chunk window start:end to rebuild")
	at := flag.Int("at", 0, "report the model governing this chunk")
	eval := flag.String("eval", "", "CSV file to score under the landmark model")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "archq: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	a, err := persist.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("archive: site %d, d=%d, chunk size %d, %d chunks seen\n",
		a.SiteID, a.Dim, a.ChunkSize, a.ChunksSeen)
	fmt.Printf("models: %d | events: %d closed spans\n", len(a.Models), len(a.Events))
	for _, m := range a.Models {
		fmt.Printf("  model %d: K=%d, %d records, ref avgLL %.4f\n",
			m.ID, m.Mixture.K(), m.Counter, m.RefAvgLL)
	}
	for _, e := range a.Events {
		fmt.Printf("  event %v\n", e)
	}

	if *at > 0 {
		if id, ok := a.ModelAt(*at); ok {
			fmt.Printf("chunk %d was governed by model %d\n", *at, id)
		} else {
			fmt.Printf("chunk %d is outside the archive's range\n", *at)
		}
	}

	if *window != "" {
		parts := strings.SplitN(*window, ":", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "archq: -window wants start:end")
			os.Exit(2)
		}
		start, err1 := strconv.Atoi(parts[0])
		end, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			fmt.Fprintln(os.Stderr, "archq: -window wants integer start:end")
			os.Exit(2)
		}
		m := a.WindowMixture(start, end)
		if m == nil {
			fmt.Printf("window %d:%d covers no chunks\n", start, end)
		} else {
			fmt.Printf("window %d:%d mixture (K=%d):\n", start, end, m.K())
			for j := 0; j < m.K(); j++ {
				fmt.Printf("  weight %.4f, mean %v\n", m.Weight(j), m.Component(j).Mean())
			}
		}
	}

	if *eval != "" {
		ef, err := os.Open(*eval)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := stream.ReadCSV(ef)
		ef.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lm := a.LandmarkMixture()
		if lm == nil {
			fmt.Println("archive has no models to evaluate")
			return
		}
		fmt.Printf("landmark model avg log-likelihood on %d records: %.4f\n",
			len(data), lm.AvgLogLikelihood(data))
	}
}
