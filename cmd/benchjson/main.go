// Command benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, keeping both the standard measurements
// (ns/op, B/op, allocs/op) and any custom b.ReportMetric units the
// benchmarks emit (figure metrics like clud-bytes or avgLL, per-record
// timings). `make bench` pipes through it to produce BENCH_quick.json.
//
// With -compare old.json new.json it instead diffs two such reports,
// printing per-benchmark ns/op deltas, and exits non-zero when any shared
// benchmark regressed by more than -threshold (default 10%).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"cludistream/internal/buildinfo"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the Benchmark prefix and the -N
	// GOMAXPROCS suffix stripped (sub-benchmark paths are kept).
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "<value> <unit>" pair on the
	// line; JSON encoding sorts the keys, so output is deterministic.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// GoVersion and Gomaxprocs stamp the converting toolchain and core
	// count, so archived reports say what produced them even when the
	// bench output lacks a cpu: header.
	GoVersion  string `json:"go_version"`
	Gomaxprocs int    `json:"gomaxprocs"`
	// Commit is the git commit the Makefile stamped into this binary
	// ("unknown" under plain `go run`), so an archived baseline records
	// exactly which tree produced it. -compare ignores it: reports with
	// and without the field diff fine.
	Commit     string      `json:"commit,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// trimProcs removes the trailing -N GOMAXPROCS marker go test appends to
// benchmark names ("BenchmarkFoo-8" → "BenchmarkFoo"), but leaves names
// whose final dash segment is not a number alone.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseLine parses one benchmark result line; ok is false for headers,
// PASS/ok trailers, and anything else that is not a result.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(trimProcs(fields[0]), "Benchmark"),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

// compareRow is one benchmark's old-vs-new ns/op comparison.
type compareRow struct {
	Name     string
	Old, New float64 // ns/op; NaN when the side lacks the benchmark
	Pct      float64 // (new-old)/old in percent; NaN when either side missing
}

// Regressed reports whether the row is a slowdown beyond threshold
// percent. Benchmarks present on only one side never regress — they are
// informational (added/removed) rather than comparable.
func (r compareRow) Regressed(threshold float64) bool {
	return !math.IsNaN(r.Pct) && r.Pct > threshold
}

// compareReports matches benchmarks by name and returns one row per name
// seen on either side, sorted by name so output is deterministic.
func compareReports(oldRep, newRep *Report) []compareRow {
	nsOp := func(rep *Report) map[string]float64 {
		m := make(map[string]float64, len(rep.Benchmarks))
		for _, b := range rep.Benchmarks {
			if v, ok := b.Metrics["ns/op"]; ok {
				m[b.Name] = v
			}
		}
		return m
	}
	oldNs, newNs := nsOp(oldRep), nsOp(newRep)
	names := make(map[string]bool, len(oldNs)+len(newNs))
	for n := range oldNs {
		names[n] = true
	}
	for n := range newNs {
		names[n] = true
	}
	rows := make([]compareRow, 0, len(names))
	for n := range names {
		row := compareRow{Name: n, Old: math.NaN(), New: math.NaN(), Pct: math.NaN()}
		o, hasOld := oldNs[n]
		v, hasNew := newNs[n]
		if hasOld {
			row.Old = o
		}
		if hasNew {
			row.New = v
		}
		if hasOld && hasNew && o > 0 {
			row.Pct = (v - o) / o * 100
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// writeComparison renders the rows and returns whether any benchmark
// regressed beyond threshold percent.
func writeComparison(w io.Writer, rows []compareRow, threshold float64) bool {
	regressed := false
	fmtNs := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	for _, r := range rows {
		mark := ""
		switch {
		case r.Regressed(threshold):
			regressed = true
			mark = "  REGRESSION"
		case math.IsNaN(r.Pct):
			mark = "  (no baseline)"
		}
		pct := "-"
		if !math.IsNaN(r.Pct) {
			pct = fmt.Sprintf("%+.1f%%", r.Pct)
		}
		fmt.Fprintf(w, "%-60s %14s %14s %9s%s\n", r.Name, fmtNs(r.Old), fmtNs(r.New), pct, mark)
	}
	return regressed
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &rep, nil
}

func runCompare(oldPath, newPath string, threshold float64, w io.Writer) (bool, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(w, "%-60s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	return writeComparison(w, compareReports(oldRep, newRep), threshold), nil
}

// commitStamp returns the ldflags-injected commit, or "" (omitting the
// field) when the binary was built without the Makefile's stamp.
func commitStamp() string {
	if buildinfo.Commit == "unknown" {
		return ""
	}
	return buildinfo.Commit
}

func main() {
	compare := flag.Bool("compare", false, "diff two benchjson reports: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 10, "ns/op regression threshold in percent for -compare")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		regressed, err := runCompare(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if regressed {
			fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond %.0f%% detected\n", *threshold)
			os.Exit(1)
		}
		return
	}
	rep := Report{GoVersion: runtime.Version(), Gomaxprocs: runtime.GOMAXPROCS(0), Commit: commitStamp()}
	var lines int
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) != "" {
			lines++
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	// No results is an error, not an empty report: a typo'd -bench regex or
	// a compile failure upstream of the pipe should fail `make bench`
	// loudly instead of archiving a hollow BENCH file.
	if len(rep.Benchmarks) == 0 {
		if lines == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: empty input — expected `go test -bench` output on stdin")
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: no benchmark result lines in %d lines of input — malformed or filtered-out bench output\n", lines)
		}
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
