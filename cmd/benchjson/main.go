// Command benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, keeping both the standard measurements
// (ns/op, B/op, allocs/op) and any custom b.ReportMetric units the
// benchmarks emit (figure metrics like clud-bytes or avgLL, per-record
// timings). `make bench` pipes through it to produce BENCH_quick.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the Benchmark prefix and the -N
	// GOMAXPROCS suffix stripped (sub-benchmark paths are kept).
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "<value> <unit>" pair on the
	// line; JSON encoding sorts the keys, so output is deterministic.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// GoVersion and Gomaxprocs stamp the converting toolchain and core
	// count, so archived reports say what produced them even when the
	// bench output lacks a cpu: header.
	GoVersion  string      `json:"go_version"`
	Gomaxprocs int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// trimProcs removes the trailing -N GOMAXPROCS marker go test appends to
// benchmark names ("BenchmarkFoo-8" → "BenchmarkFoo"), but leaves names
// whose final dash segment is not a number alone.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseLine parses one benchmark result line; ok is false for headers,
// PASS/ok trailers, and anything else that is not a result.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(trimProcs(fields[0]), "Benchmark"),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

func main() {
	rep := Report{GoVersion: runtime.Version(), Gomaxprocs: runtime.GOMAXPROCS(0)}
	var lines int
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) != "" {
			lines++
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	// No results is an error, not an empty report: a typo'd -bench regex or
	// a compile failure upstream of the pipe should fail `make bench`
	// loudly instead of archiving a hollow BENCH file.
	if len(rep.Benchmarks) == 0 {
		if lines == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: empty input — expected `go test -bench` output on stdin")
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: no benchmark result lines in %d lines of input — malformed or filtered-out bench output\n", lines)
		}
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
