package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(ns map[string]float64) *Report {
	rep := &Report{}
	for name, v := range ns {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Name:       name,
			Iterations: 1,
			Metrics:    map[string]float64{"ns/op": v},
		})
	}
	return rep
}

func TestCompareReportsMatchesByName(t *testing.T) {
	rows := compareReports(
		report(map[string]float64{"A": 100, "B": 200, "Gone": 5}),
		report(map[string]float64{"A": 90, "B": 250, "New": 7}),
	)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	// Sorted by name: A, B, Gone, New.
	if rows[0].Name != "A" || math.Abs(rows[0].Pct-(-10)) > 1e-9 {
		t.Fatalf("row A = %+v, want -10%%", rows[0])
	}
	if rows[1].Name != "B" || math.Abs(rows[1].Pct-25) > 1e-9 {
		t.Fatalf("row B = %+v, want +25%%", rows[1])
	}
	if rows[2].Name != "Gone" || !math.IsNaN(rows[2].Pct) || !math.IsNaN(rows[2].New) {
		t.Fatalf("row Gone = %+v, want NaN pct/new", rows[2])
	}
	if rows[3].Name != "New" || !math.IsNaN(rows[3].Pct) || !math.IsNaN(rows[3].Old) {
		t.Fatalf("row New = %+v, want NaN pct/old", rows[3])
	}
}

func TestCompareRowRegressed(t *testing.T) {
	cases := []struct {
		pct  float64
		want bool
	}{
		{pct: 25, want: true},
		{pct: 10, want: false}, // at threshold is not beyond it
		{pct: -40, want: false},
		{pct: math.NaN(), want: false}, // one-sided rows never regress
	}
	for _, c := range cases {
		r := compareRow{Pct: c.pct}
		if got := r.Regressed(10); got != c.want {
			t.Errorf("Regressed(10) with pct=%v: got %v, want %v", c.pct, got, c.want)
		}
	}
}

func TestWriteComparisonFlagsRegressions(t *testing.T) {
	rows := compareReports(
		report(map[string]float64{"Fast": 100, "Slow": 100}),
		report(map[string]float64{"Fast": 105, "Slow": 150}),
	)
	var sb strings.Builder
	if !writeComparison(&sb, rows, 10) {
		t.Fatal("writeComparison returned false, want regression detected")
	}
	out := sb.String()
	if !strings.Contains(out, "Slow") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("output missing regression marker:\n%s", out)
	}
	if strings.Contains(strings.Split(out, "\n")[0], "REGRESSION") {
		t.Fatalf("Fast row flagged as regression:\n%s", out)
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeJSON := func(path, body string) {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeJSON(oldPath, `{"go_version":"go1.x","gomaxprocs":1,"benchmarks":[
		{"name":"SiteObserve","iterations":10,"metrics":{"ns/op":1000}}]}`)
	writeJSON(newPath, `{"go_version":"go1.x","gomaxprocs":1,"benchmarks":[
		{"name":"SiteObserve","iterations":10,"metrics":{"ns/op":1050}}]}`)

	var sb strings.Builder
	regressed, err := runCompare(oldPath, newPath, 10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("+5%% flagged as regression at 10%% threshold:\n%s", sb.String())
	}

	writeJSON(newPath, `{"go_version":"go1.x","gomaxprocs":1,"benchmarks":[
		{"name":"SiteObserve","iterations":10,"metrics":{"ns/op":1200}}]}`)
	sb.Reset()
	regressed, err = runCompare(oldPath, newPath, 10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("+20%% not flagged at 10%% threshold:\n%s", sb.String())
	}

	if _, err := runCompare(filepath.Join(dir, "missing.json"), newPath, 10, &sb); err == nil {
		t.Fatal("missing old report: want error")
	}
	writeJSON(oldPath, `{"benchmarks":[]}`)
	if _, err := runCompare(oldPath, newPath, 10, &sb); err == nil {
		t.Fatal("empty old report: want error")
	}
}
