// Command cludistream runs a full simulated deployment: r remote sites
// consuming streams (synthetic or NFD-like, or a CSV on stdin distributed
// round-robin), one coordinator, and a report of the global model,
// communication cost and per-site statistics.
//
// Usage:
//
//	cludistream -sites 20 -updates 100000 -kind synthetic
//	datagen -kind nfd -n 100000 | cludistream -kind csv -dim 6
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cludistream/internal/coordinator"
	"cludistream/internal/linalg"
	"cludistream/internal/parallel"
	"cludistream/internal/site"
	"cludistream/internal/stream"

	root "cludistream"
)

func main() {
	sites := flag.Int("sites", 20, "number of remote sites r")
	updates := flag.Int("updates", 100_000, "total records across all sites")
	kind := flag.String("kind", "synthetic", "stream kind: synthetic, nfd or csv (stdin)")
	dim := flag.Int("dim", 4, "dimensionality (synthetic/csv)")
	k := flag.Int("k", 5, "mixture components per model")
	eps := flag.Float64("epsilon", 0.02, "error bound ε (drives the chunk size)")
	fitEps := flag.Float64("fit-eps", 0.25, "J_fit threshold (0 couples it to ε as in the paper)")
	delta := flag.Float64("delta", 0.01, "probability error bound δ")
	cmax := flag.Int("cmax", 4, "maximal tests per chunk c_max")
	pd := flag.Float64("pd", 0.1, "new-distribution probability per regime boundary")
	horizon := flag.Int("sliding-chunks", 0, "sliding-window horizon in chunks (0 = landmark)")
	seed := flag.Int64("seed", 1, "random seed")
	par := flag.Bool("parallel", false, "run sites on goroutines (multi-core) instead of the simulated clock")
	flag.Parse()

	var data []linalg.Vector
	var err error
	switch *kind {
	case "synthetic":
		var g *stream.Synthetic
		g, err = stream.NewSynthetic(stream.SyntheticConfig{Dim: *dim, K: *k, Pd: *pd, Seed: *seed})
		if err == nil {
			data = stream.Take(g, *updates)
		}
	case "nfd":
		var g *stream.NFD
		g, err = stream.NewNFD(stream.NFDConfig{Pd: *pd, Seed: *seed})
		if err == nil {
			*dim = stream.NFDDim
			data = stream.Take(g, *updates)
		}
	case "csv":
		data, err = stream.ReadCSV(os.Stdin)
		if err == nil && len(data) > 0 {
			*dim = len(data[0])
		}
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(data) == 0 {
		fmt.Fprintln(os.Stderr, "no input records")
		os.Exit(2)
	}

	if *par {
		runParallel(data, *sites, *dim, *k, *eps, *fitEps, *delta, *cmax, *horizon, *seed)
		return
	}

	sys, err := root.New(root.Config{
		NumSites:             *sites,
		Dim:                  *dim,
		K:                    *k,
		Epsilon:              *eps,
		FitEps:               *fitEps,
		Delta:                *delta,
		CMax:                 *cmax,
		Seed:                 *seed,
		SlidingHorizonChunks: *horizon,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	start := time.Now()
	if err := sys.FeedRoundRobin(data); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := sys.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("processed %d records across %d sites in %v (%.0f records/s)\n",
		len(data), sys.NumSites(), elapsed.Round(time.Millisecond),
		float64(len(data))/elapsed.Seconds())
	fmt.Printf("chunk size M = %d records; simulated time %.1fs\n", sys.ChunkSize(), sys.Now())
	fmt.Printf("communication: %d messages, %d bytes total\n", sys.TotalMessages(), sys.TotalBytes())

	var emRuns, fits, chunks int
	for i := 0; i < sys.NumSites(); i++ {
		st := sys.Site(i).Stats()
		emRuns += st.EMRuns
		fits += st.Fits
		chunks += st.Chunks
	}
	fmt.Printf("sites: %d chunks processed, %d fit existing models, %d EM re-clusterings\n", chunks, fits, emRuns)

	coord := sys.Coordinator()
	fmt.Printf("coordinator: %d site models, %d leaf components, %d merged groups\n",
		coord.NumModels(), coord.NumLeaves(), len(coord.Groups()))
	if gm := sys.GlobalMixture(); gm != nil {
		fmt.Printf("global mixture: K=%d components over d=%d\n", gm.K(), gm.Dim())
		eval := data
		if len(eval) > 5000 {
			eval = eval[len(eval)-5000:]
		}
		fmt.Printf("average log-likelihood on the most recent %d records: %.4f\n", len(eval), gm.AvgLogLikelihood(eval))
	}
}

// runParallel drives the deployment on the multi-core runtime.
func runParallel(data []linalg.Vector, sites, dim, k int, eps, fitEps, delta float64, cmax, horizon int, seed int64) {
	scs := make([]site.Config, sites)
	for i := range scs {
		scs[i] = site.Config{
			Dim: dim, K: k, Epsilon: eps, FitEps: fitEps, Delta: delta,
			CMax: cmax, Seed: seed + int64(i)*7919,
		}
	}
	cl, err := parallel.New(parallel.Config{
		Sites:                scs,
		Coord:                coordinator.Config{Dim: dim},
		SlidingHorizonChunks: horizon,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	for i, x := range data {
		if err := cl.Feed(i%sites, x); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := cl.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	bytesOut, messages := cl.Stats()
	fmt.Printf("parallel runtime: %d records across %d site goroutines in %v (%.0f records/s)\n",
		len(data), sites, elapsed.Round(time.Millisecond), float64(len(data))/elapsed.Seconds())
	fmt.Printf("communication-equivalent: %d messages, %d bytes\n", messages, bytesOut)
	if gm := cl.GlobalMixture(); gm != nil {
		fmt.Printf("global mixture: K=%d components\n", gm.K())
	}
}
