// Command coordd is the coordinator daemon: it listens for remote-site
// connections (cmd/sited) on TCP and maintains the merged global mixture.
// On SIGINT/SIGTERM it prints a final model summary and exits; with
// -status it also prints a periodic one-line status.
//
// Usage:
//
//	coordd -listen :7070 -dim 4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cludistream/internal/buildinfo"
	"cludistream/internal/coordinator"
	"cludistream/internal/netio"
	"cludistream/internal/telemetry"
)

func main() {
	listen := flag.String("listen", ":7070", "TCP address to listen on")
	dim := flag.Int("dim", 4, "data dimensionality d")
	status := flag.Duration("status", 10*time.Second, "status print interval (0 disables)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/events and pprof on this address (empty = off)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("coordd"))
		return
	}

	var reg *telemetry.Registry
	if *debugAddr != "" {
		reg = telemetry.NewRegistry()
		dbg, err := telemetry.Serve(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer dbg.Close()
		fmt.Printf("coordd: debug endpoints on http://%v/debug/vars\n", dbg.Addr())
	}

	coord, err := coordinator.New(coordinator.Config{Dim: *dim, Telemetry: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	srv, err := netio.NewServerTelemetry(*listen, coord, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("coordd: version=%s listen=%v dim=%d status=%v debug_addr=%s\n",
		buildinfo.Version, srv.Addr(), *dim, *status, *debugAddr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *status > 0 {
		ticker = time.NewTicker(*status)
		tick = ticker.C
		defer ticker.Stop()
	}

	for {
		select {
		case <-tick:
			ds := srv.DeliveryStats()
			srv.Snapshot(func(c *coordinator.Coordinator) {
				fmt.Printf("coordd: %d models / %d leaves / %d groups | %d msgs, %d bytes, %d errors | %d dups dropped, %d site resets\n",
					c.NumModels(), c.NumLeaves(), len(c.Groups()), ds.Applied, ds.BytesIn, ds.ApplyErrors,
					ds.Duplicates, ds.SiteResets)
			})
		case sig := <-sigCh:
			fmt.Printf("coordd: %v — shutting down\n", sig)
			_ = srv.Close()
			ds := srv.DeliveryStats()
			srv.Snapshot(func(c *coordinator.Coordinator) {
				fmt.Printf("coordd: final state — %d site models, %d merged groups\n",
					c.NumModels(), len(c.Groups()))
				if ds.Duplicates > 0 || ds.SiteResets > 0 {
					fmt.Printf("coordd: exactly-once — %d duplicate msgs (%d bytes) dropped, %d site resets\n",
						ds.Duplicates, ds.DuplicateBytes, ds.SiteResets)
				}
				if gm := c.GlobalMixture(); gm != nil {
					for j := 0; j < gm.K(); j++ {
						fmt.Printf("  component %2d: weight %.4f, mean %v\n",
							j, gm.Weight(j), gm.Component(j).Mean())
					}
				}
			})
			return
		}
	}
}
