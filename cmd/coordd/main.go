// Command coordd is the coordinator daemon: it listens for remote-site
// connections (cmd/sited) on TCP and maintains the merged global mixture.
// With -state-dir it is crash-durable: every applied frame is WAL-logged
// before the ack, checkpoints rotate automatically, and a restart
// recovers the exact pre-crash state from disk before accepting
// reconnecting sites (whose restart handshake skips everything already
// applied). On SIGINT/SIGTERM it shuts down gracefully — waiting up to
// -shutdown-timeout for sites to hang up, writing a final checkpoint —
// and prints a final model summary; with -status it also prints a
// periodic one-line status.
//
// Usage:
//
//	coordd -listen :7070 -dim 4 -state-dir /var/lib/coordd
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cludistream/internal/buildinfo"
	"cludistream/internal/coordinator"
	"cludistream/internal/durable"
	"cludistream/internal/netio"
	"cludistream/internal/persist"
	"cludistream/internal/telemetry"
)

func main() {
	listen := flag.String("listen", ":7070", "TCP address to listen on")
	dim := flag.Int("dim", 4, "data dimensionality d")
	status := flag.Duration("status", 10*time.Second, "status print interval (0 disables)")
	stateDir := flag.String("state-dir", "", "checkpoint + WAL directory (empty = in-memory only, no crash durability)")
	checkpointEvery := flag.Int("checkpoint-every", 256, "WAL records between automatic checkpoints")
	fsync := flag.String("fsync", "always", "WAL sync policy: always, interval or never")
	fsyncInterval := flag.Int("fsync-interval", 32, "records per sync when -fsync=interval")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second, "graceful-shutdown wait for connected sites")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/events and pprof on this address (empty = off)")
	trace := flag.Bool("trace", false, "with -debug-addr: record apply/remerge traces and grant sites the wire trace suffix (/debug/traces)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("coordd"))
		return
	}
	if _, err := persist.ParseFsyncMode(*fsync); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var reg *telemetry.Registry
	if *debugAddr != "" {
		reg = telemetry.NewRegistry()
		if *trace {
			reg.EnableTracing(telemetry.TraceOptions{})
		}
		dbg, err := telemetry.Serve(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer dbg.Close()
		fmt.Printf("coordd: debug endpoints on http://%v/debug/vars\n", dbg.Addr())
	}

	coordCfg := coordinator.Config{Dim: *dim, Telemetry: reg}
	var coord *coordinator.Coordinator
	var srvOpts netio.ServerOptions
	srvOpts.Telemetry = reg
	if *stateDir != "" {
		store, rec, err := durable.Open(*stateDir, coordCfg, durable.Options{
			CheckpointEvery: *checkpointEvery,
			Fsync:           persist.FsyncMode(*fsync),
			FsyncInterval:   *fsyncInterval,
			Telemetry:       reg,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "coordd: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if rec.CheckpointLoaded {
			fmt.Printf("coordd: recovered %s — %d models over %d sites, %d WAL records replayed (%d torn bytes) in %v, %d applied total\n",
				*stateDir, rec.Coord.NumModels(), rec.Dedupe.Len(), rec.RecordsReplayed,
				rec.TornBytes, rec.Duration.Round(time.Millisecond), rec.Applied)
		} else {
			fmt.Printf("coordd: fresh state directory %s\n", *stateDir)
		}
		coord = rec.Coord
		srvOpts.Store = store
		srvOpts.Dedupe = rec.Dedupe
	} else {
		var err error
		coord, err = coordinator.New(coordCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	srv, err := netio.NewServerOpts(*listen, coord, srvOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("coordd: version=%s listen=%v dim=%d status=%v state_dir=%s fsync=%s debug_addr=%s\n",
		buildinfo.Version, srv.Addr(), *dim, *status, *stateDir, *fsync, *debugAddr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *status > 0 {
		ticker = time.NewTicker(*status)
		tick = ticker.C
		defer ticker.Stop()
	}

	for {
		select {
		case <-tick:
			ds := srv.DeliveryStats()
			srv.Snapshot(func(c *coordinator.Coordinator) {
				fmt.Printf("coordd: %d models / %d leaves / %d groups | %d msgs, %d bytes, %d errors | %d dups dropped, %d site resets\n",
					c.NumModels(), c.NumLeaves(), len(c.Groups()), ds.Applied, ds.BytesIn, ds.ApplyErrors,
					ds.Duplicates, ds.SiteResets)
			})
		case sig := <-sigCh:
			fmt.Printf("coordd: %v — shutting down (waiting up to %v for sites)\n", sig, *shutdownTimeout)
			// Shutdown writes a final checkpoint when durable, so the
			// next start replays an empty WAL.
			if err := srv.Shutdown(*shutdownTimeout); err != nil {
				fmt.Fprintf(os.Stderr, "coordd: shutdown: %v\n", err)
			} else if *stateDir != "" {
				fmt.Printf("coordd: final checkpoint written to %s\n", *stateDir)
			}
			ds := srv.DeliveryStats()
			srv.Snapshot(func(c *coordinator.Coordinator) {
				fmt.Printf("coordd: final state — %d site models, %d merged groups\n",
					c.NumModels(), len(c.Groups()))
				if ds.Duplicates > 0 || ds.SiteResets > 0 {
					fmt.Printf("coordd: exactly-once — %d duplicate msgs (%d bytes) dropped, %d site resets\n",
						ds.Duplicates, ds.DuplicateBytes, ds.SiteResets)
				}
				if gm := c.GlobalMixture(); gm != nil {
					for j := 0; j < gm.K(); j++ {
						fmt.Printf("  component %2d: weight %.4f, mean %v\n",
							j, gm.Weight(j), gm.Component(j).Mean())
					}
				}
			})
			return
		}
	}
}
