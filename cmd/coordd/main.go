// Command coordd is the coordinator daemon: it listens for remote-site
// connections (cmd/sited) on TCP and maintains the merged global mixture.
// With -state-dir it is crash-durable: every applied frame is WAL-logged
// before the ack, checkpoints rotate automatically, and a restart
// recovers the exact pre-crash state from disk before accepting
// reconnecting sites (whose restart handshake skips everything already
// applied). On SIGINT/SIGTERM it shuts down gracefully — waiting up to
// -shutdown-timeout for sites to hang up, writing a final checkpoint —
// and prints a final model summary; with -status it also prints a
// periodic one-line status.
//
// Usage:
//
//	coordd -listen :7070 -dim 4 -state-dir /var/lib/coordd
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cludistream/internal/buildinfo"
	"cludistream/internal/coordinator"
	"cludistream/internal/durable"
	"cludistream/internal/gaussian"
	"cludistream/internal/netio"
	"cludistream/internal/persist"
	"cludistream/internal/query"
	"cludistream/internal/telemetry"
)

func main() {
	listen := flag.String("listen", ":7070", "TCP address to listen on")
	dim := flag.Int("dim", 4, "data dimensionality d")
	status := flag.Duration("status", 10*time.Second, "status print interval (0 disables)")
	stateDir := flag.String("state-dir", "", "checkpoint + WAL directory (empty = in-memory only, no crash durability)")
	checkpointEvery := flag.Int("checkpoint-every", 256, "WAL records between automatic checkpoints")
	fsync := flag.String("fsync", "always", "WAL sync policy: always, interval or never")
	fsyncInterval := flag.Int("fsync-interval", 32, "records per sync when -fsync=interval")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second, "graceful-shutdown wait for connected sites")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/events and pprof on this address (empty = off)")
	trace := flag.Bool("trace", false, "with -debug-addr: record apply/remerge traces and grant sites the wire trace suffix (/debug/traces)")
	queryAddr := flag.String("query-addr", "", "serve the lock-free query tier (/query/classify, /query/density, /query/topk, /query/batch) on this address (empty = off)")
	publishEvery := flag.Duration("publish-every", 200*time.Millisecond, "with -query-addr: snapshot publication interval (only changed mixtures are republished)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("coordd"))
		return
	}
	// Validate the flag set before recovery replay starts: a -query-addr
	// that collides with -debug-addr or -listen would otherwise surface
	// as a bind failure only after a potentially long WAL replay.
	if _, err := persist.ParseFsyncMode(*fsync); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := validateAddrs(*listen, *debugAddr, *queryAddr); err != nil {
		fmt.Fprintln(os.Stderr, "coordd:", err)
		os.Exit(2)
	}
	if *queryAddr != "" && *publishEvery <= 0 {
		fmt.Fprintln(os.Stderr, "coordd: -publish-every must be positive when -query-addr is set")
		os.Exit(2)
	}

	var reg *telemetry.Registry
	if *debugAddr != "" {
		reg = telemetry.NewRegistry()
		if *trace {
			reg.EnableTracing(telemetry.TraceOptions{})
		}
		dbg, err := telemetry.Serve(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer dbg.Close()
		fmt.Printf("coordd: debug endpoints on http://%v/debug/vars\n", dbg.Addr())
	}

	coordCfg := coordinator.Config{Dim: *dim, Telemetry: reg}
	var coord *coordinator.Coordinator
	var srvOpts netio.ServerOptions
	srvOpts.Telemetry = reg
	if *stateDir != "" {
		store, rec, err := durable.Open(*stateDir, coordCfg, durable.Options{
			CheckpointEvery: *checkpointEvery,
			Fsync:           persist.FsyncMode(*fsync),
			FsyncInterval:   *fsyncInterval,
			Telemetry:       reg,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "coordd: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if rec.CheckpointLoaded {
			fmt.Printf("coordd: recovered %s — %d models over %d sites, %d WAL records replayed (%d torn bytes) in %v, %d applied total\n",
				*stateDir, rec.Coord.NumModels(), rec.Dedupe.Len(), rec.RecordsReplayed,
				rec.TornBytes, rec.Duration.Round(time.Millisecond), rec.Applied)
		} else {
			fmt.Printf("coordd: fresh state directory %s\n", *stateDir)
		}
		coord = rec.Coord
		srvOpts.Store = store
		srvOpts.Dedupe = rec.Dedupe
	} else {
		var err error
		coord, err = coordinator.New(coordCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	srv, err := netio.NewServerOpts(*listen, coord, srvOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("coordd: version=%s listen=%v dim=%d status=%v state_dir=%s fsync=%s debug_addr=%s\n",
		buildinfo.Version, srv.Addr(), *dim, *status, *stateDir, *fsync, *debugAddr)

	if *queryAddr != "" {
		pub := query.NewPublisher(query.Options{Telemetry: reg})
		qsrv, err := query.Serve(*queryAddr, pub)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coordd: query listener:", err)
			os.Exit(2)
		}
		defer qsrv.Close()
		fmt.Printf("coordd: query tier on http://%v/query/classify (publish every %v)\n", qsrv.Addr(), *publishEvery)
		stopPub := make(chan struct{})
		defer close(stopPub)
		go func() {
			t := time.NewTicker(*publishEvery)
			defer t.Stop()
			var lastVer uint64
			for {
				select {
				case <-stopPub:
					return
				case <-t.C:
				}
				// Capture mixture, version and mass atomically under the
				// apply lock so the snapshot equals the coordinator state
				// at an exact applied-update prefix; the deep copy and
				// kd-index build happen outside the lock (the captured
				// mixture is immutable).
				var mix *gaussian.Mixture
				var ver uint64
				var mass float64
				srv.Snapshot(func(c *coordinator.Coordinator) {
					if ver = c.MixtureVersion(); ver != lastVer {
						mix = c.GlobalMixture()
						mass = c.TotalWeight()
					}
				})
				if mix == nil { // unchanged since last publish, or still empty
					continue
				}
				if _, err := pub.Publish(mix, ver, mass); err != nil {
					fmt.Fprintln(os.Stderr, "coordd: publish:", err)
					continue
				}
				lastVer = ver
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *status > 0 {
		ticker = time.NewTicker(*status)
		tick = ticker.C
		defer ticker.Stop()
	}

	for {
		select {
		case <-tick:
			ds := srv.DeliveryStats()
			srv.Snapshot(func(c *coordinator.Coordinator) {
				fmt.Printf("coordd: %d models / %d leaves / %d groups | %d msgs, %d bytes, %d errors | %d dups dropped, %d site resets\n",
					c.NumModels(), c.NumLeaves(), len(c.Groups()), ds.Applied, ds.BytesIn, ds.ApplyErrors,
					ds.Duplicates, ds.SiteResets)
			})
		case sig := <-sigCh:
			fmt.Printf("coordd: %v — shutting down (waiting up to %v for sites)\n", sig, *shutdownTimeout)
			// Shutdown writes a final checkpoint when durable, so the
			// next start replays an empty WAL.
			if err := srv.Shutdown(*shutdownTimeout); err != nil {
				fmt.Fprintf(os.Stderr, "coordd: shutdown: %v\n", err)
			} else if *stateDir != "" {
				fmt.Printf("coordd: final checkpoint written to %s\n", *stateDir)
			}
			ds := srv.DeliveryStats()
			srv.Snapshot(func(c *coordinator.Coordinator) {
				fmt.Printf("coordd: final state — %d site models, %d merged groups\n",
					c.NumModels(), len(c.Groups()))
				if ds.Duplicates > 0 || ds.SiteResets > 0 {
					fmt.Printf("coordd: exactly-once — %d duplicate msgs (%d bytes) dropped, %d site resets\n",
						ds.Duplicates, ds.DuplicateBytes, ds.SiteResets)
				}
				if gm := c.GlobalMixture(); gm != nil {
					for j := 0; j < gm.K(); j++ {
						fmt.Printf("  component %2d: weight %.4f, mean %v\n",
							j, gm.Weight(j), gm.Component(j).Mean())
					}
				}
			})
			return
		}
	}
}

// validateAddrs rejects listen/debug/query address collisions up front,
// before recovery replay, instead of letting the second bind fail late.
// Two addresses collide when their ports match and their hosts overlap —
// equal hosts, or either side binding the wildcard.
func validateAddrs(listen, debug, query string) error {
	type bound struct{ flag, addr string }
	var bounds []bound
	for _, b := range []bound{{"-listen", listen}, {"-debug-addr", debug}, {"-query-addr", query}} {
		if b.addr != "" {
			bounds = append(bounds, b)
		}
	}
	for i := 0; i < len(bounds); i++ {
		for j := i + 1; j < len(bounds); j++ {
			if addrsCollide(bounds[i].addr, bounds[j].addr) {
				return fmt.Errorf("%s and %s would both bind %s — pick distinct addresses",
					bounds[i].flag, bounds[j].flag, bounds[j].addr)
			}
		}
	}
	return nil
}

func addrsCollide(a, b string) bool {
	ha, pa, errA := net.SplitHostPort(a)
	hb, pb, errB := net.SplitHostPort(b)
	if errA != nil || errB != nil {
		// Unparseable addresses fail at bind with their own clear error.
		return a == b
	}
	if pa != pb || pa == "0" {
		return false // different ports, or ephemeral ports that never collide
	}
	wild := func(h string) bool { return h == "" || h == "0.0.0.0" || h == "::" }
	return ha == hb || wild(ha) || wild(hb)
}
