// Command datagen emits the evaluation data sets as CSV on stdout.
//
// Usage:
//
//	datagen -kind synthetic -n 100000 -dim 4 -k 5 -pd 0.1 [-noise 0.05] [-seed 1]
//	datagen -kind nfd -n 100000 [-pd 0.1] [-seed 1]
//
// The synthetic stream follows a series of Gaussian mixtures with a new
// distribution drawn at each regime boundary with probability pd; the nfd
// stream is the normalized 6-attribute net-flow workload described in
// DESIGN.md.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"cludistream/internal/stream"
)

func main() {
	kind := flag.String("kind", "synthetic", "data set kind: synthetic or nfd")
	n := flag.Int("n", 100_000, "number of records")
	dim := flag.Int("dim", 4, "dimensionality (synthetic only)")
	k := flag.Int("k", 5, "mixture components per regime (synthetic only)")
	pd := flag.Float64("pd", 0.1, "probability of a new distribution per regime boundary")
	regime := flag.Int("regime", 2000, "records per regime interval")
	noise := flag.Float64("noise", 0, "uniform-noise fraction (synthetic only)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var gen stream.Generator
	var err error
	switch *kind {
	case "synthetic":
		gen, err = stream.NewSynthetic(stream.SyntheticConfig{
			Dim: *dim, K: *k, Pd: *pd, RegimeLen: *regime, NoiseFrac: *noise, Seed: *seed,
		})
	case "nfd":
		gen, err = stream.NewNFD(stream.NFDConfig{Pd: *pd, RegimeLen: *regime, Seed: *seed})
	default:
		err = fmt.Errorf("unknown kind %q (want synthetic or nfd)", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := stream.WriteCSV(w, stream.Take(gen, *n)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
