// Command dst drives the deterministic simulation testing harness
// (internal/dst): seeded whole-system scenarios with fault injection, a
// per-update invariant suite, replayable failures, and a greedy schedule
// minimizer.
//
// Usage:
//
//	dst run -seeds 100                 # sweep seeds 1..100 (short scenarios)
//	dst run -seeds 500 -long           # nightly: bigger deployments
//	dst run -tree -seeds 150           # tree topologies: 100+ sites behind aggregators
//	dst replay -seed 42                # re-run one seed twice, prove bit-identical
//	dst replay -tree -seed 42          # same, for a tree scenario
//	dst replay -scenario fail.json     # replay a written scenario file
//	dst shrink -scenario fail.json -o min.json
//
// A violating run writes a self-contained artifact (dst-fail-seed<N>.json
// or dst-tree-fail-seed<N>.json: seed, scenario, violation) and exits 1.
// replay exits 2 if two runs of the same input ever diverge — that would
// mean the harness itself lost determinism.
//
// Tree scenarios are independent per seed, so the tree sweep fans out
// across CPUs; flat scenarios stay sequential to preserve the exact
// first-failure ordering older artifacts were minimized against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"cludistream/internal/dst"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "shrink":
		cmdShrink(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dst <run|replay|shrink> [flags]")
}

// cmdRun sweeps a seed range, stopping at the first violation with a
// written artifact.
func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seeds := fs.Int("seeds", 100, "number of seeds to run")
	start := fs.Int64("start", 1, "first seed")
	long := fs.Bool("long", false, "long mode: larger deployments and drift programs")
	treeMode := fs.Bool("tree", false, "tree mode: random multi-layer topologies with interior faults")
	inject := fs.Bool("inject-dedupe-bug", false, "deliberately break the coordinator dedupe (harness self-test)")
	dir := fs.String("artifact-dir", ".", "directory for failure artifacts")
	verbose := fs.Bool("v", false, "print each seed's summary")
	fs.Parse(args)

	if *treeMode {
		runTreeSweep(*seeds, *start, *long, *inject, *dir, *verbose)
		return
	}
	opts := dst.Options{InjectDedupeFault: *inject}
	t0 := time.Now()
	for seed := *start; seed < *start+int64(*seeds); seed++ {
		sc := dst.Generate(seed, !*long)
		res, err := dst.Run(sc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dst: seed %d: %v\n", seed, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Printf("seed %-6d sites=%d dim=%d updates=%-4d dup=%-3d retries=%-4d t=%.1fs fp=%016x\n",
				seed, sc.NumSites, sc.Dim, res.Updates, res.Delivery.DupDelivered, res.Delivery.Retries, res.SimTime, res.Fingerprint)
		}
		if res.Violation != nil {
			path := filepath.Join(*dir, fmt.Sprintf("dst-fail-seed%d.json", seed))
			if err := writeArtifact(path, res); err != nil {
				fmt.Fprintf(os.Stderr, "dst: writing artifact: %v\n", err)
			}
			fmt.Fprintf(os.Stderr, "dst: seed %d FAILED: %v\n  artifact: %s\n  replay:   dst replay -seed %d%s\n",
				seed, res.Violation, path, seed, longFlag(*long))
			os.Exit(1)
		}
	}
	fmt.Printf("dst: %d seeds green in %.1fs\n", *seeds, time.Since(t0).Seconds())
}

// runTreeSweep sweeps tree-topology seeds across the CPUs. Each seed is
// an independent pure function, so the fan-out changes nothing about the
// results; the sweep runs every seed and reports the lowest failing one,
// writing an artifact per failure.
func runTreeSweep(seeds int, start int64, long, inject bool, dir string, verbose bool) {
	opts := dst.TreeOptions{InjectDedupeFault: inject}
	t0 := time.Now()
	type outcome struct {
		seed int64
		res  *dst.TreeResult
		err  error
	}
	jobs := make(chan int64)
	results := make(chan outcome, seeds)
	var wg sync.WaitGroup
	for w := 0; w < runtime.NumCPU(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range jobs {
				res, err := dst.RunTree(dst.GenerateTree(seed, !long), opts)
				results <- outcome{seed: seed, res: res, err: err}
			}
		}()
	}
	go func() {
		for seed := start; seed < start+int64(seeds); seed++ {
			jobs <- seed
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	var failed []outcome
	for o := range results {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "dst: tree seed %d: %v\n", o.seed, o.err)
			os.Exit(1)
		}
		if verbose {
			sc := o.res.Scenario
			fmt.Printf("tree seed %-6d sites=%-4d layers=%d updates=%-5d crashes=%d restarts=%d t=%.1fs fp=%016x\n",
				o.seed, sc.NumSites(), sc.Topology.Depth()-1, o.res.Updates, len(sc.Crashes), o.res.Recovery.Restarts, o.res.SimTime, o.res.Fingerprint)
		}
		if o.res.Violation != nil {
			failed = append(failed, o)
		}
	}
	if len(failed) > 0 {
		sort.Slice(failed, func(i, j int) bool { return failed[i].seed < failed[j].seed })
		for _, o := range failed {
			path := filepath.Join(dir, fmt.Sprintf("dst-tree-fail-seed%d.json", o.seed))
			if err := writeTreeArtifact(path, o.res); err != nil {
				fmt.Fprintf(os.Stderr, "dst: writing artifact: %v\n", err)
			}
			fmt.Fprintf(os.Stderr, "dst: tree seed %d FAILED: %v\n  artifact: %s\n  replay:   dst replay -tree -seed %d%s\n",
				o.seed, o.res.Violation, path, o.seed, longFlag(long))
		}
		os.Exit(1)
	}
	fmt.Printf("dst: %d tree seeds green in %.1fs\n", seeds, time.Since(t0).Seconds())
}

// cmdReplay runs one seed (or scenario file) twice and proves the two
// runs are bit-identical, printing the deterministic core.
func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "seed to replay (generates the scenario)")
	scenarioPath := fs.String("scenario", "", "scenario file to replay instead of a seed")
	long := fs.Bool("long", false, "long mode (must match the run that failed)")
	treeMode := fs.Bool("tree", false, "replay a tree scenario")
	inject := fs.Bool("inject-dedupe-bug", false, "deliberately break the coordinator dedupe")
	fs.Parse(args)

	if *treeMode {
		replayTree(*seed, *scenarioPath, *long, *inject)
		return
	}
	sc, err := loadScenario(*seed, *scenarioPath, *long)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dst:", err)
		os.Exit(2)
	}
	opts := dst.Options{InjectDedupeFault: *inject}
	var cores [2][]byte
	var last *dst.Result
	for i := range cores {
		res, err := dst.Run(sc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dst: replay %d: %v\n", i+1, err)
			os.Exit(2)
		}
		core := coreJSON(res)
		cores[i] = core
		last = res
	}
	if string(cores[0]) != string(cores[1]) {
		fmt.Fprintf(os.Stderr, "dst: NON-DETERMINISTIC: replays diverged\nfirst:  %s\nsecond: %s\n", cores[0], cores[1])
		os.Exit(2)
	}
	fmt.Printf("replay bit-identical across 2 runs:\n%s\n", cores[0])
	if last.Violation != nil {
		os.Exit(1)
	}
}

// replayTree is cmdReplay for tree scenarios: two runs of the same input
// must produce bit-identical deterministic cores.
func replayTree(seed int64, path string, long, inject bool) {
	var sc dst.TreeScenario
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dst:", err)
			os.Exit(2)
		}
		var rerr error
		sc, rerr = dst.ReadTreeScenario(f)
		f.Close()
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "dst:", rerr)
			os.Exit(2)
		}
	case seed != 0:
		sc = dst.GenerateTree(seed, !long)
	default:
		fmt.Fprintln(os.Stderr, "dst: need -seed or -scenario")
		os.Exit(2)
	}
	opts := dst.TreeOptions{InjectDedupeFault: inject}
	var cores [2][]byte
	var last *dst.TreeResult
	for i := range cores {
		res, err := dst.RunTree(sc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dst: replay %d: %v\n", i+1, err)
			os.Exit(2)
		}
		c := dst.TreeCore{
			Seed:           res.Scenario.Seed,
			Updates:        res.Updates,
			SimTime:        res.SimTime,
			Fingerprint:    res.Fingerprint,
			RefFingerprint: res.RefFingerprint,
		}
		if res.Violation != nil {
			c.Violation = *res.Violation
		}
		b, _ := json.Marshal(c)
		cores[i] = b
		last = res
	}
	if string(cores[0]) != string(cores[1]) {
		fmt.Fprintf(os.Stderr, "dst: NON-DETERMINISTIC: tree replays diverged\nfirst:  %s\nsecond: %s\n", cores[0], cores[1])
		os.Exit(2)
	}
	fmt.Printf("tree replay bit-identical across 2 runs:\n%s\n", cores[0])
	if last.Violation != nil {
		os.Exit(1)
	}
}

// cmdShrink minimizes a failing scenario.
func cmdShrink(args []string) {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "seed to shrink (generates the scenario)")
	scenarioPath := fs.String("scenario", "", "scenario file to shrink")
	long := fs.Bool("long", false, "long mode")
	inject := fs.Bool("inject-dedupe-bug", false, "deliberately break the coordinator dedupe")
	out := fs.String("o", "dst-min.json", "output path for the minimized scenario")
	fs.Parse(args)

	sc, err := loadScenario(*seed, *scenarioPath, *long)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dst:", err)
		os.Exit(2)
	}
	opts := dst.Options{InjectDedupeFault: *inject}
	min, runs := dst.Shrink(sc, opts)
	res, err := dst.Run(min, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dst:", err)
		os.Exit(2)
	}
	if res.Violation == nil {
		fmt.Fprintln(os.Stderr, "dst: input scenario does not fail; nothing to shrink")
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dst:", err)
		os.Exit(2)
	}
	defer f.Close()
	if err := dst.WriteScenario(f, min); err != nil {
		fmt.Fprintln(os.Stderr, "dst:", err)
		os.Exit(2)
	}
	fmt.Printf("shrunk after %d runs: %d sites, %d outages, drop=%.2f dup=%.2f — still fails with: %v\nwrote %s\n",
		runs, min.NumSites, len(min.Outages), min.DropProb, min.DupProb, res.Violation, *out)
}

// loadScenario resolves the -seed/-scenario flags.
func loadScenario(seed int64, path string, long bool) (dst.Scenario, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return dst.Scenario{}, err
		}
		defer f.Close()
		return dst.ReadScenario(f)
	case seed != 0:
		return dst.Generate(seed, !long), nil
	default:
		return dst.Scenario{}, fmt.Errorf("need -seed or -scenario")
	}
}

func writeTreeArtifact(path string, res *dst.TreeResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return dst.WriteTreeArtifact(f, res.ToArtifact())
}

func writeArtifact(path string, res *dst.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return dst.WriteArtifact(f, res.ToArtifact())
}

func coreJSON(res *dst.Result) []byte {
	c := dst.Core{
		Seed:             res.Scenario.Seed,
		Updates:          res.Updates,
		SimTime:          res.SimTime,
		Fingerprint:      res.Fingerprint,
		CleanFingerprint: res.CleanFingerprint,
	}
	if res.Violation != nil {
		c.Violation = *res.Violation
	}
	b, _ := json.Marshal(c)
	return b
}

func longFlag(long bool) string {
	if long {
		return " -long"
	}
	return ""
}
