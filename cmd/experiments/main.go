// Command experiments regenerates the paper's figures as text tables.
//
// Usage:
//
//	experiments -list
//	experiments [-profile quick|paper] [-seed N] [-workers N]
//	            [-cpuprofile out.pprof] [-memprofile out.pprof] [name ...]
//
// With no names, the whole suite runs in paper order. Each experiment
// prints its table (series + notes comparing the measured shape with the
// paper's claim) to stdout. The -cpuprofile/-memprofile flags write pprof
// profiles covering the selected experiments, so kernel regressions in the
// hot scoring/E-step paths can be diagnosed with `go tool pprof`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"cludistream/internal/coordinator"
	"cludistream/internal/experiments"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
)

func main() {
	profile := flag.String("profile", "quick", "parameter profile: quick or paper")
	seed := flag.Int64("seed", 1, "global random seed")
	list := flag.Bool("list", false, "list experiment names and exit")
	workers := flag.Int("workers", 0, "EM worker goroutines per fit (0 = GOMAXPROCS; results are identical at any value)")
	cold := flag.Bool("cold", false, "disable warm-start refit seeding (A/B baseline: every EM refit uses cold k-means++ init)")
	exact := flag.Bool("exact", false, "disable the sublinear hot paths (A/B baseline: exact J_fit scans, per-probe re-scans, exhaustive remerge sweeps; results are bit-identical either way)")
	pruneTopM := flag.Int("prune-top-m", 0, "top-m candidates for k-d-pruned J_fit scoring (0 = default 4, negative = exact scan)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	telemetryOut := flag.String("telemetry", "", `end-of-run telemetry dump: "text", "json", or a file path (.json gets JSON)`)
	trace := flag.Bool("trace", false, "with -telemetry: trace every chunk ingest→global-visibility (freshness-SLO histograms ride the simulated clock)")
	flag.Parse()

	if *list {
		for _, r := range experiments.Suite() {
			fmt.Println(r.Name)
		}
		return
	}

	var p experiments.Params
	switch *profile {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (want quick or paper)\n", *profile)
		os.Exit(2)
	}
	p.Seed = *seed
	p.EMWorkers = *workers
	if *cold {
		p.WarmStart = site.WarmStartCold
	}
	p.PruneTopM = *pruneTopM
	if *exact {
		p.PruneTopM = -1
		p.SharedChunkStats = site.SharedStatsOff
		p.IncrementalRemerge = coordinator.RemergeExact
	}
	var reg *telemetry.Registry
	if *telemetryOut != "" {
		reg = telemetry.NewRegistry()
		if *trace {
			reg.EnableTracing(telemetry.TraceOptions{})
		}
		p.Telemetry = reg
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	runners := experiments.Suite()
	if names := flag.Args(); len(names) > 0 {
		runners = runners[:0]
		for _, name := range names {
			r := experiments.Find(name)
			if r == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", name)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		tb, err := r.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Print(tb.Render())
		fmt.Printf("# [%s completed in %v]\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}

	if reg != nil {
		if err := dumpTelemetry(reg, *telemetryOut); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			os.Exit(1)
		}
	}
}

// dumpTelemetry writes the suite-wide registry snapshot. dest "text" prints
// a human-readable table to stdout, "json" prints JSON to stdout, and any
// other value is a file path (JSON when it ends in .json, text otherwise).
func dumpTelemetry(reg *telemetry.Registry, dest string) error {
	snap := reg.Snapshot()
	asJSON := dest == "json" || strings.HasSuffix(dest, ".json")
	var buf bytes.Buffer
	if asJSON {
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(&buf, "# telemetry (%d counters, %d histograms, %d journal events)\n",
			len(snap.Counters), len(snap.Histograms), snap.Journal.Len)
		for _, name := range reg.CounterNames() {
			fmt.Fprintf(&buf, "%-28s %d\n", name, snap.Counters[name])
		}
		hists := make([]string, 0, len(snap.Histograms))
		for name := range snap.Histograms {
			hists = append(hists, name)
		}
		sort.Strings(hists)
		for _, name := range hists {
			h := snap.Histograms[name]
			fmt.Fprintf(&buf, "%-28s count=%d sum=%.4g\n", name, h.Count, h.Sum)
		}
	}
	if dest == "text" || dest == "json" {
		_, err := os.Stdout.Write(buf.Bytes())
		return err
	}
	if err := os.WriteFile(dest, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("# telemetry written to %s\n", dest)
	return nil
}
