// Command experiments regenerates the paper's figures as text tables.
//
// Usage:
//
//	experiments -list
//	experiments [-profile quick|paper] [-seed N] [-workers N]
//	            [-cpuprofile out.pprof] [-memprofile out.pprof] [name ...]
//
// With no names, the whole suite runs in paper order. Each experiment
// prints its table (series + notes comparing the measured shape with the
// paper's claim) to stdout. The -cpuprofile/-memprofile flags write pprof
// profiles covering the selected experiments, so kernel regressions in the
// hot scoring/E-step paths can be diagnosed with `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cludistream/internal/experiments"
)

func main() {
	profile := flag.String("profile", "quick", "parameter profile: quick or paper")
	seed := flag.Int64("seed", 1, "global random seed")
	list := flag.Bool("list", false, "list experiment names and exit")
	workers := flag.Int("workers", 0, "EM worker goroutines per fit (0 = GOMAXPROCS; results are identical at any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.Suite() {
			fmt.Println(r.Name)
		}
		return
	}

	var p experiments.Params
	switch *profile {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (want quick or paper)\n", *profile)
		os.Exit(2)
	}
	p.Seed = *seed
	p.EMWorkers = *workers

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	runners := experiments.Suite()
	if names := flag.Args(); len(names) > 0 {
		runners = runners[:0]
		for _, name := range names {
			r := experiments.Find(name)
			if r == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", name)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		tb, err := r.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Print(tb.Render())
		fmt.Printf("# [%s completed in %v]\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
}
