// Command obsdump pretty-prints the telemetry of a running daemon (sited,
// coordd or aggd started with -debug-addr) or of a snapshot file written by
// `experiments -telemetry out.json`.
//
// Usage:
//
//	obsdump -addr localhost:7171              # one formatted snapshot
//	obsdump -addr localhost:7171 -json        # raw JSON snapshot
//	obsdump -addr localhost:7171 -events      # dump the event journal
//	obsdump -addr localhost:7171 -events -follow 1s   # tail it forever
//	obsdump -addr localhost:7171 trace        # slowest-trace span waterfalls
//	obsdump -addr localhost:7171 trace 42     # waterfall of one trace by ID
//	obsdump -addr localhost:7171 query        # query-tier view: version, qps, staleness
//	obsdump out.json                          # pretty-print a saved snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"cludistream/internal/buildinfo"
	"cludistream/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "", "debug address of a running daemon (host:port)")
	events := flag.Bool("events", false, "dump the event journal instead of the snapshot")
	after := flag.Uint64("after", 0, "with -events: only events with sequence > this")
	limit := flag.Int("limit", 0, "with -events: at most this many events per fetch (0 = all)")
	follow := flag.Duration("follow", 0, "with -events: poll at this interval forever (0 = once)")
	raw := flag.Bool("json", false, "emit raw JSON instead of formatted text")
	interval := flag.Duration("interval", time.Second, "with query: sample window for per-op qps")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("obsdump"))
		return
	}

	var err error
	switch {
	case *addr != "" && flag.NArg() >= 1 && flag.Arg(0) == "trace":
		var id string
		if flag.NArg() >= 2 {
			id = flag.Arg(1)
		}
		err = dumpTrace(*addr, id, *raw)
	case *addr != "" && flag.NArg() >= 1 && flag.Arg(0) == "query":
		err = dumpQuery(*addr, *interval, *raw)
	case *addr == "" && flag.NArg() == 1:
		err = dumpFile(flag.Arg(0), *raw)
	case *addr != "" && *events:
		err = dumpEvents(*addr, *after, *limit, *follow)
	case *addr != "":
		err = dumpSnapshot(*addr, *raw)
	default:
		fmt.Fprintln(os.Stderr, "usage: obsdump -addr host:port [-events] [-json] [trace [ID] | query] | obsdump snapshot.json")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsdump:", err)
		os.Exit(1)
	}
}

func fetch(rawURL string) ([]byte, error) {
	resp, err := http.Get(rawURL)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", rawURL, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func dumpSnapshot(addr string, raw bool) error {
	body, err := fetch("http://" + addr + "/debug/vars")
	if err != nil {
		return err
	}
	if raw {
		_, err = os.Stdout.Write(body)
		return err
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("decode snapshot: %w", err)
	}
	printSnapshot(&snap)
	return nil
}

func dumpFile(path string, raw bool) error {
	body, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if raw {
		_, err = os.Stdout.Write(body)
		return err
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("decode %s: %w", path, err)
	}
	printSnapshot(&snap)
	return nil
}

func printSnapshot(snap *telemetry.Snapshot) {
	if snap.TakenUnixNs > 0 {
		fmt.Printf("snapshot taken %s\n", time.Unix(0, snap.TakenUnixNs).Format(time.RFC3339))
	}
	if len(snap.Counters) > 0 {
		fmt.Println("\ncounters:")
		for _, name := range sortedKeys(snap.Counters) {
			fmt.Printf("  %-28s %d\n", name, snap.Counters[name])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Println("\ngauges:")
		for _, name := range sortedKeys(snap.Gauges) {
			fmt.Printf("  %-28s %g\n", name, snap.Gauges[name])
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Println("\nhistograms:")
		for _, name := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[name]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Printf("  %-28s count=%d mean=%.4g\n", name, h.Count, mean)
			for _, b := range h.Buckets {
				fmt.Printf("    ≤ %-10g %-8d %s\n", b.Le, b.Count, bar(b.Count, h.Count))
			}
			if h.Overflow > 0 {
				fmt.Printf("    > %-10g %-8d %s\n", h.Buckets[len(h.Buckets)-1].Le, h.Overflow, bar(h.Overflow, h.Count))
			}
		}
	}
	fmt.Printf("\njournal: %d events buffered, last seq %d, %d evicted\n",
		snap.Journal.Len, snap.Journal.LastSeq, snap.Journal.Dropped)
}

// bar renders count/total as a proportional text bar.
func bar(count, total int64) string {
	if total <= 0 || count <= 0 {
		return ""
	}
	n := int(40 * count / total)
	if n == 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// dumpTrace renders /debug/traces: with an ID, one trace's span
// waterfall; without, the tracer overview (span counts plus the
// slowest-trace exemplars, each as a waterfall).
func dumpTrace(addr, id string, raw bool) error {
	u := "http://" + addr + "/debug/traces"
	if id != "" {
		u += "?id=" + url.QueryEscape(id)
	}
	body, err := fetch(u)
	if err != nil {
		return err
	}
	if raw {
		_, err = os.Stdout.Write(body)
		return err
	}
	if id != "" {
		var tr telemetry.Trace
		if err := json.Unmarshal(body, &tr); err != nil {
			return fmt.Errorf("decode trace: %w", err)
		}
		printTrace(&tr)
		return nil
	}
	var snap telemetry.TracerSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("decode traces: %w", err)
	}
	fmt.Printf("tracer: %d active traces, %d evicted\n", snap.Active, snap.Evicted)
	if len(snap.SpanCounts) > 0 {
		fmt.Println("\nspan counts:")
		for _, name := range sortedKeys(snap.SpanCounts) {
			fmt.Printf("  %-28s %d\n", name, snap.SpanCounts[name])
		}
	}
	if len(snap.Slowest) == 0 {
		fmt.Println("\nno completed traces yet")
		return nil
	}
	fmt.Printf("\nslowest %d ingest→visible traces:\n", len(snap.Slowest))
	for i := range snap.Slowest {
		printTrace(&snap.Slowest[i])
	}
	return nil
}

// waterfallWidth is the character width of the waterfall column.
const waterfallWidth = 32

// printTrace renders one trace as a span waterfall: spans sorted by start
// time, each with its offset from the trace's first instant, duration,
// and a proportional position bar.
func printTrace(tr *telemetry.Trace) {
	spans := make([]telemetry.Span, len(tr.Spans))
	copy(spans, tr.Spans)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	t0, t1 := tr.IngestT, tr.VisibleT
	if len(spans) > 0 {
		if !tr.Origin || t0 > spans[0].Start {
			t0 = spans[0].Start
		}
		for _, sp := range spans {
			if sp.End > t1 {
				t1 = sp.End
			}
		}
	}
	total := t1 - t0
	fmt.Printf("\ntrace %d  site %d chunk %d", tr.ID, tr.Site, tr.Chunk)
	if tr.Completed {
		fmt.Printf("  ingest→visible %.6gs", tr.VisibleT-t0)
	} else {
		fmt.Printf("  (in flight, %.6gs so far)", total)
	}
	fmt.Println()
	for _, sp := range spans {
		off, dur := sp.Start-t0, sp.End-sp.Start
		var pos, width int
		if total > 0 {
			pos = int(off / total * waterfallWidth)
			width = int(dur / total * waterfallWidth)
		}
		if pos > waterfallWidth-1 {
			pos = waterfallWidth - 1
		}
		if width < 1 {
			width = 1
		}
		if pos+width > waterfallWidth {
			width = waterfallWidth - pos
		}
		lane := strings.Repeat(" ", pos) + strings.Repeat("#", width) + strings.Repeat(" ", waterfallWidth-pos-width)
		line := fmt.Sprintf("  +%-9.6g %-9.6g |%s| %s", off, dur, lane, sp.Name)
		if sp.Site != 0 {
			line += fmt.Sprintf(" site=%d", sp.Site)
		}
		if sp.Model != 0 {
			line += fmt.Sprintf(" model=%d", sp.Model)
		}
		if sp.N != 0 {
			line += fmt.Sprintf(" n=%d", sp.N)
		}
		if sp.Note != "" {
			line += fmt.Sprintf(" (%s)", sp.Note)
		}
		fmt.Println(line)
	}
}

// queryOps are the per-op query counters rated into qps by dumpQuery,
// in display order.
var queryOps = []string{"query.classify", "query.density", "query.topk", "query.publishes"}

// dumpQuery renders the query-tier view of a daemon's /debug/vars: the
// served snapshot version (against the coordinator's mixture version),
// per-op qps computed from two samples an interval apart, and the
// read-path staleness histogram.
func dumpQuery(addr string, interval time.Duration, raw bool) error {
	grab := func() (*telemetry.Snapshot, error) {
		body, err := fetch("http://" + addr + "/debug/vars")
		if err != nil {
			return nil, err
		}
		var snap telemetry.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			return nil, fmt.Errorf("decode snapshot: %w", err)
		}
		return &snap, nil
	}
	first, err := grab()
	if err != nil {
		return err
	}
	if interval <= 0 {
		interval = time.Second
	}
	t0 := time.Now()
	time.Sleep(interval)
	snap, err := grab()
	if err != nil {
		return err
	}
	dt := time.Since(t0).Seconds()
	if raw {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	if _, ok := snap.Gauges["query.snapshot_version"]; !ok {
		fmt.Println("no query tier published yet (query.snapshot_version gauge absent)")
		return nil
	}
	fmt.Printf("query tier @ %s (window %.3gs)\n\n", addr, dt)
	fmt.Printf("  %-28s %.0f\n", "snapshot version", snap.Gauges["query.snapshot_version"])
	if v, ok := snap.Gauges["coord.mixture_version"]; ok {
		fmt.Printf("  %-28s %.0f\n", "coordinator mixture version", v)
		if lag := v - snap.Gauges["query.snapshot_version"]; lag > 0 {
			fmt.Printf("  %-28s %.0f version(s) behind\n", "publish lag", lag)
		}
	}
	fmt.Println("\nper-op rates:")
	for _, name := range queryOps {
		delta := snap.Counters[name] - first.Counters[name]
		fmt.Printf("  %-28s %12.4g qps  (total %d)\n", name, float64(delta)/dt, snap.Counters[name])
	}
	for _, name := range []string{"query.staleness_seconds", "query.refresh_seconds"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Printf("\n%s: count=%d mean=%.4g\n", name, h.Count, h.Sum/float64(h.Count))
		for _, b := range h.Buckets {
			fmt.Printf("  ≤ %-10g %-8d %s\n", b.Le, b.Count, bar(b.Count, h.Count))
		}
		if h.Overflow > 0 {
			fmt.Printf("  > %-10g %-8d %s\n", h.Buckets[len(h.Buckets)-1].Le, h.Overflow, bar(h.Overflow, h.Count))
		}
	}
	return nil
}

// eventsPage mirrors the /debug/events response shape.
type eventsPage struct {
	LastSeq uint64            `json:"last_seq"`
	Events  []telemetry.Event `json:"events"`
}

func dumpEvents(addr string, after uint64, limit int, follow time.Duration) error {
	for {
		q := url.Values{}
		if after > 0 {
			q.Set("after", strconv.FormatUint(after, 10))
		}
		if limit > 0 {
			q.Set("limit", strconv.Itoa(limit))
		}
		u := "http://" + addr + "/debug/events"
		if enc := q.Encode(); enc != "" {
			u += "?" + enc
		}
		body, err := fetch(u)
		if err != nil {
			return err
		}
		var page eventsPage
		if err := json.Unmarshal(body, &page); err != nil {
			return fmt.Errorf("decode events: %w", err)
		}
		for _, e := range page.Events {
			printEvent(e)
		}
		if page.LastSeq > after {
			after = page.LastSeq
		}
		if follow <= 0 {
			return nil
		}
		time.Sleep(follow)
	}
}

func printEvent(e telemetry.Event) {
	var b strings.Builder
	fmt.Fprintf(&b, "%8d %s %-18s", e.Seq, time.Unix(0, e.UnixNs).Format("15:04:05.000"), e.Kind)
	if e.Site != 0 {
		fmt.Fprintf(&b, " site=%d", e.Site)
	}
	if e.Model != 0 {
		fmt.Fprintf(&b, " model=%d", e.Model)
	}
	if e.Value != 0 {
		fmt.Fprintf(&b, " value=%.6g", e.Value)
	}
	if e.N != 0 {
		fmt.Fprintf(&b, " n=%d", e.N)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " (%s)", e.Note)
	}
	fmt.Println(b.String())
}
