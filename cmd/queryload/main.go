// Command queryload is the load generator behind the query tier's Mqps
// claim: it stands up one or more coordinator shards, keeps them churning
// (site-model replacement + snapshot publication, plus shard-reduce when
// sharded) and hammers the lock-free read path with a configurable worker
// pool, then reports aggregate and per-worker throughput.
//
// Usage:
//
//	queryload -workers 8 -duration 5s -op classify
//	queryload -shards 4 -op mix -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cludistream/internal/buildinfo"
	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/query"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
)

func main() {
	dim := flag.Int("dim", 4, "data dimensionality d")
	shards := flag.Int("shards", 1, "coordinator shards (each owns a site subset; >1 adds the reduce layer)")
	sites := flag.Int("sites", 8, "sites per shard")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "query worker goroutines")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	op := flag.String("op", "classify", "query op: classify, density, topk or mix")
	k := flag.Int("k", 3, "k for topk queries")
	reduceEvery := flag.Duration("reduce-every", 5*time.Millisecond, "shard-reduce interval (shards > 1)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("queryload"))
		return
	}
	switch *op {
	case "classify", "density", "topk", "mix":
	default:
		fmt.Fprintf(os.Stderr, "queryload: unknown -op %q (want classify, density, topk or mix)\n", *op)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	rng := rand.New(rand.NewSource(1))

	// Build the shards: each coordinator owns its own site subset and
	// publisher; with >1 shards a ShardSet reduces them into the served
	// mixture, exercising the same source interface either way.
	coords := make([]*coordinator.Coordinator, *shards)
	pubs := make([]*query.Publisher, *shards)
	for s := range coords {
		c, err := coordinator.New(coordinator.Config{Dim: *dim, Merge: gaussian.MergeOptions{MomentOnly: true}})
		if err != nil {
			fmt.Fprintln(os.Stderr, "queryload:", err)
			os.Exit(1)
		}
		for st := 1; st <= *sites; st++ {
			u := site.Update{SiteID: st, ModelID: 1, Kind: site.NewModel,
				Mixture: clusteredMixture(rng, *dim), Count: 100}
			if err := c.HandleUpdate(u); err != nil {
				fmt.Fprintln(os.Stderr, "queryload:", err)
				os.Exit(1)
			}
		}
		coords[s] = c
		popts := query.Options{}
		if *shards == 1 {
			popts.Telemetry = reg // single shard: its publisher is the serving tier
		}
		pubs[s] = query.NewPublisher(popts)
		if _, err := pubs[s].Publish(c.GlobalMixture(), c.MixtureVersion(), c.TotalWeight()); err != nil {
			fmt.Fprintln(os.Stderr, "queryload:", err)
			os.Exit(1)
		}
	}

	var src query.Source = pubs[0]
	var ss *query.ShardSet
	if *shards > 1 {
		ss = query.NewShardSet(pubs, query.Options{Telemetry: reg})
		if _, err := ss.Reduce(); err != nil {
			fmt.Fprintln(os.Stderr, "queryload:", err)
			os.Exit(1)
		}
		src = ss
	}

	// Writer side: one ingest goroutine per shard replaces site models
	// and republishes; a reducer goroutine folds shard snapshots into the
	// served mixture. All of it keeps running through the measurement.
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for s := range coords {
		writers.Add(1)
		go func(s int) {
			defer writers.Done()
			wrng := rand.New(rand.NewSource(int64(100 + s)))
			c, p := coords[s], pubs[s]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				siteID := 1 + i%*sites
				c.ResetSite(siteID)
				_ = c.HandleUpdate(site.Update{SiteID: siteID, ModelID: 1, Kind: site.NewModel,
					Mixture: clusteredMixture(wrng, *dim), Count: 80})
				if _, err := p.Publish(c.GlobalMixture(), c.MixtureVersion(), c.TotalWeight()); err != nil {
					fmt.Fprintln(os.Stderr, "queryload: publish:", err)
					return
				}
			}
		}(s)
	}
	if ss != nil {
		writers.Add(1)
		go func() {
			defer writers.Done()
			t := time.NewTicker(*reduceEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if _, err := ss.Reduce(); err != nil {
						fmt.Fprintln(os.Stderr, "queryload: reduce:", err)
					}
				}
			}
		}()
	}

	// Reader side: workers stride through pre-generated points until the
	// deadline, counting locally (one atomic add per worker at the end).
	pts := make([][]float64, 1024)
	for i := range pts {
		x := make([]float64, *dim)
		for d := range x {
			x[d] = rng.NormFloat64() * 20
		}
		pts[i] = x
	}
	var total atomic.Int64
	deadline := time.Now().Add(*duration)
	var readers sync.WaitGroup
	perWorker := make([]int64, *workers)
	for w := 0; w < *workers; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			q := src.NewQuerier()
			defer q.Flush()
			var n int64
			for time.Now().Before(deadline) {
				// Check the clock every 4096 ops, not every op.
				for i := 0; i < 4096; i++ {
					x := pts[int(n)&1023]
					var ok bool
					switch {
					case *op == "classify" || (*op == "mix" && n%3 == 0):
						_, ok = q.Classify(x)
					case *op == "density" || (*op == "mix" && n%3 == 1):
						_, ok = q.LogDensity(x)
					default:
						_, ok = q.TopK(x, *k)
					}
					if !ok {
						fmt.Fprintln(os.Stderr, "queryload: no snapshot published")
						os.Exit(1)
					}
					n++
				}
			}
			perWorker[w] = n
			total.Add(n)
		}(w)
	}
	start := time.Now()
	readers.Wait()
	elapsed := time.Since(start)
	close(stop)
	writers.Wait()

	sn := src.Current()
	snap := reg.Snapshot()
	report := struct {
		Op         string  `json:"op"`
		Shards     int     `json:"shards"`
		Workers    int     `json:"workers"`
		DurationS  float64 `json:"duration_s"`
		Queries    int64   `json:"queries"`
		QPS        float64 `json:"qps"`
		QPSWorker  float64 `json:"qps_per_worker"`
		Publishes  int64   `json:"publishes"`
		Version    uint64  `json:"served_version"`
		K          int     `json:"served_k"`
		Classify   int64   `json:"classify_ops"`
		Density    int64   `json:"density_ops"`
		TopK       int64   `json:"topk_ops"`
		StaleCount int64   `json:"staleness_observations"`
	}{
		Op: *op, Shards: *shards, Workers: *workers,
		DurationS: elapsed.Seconds(), Queries: total.Load(),
		QPS:       float64(total.Load()) / elapsed.Seconds(),
		QPSWorker: float64(total.Load()) / elapsed.Seconds() / float64(*workers),
		Publishes: snap.Counters["query.publishes"],
		Version:   sn.Version(), K: sn.K(),
		Classify: snap.Counters["query.classify"],
		Density:  snap.Counters["query.density"],
		TopK:     snap.Counters["query.topk"],
		StaleCount: func() int64 {
			if h, ok := snap.Histograms["query.staleness_seconds"]; ok {
				return h.Count
			}
			return 0
		}(),
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(report)
		return
	}
	fmt.Printf("queryload: op=%s shards=%d workers=%d duration=%.2fs\n",
		report.Op, report.Shards, report.Workers, report.DurationS)
	fmt.Printf("  %d queries  |  %.3g qps aggregate  |  %.3g qps/worker\n",
		report.Queries, report.QPS, report.QPSWorker)
	fmt.Printf("  served version %d (K=%d), %d publishes during run\n",
		report.Version, report.K, report.Publishes)
	fmt.Printf("  op counts: classify=%d density=%d topk=%d\n",
		report.Classify, report.Density, report.TopK)
}

// clusteredMixture mirrors the benchmark's steady-state site model: three
// components jittered around fixed well-separated centers, so coordinator
// grouping keeps the served K bounded while churn still forces remerges.
func clusteredMixture(rng *rand.Rand, dim int) *gaussian.Mixture {
	comps := make([]*gaussian.Component, 3)
	ws := make([]float64, 3)
	for j := range comps {
		center := float64(rng.Intn(4)) * 20
		mean := make(linalg.Vector, dim)
		for d := range mean {
			mean[d] = center + rng.NormFloat64()*0.1
		}
		comps[j] = gaussian.Spherical(mean, 1)
		ws[j] = 0.5 + rng.Float64()
	}
	return gaussian.MustMixture(ws, comps)
}
