// Command sited is the remote-site agent: it consumes a stream (synthetic,
// NFD-like, or CSV on stdin), runs the test-and-cluster site processing,
// and ships model updates to a coordd coordinator over TCP.
//
// Usage:
//
//	sited -connect localhost:7070 -site-id 1 -kind synthetic -updates 100000
//	datagen -kind nfd -n 50000 | sited -connect host:7070 -site-id 2 -kind csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cludistream/internal/buildinfo"
	"cludistream/internal/linalg"
	"cludistream/internal/netio"
	"cludistream/internal/persist"
	"cludistream/internal/site"
	"cludistream/internal/stream"
	"cludistream/internal/telemetry"
)

func main() {
	connect := flag.String("connect", "localhost:7070", "coordinator address")
	siteID := flag.Int("site-id", 1, "unique site identifier")
	kind := flag.String("kind", "synthetic", "stream kind: synthetic, nfd or csv (stdin)")
	updates := flag.Int("updates", 100_000, "records to process (generated kinds)")
	dim := flag.Int("dim", 4, "dimensionality (synthetic)")
	k := flag.Int("k", 5, "mixture components per model")
	eps := flag.Float64("epsilon", 0.02, "error bound ε")
	fitEps := flag.Float64("fit-eps", 0.25, "J_fit threshold (0 couples to ε)")
	delta := flag.Float64("delta", 0.01, "probability error bound δ")
	cmax := flag.Int("cmax", 4, "maximal tests per chunk")
	pd := flag.Float64("pd", 0.1, "new-distribution probability per regime boundary")
	rate := flag.Float64("rate", 0, "records/second throttle (0 = as fast as possible)")
	horizon := flag.Int("sliding-chunks", 0, "sliding-window horizon in chunks (0 = landmark)")
	seed := flag.Int64("seed", 1, "random seed")
	archive := flag.String("archive", "", "write the site's model/event archive here on exit")
	maxRetry := flag.Int("max-retry", 12, "initial-dial attempts before giving up (-1 = retry forever)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "outbox drain budget on exit or SIGTERM")
	epoch := flag.Uint("epoch", 0, "incarnation number for exactly-once delivery (0 = derive from wall clock)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/events and pprof on this address (empty = off)")
	trace := flag.Bool("trace", false, "with -debug-addr: trace every chunk ingest→coordinator (/debug/traces; negotiates the wire trace suffix with the coordinator)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("sited"))
		return
	}

	var reg *telemetry.Registry
	if *debugAddr != "" {
		reg = telemetry.NewRegistry()
		if *trace {
			reg.EnableTracing(telemetry.TraceOptions{})
		}
		dbg, err := telemetry.Serve(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer dbg.Close()
		fmt.Printf("sited %d: debug endpoints on http://%v/debug/vars\n", *siteID, dbg.Addr())
	}

	var gen stream.Generator
	var csvData []linalg.Vector
	var err error
	switch *kind {
	case "synthetic":
		gen, err = stream.NewSynthetic(stream.SyntheticConfig{Dim: *dim, K: *k, Pd: *pd, Seed: *seed})
	case "nfd":
		var g *stream.NFD
		g, err = stream.NewNFD(stream.NFDConfig{Pd: *pd, Seed: *seed})
		if err == nil {
			gen = g
			*dim = stream.NFDDim
		}
	case "csv":
		csvData, err = stream.ReadCSV(os.Stdin)
		if err == nil {
			if len(csvData) == 0 {
				err = fmt.Errorf("no CSV records on stdin")
			} else {
				*dim = len(csvData[0])
				*updates = len(csvData)
			}
		}
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	st, err := site.New(site.Config{
		SiteID:               *siteID,
		Dim:                  *dim,
		K:                    *k,
		Epsilon:              *eps,
		FitEps:               *fitEps,
		Delta:                *delta,
		CMax:                 *cmax,
		Seed:                 *seed,
		EmitFitWeightUpdates: *horizon > 0,
		Telemetry:            reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// A restarted process derives a fresh, higher epoch from the wall
	// clock by default, so the coordinator discards the dead incarnation.
	if *epoch == 0 {
		*epoch = uint(time.Now().Unix())
	}
	opts := netio.DialOptions{
		SlidingHorizonChunks: *horizon,
		Retry:                netio.RetryPolicy{Epoch: uint32(*epoch), Telemetry: reg},
	}
	fmt.Printf("sited: version=%s site=%d kind=%s dim=%d k=%d epsilon=%g fit_eps=%g delta=%g cmax=%d connect=%s debug_addr=%s\n",
		buildinfo.Version, *siteID, *kind, *dim, *k, *eps, *fitEps, *delta, *cmax, *connect, *debugAddr)
	client, err := dialWithRetry(*connect, st, *siteID, opts, *maxRetry)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer client.Close()
	fmt.Printf("sited %d: connected to %s, chunk size M=%d\n", *siteID, *connect, st.ChunkSize())

	var throttle <-chan time.Time
	if *rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *rate))
		defer t.Stop()
		throttle = t.C
	}

	// Graceful shutdown: a signal stops the feed loop; the outbox is
	// drained and the archive written exactly as on a natural exit.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	start := time.Now()
	fed := 0
feed:
	for i := 0; i < *updates; i++ {
		select {
		case sig := <-sigCh:
			fmt.Printf("sited %d: %v — stopping after %d records\n", *siteID, sig, fed)
			break feed
		default:
		}
		var x linalg.Vector
		if csvData != nil {
			x = csvData[i]
		} else {
			x = gen.Next()
		}
		if throttle != nil {
			<-throttle
		}
		if err := client.Observe(x); err != nil {
			// Coordinator rejections affect one message, not the stream;
			// delivery failures are retried by the outbox. Only local site
			// errors (bad records) are fatal.
			if errors.Is(err, netio.ErrRemote) {
				fmt.Fprintf(os.Stderr, "sited %d: %v (continuing)\n", *siteID, err)
				continue
			}
			fmt.Fprintf(os.Stderr, "sited %d: %v\n", *siteID, err)
			os.Exit(1)
		}
		fed++
	}
	elapsed := time.Since(start)

	// Drain whatever the fault-tolerant outbox still holds before
	// reporting; an unreachable coordinator bounds the wait.
	if err := client.Flush(*shutdownTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "sited %d: flush: %v\n", *siteID, err)
	}

	bytesOut, messages := client.Stats()
	stats := st.Stats()
	fmt.Printf("sited %d: %d records in %v (%.0f/s) | %d chunks, %d fits, %d EM runs | sent %d msgs / %d bytes\n",
		*siteID, fed, elapsed.Round(time.Millisecond),
		float64(fed)/elapsed.Seconds(),
		stats.Chunks, stats.Fits, stats.EMRuns, messages, bytesOut)
	if d := client.Delivery(); d.Retries > 0 || d.Reconnects > 0 || d.Queued > 0 {
		fmt.Printf("sited %d: delivery — %d retries, %d reconnects, %d retransmitted bytes, %d dropped, %d still queued\n",
			*siteID, d.Retries, d.Reconnects, d.RetransmitBytes, d.Dropped, d.Queued)
	}

	if *archive != "" {
		f, err := os.Create(*archive)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := persist.Save(f, persist.FromSite(st)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("sited %d: archive written to %s\n", *siteID, *archive)
	}
}

// dialWithRetry retries the initial dial with doubling backoff so sites
// can start before (or survive a restart of) the coordinator. maxRetry
// bounds the attempts; negative retries forever.
func dialWithRetry(addr string, st *site.Site, siteID int, opts netio.DialOptions, maxRetry int) (*netio.Client, error) {
	backoff := 500 * time.Millisecond
	for attempt := 1; ; attempt++ {
		client, err := netio.Dial(addr, st, siteID, opts)
		if err == nil {
			return client, nil
		}
		if maxRetry >= 0 && attempt >= maxRetry {
			return nil, fmt.Errorf("dial %s: %w (after %d attempts)", addr, err, attempt)
		}
		fmt.Fprintf(os.Stderr, "sited %d: dial %s: %v — retrying in %v\n", siteID, addr, err, backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > 10*time.Second {
			backoff = 10 * time.Second
		}
	}
}
