// Command sited is the remote-site agent: it consumes a stream (synthetic,
// NFD-like, or CSV on stdin), runs the test-and-cluster site processing,
// and ships model updates to a coordd coordinator over TCP.
//
// Usage:
//
//	sited -connect localhost:7070 -site-id 1 -kind synthetic -updates 100000
//	datagen -kind nfd -n 50000 | sited -connect host:7070 -site-id 2 -kind csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cludistream/internal/linalg"
	"cludistream/internal/netio"
	"cludistream/internal/persist"
	"cludistream/internal/site"
	"cludistream/internal/stream"
)

func main() {
	connect := flag.String("connect", "localhost:7070", "coordinator address")
	siteID := flag.Int("site-id", 1, "unique site identifier")
	kind := flag.String("kind", "synthetic", "stream kind: synthetic, nfd or csv (stdin)")
	updates := flag.Int("updates", 100_000, "records to process (generated kinds)")
	dim := flag.Int("dim", 4, "dimensionality (synthetic)")
	k := flag.Int("k", 5, "mixture components per model")
	eps := flag.Float64("epsilon", 0.02, "error bound ε")
	fitEps := flag.Float64("fit-eps", 0.25, "J_fit threshold (0 couples to ε)")
	delta := flag.Float64("delta", 0.01, "probability error bound δ")
	cmax := flag.Int("cmax", 4, "maximal tests per chunk")
	pd := flag.Float64("pd", 0.1, "new-distribution probability per regime boundary")
	rate := flag.Float64("rate", 0, "records/second throttle (0 = as fast as possible)")
	horizon := flag.Int("sliding-chunks", 0, "sliding-window horizon in chunks (0 = landmark)")
	seed := flag.Int64("seed", 1, "random seed")
	archive := flag.String("archive", "", "write the site's model/event archive here on exit")
	flag.Parse()

	var gen stream.Generator
	var csvData []linalg.Vector
	var err error
	switch *kind {
	case "synthetic":
		gen, err = stream.NewSynthetic(stream.SyntheticConfig{Dim: *dim, K: *k, Pd: *pd, Seed: *seed})
	case "nfd":
		var g *stream.NFD
		g, err = stream.NewNFD(stream.NFDConfig{Pd: *pd, Seed: *seed})
		if err == nil {
			gen = g
			*dim = stream.NFDDim
		}
	case "csv":
		csvData, err = stream.ReadCSV(os.Stdin)
		if err == nil {
			if len(csvData) == 0 {
				err = fmt.Errorf("no CSV records on stdin")
			} else {
				*dim = len(csvData[0])
				*updates = len(csvData)
			}
		}
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	st, err := site.New(site.Config{
		SiteID:               *siteID,
		Dim:                  *dim,
		K:                    *k,
		Epsilon:              *eps,
		FitEps:               *fitEps,
		Delta:                *delta,
		CMax:                 *cmax,
		Seed:                 *seed,
		EmitFitWeightUpdates: *horizon > 0,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	client, err := netio.Dial(*connect, st, *siteID, netio.DialOptions{SlidingHorizonChunks: *horizon})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer client.Close()
	fmt.Printf("sited %d: connected to %s, chunk size M=%d\n", *siteID, *connect, st.ChunkSize())

	var throttle <-chan time.Time
	if *rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *rate))
		defer t.Stop()
		throttle = t.C
	}

	start := time.Now()
	for i := 0; i < *updates; i++ {
		var x linalg.Vector
		if csvData != nil {
			x = csvData[i]
		} else {
			x = gen.Next()
		}
		if throttle != nil {
			<-throttle
		}
		if err := client.Observe(x); err != nil {
			fmt.Fprintf(os.Stderr, "sited %d: %v\n", *siteID, err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)

	bytesOut, messages := client.Stats()
	stats := st.Stats()
	fmt.Printf("sited %d: %d records in %v (%.0f/s) | %d chunks, %d fits, %d EM runs | sent %d msgs / %d bytes\n",
		*siteID, *updates, elapsed.Round(time.Millisecond),
		float64(*updates)/elapsed.Seconds(),
		stats.Chunks, stats.Fits, stats.EMRuns, messages, bytesOut)

	if *archive != "" {
		f, err := os.Create(*archive)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := persist.Save(f, persist.FromSite(st)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("sited %d: archive written to %s\n", *siteID, *archive)
	}
}
