// Distributed: the real-network deployment in one process — a coordinator
// server and several remote-site clients talking CluDistream's wire
// protocol over TCP loopback (run coordd/sited for the multi-process
// version). Traffic is routed through a chaos proxy that kills every
// connection after a byte budget, so the run also demonstrates the
// fault-tolerant delivery path: reconnects, retransmissions, and
// exactly-once application at the coordinator. Each site archives its
// state on shutdown, and the example replays an evolving-analysis query
// from the archive.
//
// Run with:
//
//	go run ./examples/distributed
//
// With -debug-addr the run also serves live /debug/vars and /debug/events
// telemetry; -linger keeps the process (and those endpoints) up after the
// stream finishes so they can be inspected — `make obs-demo` uses both.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"cludistream/internal/coordinator"
	"cludistream/internal/netio"
	"cludistream/internal/persist"
	"cludistream/internal/site"
	"cludistream/internal/stream"
	"cludistream/internal/telemetry"
)

func main() {
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/events and pprof on this address (empty = off)")
	linger := flag.Duration("linger", 0, "keep the process alive this long after the run (for inspecting -debug-addr)")
	flag.Parse()

	var reg *telemetry.Registry
	if *debugAddr != "" {
		reg = telemetry.NewRegistry()
		// Tracing is always on in the demo: `make trace-demo` renders the
		// span waterfalls from /debug/traces, and the clustering output is
		// bit-identical with or without it.
		reg.EnableTracing(telemetry.TraceOptions{})
		dbg, err := telemetry.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		fmt.Printf("debug endpoints on http://%v/debug/vars\n", dbg.Addr())
	}

	coord, err := coordinator.New(coordinator.Config{Dim: 2, Telemetry: reg})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := netio.NewServerTelemetry("127.0.0.1:0", coord, reg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.Logf = func(string, ...any) {} // chaos kills are expected noise
	fmt.Printf("coordinator listening on %v\n", srv.Addr())

	// Every client dials through this proxy, which severs each connection
	// after a small byte budget — synopsis messages are only ~200 bytes,
	// so roughly every second model update dies mid-frame and the sites
	// must reconnect and retransmit to finish.
	proxy, err := netio.NewChaosProxy(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()
	proxy.KillAfter(250)
	fmt.Printf("chaos proxy on %s: connections die every 250 bytes\n", proxy.Addr())

	const sites = 5
	const updatesPerSite = 4000
	var wg sync.WaitGroup
	archives := make([]*persist.SiteArchive, sites)
	deliveries := make([]netio.DeliveryStats, sites)
	for i := 0; i < sites; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			st, err := site.New(site.Config{
				SiteID: id, Dim: 2, K: 3, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
				Seed: int64(id), ChunkSize: 400, Telemetry: reg,
			})
			if err != nil {
				log.Fatal(err)
			}
			client, err := netio.Dial(proxy.Addr(), st, id, netio.DialOptions{
				Retry: netio.RetryPolicy{BaseBackoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Telemetry: reg},
			})
			if err != nil {
				log.Fatal(err)
			}
			defer client.Close()

			gen, err := stream.NewSynthetic(stream.SyntheticConfig{
				Dim: 2, K: 3, Pd: 0.4, RegimeLen: 1500, Seed: int64(100 * id),
			})
			if err != nil {
				log.Fatal(err)
			}
			for rec := 0; rec < updatesPerSite; rec++ {
				if err := client.Observe(gen.Next()); err != nil {
					log.Fatalf("site %d: %v", id, err)
				}
			}
			if err := client.Flush(30 * time.Second); err != nil {
				log.Fatalf("site %d: flush: %v", id, err)
			}
			d := client.Delivery()
			deliveries[id-1] = d
			fmt.Printf("site %d: %d records → %d messages, %d goodput bytes (+%d retransmitted, %d reconnects)\n",
				id, updatesPerSite, d.Acked, d.GoodputBytes, d.RetransmitBytes, d.Reconnects)
			archives[id-1] = persist.FromSite(st)
		}(i + 1)
	}
	wg.Wait()

	var goodput, retrans, reconnects int
	for _, d := range deliveries {
		goodput += d.GoodputBytes
		retrans += d.RetransmitBytes
		reconnects += d.Reconnects
	}
	ds := srv.DeliveryStats()
	fmt.Printf("\ncoordinator applied %d messages / %d bytes in (%d errors)\n", ds.Applied, ds.BytesIn, ds.ApplyErrors)
	fmt.Printf("fault tolerance: %d goodput bytes, %d retransmitted bytes, %d reconnects; "+
		"%d duplicate msgs (%d bytes) deduped server-side\n",
		goodput, retrans, reconnects, ds.Duplicates, ds.DuplicateBytes)
	fmt.Printf("raw stream volume would have been %d bytes — synopsis ratio %.3f%%\n",
		sites*updatesPerSite*2*8, 100*float64(goodput)/float64(sites*updatesPerSite*2*8))
	srv.Snapshot(func(c *coordinator.Coordinator) {
		gm := c.GlobalMixture()
		fmt.Printf("global model: %d site models merged into %d groups (K=%d)\n",
			c.NumModels(), len(c.Groups()), gm.K())
	})

	// Offline evolving analysis: round-trip site 1's archive through the
	// binary format and query a historical window.
	var buf bytes.Buffer
	if err := persist.Save(&buf, archives[0]); err != nil {
		log.Fatal(err)
	}
	archiveBytes := buf.Len()
	loaded, err := persist.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsite 1 archive: %d bytes, %d models, %d events\n",
		archiveBytes, len(loaded.Models), len(loaded.Events))
	if m := loaded.WindowMixture(1, 3); m != nil {
		fmt.Printf("chunks 1-3 were modelled by a %d-component mixture\n", m.K())
	}

	if *linger > 0 {
		fmt.Printf("\nlingering %v for telemetry inspection...\n", *linger)
		time.Sleep(*linger)
	}
}
