// Distributed: the real-network deployment in one process — a coordinator
// server and several remote-site clients talking CluDistream's wire
// protocol over TCP loopback (run coordd/sited for the multi-process
// version). Each site archives its state on shutdown, and the example
// replays an evolving-analysis query from the archive.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"cludistream/internal/coordinator"
	"cludistream/internal/netio"
	"cludistream/internal/persist"
	"cludistream/internal/site"
	"cludistream/internal/stream"
)

func main() {
	coord, err := coordinator.New(coordinator.Config{Dim: 2})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := netio.NewServer("127.0.0.1:0", coord)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("coordinator listening on %v\n", srv.Addr())

	const sites = 5
	const updatesPerSite = 4000
	var wg sync.WaitGroup
	archives := make([]*persist.SiteArchive, sites)
	for i := 0; i < sites; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			st, err := site.New(site.Config{
				SiteID: id, Dim: 2, K: 3, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
				Seed: int64(id), ChunkSize: 400,
			})
			if err != nil {
				log.Fatal(err)
			}
			client, err := netio.Dial(srv.Addr().String(), st, id, netio.DialOptions{})
			if err != nil {
				log.Fatal(err)
			}
			defer client.Close()

			gen, err := stream.NewSynthetic(stream.SyntheticConfig{
				Dim: 2, K: 3, Pd: 0.4, RegimeLen: 1500, Seed: int64(100 * id),
			})
			if err != nil {
				log.Fatal(err)
			}
			for rec := 0; rec < updatesPerSite; rec++ {
				if err := client.Observe(gen.Next()); err != nil {
					log.Fatalf("site %d: %v", id, err)
				}
			}
			bytesOut, msgs := client.Stats()
			fmt.Printf("site %d: %d records → %d messages, %d bytes over the wire\n",
				id, updatesPerSite, msgs, bytesOut)
			archives[id-1] = persist.FromSite(st)
		}(i + 1)
	}
	wg.Wait()

	bytesIn, messages, errs := srv.Stats()
	fmt.Printf("\ncoordinator received %d messages / %d bytes (%d errors)\n", messages, bytesIn, errs)
	fmt.Printf("raw stream volume would have been %d bytes — synopsis ratio %.3f%%\n",
		sites*updatesPerSite*2*8, 100*float64(bytesIn)/float64(sites*updatesPerSite*2*8))
	srv.Snapshot(func(c *coordinator.Coordinator) {
		gm := c.GlobalMixture()
		fmt.Printf("global model: %d site models merged into %d groups (K=%d)\n",
			c.NumModels(), len(c.Groups()), gm.K())
	})

	// Offline evolving analysis: round-trip site 1's archive through the
	// binary format and query a historical window.
	var buf bytes.Buffer
	if err := persist.Save(&buf, archives[0]); err != nil {
		log.Fatal(err)
	}
	archiveBytes := buf.Len()
	loaded, err := persist.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsite 1 archive: %d bytes, %d models, %d events\n",
		archiveBytes, len(loaded.Models), len(loaded.Events))
	if m := loaded.WindowMixture(1, 3); m != nil {
		fmt.Printf("chunks 1-3 were modelled by a %d-component mixture\n", m.K())
	}
}
