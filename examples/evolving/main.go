// Evolving: change detection and evolving analysis (Section 7) — the
// event-driven alternative to CluStream's pyramidal snapshots. A site
// watches a stream that cycles through market regimes; afterwards we query
// the event table for arbitrary windows and rebuild the mixture that
// governed any past period, plus run a sliding-window deployment whose
// deletions age old regimes out of the coordinator.
//
// Run with:
//
//	go run ./examples/evolving
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/stream"
	"cludistream/internal/window"

	cludistream "cludistream"
)

func main() {
	// Three market regimes: calm, volatile, crash — each a 1-d mixture of
	// return behaviours.
	mk := func(mu, spread float64) *gaussian.Mixture {
		return gaussian.MustMixture(
			[]float64{0.7, 0.3},
			[]*gaussian.Component{
				gaussian.Spherical(linalg.Vector{mu}, spread),
				gaussian.Spherical(linalg.Vector{mu * 2}, spread*3),
			})
	}
	regimes := []*gaussian.Mixture{mk(0.5, 0.2), mk(-1, 1.5), mk(-8, 2)}
	const chunkSize = 250
	gen, err := stream.NewAlternating(regimes, 4*chunkSize, 11)
	if err != nil {
		log.Fatal(err)
	}

	st, err := site.New(site.Config{
		SiteID: 1, Dim: 1, K: 2, Epsilon: 0.1, FitEps: 1.0, Delta: 0.01,
		CMax: 4, Seed: 2, ChunkSize: chunkSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	const updates = 24 * chunkSize // 6 regime phases
	for i := 0; i < updates; i++ {
		if _, err := st.Observe(gen.Next()); err != nil {
			log.Fatal(err)
		}
	}

	// Change detection: every event-table boundary is a detected
	// distribution change.
	fmt.Printf("processed %d records in %d chunks\n", updates, st.ChunksSeen())
	fmt.Printf("detected distribution changes at chunks %v\n", st.Events().Changes())
	fmt.Printf("model list: %d models (the multi-test strategy re-activates repeats)\n", len(st.Models()))

	// Evolving analysis: rebuild the model for arbitrary past windows.
	for _, w := range [][2]int{{1, 4}, {5, 8}, {9, 12}, {1, 24}} {
		m := window.Mixture(st, w[0], w[1])
		if m == nil {
			continue
		}
		probe := []linalg.Vector{{0.5}, {-1}, {-8}}
		fmt.Printf("window chunks %2d-%2d: %d components, p(calm)=%.3f p(volatile)=%.3f p(crash)=%.3f\n",
			w[0], w[1], m.K(), m.PDF(probe[0]), m.PDF(probe[1]), m.PDF(probe[2]))
	}

	// Sliding windows end-to-end: deletions age expired regimes out of the
	// coordinator (Section 7's negative-weight messages).
	sys, err := cludistream.New(cludistream.Config{
		NumSites: 1, Dim: 1, K: 2, Epsilon: 0.1, FitEps: 1.0, Delta: 0.01,
		Seed: 2, ChunkSize: chunkSize, SlidingHorizonChunks: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for phase, m := range regimes {
		for i := 0; i < 8*chunkSize; i++ {
			if err := sys.Feed(0, m.Sample(rng)); err != nil {
				log.Fatal(err)
			}
		}
		_ = phase
	}
	if err := sys.Drain(); err != nil {
		log.Fatal(err)
	}
	gm := sys.GlobalMixture()
	fmt.Printf("\nsliding-window coordinator (horizon 4 chunks) after the crash regime:\n")
	fmt.Printf("  %d live groups; p(crash)=%.3f p(calm)=%.4f — old regimes aged out\n",
		len(sys.Coordinator().Groups()), gm.PDF(linalg.Vector{-8}), gm.PDF(linalg.Vector{0.5}))
}
