// Netflow: the paper's motivating telecom scenario — 20 remote sites each
// observing a heavy-tailed, regime-switching net-flow stream (the NFD-like
// workload), with the coordinator assembling a global traffic model while
// the links stay almost silent.
//
// Run with:
//
//	go run ./examples/netflow
package main

import (
	"fmt"
	"log"

	"cludistream/internal/stream"

	cludistream "cludistream"
)

func main() {
	const (
		sites          = 20
		updatesPerSite = 3_000
	)
	sys, err := cludistream.New(cludistream.Config{
		NumSites: sites,
		Dim:      stream.NFDDim,
		K:        5,
		Epsilon:  0.1, // M = 470 records for d=6
		FitEps:   1.2, // net-flow tails need a wider fit band (EXPERIMENTS.md)
		Delta:    0.01,
		CMax:     4,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each site watches its own link: same traffic physics, different
	// regimes and hosts.
	gens := make([]*stream.NFD, sites)
	for i := range gens {
		gens[i], err = stream.NewNFD(stream.NFDConfig{Pd: 0.2, RegimeLen: 1000, Seed: int64(100 + i)})
		if err != nil {
			log.Fatal(err)
		}
	}

	for rec := 0; rec < updatesPerSite; rec++ {
		for i, g := range gens {
			if err := sys.Feed(i, g.Next()); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := sys.Drain(); err != nil {
		log.Fatal(err)
	}

	raw := sites * updatesPerSite * stream.NFDDim * 8
	fmt.Printf("netflow deployment: %d sites × %d flows\n", sites, updatesPerSite)
	fmt.Printf("raw data volume: %d bytes; transmitted: %d bytes (%.2f%%)\n",
		raw, sys.TotalBytes(), 100*float64(sys.TotalBytes())/float64(raw))

	// Per-second cost series — the Figure 2 observable.
	series := sys.CostSeries(1.0)
	fmt.Printf("cumulative bytes per simulated second: %v\n", series)

	coord := sys.Coordinator()
	fmt.Printf("coordinator holds %d site models (%d components) merged into %d groups\n",
		coord.NumModels(), coord.NumLeaves(), len(coord.Groups()))
	for _, g := range coord.Groups() {
		mu := g.Representative().Mean()
		fmt.Printf("  group %2d: weight %8.0f, %d member sites, mean dstPort %.3f, mean log-packets %.3f\n",
			g.ID(), g.Weight(), g.Size(), mu[3], mu[4])
	}
}
