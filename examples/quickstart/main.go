// Quickstart: one remote site, one coordinator, one evolving stream.
//
// Run with:
//
//	go run ./examples/quickstart
//
// The example feeds an evolving Gaussian stream through a minimal
// CluDistream deployment and prints what the framework learned: how many
// distinct distributions the site detected, how little it had to transmit,
// and the global mixture the coordinator assembled.
package main

import (
	"fmt"
	"log"

	"cludistream/internal/stream"

	cludistream "cludistream"
)

func main() {
	// A deployment with a single remote site. Epsilon drives the Theorem-1
	// chunk size; FitEps is the calibrated J_fit threshold (see DESIGN.md).
	sys, err := cludistream.New(cludistream.Config{
		NumSites: 1,
		Dim:      2,
		K:        3,
		Epsilon:  0.05, // chunk size M = 2·2·ln(1/(δ(2−δ)))/ε ≈ 314
		FitEps:   0.8,
		Delta:    0.01,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 2-d stream whose underlying mixture is redrawn with probability 0.5
	// every 1000 records.
	gen, err := stream.NewSynthetic(stream.SyntheticConfig{
		Dim: 2, K: 3, Pd: 0.5, RegimeLen: 1000, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	const updates = 20_000
	for i := 0; i < updates; i++ {
		if err := sys.Feed(0, gen.Next()); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Drain(); err != nil {
		log.Fatal(err)
	}

	st := sys.Site(0)
	fmt.Printf("stream: %d records, %d true distribution regimes\n", updates, gen.Regimes())
	fmt.Printf("site: %d chunks of %d records; %d fit an existing model, %d EM re-clusterings\n",
		st.ChunksSeen(), sys.ChunkSize(), st.Stats().Fits, st.Stats().EMRuns)
	fmt.Printf("site model list: %d models; event table: %d closed spans\n",
		len(st.Models()), st.Events().Len())
	fmt.Printf("communication: %d messages, %d bytes (vs %d bytes of raw data)\n",
		sys.TotalMessages(), sys.TotalBytes(), updates*2*8)

	gm := sys.GlobalMixture()
	fmt.Printf("coordinator global mixture: %d merged components\n", gm.K())
	for j := 0; j < gm.K(); j++ {
		c := gm.Component(j)
		fmt.Printf("  component %d: weight %.3f, mean (%.2f, %.2f)\n",
			j, gm.Weight(j), c.Mean()[0], c.Mean()[1])
	}
}
