// Sensornet: the Section-7 multi-layer extension — a tree-structured sensor
// network (9 leaf sensors under 3 aggregators under 1 root) where every
// internal node runs CluDistream over its children and only uploads when
// its locally-observed model changes. Sensor readings are noisy (the
// framework's EM core is built for exactly that), and one sensor drifts to
// a new regime mid-run so the change can be watched propagating to the
// root.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cludistream/internal/coordinator"
	"cludistream/internal/hier"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

// sensorStream models one sensor: (temperature, humidity) readings around
// a cluster center with measurement noise and a 2% chance per reading of a
// corrupted outlier — the "noisy or incomplete records" of the paper's
// introduction.
type sensorStream struct {
	rng    *rand.Rand
	center linalg.Vector
}

func (s *sensorStream) next() linalg.Vector {
	if s.rng.Float64() < 0.02 {
		return linalg.Vector{s.rng.Float64() * 50, s.rng.Float64() * 100} // corrupted
	}
	return linalg.Vector{
		s.center[0] + s.rng.NormFloat64()*0.8,
		s.center[1] + s.rng.NormFloat64()*2.5,
	}
}

func main() {
	tree, err := hier.NewTree(hier.Config{
		Branching: 3,
		Depth:     2, // 9 leaves, 3 aggregators, 1 root
		Site: site.Config{
			Dim: 2, K: 2, Epsilon: 0.1, FitEps: 1.0, Delta: 0.01,
			Seed: 3, ChunkSize: 250,
		},
		Coord: coordinator.Config{Dim: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	leaves := tree.Leaves()
	fmt.Printf("sensor network: %d nodes, %d leaf sensors\n", tree.NumNodes(), len(leaves))

	// Three rooms: each aggregator's sensors share a climate.
	sensors := make([]*sensorStream, len(leaves))
	for i := range sensors {
		room := i / 3
		sensors[i] = &sensorStream{
			rng:    rand.New(rand.NewSource(int64(50 + i))),
			center: linalg.Vector{18 + float64(room)*4, 40 + float64(room)*10},
		}
	}

	const phase1 = 1500
	for rec := 0; rec < phase1; rec++ {
		for i := range sensors {
			if err := tree.ObserveLeaf(i, sensors[i].next()); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("phase 1 (stable climates): root model K=%d, upload traffic %d bytes\n",
		tree.GlobalMixture().K(), tree.TotalUploadBytes())
	before := tree.TotalUploadBytes()

	// Sensor 0's room heats up: a genuine distribution change.
	sensors[0].center = linalg.Vector{35, 20}
	const phase2 = 1500
	for rec := 0; rec < phase2; rec++ {
		for i := range sensors {
			if err := tree.ObserveLeaf(i, sensors[i].next()); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("phase 2 (sensor 0 drifted): root model K=%d, +%d upload bytes\n",
		tree.GlobalMixture().K(), tree.TotalUploadBytes()-before)

	// The leaf's event table records the change (Section 7: change
	// detection = fit-test failure).
	leaf := leaves[0].Site()
	fmt.Printf("sensor 0 event table: %d spans, detected changes at chunks %v\n",
		leaf.Events().Len(), leaf.Events().Changes())

	gm := tree.GlobalMixture()
	fmt.Println("root's merged climate model:")
	for j := 0; j < gm.K(); j++ {
		c := gm.Component(j)
		fmt.Printf("  %.0f%% of readings around %.1f°C / %.0f%% humidity\n",
			100*gm.Weight(j), c.Mean()[0], c.Mean()[1])
	}
}
