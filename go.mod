module cludistream

go 1.22
