// Package buildinfo carries the release identity stamped into binaries at
// build time. The Makefile's build target injects the current git
// describe output via
//
//	go build -ldflags "-X cludistream/internal/buildinfo.Version=<v>"
//
// Plain `go build` (and every test binary) keeps the "dev" default.
package buildinfo

import (
	"fmt"
	"runtime"
)

// Version is the ldflags-injected release string.
var Version = "dev"

// String returns a one-line identity suitable for -version output:
// program version, Go toolchain, and target platform.
func String(program string) string {
	return fmt.Sprintf("%s %s (%s %s/%s)",
		program, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
