// Package buildinfo carries the release identity stamped into binaries at
// build time. The Makefile's build target injects the current git
// describe output via
//
//	go build -ldflags "-X cludistream/internal/buildinfo.Version=<v>"
//
// Plain `go build` (and every test binary) keeps the "dev" default.
package buildinfo

import (
	"fmt"
	"runtime"
)

// Version is the ldflags-injected release string.
var Version = "dev"

// Commit is the ldflags-injected git commit hash ("unknown" for plain
// `go build`). benchjson stamps it into emitted benchmark reports so a
// stored baseline records exactly which tree produced it.
var Commit = "unknown"

// String returns a one-line identity suitable for -version output:
// program version, Go toolchain, and target platform.
func String(program string) string {
	return fmt.Sprintf("%s %s (%s %s/%s)",
		program, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
