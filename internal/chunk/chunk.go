// Package chunk implements the chunking layer of CluDistream's remote-site
// processing: the Theorem-1 chunk size M(d, ε, δ) and a Chunker that cuts
// an arriving stream into consecutive chunks of that size.
package chunk

import (
	"fmt"
	"math"

	"cludistream/internal/linalg"
)

// Size returns the Theorem-1 chunk size
//
//	M = ⌈ -2·d·ln(δ·(2-δ)) / ε ⌉
//
// which guarantees that the squared Mahalanobis distance between a chunk's
// sample mean and the distribution mean is below ε with probability at
// least 1-δ. It panics on out-of-range parameters — they are configuration
// constants, not data.
func Size(d int, epsilon, delta float64) int {
	if d < 1 {
		panic(fmt.Sprintf("chunk: dimension %d < 1", d))
	}
	if epsilon <= 0 {
		panic(fmt.Sprintf("chunk: epsilon %v must be positive", epsilon))
	}
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("chunk: delta %v must be in (0,1)", delta))
	}
	m := -2 * float64(d) * math.Log(delta*(2-delta)) / epsilon
	return int(math.Ceil(m))
}

// Chunker accumulates records and emits full chunks. It owns the single
// per-site data buffer that Theorem 3 charges M records of memory for.
type Chunker struct {
	size    int
	dim     int
	buf     []linalg.Vector
	emitted int
}

// NewChunker returns a Chunker producing chunks of exactly size records of
// dimension dim.
func NewChunker(size, dim int) *Chunker {
	if size < 1 {
		panic(fmt.Sprintf("chunk: size %d < 1", size))
	}
	if dim < 1 {
		panic(fmt.Sprintf("chunk: dim %d < 1", dim))
	}
	return &Chunker{size: size, dim: dim, buf: make([]linalg.Vector, 0, size)}
}

// Size returns the chunk size.
func (c *Chunker) Size() int { return c.size }

// Add appends one record. When the buffer reaches the chunk size, the full
// chunk is returned (ownership transfers to the caller) and the buffer
// resets; otherwise Add returns nil. Records of the wrong dimension are
// rejected with an error.
func (c *Chunker) Add(x linalg.Vector) ([]linalg.Vector, error) {
	if len(x) != c.dim {
		return nil, fmt.Errorf("chunk: record dim %d, want %d", len(x), c.dim)
	}
	c.buf = append(c.buf, x)
	if len(c.buf) < c.size {
		return nil, nil
	}
	out := c.buf
	c.buf = make([]linalg.Vector, 0, c.size)
	c.emitted++
	return out, nil
}

// Pending returns the number of buffered records not yet forming a chunk.
func (c *Chunker) Pending() int { return len(c.buf) }

// Emitted returns how many full chunks have been produced.
func (c *Chunker) Emitted() int { return c.emitted }

// Flush returns the partial buffer (possibly empty) and resets it. Used at
// stream end or when a window query must account for in-flight records.
func (c *Chunker) Flush() []linalg.Vector {
	out := c.buf
	c.buf = make([]linalg.Vector, 0, c.size)
	return out
}
