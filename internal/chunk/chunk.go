// Package chunk implements the chunking layer of CluDistream's remote-site
// processing: the Theorem-1 chunk size M(d, ε, δ) and a Chunker that cuts
// an arriving stream into consecutive chunks of that size.
package chunk

import (
	"fmt"
	"math"

	"cludistream/internal/linalg"
)

// Size returns the Theorem-1 chunk size
//
//	M = ⌈ -2·d·ln(δ·(2-δ)) / ε ⌉
//
// which guarantees that the squared Mahalanobis distance between a chunk's
// sample mean and the distribution mean is below ε with probability at
// least 1-δ. It panics on out-of-range parameters — they are configuration
// constants, not data.
func Size(d int, epsilon, delta float64) int {
	if d < 1 {
		panic(fmt.Sprintf("chunk: dimension %d < 1", d))
	}
	if epsilon <= 0 {
		panic(fmt.Sprintf("chunk: epsilon %v must be positive", epsilon))
	}
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("chunk: delta %v must be in (0,1)", delta))
	}
	m := -2 * float64(d) * math.Log(delta*(2-delta)) / epsilon
	return int(math.Ceil(m))
}

// Chunker accumulates records and emits full chunks. It owns the single
// per-site data buffer that Theorem 3 charges M records of memory for.
//
// Records are stored in a flat row-major slab — one contiguous
// size×dim float64 block per chunk, with the emitted []linalg.Vector
// acting as row headers into it — so chunk scoring streams through
// memory in order. Add copies the record into the slab; the caller
// keeps ownership of (and may freely reuse) the vector it passed in.
//
// Emitted chunks follow a two-buffer recycle protocol: the Chunker fills
// one buffer while the previously emitted chunk is being processed, and
// Recycle hands a processed chunk's storage back for the buffer after
// that. A caller that recycles every chunk it receives (the site does)
// runs with exactly two chunk buffers and zero allocations per record in
// steady state; a caller that never calls Recycle simply costs one slab
// allocation per chunk, matching the pre-recycle behaviour.
type Chunker struct {
	size    int
	dim     int
	buf     []linalg.Vector // size row headers into one flat slab
	fill    int             // records currently in buf
	spare   []linalg.Vector // recycled buffer awaiting reuse (nil if none)
	emitted int
}

// NewChunker returns a Chunker producing chunks of exactly size records of
// dimension dim.
func NewChunker(size, dim int) *Chunker {
	if size < 1 {
		panic(fmt.Sprintf("chunk: size %d < 1", size))
	}
	if dim < 1 {
		panic(fmt.Sprintf("chunk: dim %d < 1", dim))
	}
	c := &Chunker{size: size, dim: dim}
	c.buf = c.newBuf()
	return c
}

// newBuf allocates one chunk buffer: a flat slab plus its row headers.
func (c *Chunker) newBuf() []linalg.Vector {
	slab := make([]float64, c.size*c.dim)
	buf := make([]linalg.Vector, c.size)
	for i := range buf {
		buf[i] = slab[i*c.dim : (i+1)*c.dim : (i+1)*c.dim]
	}
	return buf
}

// Size returns the chunk size.
func (c *Chunker) Size() int { return c.size }

// Add copies one record into the buffer. When the buffer reaches the chunk
// size, the full chunk is returned (valid until the caller recycles it)
// and filling switches to the spare buffer; otherwise Add returns nil.
// Records of the wrong dimension are rejected with an error.
func (c *Chunker) Add(x linalg.Vector) ([]linalg.Vector, error) {
	if len(x) != c.dim {
		return nil, fmt.Errorf("chunk: record dim %d, want %d", len(x), c.dim)
	}
	copy(c.buf[c.fill], x)
	c.fill++
	if c.fill < c.size {
		return nil, nil
	}
	out := c.buf
	c.buf, c.spare = c.spare, nil
	if c.buf == nil {
		c.buf = c.newBuf()
	}
	c.fill = 0
	c.emitted++
	return out, nil
}

// Recycle returns a chunk previously emitted by Add to the Chunker for
// reuse, after the caller is completely done with it (no references to the
// chunk or its records may be retained). Chunks of the wrong shape and
// surplus buffers beyond the one spare slot are dropped, so Recycle never
// needs an error path.
func (c *Chunker) Recycle(chunk []linalg.Vector) {
	if c.spare != nil || len(chunk) != c.size || c.size == 0 || len(chunk[0]) != c.dim {
		return
	}
	c.spare = chunk
}

// Pending returns the number of buffered records not yet forming a chunk.
func (c *Chunker) Pending() int { return c.fill }

// Emitted returns how many full chunks have been produced.
func (c *Chunker) Emitted() int { return c.emitted }

// Flush returns the partial buffer (possibly empty) and resets it. Used at
// stream end or when a window query must account for in-flight records.
// Ownership of the returned records transfers to the caller; the flushed
// buffer is replaced rather than reused, so the records stay valid.
func (c *Chunker) Flush() []linalg.Vector {
	if c.fill == 0 {
		return nil
	}
	out := c.buf[:c.fill]
	c.buf, c.spare = c.spare, nil
	if c.buf == nil {
		c.buf = c.newBuf()
	}
	c.fill = 0
	return out
}
