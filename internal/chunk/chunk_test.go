package chunk

import (
	"math"
	"testing"
	"testing/quick"

	"cludistream/internal/linalg"
)

func TestSizePaperDefaults(t *testing.T) {
	// Paper defaults: d=4, δ=0.01, ε=0.02.
	// M = ⌈-2·4·ln(0.01·1.99)/0.02⌉ = ⌈1566.95...⌉ = 1567.
	if got := Size(4, 0.02, 0.01); got != 1567 {
		t.Fatalf("Size(4, 0.02, 0.01) = %d, want 1567", got)
	}
}

func TestSizeMonotonicity(t *testing.T) {
	// M grows with d, shrinks with ε, shrinks with δ.
	if Size(8, 0.02, 0.01) <= Size(4, 0.02, 0.01) {
		t.Error("M not increasing in d")
	}
	if Size(4, 0.04, 0.01) >= Size(4, 0.02, 0.01) {
		t.Error("M not decreasing in ε")
	}
	if Size(4, 0.02, 0.05) >= Size(4, 0.02, 0.01) {
		t.Error("M not decreasing in δ")
	}
}

func TestSizeExactDoubling(t *testing.T) {
	// M is linear in d and 1/ε.
	f := func(dRaw, eRaw uint8) bool {
		d := int(dRaw%20) + 1
		eps := 0.01 + float64(eRaw%50)/1000
		m1 := -2 * float64(d) * math.Log(0.01*1.99) / eps
		m2 := -2 * float64(2*d) * math.Log(0.01*1.99) / eps
		return math.Abs(m2-2*m1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSizePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"d=0", func() { Size(0, 0.02, 0.01) }},
		{"eps=0", func() { Size(4, 0, 0.01) }},
		{"delta=0", func() { Size(4, 0.02, 0) }},
		{"delta=1", func() { Size(4, 0.02, 1) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestChunkerEmitsExactChunks(t *testing.T) {
	c := NewChunker(3, 1)
	var chunks [][]linalg.Vector
	for i := 0; i < 10; i++ {
		got, err := c.Add(linalg.Vector{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			chunks = append(chunks, got)
		}
	}
	if len(chunks) != 3 {
		t.Fatalf("emitted %d chunks, want 3", len(chunks))
	}
	for i, ch := range chunks {
		if len(ch) != 3 {
			t.Fatalf("chunk %d has %d records", i, len(ch))
		}
	}
	if chunks[1][0][0] != 3 {
		t.Fatalf("chunk order wrong: %v", chunks[1][0])
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
	if c.Emitted() != 3 {
		t.Fatalf("Emitted = %d", c.Emitted())
	}
}

func TestChunkerFlush(t *testing.T) {
	c := NewChunker(5, 2)
	_, _ = c.Add(linalg.Vector{1, 2})
	_, _ = c.Add(linalg.Vector{3, 4})
	rest := c.Flush()
	if len(rest) != 2 {
		t.Fatalf("flush returned %d records", len(rest))
	}
	if c.Pending() != 0 {
		t.Fatal("Pending after flush")
	}
	if got := c.Flush(); len(got) != 0 {
		t.Fatal("second flush not empty")
	}
}

func TestChunkerDimValidation(t *testing.T) {
	c := NewChunker(2, 3)
	if _, err := c.Add(linalg.Vector{1}); err == nil {
		t.Fatal("wrong-dim record accepted")
	}
}

func TestChunkerConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewChunker(0, 1) },
		func() { NewChunker(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestChunkerNoAliasing(t *testing.T) {
	c := NewChunker(1, 1)
	first, _ := c.Add(linalg.Vector{1})
	second, _ := c.Add(linalg.Vector{2})
	if first[0][0] != 1 || second[0][0] != 2 {
		t.Fatal("returned chunks alias internal buffer")
	}
}

func TestChunkerAddCopies(t *testing.T) {
	// Add copies the record: mutating the caller's vector afterwards must
	// not change what the chunk holds.
	c := NewChunker(2, 1)
	x := linalg.Vector{7}
	c.Add(x)
	x[0] = -1
	full, _ := c.Add(linalg.Vector{8})
	if full[0][0] != 7 || full[1][0] != 8 {
		t.Fatalf("chunk = %v, want [[7] [8]]", full)
	}
}

func TestChunkerRecycleReusesStorage(t *testing.T) {
	c := NewChunker(2, 2)
	c.Add(linalg.Vector{1, 2})
	first, _ := c.Add(linalg.Vector{3, 4})
	c.Recycle(first)
	c.Add(linalg.Vector{5, 6})
	second, _ := c.Add(linalg.Vector{7, 8})
	c.Recycle(second)
	c.Add(linalg.Vector{9, 10})
	third, _ := c.Add(linalg.Vector{11, 12})
	// With a recycled buffer always available, the third chunk must be the
	// first one's storage coming back around (two-buffer steady state).
	if &third[0][0] != &first[0][0] {
		t.Fatal("recycled storage not reused")
	}
	if third[0][0] != 9 || third[1][1] != 12 {
		t.Fatalf("third chunk = %v", third)
	}
}

func TestChunkerRecycleRejectsWrongShape(t *testing.T) {
	c := NewChunker(2, 2)
	// Wrong length and wrong dim are silently dropped, never adopted.
	c.Recycle(make([]linalg.Vector, 3))
	c.Recycle([]linalg.Vector{{1}, {2}})
	c.Add(linalg.Vector{1, 2})
	full, err := c.Add(linalg.Vector{3, 4})
	if err != nil || len(full) != 2 || len(full[0]) != 2 {
		t.Fatalf("chunk after bad recycles = %v (%v)", full, err)
	}
}

func TestChunkerSteadyStateZeroAlloc(t *testing.T) {
	c := NewChunker(50, 4)
	x := make(linalg.Vector, 4)
	avg := testing.AllocsPerRun(200, func() {
		full, err := c.Add(x)
		if err != nil {
			t.Fatal(err)
		}
		if full != nil {
			c.Recycle(full)
		}
	})
	if avg != 0 {
		t.Fatalf("Add+Recycle allocates %v per record in steady state", avg)
	}
}

func TestChunkerFlushKeepsRecordsValid(t *testing.T) {
	// Flush transfers ownership: the flushed records must survive the
	// chunker filling (and emitting) subsequent chunks.
	c := NewChunker(2, 1)
	c.Add(linalg.Vector{1})
	got := c.Flush()
	for i := 0; i < 10; i++ {
		if full, _ := c.Add(linalg.Vector{float64(100 + i)}); full != nil {
			c.Recycle(full)
		}
	}
	if len(got) != 1 || got[0][0] != 1 {
		t.Fatalf("flushed records clobbered: %v", got)
	}
}
