package chunk

import (
	"math"

	"cludistream/internal/linalg"
)

// Scan is the shared per-chunk scoring workspace: the complete-records
// view of a chunk, computed once and reused by every model test the chunk
// undergoes (the site's multi-test probes up to c_max models against the
// same records, and previously re-filtered the chunk per probe).
//
// The filtered view is backed by a buffer owned by the Scan, so a site
// that resets the same Scan per chunk runs the whole multi-test without
// allocating — the companion of the Chunker's two-buffer recycle protocol
// on the scoring side.
type Scan struct {
	data     []linalg.Vector // the chunk this scan is bound to
	complete []linalg.Vector // filtered view (nil until computed)
	done     bool
	buf      []linalg.Vector // reused backing for the filtered view
}

// Reset binds the scan to a new chunk, dropping any cached state.
func (s *Scan) Reset(data []linalg.Vector) {
	s.data = data
	s.complete = nil
	s.done = false
}

// Complete returns the chunk's records with every incomplete (NaN-bearing)
// record removed, computing the filter on first call and serving the
// cached view afterwards. When all records are complete — the common case
// — the chunk slice itself is returned and nothing is copied.
func (s *Scan) Complete() []linalg.Vector {
	if s.done {
		return s.complete
	}
	s.complete = CompleteInto(s.data, &s.buf)
	s.done = true
	return s.complete
}

// CompleteInto filters out records with missing (NaN) attributes. It
// returns the input unchanged (no copy) when every record is complete;
// otherwise the filtered view is built in *buf, which is grown as needed
// and reused across calls.
func CompleteInto(data []linalg.Vector, buf *[]linalg.Vector) []linalg.Vector {
	for i, x := range data {
		if hasNaN(x) {
			out := (*buf)[:0]
			if cap(out) < len(data) {
				out = make([]linalg.Vector, 0, len(data))
			}
			out = append(out, data[:i]...)
			for _, y := range data[i+1:] {
				if !hasNaN(y) {
					out = append(out, y)
				}
			}
			*buf = out
			return out
		}
	}
	return data
}

func hasNaN(x linalg.Vector) bool {
	for _, v := range x {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}
