package chunk

import (
	"math"
	"testing"

	"cludistream/internal/linalg"
)

func TestScanCompleteNoCopyWhenClean(t *testing.T) {
	data := []linalg.Vector{{1, 2}, {3, 4}, {5, 6}}
	var s Scan
	s.Reset(data)
	got := s.Complete()
	if len(got) != 3 || &got[0][0] != &data[0][0] {
		t.Fatal("complete chunk must be returned without copying")
	}
	// Cached: second call returns the identical view.
	if again := s.Complete(); &again[0] != &got[0] {
		t.Fatal("second Complete call did not serve the cache")
	}
}

func TestScanCompleteFiltersNaN(t *testing.T) {
	nan := math.NaN()
	data := []linalg.Vector{{1, 2}, {nan, 4}, {5, 6}, {7, nan}}
	var s Scan
	s.Reset(data)
	got := s.Complete()
	if len(got) != 2 || got[0][0] != 1 || got[1][0] != 5 {
		t.Fatalf("filtered view = %v", got)
	}
	// Rebinding to a clean chunk drops the cache.
	clean := []linalg.Vector{{9, 9}}
	s.Reset(clean)
	if got := s.Complete(); len(got) != 1 || got[0][0] != 9 {
		t.Fatalf("after Reset: %v", got)
	}
}

func TestScanReusesFilterBuffer(t *testing.T) {
	nan := math.NaN()
	data := []linalg.Vector{{1}, {nan}, {3}, {4}}
	var s Scan
	s.Reset(data)
	s.Complete() // allocate the filter buffer once
	allocs := testing.AllocsPerRun(50, func() {
		s.Reset(data)
		s.Complete()
	})
	if allocs != 0 {
		t.Fatalf("re-filtering allocated %.1f times, want 0", allocs)
	}
}

func TestCompleteIntoIndependentOfBufferContents(t *testing.T) {
	nan := math.NaN()
	data := []linalg.Vector{{nan}, {2}}
	buf := make([]linalg.Vector, 7, 16) // stale junk in the buffer
	got := CompleteInto(data, &buf)
	if len(got) != 1 || got[0][0] != 2 {
		t.Fatalf("got %v", got)
	}
}
