package chunk

import (
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// TestTheorem1Coverage verifies the paper's Theorem 1 empirically: for a
// Gaussian N(μ, Σ) and chunk size M = Size(d, ε, δ), the squared
// Mahalanobis distance from the sample mean of M records to μ is below ε
// with probability at least 1−δ.
func TestTheorem1Coverage(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	cases := []struct {
		d     int
		eps   float64
		delta float64
	}{
		{1, 0.02, 0.01},
		{2, 0.05, 0.01},
		{4, 0.02, 0.01},
		{4, 0.1, 0.05},
		{8, 0.05, 0.02},
	}
	for _, tc := range cases {
		m := Size(tc.d, tc.eps, tc.delta)
		// Random non-trivial Gaussian.
		mean := linalg.NewVector(tc.d)
		for i := range mean {
			mean[i] = rng.NormFloat64() * 3
		}
		cov := linalg.NewSym(tc.d)
		for k := 0; k < tc.d+2; k++ {
			v := linalg.NewVector(tc.d)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			cov.AddOuterScaled(0.7, v)
		}
		for i := 0; i < tc.d; i++ {
			cov.Add(i, i, 0.3)
		}
		comp := gaussian.MustComponent(mean, cov)

		const trials = 300
		var exceed int
		sum := linalg.NewVector(tc.d)
		x := linalg.NewVector(tc.d)
		for trial := 0; trial < trials; trial++ {
			for i := range sum {
				sum[i] = 0
			}
			for rec := 0; rec < m; rec++ {
				comp.SampleInto(rng, x)
				sum.AddInPlace(x)
			}
			sum.ScaleInPlace(1 / float64(m))
			if comp.MahalanobisSq(sum) >= tc.eps {
				exceed++
			}
		}
		rate := float64(exceed) / trials
		// The theorem guarantees rate ≤ δ; allow binomial noise
		// (3σ ≈ 3·sqrt(δ/trials)).
		limit := tc.delta + 3*math.Sqrt(tc.delta/trials) + 0.01
		if rate > limit {
			t.Errorf("d=%d ε=%v δ=%v M=%d: exceed rate %.4f > %v", tc.d, tc.eps, tc.delta, m, rate, limit)
		}
	}
}

// TestTheorem1Tightness checks the bound is not absurdly loose in the
// other direction: halving M should produce noticeably more exceedances
// at small δ — i.e. M actually matters.
func TestTheorem1Tightness(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	const d = 2
	eps, delta := 0.05, 0.01
	comp := gaussian.Spherical(linalg.Vector{0, 0}, 1)
	m := Size(d, eps, delta)

	rate := func(m int) float64 {
		const trials = 400
		var exceed int
		sum := linalg.NewVector(d)
		x := linalg.NewVector(d)
		for trial := 0; trial < trials; trial++ {
			sum[0], sum[1] = 0, 0
			for rec := 0; rec < m; rec++ {
				comp.SampleInto(rng, x)
				sum.AddInPlace(x)
			}
			sum.ScaleInPlace(1 / float64(m))
			if comp.MahalanobisSq(sum) >= eps {
				exceed++
			}
		}
		return float64(exceed) / trials
	}
	atM := rate(m)
	atTenth := rate(m / 10)
	if atTenth <= atM {
		t.Errorf("exceed rate did not grow when shrinking M: %.4f at M=%d vs %.4f at M=%d", atM, m, atTenth, m/10)
	}
	if atTenth < 0.05 {
		t.Errorf("M/10 still satisfies the bound comfortably (%.4f) — M would be vacuous", atTenth)
	}
}
