// Package coordinator implements CluDistream's coordinator-site processing
// (Section 5.2 of the paper). The coordinator receives model updates from r
// remote sites and maintains a two-level tree of Gaussian mixture models:
// per-site components (leaves) grouped under merged father nodes. Placement
// uses the transmit-free M_merge criterion (Eq. 5); merged fathers are
// fitted by minimizing the L1 accuracy-loss with downhill simplex; and on
// every update Algorithm 2 re-checks affected components with the
// M_split / M_remerge pair (Eq. 6), splitting drifted components from their
// fathers and re-merging them into the nearest sibling mixture.
package coordinator

import (
	"fmt"
	"math"
	"sort"

	"cludistream/internal/gaussian"
	"cludistream/internal/kdtree"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Dim is the data dimensionality.
	Dim int
	// MaxMergeDistance is the largest CrossMahalanobisSq (the reciprocal of
	// M_merge) at which a new component still joins an existing group; a
	// component farther than this from every group seeds a new group.
	// Default 4·d: means within ~√2 pooled standard deviations merge.
	MaxMergeDistance float64
	// Merge tunes the pairwise merge fitting (simplex budget, samples,
	// MomentOnly ablation).
	Merge gaussian.MergeOptions
	// IndexMinGroups is the group count above which placement queries the
	// k-d index over representative means instead of scanning every group
	// (the paper's future-work "index structure to accelerate merge and
	// split"). Default 32. The index pre-selects nearest-mean candidates;
	// the exact M_merge criterion is still evaluated on them, so results
	// only differ when the best group is not among the nearest means —
	// rare, and bounded by the same MaxMergeDistance gate.
	IndexMinGroups int
	// DisableIndex forces exhaustive scans (the ablation baseline).
	DisableIndex bool
	// IncrementalRemerge selects how Algorithm 2's M_split/M_remerge
	// stability check is scheduled after an update:
	//
	//   "on" (the default) — dirty-group sweep: every group whose membership
	//   or representative changed since its last check is re-evaluated, in
	//   ascending group-id order, and untouched groups are skipped. Skipping
	//   is sound because a member's split criterion depends only on its own
	//   component, its frozen M_remerge reference and the group
	//   representative — none of which can change without the group being
	//   marked dirty — so a clean group re-check is provably a no-op.
	//
	//   "exact" — re-evaluate every group on every update. The reference
	//   the sweep is provably equivalent to (clean-group checks are no-ops),
	//   kept as the parity baseline the tests compare against.
	//
	//   "off" — the legacy schedule: only the updated site model's own
	//   components are re-checked, so drift introduced into a group by a
	//   sibling's arrival is not noticed until that sibling's model updates
	//   again.
	IncrementalRemerge string
	// RemergeAuditEvery, when positive, runs a full stability audit every
	// Nth handled update under IncrementalRemerge "on": every clean
	// (not-dirty) group is verified to contain no splittable member, and
	// violations — which would mean the dirty tracking missed a mutation —
	// are counted in Stats.RemergeAuditViolations and journaled. Purely
	// observational; the audit never mutates the tree.
	RemergeAuditEvery int
	// Telemetry, when non-nil, receives merge/split/re-merge counters and
	// journal events alongside the Stats the experiments already read.
	// Observational only — the tree it describes is bit-identical with or
	// without it.
	Telemetry *telemetry.Registry
}

// Accepted Config.IncrementalRemerge values.
const (
	// RemergeOn re-checks dirty groups only (the default).
	RemergeOn = "on"
	// RemergeExact re-checks every group on every update (parity reference).
	RemergeExact = "exact"
	// RemergeOff re-checks only the updated model's components (legacy).
	RemergeOff = "off"
)

func (c Config) withDefaults() Config {
	if c.MaxMergeDistance <= 0 {
		c.MaxMergeDistance = 4 * float64(c.Dim)
	}
	if c.Merge.Seed == 0 {
		c.Merge.Seed = 1
	}
	if c.IndexMinGroups <= 0 {
		c.IndexMinGroups = 32
	}
	if c.IncrementalRemerge == "" {
		c.IncrementalRemerge = RemergeOn
	}
	return c
}

// indexCandidates is how many nearest-mean groups the index hands to the
// exact criterion.
const indexCandidates = 8

// Stats counts coordinator work for the experiments.
type Stats struct {
	UpdatesHandled int
	NewModels      int
	WeightUpdates  int
	Deletions      int
	Splits         int
	Remerges       int
	GroupsCreated  int
	GroupsRemoved  int
	SiteResets     int

	// RemergeAuditViolations counts unstable members the periodic audit
	// found inside clean groups — always zero unless dirty tracking is
	// broken (pinned by tests and the DST invariant suite). The sweep's
	// dirty-vs-clean scheduling counts live in telemetry only
	// (coord.remerge_dirty_groups / coord.remerge_clean_groups): they
	// describe how work was scheduled, not what state was reached, and a
	// recovered coordinator legitimately re-schedules more than the
	// original did while reaching the identical tree.
	RemergeAuditViolations int
}

// coordTele holds the coordinator's telemetry instruments, resolved once
// at construction; all pointers nil (no-op) when no registry is set.
type coordTele struct {
	reg           *telemetry.Registry
	tracer        *telemetry.Tracer // causal traces; nil unless enabled
	updates       *telemetry.Counter
	newModels     *telemetry.Counter
	weightUpdates *telemetry.Counter
	deletions     *telemetry.Counter
	splits        *telemetry.Counter
	remerges      *telemetry.Counter
	groupsCreated *telemetry.Counter
	groupsRemoved *telemetry.Counter
	siteResets    *telemetry.Counter
	remergeDirty  *telemetry.Counter
	remergeClean  *telemetry.Counter
	auditViol     *telemetry.Counter
	groups        *telemetry.Gauge
	leaves        *telemetry.Gauge
	mixtureVer    *telemetry.Gauge
}

// setSizes publishes the current group/leaf population after a handled
// message (nil-safe; no-op without a registry).
func (t coordTele) setSizes(groups, leaves int) {
	t.groups.Set(float64(groups))
	t.leaves.Set(float64(leaves))
}

func newCoordTele(reg *telemetry.Registry) coordTele {
	if reg == nil {
		return coordTele{}
	}
	return coordTele{
		reg:           reg,
		tracer:        reg.Tracer(),
		updates:       reg.Counter("coord.updates_handled"),
		newModels:     reg.Counter("coord.new_models"),
		weightUpdates: reg.Counter("coord.weight_updates"),
		deletions:     reg.Counter("coord.deletions"),
		splits:        reg.Counter("coord.splits"),
		remerges:      reg.Counter("coord.remerges"),
		groupsCreated: reg.Counter("coord.groups_created"),
		groupsRemoved: reg.Counter("coord.groups_removed"),
		siteResets:    reg.Counter("coord.site_resets"),
		remergeDirty:  reg.Counter("coord.remerge_dirty_groups"),
		remergeClean:  reg.Counter("coord.remerge_clean_groups"),
		auditViol:     reg.Counter("coord.remerge_audit_violations"),
		groups:        reg.Gauge("coord.groups"),
		leaves:        reg.Gauge("coord.leaves"),
		mixtureVer:    reg.Gauge("coord.mixture_version"),
	}
}

// siteModel tracks one registered remote-site model and its record counter.
type siteModel struct {
	siteID  int
	modelID int
	mix     *gaussian.Mixture
	counter int
}

// Coordinator is the central site.
type Coordinator struct {
	cfg    Config
	groups []*Group // insertion order; compacted in place
	byID   map[int]*Group
	nextID int
	// index holds representative means for accelerated placement; nil when
	// disabled.
	index *kdtree.Tree

	models map[int]map[int]*siteModel // siteID → modelID → model
	// location maps each leaf to the id of the group holding it.
	location map[MemberKey]int

	// dirty holds ids of groups whose membership or representative changed
	// since their last stability sweep (IncrementalRemerge on/exact).
	dirty map[int]struct{}
	// sweepGen numbers stability sweeps; member.checked carries the last
	// sweep that evaluated the member.
	sweepGen uint64
	// hasEmpty records that some group may have been emptied, so compact's
	// O(groups) scan runs only when it can find something to drop.
	hasEmpty bool
	// workScratch/keysScratch are sweep workspaces, reused across updates.
	workScratch []int
	keysScratch []MemberKey

	// Trace context of the message being handled (zeros when untraced):
	// installed from the update itself or via SetTraceContext, cleared by
	// finishApply. mixtureVer numbers successfully applied mutations of
	// the global mixture — the "global visibility" marker of the freshness
	// SLO (apply→global-mixture-version lag).
	curTrace   uint64
	curParent  uint64
	mixtureVer uint64

	stats Stats
	tele  coordTele
}

// New constructs a Coordinator for streams of the given dimensionality.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("coordinator: Dim = %d", cfg.Dim)
	}
	cfg = cfg.withDefaults()
	switch cfg.IncrementalRemerge {
	case RemergeOn, RemergeExact, RemergeOff:
	default:
		return nil, fmt.Errorf("coordinator: IncrementalRemerge = %q (want %q, %q or %q)",
			cfg.IncrementalRemerge, RemergeOn, RemergeExact, RemergeOff)
	}
	c := &Coordinator{
		cfg:      cfg,
		byID:     make(map[int]*Group),
		nextID:   1,
		models:   make(map[int]map[int]*siteModel),
		location: make(map[MemberKey]int),
		dirty:    make(map[int]struct{}),
		tele:     newCoordTele(cfg.Telemetry),
	}
	if !cfg.DisableIndex {
		c.index = kdtree.New(cfg.Dim)
	}
	return c, nil
}

// SetTraceContext installs the causal trace context of the next handled
// message. Callers that route messages without a site.Update in hand
// (deletions, the delivery layers) set it immediately before the Handle*
// call; HandleUpdate reads the context off the update itself. The context
// is cleared when the handle finishes. The coordinator is driven
// single-threaded by its delivery layer (the facade's simulator loop or
// the netio server's apply lock), so a plain field is safe.
func (c *Coordinator) SetTraceContext(traceID, parentSpan uint64) {
	c.curTrace, c.curParent = traceID, parentSpan
}

// beginApply opens the "apply" span for the message being handled and
// re-parents deeper spans (the remerge sweep) under it.
func (c *Coordinator) beginApply(siteID, modelID int) telemetry.SpanRef {
	span := c.tele.tracer.Begin(c.curTrace, c.curParent, "apply", siteID, modelID)
	if _, sid := span.Context(); sid != 0 {
		c.curParent = sid
	}
	return span
}

// finishApply closes an apply span and clears the trace context. On
// success the global mixture version advances and — when the message was
// traced — the trace is marked globally visible, feeding the
// decision→apply and apply→visible freshness histograms.
func (c *Coordinator) finishApply(span telemetry.SpanRef, err error) {
	trace := c.curTrace
	c.curTrace, c.curParent = 0, 0
	if err != nil {
		span.End(0, "error")
		return
	}
	c.mixtureVer++
	c.tele.mixtureVer.Set(float64(c.mixtureVer))
	span.End(int(c.mixtureVer), "")
	if tr := c.tele.tracer; tr != nil && trace != 0 {
		tr.CompleteVisible(trace, span.Start(), tr.Now())
	}
}

// HandleUpdate applies one site update (Algorithm 2's trigger: "if remote
// site r_i updated").
func (c *Coordinator) HandleUpdate(u site.Update) error {
	if u.TraceID != 0 {
		c.curTrace, c.curParent = u.TraceID, u.SpanID
	}
	span := c.beginApply(u.SiteID, u.ModelID)
	c.stats.UpdatesHandled++
	c.tele.updates.Inc()
	defer c.tele.setSizes(len(c.groups), len(c.location))
	var err error
	switch u.Kind {
	case site.NewModel:
		err = c.handleNewModel(u)
	case site.WeightUpdate:
		err = c.handleWeightUpdate(u)
	default:
		err = fmt.Errorf("coordinator: unknown update kind %v", u.Kind)
		c.finishApply(span, err)
		return err
	}
	if err == nil && c.cfg.RemergeAuditEvery > 0 && c.cfg.IncrementalRemerge == RemergeOn &&
		c.stats.UpdatesHandled%c.cfg.RemergeAuditEvery == 0 {
		c.auditStability()
	}
	c.finishApply(span, err)
	return err
}

func (c *Coordinator) handleNewModel(u site.Update) error {
	if u.Mixture == nil {
		return fmt.Errorf("coordinator: NewModel update from site %d without mixture", u.SiteID)
	}
	if u.Mixture.Dim() != c.cfg.Dim {
		return fmt.Errorf("coordinator: site %d model dim %d, want %d", u.SiteID, u.Mixture.Dim(), c.cfg.Dim)
	}
	byModel := c.models[u.SiteID]
	if byModel == nil {
		byModel = make(map[int]*siteModel)
		c.models[u.SiteID] = byModel
	}
	if _, dup := byModel[u.ModelID]; dup {
		return fmt.Errorf("coordinator: duplicate model %d from site %d", u.ModelID, u.SiteID)
	}
	sm := &siteModel{siteID: u.SiteID, modelID: u.ModelID, mix: u.Mixture, counter: u.Count}
	byModel[u.ModelID] = sm
	c.stats.NewModels++
	c.tele.newModels.Inc()
	c.tele.reg.Record(telemetry.Event{
		Kind: "new-model", Site: u.SiteID, Model: u.ModelID, N: u.Count,
	})

	for j := 0; j < sm.mix.K(); j++ {
		key := MemberKey{SiteID: u.SiteID, ModelID: u.ModelID, Comp: j}
		m := &member{
			key:    key,
			comp:   sm.mix.Component(j),
			weight: sm.mix.Weight(j) * float64(sm.counter),
		}
		c.place(m)
	}
	c.restabilize(sm)
	return nil
}

// restabilize runs the configured Algorithm-2 stability pass after an
// update touched sm: the dirty-group sweep (or full sweep under "exact"),
// or the legacy updated-model-only check under "off".
func (c *Coordinator) restabilize(sm *siteModel) {
	if c.cfg.IncrementalRemerge == RemergeOff {
		c.checkSiteModel(sm)
		return
	}
	c.stabilize()
}

func (c *Coordinator) handleWeightUpdate(u site.Update) error {
	sm := c.lookup(u.SiteID, u.ModelID)
	if sm == nil {
		return fmt.Errorf("coordinator: weight update for unknown model %d of site %d", u.ModelID, u.SiteID)
	}
	c.stats.WeightUpdates++
	c.tele.weightUpdates.Inc()
	return c.shiftWeight(sm, u.Count)
}

// HandleDeletion applies a negative-weight message (Section 7, sliding
// windows): count records of the given site model expired from the window.
// When the model's counter reaches zero its components leave the tree.
func (c *Coordinator) HandleDeletion(siteID, modelID, count int) error {
	span := c.beginApply(siteID, modelID)
	sm := c.lookup(siteID, modelID)
	if sm == nil {
		err := fmt.Errorf("coordinator: deletion for unknown model %d of site %d", modelID, siteID)
		c.finishApply(span, err)
		return err
	}
	c.stats.Deletions++
	c.tele.deletions.Inc()
	defer c.tele.setSizes(len(c.groups), len(c.location))
	err := c.shiftWeight(sm, -count)
	c.finishApply(span, err)
	return err
}

// ResetSite discards every model registered by the given site, removing
// its leaves from the tree. The fault-tolerant delivery layer calls it
// when a site returns with a higher epoch: state from the dead
// incarnation must not double-count records the restarted site will
// re-report. Unknown sites are a no-op.
func (c *Coordinator) ResetSite(siteID int) {
	byModel := c.models[siteID]
	if byModel == nil {
		return
	}
	for _, sm := range byModel {
		for j := 0; j < sm.mix.K(); j++ {
			c.removeLeaf(MemberKey{SiteID: sm.siteID, ModelID: sm.modelID, Comp: j})
		}
	}
	delete(c.models, siteID)
	if c.cfg.IncrementalRemerge != RemergeOff {
		c.stabilize()
	}
	c.stats.SiteResets++
	c.tele.siteResets.Inc()
	c.tele.reg.Record(telemetry.Event{Kind: "site-reset", Site: siteID})
}

// shiftWeight adjusts a model's counter and propagates the new absolute
// weights to the model's leaves, then runs the Algorithm-2 check.
func (c *Coordinator) shiftWeight(sm *siteModel, delta int) error {
	sm.counter += delta
	if sm.counter <= 0 {
		// "The model is deleted from the model list if its weight becomes
		// non-positive."
		for j := 0; j < sm.mix.K(); j++ {
			key := MemberKey{SiteID: sm.siteID, ModelID: sm.modelID, Comp: j}
			c.removeLeaf(key)
		}
		delete(c.models[sm.siteID], sm.modelID)
		if c.cfg.IncrementalRemerge != RemergeOff {
			// The departures changed representatives of the surviving
			// groups; re-check them (the legacy path leaves them until
			// their own models update).
			c.stabilize()
		}
		return nil
	}
	for j := 0; j < sm.mix.K(); j++ {
		key := MemberKey{SiteID: sm.siteID, ModelID: sm.modelID, Comp: j}
		g := c.groupOf(key)
		if g == nil {
			continue
		}
		i := g.find(key)
		m := g.members[i]
		newW := sm.mix.Weight(j) * float64(sm.counter)
		g.weight += newW - m.weight
		m.weight = newW
	}
	// Weights changed every father containing a leaf of this model;
	// refresh their representatives and re-check stability.
	c.refreshModelGroups(sm)
	c.restabilize(sm)
	return nil
}

// refreshModelGroups recomputes representatives of all groups touching sm.
func (c *Coordinator) refreshModelGroups(sm *siteModel) {
	seen := map[int]bool{}
	for j := 0; j < sm.mix.K(); j++ {
		key := MemberKey{SiteID: sm.siteID, ModelID: sm.modelID, Comp: j}
		if g := c.groupOf(key); g != nil && !seen[g.id] {
			seen[g.id] = true
			c.refreshGroup(g)
		}
	}
	c.compact()
}

// place inserts a leaf into the group with the largest M_merge against the
// group representative, or seeds a new group when every group is farther
// than MaxMergeDistance. Above IndexMinGroups groups, the k-d index
// pre-selects the nearest-mean candidates and the exact criterion is
// evaluated on those only.
func (c *Coordinator) place(m *member) {
	var best *Group
	bestDist := math.Inf(1)
	for _, g := range c.candidates(m) {
		if g == nil || g.rep == nil {
			continue
		}
		d := gaussian.CrossMahalanobisSq(m.comp, g.rep)
		if d < bestDist {
			best, bestDist = g, d
		}
	}
	if best == nil || bestDist > c.cfg.MaxMergeDistance {
		g := &Group{id: c.nextID}
		c.nextID++
		c.stats.GroupsCreated++
		c.tele.groupsCreated.Inc()
		g.insert(m)
		c.refreshGroup(g)
		m.mremergeAtJoin = math.Inf(1) // own group: perfectly stable
		c.groups = append(c.groups, g)
		c.byID[g.id] = g
		c.location[m.key] = g.id
		return
	}
	m.mremergeAtJoin = 1 / bestDist
	best.insert(m)
	c.refreshGroup(best)
	c.location[m.key] = best.id
	c.stats.Remerges++
	c.tele.remerges.Inc()
}

// candidates returns the groups to evaluate for placement: all of them
// below the index threshold, otherwise the nearest-mean short list.
func (c *Coordinator) candidates(m *member) []*Group {
	if c.index == nil || len(c.groups) < c.cfg.IndexMinGroups {
		return c.groups
	}
	nbs := c.index.NearestK(m.comp.Mean(), indexCandidates)
	out := make([]*Group, 0, len(nbs))
	for _, nb := range nbs {
		out = append(out, c.byID[nb.ID])
	}
	return out
}

// refreshGroup recomputes a group's representative and keeps the index in
// sync with the new mean. Every membership or weight mutation funnels
// through here, so it is also the single point where groups are marked
// dirty for the incremental stability sweep.
func (c *Coordinator) refreshGroup(g *Group) {
	g.recomputeRep(c.cfg.Merge)
	c.dirty[g.id] = struct{}{}
	if g.Size() == 0 {
		c.hasEmpty = true
	}
	if c.index == nil {
		return
	}
	if g.rep == nil {
		c.index.Remove(g.id)
		return
	}
	c.index.Insert(g.id, g.rep.Mean())
}

// checkSiteModel is Algorithm 2's loop: for each component of the updated
// site model, compare M_split against the stored 1/M_remerge; split and
// re-merge components that drifted.
func (c *Coordinator) checkSiteModel(sm *siteModel) {
	for j := 0; j < sm.mix.K(); j++ {
		key := MemberKey{SiteID: sm.siteID, ModelID: sm.modelID, Comp: j}
		g := c.groupOf(key)
		if g == nil || g.Size() <= 1 {
			continue
		}
		i := g.find(key)
		m := g.members[i]
		msplit := gaussian.MSplitComp(m.comp, g.rep)
		if msplit <= 1/m.mremergeAtJoin {
			continue // stable: no need to split
		}
		// Split from the father...
		c.stats.Splits++
		c.tele.splits.Inc()
		c.tele.reg.Record(telemetry.Event{
			Kind: "split", Site: sm.siteID, Model: sm.modelID, Value: msplit, N: j,
		})
		g.remove(i)
		c.refreshGroup(g)
		delete(c.location, key)
		// ...and re-merge into the sibling mixture with the largest
		// M_remerge (which may be a brand-new group if none is close).
		c.place(m)
	}
	c.compact()
}

// stabilize is the incremental Algorithm-2 pass: sweep every dirty group
// (every group under RemergeExact), in ascending id order, re-checking its
// members' M_split/M_remerge stability. The worklist is fixed at sweep
// start; groups dirtied during the sweep — by splits landing elsewhere, or
// by this sweep's own mutations — are deferred to the next update's sweep,
// which keeps each sweep bounded and makes the "on" and "exact" schedules
// provably equivalent: a group that is not dirty had every member verified
// stable against a representative that has not changed since, so checking
// it again cannot do anything.
func (c *Coordinator) stabilize() {
	span := c.tele.tracer.Begin(c.curTrace, c.curParent, "remerge", 0, 0)
	c.sweepGen++
	work := c.workScratch[:0]
	if c.cfg.IncrementalRemerge == RemergeExact {
		for _, g := range c.groups {
			work = append(work, g.id)
		}
	} else {
		for id := range c.dirty {
			work = append(work, id)
		}
	}
	sort.Ints(work)
	for id := range c.dirty {
		delete(c.dirty, id)
	}
	total := len(c.groups)
	swept := 0
	for _, id := range work {
		g := c.byID[id]
		if g == nil {
			continue // compacted away before its turn
		}
		swept++
		c.checkGroup(g)
	}
	c.workScratch = work[:0]
	c.tele.remergeDirty.Add(int64(swept))
	c.tele.remergeClean.Add(int64(total - swept))
	c.compact()
	span.End(swept, "")
}

// checkGroup re-evaluates one group's members against its representative,
// splitting and re-placing any that drifted (Algorithm 2's body). Members
// already evaluated by this sweep — they split out of an earlier group and
// landed here — are skipped and the group stays dirty, so the next sweep
// finishes the job; this caps every sweep at one check per member.
func (c *Coordinator) checkGroup(g *Group) {
	keys := c.keysScratch[:0]
	for _, m := range g.members {
		keys = append(keys, m.key)
	}
	c.keysScratch = keys[:0]
	skipped := false
	for _, key := range keys {
		if g.Size() <= 1 {
			break
		}
		i := g.find(key)
		if i < 0 {
			continue
		}
		m := g.members[i]
		if m.checked == c.sweepGen {
			skipped = true
			continue
		}
		m.checked = c.sweepGen
		msplit := gaussian.MSplitComp(m.comp, g.rep)
		if msplit <= 1/m.mremergeAtJoin {
			continue // stable
		}
		c.stats.Splits++
		c.tele.splits.Inc()
		c.tele.reg.Record(telemetry.Event{
			Kind: "split", Site: key.SiteID, Model: key.ModelID, Value: msplit, N: key.Comp,
		})
		g.remove(i)
		c.refreshGroup(g)
		delete(c.location, key)
		c.place(m)
	}
	if skipped {
		c.dirty[g.id] = struct{}{}
	}
}

// auditStability is the RemergeAuditEvery knob: verify that no clean group
// holds a splittable member. A violation means a mutation escaped the
// dirty tracking — it is counted and journaled, never repaired, so tests
// and the simulation harness can assert the count stays zero.
func (c *Coordinator) auditStability() {
	for _, g := range c.groups {
		if g.Size() <= 1 {
			continue
		}
		if _, pending := c.dirty[g.id]; pending {
			continue // legitimately awaiting the next sweep
		}
		for _, m := range g.members {
			if gaussian.MSplitComp(m.comp, g.rep) > 1/m.mremergeAtJoin {
				c.stats.RemergeAuditViolations++
				c.tele.auditViol.Inc()
				c.tele.reg.Record(telemetry.Event{
					Kind: "remerge-audit-violation",
					Site: m.key.SiteID, Model: m.key.ModelID, N: m.key.Comp,
				})
			}
		}
	}
}

// removeLeaf deletes a leaf from its group entirely.
func (c *Coordinator) removeLeaf(key MemberKey) {
	g := c.groupOf(key)
	if g == nil {
		return
	}
	if i := g.find(key); i >= 0 {
		g.remove(i)
		c.refreshGroup(g)
	}
	delete(c.location, key)
	c.compact()
}

// compact drops empty groups. The scan is skipped entirely unless some
// group was actually emptied since the last compaction (refreshGroup
// tracks that), which turns the historical O(groups)-per-update cost into
// a no-op on the common path — removals are the only way to empty a group,
// so skipping the scan when none happened is identical by construction.
func (c *Coordinator) compact() {
	if !c.hasEmpty {
		return
	}
	c.hasEmpty = false
	out := c.groups[:0]
	for _, g := range c.groups {
		if g.Size() > 0 {
			out = append(out, g)
			continue
		}
		c.stats.GroupsRemoved++
		c.tele.groupsRemoved.Inc()
		delete(c.byID, g.id)
		delete(c.dirty, g.id)
		if c.index != nil {
			c.index.Remove(g.id)
		}
	}
	c.groups = out
}

func (c *Coordinator) lookup(siteID, modelID int) *siteModel {
	if byModel := c.models[siteID]; byModel != nil {
		return byModel[modelID]
	}
	return nil
}

func (c *Coordinator) groupOf(key MemberKey) *Group {
	id, ok := c.location[key]
	if !ok {
		return nil
	}
	return c.byID[id]
}

// Groups returns the current father nodes, ordered by id.
func (c *Coordinator) Groups() []*Group {
	out := append([]*Group(nil), c.groups...)
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// GlobalMixture returns the coordinator's answer to a mining request: the
// mixture of group representatives weighted by group mass. Returns nil
// before any model has arrived.
//
// The components are ordered canonically — by mean, then covariance, then
// weight — not by group ID. Group IDs depend on the coordinator's
// history (splits, site resets), while the canonical order depends only
// on the tree's final content; since mixture normalization sums the
// weights in slice order, canonical ordering is what makes two
// coordinators that converged to the same groups return bit-identical
// mixtures (the recovery guarantee the chaos and simulation tests pin).
// Means lead the sort because they are the stable coordinate: group
// weights drift with every update, and an order keyed on them would make
// successive snapshots of an unchanged clustering positionally different
// (which the hierarchy layer's change detection would mistake for churn).
func (c *Coordinator) GlobalMixture() *gaussian.Mixture {
	type entry struct {
		weight float64
		comp   *gaussian.Component
	}
	var entries []entry
	for _, g := range c.Groups() {
		if g.rep == nil || g.weight <= 0 {
			continue
		}
		entries = append(entries, entry{g.weight, g.rep})
	}
	if len(entries) == 0 {
		return nil
	}
	sort.Slice(entries, func(a, b int) bool {
		ea, eb := entries[a], entries[b]
		ma, mb := ea.comp.Mean(), eb.comp.Mean()
		for i := range ma {
			if ma[i] != mb[i] {
				return ma[i] < mb[i]
			}
		}
		ca, cb := ea.comp.Cov(), eb.comp.Cov()
		for i := 0; i < ca.Order(); i++ {
			for j := 0; j <= i; j++ {
				if ca.At(i, j) != cb.At(i, j) {
					return ca.At(i, j) < cb.At(i, j)
				}
			}
		}
		return ea.weight < eb.weight
	})
	comps := make([]*gaussian.Component, len(entries))
	weights := make([]float64, len(entries))
	for i, e := range entries {
		comps[i] = e.comp
		weights[i] = e.weight
	}
	mix, err := gaussian.NewMixture(weights, comps)
	if err != nil {
		return nil
	}
	return mix
}

// FlatMixture returns the naive union of all leaf components (the "combine
// all Gaussian models from each site directly" strategy the paper rejects
// as non-scalable). Kept as the merge ablation baseline.
func (c *Coordinator) FlatMixture() *gaussian.Mixture {
	var comps []*gaussian.Component
	var weights []float64
	for _, g := range c.Groups() {
		for _, m := range g.members {
			if m.weight <= 0 {
				continue
			}
			comps = append(comps, m.comp)
			weights = append(weights, m.weight)
		}
	}
	if len(comps) == 0 {
		return nil
	}
	mix, err := gaussian.NewMixture(weights, comps)
	if err != nil {
		return nil
	}
	return mix
}

// NumLeaves returns the number of leaf components in the tree.
func (c *Coordinator) NumLeaves() int { return len(c.location) }

// NumModels returns the number of registered site models.
func (c *Coordinator) NumModels() int {
	var n int
	for _, byModel := range c.models {
		n += len(byModel)
	}
	return n
}

// ModelWeight is one registered site model and its record counter — the
// observable the exactly-once invariant compares against a reference
// replay: a double-applied weight update shows up here immediately.
type ModelWeight struct {
	SiteID  int
	ModelID int
	Counter int
}

// ModelWeights returns every registered site model with its counter,
// sorted by (site, model) so the result is deterministic regardless of
// map iteration order.
func (c *Coordinator) ModelWeights() []ModelWeight {
	out := make([]ModelWeight, 0, c.NumModels())
	for _, byModel := range c.models {
		for _, sm := range byModel {
			out = append(out, ModelWeight{SiteID: sm.siteID, ModelID: sm.modelID, Counter: sm.counter})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].SiteID != out[b].SiteID {
			return out[a].SiteID < out[b].SiteID
		}
		return out[a].ModelID < out[b].ModelID
	})
	return out
}

// MixtureVersion returns the number of successfully applied mutations of
// the global mixture (updates and deletions) — the version the freshness
// SLO's apply→visible lag is measured against.
func (c *Coordinator) MixtureVersion() uint64 { return c.mixtureVer }

// TotalWeight returns the total record mass across all groups — the
// absolute weight behind GlobalMixture's normalized weights. The query
// tier's shard-reduce layer uses it to mass-weight shard snapshots.
func (c *Coordinator) TotalWeight() float64 {
	var total float64
	for _, g := range c.groups {
		if g.weight > 0 {
			total += g.weight
		}
	}
	return total
}

// Stats returns a copy of the work counters.
func (c *Coordinator) Stats() Stats { return c.stats }

// MemoryBytes estimates coordinator memory: every leaf plus every group
// representative at (1 + d + d(d+1)/2) floats each.
func (c *Coordinator) MemoryBytes() int {
	d := c.cfg.Dim
	per := 8 * (1 + d + d*(d+1)/2)
	return (c.NumLeaves() + len(c.groups)) * per
}
