package coordinator

import (
	"math"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

// mix1d builds a 1-d mixture from (mean, weight) pairs with unit variance.
func mix1d(means ...float64) *gaussian.Mixture {
	comps := make([]*gaussian.Component, len(means))
	ws := make([]float64, len(means))
	for i, m := range means {
		comps[i] = gaussian.Spherical(linalg.Vector{m}, 1)
		ws[i] = 1
	}
	return gaussian.MustMixture(ws, comps)
}

func newModelUpdate(siteID, modelID int, m *gaussian.Mixture, count int) site.Update {
	return site.Update{SiteID: siteID, ModelID: modelID, Kind: site.NewModel, Mixture: m, Count: count}
}

func mustNew(t *testing.T) *Coordinator {
	t.Helper()
	c, err := New(Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("Dim=0 accepted")
	}
}

func TestSingleModelPlacement(t *testing.T) {
	c := mustNew(t)
	if err := c.HandleUpdate(newModelUpdate(1, 1, mix1d(-5, 5), 100)); err != nil {
		t.Fatal(err)
	}
	// Components at ±5 (unit variance) are far apart: two groups.
	if got := len(c.Groups()); got != 2 {
		t.Fatalf("groups = %d, want 2", got)
	}
	if c.NumLeaves() != 2 {
		t.Fatalf("leaves = %d", c.NumLeaves())
	}
	gm := c.GlobalMixture()
	if gm == nil || gm.K() != 2 {
		t.Fatalf("global mixture = %v", gm)
	}
}

func TestCrossSiteMergeSharedClusters(t *testing.T) {
	// Two sites observe the same two clusters: the coordinator must merge
	// matching components rather than keep 4 groups.
	c := mustNew(t)
	if err := c.HandleUpdate(newModelUpdate(1, 1, mix1d(-5, 5), 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.HandleUpdate(newModelUpdate(2, 1, mix1d(-5.1, 5.1), 100)); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Groups()); got != 2 {
		t.Fatalf("groups = %d, want 2 after cross-site merge", got)
	}
	for _, g := range c.Groups() {
		if g.Size() != 2 {
			t.Fatalf("group %d has %d members, want 2", g.ID(), g.Size())
		}
		// Representative mean near ±5.
		mu := g.Representative().Mean()[0]
		if math.Abs(math.Abs(mu)-5.05) > 0.2 {
			t.Fatalf("representative mean = %v", mu)
		}
	}
}

func TestDistinctSiteDistributionsStaySeparate(t *testing.T) {
	// The paper explicitly allows different distributions per site (unlike
	// DEM): distinct clusters must not be merged.
	c := mustNew(t)
	_ = c.HandleUpdate(newModelUpdate(1, 1, mix1d(0), 100))
	_ = c.HandleUpdate(newModelUpdate(2, 1, mix1d(100), 100))
	if got := len(c.Groups()); got != 2 {
		t.Fatalf("groups = %d, want 2 for disjoint sites", got)
	}
}

func TestWeightUpdateShiftsMass(t *testing.T) {
	c := mustNew(t)
	_ = c.HandleUpdate(newModelUpdate(1, 1, mix1d(-5, 5), 100))
	before := c.GlobalMixture().Weights()
	if err := c.HandleUpdate(site.Update{SiteID: 1, ModelID: 1, Kind: site.WeightUpdate, Count: 300}); err != nil {
		t.Fatal(err)
	}
	// Equal components scale equally: normalized weights unchanged, but
	// total group mass must quadruple.
	var total float64
	for _, g := range c.Groups() {
		total += g.Weight()
	}
	if math.Abs(total-400) > 1e-9 {
		t.Fatalf("total mass = %v, want 400", total)
	}
	after := c.GlobalMixture().Weights()
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-9 {
			t.Fatalf("normalized weights changed: %v -> %v", before, after)
		}
	}
}

func TestWeightUpdateUnknownModel(t *testing.T) {
	c := mustNew(t)
	if err := c.HandleUpdate(site.Update{SiteID: 9, ModelID: 9, Kind: site.WeightUpdate, Count: 10}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestDuplicateModelRejected(t *testing.T) {
	c := mustNew(t)
	_ = c.HandleUpdate(newModelUpdate(1, 1, mix1d(0), 100))
	if err := c.HandleUpdate(newModelUpdate(1, 1, mix1d(1), 100)); err == nil {
		t.Fatal("duplicate model accepted")
	}
}

func TestNewModelValidation(t *testing.T) {
	c := mustNew(t)
	u := newModelUpdate(1, 1, nil, 100)
	if err := c.HandleUpdate(u); err == nil {
		t.Fatal("nil mixture accepted")
	}
	m2d := gaussian.MustMixture([]float64{1}, []*gaussian.Component{gaussian.Spherical(linalg.Vector{0, 0}, 1)})
	if err := c.HandleUpdate(newModelUpdate(1, 2, m2d, 100)); err == nil {
		t.Fatal("wrong-dim mixture accepted")
	}
}

func TestDeletionRemovesExpiredModel(t *testing.T) {
	c := mustNew(t)
	_ = c.HandleUpdate(newModelUpdate(1, 1, mix1d(-5, 5), 100))
	_ = c.HandleUpdate(newModelUpdate(1, 2, mix1d(-5, 5), 100))
	if c.NumModels() != 2 {
		t.Fatalf("models = %d", c.NumModels())
	}
	if err := c.HandleDeletion(1, 1, 100); err != nil {
		t.Fatal(err)
	}
	if c.NumModels() != 1 {
		t.Fatalf("models after deletion = %d", c.NumModels())
	}
	if c.NumLeaves() != 2 {
		t.Fatalf("leaves after deletion = %d, want 2", c.NumLeaves())
	}
	// Partial deletion just reduces mass.
	if err := c.HandleDeletion(1, 2, 40); err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, g := range c.Groups() {
		total += g.Weight()
	}
	if math.Abs(total-60) > 1e-9 {
		t.Fatalf("mass after partial deletion = %v, want 60", total)
	}
	if err := c.HandleDeletion(1, 99, 1); err == nil {
		t.Fatal("deletion for unknown model accepted")
	}
}

func TestSplitOnDrift(t *testing.T) {
	// Site 2's model is replaced by one far from the group it joined;
	// Algorithm 2 must split the stale member's replacement... modelled
	// here directly: join close, then weight-shift triggers the check with
	// a representative that moved.
	c := mustNew(t)
	// Two nearby components from different sites merge into one group.
	_ = c.HandleUpdate(newModelUpdate(1, 1, mix1d(0), 100))
	_ = c.HandleUpdate(newModelUpdate(2, 1, mix1d(1.0), 100))
	if len(c.Groups()) != 1 {
		t.Fatalf("setup: groups = %d, want 1", len(c.Groups()))
	}
	// A heavy third component drags the representative far away; the next
	// Algorithm-2 check on site 1's model must split it out.
	_ = c.HandleUpdate(newModelUpdate(3, 1, mix1d(2.0), 5000))
	splitsBefore := c.Stats().Splits
	_ = c.HandleUpdate(site.Update{SiteID: 1, ModelID: 1, Kind: site.WeightUpdate, Count: 1})
	if c.Stats().Splits <= splitsBefore {
		t.Log("no split triggered; acceptable if representative stayed close")
	}
	// Whatever happened, invariants must hold: every leaf located, groups
	// non-empty, global mixture valid.
	checkInvariants(t, c)
}

func TestGlobalMixtureQuality(t *testing.T) {
	// The merged model should explain data from all sites' clusters.
	c := mustNew(t)
	_ = c.HandleUpdate(newModelUpdate(1, 1, mix1d(-10, 0), 100))
	_ = c.HandleUpdate(newModelUpdate(2, 1, mix1d(0.5, 10), 100))
	gm := c.GlobalMixture()
	eval := []linalg.Vector{{-10}, {0}, {0.5}, {10}}
	if ll := gm.AvgLogLikelihood(eval); ll < -4 {
		t.Fatalf("global mixture LL = %v", ll)
	}
	// Flat mixture has every leaf.
	if c.FlatMixture().K() != 4 {
		t.Fatalf("flat K = %d", c.FlatMixture().K())
	}
	// Merged tree is no larger than the flat union.
	if gm.K() > 4 {
		t.Fatalf("global K = %d > flat", gm.K())
	}
}

func TestEmptyCoordinator(t *testing.T) {
	c := mustNew(t)
	if c.GlobalMixture() != nil || c.FlatMixture() != nil {
		t.Fatal("empty coordinator returned a mixture")
	}
	if c.NumLeaves() != 0 || c.NumModels() != 0 || c.MemoryBytes() != 0 {
		t.Fatal("empty coordinator has state")
	}
}

func TestMemoryBytesScalesWithLeaves(t *testing.T) {
	c := mustNew(t)
	_ = c.HandleUpdate(newModelUpdate(1, 1, mix1d(-5, 5), 100))
	m1 := c.MemoryBytes()
	_ = c.HandleUpdate(newModelUpdate(2, 1, mix1d(-50, 50), 100))
	m2 := c.MemoryBytes()
	if m2 <= m1 {
		t.Fatalf("memory did not grow: %d -> %d", m1, m2)
	}
}

func TestManySitesScalableGroups(t *testing.T) {
	// 20 sites, same two clusters: group count must stay 2 (not 40) — the
	// scalability argument of Section 5.2 against the naive union.
	c := mustNew(t)
	for s := 1; s <= 20; s++ {
		if err := c.HandleUpdate(newModelUpdate(s, 1, mix1d(-5, 5), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c.Groups()); got != 2 {
		t.Fatalf("groups = %d, want 2 with 20 identical sites", got)
	}
	if c.NumLeaves() != 40 {
		t.Fatalf("leaves = %d, want 40", c.NumLeaves())
	}
	checkInvariants(t, c)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		c := mustNew(t)
		_ = c.HandleUpdate(newModelUpdate(1, 1, mix1d(-5, 0, 5), 100))
		_ = c.HandleUpdate(newModelUpdate(2, 1, mix1d(-4.8, 0.3, 9), 50))
		var out []float64
		for _, g := range c.Groups() {
			out = append(out, g.Representative().Mean()[0], g.Weight())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different group structure")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestIndexedPlacementMatchesExhaustive(t *testing.T) {
	// Well above IndexMinGroups groups: the k-d accelerated coordinator
	// must build the same group structure as the exhaustive one.
	build := func(disable bool) *Coordinator {
		c, err := New(Config{
			Dim:            1,
			Merge:          gaussian.MergeOptions{MomentOnly: true},
			IndexMinGroups: 8,
			DisableIndex:   disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		// 60 well-separated cluster centers across 3 sites: 20 per site.
		for s := 1; s <= 3; s++ {
			var means []float64
			for k := 0; k < 20; k++ {
				means = append(means, float64(k)*25) // same centers per site
			}
			if err := c.HandleUpdate(newModelUpdate(s, 1, mix1d(means...), 100)); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	fast := build(false)
	slow := build(true)
	if len(fast.Groups()) != len(slow.Groups()) {
		t.Fatalf("group counts differ: indexed %d vs exhaustive %d", len(fast.Groups()), len(slow.Groups()))
	}
	if len(fast.Groups()) != 20 {
		t.Fatalf("groups = %d, want 20 (one per shared center)", len(fast.Groups()))
	}
	for i, g := range fast.Groups() {
		sg := slow.Groups()[i]
		if g.Size() != sg.Size() {
			t.Fatalf("group %d sizes differ: %d vs %d", i, g.Size(), sg.Size())
		}
		if g.Representative().Mean()[0] != sg.Representative().Mean()[0] {
			t.Fatalf("group %d means differ", i)
		}
	}
	checkInvariants(t, fast)
}

func TestIndexSurvivesDeletion(t *testing.T) {
	c, err := New(Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}, IndexMinGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	for m := 1; m <= 10; m++ {
		if err := c.HandleUpdate(newModelUpdate(1, m, mix1d(float64(m)*30), 100)); err != nil {
			t.Fatal(err)
		}
	}
	for m := 1; m <= 9; m++ {
		if err := c.HandleDeletion(1, m, 100); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c.Groups()); got != 1 {
		t.Fatalf("groups after deletions = %d", got)
	}
	// New placements must still work against the shrunken index.
	if err := c.HandleUpdate(newModelUpdate(2, 1, mix1d(300), 50)); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
}

func BenchmarkPlacementIndexedVsExhaustive(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c, err := New(Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}, DisableIndex: disable})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			// 500 well-separated models → 500 groups; each placement scans
			// (or indexes into) everything before it.
			for m := 1; m <= 500; m++ {
				if err := c.HandleUpdate(newModelUpdate(1, m, mix1d(float64(m)*30), 10)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("indexed", func(b *testing.B) { run(b, false) })
	b.Run("exhaustive", func(b *testing.B) { run(b, true) })
}

// checkInvariants asserts structural consistency of the tree.
func checkInvariants(t *testing.T, c *Coordinator) {
	t.Helper()
	leaves := 0
	for _, g := range c.Groups() {
		if g.Size() == 0 {
			t.Fatal("empty group survived compaction")
		}
		if g.Representative() == nil {
			t.Fatalf("group %d has no representative", g.ID())
		}
		var w float64
		for _, k := range g.MemberKeys() {
			if got := c.groupOf(k); got == nil || got.ID() != g.ID() {
				t.Fatalf("leaf %v location mismatch", k)
			}
		}
		leaves += g.Size()
		_ = w
	}
	if leaves != c.NumLeaves() {
		t.Fatalf("leaf count mismatch: %d vs %d", leaves, c.NumLeaves())
	}
}
