package coordinator

import (
	"fmt"
	"sort"

	"cludistream/internal/gaussian"
)

// MemberKey identifies one Gaussian component of one model of one remote
// site — a leaf of the coordinator's model tree.
type MemberKey struct {
	SiteID  int
	ModelID int
	Comp    int
}

func (k MemberKey) String() string {
	return fmt.Sprintf("site%d/model%d/comp%d", k.SiteID, k.ModelID, k.Comp)
}

// less orders keys deterministically (site, model, component).
func (k MemberKey) less(o MemberKey) bool {
	if k.SiteID != o.SiteID {
		return k.SiteID < o.SiteID
	}
	if k.ModelID != o.ModelID {
		return k.ModelID < o.ModelID
	}
	return k.Comp < o.Comp
}

// member is a leaf component together with its absolute weight (the site
// model's component weight times the model's record counter) and the
// M_remerge value recorded when it last joined its father — Algorithm 2's
// stability reference.
type member struct {
	key    MemberKey
	comp   *gaussian.Component
	weight float64
	// mremergeAtJoin is M_remerge(member, father) at join time. Algorithm 2
	// splits the member when M_split grows past 1/mremergeAtJoin.
	mremergeAtJoin float64
	// checked is the id of the last stability sweep that evaluated this
	// member (see Coordinator.stabilize); it bounds every sweep to one
	// check per member.
	checked uint64
}

// Group is a father node: a set of member components merged into one
// representative Gaussian.
type Group struct {
	id      int
	members []*member // kept sorted by key for determinism
	rep     *gaussian.Component
	weight  float64
}

// ID returns the group's stable identifier.
func (g *Group) ID() int { return g.id }

// Weight returns the total member weight.
func (g *Group) Weight() float64 { return g.weight }

// Size returns the number of member components.
func (g *Group) Size() int { return len(g.members) }

// Representative returns the merged Gaussian standing for the whole group.
func (g *Group) Representative() *gaussian.Component { return g.rep }

// MemberKeys returns the member keys in deterministic order.
func (g *Group) MemberKeys() []MemberKey {
	out := make([]MemberKey, len(g.members))
	for i, m := range g.members {
		out[i] = m.key
	}
	return out
}

func (g *Group) find(key MemberKey) int {
	for i, m := range g.members {
		if m.key == key {
			return i
		}
	}
	return -1
}

func (g *Group) insert(m *member) {
	// Binary-search insertion keeps the key order a full sort would produce
	// (keys are unique, so the two are identical) without sort.Slice's
	// reflection machinery on the coordinator's hottest mutation.
	i := sort.Search(len(g.members), func(i int) bool { return m.key.less(g.members[i].key) })
	g.members = append(g.members, nil)
	copy(g.members[i+1:], g.members[i:])
	g.members[i] = m
	g.weight += m.weight
}

func (g *Group) remove(i int) *member {
	m := g.members[i]
	g.members = append(g.members[:i], g.members[i+1:]...)
	g.weight -= m.weight
	return m
}

// recomputeRep rebuilds the representative by pairwise merging the members
// in deterministic (key) order. Pair merges use opts (simplex-fitted by
// default; MomentOnly for the cheap ablation).
func (g *Group) recomputeRep(opts gaussian.MergeOptions) {
	if len(g.members) == 0 {
		g.rep = nil
		g.weight = 0
		return
	}
	w := g.members[0].weight
	rep := g.members[0].comp
	for _, m := range g.members[1:] {
		w, rep = gaussian.FitMerge(w, rep, m.weight, m.comp, opts)
	}
	g.rep = rep
	g.weight = w
}
