package coordinator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

// TestInvariantsUnderRandomOpSequences applies random sequences of
// NewModel / WeightUpdate / Deletion operations and asserts the tree's
// structural invariants after every operation:
//
//   - every leaf's location resolves to a live group containing it;
//   - group weights equal the sum of their members' weights;
//   - total leaf weight equals Σ over live models of counter (weights are
//     conserved through merges, splits and re-merges);
//   - no empty group survives.
func TestInvariantsUnderRandomOpSequences(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{
			Dim:            1,
			Merge:          gaussian.MergeOptions{MomentOnly: true},
			IndexMinGroups: 4, // exercise the indexed path early
		})
		if err != nil {
			return false
		}
		nextModel := map[int]int{} // siteID → next model id
		var models []liveModel

		ops := opsRaw
		if len(ops) > 40 {
			ops = ops[:40]
		}
		for _, op := range ops {
			switch {
			case op%4 <= 1 || len(models) == 0: // new model (50%)
				siteID := int(op%3) + 1
				nextModel[siteID]++
				k := rng.Intn(3) + 1
				comps := make([]*gaussian.Component, k)
				ws := make([]float64, k)
				for j := range comps {
					comps[j] = gaussian.Spherical(linalg.Vector{rng.NormFloat64() * 40}, 0.5+rng.Float64())
					ws[j] = rng.Float64() + 0.2
				}
				count := rng.Intn(500) + 50
				u := site.Update{
					SiteID:  siteID,
					ModelID: nextModel[siteID],
					Kind:    site.NewModel,
					Mixture: gaussian.MustMixture(ws, comps),
					Count:   count,
				}
				if err := c.HandleUpdate(u); err != nil {
					t.Logf("new model: %v", err)
					return false
				}
				models = append(models, liveModel{siteID, nextModel[siteID], count})
			case op%4 == 2: // weight update
				i := int(op) % len(models)
				add := rng.Intn(300) + 1
				u := site.Update{SiteID: models[i].siteID, ModelID: models[i].modelID, Kind: site.WeightUpdate, Count: add}
				if err := c.HandleUpdate(u); err != nil {
					t.Logf("weight update: %v", err)
					return false
				}
				models[i].counter += add
			default: // deletion
				i := int(op) % len(models)
				del := rng.Intn(models[i].counter + 100) // may kill the model
				if del == 0 {
					del = 1
				}
				if err := c.HandleDeletion(models[i].siteID, models[i].modelID, del); err != nil {
					t.Logf("deletion: %v", err)
					return false
				}
				models[i].counter -= del
				if models[i].counter <= 0 {
					models = append(models[:i], models[i+1:]...)
				}
			}
			if !invariantsHold(t, c, models) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// liveModel tracks the expected state of one registered model.
type liveModel struct{ siteID, modelID, counter int }

func invariantsHold(t *testing.T, c *Coordinator, models []liveModel) bool {
	t.Helper()
	var leafWeight float64
	leaves := 0
	for _, g := range c.Groups() {
		if g.Size() == 0 {
			t.Log("empty group survived")
			return false
		}
		var gw float64
		for _, k := range g.MemberKeys() {
			got := c.groupOf(k)
			if got == nil || got.ID() != g.ID() {
				t.Logf("leaf %v misplaced", k)
				return false
			}
			i := g.find(k)
			gw += g.members[i].weight
		}
		if math.Abs(gw-g.Weight()) > 1e-6*(1+gw) {
			t.Logf("group %d weight %v != member sum %v", g.ID(), g.Weight(), gw)
			return false
		}
		leafWeight += gw
		leaves += g.Size()
	}
	if leaves != c.NumLeaves() {
		t.Logf("leaf count %d != location map %d", leaves, c.NumLeaves())
		return false
	}
	var want float64
	for _, m := range models {
		want += float64(m.counter)
	}
	if math.Abs(leafWeight-want) > 1e-6*(1+want) {
		t.Logf("total leaf weight %v != model mass %v", leafWeight, want)
		return false
	}
	return true
}
