package coordinator

import (
	"math/rand"
	"reflect"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
)

// applyRandomOps drives every coordinator in cs through one identical,
// seed-deterministic stream of NewModel / WeightUpdate / Deletion /
// ResetSite operations and returns how many operations were applied.
// idBase offsets the model ids so consecutive calls against the same
// coordinator never collide.
func applyRandomOps(t *testing.T, seed int64, idBase, n int, cs ...*Coordinator) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nextModel := map[int]int{}
	var models []liveModel
	for op := 0; op < n; op++ {
		roll := rng.Intn(10)
		switch {
		case roll <= 4 || len(models) == 0: // new model (50%)
			siteID := rng.Intn(4) + 1
			nextModel[siteID]++
			k := rng.Intn(3) + 1
			comps := make([]*gaussian.Component, k)
			ws := make([]float64, k)
			for j := range comps {
				comps[j] = gaussian.Spherical(linalg.Vector{rng.NormFloat64() * 30}, 0.5+rng.Float64())
				ws[j] = rng.Float64() + 0.2
			}
			count := rng.Intn(500) + 50
			u := site.Update{
				SiteID:  siteID,
				ModelID: idBase + nextModel[siteID],
				Kind:    site.NewModel,
				Mixture: gaussian.MustMixture(ws, comps),
				Count:   count,
			}
			for _, c := range cs {
				if err := c.HandleUpdate(u); err != nil {
					t.Fatalf("new model: %v", err)
				}
			}
			models = append(models, liveModel{siteID, idBase + nextModel[siteID], count})
		case roll <= 6: // weight update
			i := rng.Intn(len(models))
			add := rng.Intn(400) + 1
			u := site.Update{SiteID: models[i].siteID, ModelID: models[i].modelID, Kind: site.WeightUpdate, Count: add}
			for _, c := range cs {
				if err := c.HandleUpdate(u); err != nil {
					t.Fatalf("weight update: %v", err)
				}
			}
			models[i].counter += add
		case roll <= 8: // deletion (may drain the model)
			i := rng.Intn(len(models))
			del := rng.Intn(models[i].counter+100) + 1
			for _, c := range cs {
				if err := c.HandleDeletion(models[i].siteID, models[i].modelID, del); err != nil {
					t.Fatalf("deletion: %v", err)
				}
			}
			models[i].counter -= del
			if models[i].counter <= 0 {
				models = append(models[:i], models[i+1:]...)
			}
		default: // site reset
			siteID := rng.Intn(4) + 1
			for _, c := range cs {
				c.ResetSite(siteID)
			}
			// nextModel keeps counting up per site so ids never repeat.
			kept := models[:0]
			for _, m := range models {
				if m.siteID != siteID {
					kept = append(kept, m)
				}
			}
			models = kept
		}
	}
	return n
}

func remergeConfig(mode string) Config {
	return Config{
		Dim:                1,
		Merge:              gaussian.MergeOptions{MomentOnly: true},
		IndexMinGroups:     4,
		IncrementalRemerge: mode,
	}
}

// TestIncrementalRemergeMatchesExact is the dirty-tracking soundness proof
// in test form: the default dirty-group sweep ("on") must reach exactly the
// state the exhaustive per-update sweep ("exact") reaches — same tree, same
// split/remerge counts, same global mixture — over random op sequences,
// while provably skipping work (the clean-group telemetry counter is
// nonzero).
func TestIncrementalRemergeMatchesExact(t *testing.T) {
	var cleanSkipped int64
	for seed := int64(1); seed <= 6; seed++ {
		regOn := telemetry.NewRegistry()
		cfgOn := remergeConfig(RemergeOn)
		cfgOn.Telemetry = regOn
		on, err := New(cfgOn)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := New(remergeConfig(RemergeExact))
		if err != nil {
			t.Fatal(err)
		}
		applyRandomOps(t, seed, 0, 60, on, exact)
		if got, want := on.Snapshot(), exact.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: incremental snapshot diverged from exact\n on:    %+v\n exact: %+v", seed, got, want)
		}
		if got, want := on.ModelWeights(), exact.ModelWeights(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: model weights diverged: %v vs %v", seed, got, want)
		}
		cleanSkipped += regOn.Snapshot().Counters["coord.remerge_clean_groups"]
	}
	if cleanSkipped == 0 {
		t.Fatal("incremental sweep never skipped a clean group — parity test is not exercising the fast path")
	}
}

// TestRemergeExactSweepsEveryGroup pins the telemetry meaning of the two
// sweep counters: the exhaustive mode never skips, so its clean-group
// counter stays zero while the dirty counter advances.
func TestRemergeExactSweepsEveryGroup(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := remergeConfig(RemergeExact)
	cfg.Telemetry = reg
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyRandomOps(t, 11, 0, 40, c)
	counters := reg.Snapshot().Counters
	if counters["coord.remerge_dirty_groups"] == 0 {
		t.Fatal("exact mode swept no groups")
	}
	if got := counters["coord.remerge_clean_groups"]; got != 0 {
		t.Fatalf("exact mode skipped %d groups as clean; want 0", got)
	}
}

// TestRemergeAuditFindsNoDrift turns the full-sweep audit to its most
// aggressive setting (every update) and asserts it never catches the dirty
// tracking leaving an unstable member behind in a clean group.
func TestRemergeAuditFindsNoDrift(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := remergeConfig(RemergeOn)
	cfg.RemergeAuditEvery = 1
	cfg.Telemetry = reg
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(20); seed < 24; seed++ {
		applyRandomOps(t, seed, int(seed)*1000, 50, c)
	}
	if got := c.Stats().RemergeAuditViolations; got != 0 {
		t.Fatalf("audit found %d unstable members in clean groups; dirty tracking is unsound", got)
	}
	if got := reg.Snapshot().Counters["coord.remerge_audit_violations"]; got != 0 {
		t.Fatalf("audit telemetry counted %d violations; want 0", got)
	}
}

// TestRemergeModeValidation rejects unknown scheduling modes up front.
func TestRemergeModeValidation(t *testing.T) {
	if _, err := New(remergeConfig("eventually")); err == nil {
		t.Fatal("unknown IncrementalRemerge mode accepted")
	}
	for _, mode := range []string{"", RemergeOn, RemergeExact, RemergeOff} {
		if _, err := New(remergeConfig(mode)); err != nil {
			t.Fatalf("mode %q rejected: %v", mode, err)
		}
	}
}

// TestRemergeRestoreStaysInParity replays updates past a snapshot boundary:
// the restored coordinator (which conservatively marks every group dirty)
// must apply a future op stream to exactly the state the original reaches.
func TestRemergeRestoreStaysInParity(t *testing.T) {
	orig, err := New(remergeConfig(RemergeOn))
	if err != nil {
		t.Fatal(err)
	}
	applyRandomOps(t, 31, 0, 40, orig)
	restored, err := FromSnapshot(remergeConfig(RemergeOn), orig.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	applyRandomOps(t, 32, 1000, 30, orig, restored)
	if got, want := restored.Snapshot(), orig.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored coordinator diverged after snapshot\n restored: %+v\n original: %+v", got, want)
	}
}
