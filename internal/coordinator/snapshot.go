package coordinator

import (
	"fmt"
	"math"
	"sort"

	"cludistream/internal/gaussian"
)

// Snapshot is the coordinator's complete serializable state: the
// registered site models with their record counters, and the model tree's
// grouping — which leaf lives under which father, in which order the
// fathers were created. Everything else (group representatives, member
// weights, the placement index) is recomputed deterministically by
// FromSnapshot, so a snapshot round trip is bit-identical: the recovered
// coordinator answers every query — GlobalMixture, ModelWeights, Stats —
// exactly as the original would, and applies any future update stream to
// exactly the same state.
type Snapshot struct {
	// Dim is the data dimensionality the coordinator was built for.
	Dim int
	// NextGroupID is the id the next created group will take. Persisted —
	// not derived from the live groups — because placement ties are broken
	// by scan order and historical ids may be gone.
	NextGroupID int
	// Stats are the work counters at snapshot time.
	Stats Stats
	// Models lists every registered site model, sorted by (site, model).
	Models []SnapshotModel
	// Groups holds the father nodes in the coordinator's live slice order.
	// Order matters: placement scans groups in insertion order with a
	// strict "<" tie-break, so a reordered restore could place a future
	// leaf into a different (equally near) group than the original would.
	Groups []SnapshotGroup
}

// SnapshotModel is one registered site model.
type SnapshotModel struct {
	SiteID  int
	ModelID int
	Counter int
	Mixture *gaussian.Mixture
}

// SnapshotGroup is one father node: its stable id and its members in
// deterministic key order. Weights and the representative are derived.
type SnapshotGroup struct {
	ID      int
	Members []SnapshotMember
}

// SnapshotMember is one leaf: its key and the Algorithm-2 stability
// reference frozen at join time (MRemergeAtJoin is +Inf for a leaf that
// seeded its own group). The component itself and its absolute weight are
// recovered from the owning model's mixture and counter.
type SnapshotMember struct {
	Key            MemberKey
	MRemergeAtJoin float64
}

// Snapshot captures the coordinator's state. The mixtures are shared
// (immutable once registered), so the snapshot is cheap; it must not be
// taken concurrently with HandleUpdate.
func (c *Coordinator) Snapshot() *Snapshot {
	snap := &Snapshot{Dim: c.cfg.Dim, NextGroupID: c.nextID, Stats: c.stats}
	for _, byModel := range c.models {
		for _, sm := range byModel {
			snap.Models = append(snap.Models, SnapshotModel{
				SiteID:  sm.siteID,
				ModelID: sm.modelID,
				Counter: sm.counter,
				Mixture: sm.mix,
			})
		}
	}
	sort.Slice(snap.Models, func(a, b int) bool {
		if snap.Models[a].SiteID != snap.Models[b].SiteID {
			return snap.Models[a].SiteID < snap.Models[b].SiteID
		}
		return snap.Models[a].ModelID < snap.Models[b].ModelID
	})
	for _, g := range c.groups {
		sg := SnapshotGroup{ID: g.id}
		for _, m := range g.members {
			sg.Members = append(sg.Members, SnapshotMember{
				Key:            m.key,
				MRemergeAtJoin: m.mremergeAtJoin,
			})
		}
		snap.Groups = append(snap.Groups, sg)
	}
	return snap
}

// FromSnapshot rebuilds a coordinator from a snapshot. cfg must describe
// the same deployment the snapshot was taken from (same Dim, same merge
// options) or recovery cannot be bit-identical; a zero cfg.Dim adopts the
// snapshot's. The snapshot is validated structurally — unknown member
// models, duplicate placements, or leaves missing from the tree are
// reported rather than silently repaired, since they mean the snapshot
// was corrupted.
func FromSnapshot(cfg Config, snap *Snapshot) (*Coordinator, error) {
	if snap == nil {
		return nil, fmt.Errorf("coordinator: nil snapshot")
	}
	if cfg.Dim == 0 {
		cfg.Dim = snap.Dim
	}
	if cfg.Dim != snap.Dim {
		return nil, fmt.Errorf("coordinator: snapshot dim %d, config dim %d", snap.Dim, cfg.Dim)
	}
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for _, m := range snap.Models {
		if m.Mixture == nil {
			return nil, fmt.Errorf("coordinator: snapshot model %d/%d has no mixture", m.SiteID, m.ModelID)
		}
		if m.Mixture.Dim() != c.cfg.Dim {
			return nil, fmt.Errorf("coordinator: snapshot model %d/%d dim %d, want %d", m.SiteID, m.ModelID, m.Mixture.Dim(), c.cfg.Dim)
		}
		if m.Counter <= 0 {
			// A drained model is deleted from the live list (Section 7's
			// rule), so it can never appear in a snapshot.
			return nil, fmt.Errorf("coordinator: snapshot model %d/%d counter %d", m.SiteID, m.ModelID, m.Counter)
		}
		byModel := c.models[m.SiteID]
		if byModel == nil {
			byModel = make(map[int]*siteModel)
			c.models[m.SiteID] = byModel
		}
		if _, dup := byModel[m.ModelID]; dup {
			return nil, fmt.Errorf("coordinator: snapshot repeats model %d/%d", m.SiteID, m.ModelID)
		}
		byModel[m.ModelID] = &siteModel{siteID: m.SiteID, modelID: m.ModelID, mix: m.Mixture, counter: m.Counter}
	}
	for _, sg := range snap.Groups {
		if sg.ID < 1 || sg.ID >= snap.NextGroupID {
			return nil, fmt.Errorf("coordinator: snapshot group id %d outside [1, %d)", sg.ID, snap.NextGroupID)
		}
		if _, dup := c.byID[sg.ID]; dup {
			return nil, fmt.Errorf("coordinator: snapshot repeats group %d", sg.ID)
		}
		if len(sg.Members) == 0 {
			return nil, fmt.Errorf("coordinator: snapshot group %d is empty", sg.ID)
		}
		g := &Group{id: sg.ID}
		for _, smem := range sg.Members {
			sm := c.lookup(smem.Key.SiteID, smem.Key.ModelID)
			if sm == nil {
				return nil, fmt.Errorf("coordinator: snapshot member %v references an unknown model", smem.Key)
			}
			if smem.Key.Comp < 0 || smem.Key.Comp >= sm.mix.K() {
				return nil, fmt.Errorf("coordinator: snapshot member %v component out of range (K=%d)", smem.Key, sm.mix.K())
			}
			if _, dup := c.location[smem.Key]; dup {
				return nil, fmt.Errorf("coordinator: snapshot places %v twice", smem.Key)
			}
			if math.IsNaN(smem.MRemergeAtJoin) || smem.MRemergeAtJoin <= 0 {
				return nil, fmt.Errorf("coordinator: snapshot member %v MRemergeAtJoin %v", smem.Key, smem.MRemergeAtJoin)
			}
			g.insert(&member{
				key:  smem.Key,
				comp: sm.mix.Component(smem.Key.Comp),
				// The live weight is maintained as exactly this product
				// (see shiftWeight), so re-deriving it is bit-identical.
				weight:         sm.mix.Weight(smem.Key.Comp) * float64(sm.counter),
				mremergeAtJoin: smem.MRemergeAtJoin,
			})
			c.location[smem.Key] = g.id
		}
		// recomputeRep runs after every live mutation (refreshGroup), so
		// the live rep and weight always equal this recomputation.
		g.recomputeRep(c.cfg.Merge)
		c.groups = append(c.groups, g)
		c.byID[g.id] = g
		if c.index != nil && g.rep != nil {
			c.index.Insert(g.id, g.rep.Mean())
		}
	}
	// Every component of every registered model must sit in exactly one
	// group (placement is total; removeLeaf always precedes model removal).
	for _, byModel := range c.models {
		for _, sm := range byModel {
			for j := 0; j < sm.mix.K(); j++ {
				key := MemberKey{SiteID: sm.siteID, ModelID: sm.modelID, Comp: j}
				if _, ok := c.location[key]; !ok {
					return nil, fmt.Errorf("coordinator: snapshot leaf %v is in no group", key)
				}
			}
		}
	}
	if snap.NextGroupID >= 1 {
		c.nextID = snap.NextGroupID
	}
	// Snapshots do not persist the dirty-group set, so recovery marks every
	// group dirty: a provably-safe superset — re-checking a group that was
	// clean in the original is a no-op (its members were verified stable
	// against a representative the snapshot reproduced bit-identically),
	// while any group the original still had pending gets its sweep.
	for _, g := range c.groups {
		c.dirty[g.id] = struct{}{}
	}
	c.stats = snap.Stats
	c.tele.setSizes(len(c.groups), len(c.location))
	return c, nil
}
