package coordinator

import (
	"math"
	"reflect"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/site"
)

// populated builds a coordinator with a non-trivial model tree: three
// sites, cross-site shared clusters, a weight shift, and enough mass
// drift to exercise split/remerge before the snapshot is taken.
func populated(t *testing.T) *Coordinator {
	t.Helper()
	c := mustNew(t)
	if err := c.HandleUpdate(newModelUpdate(1, 1, mix1d(-5, 5), 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.HandleUpdate(newModelUpdate(2, 1, mix1d(-5.1, 5.1), 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.HandleUpdate(newModelUpdate(3, 1, mix1d(40, 60), 400)); err != nil {
		t.Fatal(err)
	}
	if err := c.HandleUpdate(site.Update{SiteID: 1, ModelID: 1, Kind: site.WeightUpdate, Count: 300}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSnapshotRoundTripIsBitIdentical: FromSnapshot(Snapshot()) rebuilds
// a coordinator whose own snapshot — and every query — is deep-equal to
// the original's, floats included. This is the property crash recovery
// leans on: the recovered process must be indistinguishable from the one
// that died.
func TestSnapshotRoundTripIsBitIdentical(t *testing.T) {
	c := populated(t)
	snap := c.Snapshot()
	r, err := FromSnapshot(Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, r.Snapshot()) {
		t.Fatal("restored coordinator snapshots differently")
	}
	if !reflect.DeepEqual(c.ModelWeights(), r.ModelWeights()) {
		t.Fatal("ModelWeights diverged across a snapshot round trip")
	}
	if c.Stats() != r.Stats() {
		t.Fatalf("Stats diverged: %+v vs %+v", c.Stats(), r.Stats())
	}
	// Component caches (Cholesky factors etc.) are computed lazily, so
	// the mixtures are compared value-by-value, not with DeepEqual.
	gc, gr := c.GlobalMixture(), r.GlobalMixture()
	if gc.K() != gr.K() {
		t.Fatalf("GlobalMixture K: %d vs %d", gc.K(), gr.K())
	}
	for j := 0; j < gc.K(); j++ {
		if gc.Weight(j) != gr.Weight(j) {
			t.Fatalf("component %d weight: %v vs %v", j, gc.Weight(j), gr.Weight(j))
		}
		cc, rc := gc.Component(j), gr.Component(j)
		if !reflect.DeepEqual(cc.Mean(), rc.Mean()) {
			t.Fatalf("component %d mean diverged", j)
		}
		if !reflect.DeepEqual(cc.Cov(), rc.Cov()) {
			t.Fatalf("component %d covariance diverged", j)
		}
	}
}

// TestSnapshotRoundTripBehavesIdentically: the original and the restored
// coordinator must apply the same future update stream to the same state
// — placement tie-breaks, split thresholds and weight shifts all behave
// as if the snapshot never happened.
func TestSnapshotRoundTripBehavesIdentically(t *testing.T) {
	c := populated(t)
	r, err := FromSnapshot(Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}}, c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	future := []site.Update{
		newModelUpdate(1, 2, mix1d(-5.05, 5.05), 150),
		{SiteID: 3, ModelID: 1, Kind: site.WeightUpdate, Count: 5000},
		newModelUpdate(4, 1, mix1d(200, 220), 50),
		{SiteID: 2, ModelID: 1, Kind: site.WeightUpdate, Count: 1},
	}
	for i, u := range future {
		errC, errR := c.HandleUpdate(u), r.HandleUpdate(u)
		if (errC == nil) != (errR == nil) {
			t.Fatalf("update %d: original err %v, restored err %v", i, errC, errR)
		}
	}
	if err := c.HandleDeletion(1, 1, 400); err != nil {
		t.Fatal(err)
	}
	if err := r.HandleDeletion(1, 1, 400); err != nil {
		t.Fatal(err)
	}
	c.ResetSite(2)
	r.ResetSite(2)
	if !reflect.DeepEqual(c.Snapshot(), r.Snapshot()) {
		t.Fatal("states diverged after identical post-snapshot updates")
	}
}

// TestSnapshotEmptyCoordinator: a coordinator that has seen nothing
// snapshots and restores cleanly.
func TestSnapshotEmptyCoordinator(t *testing.T) {
	c := mustNew(t)
	r, err := FromSnapshot(Config{Dim: 1}, c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLeaves() != 0 || r.NumModels() != 0 {
		t.Fatalf("empty restore has %d leaves, %d models", r.NumLeaves(), r.NumModels())
	}
}

// TestFromSnapshotAdoptsDim: a zero cfg.Dim takes the snapshot's, so
// callers recovering from disk need not re-derive the deployment shape.
func TestFromSnapshotAdoptsDim(t *testing.T) {
	c := populated(t)
	r, err := FromSnapshot(Config{Merge: gaussian.MergeOptions{MomentOnly: true}}, c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Snapshot(), r.Snapshot()) {
		t.Fatal("dim adoption changed the restored state")
	}
}

// TestFromSnapshotRejectsCorruption: structural damage — the kind a bug
// in serialization or a hand-edited checkpoint would produce — is
// reported, never silently repaired.
func TestFromSnapshotRejectsCorruption(t *testing.T) {
	cfg := Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}}
	cases := []struct {
		name   string
		mutate func(s *Snapshot)
	}{
		{"dim mismatch", func(s *Snapshot) { s.Dim = 2 }},
		{"nil mixture", func(s *Snapshot) { s.Models[0].Mixture = nil }},
		{"drained counter", func(s *Snapshot) { s.Models[0].Counter = 0 }},
		{"duplicate model", func(s *Snapshot) { s.Models = append(s.Models, s.Models[0]) }},
		{"group id out of range", func(s *Snapshot) { s.Groups[0].ID = s.NextGroupID }},
		{"duplicate group id", func(s *Snapshot) { s.Groups[1].ID = s.Groups[0].ID }},
		{"empty group", func(s *Snapshot) { s.Groups[0].Members = nil }},
		{"unknown member model", func(s *Snapshot) { s.Groups[0].Members[0].Key.ModelID = 99 }},
		{"component out of range", func(s *Snapshot) { s.Groups[0].Members[0].Key.Comp = 7 }},
		{"doubly placed leaf", func(s *Snapshot) {
			s.Groups[1].Members = append(s.Groups[1].Members, s.Groups[0].Members[0])
		}},
		{"negative mremerge", func(s *Snapshot) { s.Groups[0].Members[0].MRemergeAtJoin = -1 }},
		{"nan mremerge", func(s *Snapshot) { s.Groups[0].Members[0].MRemergeAtJoin = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := populated(t).Snapshot()
			if len(snap.Groups) < 2 {
				t.Fatalf("fixture needs ≥2 groups, has %d", len(snap.Groups))
			}
			tc.mutate(snap)
			if _, err := FromSnapshot(cfg, snap); err == nil {
				t.Fatal("corrupted snapshot accepted")
			}
		})
	}
	if _, err := FromSnapshot(cfg, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}
