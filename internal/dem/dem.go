// Package dem implements the distributed EM algorithm of Nowak ("Distributed
// EM algorithms for density estimation and clustering in sensor networks",
// IEEE Trans. Signal Processing, 2003 — reference [20] of the paper), the
// related-work method CluDistream positions itself against.
//
// DEM assumes every node observes data from the *same* K-component mixture.
// Nodes are arranged in a fixed order (a ring); the model parameters travel
// around the ring, and each node performs an incremental EM step: it
// recomputes its local sufficient statistics under the current parameters,
// swaps them into the global statistics, and re-estimates the parameters
// before passing them on. Each hop transmits the full parameter set, which
// is exactly the communication behaviour CluDistream's event-driven
// stability avoids ("this communication is necessary due to the assumption
// of the same distributions on all computing nodes").
package dem

import (
	"fmt"

	"cludistream/internal/em"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/transport"
)

// Config parameterizes a DEM run.
type Config struct {
	// K is the number of mixture components shared by every node.
	K int
	// Cycles is the number of full ring traversals (default 5).
	Cycles int
	// EM supplies tolerance / covariance options for the parameter
	// re-estimation steps and the seed for initialization.
	EM em.Config
}

func (c Config) withDefaults() Config {
	if c.Cycles <= 0 {
		c.Cycles = 5
	}
	c.EM.K = c.K
	return c
}

// Result reports a DEM run.
type Result struct {
	Mixture *gaussian.Mixture
	// AvgLogLikelihood is Definition 1 over the union of all node data.
	AvgLogLikelihood float64
	// Hops is the number of parameter transmissions (nodes × cycles).
	Hops int
	// BytesTransmitted is the wire size of all parameter hops, using the
	// same encoding as CluDistream's messages for a fair comparison.
	BytesTransmitted int
}

// Fit runs DEM over the per-node datasets (node order = slice order).
func Fit(datasets [][]linalg.Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(datasets) == 0 {
		return nil, fmt.Errorf("dem: no nodes")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("dem: K = %d", cfg.K)
	}
	var dim int
	var total int
	for i, ds := range datasets {
		if len(ds) == 0 {
			return nil, fmt.Errorf("dem: node %d has no data", i)
		}
		if dim == 0 {
			dim = len(ds[0])
		}
		for _, x := range ds {
			if len(x) != dim {
				return nil, fmt.Errorf("dem: node %d has mixed dimensions", i)
			}
		}
		total += len(ds)
	}
	if total < cfg.K {
		return nil, em.ErrNotEnoughData
	}

	// Initialize from node 0's local EM (Nowak: any reasonable start).
	init, err := em.Fit(datasets[0], cfg.EM)
	if err != nil {
		return nil, err
	}
	mix := init.Mixture

	// Global and per-node sufficient statistics.
	r := len(datasets)
	nodeStats := make([][]*em.SuffStats, r)
	global := make([]*em.SuffStats, cfg.K)
	for j := range global {
		global[j] = em.NewSuffStats(dim)
	}
	for i := range nodeStats {
		nodeStats[i] = make([]*em.SuffStats, cfg.K)
		for j := range nodeStats[i] {
			nodeStats[i][j] = em.NewSuffStats(dim)
		}
	}

	hopBytes := transport.Message{Kind: transport.MsgNewModel, Mixture: mix}.WireSize()
	res := &Result{}
	postM := linalg.NewMatrix(0, 0)
	scratch := gaussian.NewBatchScratch()

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		for i, ds := range datasets {
			// Local E-step under the travelling parameters, batched over
			// the node's whole data set.
			fresh := make([]*em.SuffStats, cfg.K)
			for j := range fresh {
				fresh[j] = em.NewSuffStats(dim)
			}
			mix.PosteriorBatch(ds, postM, nil, scratch)
			for p, x := range ds {
				row := postM.Row(p)
				for j := 0; j < cfg.K; j++ {
					if row[j] > 0 {
						fresh[j].Add(x, row[j])
					}
				}
			}
			// Swap this node's contribution into the global statistics.
			for j := 0; j < cfg.K; j++ {
				global[j].W += fresh[j].W - nodeStats[i][j].W
				global[j].Sum.AddInPlace(fresh[j].Sum)
				global[j].Sum.AXPYInPlace(-1, nodeStats[i][j].Sum)
				global[j].Scatter.AddSym(1, fresh[j].Scatter)
				global[j].Scatter.AddSym(-1, nodeStats[i][j].Scatter)
				nodeStats[i][j] = fresh[j]
			}
			// Incremental M-step: parameters from the global statistics.
			next, err := mixtureFromGlobal(global, cfg, dim)
			if err == nil {
				mix = next
			}
			// Pass the parameters to the next node.
			res.Hops++
			res.BytesTransmitted += hopBytes
		}
	}

	res.Mixture = mix
	var sum float64
	var buf []float64
	for _, ds := range datasets {
		if cap(buf) < len(ds) {
			buf = make([]float64, len(ds))
		}
		scores := buf[:len(ds)]
		mix.ScoreBatch(ds, scores, scratch)
		for _, v := range scores {
			sum += v
		}
	}
	res.AvgLogLikelihood = sum / float64(total)
	return res, nil
}

// mixtureFromGlobal is the M-step over the accumulated global statistics.
func mixtureFromGlobal(global []*em.SuffStats, cfg Config, dim int) (*gaussian.Mixture, error) {
	minVar := cfg.EM.MinVar
	if minVar <= 0 {
		minVar = 1e-6
	}
	var totalW float64
	for _, s := range global {
		totalW += s.W
	}
	if totalW <= 0 {
		return nil, fmt.Errorf("dem: empty global statistics")
	}
	weights := make([]float64, cfg.K)
	comps := make([]*gaussian.Component, cfg.K)
	for j, s := range global {
		if s.W < 1e-9 {
			return nil, fmt.Errorf("dem: component %d died", j)
		}
		c, err := gaussian.NewComponent(s.Mean(), s.Cov(minVar), minVar)
		if err != nil {
			return nil, err
		}
		comps[j] = c
		weights[j] = s.W / totalW
	}
	return gaussian.NewMixture(weights, comps)
}
