package dem

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cludistream/internal/em"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// sharedMixtureData builds r node datasets all drawn from one mixture —
// DEM's operating assumption.
func sharedMixtureData(rng *rand.Rand, r, perNode int) ([][]linalg.Vector, *gaussian.Mixture) {
	mix := gaussian.MustMixture(
		[]float64{0.5, 0.5},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{-6}, 1),
			gaussian.Spherical(linalg.Vector{6}, 1),
		})
	out := make([][]linalg.Vector, r)
	for i := range out {
		out[i] = mix.SampleN(rng, perNode)
	}
	return out, mix
}

func TestDEMConvergesOnSharedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	datasets, _ := sharedMixtureData(rng, 5, 400)
	res, err := Fit(datasets, Config{K: 2, Cycles: 5, EM: em.Config{Seed: 1, MaxIter: 50, Tol: 1e-4}})
	if err != nil {
		t.Fatal(err)
	}
	means := []float64{res.Mixture.Component(0).Mean()[0], res.Mixture.Component(1).Mean()[0]}
	sort.Float64s(means)
	if math.Abs(means[0]+6) > 0.3 || math.Abs(means[1]-6) > 0.3 {
		t.Fatalf("DEM means = %v, want ±6", means)
	}
	if res.Hops != 25 {
		t.Fatalf("hops = %d, want 25", res.Hops)
	}
	if res.BytesTransmitted != 25*res.BytesTransmitted/res.Hops {
		t.Fatal("bytes not per-hop uniform")
	}
}

func TestDEMBeatsSingleNodeEstimate(t *testing.T) {
	// With tiny per-node samples, pooling via the ring must beat the
	// node-0-only initial model on global likelihood.
	rng := rand.New(rand.NewSource(22))
	datasets, _ := sharedMixtureData(rng, 8, 40)
	cfg := Config{K: 2, Cycles: 4, EM: em.Config{Seed: 3, MaxIter: 50, Tol: 1e-4}}
	res, err := Fit(datasets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	init, err := em.Fit(datasets[0], func() em.Config { c := cfg.EM; c.K = 2; return c }())
	if err != nil {
		t.Fatal(err)
	}
	var all []linalg.Vector
	for _, ds := range datasets {
		all = append(all, ds...)
	}
	if res.AvgLogLikelihood < init.Mixture.AvgLogLikelihood(all) {
		t.Fatalf("DEM %v worse than single-node init %v", res.AvgLogLikelihood, init.Mixture.AvgLogLikelihood(all))
	}
}

func TestDEMLikelihoodImprovesWithCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	datasets, _ := sharedMixtureData(rng, 6, 100)
	ll := func(cycles int) float64 {
		res, err := Fit(datasets, Config{K: 2, Cycles: cycles, EM: em.Config{Seed: 5, MaxIter: 50, Tol: 1e-4}})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgLogLikelihood
	}
	one, five := ll(1), ll(5)
	if five < one-1e-6 {
		t.Fatalf("more cycles made DEM worse: %v -> %v", one, five)
	}
}

func TestDEMValidation(t *testing.T) {
	if _, err := Fit(nil, Config{K: 2}); err == nil {
		t.Fatal("no nodes accepted")
	}
	if _, err := Fit([][]linalg.Vector{{}}, Config{K: 2}); err == nil {
		t.Fatal("empty node accepted")
	}
	if _, err := Fit([][]linalg.Vector{{{1}}}, Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Fit([][]linalg.Vector{{{1}, {2, 3}}}, Config{K: 1}); err == nil {
		t.Fatal("ragged node data accepted")
	}
	if _, err := Fit([][]linalg.Vector{{{1}}}, Config{K: 5}); err == nil {
		t.Fatal("fewer records than K accepted")
	}
}

func TestDEMCommunicationScalesWithCyclesAndNodes(t *testing.T) {
	// DEM's cost model: every node hop ships the full parameter set, every
	// cycle, forever — the contrast to CluDistream's event-driven silence.
	rng := rand.New(rand.NewSource(24))
	datasets, _ := sharedMixtureData(rng, 4, 100)
	res2, err := Fit(datasets, Config{K: 2, Cycles: 2, EM: em.Config{Seed: 1, MaxIter: 30, Tol: 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	res6, err := Fit(datasets, Config{K: 2, Cycles: 6, EM: em.Config{Seed: 1, MaxIter: 30, Tol: 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	if res6.BytesTransmitted != 3*res2.BytesTransmitted {
		t.Fatalf("bytes: %d at 2 cycles vs %d at 6 — not linear", res2.BytesTransmitted, res6.BytesTransmitted)
	}
}
