package dst

import (
	"encoding/json"
	"io"

	"cludistream/internal/persist"
	"cludistream/internal/telemetry"
)

// Artifact serialization tags (persist's versioned JSON envelope).
// Version 2 added the scenario's coordinator-durability knobs
// (checkpoint_every, wal_fsync); version-1 files load fine — the knobs
// default to zero, matching pre-durability behaviour.
const (
	artifactFormat = "cludistream-dst-artifact"
	scenarioFormat = "cludistream-dst-scenario"
	formatVersion  = 2
)

// Artifact is a self-contained failure report: everything needed to
// understand and replay a violation without the process that found it —
// the seed, the full scenario, the violation itself, the run's
// fingerprints, and the tail of the telemetry decision journal leading up
// to the failure. Journal entries carry wall-clock timestamps, so replay
// equality is defined on Core(), not on the journal.
type Artifact struct {
	Seed             int64             `json:"seed"`
	Scenario         Scenario          `json:"scenario"`
	Violation        Violation         `json:"violation"`
	Updates          int               `json:"updates"`
	SimTime          float64           `json:"sim_time"`
	Fingerprint      uint64            `json:"fingerprint"`
	CleanFingerprint uint64            `json:"clean_fingerprint"`
	Journal          []telemetry.Event `json:"journal,omitempty"`
	// Traces is the tracer snapshot at the violation: cumulative span
	// counts plus the slowest ingest→visible exemplar traces. Like the
	// journal it is debugging context, not part of the replay-stable Core.
	Traces *telemetry.TracerSnapshot `json:"traces,omitempty"`
}

// Core is the deterministic portion of an artifact: two replays of the
// same seed must produce equal Cores bit for bit.
type Core struct {
	Seed             int64     `json:"seed"`
	Violation        Violation `json:"violation"`
	Updates          int       `json:"updates"`
	SimTime          float64   `json:"sim_time"`
	Fingerprint      uint64    `json:"fingerprint"`
	CleanFingerprint uint64    `json:"clean_fingerprint"`
}

// Core projects the artifact onto its replay-stable fields.
func (a *Artifact) Core() Core {
	return Core{
		Seed:             a.Seed,
		Violation:        a.Violation,
		Updates:          a.Updates,
		SimTime:          a.SimTime,
		Fingerprint:      a.Fingerprint,
		CleanFingerprint: a.CleanFingerprint,
	}
}

// ToArtifact packages a violating result (nil for green runs).
func (r *Result) ToArtifact() *Artifact {
	if r.Violation == nil {
		return nil
	}
	return &Artifact{
		Seed:             r.Scenario.Seed,
		Scenario:         r.Scenario,
		Violation:        *r.Violation,
		Updates:          r.Updates,
		SimTime:          r.SimTime,
		Fingerprint:      r.Fingerprint,
		CleanFingerprint: r.CleanFingerprint,
		Journal:          r.Journal,
		Traces:           r.Traces,
	}
}

// WriteArtifact serializes an artifact into persist's envelope.
func WriteArtifact(w io.Writer, a *Artifact) error {
	return persist.SaveJSONEnvelope(w, artifactFormat, formatVersion, a)
}

// ReadArtifact loads an artifact written by WriteArtifact; foreign or
// corrupted inputs return persist.ErrBadFormat-wrapped errors.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	payload, _, err := persist.LoadJSONEnvelope(r, artifactFormat, formatVersion)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(payload, &a); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteScenario serializes a scenario alone (the shrink output).
func WriteScenario(w io.Writer, sc Scenario) error {
	return persist.SaveJSONEnvelope(w, scenarioFormat, formatVersion, sc)
}

// ReadScenario loads a scenario written by WriteScenario and validates it.
func ReadScenario(r io.Reader) (Scenario, error) {
	payload, _, err := persist.LoadJSONEnvelope(r, scenarioFormat, formatVersion)
	if err != nil {
		return Scenario{}, err
	}
	var sc Scenario
	if err := json.Unmarshal(payload, &sc); err != nil {
		return Scenario{}, err
	}
	return sc, sc.Validate()
}
