package dst

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/persist"
)

// TestSeededScenariosGreen is the harness's bread and butter: every seed
// generates a different deployment and fault schedule, and the whole
// invariant suite must hold on all of them. `make dst` sweeps 100+ seeds
// through cmd/dst; this test keeps a smaller always-on sample in go test.
func TestSeededScenariosGreen(t *testing.T) {
	n := int64(12)
	if testing.Short() {
		n = 5
	}
	for seed := int64(1); seed <= n; seed++ {
		sc := Generate(seed, true)
		res, err := Run(sc, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d: %v", seed, res.Violation)
		}
		if res.Updates == 0 {
			t.Fatalf("seed %d: no coordinator updates applied — scenario exercised nothing", seed)
		}
		if res.Fingerprint != res.CleanFingerprint {
			t.Fatalf("seed %d: fingerprints differ without a violation", seed)
		}
	}
}

// dedupeBugScenario is a deterministic scenario that duplicates every
// delivery (DupProb 1) — the stress the injected dedupe regression must
// fail under no matter how other fault draws perturb the RNG stream.
func dedupeBugScenario() Scenario {
	return Scenario{
		Seed:        424242,
		NumSites:    1,
		Dim:         1,
		K:           2,
		ChunkSize:   100,
		DupProb:     1,
		LinkLatency: 0.05,
		ArrivalRate: 1000,
		Sites: []SiteScript{{
			StreamSeed: 9001,
			Regimes:    []Regime{{Mean: 0, Chunks: 2}, {Mean: 200, Chunks: 2}, {Mean: 0, Chunks: 2}},
		}},
	}
}

// TestInjectedDedupeBugCaught proves the invariant suite has teeth: with
// the coordinator's sequence-number dedupe deliberately broken, the
// exactly-once invariant must flag the first double-applied update.
func TestInjectedDedupeBugCaught(t *testing.T) {
	sc := dedupeBugScenario()
	res, err := Run(sc, Options{InjectDedupeFault: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("broken dedupe not detected: invariant suite has no teeth")
	}
	if res.Violation.Invariant != "exactly-once" {
		t.Fatalf("violation = %v, want the exactly-once invariant", res.Violation)
	}
	if !strings.Contains(res.Violation.Detail, "twice") {
		t.Errorf("violation detail %q does not name the duplicate application", res.Violation.Detail)
	}
	if len(res.Journal) == 0 {
		t.Error("failure result carries no journal slice")
	}

	// The same scenario with the dedupe intact must be green.
	clean, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Violation != nil {
		t.Fatalf("scenario fails even without the injected bug: %v", clean.Violation)
	}
}

// TestReplayBitIdentical pins the determinism contract: replaying the
// failing seed reproduces the same violation at the same update count and
// virtual time, twice in a row, with byte-identical artifact cores.
func TestReplayBitIdentical(t *testing.T) {
	sc := dedupeBugScenario()
	var cores [][]byte
	for i := 0; i < 2; i++ {
		res, err := Run(sc, Options{InjectDedupeFault: true})
		if err != nil {
			t.Fatal(err)
		}
		art := res.ToArtifact()
		if art == nil {
			t.Fatalf("replay %d: violation not reproduced", i)
		}
		core, err := json.Marshal(art.Core())
		if err != nil {
			t.Fatal(err)
		}
		cores = append(cores, core)
	}
	if !bytes.Equal(cores[0], cores[1]) {
		t.Fatalf("replays diverged:\n%s\n%s", cores[0], cores[1])
	}
}

// TestShrinkMinimizes checks the greedy minimizer strips fault-schedule
// elements that are irrelevant to the violation while preserving it.
func TestShrinkMinimizes(t *testing.T) {
	if testing.Short() {
		t.Skip("shrink runs many scenarios")
	}
	sc := dedupeBugScenario()
	// Pad the scenario with faults the dedupe bug does not need.
	sc.DropProb = 0.1
	sc.Outages = []OutageSpec{{Start: 0.1, End: 0.4}, {Start: 0.9, End: 1.2, CoordRestart: true}}

	min, runs := Shrink(sc, Options{InjectDedupeFault: true})
	if runs < 2 {
		t.Fatalf("shrink ran only %d scenarios", runs)
	}
	res, err := Run(min, Options{InjectDedupeFault: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("shrunk scenario no longer fails")
	}
	if min.DropProb != 0 || len(min.Outages) != 0 {
		t.Errorf("irrelevant faults survived the shrink: DropProb=%v Outages=%v", min.DropProb, min.Outages)
	}
	if min.DupProb == 0 {
		t.Error("shrink removed the duplicate delivery the bug needs")
	}
}

// TestScenarioJSONRoundTrip: a generated scenario survives the persist
// envelope bit-identically — the property that makes artifacts
// self-contained repro cases.
func TestScenarioJSONRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sc := Generate(seed, seed%2 == 0)
		var buf bytes.Buffer
		if err := WriteScenario(&buf, sc); err != nil {
			t.Fatal(err)
		}
		got, err := ReadScenario(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got, sc) {
			t.Fatalf("seed %d: round-trip changed the scenario:\n got %+v\nwant %+v", seed, got, sc)
		}
	}
}

// TestArtifactRoundTrip: artifacts survive their envelope, and corrupted
// or foreign inputs surface persist.ErrBadFormat instead of garbage.
func TestArtifactRoundTrip(t *testing.T) {
	sc := dedupeBugScenario()
	res, err := Run(sc, Options{InjectDedupeFault: true})
	if err != nil {
		t.Fatal(err)
	}
	art := res.ToArtifact()
	if art == nil {
		t.Fatal("no artifact")
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Core() != art.Core() {
		t.Fatalf("artifact core changed in round-trip:\n got %+v\nwant %+v", got.Core(), art.Core())
	}

	for name, data := range map[string][]byte{
		"not json":       []byte("clearly not json"),
		"wrong format":   []byte(`{"format":"something-else","version":1,"payload":{}}`),
		"future version": []byte(`{"format":"cludistream-dst-artifact","version":99,"payload":{}}`),
		"no payload":     []byte(`{"format":"cludistream-dst-artifact","version":1}`),
	} {
		if _, err := ReadArtifact(bytes.NewReader(data)); !errors.Is(err, persist.ErrBadFormat) {
			t.Errorf("%s: error %v, want ErrBadFormat", name, err)
		}
	}
}

// TestFingerprintCanonical: the fingerprint must ignore component order
// and nothing else.
func TestFingerprintCanonical(t *testing.T) {
	c1 := gaussian.Spherical(linalg.Vector{0}, 1)
	c2 := gaussian.Spherical(linalg.Vector{5}, 2)
	a := gaussian.MustMixture([]float64{0.25, 0.75}, []*gaussian.Component{c1, c2})
	b := gaussian.MustMixture([]float64{0.75, 0.25}, []*gaussian.Component{c2, c1})
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprint depends on component order")
	}
	c := gaussian.MustMixture([]float64{0.26, 0.74}, []*gaussian.Component{c1, c2})
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("fingerprint ignores a weight change")
	}
	if Fingerprint(nil) != 0 {
		t.Error("nil mixture must fingerprint to 0")
	}
}
