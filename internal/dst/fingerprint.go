package dst

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"

	"cludistream/internal/gaussian"
)

// Fingerprint canonicalizes a mixture to a 64-bit hash: every component is
// serialized as its exact float64 bits (weight, mean, packed covariance),
// the serializations are sorted, and the concatenation is FNV-1a hashed.
// Sorting makes the fingerprint independent of component order, so two
// coordinators that converged to the same model under different delivery
// schedules fingerprint identically — and any numeric drift, however
// small, does not ("recovered" means bit-identical, not merely close).
func Fingerprint(m *gaussian.Mixture) uint64 {
	if m == nil {
		return 0
	}
	return fingerprintModel(m.K(), m.Weight, m.Component)
}

// fingerprintModel is the accessor-based core of Fingerprint, shared with
// the query tier's snapshot fingerprinting (a query.Snapshot exposes the
// same (weight, component) accessors without materializing a Mixture —
// and rebuilding one would renormalize the weights, perturbing last-ulp
// bits and defeating the bit-identity the invariant pins).
func fingerprintModel(k int, weight func(int) float64, comp func(int) *gaussian.Component) uint64 {
	recs := make([][]byte, 0, k)
	for j := 0; j < k; j++ {
		c := comp(j)
		b := appendBits(nil, weight(j))
		for _, v := range c.Mean() {
			b = appendBits(b, v)
		}
		cov := c.Cov()
		for i := 0; i < cov.Order(); i++ {
			for k := 0; k <= i; k++ {
				b = appendBits(b, cov.At(i, k))
			}
		}
		recs = append(recs, b)
	}
	sort.Slice(recs, func(a, b int) bool { return bytes.Compare(recs[a], recs[b]) < 0 })
	h := fnv.New64a()
	for _, r := range recs {
		h.Write(r)
	}
	return h.Sum64()
}

func appendBits(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
