package dst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

// coordOp is one coordinator-bound message: a site update or a
// negative-weight deletion.
type coordOp struct {
	del bool
	u   site.Update
}

// randomSiteOps builds one site's FIFO message sequence: models announced
// with NewModel, reinforced with WeightUpdates, and partially expired with
// deletions that never drive a counter to zero (a drained model leaves the
// coordinator; resurrecting it is the facade's job, not this test's).
// Model means come from a well-separated palette so cross-site grouping
// has no borderline merge decisions — the property under test is order
// independence, not threshold sensitivity.
func randomSiteOps(rng *rand.Rand, siteID int) []coordOp {
	palette := []float64{0, 200, -200, 400}
	var ops []coordOp
	nModels := 1 + rng.Intn(3)
	for m := 1; m <= nModels; m++ {
		mean := palette[(m-1)%len(palette)]
		mix := gaussian.MustMixture(
			[]float64{0.5, 0.5},
			[]*gaussian.Component{
				gaussian.Spherical(linalg.Vector{mean - 1 - rng.Float64()}, 0.5+rng.Float64()),
				gaussian.Spherical(linalg.Vector{mean + 1 + rng.Float64()}, 0.5+rng.Float64()),
			})
		ops = append(ops, coordOp{u: site.Update{
			SiteID: siteID, ModelID: m, Kind: site.NewModel, Mixture: mix, Count: 100,
		}})
		total := 100
		for extra := rng.Intn(3); extra > 0; extra-- {
			ops = append(ops, coordOp{u: site.Update{
				SiteID: siteID, ModelID: m, Kind: site.WeightUpdate, Count: 100,
			}})
			total += 100
		}
		if rng.Intn(2) == 0 {
			ops = append(ops, coordOp{del: true, u: site.Update{
				SiteID: siteID, ModelID: m, Count: 1 + rng.Intn(total/2),
			}})
		}
	}
	return ops
}

// interleaveOps merges the per-site queues into one delivery order,
// preserving each site's FIFO order (the only ordering the transport
// guarantees) while the cross-site schedule follows rng.
func interleaveOps(queues [][]coordOp, rng *rand.Rand) []coordOp {
	pos := make([]int, len(queues))
	var out []coordOp
	for {
		var live []int
		for i := range queues {
			if pos[i] < len(queues[i]) {
				live = append(live, i)
			}
		}
		if len(live) == 0 {
			return out
		}
		i := live[rng.Intn(len(live))]
		out = append(out, queues[i][pos[i]])
		pos[i]++
	}
}

// applyOps feeds one delivery order to a fresh coordinator and returns
// its observable end state: the canonical global-mixture fingerprint and
// the sorted per-model counters.
func applyOps(t *testing.T, ops []coordOp) (uint64, []coordinator.ModelWeight) {
	t.Helper()
	c, err := coordinator.New(coordinator.Config{Dim: 1, Merge: mergeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ops {
		if o.del {
			err = c.HandleDeletion(o.u.SiteID, o.u.ModelID, o.u.Count)
		} else {
			err = c.HandleUpdate(o.u)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return Fingerprint(c.GlobalMixture()), c.ModelWeights()
}

// TestQuickCoordinatorOrderIndependence: the coordinator's final groups —
// observed through the canonical global-mixture fingerprint and the
// per-model counters — must not depend on how updates from different
// sites interleave on the wire. Per-site FIFO order is preserved (the
// transport guarantees it); everything across sites is fair game.
func TestQuickCoordinatorOrderIndependence(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSites := 2 + rng.Intn(3)
		queues := make([][]coordOp, nSites)
		for i := range queues {
			queues[i] = randomSiteOps(rng, i+1)
		}

		// Baseline: round-robin delivery.
		base := interleaveOps(queues, rand.New(rand.NewSource(0)))
		baseFP, baseWeights := applyOps(t, base)
		if baseFP == 0 {
			t.Logf("seed %d: empty baseline mixture", seed)
			return false
		}
		for p := 0; p < 4; p++ {
			perm := interleaveOps(queues, rand.New(rand.NewSource(seed*13+int64(p)+1)))
			fp, weights := applyOps(t, perm)
			if fp != baseFP {
				t.Logf("seed %d perm %d: fingerprint %016x, baseline %016x", seed, p, fp, baseFP)
				return false
			}
			if diff := weightsDiff(weights, baseWeights); diff != "" {
				t.Logf("seed %d perm %d: %s", seed, p, diff)
				return false
			}
		}
		return true
	}
	n := 25
	if testing.Short() {
		n = 8
	}
	if err := quick.Check(property, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}
