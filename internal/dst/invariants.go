package dst

import (
	"fmt"

	"cludistream"
	"cludistream/internal/coordinator"
	"cludistream/internal/linalg"
	"cludistream/internal/query"
	"cludistream/internal/telemetry"
	"cludistream/internal/transport"
)

// epochCounts tallies the updates applied from one site incarnation —
// the observables the Theorem-2/3 invariants compare against the site's
// own decision counters.
type epochCounts struct {
	newModels     int
	weightUpdates int
	deletions     int
	bytes         int
}

// shadowMark mirrors the coordinator's per-site exactly-once watermark.
type shadowMark struct {
	epoch  uint32
	maxSeq uint64
}

// checker is the invariant suite. It observes every applied coordinator
// update through the facade's OnApply hook, maintains an independent
// exactly-once shadow (its own dedupe watermarks plus a reference
// coordinator fed the same updates), and checks the full suite after each
// one. The first violation is retained; later checks are skipped so the
// artifact pins the earliest deterministic failure point.
type checker struct {
	sc  Scenario
	sys *cludistream.System
	reg *telemetry.Registry
	// tracer backs the trace-conservation invariant (DST always enables
	// tracing before building the checker).
	tracer *telemetry.Tracer

	ref   *coordinator.Coordinator
	marks map[int32]*shadowMark
	// perEpoch is keyed by site ID and reset on epoch advance, so its
	// counts always describe the site's *current* incarnation.
	perEpoch map[int32]*epochCounts

	// curEpoch is each site's live incarnation epoch (1-based), advanced by
	// the runner on every crash. Theorem-2/3 checks compare delivered
	// counts against the live site's decision counters, so they only run
	// on updates from the live epoch — in-flight messages from a dead
	// incarnation may still legitimately arrive right after a crash.
	curEpoch []uint32

	// Query-tier state (snapshot-consistency invariant): the real RCU
	// publisher driven on the virtual clock, a scratch for read-op parity
	// checks, and the pinned snapshots re-verified on every update.
	pub      *query.Publisher
	qscratch *query.Scratch
	held     []heldSnap

	updates   int
	violation *Violation

	// Wire sizes of the v2 encodings, fixed by the scenario's K and Dim.
	newModelWire int
	smallWire    int
}

// newChecker builds the suite; the runner assigns sys before feeding.
func newChecker(sc Scenario, reg *telemetry.Registry) (*checker, error) {
	ref, err := coordinator.New(coordinator.Config{Dim: sc.Dim, Merge: mergeOpts()})
	if err != nil {
		return nil, err
	}
	c := &checker{
		sc:       sc,
		reg:      reg,
		tracer:   reg.Tracer(),
		ref:      ref,
		marks:    make(map[int32]*shadowMark),
		perEpoch: make(map[int32]*epochCounts),
		curEpoch: make([]uint32, sc.NumSites),
		// v2 framing: header (17) + marker/epoch/seq (13); a NewModel adds
		// K, d and K·(1 + d + packed(d)) float64s.
		smallWire: 17 + 13,
	}
	for i := range c.curEpoch {
		c.curEpoch[i] = 1
	}
	if c.tracer != nil {
		// With tracing on, every message carries the 16-byte trace suffix,
		// so the Theorem-3 wire bound prices it in.
		c.smallWire += transport.TraceSuffixSize
	}
	c.newModelWire = c.smallWire + 8 + sc.K*8*(1+sc.Dim+linalg.PackedLen(sc.Dim))
	return c, nil
}

// fail records the first violation, pinned to the current update count
// and virtual clock.
func (c *checker) fail(invariant, detail string) {
	if c.violation != nil {
		return
	}
	c.violation = &Violation{
		Invariant: invariant,
		Detail:    detail,
		Update:    c.updates,
		SimTime:   c.sys.Now(),
	}
}

// beforeCrash is called by the runner just before a site incarnation is
// killed, advancing the checker's view of the live epoch.
func (c *checker) beforeCrash(siteIdx int) { c.curEpoch[siteIdx]++ }

// onApply is the per-update invariant suite, invoked by the system under
// test immediately after it applies a delivered message.
func (c *checker) onApply(msg transport.Message) {
	if c.violation != nil {
		return
	}
	c.updates++

	// Invariant: exactly-once application. The shadow replays the
	// coordinator's dedupe protocol from scratch; any applied message the
	// shadow would have dropped is a duplicate or a stale-epoch leak.
	if msg.Seq == 0 {
		c.fail("exactly-once", fmt.Sprintf("site %d applied an unversioned (v1) message in fault-tolerant mode", msg.SiteID))
		return
	}
	w := c.marks[msg.SiteID]
	if w == nil {
		w = &shadowMark{}
		c.marks[msg.SiteID] = w
	}
	switch {
	case msg.Epoch < w.epoch:
		c.fail("exactly-once", fmt.Sprintf("site %d applied a stale-epoch message: epoch %d < watermark epoch %d", msg.SiteID, msg.Epoch, w.epoch))
		return
	case msg.Epoch > w.epoch:
		if w.epoch != 0 {
			c.ref.ResetSite(int(msg.SiteID))
		}
		w.epoch, w.maxSeq = msg.Epoch, 0
		c.perEpoch[msg.SiteID] = &epochCounts{}
	}
	if msg.Seq <= w.maxSeq {
		c.fail("exactly-once", fmt.Sprintf("site %d epoch %d applied seq %d twice (watermark %d): duplicate delivery was not deduped", msg.SiteID, msg.Epoch, msg.Seq, w.maxSeq))
		return
	}
	w.maxSeq = msg.Seq

	// Feed the reference coordinator the same update and compare the full
	// per-model weight tables: a dedupe bug that slips a duplicate through
	// any other path shows up as a counter mismatch here.
	var err error
	switch msg.Kind {
	case transport.MsgDeletion:
		err = c.ref.HandleDeletion(int(msg.SiteID), int(msg.ModelID), int(msg.Count))
	default:
		err = c.ref.HandleUpdate(msg.ToSiteUpdate())
	}
	if err != nil {
		c.fail("exactly-once", fmt.Sprintf("reference coordinator rejected replayed update: %v", err))
		return
	}
	if diff := weightsDiff(c.sys.Coordinator().ModelWeights(), c.ref.ModelWeights()); diff != "" {
		c.fail("exactly-once", "coordinator diverged from exactly-once reference: "+diff)
		return
	}

	pc := c.perEpoch[msg.SiteID]
	if pc == nil {
		pc = &epochCounts{}
		c.perEpoch[msg.SiteID] = pc
	}
	switch msg.Kind {
	case transport.MsgNewModel:
		pc.newModels++
	case transport.MsgWeightUpdate:
		pc.weightUpdates++
	case transport.MsgDeletion:
		pc.deletions++
	}
	pc.bytes += msg.WireSize()

	c.checkTrace(msg)
	c.checkSite(int(msg.SiteID), false)
	c.checkConservation()
	c.checkQueryTier()
}

// checkTrace is the per-update half of the trace-conservation invariant:
// with tracing on, an applied message must carry trace context, its trace
// must still be live, the span chain must be contiguous (exactly one root
// "chunk" span; every other parent resolves within the trace), and an
// "apply" span must exist by the time OnApply fires.
func (c *checker) checkTrace(msg transport.Message) {
	if c.violation != nil || c.tracer == nil {
		return
	}
	if msg.TraceID == 0 {
		c.fail("trace-conservation", fmt.Sprintf("site %d applied a message with no trace context while tracing is enabled", msg.SiteID))
		return
	}
	tr, ok := c.tracer.TraceByID(msg.TraceID)
	if !ok {
		c.fail("trace-conservation", fmt.Sprintf("site %d: applied message's trace %d is missing from the active table", msg.SiteID, msg.TraceID))
		return
	}
	ids := make(map[uint64]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		ids[sp.ID] = true
	}
	roots, applies := 0, 0
	for _, sp := range tr.Spans {
		switch {
		case sp.Parent == 0:
			roots++
			if sp.Name != "chunk" {
				c.fail("trace-conservation", fmt.Sprintf("trace %d: root span is %q, want \"chunk\"", tr.ID, sp.Name))
				return
			}
		case !ids[sp.Parent]:
			c.fail("trace-conservation", fmt.Sprintf("trace %d: span %q (id %d) has parent %d outside the trace — broken causal chain", tr.ID, sp.Name, sp.ID, sp.Parent))
			return
		}
		if sp.Name == "apply" {
			applies++
		}
	}
	if roots != 1 {
		c.fail("trace-conservation", fmt.Sprintf("trace %d: %d root spans, want exactly 1", tr.ID, roots))
		return
	}
	if applies == 0 {
		c.fail("trace-conservation", fmt.Sprintf("trace %d: message applied but no apply span was recorded", tr.ID))
	}
}

// checkSite verifies the originating site's paper structures: the event
// list (Algorithm 1's ⟨model ID, start, end⟩ table), Theorem-2 fit-test
// soundness, the Theorem-3 communication and memory bounds, and the
// site's own decision-counter conservation. final additionally requires
// the delivered counts to have caught up exactly (everything emitted in
// the current epoch applied once).
func (c *checker) checkSite(siteID int, final bool) {
	if c.violation != nil {
		return
	}
	st := c.sys.Site(siteID - 1)
	stats := st.Stats()

	// Conservation: every processed chunk took exactly one of the three
	// Algorithm-1 exits.
	if stats.Chunks != stats.Fits+stats.Refits+stats.Reactivated {
		c.fail("conservation", fmt.Sprintf("site %d: %d chunks != %d fits + %d refits + %d reactivated", siteID, stats.Chunks, stats.Fits, stats.Refits, stats.Reactivated))
		return
	}

	// Invariant: event-list consistency. Closed spans are contiguous from
	// chunk 1, non-overlapping, and every chunk up to ChunksSeen is
	// governed — by a closed span or by the open span of the current model.
	prevEnd := 0
	models := make(map[int]bool)
	for _, m := range st.Models() {
		models[m.ID] = true
	}
	for _, e := range st.Events().All() {
		if e.StartChunk != prevEnd+1 {
			c.fail("event-list", fmt.Sprintf("site %d: span %v does not start at chunk %d: gap or overlap", siteID, e, prevEnd+1))
			return
		}
		if e.EndChunk < e.StartChunk {
			c.fail("event-list", fmt.Sprintf("site %d: inverted span %v", siteID, e))
			return
		}
		if !models[e.ModelID] {
			c.fail("event-list", fmt.Sprintf("site %d: span %v references a model missing from the model list", siteID, e))
			return
		}
		prevEnd = e.EndChunk
	}
	if prevEnd > st.ChunksSeen() {
		c.fail("event-list", fmt.Sprintf("site %d: closed spans cover %d chunks but only %d chunks were seen", siteID, prevEnd, st.ChunksSeen()))
		return
	}
	if st.ChunksSeen() > 0 && st.Current() == nil {
		c.fail("event-list", fmt.Sprintf("site %d: %d chunks seen but no current model governs chunks %d..%d", siteID, st.ChunksSeen(), prevEnd+1, st.ChunksSeen()))
		return
	}

	// Invariant: Theorem-2 fit-test soundness. A chunk that fits transmits
	// nothing (landmark mode), so the coordinator can never apply more
	// NewModel messages than the site ran refits, nor more weight updates
	// than reactivations (plus fits, in sliding mode where fitting chunks
	// emit weight updates by design). Delivered counts describe whichever
	// epoch the coordinator last applied; they are only comparable to the
	// live site's counters once that is the live incarnation's epoch.
	if w := c.marks[int32(siteID)]; w == nil || w.epoch != c.curEpoch[siteID-1] {
		if final {
			c.fail("delivery", fmt.Sprintf("site %d: live incarnation (epoch %d) never reached the coordinator after drain", siteID, c.curEpoch[siteID-1]))
		}
		return
	}
	pc := c.perEpoch[int32(siteID)]
	if pc == nil {
		pc = &epochCounts{}
	}
	if c.sc.Sliding > 0 {
		// Sliding mode: every chunk carries exactly one update (fits emit
		// weight updates by design, and a weight update whose model the
		// coordinator deleted is upgraded to a NewModel synopsis), so the
		// sound bound is on the total.
		sent := stats.Refits + stats.Reactivated + stats.Fits
		if got := pc.newModels + pc.weightUpdates; got > sent {
			c.fail("fit-soundness", fmt.Sprintf("site %d: %d updates applied but only %d chunks warranted one", siteID, got, sent))
			return
		}
		if final {
			if got := pc.newModels + pc.weightUpdates; got != sent {
				c.fail("fit-soundness", fmt.Sprintf("site %d after drain: %d updates applied != %d chunks processed — an update was lost or double-applied", siteID, got, sent))
				return
			}
		}
	} else {
		if pc.newModels > stats.Refits {
			c.fail("fit-soundness", fmt.Sprintf("site %d: %d NewModel messages applied but only %d refits ran — a fitting chunk transmitted a model", siteID, pc.newModels, stats.Refits))
			return
		}
		if pc.weightUpdates > stats.Reactivated {
			c.fail("fit-soundness", fmt.Sprintf("site %d: %d weight updates applied but only %d chunks reactivated a model", siteID, pc.weightUpdates, stats.Reactivated))
			return
		}
		if final {
			if pc.newModels != stats.Refits {
				c.fail("fit-soundness", fmt.Sprintf("site %d after drain: %d NewModel messages applied != %d refits — an update was lost or double-applied", siteID, pc.newModels, stats.Refits))
				return
			}
			if pc.weightUpdates != stats.Reactivated {
				c.fail("fit-soundness", fmt.Sprintf("site %d after drain: %d weight updates applied != %d reactivations", siteID, pc.weightUpdates, stats.Reactivated))
				return
			}
		}
	}

	// Invariant: Theorem-3 communication-cost bound. Applied traffic from
	// the current incarnation is bounded by its transmitting decisions
	// priced at the exact wire sizes.
	if bound := pc.newModels*c.newModelWire + (pc.weightUpdates+pc.deletions)*c.smallWire; pc.bytes > bound {
		c.fail("comm-bound", fmt.Sprintf("site %d: %d bytes applied > %d-byte bound (%d new models, %d weight updates, %d deletions)", siteID, pc.bytes, bound, pc.newModels, pc.weightUpdates, pc.deletions))
		return
	}

	// Invariant: Theorem-3 memory bound — B·K·(d²+d+1) floats for the
	// model list plus M·d for the chunk buffer.
	d := c.sc.Dim
	if limit := 8 * len(st.Models()) * c.sc.K * (d*d + d + 1); st.ModelListBytes() > limit {
		c.fail("memory-bound", fmt.Sprintf("site %d: model list %d bytes > Theorem-3 bound %d", siteID, st.ModelListBytes(), limit))
		return
	}
	if st.BufferBytes() != 8*c.sys.ChunkSize()*d {
		c.fail("memory-bound", fmt.Sprintf("site %d: buffer %d bytes != 8·M·d = %d", siteID, st.BufferBytes(), 8*c.sys.ChunkSize()*d))
		return
	}
}

// checkConservation verifies the delivery-layer conservation laws: every
// sent byte is either goodput or dropped, retransmissions never exceed
// total traffic, and the telemetry counters agree with the simulator's
// own accounting.
func (c *checker) checkConservation() {
	if c.violation != nil {
		return
	}
	d := c.sys.DeliveryStats()
	total := c.sys.TotalBytes()
	if total != d.GoodputBytes+d.DroppedBytes {
		c.fail("conservation", fmt.Sprintf("bytes sent %d != goodput %d + dropped %d", total, d.GoodputBytes, d.DroppedBytes))
		return
	}
	if d.RetransmitBytes > total {
		c.fail("conservation", fmt.Sprintf("retransmit bytes %d > total bytes %d", d.RetransmitBytes, total))
		return
	}
	for name, want := range map[string]int{
		"sim.bytes_sent":       total,
		"sim.goodput_bytes":    d.GoodputBytes,
		"sim.retransmit_bytes": d.RetransmitBytes,
		"sim.dropped_bytes":    d.DroppedBytes,
		"sim.dup_delivered":    d.DupDelivered,
		"sim.courier_retries":  d.Retries,
		"coord.dedupe_dropped": d.Duplicates,
		"coord.epoch_resets":   d.SiteResets,
	} {
		if got := c.reg.Counter(name).Value(); got != int64(want) {
			c.fail("conservation", fmt.Sprintf("telemetry counter %s = %d disagrees with simulator accounting %d", name, got, want))
			return
		}
	}

	// Trace-conservation, aggregate half: the cumulative span counts must
	// reconcile with the delivery-layer accounting. Every link transmission
	// records exactly one wire-send span; every delivered payload records
	// exactly one dedupe span (admitted → applied, dropped → Duplicates);
	// and every live apply records exactly one apply span. WAL replay after
	// a coordinator restart re-applies updates through the same handlers
	// without OnApply, so apply spans may only exceed the applied count
	// when the run actually restarted the coordinator.
	if c.tracer != nil {
		if got, want := c.tracer.SpanCount("wire-send"), int64(c.sys.TotalMessages()); got != want {
			c.fail("trace-conservation", fmt.Sprintf("%d wire-send spans recorded but the links transmitted %d messages", got, want))
			return
		}
		if got, want := c.tracer.SpanCount("dedupe"), int64(c.updates+d.Duplicates); got != want {
			c.fail("trace-conservation", fmt.Sprintf("%d dedupe spans != %d applied + %d dedupe-dropped deliveries", got, c.updates, d.Duplicates))
			return
		}
		applySpans := c.tracer.SpanCount("apply")
		if applySpans < int64(c.updates) {
			c.fail("trace-conservation", fmt.Sprintf("%d apply spans < %d applied updates", applySpans, c.updates))
			return
		}
		if c.sys.Recovery().Restarts == 0 && applySpans != int64(c.updates) {
			c.fail("trace-conservation", fmt.Sprintf("%d apply spans != %d applied updates with no coordinator restart to explain the surplus", applySpans, c.updates))
			return
		}
	}
}

// finalChecks runs after Drain on a violation-free run: no update may
// still be pending, the per-site delivered counts must equal the sites'
// decision counters exactly, and the coordinator must have converged to
// the fault-free reference — same canonical fingerprint, same per-model
// weights — regardless of the delivery schedule.
func (c *checker) finalChecks(cleanFP uint64, cleanWeights []coordinator.ModelWeight) {
	if c.violation != nil {
		return
	}
	if d := c.sys.DeliveryStats(); d.Pending != 0 {
		c.fail("delivery", fmt.Sprintf("%d payloads still pending in couriers after drain", d.Pending))
		return
	}
	for i := 0; i < c.sys.NumSites(); i++ {
		c.checkSite(i+1, true)
	}
	c.checkConservation()
	// Snapshots pinned mid-run must still serve their publish-time state
	// after the drain's final merges and compactions.
	c.recheckHeldSnapshots()
	if c.violation != nil {
		return
	}
	if fp := Fingerprint(c.sys.GlobalMixture()); fp != cleanFP {
		c.fail("schedule-independence", fmt.Sprintf("final global mixture fingerprint %016x != fault-free replay %016x", fp, cleanFP))
		return
	}
	if diff := weightsDiff(c.sys.Coordinator().ModelWeights(), cleanWeights); diff != "" {
		c.fail("schedule-independence", "final model weights diverged from fault-free replay: "+diff)
	}
}

// weightsDiff compares two sorted ModelWeight tables, returning "" when
// identical and a one-line description of the first difference otherwise.
func weightsDiff(got, want []coordinator.ModelWeight) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d models registered, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("model %d/%d: got site %d model %d counter %d, want site %d model %d counter %d",
				i, len(got), got[i].SiteID, got[i].ModelID, got[i].Counter, want[i].SiteID, want[i].ModelID, want[i].Counter)
		}
	}
	return ""
}
