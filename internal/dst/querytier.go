package dst

import (
	"fmt"

	"cludistream/internal/query"
)

// The snapshot-vs-ingest race invariant: every snapshot the query tier
// serves must equal the coordinator's state at some applied-update
// prefix — exactly, bit for bit — and must stay that way for as long as
// any reader holds it, no matter how much ingest, remerge or compaction
// runs afterwards. DST drives the real Publisher on the virtual clock
// after every applied update, fingerprints the coordinator's mixture at
// that prefix, pins a sample of published snapshots, and re-verifies
// every pin on every later update and at final drain.

// heldSnap is a pinned published snapshot plus the prefix fingerprint it
// must keep matching.
type heldSnap struct {
	sn *query.Snapshot
	fp uint64
	// update is the applied-update prefix the snapshot was published at
	// (for the violation message).
	update int
}

// pinEvery is the sampling interval for pinned snapshots; maxPins caps
// the re-verification work per update.
const (
	pinEvery = 8
	maxPins  = 32
)

// snapshotFingerprint hashes a served snapshot in the same canonical form
// as Fingerprint, so snapshot-vs-prefix equality is a hash comparison.
func snapshotFingerprint(sn *query.Snapshot) uint64 {
	return fingerprintModel(sn.K(), sn.Weight, sn.Component)
}

// checkQueryTier runs after every applied update: publish the post-apply
// mixture through the real RCU publisher, verify the served snapshot is
// bit-identical to the coordinator state at this exact prefix, verify
// the read ops reproduce the mixture's own scoring, and re-verify every
// pinned snapshot still matches the prefix it was published at.
func (c *checker) checkQueryTier() {
	if c.violation != nil {
		return
	}
	if c.pub == nil {
		// Lazily bound: the publisher reads the virtual clock, which only
		// exists once the runner has assigned c.sys.
		c.pub = query.NewPublisher(query.Options{Clock: c.sys.Now})
		c.qscratch = query.NewScratch()
	}
	coord := c.sys.Coordinator()
	mix := coord.GlobalMixture()
	if mix == nil {
		return
	}
	prefixFP := Fingerprint(mix)
	sn, err := c.pub.Publish(mix, coord.MixtureVersion(), coord.TotalWeight())
	if err != nil {
		c.fail("snapshot-consistency", fmt.Sprintf("publish at update %d failed: %v", c.updates, err))
		return
	}
	if c.pub.Current() != sn {
		c.fail("snapshot-consistency", "Current() does not serve the snapshot that was just published")
		return
	}
	if fp := snapshotFingerprint(sn); fp != prefixFP {
		c.fail("snapshot-consistency", fmt.Sprintf("published snapshot fingerprint %016x != coordinator prefix fingerprint %016x at update %d", fp, prefixFP, c.updates))
		return
	}
	// Read-op parity at the publish instant: the snapshot's zero-alloc
	// scoring must reproduce the mixture's own, and the kd-index must
	// resolve a component's mean to that component at distance zero.
	x := mix.Component(0).Mean()
	if got, want := sn.LogDensity(x, c.qscratch), mix.LogPDF(x); got != want {
		c.fail("snapshot-consistency", fmt.Sprintf("snapshot LogDensity %v != mixture LogPDF %v at update %d", got, want, c.updates))
		return
	}
	if res := sn.Classify(x, c.qscratch); res.LogDensity != mix.LogPDF(x) {
		c.fail("snapshot-consistency", fmt.Sprintf("snapshot Classify density %v != mixture LogPDF at update %d", res.LogDensity, c.updates))
		return
	}
	if nbrs := sn.TopK(x, 1, c.qscratch); len(nbrs) != 1 || nbrs[0].DistSq != 0 {
		c.fail("snapshot-consistency", fmt.Sprintf("kd-index did not resolve component 0's mean to distance 0 at update %d (got %v)", c.updates, nbrs))
		return
	}
	if c.updates%pinEvery == 0 && len(c.held) < maxPins {
		c.held = append(c.held, heldSnap{sn: sn, fp: prefixFP, update: c.updates})
	}
	c.recheckHeldSnapshots()
}

// recheckHeldSnapshots re-fingerprints every pinned snapshot: a pin that
// stops matching its publish-time prefix means later ingest mutated
// served state — the deep-copy isolation is broken.
func (c *checker) recheckHeldSnapshots() {
	if c.violation != nil {
		return
	}
	for _, h := range c.held {
		if fp := snapshotFingerprint(h.sn); fp != h.fp {
			c.fail("snapshot-consistency", fmt.Sprintf("snapshot published at update %d changed after later ingest: fingerprint %016x, was %016x at publish", h.update, fp, h.fp))
			return
		}
	}
}
