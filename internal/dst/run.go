package dst

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"

	"cludistream"
	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/netsim"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
)

// Options tunes a simulation run.
type Options struct {
	// InjectDedupeFault deliberately breaks the coordinator's
	// sequence-number dedupe (see cludistream.System.InjectDedupeFault).
	// Used by the harness's own tests to prove the exactly-once invariant
	// catches a real regression.
	InjectDedupeFault bool
	// JournalTail is how many telemetry journal events a failure artifact
	// embeds (default 200).
	JournalTail int
}

// Violation is one invariant failure, pinned to the deterministic point
// in the run where it was detected.
type Violation struct {
	// Invariant names the violated property: "exactly-once", "event-list",
	// "fit-soundness", "comm-bound", "memory-bound", "conservation",
	// "schedule-independence", "recovery" (a coordinator restart recovered
	// to a state that differs from the persisted pre-crash state),
	// "pruned-parity" (the default sublinear hot paths — k-d-pruned J_fit
	// scoring, shared chunk statistics, incremental remerge — produced a
	// different global state than the exact reference paths),
	// "trace-conservation" (an applied update's causal trace is missing,
	// has a broken span chain, or the cumulative span counts disagree with
	// the delivery-layer accounting), "snapshot-consistency" (a query-tier
	// snapshot published through the RCU publisher stopped matching the
	// coordinator state at its applied-update prefix, its read ops
	// diverged from the mixture's own scoring, or a pinned snapshot's
	// bytes changed under later ingest), or "delivery".
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
	// Update is how many applied coordinator updates had been observed
	// when the violation was raised (0 = before any).
	Update int `json:"update"`
	// SimTime is the virtual clock at detection.
	SimTime float64 `json:"sim_time"`
}

func (v Violation) Error() string {
	return fmt.Sprintf("dst: %s invariant violated at update %d (t=%.3fs): %s", v.Invariant, v.Update, v.SimTime, v.Detail)
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario  Scenario   `json:"scenario"`
	Violation *Violation `json:"violation,omitempty"`
	// Updates is the number of coordinator updates applied (post-dedupe).
	Updates int `json:"updates"`
	// Fingerprint and CleanFingerprint are the canonical global-mixture
	// hashes of the faulty run and the fault-free reference replay; equal
	// on a green run.
	Fingerprint      uint64                    `json:"fingerprint"`
	CleanFingerprint uint64                    `json:"clean_fingerprint"`
	SimTime          float64                   `json:"sim_time"`
	Delivery         cludistream.DeliveryStats `json:"delivery"`
	// Recovery counts the coordinator crash-recovery work of the run
	// (all zeros unless the scenario restarts the coordinator).
	Recovery cludistream.RecoveryStats `json:"recovery"`
	// Journal is the tail of the telemetry decision journal (populated on
	// violation; the artifact's debugging context).
	Journal []telemetry.Event `json:"journal,omitempty"`
	// Traces is the tracer snapshot — cumulative span-name counts plus the
	// slowest ingest→visible exemplar traces on the virtual clock
	// (populated on violation; the artifact's freshness-debugging context).
	Traces *telemetry.TracerSnapshot `json:"traces,omitempty"`
}

// feedOp is one step of a site's feed plan: deliver a record, or crash.
type feedOp struct {
	x     linalg.Vector // nil means crash
	crash bool
}

// Run executes one scenario: a fault-free reference replay first, then
// the faulted run with the invariant suite attached to every applied
// update. It returns an error only when the scenario itself cannot run;
// invariant failures come back in Result.Violation.
func Run(sc Scenario, opts Options) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if opts.JournalTail <= 0 {
		opts.JournalTail = 200
	}
	streams := make([][]linalg.Vector, len(sc.Sites))
	for i, script := range sc.Sites {
		streams[i] = script.stream(sc.ChunkSize, sc.Dim)
	}

	cleanFP, cleanWeights, err := cleanReplay(sc, streams)
	if err != nil {
		return nil, fmt.Errorf("dst: fault-free reference replay: %w", err)
	}
	if v := prunedParityCheck(sc, streams, cleanFP, cleanWeights); v != nil {
		return &Result{Scenario: sc, Violation: v, CleanFingerprint: cleanFP}, nil
	}

	reg := telemetry.NewRegistry()
	// Tracing is always on under DST: the trace-conservation invariant
	// reads the span ledger, and the facade rebinds the tracer clock to
	// the virtual clock so every span timestamp is replayable. MaxActive
	// is sized so no trace is evicted mid-run — eviction would orphan the
	// per-trace chain checks.
	reg.EnableTracing(telemetry.TraceOptions{MaxActive: 1 << 20})
	chk, err := newChecker(sc, reg)
	if err != nil {
		return nil, err
	}
	cfg := systemConfig(sc, reg)
	if sc.hasCoordRestart() {
		// Coordinator restarts go through the real checkpoint + WAL path:
		// the durable store lives in a per-run scratch directory and the
		// byte-level self-check turns any recovery divergence into a
		// "recovery" violation.
		dir, err := os.MkdirTemp("", "dst-coord-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Durability = &cludistream.DurabilityConfig{
			Dir:             dir,
			CheckpointEvery: sc.CheckpointEvery,
			Fsync:           sc.WALFsync,
			SelfCheck:       true,
		}
	}
	cfg.OnApply = chk.onApply
	sys, err := cludistream.New(cfg)
	if err != nil {
		return nil, err
	}
	chk.sys = sys // OnApply cannot fire before the first Feed
	if opts.InjectDedupeFault {
		sys.InjectDedupeFault()
	}
	// Schedule the coordinator crashes: the process dies with the outage
	// and recovers from disk when the window lifts.
	for _, o := range sc.Outages {
		if o.CoordRestart {
			sys.RestartCoordinatorAt(o.End)
		}
	}

	// Feed plans: the stream up to the crash point, the crash, then the
	// restarted incarnation's full replay. A seeded interleave picks which
	// site advances next, so every run explores a different — but
	// replayable — delivery schedule.
	plans := make([][]feedOp, len(sc.Sites))
	for i, script := range sc.Sites {
		var plan []feedOp
		if script.CrashAfter > 0 {
			for _, x := range streams[i][:script.CrashAfter] {
				plan = append(plan, feedOp{x: x})
			}
			plan = append(plan, feedOp{crash: true})
		}
		for _, x := range streams[i] {
			plan = append(plan, feedOp{x: x})
		}
		plans[i] = plan
	}
	interleave := rand.New(rand.NewSource(sc.Seed*1000003 + 5))
	cursors := make([]int, len(plans))
	res := &Result{Scenario: sc, CleanFingerprint: cleanFP}
	for chk.violation == nil {
		var live []int
		for i, c := range cursors {
			if c < len(plans[i]) {
				live = append(live, i)
			}
		}
		if len(live) == 0 {
			break
		}
		i := live[interleave.Intn(len(live))]
		op := plans[i][cursors[i]]
		cursors[i]++
		if op.crash {
			chk.beforeCrash(i)
			if err := sys.CrashSite(i); err != nil {
				return nil, err
			}
			continue
		}
		if err := sys.Feed(i, op.x); err != nil {
			chk.fail(violationLabel(err), err.Error())
		}
	}
	if chk.violation == nil {
		if err := sys.Drain(); err != nil {
			chk.fail(violationLabel(err), err.Error())
		}
	}
	if chk.violation == nil {
		chk.finalChecks(cleanFP, cleanWeights)
	}

	res.Violation = chk.violation
	res.Updates = chk.updates
	res.Fingerprint = Fingerprint(sys.GlobalMixture())
	res.SimTime = sys.Now()
	res.Delivery = sys.DeliveryStats()
	res.Recovery = sys.Recovery()
	if res.Violation != nil {
		res.Journal = reg.Journal().Tail(opts.JournalTail)
		snap := reg.Tracer().Snapshot()
		res.Traces = &snap
	}
	return res, nil
}

// violationLabel classifies a Feed/Drain error: recovery self-check
// mismatches get their own invariant name, everything else is a delivery
// failure.
func violationLabel(err error) string {
	if errors.Is(err, cludistream.ErrRecoveryMismatch) {
		return "recovery"
	}
	return "delivery"
}

// systemConfig maps a scenario onto the facade configuration. The fault
// plan's RNG is derived from the scenario seed, so drops, duplicates and
// backoff jitter are part of the replayable schedule.
func systemConfig(sc Scenario, reg *telemetry.Registry) cludistream.Config {
	return cludistream.Config{
		NumSites:             sc.NumSites,
		Dim:                  sc.Dim,
		K:                    sc.K,
		Epsilon:              0.5,
		Seed:                 sc.Seed,
		ChunkSize:            sc.ChunkSize,
		Merge:                mergeOpts(),
		LinkLatency:          sc.LinkLatency,
		LinkBandwidth:        sc.LinkBandwidth,
		ArrivalRate:          sc.ArrivalRate,
		SlidingHorizonChunks: sc.Sliding,
		Fault: &netsim.FaultPlan{
			DropProb: sc.DropProb,
			DupProb:  sc.DupProb,
			Outages:  sc.outages(),
			Rand:     rand.New(rand.NewSource(sc.Seed*31 + 7)),
		},
		Telemetry: reg,
	}
}

// cleanReplay runs the scenario's streams through a fault-free deployment
// (perfect links, v1 encoding, no crashes) and returns the canonical
// fingerprint and per-model weights the faulted run must converge to.
// The deployment uses the default sublinear hot paths; exactReplay runs
// the same streams with every exact reference path forced on.
func cleanReplay(sc Scenario, streams [][]linalg.Vector) (uint64, []coordinator.ModelWeight, error) {
	return referenceReplay(sc, streams, false)
}

// exactReplay is cleanReplay with the sublinear hot paths disabled:
// exhaustive J_fit scans, per-probe chunk re-scans, and the exhaustive
// per-update remerge sweep.
func exactReplay(sc Scenario, streams [][]linalg.Vector) (uint64, []coordinator.ModelWeight, error) {
	return referenceReplay(sc, streams, true)
}

// prunedParityCheck enforces the "pruned-parity" invariant: the fast and
// exact deployments must reach bit-identical global state on every
// scenario's fault-free stream.
func prunedParityCheck(sc Scenario, streams [][]linalg.Vector, cleanFP uint64, cleanWeights []coordinator.ModelWeight) *Violation {
	exactFP, exactWeights, err := exactReplay(sc, streams)
	if err != nil {
		return &Violation{Invariant: "pruned-parity", Detail: fmt.Sprintf("exact reference replay failed: %v", err)}
	}
	if exactFP != cleanFP {
		return &Violation{
			Invariant: "pruned-parity",
			Detail:    fmt.Sprintf("global-mixture fingerprint %016x on the sublinear paths, %016x on the exact paths", cleanFP, exactFP),
		}
	}
	if !reflect.DeepEqual(exactWeights, cleanWeights) {
		return &Violation{
			Invariant: "pruned-parity",
			Detail:    fmt.Sprintf("model weights diverged: sublinear %v, exact %v", cleanWeights, exactWeights),
		}
	}
	return nil
}

func referenceReplay(sc Scenario, streams [][]linalg.Vector, exact bool) (uint64, []coordinator.ModelWeight, error) {
	cfg := systemConfig(sc, nil)
	cfg.Fault = nil
	cfg.Telemetry = nil
	if exact {
		cfg.PruneTopM = -1
		cfg.SharedChunkStats = site.SharedStatsOff
		cfg.IncrementalRemerge = coordinator.RemergeExact
	}
	sys, err := cludistream.New(cfg)
	if err != nil {
		return 0, nil, err
	}
	cursors := make([]int, len(streams))
	for {
		done := true
		for i := range streams {
			if cursors[i] < len(streams[i]) {
				done = false
				if err := sys.Feed(i, streams[i][cursors[i]]); err != nil {
					return 0, nil, err
				}
				cursors[i]++
			}
		}
		if done {
			break
		}
	}
	if err := sys.Drain(); err != nil {
		return 0, nil, err
	}
	return Fingerprint(sys.GlobalMixture()), sys.Coordinator().ModelWeights(), nil
}

// mergeOpts is the coordinator merge configuration every run uses:
// moment-preserving merges are deterministic and fast, matching the
// chaos tests' recovery setup.
func mergeOpts() gaussian.MergeOptions { return gaussian.MergeOptions{MomentOnly: true} }
