package dst

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"cludistream/internal/coordinator"
	"cludistream/internal/linalg"
	"cludistream/internal/netsim"
	"cludistream/internal/site"
	"cludistream/internal/tree"
)

// TreeOptions tunes a tree simulation run.
type TreeOptions struct {
	// InjectDedupeFault deliberately breaks every internal node's
	// sequence-number dedupe (tree.Deployment.InjectDedupeFault), proving
	// the per-hop exactly-once invariant catches a real regression.
	InjectDedupeFault bool
}

// TreeResult is the outcome of one tree scenario run.
type TreeResult struct {
	Scenario  TreeScenario `json:"scenario"`
	Violation *Violation   `json:"violation,omitempty"`
	// Updates counts messages applied across every internal node
	// (post-dedupe, all layers).
	Updates int `json:"updates"`
	// Fingerprint hashes the root's global mixture; RefFingerprint the
	// flat reference's. They differ only by merge-association rounding, so
	// each is individually replay-stable but they are not compared bitwise.
	Fingerprint    uint64  `json:"fingerprint"`
	RefFingerprint uint64  `json:"ref_fingerprint"`
	SimTime        float64 `json:"sim_time"`
	// LayerBytes is wire traffic by receiving layer: index 0 into the
	// root, index 1 into depth-1 aggregators, and so on.
	LayerBytes []int `json:"layer_bytes"`
	// RootMemoryBytes vs FlatMemoryBytes is the aggregation dividend: what
	// the root coordinator tracks behind the fan-in versus what a flat
	// deployment of the same sites makes one coordinator hold.
	RootMemoryBytes int                `json:"root_memory_bytes"`
	FlatMemoryBytes int                `json:"flat_memory_bytes"`
	Recovery        tree.RecoveryStats `json:"recovery"`
}

// RunTree executes one tree scenario: the full leaf→aggregator→root stack
// on the virtual clock with the per-layer invariant suite attached to
// every applied message, against a flat reference coordinator fed the
// same leaf emissions directly. It returns an error only when the
// scenario itself cannot run; invariant failures come back in
// TreeResult.Violation.
func RunTree(sc TreeScenario, opts TreeOptions) (*TreeResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	streams := make([][]linalg.Vector, len(sc.Sites))
	for i, script := range sc.Sites {
		streams[i] = script.stream(sc.ChunkSize, sc.Dim)
	}
	ref, err := coordinator.New(coordinator.Config{Dim: sc.Dim, Merge: mergeOpts()})
	if err != nil {
		return nil, err
	}
	chk := newTreeChecker(sc, ref)

	partitions := make(map[int][]netsim.Outage)
	for _, p := range sc.Partitions {
		partitions[p.Node] = append(partitions[p.Node], netsim.Outage{Start: p.Start, End: p.End})
	}
	cfg := tree.Config{
		Topology:    sc.Topology,
		Site:        site.Config{Dim: sc.Dim, K: sc.K, Epsilon: 0.5, ChunkSize: sc.ChunkSize},
		Coord:       coordinator.Config{Dim: sc.Dim, Merge: mergeOpts()},
		Seed:        sc.Seed,
		ArrivalRate: sc.ArrivalRate,
		// Bit-level change detection on every mirror: DST demands faithful
		// replication at every hop, not tolerance-suppressed drift.
		ExactSync:   true,
		DropProb:    sc.DropProb,
		DupProb:     sc.DupProb,
		NodeOutages: partitions,
		Crashes:     sc.Crashes,
		OnApply:     chk.onApply,
		OnEmit: func(leafID int, u site.Update) {
			if err := ref.HandleUpdate(u); err != nil {
				chk.fail("delivery", fmt.Sprintf("flat reference rejected site %d's own update: %v", leafID, err))
			}
		},
	}
	if len(sc.Crashes) > 0 {
		dir, err := os.MkdirTemp("", "dst-tree-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.StateDir = dir
		cfg.CheckpointEvery = sc.CheckpointEvery
		cfg.SelfCheck = true
	}
	dep, err := tree.NewDeployment(cfg)
	if err != nil {
		return nil, err
	}
	defer dep.Close()
	chk.dep = dep
	if opts.InjectDedupeFault {
		dep.InjectDedupeFault()
	}

	// Seeded interleave: which leaf advances next is part of the
	// replayable schedule. The live list is pruned in place as streams
	// exhaust — same selection semantics as the flat runner, without the
	// O(sites) rebuild per record.
	interleave := rand.New(rand.NewSource(sc.Seed*1000003 + 5))
	cursors := make([]int, len(streams))
	live := make([]int, len(streams))
	for i := range live {
		live[i] = i
	}
	for chk.violation == nil && len(live) > 0 {
		li := interleave.Intn(len(live))
		i := live[li]
		if err := dep.Feed(i, streams[i][cursors[i]]); err != nil {
			chk.fail(treeViolationLabel(err), err.Error())
			break
		}
		cursors[i]++
		if cursors[i] == len(streams[i]) {
			live = append(live[:li], live[li+1:]...)
		}
	}
	if chk.violation == nil {
		if err := dep.Drain(); err != nil {
			chk.fail(treeViolationLabel(err), err.Error())
		}
	}
	if chk.violation == nil {
		chk.finalChecks()
	}

	return &TreeResult{
		Scenario:        sc,
		Violation:       chk.violation,
		Updates:         chk.updates,
		Fingerprint:     Fingerprint(dep.RootMixture()),
		RefFingerprint:  Fingerprint(ref.GlobalMixture()),
		SimTime:         dep.Now(),
		LayerBytes:      dep.LayerBytes(),
		RootMemoryBytes: dep.NodeCoordinator(0).MemoryBytes(),
		FlatMemoryBytes: ref.MemoryBytes(),
		Recovery:        dep.Recovery(),
	}, nil
}

// treeViolationLabel classifies a Feed/Drain error: recovery self-check
// mismatches get their own invariant name, everything else is a delivery
// failure.
func treeViolationLabel(err error) string {
	if errors.Is(err, tree.ErrRecoveryMismatch) {
		return "recovery"
	}
	return "delivery"
}
