// Package dst is a FoundationDB-style deterministic simulation testing
// harness for the whole CluDistream deployment. A Scenario — sites,
// dimensionality, a drift program per site, chunk sizes, and a fault
// schedule of losses, duplicate deliveries, outage windows (including
// coordinator restarts) and site crash/replays — is generated from a
// single seed, runs the full site→transport→netsim→coordinator stack
// under one virtual clock, and is checked against a system-wide invariant
// suite after every delivered update. Every run is a pure function of the
// seed: replaying a seed reproduces the same decisions, the same
// deliveries, and the same violation (if any), bit for bit.
//
// The headline invariant follows Tran's exact distributed clustering
// result: the coordinator's final model must be exactly the model of a
// fault-free replay, regardless of the network schedule. The remaining
// invariants check the paper's own structures continuously as models
// evolve — exactly-once application, event-list consistency, Theorem-2
// fit-test soundness, a Theorem-3-style communication-cost bound, and
// telemetry conservation laws.
package dst

import (
	"fmt"
	"math/rand"

	"cludistream/internal/netsim"
	"cludistream/internal/persist"
)

// Regime is one phase of a site's drift program: the stream parks on a
// well-separated bimodal distribution centred at Mean for Chunks chunks.
type Regime struct {
	Mean   float64 `json:"mean"`
	Chunks int     `json:"chunks"`
}

// OutageSpec is a receiver-down window of the fault schedule.
// CoordRestart marks windows where the coordinator process dies at Start
// and recovers at End through the real checkpoint + WAL path: the
// in-memory coordinator and dedupe table are dropped and rebuilt from
// disk (cludistream.System.CrashCoordinator), with a byte-level self-check
// that the recovered state matches the pre-crash state. Arrivals inside
// the window are lost to the outage and couriers retransmit after it.
type OutageSpec struct {
	Start        float64 `json:"start"`
	End          float64 `json:"end"`
	CoordRestart bool    `json:"coord_restart,omitempty"`
}

// SiteScript is one site's portion of a scenario: its record stream
// (derived from StreamSeed and the drift program) and its crash schedule.
type SiteScript struct {
	// StreamSeed drives this site's record sampling. It is stored
	// explicitly — not derived from the site's position — so a shrink that
	// removes sibling sites leaves this stream bit-identical.
	StreamSeed int64 `json:"stream_seed"`
	// Regimes is the drift program, in order.
	Regimes []Regime `json:"regimes"`
	// TailRecords is a partial chunk appended after the last regime so the
	// chunker's pending buffer is exercised (0 = none).
	TailRecords int `json:"tail_records,omitempty"`
	// CrashAfter, when positive, crashes the site after it has fed that
	// many records; the restarted incarnation replays the stream from the
	// beginning with a higher epoch (0 = never crashes).
	CrashAfter int `json:"crash_after,omitempty"`
}

// Scenario is a complete, self-describing simulation test case. Its JSON
// form is embedded in failure artifacts; a scenario alone (no seed
// re-derivation) reproduces a run exactly.
type Scenario struct {
	Seed      int64 `json:"seed"`
	NumSites  int   `json:"num_sites"`
	Dim       int   `json:"dim"`
	K         int   `json:"k"`
	ChunkSize int   `json:"chunk_size"`
	// Sliding, when positive, runs the deployment in sliding-window mode
	// with that horizon in chunks (deletion messages flow).
	Sliding int `json:"sliding,omitempty"`

	// Fault schedule.
	DropProb float64      `json:"drop_prob,omitempty"`
	DupProb  float64      `json:"dup_prob,omitempty"`
	Outages  []OutageSpec `json:"outages,omitempty"`

	// Coordinator durability knobs, set when the schedule contains a
	// CoordRestart outage so an artifact pins the exact checkpoint cadence
	// and WAL sync policy the failing run used.
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
	WALFsync        string `json:"wal_fsync,omitempty"`

	// Link shape.
	LinkLatency   float64 `json:"link_latency"`
	LinkBandwidth float64 `json:"link_bandwidth,omitempty"`
	ArrivalRate   float64 `json:"arrival_rate"`

	Sites []SiteScript `json:"sites"`
}

// regimePalette spaces regime centres far enough apart that the J_fit
// test separates them decisively and coordinator grouping is stable under
// any delivery schedule (the same property the paper's well-separated
// synthetic streams have).
var regimePalette = []float64{0, 200, -200, 400, -400, 600}

// Generate derives a scenario from a seed. short trims every dimension of
// the scenario (sites, regimes, chunk size) so a hundred seeds run in
// seconds; long mode explores larger deployments.
func Generate(seed int64, short bool) Scenario {
	rng := rand.New(rand.NewSource(seed*2654435761 + 1))
	sc := Scenario{
		Seed:        seed,
		Dim:         1 + rng.Intn(2),
		K:           2,
		LinkLatency: 0.02 + 0.06*rng.Float64(),
		ArrivalRate: 1000,
	}
	if short {
		sc.NumSites = 1 + rng.Intn(3)
		sc.ChunkSize = 100 + 50*rng.Intn(3)
	} else {
		sc.NumSites = 1 + rng.Intn(5)
		sc.ChunkSize = 150 + 50*rng.Intn(4)
	}
	// A minority of scenarios run a finite-bandwidth link (serialized
	// transmissions) and a minority age chunks out of a sliding window.
	if rng.Intn(4) == 0 {
		sc.LinkBandwidth = 200e3 + 400e3*rng.Float64()
	}
	if rng.Intn(4) == 0 {
		sc.Sliding = 3 + rng.Intn(4)
	}
	// Fault schedule: independent loss, duplicate delivery, outages.
	if rng.Intn(3) != 0 {
		sc.DropProb = 0.05 + 0.25*rng.Float64()
	}
	if rng.Intn(3) != 0 {
		sc.DupProb = 0.05 + 0.25*rng.Float64()
	}

	maxChunks := 0
	for i := 0; i < sc.NumSites; i++ {
		script := SiteScript{StreamSeed: seed ^ (int64(i+1) * 7919)}
		nRegimes := 2 + rng.Intn(3)
		if !short {
			nRegimes = 2 + rng.Intn(4)
		}
		prev := -1
		for r := 0; r < nRegimes; r++ {
			// Cycle a small per-site palette with no immediate repeats so
			// old regimes return and exercise archive reactivation.
			pi := rng.Intn(3)
			if pi == prev {
				pi = (pi + 1) % 3
			}
			prev = pi
			script.Regimes = append(script.Regimes, Regime{
				Mean:   regimePalette[pi] + float64(i)*1200,
				Chunks: 2 + rng.Intn(3),
			})
		}
		if rng.Intn(2) == 0 {
			script.TailRecords = rng.Intn(sc.ChunkSize)
		}
		total := script.totalRecords(sc.ChunkSize)
		if rng.Intn(3) == 0 {
			script.CrashAfter = sc.ChunkSize + rng.Intn(total-sc.ChunkSize)
		}
		if n := script.chunks(); n > maxChunks {
			maxChunks = n
		}
		sc.Sites = append(sc.Sites, script)
	}

	// Outage windows, placed inside the stream's simulated duration; one
	// in three is a coordinator restart. Crash replays double a site's
	// feed, so the wall of the schedule is the replayed duration.
	dur := float64(maxChunks*sc.ChunkSize) * 2 / sc.ArrivalRate
	for n := rng.Intn(3); n > 0; n-- {
		start := rng.Float64() * dur
		sc.Outages = append(sc.Outages, OutageSpec{
			Start:        start,
			End:          start + 0.2 + rng.Float64()*1.5,
			CoordRestart: rng.Intn(3) == 0,
		})
	}
	// Durability knobs, drawn last so scenarios without a coordinator
	// restart are bit-identical to those of earlier harness versions. A
	// tiny checkpoint cadence makes most restarts replay a WAL tail;
	// "always" is the only policy under which recovery is lossless and the
	// byte-level self-check can demand equality.
	if sc.hasCoordRestart() {
		sc.CheckpointEvery = 1 + rng.Intn(8)
		sc.WALFsync = "always"
	}
	return sc
}

// hasCoordRestart reports whether the fault schedule restarts the
// coordinator.
func (sc Scenario) hasCoordRestart() bool {
	for _, o := range sc.Outages {
		if o.CoordRestart {
			return true
		}
	}
	return false
}

// chunks returns how many full chunks the drift program spans.
func (s SiteScript) chunks() int {
	var n int
	for _, r := range s.Regimes {
		n += r.Chunks
	}
	return n
}

// totalRecords returns the site's stream length in records.
func (s SiteScript) totalRecords(chunkSize int) int {
	return s.chunks()*chunkSize + s.TailRecords
}

// Validate rejects scenarios that cannot run (hand-edited artifacts,
// shrink intermediates).
func (sc Scenario) Validate() error {
	if sc.NumSites < 1 || sc.NumSites != len(sc.Sites) {
		return fmt.Errorf("dst: NumSites %d != %d site scripts", sc.NumSites, len(sc.Sites))
	}
	if sc.Dim < 1 || sc.K < 1 || sc.ChunkSize < sc.K {
		return fmt.Errorf("dst: bad dims: Dim=%d K=%d ChunkSize=%d", sc.Dim, sc.K, sc.ChunkSize)
	}
	if sc.ArrivalRate <= 0 {
		return fmt.Errorf("dst: ArrivalRate %v", sc.ArrivalRate)
	}
	if sc.CheckpointEvery < 0 {
		return fmt.Errorf("dst: CheckpointEvery %d", sc.CheckpointEvery)
	}
	if _, err := persist.ParseFsyncMode(sc.WALFsync); err != nil {
		return err
	}
	for i, s := range sc.Sites {
		if len(s.Regimes) == 0 {
			return fmt.Errorf("dst: site %d has no regimes", i)
		}
		if s.CrashAfter < 0 || s.CrashAfter >= s.totalRecords(sc.ChunkSize) {
			if s.CrashAfter != 0 {
				return fmt.Errorf("dst: site %d CrashAfter %d outside stream of %d", i, s.CrashAfter, s.totalRecords(sc.ChunkSize))
			}
		}
	}
	return (&netsim.FaultPlan{
		DropProb: sc.DropProb,
		DupProb:  sc.DupProb,
		Rand:     rand.New(rand.NewSource(1)),
		Outages:  sc.outages(),
	}).Validate()
}

// outages converts the schedule to the netsim representation.
func (sc Scenario) outages() []netsim.Outage {
	out := make([]netsim.Outage, len(sc.Outages))
	for i, o := range sc.Outages {
		out[i] = netsim.Outage{Start: o.Start, End: o.End}
	}
	return out
}
