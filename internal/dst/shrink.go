package dst

// Shrink greedily minimizes a failing scenario while preserving the
// violation: it repeatedly tries removing fault-schedule elements (outage
// windows, site crashes, the drop and duplicate probabilities), dropping
// whole sites, and truncating drift programs, keeping each simplification
// that still fails. Because site streams are keyed by explicit per-site
// StreamSeeds, removing one site leaves every other stream bit-identical,
// so the shrink explores a lattice of strictly simpler scenarios.
//
// It returns the minimized scenario — still failing under opts — together
// with the number of candidate runs it took. The input scenario must fail;
// if it does not, it is returned unchanged with runs == 1.
func Shrink(sc Scenario, opts Options) (Scenario, int) {
	runs := 0
	fails := func(s Scenario) bool {
		if err := s.Validate(); err != nil {
			return false
		}
		runs++
		r, err := Run(s, opts)
		return err == nil && r.Violation != nil
	}
	if !fails(sc) {
		return sc, runs
	}
	for improved := true; improved; {
		improved = false
		for _, cand := range candidates(sc) {
			if fails(cand) {
				sc = cand
				improved = true
				break
			}
		}
	}
	return sc, runs
}

// candidates enumerates one-step simplifications, cheapest-to-verify
// first: fewer sites, shorter drift programs, then a smaller fault
// schedule.
func candidates(sc Scenario) []Scenario {
	var out []Scenario

	// Drop one site entirely.
	if sc.NumSites > 1 {
		for i := range sc.Sites {
			c := clone(sc)
			c.Sites = append(append([]SiteScript(nil), c.Sites[:i]...), c.Sites[i+1:]...)
			c.NumSites--
			out = append(out, c)
		}
	}
	// Truncate a drift program to its first half (clamping the crash
	// point back inside the shorter stream).
	for i, s := range sc.Sites {
		if len(s.Regimes) > 1 {
			c := clone(sc)
			c.Sites[i].Regimes = append([]Regime(nil), s.Regimes[:(len(s.Regimes)+1)/2]...)
			c.Sites[i].TailRecords = 0
			if max := c.Sites[i].totalRecords(c.ChunkSize) - 1; c.Sites[i].CrashAfter > max {
				c.Sites[i].CrashAfter = max
			}
			out = append(out, c)
		}
	}
	// Remove one crash.
	for i, s := range sc.Sites {
		if s.CrashAfter > 0 {
			c := clone(sc)
			c.Sites[i].CrashAfter = 0
			out = append(out, c)
		}
	}
	// Remove one outage window.
	for i := range sc.Outages {
		c := clone(sc)
		c.Outages = append(append([]OutageSpec(nil), c.Outages[:i]...), c.Outages[i+1:]...)
		out = append(out, c)
	}
	// Zero the probabilistic faults.
	if sc.DropProb > 0 {
		c := clone(sc)
		c.DropProb = 0
		out = append(out, c)
	}
	if sc.DupProb > 0 {
		c := clone(sc)
		c.DupProb = 0
		out = append(out, c)
	}
	// Turn off the sliding window.
	if sc.Sliding > 0 {
		c := clone(sc)
		c.Sliding = 0
		out = append(out, c)
	}
	return out
}

// clone deep-copies the scenario's slices so candidates never alias.
func clone(sc Scenario) Scenario {
	c := sc
	c.Outages = append([]OutageSpec(nil), sc.Outages...)
	c.Sites = append([]SiteScript(nil), sc.Sites...)
	for i := range c.Sites {
		c.Sites[i].Regimes = append([]Regime(nil), sc.Sites[i].Regimes...)
	}
	return c
}
