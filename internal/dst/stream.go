package dst

import (
	"math/rand"

	"cludistream/internal/linalg"
)

// stream materializes one site's record stream from its script: for each
// regime, Chunks×ChunkSize records drawn from a bimodal Gaussian centred
// at Mean±bimodalGap per coordinate, then TailRecords more from the last
// regime (a partial chunk that exercises the pending buffer). The stream
// is a pure function of (script, chunkSize, dim): crash replays and
// shrink intermediates regenerate it bit-identically.
func (s SiteScript) stream(chunkSize, dim int) []linalg.Vector {
	rng := rand.New(rand.NewSource(s.StreamSeed))
	out := make([]linalg.Vector, 0, s.totalRecords(chunkSize))
	sample := func(mean float64, n int) {
		for i := 0; i < n; i++ {
			offset := bimodalGap
			if rng.Intn(2) == 0 {
				offset = -bimodalGap
			}
			x := make(linalg.Vector, dim)
			for d := range x {
				x[d] = mean + offset + rng.NormFloat64()
			}
			out = append(out, x)
		}
	}
	for _, r := range s.Regimes {
		sample(r.Mean, r.Chunks*chunkSize)
	}
	if s.TailRecords > 0 {
		sample(s.Regimes[len(s.Regimes)-1].Mean, s.TailRecords)
	}
	return out
}

// bimodalGap separates the two modes within a regime; with unit variance
// the K=2 EM fit resolves them decisively while the regime palette's
// 200-wide spacing keeps distinct regimes failing the J_fit test.
const bimodalGap = 4.0
