package dst

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"cludistream/internal/tree"
)

// smallTreeScenario hand-builds a compact tree scenario (6 sites behind
// two aggregators) for the fast, targeted harness tests; the generator
// sweep covers the 100+-site shapes.
func smallTreeScenario(seed int64) TreeScenario {
	topo, err := tree.Spec{Leaves: 6, AggLayers: 1, FanOut: 3, Link: tree.LinkSpec{Latency: 0.01}}.Build()
	if err != nil {
		panic(err)
	}
	sc := TreeScenario{
		Seed:        seed,
		Dim:         1,
		K:           2,
		ChunkSize:   60,
		Topology:    topo,
		ArrivalRate: 1000,
	}
	for i := 0; i < topo.NumSites(); i++ {
		sc.Sites = append(sc.Sites, SiteScript{
			StreamSeed: seed ^ (int64(i+1) * 7919),
			Regimes: []Regime{
				{Mean: regimePalette[i%3], Chunks: 2},
				{Mean: regimePalette[(i+1)%3], Chunks: 1},
			},
		})
	}
	return sc
}

func TestGenerateTreeIsDeterministicAndValid(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := GenerateTree(seed, true), GenerateTree(seed, true)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := a.NumSites(); n < 100 || n > 220 {
			t.Fatalf("seed %d: %d sites outside the short-mode 100..220 range", seed, n)
		}
		if d := a.Topology.Depth(); d < 2 || d > 3 {
			t.Fatalf("seed %d: depth %d, want 2..3 (1-2 aggregator layers)", seed, d)
		}
	}
	// Long mode reaches deeper and wider.
	long := GenerateTree(7, false)
	if err := long.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := long.NumSites(); n < 100 || n > 1000 {
		t.Fatalf("long mode: %d sites outside 100..1000", n)
	}
}

func TestRunTreeGreenSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed tree sweep")
	}
	sawCrash, sawFault := false, false
	for seed := int64(1); seed <= 5; seed++ {
		sc := GenerateTree(seed, true)
		res, err := RunTree(sc, TreeOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d: %v", seed, res.Violation)
		}
		if res.Updates == 0 {
			t.Fatalf("seed %d: no updates applied", seed)
		}
		if len(res.LayerBytes) != sc.Topology.Depth() {
			t.Fatalf("seed %d: %d layer-byte entries for depth %d", seed, len(res.LayerBytes), sc.Topology.Depth())
		}
		if len(sc.Crashes) > 0 {
			sawCrash = true
			if res.Recovery.Restarts < len(sc.Crashes) {
				t.Fatalf("seed %d: %d restarts for %d scheduled crashes", seed, res.Recovery.Restarts, len(sc.Crashes))
			}
		}
		if sc.DropProb > 0 || sc.DupProb > 0 {
			sawFault = true
		}
		// The aggregation dividend: the root tracks one pseudo-model per
		// direct child, not one model per site.
		if res.RootMemoryBytes >= res.FlatMemoryBytes {
			t.Fatalf("seed %d: root coordinator memory %d >= flat deployment's %d — fan-in bought nothing",
				seed, res.RootMemoryBytes, res.FlatMemoryBytes)
		}
	}
	if !sawCrash || !sawFault {
		t.Fatalf("sweep exercised crash=%v fault=%v; widen the seed range", sawCrash, sawFault)
	}
}

func TestRunTreeReplayBitIdentical(t *testing.T) {
	sc := smallTreeScenario(11)
	sc.DropProb, sc.DupProb = 0.2, 0.2
	var cores [2][]byte
	for i := range cores {
		res, err := RunTree(sc, TreeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatal(res.Violation)
		}
		core := TreeCore{
			Seed:           res.Scenario.Seed,
			Updates:        res.Updates,
			SimTime:        res.SimTime,
			Fingerprint:    res.Fingerprint,
			RefFingerprint: res.RefFingerprint,
		}
		b, err := json.Marshal(core)
		if err != nil {
			t.Fatal(err)
		}
		cores[i] = b
	}
	if !bytes.Equal(cores[0], cores[1]) {
		t.Fatalf("replays diverged:\n%s\n%s", cores[0], cores[1])
	}
}

func TestRunTreeAggregatorCrashGreen(t *testing.T) {
	sc := smallTreeScenario(13)
	sc.DropProb, sc.DupProb = 0.1, 0.1
	sc.Crashes = []tree.CrashSpec{{Node: 1, Start: 0.1, End: 0.16}}
	sc.CheckpointEvery = 3
	sc.WALFsync = "always"
	res, err := RunTree(sc, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	if res.Recovery.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Recovery.Restarts)
	}
}

// TestRunTreeDedupeFaultHasTeeth proves the per-hop exactly-once
// invariant catches a real dedupe regression: with every node's dedupe
// broken and duplicates guaranteed, the suite must fail, deterministically.
func TestRunTreeDedupeFaultHasTeeth(t *testing.T) {
	sc := smallTreeScenario(17)
	sc.DupProb = 0.9
	var first *Violation
	for i := 0; i < 2; i++ {
		res, err := RunTree(sc, TreeOptions{InjectDedupeFault: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation == nil {
			t.Fatal("broken dedupe under 90% duplication produced no violation")
		}
		if res.Violation.Invariant != "exactly-once" {
			t.Fatalf("violation invariant %q, want exactly-once (%s)", res.Violation.Invariant, res.Violation.Detail)
		}
		if first == nil {
			first = res.Violation
		} else if *first != *res.Violation {
			t.Fatalf("teeth test is not deterministic:\n%+v\n%+v", first, res.Violation)
		}
	}
}

func TestTreeScenarioRoundTrip(t *testing.T) {
	sc := GenerateTree(23, true)
	var buf bytes.Buffer
	if err := WriteTreeScenario(&buf, sc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTreeScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sc) {
		t.Fatal("scenario did not round-trip through the envelope")
	}
}

func TestTreeArtifactRoundTrip(t *testing.T) {
	sc := smallTreeScenario(29)
	sc.DupProb = 0.9
	res, err := RunTree(sc, TreeOptions{InjectDedupeFault: true})
	if err != nil {
		t.Fatal(err)
	}
	a := res.ToArtifact()
	if a == nil {
		t.Fatal("violating run produced no artifact")
	}
	var buf bytes.Buffer
	if err := WriteTreeArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTreeArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Core() != a.Core() {
		t.Fatalf("artifact core did not round-trip:\n%+v\n%+v", got.Core(), a.Core())
	}
	if err := got.Scenario.Validate(); err != nil {
		t.Fatalf("embedded scenario invalid after round-trip: %v", err)
	}
	// The embedded scenario replays to the same violation.
	res2, err := RunTree(got.Scenario, TreeOptions{InjectDedupeFault: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Violation == nil || *res2.Violation != got.Violation {
		t.Fatalf("replayed violation %+v != artifact violation %+v", res2.Violation, got.Violation)
	}
}
