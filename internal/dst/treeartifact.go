package dst

import (
	"encoding/json"
	"io"

	"cludistream/internal/persist"
	"cludistream/internal/tree"
)

const (
	treeArtifactFormat = "cludistream-dst-tree-artifact"
	treeScenarioFormat = "cludistream-dst-tree-scenario"
	treeFormatVersion  = 1
)

// TreeArtifact is a self-contained tree-scenario failure report: the
// seed, the full scenario (topology included), the violation, and the
// run's layer-level accounting. A written artifact replays without the
// process that found it.
type TreeArtifact struct {
	Seed           int64              `json:"seed"`
	Scenario       TreeScenario       `json:"scenario"`
	Violation      Violation          `json:"violation"`
	Updates        int                `json:"updates"`
	SimTime        float64            `json:"sim_time"`
	Fingerprint    uint64             `json:"fingerprint"`
	RefFingerprint uint64             `json:"ref_fingerprint"`
	LayerBytes     []int              `json:"layer_bytes,omitempty"`
	Recovery       tree.RecoveryStats `json:"recovery"`
}

// TreeCore is the deterministic portion of a tree artifact: two replays
// of the same scenario must produce equal TreeCores bit for bit.
type TreeCore struct {
	Seed           int64     `json:"seed"`
	Violation      Violation `json:"violation"`
	Updates        int       `json:"updates"`
	SimTime        float64   `json:"sim_time"`
	Fingerprint    uint64    `json:"fingerprint"`
	RefFingerprint uint64    `json:"ref_fingerprint"`
}

// Core projects the artifact onto its replay-stable fields.
func (a *TreeArtifact) Core() TreeCore {
	return TreeCore{
		Seed:           a.Seed,
		Violation:      a.Violation,
		Updates:        a.Updates,
		SimTime:        a.SimTime,
		Fingerprint:    a.Fingerprint,
		RefFingerprint: a.RefFingerprint,
	}
}

// ToArtifact packages a violating tree result (nil for green runs).
func (r *TreeResult) ToArtifact() *TreeArtifact {
	if r.Violation == nil {
		return nil
	}
	return &TreeArtifact{
		Seed:           r.Scenario.Seed,
		Scenario:       r.Scenario,
		Violation:      *r.Violation,
		Updates:        r.Updates,
		SimTime:        r.SimTime,
		Fingerprint:    r.Fingerprint,
		RefFingerprint: r.RefFingerprint,
		LayerBytes:     r.LayerBytes,
		Recovery:       r.Recovery,
	}
}

// WriteTreeArtifact serializes a tree artifact into persist's envelope.
func WriteTreeArtifact(w io.Writer, a *TreeArtifact) error {
	return persist.SaveJSONEnvelope(w, treeArtifactFormat, treeFormatVersion, a)
}

// ReadTreeArtifact loads an artifact written by WriteTreeArtifact.
func ReadTreeArtifact(r io.Reader) (*TreeArtifact, error) {
	payload, _, err := persist.LoadJSONEnvelope(r, treeArtifactFormat, treeFormatVersion)
	if err != nil {
		return nil, err
	}
	var a TreeArtifact
	if err := json.Unmarshal(payload, &a); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteTreeScenario serializes a tree scenario alone.
func WriteTreeScenario(w io.Writer, sc TreeScenario) error {
	return persist.SaveJSONEnvelope(w, treeScenarioFormat, treeFormatVersion, sc)
}

// ReadTreeScenario loads a scenario written by WriteTreeScenario and
// validates it.
func ReadTreeScenario(r io.Reader) (TreeScenario, error) {
	payload, _, err := persist.LoadJSONEnvelope(r, treeScenarioFormat, treeFormatVersion)
	if err != nil {
		return TreeScenario{}, err
	}
	var sc TreeScenario
	if err := json.Unmarshal(payload, &sc); err != nil {
		return TreeScenario{}, err
	}
	return sc, sc.Validate()
}
