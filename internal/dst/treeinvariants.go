package dst

import (
	"fmt"
	"math"

	"cludistream/internal/coordinator"
	"cludistream/internal/transport"
	"cludistream/internal/tree"
)

// hop identifies one directed edge of the tree by its receiving internal
// node and the wire sender id the receiver sees (a leaf SiteID or an
// aggregator's pseudo-site id).
type hop struct {
	node  int
	child int32
}

// hopTally is the receiver-side ledger for one (hop, epoch): what the
// node actually applied, priced at exact wire sizes, split by kind.
type hopTally struct {
	msgs, bytes                         int
	newModels, weightUpdates, deletions int
}

// liveModel is one registered model the checker believes a node holds:
// its running record counter and the component count its mixture
// contributes to the node's leaf table.
type liveModel struct {
	counter int
	comps   int
}

// treeChecker is the per-layer invariant suite for tree deployments. It
// observes every message applied at every internal node through the
// deployment's OnApply hook and maintains, per hop, an independent
// exactly-once shadow (dedupe watermarks) plus a receiver-side ledger it
// compares against the sender-side entitlement — the Theorem-3 per-layer
// communication bound at exact wire sizes. Per node it derives the exact
// set of live models the coordinator should be tracking, which prices the
// per-layer memory bound. The flat reference coordinator is fed every
// leaf emission directly (zero network) and anchors the final
// tree-vs-flat equivalence check.
type treeChecker struct {
	sc  TreeScenario
	dep *tree.Deployment
	ref *coordinator.Coordinator

	marks   map[hop]*shadowMark
	applied map[hop]map[uint32]*hopTally
	models  map[hop]map[int32]*liveModel
	// leaves is each node's expected leaf-table size: the sum over live
	// models of their component counts, maintained incrementally.
	leaves []int

	updates   int
	violation *Violation
}

func newTreeChecker(sc TreeScenario, ref *coordinator.Coordinator) *treeChecker {
	return &treeChecker{
		sc:      sc,
		ref:     ref,
		marks:   make(map[hop]*shadowMark),
		applied: make(map[hop]map[uint32]*hopTally),
		models:  make(map[hop]map[int32]*liveModel),
		leaves:  make([]int, sc.Topology.NumNodes()),
	}
}

func (c *treeChecker) fail(invariant, detail string) {
	if c.violation != nil {
		return
	}
	c.violation = &Violation{
		Invariant: invariant,
		Detail:    detail,
		Update:    c.updates,
		SimTime:   c.dep.Now(),
	}
}

// onApply is the per-update suite, invoked by the deployment at whichever
// internal node just applied a delivered message.
func (c *treeChecker) onApply(node int, msg transport.Message) {
	if c.violation != nil {
		return
	}
	c.updates++
	h := hop{node: node, child: msg.SiteID}

	// Invariant: exactly-once through this hop. The shadow replays the
	// dedupe protocol from scratch; any applied message it would have
	// dropped is a duplicate or stale-epoch leak at this specific edge.
	if msg.Seq == 0 {
		c.fail("exactly-once", fmt.Sprintf("node %d applied an unversioned (v1) message from child %d", node, msg.SiteID))
		return
	}
	w := c.marks[h]
	if w == nil {
		w = &shadowMark{}
		c.marks[h] = w
	}
	switch {
	case msg.Epoch < w.epoch:
		c.fail("exactly-once", fmt.Sprintf("node %d applied a stale-epoch message from child %d: epoch %d < watermark epoch %d", node, msg.SiteID, msg.Epoch, w.epoch))
		return
	case msg.Epoch > w.epoch:
		if w.epoch != 0 {
			// The node reset this child: its dead incarnation's models left
			// the leaf table.
			for _, lm := range c.models[h] {
				c.leaves[node] -= lm.comps
			}
			c.models[h] = nil
		}
		w.epoch, w.maxSeq = msg.Epoch, 0
	}
	if msg.Seq <= w.maxSeq {
		c.fail("exactly-once", fmt.Sprintf("node %d child %d epoch %d applied seq %d twice (watermark %d): duplicate delivery was not deduped", node, msg.SiteID, msg.Epoch, msg.Seq, w.maxSeq))
		return
	}
	w.maxSeq = msg.Seq

	// Receiver-side ledger for the Theorem-3 communication bound: what a
	// node applies from a child can never exceed what the child's edge
	// handed to transport in that epoch, priced at exact wire sizes.
	byEpoch := c.applied[h]
	if byEpoch == nil {
		byEpoch = make(map[uint32]*hopTally)
		c.applied[h] = byEpoch
	}
	t := byEpoch[msg.Epoch]
	if t == nil {
		t = &hopTally{}
		byEpoch[msg.Epoch] = t
	}
	t.msgs++
	t.bytes += msg.WireSize()
	switch msg.Kind {
	case transport.MsgNewModel:
		t.newModels++
	case transport.MsgWeightUpdate:
		t.weightUpdates++
	case transport.MsgDeletion:
		t.deletions++
	}
	sent := c.dep.SentTally(node, int(msg.SiteID), msg.Epoch)
	if t.msgs > sent.Msgs || t.bytes > sent.Bytes {
		c.fail("comm-bound", fmt.Sprintf("node %d applied %d msgs / %d bytes from child %d in epoch %d, but the sender only emitted %d msgs / %d bytes",
			node, t.msgs, t.bytes, msg.SiteID, msg.Epoch, sent.Msgs, sent.Bytes))
		return
	}

	// Track the child's live models to price the node's memory.
	mods := c.models[h]
	if mods == nil {
		mods = make(map[int32]*liveModel)
		c.models[h] = mods
	}
	switch msg.Kind {
	case transport.MsgNewModel:
		if mods[msg.ModelID] != nil {
			c.fail("exactly-once", fmt.Sprintf("node %d: child %d re-registered model %d", node, msg.SiteID, msg.ModelID))
			return
		}
		mods[msg.ModelID] = &liveModel{counter: int(msg.Count), comps: msg.Mixture.K()}
		c.leaves[node] += msg.Mixture.K()
	case transport.MsgWeightUpdate:
		lm := mods[msg.ModelID]
		if lm == nil {
			c.fail("exactly-once", fmt.Sprintf("node %d: child %d weight update for unregistered model %d", node, msg.SiteID, msg.ModelID))
			return
		}
		lm.counter += int(msg.Count)
	case transport.MsgDeletion:
		lm := mods[msg.ModelID]
		if lm == nil {
			c.fail("exactly-once", fmt.Sprintf("node %d: child %d deletion for unregistered model %d", node, msg.SiteID, msg.ModelID))
			return
		}
		lm.counter -= int(msg.Count)
		if lm.counter <= 0 {
			c.leaves[node] -= lm.comps
			delete(mods, msg.ModelID)
		}
	}

	// Invariant: the upload-on-change protocol keeps each aggregator child
	// down to at most one live pseudo-model at its parent — the deletion
	// always lands before the replacement on the FIFO edge.
	if int(msg.SiteID) > c.sc.NumSites() && len(mods) > 1 {
		c.fail("upload-protocol", fmt.Sprintf("node %d holds %d live pseudo-models for aggregator child %d, want at most 1", node, len(mods), msg.SiteID))
		return
	}

	c.checkNodeMemory(node)
	if int(msg.SiteID) <= c.sc.NumSites() {
		c.checkLeafHop(h, false)
	}
}

// checkNodeMemory is the per-layer Theorem-3 memory bound: the node's
// coordinator must track exactly the live components the checker derived
// from the applied message stream — no leak across deletions, resets or
// recoveries — and its bytes stay within the 2·leaves·per envelope
// (leaf table plus at most one group per leaf), independent of how many
// records the subtree has absorbed.
func (c *treeChecker) checkNodeMemory(node int) {
	if c.violation != nil {
		return
	}
	co := c.dep.NodeCoordinator(node)
	want := c.leaves[node]
	if got := co.NumLeaves(); got != want {
		c.fail("memory-bound", fmt.Sprintf("node %d tracks %d leaf components, but the applied stream registers %d", node, got, want))
		return
	}
	d := c.sc.Dim
	per := 8 * (1 + d + d*(d+1)/2)
	if limit := 2 * want * per; co.MemoryBytes() > limit {
		c.fail("memory-bound", fmt.Sprintf("node %d coordinator holds %d bytes > per-layer bound %d (%d live components)", node, co.MemoryBytes(), limit, want))
	}
}

// checkLeafHop verifies Theorem-2 fit-test soundness across a leaf's
// uplink: the parent can never apply more NewModel messages than the site
// ran refits, more weight updates than reactivations, or any deletion at
// all (tree mode is landmark). final demands exact catch-up.
func (c *treeChecker) checkLeafHop(h hop, final bool) {
	if c.violation != nil {
		return
	}
	st := c.dep.LeafSite(int(h.child) - 1)
	stats := st.Stats()
	if stats.Chunks != stats.Fits+stats.Refits+stats.Reactivated {
		c.fail("conservation", fmt.Sprintf("site %d: %d chunks != %d fits + %d refits + %d reactivated", h.child, stats.Chunks, stats.Fits, stats.Refits, stats.Reactivated))
		return
	}
	// Leaves never crash in tree mode, so their edges live in epoch 1.
	t := c.applied[h][1]
	if t == nil {
		t = &hopTally{}
	}
	if t.deletions > 0 {
		c.fail("fit-soundness", fmt.Sprintf("site %d emitted %d deletions in landmark mode", h.child, t.deletions))
		return
	}
	if t.newModels > stats.Refits {
		c.fail("fit-soundness", fmt.Sprintf("site %d: %d NewModel messages applied but only %d refits ran — a fitting chunk transmitted a model", h.child, t.newModels, stats.Refits))
		return
	}
	if t.weightUpdates > stats.Reactivated {
		c.fail("fit-soundness", fmt.Sprintf("site %d: %d weight updates applied but only %d chunks reactivated a model", h.child, t.weightUpdates, stats.Reactivated))
		return
	}
	if final {
		if t.newModels != stats.Refits {
			c.fail("fit-soundness", fmt.Sprintf("site %d after drain: %d NewModel messages applied != %d refits — an update was lost or double-applied", h.child, t.newModels, stats.Refits))
			return
		}
		if t.weightUpdates != stats.Reactivated {
			c.fail("fit-soundness", fmt.Sprintf("site %d after drain: %d weight updates applied != %d reactivations", h.child, t.weightUpdates, stats.Reactivated))
		}
	}
}

// finalChecks runs after Drain on a violation-free run: nothing pending,
// per-edge byte conservation, the current-epoch entitlement applied
// exactly (at-least-once transport + dedupe = exactly-once per hop), every
// leaf hop caught up, every layer's memory exact, and the root equivalent
// to the flat deployment of the same sites.
func (c *treeChecker) finalChecks() {
	if c.violation != nil {
		return
	}
	if p := c.dep.Pending(); p != 0 {
		c.fail("delivery", fmt.Sprintf("%d payloads still pending in couriers after drain", p))
		return
	}
	for _, es := range c.dep.EdgeStatsAll() {
		if es.WireBytes != es.GoodputBytes+es.DroppedBytes {
			c.fail("conservation", fmt.Sprintf("edge %d->%d: wire %d != goodput %d + dropped %d", es.From, es.To, es.WireBytes, es.GoodputBytes, es.DroppedBytes))
			return
		}
		h := hop{node: es.To, child: int32(es.From)}
		t := c.applied[h][es.Epoch]
		if t == nil {
			t = &hopTally{}
		}
		if t.msgs != es.SentMsgs || t.bytes != es.SentBytes {
			c.fail("delivery", fmt.Sprintf("edge %d->%d epoch %d: applied %d msgs / %d bytes != sent %d msgs / %d bytes after drain",
				es.From, es.To, es.Epoch, t.msgs, t.bytes, es.SentMsgs, es.SentBytes))
			return
		}
	}
	for i := 0; i < c.sc.NumSites(); i++ {
		c.checkLeafHop(hop{node: c.sc.Topology.Leaves[i].Parent, child: int32(i + 1)}, true)
		if c.violation != nil {
			return
		}
	}
	for n := 0; n < c.sc.Topology.NumNodes(); n++ {
		c.checkNodeMemory(n)
		if c.violation != nil {
			return
		}
	}
	root := c.dep.NodeCoordinator(0)
	if math.Round(root.TotalWeight()) != math.Round(c.ref.TotalWeight()) {
		c.fail("schedule-independence", fmt.Sprintf("root record mass %v != flat reference %v", root.TotalWeight(), c.ref.TotalWeight()))
		return
	}
	if diff := mixturesDiff(root, c.ref); diff != "" {
		c.fail("schedule-independence", "root mixture diverged from the flat deployment: "+diff)
	}
}

// mixturesDiff compares the tree root's global mixture against the flat
// reference positionally (both canonically ordered), returning "" when
// equivalent. Bit-equality is not expected — moment-preserving merges are
// associative only in exact arithmetic — so weights, means and
// covariances must agree to floating-point scale, not exactly.
func mixturesDiff(root, ref *coordinator.Coordinator) string {
	rm, fm := root.GlobalMixture(), ref.GlobalMixture()
	if (rm == nil) != (fm == nil) {
		return fmt.Sprintf("root mixture nil=%v, reference nil=%v", rm == nil, fm == nil)
	}
	if rm == nil {
		return ""
	}
	if rm.K() != fm.K() {
		return fmt.Sprintf("root has %d components, flat reference %d", rm.K(), fm.K())
	}
	const tol = 1e-6
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
	}
	for j := 0; j < rm.K(); j++ {
		if !close(rm.Weight(j), fm.Weight(j)) {
			return fmt.Sprintf("component %d weight %v vs %v", j, rm.Weight(j), fm.Weight(j))
		}
		cr, cf := rm.Component(j), fm.Component(j)
		for i := 0; i < rm.Dim(); i++ {
			if !close(cr.Mean()[i], cf.Mean()[i]) {
				return fmt.Sprintf("component %d mean %v vs %v", j, cr.Mean(), cf.Mean())
			}
		}
		for r := 0; r < rm.Dim(); r++ {
			for cc := r; cc < rm.Dim(); cc++ {
				if !close(cr.Cov().At(r, cc), cf.Cov().At(r, cc)) {
					return fmt.Sprintf("component %d cov[%d,%d] %v vs %v", j, r, cc, cr.Cov().At(r, cc), cf.Cov().At(r, cc))
				}
			}
		}
	}
	return ""
}
