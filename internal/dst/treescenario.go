package dst

import (
	"fmt"
	"math/rand"

	"cludistream/internal/persist"
	"cludistream/internal/tree"
)

// TreePartition is a receiver-down window on one internal node of a tree
// scenario: nothing reaches the node while the window is open, its state
// stays intact, and couriers retransmit after it lifts. Distinct from a
// crash, which loses the node's in-memory state and recovers from disk.
type TreePartition struct {
	Node  int     `json:"node"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// TreeScenario is a complete multi-layer simulation test case: a random
// tree topology (heterogeneous per-link latency/bandwidth embedded in the
// spec), per-site drift programs, and a fault schedule that targets the
// interior — iid loss and duplication on every edge, partition windows on
// aggregators, and aggregator crash/recovery through the durable
// checkpoint + WAL path. Like the flat Scenario, its JSON form alone
// reproduces a run exactly.
type TreeScenario struct {
	Seed      int64 `json:"seed"`
	Dim       int   `json:"dim"`
	K         int   `json:"k"`
	ChunkSize int   `json:"chunk_size"`

	Topology tree.Topology `json:"topology"`

	// Fault schedule.
	DropProb   float64          `json:"drop_prob,omitempty"`
	DupProb    float64          `json:"dup_prob,omitempty"`
	Partitions []TreePartition  `json:"partitions,omitempty"`
	Crashes    []tree.CrashSpec `json:"crashes,omitempty"`

	// Aggregator durability knobs, set when the schedule crashes an
	// aggregator so an artifact pins the exact checkpoint cadence and WAL
	// sync policy the failing run used.
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
	WALFsync        string `json:"wal_fsync,omitempty"`

	ArrivalRate float64 `json:"arrival_rate"`

	Sites []SiteScript `json:"sites"`
}

// NumSites returns the scenario's leaf count.
func (sc TreeScenario) NumSites() int { return sc.Topology.NumSites() }

// GenerateTree derives a tree scenario from a seed. Short mode keeps the
// sweep fast — 100–220 sites behind one or two aggregator layers with
// short drift programs — while long mode explores up to 1000 sites and
// three layers. Every site draws regimes from the shared palette with no
// per-site offset, so sibling sites produce mergeable models and
// aggregation genuinely compresses (the property the per-layer memory
// bound is about).
func GenerateTree(seed int64, short bool) TreeScenario {
	rng := rand.New(rand.NewSource(seed*2654435761 + 9176))
	sc := TreeScenario{
		Seed:        seed,
		Dim:         1 + rng.Intn(2),
		K:           2,
		ArrivalRate: 1000,
	}
	var numSites, layers int
	if short {
		numSites = 100 + rng.Intn(121)
		layers = 1 + rng.Intn(2)
		sc.ChunkSize = 60 + 20*rng.Intn(3)
	} else {
		numSites = 100 + rng.Intn(901)
		layers = 1 + rng.Intn(3)
		sc.ChunkSize = 100 + 50*rng.Intn(3)
	}
	fanOut := 4 + rng.Intn(13)
	base := tree.LinkSpec{Latency: 0.01 + 0.04*rng.Float64()}
	topo, err := tree.Spec{Leaves: numSites, AggLayers: layers, FanOut: fanOut, Link: base}.Build()
	if err != nil {
		panic(fmt.Sprintf("dst: generated spec invalid: %v", err)) // unreachable by construction
	}
	// Heterogeneous links: every edge gets its own latency around the base,
	// and a minority of edges are bandwidth-starved (serialized frames).
	hetero := func(l tree.LinkSpec) tree.LinkSpec {
		l.Latency = base.Latency * (0.5 + rng.Float64())
		if rng.Intn(10) == 0 {
			l.Bandwidth = 50e3 + 150e3*rng.Float64()
		}
		return l
	}
	for i := range topo.Aggs {
		topo.Aggs[i].Link = hetero(topo.Aggs[i].Link)
	}
	for i := range topo.Leaves {
		topo.Leaves[i].Link = hetero(topo.Leaves[i].Link)
	}
	sc.Topology = topo

	if rng.Intn(3) != 0 {
		sc.DropProb = 0.05 + 0.2*rng.Float64()
	}
	if rng.Intn(3) != 0 {
		sc.DupProb = 0.05 + 0.2*rng.Float64()
	}

	// Drift programs off the shared palette; leaves never crash in tree
	// mode (CrashAfter stays zero — interior faults are the point here).
	maxChunks := 0
	for i := 0; i < numSites; i++ {
		script := SiteScript{StreamSeed: seed ^ (int64(i+1) * 7919)}
		nRegimes := 2
		if !short {
			nRegimes = 2 + rng.Intn(2)
		}
		prev := -1
		for r := 0; r < nRegimes; r++ {
			pi := rng.Intn(3)
			if pi == prev {
				pi = (pi + 1) % 3
			}
			prev = pi
			script.Regimes = append(script.Regimes, Regime{
				Mean:   regimePalette[pi],
				Chunks: 1 + rng.Intn(2),
			})
		}
		if rng.Intn(4) == 0 {
			script.TailRecords = rng.Intn(sc.ChunkSize)
		}
		if n := script.chunks(); n > maxChunks {
			maxChunks = n
		}
		sc.Sites = append(sc.Sites, script)
	}

	// Interior fault windows, placed inside the stream's simulated span.
	dur := float64(maxChunks*sc.ChunkSize) / sc.ArrivalRate
	numAggs := len(topo.Aggs)
	for n := rng.Intn(3); n > 0 && numAggs > 0; n-- {
		start := rng.Float64() * dur * 0.8
		sc.Partitions = append(sc.Partitions, TreePartition{
			Node:  1 + rng.Intn(numAggs),
			Start: start,
			End:   start + (0.05+0.3*rng.Float64())*dur,
		})
	}
	// Half the scenarios crash aggregators: distinct nodes, windows inside
	// the feed span so recovery and catch-up happen under live traffic.
	if numAggs > 0 && rng.Intn(2) == 0 {
		used := map[int]bool{}
		for n := 1 + rng.Intn(2); n > 0; n-- {
			node := 1 + rng.Intn(numAggs)
			if used[node] {
				continue
			}
			used[node] = true
			start := (0.1 + 0.6*rng.Float64()) * dur
			sc.Crashes = append(sc.Crashes, tree.CrashSpec{
				Node:  node,
				Start: start,
				End:   start + (0.02+0.1*rng.Float64())*dur,
			})
		}
		// A tiny checkpoint cadence makes most recoveries replay a WAL
		// tail; "always" is the only policy under which recovery is
		// lossless and the byte-level self-check can demand equality.
		sc.CheckpointEvery = 1 + rng.Intn(8)
		sc.WALFsync = "always"
	}
	return sc
}

// Validate rejects tree scenarios that cannot run (hand-edited artifacts).
func (sc TreeScenario) Validate() error {
	if err := sc.Topology.Validate(); err != nil {
		return err
	}
	if sc.NumSites() != len(sc.Sites) {
		return fmt.Errorf("dst: topology has %d leaves but %d site scripts", sc.NumSites(), len(sc.Sites))
	}
	if sc.Dim < 1 || sc.K < 1 || sc.ChunkSize < sc.K {
		return fmt.Errorf("dst: bad dims: Dim=%d K=%d ChunkSize=%d", sc.Dim, sc.K, sc.ChunkSize)
	}
	if sc.ArrivalRate <= 0 {
		return fmt.Errorf("dst: ArrivalRate %v", sc.ArrivalRate)
	}
	if sc.DropProb < 0 || sc.DropProb >= 1 || sc.DupProb < 0 || sc.DupProb > 1 {
		return fmt.Errorf("dst: DropProb %v / DupProb %v", sc.DropProb, sc.DupProb)
	}
	for i, s := range sc.Sites {
		if len(s.Regimes) == 0 {
			return fmt.Errorf("dst: site %d has no regimes", i)
		}
		if s.CrashAfter != 0 {
			return fmt.Errorf("dst: site %d sets CrashAfter — leaves do not crash in tree mode", i)
		}
	}
	for i, p := range sc.Partitions {
		if p.Node < 0 || p.Node >= sc.Topology.NumNodes() {
			return fmt.Errorf("dst: partition %d targets node %d of %d", i, p.Node, sc.Topology.NumNodes())
		}
		if !(p.End > p.Start) || p.Start < 0 {
			return fmt.Errorf("dst: partition %d window [%v, %v)", i, p.Start, p.End)
		}
	}
	for i, c := range sc.Crashes {
		if c.Node < 1 || c.Node >= sc.Topology.NumNodes() {
			return fmt.Errorf("dst: crash %d targets node %d (want an aggregator, 1..%d)", i, c.Node, sc.Topology.NumNodes()-1)
		}
	}
	if sc.CheckpointEvery < 0 {
		return fmt.Errorf("dst: CheckpointEvery %d", sc.CheckpointEvery)
	}
	mode, err := persist.ParseFsyncMode(sc.WALFsync)
	if err != nil {
		return err
	}
	if len(sc.Crashes) > 0 && mode != persist.FsyncAlways {
		return fmt.Errorf("dst: crash schedule requires WALFsync %q for the recovery self-check, got %q", persist.FsyncAlways, mode)
	}
	return nil
}
