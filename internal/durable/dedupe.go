// Package durable makes the coordinator crash-survivable: a Store owns a
// checkpoint + write-ahead-log pair in a state directory, and recovery
// (Open) rebuilds the coordinator and its exactly-once dedupe table
// bit-identically — load the latest checkpoint, replay the WAL tail
// through the same dedupe-then-apply path the live server uses, rotate to
// a fresh generation.
//
// The package also centralizes the dedupe protocol itself (Dedupe), which
// was previously duplicated between netio.Server and the cludistream
// facade: one implementation, three users, no drift.
package durable

import (
	"sort"

	"cludistream/internal/persist"
)

// Watermark is one site's exactly-once high-water mark.
type Watermark struct {
	Epoch  uint32
	MaxSeq uint64
}

// Verdict is Dedupe.Admit's decision for one versioned message.
type Verdict int

const (
	// AdmitFresh: apply the message.
	AdmitFresh Verdict = iota
	// AdmitNewEpoch: the site returned with a higher epoch — reset its
	// coordinator state first, then apply.
	AdmitNewEpoch
	// DropStale: late frame from a dead incarnation; ack, never apply.
	DropStale
	// DropDuplicate: (epoch, seq) at or below the watermark; ack, never
	// re-apply.
	DropDuplicate
)

// Dedupe is the per-site (epoch, seq) watermark table that makes
// at-least-once delivery exactly-once in effect. Not safe for concurrent
// use; callers admit under the same lock that guards the coordinator.
type Dedupe struct {
	seen map[int32]*Watermark
	// Broken disables the sequence-number half of the protocol so
	// duplicates are re-applied — a deliberately injected bug the
	// deterministic simulation tests use to prove their invariant suite
	// has teeth. Never set in production paths.
	Broken bool
}

// NewDedupe returns an empty table.
func NewDedupe() *Dedupe { return &Dedupe{seen: make(map[int32]*Watermark)} }

// DedupeFromEntries rebuilds a table from checkpointed entries.
func DedupeFromEntries(entries []persist.DedupeEntry) *Dedupe {
	d := NewDedupe()
	for _, e := range entries {
		d.seen[e.SiteID] = &Watermark{Epoch: e.Epoch, MaxSeq: e.MaxSeq}
	}
	return d
}

// Admit runs the dedupe protocol for one versioned message and advances
// the watermark when the message is admitted. Messages with seq 0 (legacy
// v1) bypass the table and are always AdmitFresh.
func (d *Dedupe) Admit(siteID int32, epoch uint32, seq uint64) Verdict {
	if seq == 0 {
		return AdmitFresh
	}
	w := d.seen[siteID]
	if w == nil {
		w = &Watermark{}
		d.seen[siteID] = w
	}
	verdict := AdmitFresh
	switch {
	case epoch < w.Epoch:
		return DropStale
	case epoch > w.Epoch:
		if w.Epoch != 0 {
			verdict = AdmitNewEpoch
		}
		w.Epoch, w.MaxSeq = epoch, 0
	}
	if seq <= w.MaxSeq && !d.Broken {
		return DropDuplicate
	}
	if seq > w.MaxSeq {
		w.MaxSeq = seq
	}
	return verdict
}

// Watermark returns the high-water mark for one site (zero value when the
// site has never been applied) — what the restart handshake advertises.
func (d *Dedupe) Watermark(siteID int32) Watermark {
	if w := d.seen[siteID]; w != nil {
		return *w
	}
	return Watermark{}
}

// Entries exports the table sorted by SiteID, the checkpoint form.
func (d *Dedupe) Entries() []persist.DedupeEntry {
	out := make([]persist.DedupeEntry, 0, len(d.seen))
	for id, w := range d.seen {
		out = append(out, persist.DedupeEntry{SiteID: id, Epoch: w.Epoch, MaxSeq: w.MaxSeq})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SiteID < out[b].SiteID })
	return out
}

// Len returns the number of tracked sites.
func (d *Dedupe) Len() int { return len(d.seen) }
