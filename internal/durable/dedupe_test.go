package durable

import (
	"reflect"
	"testing"

	"cludistream/internal/persist"
)

func TestDedupeProtocol(t *testing.T) {
	d := NewDedupe()
	steps := []struct {
		site int32
		ep   uint32
		seq  uint64
		want Verdict
	}{
		{1, 1, 1, AdmitFresh},    // first frame from a site
		{1, 1, 2, AdmitFresh},    // in order
		{1, 1, 2, DropDuplicate}, // retransmit
		{1, 1, 1, DropDuplicate}, // late retransmit below the mark
		{1, 1, 5, AdmitFresh},    // gap is fine: the mark is a high-water, not a run
		{2, 1, 1, AdmitFresh},    // independent per site
		{1, 2, 1, AdmitNewEpoch}, // restart: higher epoch resets the seq space
		{1, 1, 9, DropStale},     // the dead incarnation's frames are refused
		{1, 2, 2, AdmitFresh},    // new incarnation proceeds
		{3, 0, 0, AdmitFresh},    // legacy v1 (seq 0) always bypasses
		{3, 0, 0, AdmitFresh},    // ... every time
	}
	for i, s := range steps {
		if got := d.Admit(s.site, s.ep, s.seq); got != s.want {
			t.Fatalf("step %d (site %d, epoch %d, seq %d): verdict %v, want %v", i, s.site, s.ep, s.seq, got, s.want)
		}
	}
	if wm := d.Watermark(1); wm != (Watermark{Epoch: 2, MaxSeq: 2}) {
		t.Fatalf("site 1 watermark = %+v", wm)
	}
	if wm := d.Watermark(99); wm != (Watermark{}) {
		t.Fatalf("unknown site watermark = %+v", wm)
	}
}

func TestDedupeFirstEpochIsNotAReset(t *testing.T) {
	// A site's very first frame carries epoch ≥ 1; that must admit as
	// fresh, not trigger a state reset for a site with no state.
	d := NewDedupe()
	if got := d.Admit(4, 3, 1); got != AdmitFresh {
		t.Fatalf("first contact at epoch 3: verdict %v, want AdmitFresh", got)
	}
}

func TestDedupeEntriesRoundTrip(t *testing.T) {
	d := NewDedupe()
	d.Admit(5, 2, 10)
	d.Admit(1, 1, 3)
	d.Admit(9, 1, 7)
	entries := d.Entries()
	want := []persist.DedupeEntry{
		{SiteID: 1, Epoch: 1, MaxSeq: 3},
		{SiteID: 5, Epoch: 2, MaxSeq: 10},
		{SiteID: 9, Epoch: 1, MaxSeq: 7},
	}
	if !reflect.DeepEqual(entries, want) {
		t.Fatalf("entries = %+v", entries)
	}
	r := DedupeFromEntries(entries)
	if r.Len() != 3 || !reflect.DeepEqual(r.Entries(), entries) {
		t.Fatal("DedupeFromEntries did not rebuild the table")
	}
	// The recovered table continues the protocol where the original left off.
	if got := r.Admit(5, 2, 10); got != DropDuplicate {
		t.Fatalf("recovered table re-admitted an applied frame: %v", got)
	}
	if got := r.Admit(5, 2, 11); got != AdmitFresh {
		t.Fatalf("recovered table refused the next frame: %v", got)
	}
}

func TestDedupeBrokenReappliesDuplicates(t *testing.T) {
	d := NewDedupe()
	d.Broken = true
	d.Admit(1, 1, 1)
	if got := d.Admit(1, 1, 1); got != AdmitFresh {
		t.Fatalf("broken table still deduped: %v", got)
	}
}
