package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"cludistream/internal/coordinator"
	"cludistream/internal/persist"
	"cludistream/internal/telemetry"
	"cludistream/internal/transport"
)

// Options tunes a Store. The zero value selects the defaults noted on
// each field.
type Options struct {
	// CheckpointEvery is how many applied records accumulate in the WAL
	// before NeedCheckpoint reports true (default 256). Smaller values
	// bound replay time; larger ones bound checkpoint I/O.
	CheckpointEvery int
	// Fsync selects WAL durability (default persist.FsyncAlways: an
	// acknowledged message is durable before the ack).
	Fsync persist.FsyncMode
	// FsyncInterval is the records-per-sync cadence for FsyncInterval
	// mode (default 32).
	FsyncInterval int
	// Telemetry, when non-nil, receives dur.* instruments and journal
	// events for checkpoints and recovery.
	Telemetry *telemetry.Registry
	// Logf receives replay-time apply errors (nil silences them).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 256
	}
	if o.Fsync == "" {
		o.Fsync = persist.FsyncAlways
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 32
	}
	return o
}

// Recovery reports what Open rebuilt from disk.
type Recovery struct {
	// Coord is the recovered coordinator (fresh when the directory was
	// empty).
	Coord *coordinator.Coordinator
	// Dedupe is the recovered exactly-once table.
	Dedupe *Dedupe
	// CheckpointLoaded reports whether a checkpoint file existed.
	CheckpointLoaded bool
	// RecordsReplayed is how many WAL records were re-applied.
	RecordsReplayed int
	// TornBytes is the length of the torn tail the WAL replay tolerated.
	TornBytes int
	// Applied is the recovered total of applied messages.
	Applied uint64
	// Duration is the wall-clock recovery time.
	Duration time.Duration
}

// storeTele holds the durability instruments (all nil ⇒ no-op).
type storeTele struct {
	reg         *telemetry.Registry
	checkpoints *telemetry.Counter
	ckptBytes   *telemetry.Counter
	walRecords  *telemetry.Counter
	walBytes    *telemetry.Counter
	replayed    *telemetry.Counter
	tornBytes   *telemetry.Counter
	recoverSecs *telemetry.Histogram
}

func newStoreTele(reg *telemetry.Registry) storeTele {
	if reg == nil {
		return storeTele{}
	}
	return storeTele{
		reg:         reg,
		checkpoints: reg.Counter("dur.checkpoints"),
		ckptBytes:   reg.Counter("dur.checkpoint_bytes"),
		walRecords:  reg.Counter("dur.wal_records"),
		walBytes:    reg.Counter("dur.wal_bytes"),
		replayed:    reg.Counter("dur.replayed"),
		tornBytes:   reg.Counter("dur.torn_bytes"),
		recoverSecs: reg.Histogram("dur.recover_seconds",
			0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5),
	}
}

// Store owns one state directory holding a checkpoint + WAL generation
// pair (checkpoint-N.ckpt / wal-N.log). Rotation is atomic: the new
// checkpoint is written to a temp file, synced, renamed, and only then is
// the old generation deleted — a crash at any point leaves a loadable
// pair on disk. Not safe for concurrent use; callers append and
// checkpoint under the lock that guards the coordinator.
type Store struct {
	dir       string
	opts      Options
	gen       uint64
	wal       *persist.WAL
	applied   uint64
	sinceCkpt int
	tele      storeTele
}

// Open recovers the latest durable state from dir (creating it if
// needed; an empty directory yields a fresh coordinator built from cfg),
// rotates to a new generation, and returns the armed store. cfg must
// match the deployment the state was persisted from.
func Open(dir string, cfg coordinator.Config, opts Options) (*Store, *Recovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	s := &Store{dir: dir, opts: opts, tele: newStoreTele(opts.Telemetry)}
	rec := &Recovery{}

	gen, ok, err := latestGeneration(dir)
	if err != nil {
		return nil, nil, err
	}
	if ok {
		st, err := loadCheckpoint(s.checkpointPath(gen))
		if err != nil {
			return nil, nil, fmt.Errorf("durable: checkpoint generation %d: %w", gen, err)
		}
		rec.Coord, err = coordinator.FromSnapshot(cfg, st.Snapshot)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: %w: %v", persist.ErrBadFormat, err)
		}
		rec.Dedupe = DedupeFromEntries(st.Dedupe)
		rec.Applied = st.Applied
		rec.CheckpointLoaded = true
		if err := s.replayWAL(gen, rec); err != nil {
			return nil, nil, err
		}
	} else {
		rec.Coord, err = coordinator.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		rec.Dedupe = NewDedupe()
	}
	s.gen = gen
	s.applied = rec.Applied

	// Rotate: persist the recovered state as the new generation so the
	// fresh WAL extends a checkpoint that is already on disk.
	if err := s.Checkpoint(rec.Coord, rec.Dedupe); err != nil {
		return nil, nil, err
	}
	rec.Duration = time.Since(start)
	s.tele.replayed.Add(int64(rec.RecordsReplayed))
	s.tele.tornBytes.Add(int64(rec.TornBytes))
	s.tele.recoverSecs.Observe(rec.Duration.Seconds())
	if s.tele.reg != nil {
		s.tele.reg.Record(telemetry.Event{
			Kind: "recover", N: rec.RecordsReplayed,
			Value: rec.Duration.Seconds(), Note: dir,
		})
	}
	return s, rec, nil
}

// replayWAL re-applies the WAL tail of generation gen to the recovered
// coordinator through the same dedupe-then-apply path the live server
// uses. A missing file (crash between checkpoint rename and WAL create)
// is an empty log; a torn tail is tolerated and counted.
func (s *Store) replayWAL(gen uint64, rec *Recovery) error {
	path := s.walPath(gen)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return nil
	}
	walGen, records, torn, err := persist.ReadWALFile(path)
	if err != nil {
		return fmt.Errorf("durable: WAL generation %d: %w", gen, err)
	}
	if walGen != gen {
		return fmt.Errorf("%w: WAL generation %d does not extend checkpoint %d", persist.ErrBadFormat, walGen, gen)
	}
	rec.TornBytes = torn
	for _, payload := range records {
		msg, err := transport.Decode(payload)
		if err != nil {
			// Records are CRC-framed, so an undecodable one was never
			// produced by the live apply path: refuse the state.
			return fmt.Errorf("durable: %w: WAL record undecodable: %v", persist.ErrBadFormat, err)
		}
		if err := ReplayApply(rec.Coord, rec.Dedupe, msg); err != nil && s.opts.Logf != nil {
			// Mirrors the live server: the watermark advanced, the apply
			// failed, delivery moved on. Replay must do the same.
			s.opts.Logf("durable: replay apply %v from site %d: %v", msg.Kind, msg.SiteID, err)
		}
		rec.Applied++
		rec.RecordsReplayed++
	}
	return nil
}

// ReplayApply runs one admitted-or-not message through the dedupe-then-
// apply sequence — the exact protocol netio.Server and the cludistream
// facade run live. Drop verdicts are silent no-ops so a WAL replay and a
// retransmitted frame behave identically.
func ReplayApply(coord *coordinator.Coordinator, ded *Dedupe, msg transport.Message) error {
	switch ded.Admit(msg.SiteID, msg.Epoch, msg.Seq) {
	case DropStale, DropDuplicate:
		return nil
	case AdmitNewEpoch:
		coord.ResetSite(int(msg.SiteID))
	}
	if msg.Kind == transport.MsgDeletion {
		return coord.HandleDeletion(int(msg.SiteID), int(msg.ModelID), int(msg.Count))
	}
	return coord.HandleUpdate(msg.ToSiteUpdate())
}

// Append logs one applied payload to the WAL.
func (s *Store) Append(payload []byte) error {
	if err := s.wal.Append(payload); err != nil {
		return err
	}
	s.applied++
	s.sinceCkpt++
	s.tele.walRecords.Inc()
	s.tele.walBytes.Add(int64(len(payload) + 8))
	return nil
}

// NeedCheckpoint reports whether the WAL has accumulated CheckpointEvery
// records since the last checkpoint.
func (s *Store) NeedCheckpoint() bool { return s.sinceCkpt >= s.opts.CheckpointEvery }

// Checkpoint writes the given live state as a new generation and rotates
// the WAL. On error the current generation stays armed and valid.
func (s *Store) Checkpoint(coord *coordinator.Coordinator, ded *Dedupe) error {
	next := s.gen + 1
	st := &persist.CoordinatorState{
		Applied:  s.applied,
		Snapshot: coord.Snapshot(),
		Dedupe:   ded.Entries(),
	}
	n, err := writeCheckpoint(s.checkpointPath(next), st)
	if err != nil {
		return err
	}
	wal, err := persist.CreateWAL(s.walPath(next), next, s.opts.Fsync, s.opts.FsyncInterval)
	if err != nil {
		os.Remove(s.checkpointPath(next))
		return err
	}
	prev := s.gen
	if s.wal != nil {
		s.wal.Close()
	}
	s.wal = wal
	s.gen = next
	s.sinceCkpt = 0
	// The new pair is durable; the old generation is now garbage.
	os.Remove(s.checkpointPath(prev))
	os.Remove(s.walPath(prev))
	syncDir(s.dir)
	s.tele.checkpoints.Inc()
	s.tele.ckptBytes.Add(n)
	if s.tele.reg != nil {
		s.tele.reg.Record(telemetry.Event{Kind: "checkpoint", N: int(s.applied), Value: float64(n)})
	}
	return nil
}

// Applied returns the total messages applied across the store's lifetime
// (recovered count plus appends).
func (s *Store) Applied() uint64 { return s.applied }

// Gen returns the current checkpoint generation.
func (s *Store) Gen() uint64 { return s.gen }

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

// WALRecords returns the records in the current WAL (replay length if the
// process died now).
func (s *Store) WALRecords() int { return s.wal.Records() }

// Close flushes and closes the WAL. It does not checkpoint; graceful
// shutdown paths call Checkpoint first so restart replays nothing.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// Crash abandons the store without flushing buffered WAL records — the
// test hook that models a process crash (see persist.WAL.Crash). With
// FsyncAlways nothing is buffered and recovery is lossless.
func (s *Store) Crash() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Crash()
	s.wal = nil
	return err
}

func (s *Store) checkpointPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("checkpoint-%016d.ckpt", gen))
}

func (s *Store) walPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%016d.log", gen))
}

// writeCheckpoint saves st to path atomically (temp + sync + rename),
// returning the byte size.
func writeCheckpoint(path string, st *persist.CoordinatorState) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	if err := persist.SaveCoordinatorState(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	info, _ := f.Stat()
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	var n int64
	if info != nil {
		n = info.Size()
	}
	return n, nil
}

// loadCheckpoint reads one checkpoint file.
func loadCheckpoint(path string) (*persist.CoordinatorState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return persist.LoadCoordinatorState(f)
}

// latestGeneration scans dir for the highest complete checkpoint
// generation, ignoring stray temp files from interrupted rotations.
func latestGeneration(dir string) (uint64, bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, false, err
	}
	var gens []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ckpt"), 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	if len(gens) == 0 {
		return 0, false, nil
	}
	sort.Slice(gens, func(a, b int) bool { return gens[a] < gens[b] })
	return gens[len(gens)-1], true, nil
}

// syncDir fsyncs a directory so renames and removals are durable
// (best-effort: not all platforms support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
}
