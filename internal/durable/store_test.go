package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/persist"
	"cludistream/internal/transport"
)

func coordCfg() coordinator.Config {
	return coordinator.Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}}
}

func mix(means ...float64) *gaussian.Mixture {
	w := make([]float64, len(means))
	comps := make([]*gaussian.Component, len(means))
	for i, m := range means {
		w[i] = 1 / float64(len(means))
		comps[i] = gaussian.Spherical(linalg.Vector{m}, 1)
	}
	return gaussian.MustMixture(w, comps)
}

func newModelMsg(siteID, modelID int32, seq uint64, means ...float64) transport.Message {
	return transport.Message{
		Kind: transport.MsgNewModel, SiteID: siteID, ModelID: modelID,
		Count: 100, Epoch: 1, Seq: seq, Mixture: mix(means...),
	}
}

func weightMsg(siteID, modelID int32, seq uint64, delta int64) transport.Message {
	return transport.Message{
		Kind: transport.MsgWeightUpdate, SiteID: siteID, ModelID: modelID,
		Count: delta, Epoch: 1, Seq: seq,
	}
}

// applyLive mirrors the server's apply protocol: WAL-append first, then
// dedupe-then-apply. A failed append would nack the frame, so nothing is
// applied that was not logged.
func applyLive(t *testing.T, s *Store, coord *coordinator.Coordinator, ded *Dedupe, msg transport.Message) {
	t.Helper()
	if err := s.Append(transport.Encode(msg)); err != nil {
		t.Fatal(err)
	}
	if err := ReplayApply(coord, ded, msg); err != nil {
		t.Fatal(err)
	}
}

// stateBytes canonicalizes (coordinator, dedupe, applied) to checkpoint
// bytes: the recovery contract is that these are equal before the crash
// and after, bit for bit.
func stateBytes(t *testing.T, coord *coordinator.Coordinator, ded *Dedupe, applied uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := persist.SaveCoordinatorState(&buf, &persist.CoordinatorState{
		Applied: applied, Snapshot: coord.Snapshot(), Dedupe: ded.Entries(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// feed applies a small but non-trivial message stream: two sites, three
// models, weight drift, and one duplicate frame (logged before dedupe,
// exactly as the live path logs it).
func feed(t *testing.T, s *Store, coord *coordinator.Coordinator, ded *Dedupe) {
	t.Helper()
	applyLive(t, s, coord, ded, newModelMsg(1, 1, 1, -5, 5))
	applyLive(t, s, coord, ded, newModelMsg(2, 1, 1, -5.1, 5.1))
	applyLive(t, s, coord, ded, weightMsg(1, 1, 2, 300))
	applyLive(t, s, coord, ded, newModelMsg(1, 2, 3, 40, 60))
	applyLive(t, s, coord, ded, weightMsg(2, 1, 2, 50))
	// A retransmitted frame reaches the WAL before the dedupe verdict
	// drops it; replay must drop it the same way.
	applyLive(t, s, coord, ded, weightMsg(2, 1, 2, 50))
}

const feedRecords = 6

func TestStoreFreshOpen(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if rec.CheckpointLoaded || rec.RecordsReplayed != 0 || rec.Applied != 0 {
		t.Fatalf("fresh open reported recovery work: %+v", rec)
	}
	if rec.Coord.NumModels() != 0 {
		t.Fatalf("fresh coordinator has %d models", rec.Coord.NumModels())
	}
	// Open rotates even a fresh directory to generation 1 so the armed
	// WAL always extends a checkpoint that is already on disk.
	if s.Gen() != 1 {
		t.Fatalf("gen = %d, want 1", s.Gen())
	}
	for _, name := range []string{"checkpoint-0000000000000001.ckpt", "wal-0000000000000001.log"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("generation pair incomplete: %v", err)
		}
	}
}

func TestStoreCrashReplayIsBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, rec.Coord, rec.Dedupe)
	want := stateBytes(t, rec.Coord, rec.Dedupe, s.Applied())
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !rec2.CheckpointLoaded {
		t.Fatal("recovery found no checkpoint")
	}
	if rec2.RecordsReplayed != feedRecords {
		t.Fatalf("replayed %d records, want %d", rec2.RecordsReplayed, feedRecords)
	}
	if rec2.Applied != feedRecords {
		t.Fatalf("recovered applied = %d, want %d", rec2.Applied, feedRecords)
	}
	if got := stateBytes(t, rec2.Coord, rec2.Dedupe, s2.Applied()); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs from pre-crash state (%d vs %d bytes)", len(got), len(want))
	}
}

func TestStoreCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, rec.Coord, rec.Dedupe)
	if err := s.Checkpoint(rec.Coord, rec.Dedupe); err != nil {
		t.Fatal(err)
	}
	if s.Gen() != 2 {
		t.Fatalf("gen = %d after rotation, want 2", s.Gen())
	}
	// The old generation is garbage once the new pair is durable.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("directory holds %d files after rotation, want the gen-2 pair", len(entries))
	}
	// Post-rotation appends land in the new WAL; recovery replays only
	// the tail, not the checkpointed prefix.
	applyLive(t, s, rec.Coord, rec.Dedupe, weightMsg(1, 1, 3, 25))
	want := stateBytes(t, rec.Coord, rec.Dedupe, s.Applied())
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	s2, rec2, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.RecordsReplayed != 1 {
		t.Fatalf("replayed %d records after a checkpoint, want 1", rec2.RecordsReplayed)
	}
	if rec2.Applied != feedRecords+1 {
		t.Fatalf("applied = %d, want %d", rec2.Applied, feedRecords+1)
	}
	if got := stateBytes(t, rec2.Coord, rec2.Dedupe, s2.Applied()); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs after rotation + crash")
	}
}

func TestStoreNeedCheckpoint(t *testing.T) {
	s, rec, err := Open(t.TempDir(), coordCfg(), Options{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	applyLive(t, s, rec.Coord, rec.Dedupe, newModelMsg(1, 1, 1, -5, 5))
	if s.NeedCheckpoint() {
		t.Fatal("NeedCheckpoint after 1 of 2 records")
	}
	applyLive(t, s, rec.Coord, rec.Dedupe, weightMsg(1, 1, 2, 10))
	if !s.NeedCheckpoint() {
		t.Fatal("NeedCheckpoint false after 2 of 2 records")
	}
	if err := s.Checkpoint(rec.Coord, rec.Dedupe); err != nil {
		t.Fatal(err)
	}
	if s.NeedCheckpoint() {
		t.Fatal("NeedCheckpoint still true after checkpointing")
	}
}

func TestStoreWALGenMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A WAL from the wrong generation extends a checkpoint we don't
	// have: replaying it would corrupt state, so Open must refuse.
	w, err := persist.CreateWAL(filepath.Join(dir, "wal-0000000000000001.log"), 9, persist.FsyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, coordCfg(), Options{}); !errors.Is(err, persist.ErrBadFormat) {
		t.Fatalf("gen-mismatched WAL accepted: %v", err)
	}
}

func TestStoreCorruptCheckpointRefused(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "checkpoint-0000000000000001.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, coordCfg(), Options{}); !errors.Is(err, persist.ErrBadFormat) {
		t.Fatalf("corrupt checkpoint accepted: %v", err)
	}
}

func TestStoreMissingWALIsEmptyLog(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, rec.Coord, rec.Dedupe)
	if err := s.Checkpoint(rec.Coord, rec.Dedupe); err != nil {
		t.Fatal(err)
	}
	want := stateBytes(t, rec.Coord, rec.Dedupe, s.Applied())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash between checkpoint rename and WAL create leaves no log
	// file; recovery treats that as an empty tail.
	if err := os.Remove(filepath.Join(dir, fmt.Sprintf("wal-%016d.log", s.Gen()))); err != nil {
		t.Fatal(err)
	}
	s2, rec2, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.RecordsReplayed != 0 {
		t.Fatalf("replayed %d records from a missing WAL", rec2.RecordsReplayed)
	}
	if got := stateBytes(t, rec2.Coord, rec2.Dedupe, s2.Applied()); !bytes.Equal(got, want) {
		t.Fatal("state diverged recovering from a checkpoint alone")
	}
}

func TestStoreTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, rec.Coord, rec.Dedupe)
	want := stateBytes(t, rec.Coord, rec.Dedupe, s.Applied())
	gen := s.Gen()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a frame at the end of the log.
	f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("wal-%016d.log", gen)), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0xFF, 0x00}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec2, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.TornBytes != 3 {
		t.Fatalf("torn bytes = %d, want 3", rec2.TornBytes)
	}
	if rec2.RecordsReplayed != feedRecords {
		t.Fatalf("replayed %d records, want %d", rec2.RecordsReplayed, feedRecords)
	}
	if got := stateBytes(t, rec2.Coord, rec2.Dedupe, s2.Applied()); !bytes.Equal(got, want) {
		t.Fatal("torn-tail recovery diverged from pre-crash state")
	}
}

// TestStoreEpochResetSurvivesReplay: a site restart (higher epoch) resets
// the dead incarnation's state; replaying the same stream must reproduce
// the reset exactly.
func TestStoreEpochResetSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	applyLive(t, s, rec.Coord, rec.Dedupe, newModelMsg(1, 1, 1, -5, 5))
	epoch2 := newModelMsg(1, 1, 1, -50, 50)
	epoch2.Epoch = 2
	applyLive(t, s, rec.Coord, rec.Dedupe, epoch2)
	want := stateBytes(t, rec.Coord, rec.Dedupe, s.Applied())
	if wm := rec.Dedupe.Watermark(1); wm.Epoch != 2 {
		t.Fatalf("watermark epoch = %d, want 2", wm.Epoch)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	s2, rec2, err := Open(dir, coordCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := stateBytes(t, rec2.Coord, rec2.Dedupe, s2.Applied()); !bytes.Equal(got, want) {
		t.Fatal("epoch reset did not survive replay")
	}
}
