package em

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/telemetry"
)

// CovType selects the covariance structure EM estimates.
type CovType int

const (
	// FullCov estimates a full d×d covariance per component.
	FullCov CovType = iota
	// DiagCov estimates a diagonal covariance per component — the memory
	// optimization Theorem 3 mentions ("for diagonal Gaussians, the
	// covariance can be represented by a d-dimensional vector").
	DiagCov
)

func (c CovType) String() string {
	if c == DiagCov {
		return "diag"
	}
	return "full"
}

// Config parameterizes a Fit run. The zero value is not usable: K must be
// at least 1. Defaults are filled in by (*Config).withDefaults.
type Config struct {
	// K is the number of mixture components (the paper's K, default 5).
	K int
	// MaxIter caps EM iterations (default 100).
	MaxIter int
	// Tol is ϖ, the paper's convergence threshold on the change in average
	// log-likelihood between consecutive iterations (default 1e-4). The
	// paper applies ϖ to the total log-likelihood; we use the average so
	// the same tolerance works across chunk sizes.
	Tol float64
	// RelTol, when positive, adds a relative convergence test alongside the
	// absolute one: EM also stops once |avgLL − prev| ≤ RelTol·|prev| (prev
	// finite). Warm-started refits sit close to a mode from iteration 0,
	// where the absolute Tol can be needlessly strict on streams whose
	// log-likelihood scale is large; the relative test ends those runs as
	// soon as the improvement is negligible at the likelihood's own scale.
	// Zero (the default) disables it, keeping pre-existing fits bit-identical.
	RelTol float64
	// CovType selects full or diagonal covariances.
	CovType CovType
	// MinVar floors every covariance diagonal (default 1e-6).
	MinVar float64
	// Seed drives initialization. The same seed and data give bitwise
	// identical results.
	Seed int64
	// InitMeans optionally warm-starts the component means (length K).
	// When set, k-means++ is skipped.
	InitMeans []linalg.Vector
	// InitModel optionally warm-starts EM from a full existing mixture
	// (weights, means and covariances); it takes precedence over InitMeans.
	// This is how SEM continues from its current model on every refit.
	InitModel *gaussian.Mixture
	// Workers caps the worker goroutines of the fused E+M pass (0 ⇒
	// GOMAXPROCS). The pass shards the data on fixed boundaries and reduces
	// partial statistics in fixed order, so the fitted mixture is
	// bit-identical at every worker count; Workers only trades wall-clock
	// for cores. Embedders that already parallelize across sites (the
	// parallel package, the daemons) pin this to 1 to avoid oversubscription.
	Workers int
	// Telemetry, when non-nil, receives per-fit counters (runs, iteration
	// totals, convergence outcomes) and an "em-fit" journal event with the
	// final average log-likelihood. Purely observational: it reads values
	// the fit computed anyway and never touches the rng, so fitted
	// mixtures are bit-identical with or without it.
	Telemetry *telemetry.Registry
	// TraceID and TraceParent attach the fit to a chunk's causal trace
	// (see internal/telemetry tracing): when Telemetry has tracing enabled
	// and TraceID is non-zero, Fit records an "em" span under TraceParent
	// carrying the iteration count. Zeros (the default) record nothing.
	TraceID     uint64
	TraceParent uint64
}

// converged reports whether the change from prev to avgLL satisfies the
// absolute Tol or, when RelTol is set and prev is finite, the relative test.
func (c Config) converged(avgLL, prev float64) bool {
	delta := math.Abs(avgLL - prev)
	if delta <= c.Tol {
		return true
	}
	return c.RelTol > 0 && !math.IsInf(prev, 0) && delta <= c.RelTol*math.Abs(prev)
}

func (c Config) withDefaults() Config {
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
	if c.MinVar <= 0 {
		c.MinVar = 1e-6
	}
	return c
}

// Result is the outcome of an EM fit.
type Result struct {
	Mixture *gaussian.Mixture
	// AvgLogLikelihood is Definition 1 evaluated on the training data under
	// the final model — the Avg_Pr0 that the site's J_fit test compares
	// future chunks against.
	AvgLogLikelihood float64
	Iterations       int
	Converged        bool
}

// ErrNotEnoughData is returned when there are fewer records than
// components.
var ErrNotEnoughData = errors.New("em: fewer records than components")

// Fit runs the Gaussian-mixture EM algorithm of Section 3.2 on data.
func Fit(data []linalg.Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		return nil, fmt.Errorf("em: K = %d, need at least 1", cfg.K)
	}
	n := len(data)
	if n < cfg.K {
		return nil, ErrNotEnoughData
	}
	d := len(data[0])
	for i, x := range data {
		if len(x) != d {
			return nil, fmt.Errorf("em: record %d has dim %d, want %d", i, len(x), d)
		}
		if !x.IsFinite() {
			return nil, fmt.Errorf("em: record %d is not finite", i)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	span := cfg.Telemetry.Tracer().Begin(cfg.TraceID, cfg.TraceParent, "em", 0, 0)

	mix, err := initialModel(data, cfg, rng)
	if err != nil {
		return nil, err
	}

	stats := make([]*SuffStats, cfg.K)
	for j := range stats {
		stats[j] = NewSuffStats(d)
	}
	ws := newEWorkspace(n, d, cfg.K, cfg.Workers)

	prevAvgLL := math.Inf(-1)
	var iter int
	converged := false
	avgLL := 0.0
	for iter = 0; iter < cfg.MaxIter; iter++ {
		// Fused E+M pass (standard EM fusion — one pass over the data):
		// batched posteriors and sufficient statistics, sharded across
		// workers with a deterministic fixed-order reduction.
		avgLL = ws.eStep(data, mix, stats) / float64(n)

		// M-step: rebuild the mixture from the statistics.
		mix, err = modelFromStats(stats, data, cfg, rng)
		if err != nil {
			return nil, err
		}

		if cfg.converged(avgLL, prevAvgLL) {
			converged = true
			iter++
			break
		}
		prevAvgLL = avgLL
	}

	res := &Result{
		Mixture:          mix,
		AvgLogLikelihood: mix.AvgLogLikelihood(data),
		Iterations:       iter,
		Converged:        converged,
	}
	if converged {
		span.End(iter, "converged")
	} else {
		span.End(iter, "max-iter")
	}
	recordFit(cfg, "em-fit", res)
	return res, nil
}

// recordFit publishes one fit's outcome to cfg.Telemetry; a no-op when no
// registry is configured.
func recordFit(cfg Config, kind string, res *Result) {
	reg := cfg.Telemetry
	if reg == nil {
		return
	}
	reg.Counter("em.fits").Inc()
	reg.Counter("em.iterations").Add(int64(res.Iterations))
	if res.Converged {
		reg.Counter("em.converged").Inc()
	} else {
		reg.Counter("em.nonconverged").Inc()
	}
	reg.Histogram("em.iterations_per_fit", 2, 5, 10, 20, 50, 100).
		Observe(float64(res.Iterations))
	note := "converged"
	if !res.Converged {
		note = "max-iter"
	}
	reg.Record(telemetry.Event{
		Kind: kind, Value: res.AvgLogLikelihood, N: res.Iterations, Note: note,
	})
}

// FitStats runs EM where the "data set" is a collection of weighted
// sufficient-statistic blocks instead of raw records — the extended EM of
// the SEM baseline [6]. Each block is treated as mass concentrated at its
// mean with its own within-block scatter folded into the M-step, which is
// exact when block members share a posterior (the compression invariant).
func FitStats(blocks []*SuffStats, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		return nil, fmt.Errorf("em: K = %d, need at least 1", cfg.K)
	}
	var nonEmpty []*SuffStats
	for _, b := range blocks {
		if b.W > 0 {
			nonEmpty = append(nonEmpty, b)
		}
	}
	if len(nonEmpty) < cfg.K {
		return nil, ErrNotEnoughData
	}
	d := nonEmpty[0].Dim()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Initialize from block means (weighted k-means++ would be nicer; block
	// means with plain k-means++ is adequate and deterministic).
	means := make([]linalg.Vector, len(nonEmpty))
	for i, b := range nonEmpty {
		means[i] = b.Mean()
	}
	var mix *gaussian.Mixture
	if cfg.InitModel != nil {
		if cfg.InitModel.K() != cfg.K || cfg.InitModel.Dim() != d {
			return nil, fmt.Errorf("em: InitModel is K=%d d=%d, want K=%d d=%d",
				cfg.InitModel.K(), cfg.InitModel.Dim(), cfg.K, d)
		}
		mix = cfg.InitModel
	} else {
		centers := kMeansPlusPlus(means, cfg.K, rng)
		assign := hardAssign(means, centers)
		agg := make([]*SuffStats, cfg.K)
		for j := range agg {
			agg[j] = NewSuffStats(d)
		}
		for i, b := range nonEmpty {
			agg[assign[i]].Merge(b)
		}
		var err error
		mix, err = mixtureFromAggregates(agg, nonEmpty, cfg, rng)
		if err != nil {
			return nil, err
		}
	}

	stats := make([]*SuffStats, cfg.K)
	for j := range stats {
		stats[j] = NewSuffStats(d)
	}
	var totalW float64
	for _, b := range nonEmpty {
		totalW += b.W
	}

	// The block means are fixed across iterations, so the E-step scores
	// them through the batched kernel with reusable scratch.
	postM := linalg.NewMatrix(0, 0)
	logpdf := make([]float64, len(nonEmpty))
	scratch := gaussian.NewBatchScratch()

	prevAvgLL := math.Inf(-1)
	converged := false
	var iter int
	for iter = 0; iter < cfg.MaxIter; iter++ {
		for j := range stats {
			stats[j].Reset()
		}
		mix.PosteriorBatch(means, postM, logpdf, scratch)
		var sumLL float64
		for i, b := range nonEmpty {
			sumLL += b.W * logpdf[i]
			row := postM.Row(i)
			for j := 0; j < cfg.K; j++ {
				if row[j] <= 0 {
					continue
				}
				// Scale the whole block (including within-block scatter)
				// by the block's responsibility at its mean.
				stats[j].W += row[j] * b.W
				stats[j].Sum.AXPYInPlace(row[j], b.Sum)
				stats[j].Scatter.AddSym(row[j], b.Scatter)
			}
		}
		avgLL := sumLL / totalW

		var err error
		mix, err = mixtureFromAggregates(stats, nonEmpty, cfg, rng)
		if err != nil {
			return nil, err
		}
		if cfg.converged(avgLL, prevAvgLL) {
			converged = true
			iter++
			break
		}
		prevAvgLL = avgLL
	}

	// Average log-likelihood of the final model over block means.
	mix.ScoreBatch(means, logpdf, scratch)
	var sumLL float64
	for i, b := range nonEmpty {
		sumLL += b.W * logpdf[i]
	}
	res := &Result{
		Mixture:          mix,
		AvgLogLikelihood: sumLL / totalW,
		Iterations:       iter,
		Converged:        converged,
	}
	recordFit(cfg, "em-fit-stats", res)
	return res, nil
}

// initialModel builds the iteration-0 mixture: k-means++ centers (or the
// provided warm start), hard assignments, and per-cluster moments.
func initialModel(data []linalg.Vector, cfg Config, rng *rand.Rand) (*gaussian.Mixture, error) {
	d := len(data[0])
	if cfg.InitModel != nil {
		if cfg.InitModel.K() != cfg.K || cfg.InitModel.Dim() != d {
			return nil, fmt.Errorf("em: InitModel is K=%d d=%d, want K=%d d=%d",
				cfg.InitModel.K(), cfg.InitModel.Dim(), cfg.K, d)
		}
		return cfg.InitModel, nil
	}
	var centers []linalg.Vector
	if cfg.InitMeans != nil {
		if len(cfg.InitMeans) != cfg.K {
			return nil, fmt.Errorf("em: %d InitMeans for K=%d", len(cfg.InitMeans), cfg.K)
		}
		centers = cfg.InitMeans
	} else {
		centers = kMeansPlusPlus(data, cfg.K, rng)
	}
	assign := hardAssign(data, centers)
	stats := make([]*SuffStats, cfg.K)
	for j := range stats {
		stats[j] = NewSuffStats(d)
	}
	for i, x := range data {
		stats[assign[i]].Add(x, 1)
	}
	return modelFromStats(stats, data, cfg, rng)
}

// modelFromStats is the M-step: weights, means and covariances from the
// per-component sufficient statistics. Empty or near-empty components are
// re-seeded at a random record with the global covariance so EM can recover
// rather than divide by zero.
func modelFromStats(stats []*SuffStats, data []linalg.Vector, cfg Config, rng *rand.Rand) (*gaussian.Mixture, error) {
	k := len(stats)
	var totalW float64
	for _, s := range stats {
		totalW += s.W
	}
	weights := make([]float64, k)
	comps := make([]*gaussian.Component, k)
	for j, s := range stats {
		if s.W < 1e-9 {
			// Dead component: restart it at a random record.
			mean := data[rng.Intn(len(data))].Clone()
			cov := globalCov(data, cfg.MinVar)
			c, err := gaussian.NewComponent(mean, cov, cfg.MinVar)
			if err != nil {
				return nil, err
			}
			comps[j] = c
			weights[j] = 1 / float64(len(data))
			continue
		}
		mean := s.Mean()
		cov := s.Cov(cfg.MinVar)
		if cfg.CovType == DiagCov {
			cov = linalg.Diagonal(cov.Diag())
		}
		c, err := gaussian.NewComponent(mean, cov, cfg.MinVar)
		if err != nil {
			return nil, err
		}
		comps[j] = c
		weights[j] = s.W / totalW
	}
	return gaussian.NewMixture(weights, comps)
}

// mixtureFromAggregates is modelFromStats for the block-based extended EM:
// dead components restart at a random block mean.
func mixtureFromAggregates(stats []*SuffStats, blocks []*SuffStats, cfg Config, rng *rand.Rand) (*gaussian.Mixture, error) {
	k := len(stats)
	var totalW float64
	for _, s := range stats {
		totalW += s.W
	}
	weights := make([]float64, k)
	comps := make([]*gaussian.Component, k)
	for j, s := range stats {
		if s.W < 1e-9 {
			b := blocks[rng.Intn(len(blocks))]
			mean := b.Mean()
			cov := b.Cov(cfg.MinVar)
			c, err := gaussian.NewComponent(mean, cov, cfg.MinVar)
			if err != nil {
				return nil, err
			}
			comps[j] = c
			weights[j] = 1e-6
			continue
		}
		mean := s.Mean()
		cov := s.Cov(cfg.MinVar)
		if cfg.CovType == DiagCov {
			cov = linalg.Diagonal(cov.Diag())
		}
		c, err := gaussian.NewComponent(mean, cov, cfg.MinVar)
		if err != nil {
			return nil, err
		}
		comps[j] = c
		weights[j] = s.W / totalW
	}
	return gaussian.NewMixture(weights, comps)
}

// globalCov returns the covariance of the full data set, used to re-seed
// dead components.
func globalCov(data []linalg.Vector, minVar float64) *linalg.Sym {
	d := len(data[0])
	s := NewSuffStats(d)
	for _, x := range data {
		s.Add(x, 1)
	}
	return s.Cov(minVar)
}
