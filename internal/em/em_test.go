package em

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// genMixtureData samples n points from the given means with unit-ish
// spherical noise, returning the data and the true mixture.
func genMixtureData(rng *rand.Rand, means []linalg.Vector, variance float64, n int) ([]linalg.Vector, *gaussian.Mixture) {
	comps := make([]*gaussian.Component, len(means))
	ws := make([]float64, len(means))
	for i, mu := range means {
		comps[i] = gaussian.Spherical(mu, variance)
		ws[i] = 1
	}
	mix := gaussian.MustMixture(ws, comps)
	return mix.SampleN(rng, n), mix
}

func TestFitRecoversWellSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	means := []linalg.Vector{{-10, 0}, {0, 10}, {10, 0}}
	data, _ := genMixtureData(rng, means, 1, 3000)
	res, err := Fit(data, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("EM did not converge")
	}
	// Each true mean must be close to some fitted mean.
	for _, mu := range means {
		best := math.Inf(1)
		for j := 0; j < 3; j++ {
			if d := mu.DistSq(res.Mixture.Component(j).Mean()); d < best {
				best = d
			}
		}
		if best > 0.1 {
			t.Errorf("true mean %v not recovered (nearest dist² %v)", mu, best)
		}
	}
	// Weights roughly uniform.
	for _, w := range res.Mixture.Weights() {
		if w < 0.25 || w > 0.42 {
			t.Errorf("weight %v far from 1/3", w)
		}
	}
}

func TestFitMonotoneLikelihood(t *testing.T) {
	// The log likelihood of the model is non-decreasing at each iteration
	// [3]. We approximate the check by fitting with increasing MaxIter and
	// requiring the final avg LL to be non-decreasing (same seed = same
	// trajectory).
	rng := rand.New(rand.NewSource(72))
	means := []linalg.Vector{{-3}, {3}}
	data, _ := genMixtureData(rng, means, 1, 800)
	prev := math.Inf(-1)
	for iters := 1; iters <= 30; iters += 3 {
		res, err := Fit(data, Config{K: 2, Seed: 5, MaxIter: iters, Tol: 1e-15})
		if err != nil {
			t.Fatal(err)
		}
		ll := res.Mixture.AvgLogLikelihood(data)
		if ll < prev-1e-9 {
			t.Fatalf("avg LL decreased: %v -> %v at MaxIter=%d", prev, ll, iters)
		}
		prev = ll
	}
}

func TestFitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	data, _ := genMixtureData(rng, []linalg.Vector{{-2}, {2}}, 1, 400)
	r1, err1 := Fit(data, Config{K: 2, Seed: 9})
	r2, err2 := Fit(data, Config{K: 2, Seed: 9})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for j := 0; j < 2; j++ {
		if !r1.Mixture.Component(j).Equal(r2.Mixture.Component(j), 0) {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestFitBeatsSingleGaussianOnBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	data, _ := genMixtureData(rng, []linalg.Vector{{-5}, {5}}, 1, 1000)
	r2, err := Fit(data, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Fit(data, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r2.AvgLogLikelihood <= r1.AvgLogLikelihood {
		t.Fatalf("K=2 LL %v should beat K=1 LL %v on bimodal data", r2.AvgLogLikelihood, r1.AvgLogLikelihood)
	}
}

func TestFitDiagCov(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	data, _ := genMixtureData(rng, []linalg.Vector{{-4, 0}, {4, 0}}, 1, 1000)
	res, err := Fit(data, Config{K: 2, Seed: 1, CovType: DiagCov})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		cov := res.Mixture.Component(j).Cov()
		if math.Abs(cov.At(0, 1)) > 1e-12 {
			t.Fatalf("DiagCov produced off-diagonal %v", cov.At(0, 1))
		}
	}
}

func TestFitErrors(t *testing.T) {
	data := []linalg.Vector{{1}, {2}}
	if _, err := Fit(data, Config{K: 0}); err == nil {
		t.Error("K=0 should error")
	}
	if _, err := Fit(data, Config{K: 5}); err != ErrNotEnoughData {
		t.Errorf("too-few-records err = %v", err)
	}
	if _, err := Fit([]linalg.Vector{{1}, {2, 3}}, Config{K: 1}); err == nil {
		t.Error("ragged data should error")
	}
	if _, err := Fit([]linalg.Vector{{math.NaN()}, {1}}, Config{K: 1}); err == nil {
		t.Error("NaN data should error")
	}
	if _, err := Fit(data, Config{K: 1, InitMeans: []linalg.Vector{{0}, {1}}}); err == nil {
		t.Error("InitMeans length mismatch should error")
	}
}

func TestFitWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	data, _ := genMixtureData(rng, []linalg.Vector{{-6}, {6}}, 1, 600)
	res, err := Fit(data, Config{K: 2, Seed: 1, InitMeans: []linalg.Vector{{-6}, {6}}})
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{res.Mixture.Component(0).Mean()[0], res.Mixture.Component(1).Mean()[0]}
	sort.Float64s(got)
	if math.Abs(got[0]+6) > 0.3 || math.Abs(got[1]-6) > 0.3 {
		t.Fatalf("warm-started means = %v", got)
	}
}

func TestFitInitModelWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	data, truth := genMixtureData(rng, []linalg.Vector{{-6}, {6}}, 1, 600)
	res, err := Fit(data, Config{K: 2, Seed: 1, InitModel: truth})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("warm-started EM did not converge")
	}
	// Starting at the truth, EM should converge in very few iterations.
	if res.Iterations > 10 {
		t.Errorf("warm start took %d iterations", res.Iterations)
	}
	// Mismatched InitModel must error.
	if _, err := Fit(data, Config{K: 3, Seed: 1, InitModel: truth}); err == nil {
		t.Error("K-mismatched InitModel accepted")
	}
}

func TestFitIdenticalPoints(t *testing.T) {
	// Degenerate data: all records identical. MinVar must keep Σ PD.
	data := make([]linalg.Vector, 50)
	for i := range data {
		data[i] = linalg.Vector{1, 2}
	}
	res, err := Fit(data, Config{K: 1, Seed: 1, MinVar: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mixture.Component(0).Mean().Equal(linalg.Vector{1, 2}, 1e-9) {
		t.Fatalf("mean = %v", res.Mixture.Component(0).Mean())
	}
	if v := res.Mixture.Component(0).Cov().At(0, 0); v < 1e-4-1e-12 {
		t.Fatalf("variance %v below floor", v)
	}
}

func TestFitKEqualsN(t *testing.T) {
	data := []linalg.Vector{{0}, {5}, {10}}
	res, err := Fit(data, Config{K: 3, Seed: 2, MinVar: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mixture.K() != 3 {
		t.Fatalf("K = %d", res.Mixture.K())
	}
}

func TestFitStatsMatchesRawFit(t *testing.T) {
	// Feeding each record as its own block must reproduce raw EM closely.
	rng := rand.New(rand.NewSource(77))
	data, _ := genMixtureData(rng, []linalg.Vector{{-5}, {5}}, 1, 500)
	blocks := make([]*SuffStats, len(data))
	for i, x := range data {
		b := NewSuffStats(1)
		b.Add(x, 1)
		blocks[i] = b
	}
	raw, err := Fit(data, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	blk, err := FitStats(blocks, Config{K: 2, Seed: 3, MinVar: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	// Same data partitioned per-record: models should agree on where the
	// two modes are (order may differ).
	rawMeans := []float64{raw.Mixture.Component(0).Mean()[0], raw.Mixture.Component(1).Mean()[0]}
	blkMeans := []float64{blk.Mixture.Component(0).Mean()[0], blk.Mixture.Component(1).Mean()[0]}
	sort.Float64s(rawMeans)
	sort.Float64s(blkMeans)
	for i := range rawMeans {
		if math.Abs(rawMeans[i]-blkMeans[i]) > 0.5 {
			t.Fatalf("block means %v vs raw %v", blkMeans, rawMeans)
		}
	}
}

func TestFitStatsAggregatedBlocks(t *testing.T) {
	// Pre-aggregated blocks (one per true cluster) must recover the modes.
	rng := rand.New(rand.NewSource(78))
	left := NewSuffStats(1)
	right := NewSuffStats(1)
	for i := 0; i < 500; i++ {
		left.Add(linalg.Vector{-5 + rng.NormFloat64()}, 1)
		right.Add(linalg.Vector{5 + rng.NormFloat64()}, 1)
	}
	res, err := FitStats([]*SuffStats{left, right}, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	means := []float64{res.Mixture.Component(0).Mean()[0], res.Mixture.Component(1).Mean()[0]}
	sort.Float64s(means)
	if math.Abs(means[0]+5) > 0.3 || math.Abs(means[1]-5) > 0.3 {
		t.Fatalf("means = %v", means)
	}
}

func TestFitStatsErrors(t *testing.T) {
	if _, err := FitStats(nil, Config{K: 1}); err != ErrNotEnoughData {
		t.Errorf("err = %v", err)
	}
	empty := NewSuffStats(2)
	if _, err := FitStats([]*SuffStats{empty}, Config{K: 1}); err != ErrNotEnoughData {
		t.Errorf("all-empty err = %v", err)
	}
	if _, err := FitStats([]*SuffStats{empty}, Config{K: 0}); err == nil {
		t.Error("K=0 should error")
	}
}

func TestFitRelTol(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	// Overlapping clusters: absolute-tolerance EM grinds through a long
	// likelihood plateau that a relative stop cuts short.
	data, _ := genMixtureData(rng, []linalg.Vector{{-1.5}, {1.5}}, 1, 800)
	strict, err := Fit(data, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Fit(data, Config{K: 2, Seed: 3, RelTol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Iterations > strict.Iterations {
		t.Fatalf("RelTol fit took %d iterations, absolute-only took %d",
			loose.Iterations, strict.Iterations)
	}
	if math.IsNaN(loose.AvgLogLikelihood) || math.IsInf(loose.AvgLogLikelihood, 0) {
		t.Fatalf("RelTol log-likelihood = %v", loose.AvgLogLikelihood)
	}
	// The early stop may shave only plateau iterations: the final
	// likelihoods must agree to well within the relative tolerance band.
	if rel := math.Abs(loose.AvgLogLikelihood-strict.AvgLogLikelihood) /
		math.Abs(strict.AvgLogLikelihood); rel > 1e-2 {
		t.Fatalf("RelTol changed log-likelihood by %v relative", rel)
	}
	// RelTol: 0 (the default) must leave fits bit-identical.
	again, err := Fit(data, Config{K: 2, Seed: 3, RelTol: 0})
	if err != nil {
		t.Fatal(err)
	}
	if again.Iterations != strict.Iterations ||
		again.AvgLogLikelihood != strict.AvgLogLikelihood {
		t.Fatal("RelTol=0 altered the fit")
	}
}

func TestFitRelTolFirstIteration(t *testing.T) {
	// prev log-likelihood starts at -Inf; |Inf delta| <= RelTol*Inf is true
	// in float math, so an unguarded relative test would declare
	// convergence after a single iteration. Even an absurd RelTol must run
	// at least two.
	rng := rand.New(rand.NewSource(82))
	data, _ := genMixtureData(rng, []linalg.Vector{{-5}, {5}}, 1, 400)
	res, err := Fit(data, Config{K: 2, Seed: 3, RelTol: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("RelTol=1 converged after %d iteration(s)", res.Iterations)
	}
}

func TestFitInitModelDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	data, _ := genMixtureData(rng, []linalg.Vector{{-5}, {5}}, 1, 200)
	_, wrongDim := genMixtureData(rng, []linalg.Vector{{-5, 0}, {5, 0}}, 1, 4)
	if _, err := Fit(data, Config{K: 2, Seed: 1, InitModel: wrongDim}); err == nil {
		t.Error("dim-mismatched InitModel accepted")
	}
}

func TestFitInitModelNearSingular(t *testing.T) {
	// A warm-start seed may carry a collapsed component (e.g. an archived
	// model of a vanished regime). EM must reseed it from the data — the
	// dead-component path — and converge to a finite fit, never NaN.
	rng := rand.New(rand.NewSource(84))
	data, _ := genMixtureData(rng, []linalg.Vector{{-4}, {4}}, 1, 600)
	seed := gaussian.MustMixture(
		[]float64{0.5, 0.5},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{-4}, 1),
			gaussian.Spherical(linalg.Vector{1000}, 1e-12), // collapsed, off-data
		})
	res, err := Fit(data, Config{K: 2, Seed: 1, InitModel: seed})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.AvgLogLikelihood) || math.IsInf(res.AvgLogLikelihood, 0) {
		t.Fatalf("near-singular warm start log-likelihood = %v", res.AvgLogLikelihood)
	}
	for j := 0; j < res.Mixture.K(); j++ {
		c := res.Mixture.Component(j)
		for _, v := range c.Mean() {
			if math.IsNaN(v) {
				t.Fatalf("component %d mean has NaN: %v", j, c.Mean())
			}
		}
		if w := res.Mixture.Weight(j); math.IsNaN(w) || w <= 0 {
			t.Fatalf("component %d weight = %v", j, w)
		}
	}
}
