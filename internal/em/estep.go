package em

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// eShardSize is the fixed number of records per E-step shard. Shard
// boundaries depend only on the data length — never on the worker count —
// and the per-shard partial statistics are reduced in ascending shard
// order, so the fused E+M pass produces bit-identical results whether it
// runs on 1 worker or 64. (Floating-point accumulation is not associative;
// a worker-count-dependent partition would make chaos tests and figure
// tables flap with GOMAXPROCS.) 256 records keeps a shard's posterior
// tile and scratch panels comfortably inside L2 while leaving enough
// shards to balance load.
const eShardSize = 256

// eShard holds one shard's partial fused E+M results.
type eShard struct {
	stats []*SuffStats
	sumLL float64
}

// workerState is the per-worker scratch of the parallel E-step; workers
// never share mutable state, so the pass is data-race-free by
// construction.
type workerState struct {
	batch *gaussian.BatchScratch
	post  *linalg.Matrix
}

// eWorkspace owns the shard accumulators and per-worker scratch across EM
// iterations, so the parallel pass allocates only on the first iteration.
type eWorkspace struct {
	workers int
	shards  []eShard
	states  []*workerState
}

// newEWorkspace sizes a workspace for n records of dimension d with k
// components, running on the requested worker count (0 ⇒ GOMAXPROCS).
func newEWorkspace(n, d, k, workers int) *eWorkspace {
	numShards := (n + eShardSize - 1) / eShardSize
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numShards {
		workers = numShards
	}
	if workers < 1 {
		workers = 1
	}
	ws := &eWorkspace{workers: workers}
	ws.shards = make([]eShard, numShards)
	for s := range ws.shards {
		ws.shards[s].stats = make([]*SuffStats, k)
		for j := range ws.shards[s].stats {
			ws.shards[s].stats[j] = NewSuffStats(d)
		}
	}
	ws.states = make([]*workerState, workers)
	for w := range ws.states {
		ws.states[w] = &workerState{
			batch: gaussian.NewBatchScratch(),
			post:  linalg.NewMatrix(0, 0),
		}
	}
	return ws
}

// runShard computes shard si: batched posteriors over its record range and
// the shard-local sufficient statistics, accumulated in record order.
func (ws *eWorkspace) runShard(si int, data []linalg.Vector, mix *gaussian.Mixture, st *workerState) {
	k := mix.K()
	lo := si * eShardSize
	hi := min(lo+eShardSize, len(data))
	xs := data[lo:hi]
	sh := &ws.shards[si]
	for j := range sh.stats {
		sh.stats[j].Reset()
	}
	sh.sumLL = mix.PosteriorBatch(xs, st.post, nil, st.batch)
	post := st.post.Data()
	for p, x := range xs {
		row := post[p*k : p*k+k]
		for j, r := range row {
			if r > 0 {
				sh.stats[j].Add(x, r)
			}
		}
	}
}

// eStep runs one fused E+M accumulation pass over data under mix: shards
// are computed concurrently (pulled off an atomic counter by ws.workers
// goroutines), then reduced into stats in fixed ascending shard order. It
// returns Σ log p(x). The reduction order and shard boundaries are
// independent of the worker count, so the result is deterministic and
// bit-identical at any parallelism.
func (ws *eWorkspace) eStep(data []linalg.Vector, mix *gaussian.Mixture, stats []*SuffStats) float64 {
	if ws.workers == 1 {
		st := ws.states[0]
		for si := range ws.shards {
			ws.runShard(si, data, mix, st)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < ws.workers; w++ {
			wg.Add(1)
			go func(st *workerState) {
				defer wg.Done()
				for {
					si := int(next.Add(1)) - 1
					if si >= len(ws.shards) {
						return
					}
					ws.runShard(si, data, mix, st)
				}
			}(ws.states[w])
		}
		wg.Wait()
	}
	// Deterministic fixed-order reduction.
	for j := range stats {
		stats[j].Reset()
	}
	var sumLL float64
	for si := range ws.shards {
		sh := &ws.shards[si]
		for j := range stats {
			stats[j].Merge(sh.stats[j])
		}
		sumLL += sh.sumLL
	}
	return sumLL
}
