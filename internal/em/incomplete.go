package em

import (
	"fmt"
	"math"
	"math/rand"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// This file implements EM for incomplete records — the capability the
// paper leads with ("the EM algorithm is an effective technique for
// learning the mixture model parameters in the presence of incomplete
// data", §1/§3). A missing attribute is encoded as NaN. The E-step
// evaluates each component's *marginal* density over the observed
// attributes; the M-step imputes the missing block with its conditional
// expectation μ_m + Σ_mo Σ_oo⁻¹ (x_o − μ_o) and adds the conditional
// covariance Σ_mm − Σ_mo Σ_oo⁻¹ Σ_om to the scatter, which is the exact
// EM update for missing-at-random Gaussian data.

// maxMissingDims bounds d for incomplete fitting (pattern masks are
// uint64).
const maxMissingDims = 64

// IsIncomplete reports whether any record has a NaN (missing) attribute.
func IsIncomplete(data []linalg.Vector) bool {
	for _, x := range data {
		for _, v := range x {
			if math.IsNaN(v) {
				return true
			}
		}
	}
	return false
}

// FitIncomplete runs Gaussian-mixture EM on records whose missing
// attributes are marked NaN. Records with every attribute missing are
// rejected. Complete data reduces to the standard algorithm (but prefer
// Fit there — it is faster).
func FitIncomplete(data []linalg.Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		return nil, fmt.Errorf("em: K = %d, need at least 1", cfg.K)
	}
	n := len(data)
	if n < cfg.K {
		return nil, ErrNotEnoughData
	}
	d := len(data[0])
	if d > maxMissingDims {
		return nil, fmt.Errorf("em: FitIncomplete supports d ≤ %d, got %d", maxMissingDims, d)
	}
	masks := make([]uint64, n)
	for i, x := range data {
		if len(x) != d {
			return nil, fmt.Errorf("em: record %d has dim %d, want %d", i, len(x), d)
		}
		var mask uint64 // bit set = observed
		for a, v := range x {
			if math.IsInf(v, 0) {
				return nil, fmt.Errorf("em: record %d has infinite attribute", i)
			}
			if !math.IsNaN(v) {
				mask |= 1 << a
			}
		}
		if mask == 0 {
			return nil, fmt.Errorf("em: record %d has no observed attributes", i)
		}
		masks[i] = mask
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Initialization: mean-impute, then standard k-means++ hard start.
	imputed := meanImpute(data, masks)
	mix, err := initialModel(imputed, cfg, rng)
	if err != nil {
		return nil, err
	}

	stats := make([]*SuffStats, cfg.K)
	for j := range stats {
		stats[j] = NewSuffStats(d)
	}
	post := make([]float64, cfg.K)

	prevAvgLL := math.Inf(-1)
	converged := false
	var iter int
	var avgLL float64
	for iter = 0; iter < cfg.MaxIter; iter++ {
		cache := newCondCache(mix)
		for j := range stats {
			stats[j].Reset()
		}
		var sumLL float64
		xhat := linalg.NewVector(d)
		for i, x := range data {
			mask := masks[i]
			// Marginal log-densities per component.
			lse := math.Inf(-1)
			for j := 0; j < cfg.K; j++ {
				lp := math.Log(mix.Weight(j)) + cache.marginalLogProb(j, mask, x)
				post[j] = lp
				lse = logAddEM(lse, lp)
			}
			sumLL += lse
			for j := 0; j < cfg.K; j++ {
				w := math.Exp(post[j] - lse)
				if w <= 0 {
					continue
				}
				cond := cache.impute(j, mask, x, xhat)
				stats[j].Add(xhat, w)
				if cond != nil {
					stats[j].Scatter.AddSym(w, cond)
				}
			}
		}
		avgLL = sumLL / float64(n)

		mix, err = modelFromStats(stats, imputed, cfg, rng)
		if err != nil {
			return nil, err
		}
		if math.Abs(avgLL-prevAvgLL) <= cfg.Tol {
			converged = true
			iter++
			break
		}
		prevAvgLL = avgLL
	}
	res := &Result{
		Mixture:          mix,
		AvgLogLikelihood: avgLL,
		Iterations:       iter,
		Converged:        converged,
	}
	recordFit(cfg, "em-fit-incomplete", res)
	return res, nil
}

// meanImpute fills missing entries with per-attribute observed means.
func meanImpute(data []linalg.Vector, masks []uint64) []linalg.Vector {
	d := len(data[0])
	sums := make([]float64, d)
	counts := make([]float64, d)
	for i, x := range data {
		for a := 0; a < d; a++ {
			if masks[i]&(1<<a) != 0 {
				sums[a] += x[a]
				counts[a]++
			}
		}
	}
	means := make([]float64, d)
	for a := 0; a < d; a++ {
		if counts[a] > 0 {
			means[a] = sums[a] / counts[a]
		}
	}
	out := make([]linalg.Vector, len(data))
	for i, x := range data {
		y := x.Clone()
		for a := 0; a < d; a++ {
			if masks[i]&(1<<a) == 0 {
				y[a] = means[a]
			}
		}
		out[i] = y
	}
	return out
}

// condEntry caches, for one (component, observation pattern), everything
// the E-step needs: the marginal factorization over observed dims and the
// conditional regression onto missing dims.
type condEntry struct {
	obs, miss []int
	chol      *linalg.Cholesky // of Σ_oo
	logNorm   float64          // marginal normalizing constant
	// b[mi] solves Σ_oo b = Σ_o,miss[mi] — the regression coefficients.
	b []linalg.Vector
	// cond is Σ_mm − Σ_mo Σ_oo⁻¹ Σ_om embedded into full d×d (missing
	// block only); nil when nothing is missing.
	cond *linalg.Sym
}

type condCache struct {
	mix     *gaussian.Mixture
	entries map[uint64][]*condEntry // mask → per-component entry
}

func newCondCache(mix *gaussian.Mixture) *condCache {
	return &condCache{mix: mix, entries: make(map[uint64][]*condEntry)}
}

func (c *condCache) entry(j int, mask uint64) *condEntry {
	slot, ok := c.entries[mask]
	if !ok {
		slot = make([]*condEntry, c.mix.K())
		c.entries[mask] = slot
	}
	if slot[j] == nil {
		slot[j] = buildCondEntry(c.mix.Component(j), mask)
	}
	return slot[j]
}

func buildCondEntry(comp *gaussian.Component, mask uint64) *condEntry {
	d := comp.Dim()
	e := &condEntry{}
	for a := 0; a < d; a++ {
		if mask&(1<<a) != 0 {
			e.obs = append(e.obs, a)
		} else {
			e.miss = append(e.miss, a)
		}
	}
	cov := comp.Cov()
	oo := linalg.NewSym(len(e.obs))
	for i, ai := range e.obs {
		for jj := 0; jj <= i; jj++ {
			oo.Set(i, jj, cov.At(ai, e.obs[jj]))
		}
	}
	chol, err := linalg.CholeskyDecompose(oo)
	if err != nil {
		chol, err = linalg.CholeskyDecompose(linalg.RepairPSD(oo, 1e-9))
		if err != nil {
			// Give up on structure: identity marginal (effectively flat).
			chol, _ = linalg.CholeskyDecompose(linalg.Identity(len(e.obs)))
		}
	}
	e.chol = chol
	e.logNorm = -0.5*float64(len(e.obs))*math.Log(2*math.Pi) - 0.5*chol.LogDet()

	if len(e.miss) > 0 {
		// Regression coefficients: for each missing dim, solve Σ_oo b = Σ_o,m.
		e.b = make([]linalg.Vector, len(e.miss))
		for mi, am := range e.miss {
			rhs := linalg.NewVector(len(e.obs))
			for oi, ao := range e.obs {
				rhs[oi] = cov.At(ao, am)
			}
			e.b[mi] = e.chol.Solve(rhs)
		}
		// Conditional covariance embedded in full coordinates.
		e.cond = linalg.NewSym(d)
		for mi, am := range e.miss {
			for mj := 0; mj <= mi; mj++ {
				amj := e.miss[mj]
				v := cov.At(am, amj)
				for oi, ao := range e.obs {
					v -= cov.At(ao, am) * e.b[mj][oi]
				}
				e.cond.Set(am, amj, v)
			}
		}
	}
	return e
}

// marginalLogProb evaluates log N(x_o; μ_o, Σ_oo).
func (c *condCache) marginalLogProb(j int, mask uint64, x linalg.Vector) float64 {
	e := c.entry(j, mask)
	mu := c.mix.Component(j).Mean()
	diff := linalg.NewVector(len(e.obs))
	for oi, ao := range e.obs {
		diff[oi] = x[ao] - mu[ao]
	}
	return e.logNorm - 0.5*e.chol.QuadForm(diff)
}

// impute writes the conditional-expectation completion of x under
// component j into xhat and returns the embedded conditional covariance
// (nil when the record is complete).
func (c *condCache) impute(j int, mask uint64, x, xhat linalg.Vector) *linalg.Sym {
	e := c.entry(j, mask)
	mu := c.mix.Component(j).Mean()
	diff := linalg.NewVector(len(e.obs))
	for oi, ao := range e.obs {
		xhat[ao] = x[ao]
		diff[oi] = x[ao] - mu[ao]
	}
	for mi, am := range e.miss {
		xhat[am] = mu[am] + e.b[mi].Dot(diff)
	}
	return e.cond
}

// logAddEM is a local stable log-sum-exp step (avoids importing gaussian's
// unexported helper).
func logAddEM(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
