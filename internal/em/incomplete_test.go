package em

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// maskOut replaces each attribute with NaN independently with probability
// frac, never blanking an entire record.
func maskOut(rng *rand.Rand, data []linalg.Vector, frac float64) []linalg.Vector {
	out := make([]linalg.Vector, len(data))
	for i, x := range data {
		y := x.Clone()
		blanked := 0
		for a := range y {
			if rng.Float64() < frac && blanked < len(y)-1 {
				y[a] = math.NaN()
				blanked++
			}
		}
		out[i] = y
	}
	return out
}

func TestIsIncomplete(t *testing.T) {
	if IsIncomplete([]linalg.Vector{{1, 2}, {3, 4}}) {
		t.Fatal("complete data flagged")
	}
	if !IsIncomplete([]linalg.Vector{{1, math.NaN()}}) {
		t.Fatal("NaN not flagged")
	}
}

func TestFitIncompleteMatchesFitOnCompleteData(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data, _ := genMixtureData(rng, []linalg.Vector{{-5, 0}, {5, 0}}, 1, 800)
	full, err := Fit(data, Config{K: 2, Seed: 1, MaxIter: 60, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := FitIncomplete(data, Config{K: 2, Seed: 1, MaxIter: 60, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	// Identical inputs and seeds: the two paths must find the same modes.
	fullMeans := []float64{full.Mixture.Component(0).Mean()[0], full.Mixture.Component(1).Mean()[0]}
	incMeans := []float64{inc.Mixture.Component(0).Mean()[0], inc.Mixture.Component(1).Mean()[0]}
	sort.Float64s(fullMeans)
	sort.Float64s(incMeans)
	for i := range fullMeans {
		if math.Abs(fullMeans[i]-incMeans[i]) > 0.1 {
			t.Fatalf("complete-data paths diverge: %v vs %v", incMeans, fullMeans)
		}
	}
}

func TestFitIncompleteRecovers20PctMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	truthMeans := []linalg.Vector{{-5, 3}, {5, -3}}
	data, _ := genMixtureData(rng, truthMeans, 1, 1500)
	holey := maskOut(rng, data, 0.2)
	res, err := FitIncomplete(holey, Config{K: 2, Seed: 1, MaxIter: 80, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	for _, mu := range truthMeans {
		best := math.Inf(1)
		for j := 0; j < 2; j++ {
			if d := mu.DistSq(res.Mixture.Component(j).Mean()); d < best {
				best = d
			}
		}
		if best > 0.25 {
			t.Errorf("mean %v not recovered with 20%% missing (dist² %v)", mu, best)
		}
	}
	// Variances should stay near 1, not blow up from imputation.
	for j := 0; j < 2; j++ {
		for a := 0; a < 2; a++ {
			v := res.Mixture.Component(j).Cov().At(a, a)
			if v < 0.5 || v > 2 {
				t.Errorf("component %d var[%d] = %v, want ≈1", j, a, v)
			}
		}
	}
}

func TestFitIncompleteCorrelatedImputation(t *testing.T) {
	// Strongly correlated attributes: conditional imputation must exploit
	// the correlation (mean imputation would not). Verify the fitted
	// covariance keeps the correlation despite 30% missing entries.
	rng := rand.New(rand.NewSource(43))
	cov := linalg.NewSymFrom(2, []float64{1, 0.9, 0.9, 1})
	truth := gaussian.MustComponent(linalg.Vector{0, 0}, cov)
	data := make([]linalg.Vector, 2000)
	for i := range data {
		data[i] = truth.Sample(rng)
	}
	holey := maskOut(rng, data, 0.3)
	res, err := FitIncomplete(holey, Config{K: 1, Seed: 1, MaxIter: 80, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Mixture.Component(0).Cov()
	corr := got.At(0, 1) / math.Sqrt(got.At(0, 0)*got.At(1, 1))
	if corr < 0.8 {
		t.Fatalf("correlation washed out by missing data: %v, want ≈0.9", corr)
	}
}

func TestFitIncompleteMonotoneLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	data, _ := genMixtureData(rng, []linalg.Vector{{-4}, {4}}, 1, 600)
	holey := maskOut(rng, data, 0.1)
	prev := math.Inf(-1)
	for iters := 2; iters <= 20; iters += 3 {
		res, err := FitIncomplete(holey, Config{K: 2, Seed: 5, MaxIter: iters, Tol: 1e-15})
		if err != nil {
			t.Fatal(err)
		}
		if res.AvgLogLikelihood < prev-1e-6 {
			t.Fatalf("observed-data likelihood decreased: %v -> %v at %d iters", prev, res.AvgLogLikelihood, iters)
		}
		prev = res.AvgLogLikelihood
	}
}

func TestFitIncompleteValidation(t *testing.T) {
	nan := math.NaN()
	if _, err := FitIncomplete([]linalg.Vector{{nan, nan}}, Config{K: 1}); err == nil {
		t.Fatal("all-missing record accepted")
	}
	if _, err := FitIncomplete([]linalg.Vector{{1, 2}}, Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := FitIncomplete([]linalg.Vector{{1}}, Config{K: 3}); err != ErrNotEnoughData {
		t.Fatal("too-few records accepted")
	}
	if _, err := FitIncomplete([]linalg.Vector{{1}, {2, 3}}, Config{K: 1}); err == nil {
		t.Fatal("ragged data accepted")
	}
	if _, err := FitIncomplete([]linalg.Vector{{math.Inf(1), 1}, {0, 1}}, Config{K: 1}); err == nil {
		t.Fatal("infinite attribute accepted")
	}
}

func TestFitIncompleteBeatsMeanImputation(t *testing.T) {
	// The headline: proper missing-data EM should model held-out complete
	// data better than naive mean-impute-then-EM when attributes are
	// correlated.
	rng := rand.New(rand.NewSource(45))
	cov := linalg.NewSymFrom(2, []float64{1, 0.85, 0.85, 1})
	truth := gaussian.MustComponent(linalg.Vector{2, -1}, cov)
	train := make([]linalg.Vector, 1500)
	for i := range train {
		train[i] = truth.Sample(rng)
	}
	holey := maskOut(rng, train, 0.35)
	test := make([]linalg.Vector, 800)
	for i := range test {
		test[i] = truth.Sample(rng)
	}

	proper, err := FitIncomplete(holey, Config{K: 1, Seed: 1, MaxIter: 80, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	masks := make([]uint64, len(holey))
	for i, x := range holey {
		for a, v := range x {
			if !math.IsNaN(v) {
				masks[i] |= 1 << a
			}
		}
	}
	naiveData := meanImpute(holey, masks)
	naive, err := Fit(naiveData, Config{K: 1, Seed: 1, MaxIter: 80, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	properLL := proper.Mixture.AvgLogLikelihood(test)
	naiveLL := naive.Mixture.AvgLogLikelihood(test)
	if properLL <= naiveLL {
		t.Fatalf("missing-data EM (%v) did not beat mean imputation (%v)", properLL, naiveLL)
	}
}
