package em

import (
	"math/rand"

	"cludistream/internal/linalg"
)

// kMeansPlusPlus selects k initial means from data with the k-means++
// D²-weighting scheme: the first center uniformly, each further center with
// probability proportional to its squared distance from the nearest chosen
// center. This keeps EM away from the worst local optima without any extra
// passes over the stream.
func kMeansPlusPlus(data []linalg.Vector, k int, rng *rand.Rand) []linalg.Vector {
	n := len(data)
	centers := make([]linalg.Vector, 0, k)
	centers = append(centers, data[rng.Intn(n)].Clone())

	dist := make([]float64, n)
	for i, x := range data {
		dist[i] = x.DistSq(centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, d := range dist {
			total += d
		}
		var next linalg.Vector
		if total <= 0 {
			// All points coincide with existing centers; fall back to a
			// uniform draw so we still return k centers.
			next = data[rng.Intn(n)].Clone()
		} else {
			u := rng.Float64() * total
			idx := n - 1
			var acc float64
			for i, d := range dist {
				acc += d
				if u < acc {
					idx = i
					break
				}
			}
			next = data[idx].Clone()
		}
		centers = append(centers, next)
		for i, x := range data {
			if d := x.DistSq(next); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return centers
}

// hardAssign returns, for each record, the index of the nearest center.
func hardAssign(data []linalg.Vector, centers []linalg.Vector) []int {
	out := make([]int, len(data))
	for i, x := range data {
		best, bestD := 0, x.DistSq(centers[0])
		for j := 1; j < len(centers); j++ {
			if d := x.DistSq(centers[j]); d < bestD {
				best, bestD = j, d
			}
		}
		out[i] = best
	}
	return out
}
