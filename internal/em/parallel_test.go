package em

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// parallelTestData samples a well-separated d-dimensional K-component
// mixture so EM has a meaningful fit to converge to.
func parallelTestData(n, k, d int, seed int64) []linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	comps := make([]*gaussian.Component, k)
	ws := make([]float64, k)
	for j := range comps {
		mean := linalg.NewVector(d)
		for i := range mean {
			mean[i] = rng.NormFloat64() * 8
		}
		comps[j] = gaussian.Spherical(mean, 1+rng.Float64())
		ws[j] = 1
	}
	return gaussian.MustMixture(ws, comps).SampleN(rng, n)
}

// mixturesBitIdentical reports whether two mixtures are equal to the last
// bit: weights, means, and covariances.
func mixturesBitIdentical(a, b *gaussian.Mixture) bool {
	if a.K() != b.K() || a.Dim() != b.Dim() {
		return false
	}
	for j := 0; j < a.K(); j++ {
		if math.Float64bits(a.Weight(j)) != math.Float64bits(b.Weight(j)) {
			return false
		}
		am, bm := a.Component(j).Mean(), b.Component(j).Mean()
		for i := range am {
			if math.Float64bits(am[i]) != math.Float64bits(bm[i]) {
				return false
			}
		}
		ac, bc := a.Component(j).Cov(), b.Component(j).Cov()
		for r := 0; r < a.Dim(); r++ {
			for c := 0; c <= r; c++ {
				if math.Float64bits(ac.At(r, c)) != math.Float64bits(bc.At(r, c)) {
					return false
				}
			}
		}
	}
	return true
}

// TestFitWorkerCountInvariant pins the parallel fused E+M pass to
// bit-identical results at every worker count: shard boundaries depend
// only on n and partial statistics reduce in fixed order, so cores must
// never change the fitted model.
func TestFitWorkerCountInvariant(t *testing.T) {
	data := parallelTestData(2000, 4, 8, 21)
	var ref *Result
	for _, workers := range []int{1, 2, 3, 8} {
		res, err := Fit(data, Config{K: 4, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Iterations != ref.Iterations || res.Converged != ref.Converged {
			t.Fatalf("workers=%d: iterations/converged (%d,%v) != (%d,%v)",
				workers, res.Iterations, res.Converged, ref.Iterations, ref.Converged)
		}
		if math.Float64bits(res.AvgLogLikelihood) != math.Float64bits(ref.AvgLogLikelihood) {
			t.Fatalf("workers=%d: avgLL %v != %v", workers, res.AvgLogLikelihood, ref.AvgLogLikelihood)
		}
		if !mixturesBitIdentical(res.Mixture, ref.Mixture) {
			t.Fatalf("workers=%d: mixture differs from workers=1", workers)
		}
	}
}

// TestFitGOMAXPROCSInvariant repeats the invariance check under the
// runtime's own parallelism knob, since Workers=0 derives the pool size
// from GOMAXPROCS.
func TestFitGOMAXPROCSInvariant(t *testing.T) {
	data := parallelTestData(1500, 4, 8, 22)
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	var ref *Result
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		res, err := Fit(data, Config{K: 4, Seed: 5})
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !mixturesBitIdentical(res.Mixture, ref.Mixture) {
			t.Fatalf("GOMAXPROCS=%d: mixture differs from GOMAXPROCS=1", procs)
		}
		if math.Float64bits(res.AvgLogLikelihood) != math.Float64bits(ref.AvgLogLikelihood) {
			t.Fatalf("GOMAXPROCS=%d: avgLL %v != %v", procs, res.AvgLogLikelihood, ref.AvgLogLikelihood)
		}
	}
}

// TestFitMatchesScalarSequential pins the batched/sharded Fit to the
// pre-batching scalar algorithm, replicated here point-at-a-time with
// PosteriorInto. With n ≤ one shard the fixed-order reduction degenerates
// to plain sequential accumulation, so the match must be bit-exact.
func TestFitMatchesScalarSequential(t *testing.T) {
	n := eShardSize - 6 // single shard
	data := parallelTestData(n, 3, 8, 23)
	cfg := Config{K: 3, Seed: 9}.withDefaults()

	res, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the scalar sequential EM loop (the seed repo's Fit body).
	rng := rand.New(rand.NewSource(cfg.Seed))
	mix, err := initialModel(data, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := len(data[0])
	post := make([]float64, cfg.K)
	stats := make([]*SuffStats, cfg.K)
	for j := range stats {
		stats[j] = NewSuffStats(d)
	}
	prevAvgLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		for j := range stats {
			stats[j].Reset()
		}
		var sumLL float64
		for _, x := range data {
			sumLL += mix.PosteriorInto(x, post)
			for j := 0; j < cfg.K; j++ {
				if post[j] > 0 {
					stats[j].Add(x, post[j])
				}
			}
		}
		avgLL := sumLL / float64(n)
		mix, err = modelFromStats(stats, data, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(avgLL-prevAvgLL) <= cfg.Tol {
			break
		}
		prevAvgLL = avgLL
	}

	if !mixturesBitIdentical(res.Mixture, mix) {
		t.Fatal("single-shard Fit is not bit-identical to the scalar sequential EM loop")
	}
}

// TestFitMultiShardCloseToScalar bounds the (expected, tiny) float
// reassociation between the sharded reduction and pure point-sequential
// accumulation on multi-shard inputs: same iteration count, parameters
// within 1e-9.
func TestFitMultiShardCloseToScalar(t *testing.T) {
	data := parallelTestData(4*eShardSize+17, 4, 6, 24)
	cfg := Config{K: 4, Seed: 3}.withDefaults()
	res, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	mix, err := initialModel(data, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	post := make([]float64, cfg.K)
	stats := make([]*SuffStats, cfg.K)
	for j := range stats {
		stats[j] = NewSuffStats(len(data[0]))
	}
	prevAvgLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		for j := range stats {
			stats[j].Reset()
		}
		var sumLL float64
		for _, x := range data {
			sumLL += mix.PosteriorInto(x, post)
			for j := 0; j < cfg.K; j++ {
				if post[j] > 0 {
					stats[j].Add(x, post[j])
				}
			}
		}
		avgLL := sumLL / float64(len(data))
		mix, err = modelFromStats(stats, data, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(avgLL-prevAvgLL) <= cfg.Tol {
			break
		}
		prevAvgLL = avgLL
	}

	if !res.Mixture.ApproxEqual(mix, 1e-9, 1e-9) {
		t.Fatal("multi-shard Fit drifted from the scalar sequential reference")
	}
}
