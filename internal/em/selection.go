package em

import (
	"fmt"
	"math"

	"cludistream/internal/linalg"
)

// NumParams returns the free-parameter count of a K-component Gaussian
// mixture in d dimensions: K−1 weights, K·d means, and K covariances (full:
// d(d+1)/2 each; diagonal: d each).
func NumParams(k, d int, cov CovType) int {
	perCov := d * (d + 1) / 2
	if cov == DiagCov {
		perCov = d
	}
	return (k - 1) + k*d + k*perCov
}

// BIC returns the Bayesian information criterion for a fitted model:
// −2·logL + p·ln(n). Lower is better.
func BIC(avgLogLikelihood float64, n, k, d int, cov CovType) float64 {
	logL := avgLogLikelihood * float64(n)
	return -2*logL + float64(NumParams(k, d, cov))*math.Log(float64(n))
}

// AIC returns the Akaike information criterion: −2·logL + 2·p.
func AIC(avgLogLikelihood float64, n, k, d int, cov CovType) float64 {
	logL := avgLogLikelihood * float64(n)
	return -2*logL + 2*float64(NumParams(k, d, cov))
}

// SelectionResult reports a FitBestK sweep.
type SelectionResult struct {
	// Best is the winning fit.
	Best *Result
	// BestK is the selected component count.
	BestK int
	// Scores maps each tried K to its BIC.
	Scores map[int]float64
}

// FitBestK fits the mixture for every K in [kMin, kMax] and returns the
// fit minimizing BIC. The paper's sites do not assume a fixed number of
// components ("new model is added to the model list if the data does not
// fit current models"); FitBestK extends that philosophy inside a single
// model by choosing K from the data. Fits that fail (e.g. K > n) are
// skipped; an error is returned only if every K fails.
func FitBestK(data []linalg.Vector, kMin, kMax int, cfg Config) (*SelectionResult, error) {
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("em: bad K range [%d, %d]", kMin, kMax)
	}
	if len(data) == 0 {
		return nil, ErrNotEnoughData
	}
	d := len(data[0])
	sel := &SelectionResult{Scores: make(map[int]float64)}
	bestScore := math.Inf(1)
	var lastErr error
	for k := kMin; k <= kMax; k++ {
		c := cfg
		c.K = k
		res, err := Fit(data, c)
		if err != nil {
			lastErr = err
			continue
		}
		score := BIC(res.Mixture.AvgLogLikelihood(data), len(data), k, d, c.CovType)
		sel.Scores[k] = score
		if score < bestScore {
			bestScore = score
			sel.Best = res
			sel.BestK = k
		}
	}
	if sel.Best == nil {
		return nil, fmt.Errorf("em: no K in [%d, %d] fit: %w", kMin, kMax, lastErr)
	}
	return sel, nil
}
