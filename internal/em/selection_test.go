package em

import (
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/linalg"
)

func TestNumParams(t *testing.T) {
	// K=5, d=4, full: 4 + 20 + 5·10 = 74.
	if got := NumParams(5, 4, FullCov); got != 74 {
		t.Fatalf("NumParams full = %d, want 74", got)
	}
	// Diagonal: 4 + 20 + 20 = 44.
	if got := NumParams(5, 4, DiagCov); got != 44 {
		t.Fatalf("NumParams diag = %d, want 44", got)
	}
	if NumParams(1, 1, FullCov) != 2 {
		t.Fatal("K=1 d=1 should have 2 params (mean + var)")
	}
}

func TestBICAICPenalizeComplexity(t *testing.T) {
	// Same likelihood, more components → worse (higher) score.
	const n, d = 1000, 2
	ll := -3.0
	if BIC(ll, n, 2, d, FullCov) >= BIC(ll, n, 5, d, FullCov) {
		t.Fatal("BIC did not penalize extra components")
	}
	if AIC(ll, n, 2, d, FullCov) >= AIC(ll, n, 5, d, FullCov) {
		t.Fatal("AIC did not penalize extra components")
	}
	// BIC penalizes harder than AIC for n > e².
	gapBIC := BIC(ll, n, 5, d, FullCov) - BIC(ll, n, 2, d, FullCov)
	gapAIC := AIC(ll, n, 5, d, FullCov) - AIC(ll, n, 2, d, FullCov)
	if gapBIC <= gapAIC {
		t.Fatalf("BIC gap %v should exceed AIC gap %v at n=%d", gapBIC, gapAIC, n)
	}
}

func TestFitBestKRecoversTrueK(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// Three very well separated clusters.
	data, _ := genMixtureData(rng, []linalg.Vector{{-20}, {0}, {20}}, 1, 1200)
	sel, err := FitBestK(data, 1, 6, Config{Seed: 1, MaxIter: 60, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if sel.BestK != 3 {
		t.Fatalf("BestK = %d, want 3 (scores: %v)", sel.BestK, sel.Scores)
	}
	if sel.Best == nil || sel.Best.Mixture.K() != 3 {
		t.Fatal("Best result inconsistent with BestK")
	}
	if len(sel.Scores) != 6 {
		t.Fatalf("scored %d values of K", len(sel.Scores))
	}
	// The score curve should dip at 3.
	if sel.Scores[3] >= sel.Scores[1] || sel.Scores[3] >= sel.Scores[6] {
		t.Fatalf("no dip at K=3: %v", sel.Scores)
	}
}

func TestFitBestKSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	data, _ := genMixtureData(rng, []linalg.Vector{{0, 0}}, 1, 600)
	sel, err := FitBestK(data, 1, 4, Config{Seed: 1, MaxIter: 60, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if sel.BestK != 1 {
		t.Fatalf("BestK = %d on unimodal data (scores: %v)", sel.BestK, sel.Scores)
	}
}

func TestFitBestKSkipsInfeasible(t *testing.T) {
	// Only 3 records: K=4,5 must be skipped, not fail the sweep.
	data := []linalg.Vector{{0}, {10}, {20}}
	sel, err := FitBestK(data, 1, 5, Config{Seed: 1, MinVar: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if sel.BestK > 3 {
		t.Fatalf("BestK = %d with 3 records", sel.BestK)
	}
	for k := 4; k <= 5; k++ {
		if _, ok := sel.Scores[k]; ok {
			t.Fatalf("infeasible K=%d scored", k)
		}
	}
}

func TestFitBestKErrors(t *testing.T) {
	if _, err := FitBestK(nil, 1, 3, Config{}); err == nil {
		t.Fatal("empty data accepted")
	}
	data := []linalg.Vector{{0}}
	if _, err := FitBestK(data, 0, 3, Config{}); err == nil {
		t.Fatal("kMin=0 accepted")
	}
	if _, err := FitBestK(data, 3, 1, Config{}); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := FitBestK(data, 5, 9, Config{}); err == nil {
		t.Fatal("all-infeasible range should error")
	}
}

func TestBICConsistentWithLikelihood(t *testing.T) {
	// For fixed K, higher likelihood ⇒ lower BIC.
	a := BIC(-2.0, 500, 3, 2, FullCov)
	b := BIC(-3.0, 500, 3, 2, FullCov)
	if a >= b {
		t.Fatalf("BIC(-2)=%v should beat BIC(-3)=%v", a, b)
	}
	if math.IsNaN(a) || math.IsInf(a, 0) {
		t.Fatal("BIC not finite")
	}
}
