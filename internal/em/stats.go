// Package em implements the classical EM algorithm for Gaussian mixture
// models (Section 3.2 of the paper): k-means++ initialization, E/M
// iterations, and the ϖ-threshold convergence test on the log-likelihood.
// It also provides weighted sufficient statistics, the building block that
// the scalable-EM baseline (internal/sem) and the incremental fitting paths
// share.
package em

import (
	"cludistream/internal/linalg"
)

// SuffStats accumulates the weighted zeroth, first and second moments of a
// set of records: W = Σ w, Sum = Σ w·x, Scatter = Σ w·x·xᵀ. Together these
// are exactly what the M-step needs, and what SEM's compression phase
// stores in place of raw records.
type SuffStats struct {
	W       float64
	Sum     linalg.Vector
	Scatter *linalg.Sym
}

// NewSuffStats returns empty statistics for dimension d.
func NewSuffStats(d int) *SuffStats {
	return &SuffStats{Sum: linalg.NewVector(d), Scatter: linalg.NewSym(d)}
}

// Dim returns the dimensionality.
func (s *SuffStats) Dim() int { return len(s.Sum) }

// Add accumulates record x with weight w.
func (s *SuffStats) Add(x linalg.Vector, w float64) {
	s.W += w
	s.Sum.AXPYInPlace(w, x)
	s.Scatter.AddOuterScaled(w, x)
}

// Merge folds other into s.
func (s *SuffStats) Merge(other *SuffStats) {
	s.W += other.W
	s.Sum.AddInPlace(other.Sum)
	s.Scatter.AddSym(1, other.Scatter)
}

// Reset zeroes the statistics in place.
func (s *SuffStats) Reset() {
	s.W = 0
	for i := range s.Sum {
		s.Sum[i] = 0
	}
	s.Scatter.ScaleInPlace(0)
}

// Clone returns an independent copy.
func (s *SuffStats) Clone() *SuffStats {
	return &SuffStats{W: s.W, Sum: s.Sum.Clone(), Scatter: s.Scatter.Clone()}
}

// Mean returns Sum/W. It panics if W == 0.
func (s *SuffStats) Mean() linalg.Vector {
	if s.W == 0 {
		panic("em: Mean of empty SuffStats")
	}
	return s.Sum.Scale(1 / s.W)
}

// Cov returns the weighted covariance Scatter/W − μμᵀ with the diagonal
// floored at minVar. It panics if W == 0.
func (s *SuffStats) Cov(minVar float64) *linalg.Sym {
	mu := s.Mean()
	cov := s.Scatter.Clone()
	cov.ScaleInPlace(1 / s.W)
	cov.AddOuterScaled(-1, mu)
	floorDiagonal(cov, minVar)
	return cov
}

// floorDiagonal raises diagonal entries below minVar up to minVar, the
// guard the paper's footnote motivates (zero-variance attributes make Σ
// singular).
func floorDiagonal(cov *linalg.Sym, minVar float64) {
	if minVar <= 0 {
		minVar = 1e-6
	}
	for i := 0; i < cov.Order(); i++ {
		if cov.At(i, i) < minVar {
			cov.Set(i, i, minVar)
		}
	}
}
