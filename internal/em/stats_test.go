package em

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cludistream/internal/linalg"
)

func TestSuffStatsMeanCov(t *testing.T) {
	s := NewSuffStats(1)
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(linalg.Vector{x}, 1)
	}
	if s.W != 5 {
		t.Fatalf("W = %v", s.W)
	}
	if got := s.Mean()[0]; math.Abs(got-3) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	// Population variance of {1..5} = 2.
	if got := s.Cov(0).At(0, 0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("var = %v", got)
	}
}

func TestSuffStatsWeighted(t *testing.T) {
	s := NewSuffStats(1)
	s.Add(linalg.Vector{0}, 3)
	s.Add(linalg.Vector{4}, 1)
	// mean = 4/4 = 1; var = (3·1 + 1·9)/4 = 3.
	if got := s.Mean()[0]; math.Abs(got-1) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	if got := s.Cov(0).At(0, 0); math.Abs(got-3) > 1e-12 {
		t.Fatalf("var = %v", got)
	}
}

func TestSuffStatsMergeEquivalence(t *testing.T) {
	// Merging partial stats must equal accumulating everything directly.
	rng := rand.New(rand.NewSource(81))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, all := NewSuffStats(3), NewSuffStats(3), NewSuffStats(3)
		for i := 0; i < 40; i++ {
			x := linalg.Vector{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
			w := r.Float64() + 0.1
			if i%2 == 0 {
				a.Add(x, w)
			} else {
				b.Add(x, w)
			}
			all.Add(x, w)
		}
		a.Merge(b)
		return math.Abs(a.W-all.W) < 1e-9 &&
			a.Sum.Equal(all.Sum, 1e-9) &&
			a.Scatter.Equal(all.Scatter, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSuffStatsResetClone(t *testing.T) {
	s := NewSuffStats(2)
	s.Add(linalg.Vector{1, 2}, 2)
	c := s.Clone()
	s.Reset()
	if s.W != 0 || s.Sum[0] != 0 || s.Scatter.At(0, 0) != 0 {
		t.Fatal("Reset did not zero stats")
	}
	if c.W != 2 || c.Sum[0] != 2 {
		t.Fatal("Clone affected by Reset")
	}
}

func TestSuffStatsEmptyMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSuffStats(1).Mean()
}

func TestSuffStatsCovFloor(t *testing.T) {
	s := NewSuffStats(2)
	s.Add(linalg.Vector{1, 1}, 1)
	s.Add(linalg.Vector{1, 2}, 1)
	cov := s.Cov(1e-3)
	if cov.At(0, 0) < 1e-3 {
		t.Fatalf("zero-variance attribute not floored: %v", cov.At(0, 0))
	}
	// Attribute 1 has real variance 0.25, untouched by the floor.
	if math.Abs(cov.At(1, 1)-0.25) > 1e-12 {
		t.Fatalf("var(attr1) = %v", cov.At(1, 1))
	}
}

func TestKMeansPlusPlusSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	// Three tight blobs; k-means++ should pick one center per blob almost
	// always thanks to D² weighting.
	var data []linalg.Vector
	for _, c := range []float64{-100, 0, 100} {
		for i := 0; i < 50; i++ {
			data = append(data, linalg.Vector{c + rng.NormFloat64()})
		}
	}
	hits := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		centers := kMeansPlusPlus(data, 3, rng)
		var got [3]bool
		for _, c := range centers {
			switch {
			case c[0] < -50:
				got[0] = true
			case c[0] > 50:
				got[2] = true
			default:
				got[1] = true
			}
		}
		if got[0] && got[1] && got[2] {
			hits++
		}
	}
	if hits < trials*9/10 {
		t.Fatalf("k-means++ hit all blobs only %d/%d times", hits, trials)
	}
}

func TestKMeansPlusPlusAllIdentical(t *testing.T) {
	data := make([]linalg.Vector, 10)
	for i := range data {
		data[i] = linalg.Vector{7}
	}
	centers := kMeansPlusPlus(data, 3, rand.New(rand.NewSource(1)))
	if len(centers) != 3 {
		t.Fatalf("got %d centers", len(centers))
	}
	for _, c := range centers {
		if c[0] != 7 {
			t.Fatalf("center = %v", c)
		}
	}
}

func TestHardAssign(t *testing.T) {
	centers := []linalg.Vector{{0}, {10}}
	data := []linalg.Vector{{1}, {9}, {4.9}, {5.1}}
	got := hardAssign(data, centers)
	want := []int{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assign = %v", got)
		}
	}
}
