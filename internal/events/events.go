// Package events implements the remote site's event table (Section 5.1 of
// the paper): the record of which model governed which span of chunks.
// Each entry is a <model ID, start chunk, end chunk> triplet; Section 7
// builds evolving analysis and change detection on queries over this list.
package events

import (
	"fmt"
	"sort"
)

// Entry records that the model with ID ModelID explained chunks
// [StartChunk, EndChunk] (inclusive, 1-based as in Algorithm 1).
type Entry struct {
	ModelID    int
	StartChunk int
	EndChunk   int
}

// String renders the paper's <model ID, start, end> triplet.
func (e Entry) String() string {
	return fmt.Sprintf("<model %d, chunks %d-%d>", e.ModelID, e.StartChunk, e.EndChunk)
}

// List is an append-only event table. Entries are closed spans; the
// currently-active model's open span lives in the site, not here, and is
// appended when the model is retired.
type List struct {
	entries []Entry
}

// NewList returns an empty event table.
func NewList() *List { return &List{} }

// Append adds a closed span. Spans must be well-formed and arrive in
// stream order (non-overlapping, increasing).
func (l *List) Append(e Entry) error {
	if e.StartChunk < 1 || e.EndChunk < e.StartChunk {
		return fmt.Errorf("events: malformed span %v", e)
	}
	if n := len(l.entries); n > 0 && e.StartChunk <= l.entries[n-1].EndChunk {
		return fmt.Errorf("events: span %v overlaps previous %v", e, l.entries[n-1])
	}
	l.entries = append(l.entries, e)
	return nil
}

// Len returns the number of closed spans.
func (l *List) Len() int { return len(l.entries) }

// At returns entry i.
func (l *List) At(i int) Entry { return l.entries[i] }

// All returns a copy of the entries.
func (l *List) All() []Entry {
	return append([]Entry(nil), l.entries...)
}

// ModelAt returns the model ID governing the given chunk number and true,
// or 0 and false if the chunk falls outside every closed span (e.g. the
// currently active model's span).
func (l *List) ModelAt(chunkNum int) (int, bool) {
	// Spans are sorted by StartChunk; binary search the candidate.
	i := sort.Search(len(l.entries), func(i int) bool {
		return l.entries[i].EndChunk >= chunkNum
	})
	if i < len(l.entries) && l.entries[i].StartChunk <= chunkNum && chunkNum <= l.entries[i].EndChunk {
		return l.entries[i].ModelID, true
	}
	return 0, false
}

// Query returns all entries whose span intersects [startChunk, endChunk] —
// the evolving-analysis primitive of Section 7: "users input a start time
// and a window size... the algorithm presents a series of Gaussian mixture
// models to reflect the evolving process within that window".
func (l *List) Query(startChunk, endChunk int) []Entry {
	var out []Entry
	for _, e := range l.entries {
		if e.EndChunk >= startChunk && e.StartChunk <= endChunk {
			out = append(out, e)
		}
	}
	return out
}

// Changes returns the chunk numbers at which the governing model changed —
// each span boundary is a detected distribution change (Section 7's change
// detection: "a change emerges when new chunk does not fit the existing
// models").
func (l *List) Changes() []int {
	var out []int
	for i := 1; i < len(l.entries); i++ {
		out = append(out, l.entries[i].StartChunk)
	}
	return out
}
