package events

import (
	"testing"
)

func buildList(t *testing.T) *List {
	t.Helper()
	l := NewList()
	for _, e := range []Entry{
		{ModelID: 1, StartChunk: 1, EndChunk: 5},
		{ModelID: 2, StartChunk: 6, EndChunk: 9},
		{ModelID: 3, StartChunk: 10, EndChunk: 20},
	} {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestAppendAndLen(t *testing.T) {
	l := buildList(t)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.At(1).ModelID != 2 {
		t.Fatalf("At(1) = %v", l.At(1))
	}
}

func TestAppendRejectsMalformed(t *testing.T) {
	l := NewList()
	if err := l.Append(Entry{ModelID: 1, StartChunk: 0, EndChunk: 2}); err == nil {
		t.Error("start 0 accepted")
	}
	if err := l.Append(Entry{ModelID: 1, StartChunk: 5, EndChunk: 4}); err == nil {
		t.Error("end < start accepted")
	}
	_ = l.Append(Entry{ModelID: 1, StartChunk: 1, EndChunk: 10})
	if err := l.Append(Entry{ModelID: 2, StartChunk: 5, EndChunk: 15}); err == nil {
		t.Error("overlapping span accepted")
	}
}

func TestModelAt(t *testing.T) {
	l := buildList(t)
	cases := []struct {
		chunk int
		want  int
		ok    bool
	}{
		{1, 1, true}, {5, 1, true}, {6, 2, true}, {9, 2, true},
		{10, 3, true}, {20, 3, true}, {21, 0, false}, {0, 0, false},
	}
	for _, tc := range cases {
		got, ok := l.ModelAt(tc.chunk)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ModelAt(%d) = (%d, %v), want (%d, %v)", tc.chunk, got, ok, tc.want, tc.ok)
		}
	}
}

func TestModelAtGap(t *testing.T) {
	l := NewList()
	_ = l.Append(Entry{ModelID: 1, StartChunk: 1, EndChunk: 3})
	_ = l.Append(Entry{ModelID: 2, StartChunk: 7, EndChunk: 9})
	if _, ok := l.ModelAt(5); ok {
		t.Error("chunk in gap reported as covered")
	}
}

func TestQueryWindow(t *testing.T) {
	l := buildList(t)
	got := l.Query(5, 10)
	if len(got) != 3 {
		t.Fatalf("Query(5,10) = %v", got)
	}
	got = l.Query(7, 8)
	if len(got) != 1 || got[0].ModelID != 2 {
		t.Fatalf("Query(7,8) = %v", got)
	}
	if got := l.Query(100, 200); len(got) != 0 {
		t.Fatalf("Query beyond end = %v", got)
	}
}

func TestChanges(t *testing.T) {
	l := buildList(t)
	got := l.Changes()
	want := []int{6, 10}
	if len(got) != len(want) {
		t.Fatalf("Changes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Changes = %v, want %v", got, want)
		}
	}
	if got := NewList().Changes(); len(got) != 0 {
		t.Fatal("empty list has changes")
	}
}

func TestAllIsCopy(t *testing.T) {
	l := buildList(t)
	all := l.All()
	all[0].ModelID = 99
	if l.At(0).ModelID != 1 {
		t.Fatal("All returned aliased storage")
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{ModelID: 7, StartChunk: 2, EndChunk: 4}
	if got := e.String(); got != "<model 7, chunks 2-4>" {
		t.Fatalf("String = %q", got)
	}
}
