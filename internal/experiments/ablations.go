package experiments

import (
	"math/rand"

	"cludistream/internal/dem"
	"cludistream/internal/em"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/stream"
)

// AblationTestAndCluster quantifies the headline Theorem-4 saving: the same
// stream processed with the test-and-cluster strategy vs clustering every
// chunk unconditionally (the always-cluster strawman). Because a fit test
// costs λC with λ ≪ 1, test-and-cluster should win by roughly
// 1/(P_d + λ(1−P_d)).
func AblationTestAndCluster(p Params) (*Table, error) {
	t := &Table{
		Title:   "Ablation: test-and-cluster vs always-cluster",
		Columns: []string{"P_d", "test-and-cluster sec", "always-cluster sec", "speedup"},
	}
	for _, pd := range []float64{0.1, 0.5, 1.0} {
		q := p
		q.Pd = pd
		q.RegimeLen = chunkSizeFor(p)

		gen1 := q.synthetic(0)
		st, dur, err := runSite(q.siteConfig(1), gen1, q.Updates)
		if err != nil {
			return nil, err
		}
		_ = st

		// Always-cluster: a negative fit threshold makes every test fail,
		// so each chunk pays the full EM cost.
		gen2 := q.synthetic(0)
		cfg := q.siteConfig(1)
		cfg.FitEps = -1
		cfg.CMax = 1
		_, durAll, err := runSite(cfg, gen2, q.Updates)
		if err != nil {
			return nil, err
		}
		speed := 0.0
		if dur > 0 {
			speed = durAll.Seconds() / dur.Seconds()
		}
		t.AddRow(pd, dur.Seconds(), durAll.Seconds(), speed)
	}
	t.AddNote("theorem 4: average cost is (P_d + λ(1−P_d))·C — the speedup shrinks as P_d→1")
	return t, nil
}

// AblationMergeFit compares the three merged-component fitting strategies
// on random component pairs: moment matching only, the paper's
// simplex-refined L1 fit, and a deliberately unfitted midpoint Gaussian as
// a floor. Reported is the mean Monte-Carlo L1 accuracy loss (lower is
// better).
func AblationMergeFit(p Params) (*Table, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	const pairs = 10
	const evalSamples = 20000
	var lossMoment, lossSimplex, lossNaive float64
	for i := 0; i < pairs; i++ {
		// Only close pairs: the coordinator gates merging on M_merge, so
		// the fitting strategy is exercised exactly in this regime.
		sep := 0.2 + rng.Float64()*0.8
		a := gaussian.Spherical(linalg.Vector{-sep, 0}, 0.5+rng.Float64())
		b := gaussian.Spherical(linalg.Vector{sep, rng.NormFloat64() * 0.3}, 0.5+rng.Float64())
		wi, wj := 0.4+rng.Float64()*0.4, 0.4+rng.Float64()*0.4

		_, mm, mc := gaussian.MomentMerge(wi, a, wj, b)
		moment := gaussian.MustComponent(mm, mc)
		_, fitted := gaussian.FitMerge(wi, a, wj, b, gaussian.MergeOptions{Samples: 512, Seed: p.Seed + int64(i), MaxIter: 200})
		naive := gaussian.Spherical(linalg.Vector{0, 0}, 1)

		crn := rand.New(rand.NewSource(p.Seed + 1000 + int64(i)))
		lossMoment += gaussian.L1Loss(wi, a, wj, b, moment, evalSamples, crn)
		crn = rand.New(rand.NewSource(p.Seed + 1000 + int64(i)))
		lossSimplex += gaussian.L1Loss(wi, a, wj, b, fitted, evalSamples, crn)
		crn = rand.New(rand.NewSource(p.Seed + 1000 + int64(i)))
		lossNaive += gaussian.L1Loss(wi, a, wj, b, naive, evalSamples, crn)
	}
	t := &Table{
		Title:   "Ablation: merged-component fitting strategy (mean L1 loss, lower = better)",
		Columns: []string{"moment-only", "simplex-fitted", "naive unit Gaussian"},
	}
	t.AddRow(lossMoment/pairs, lossSimplex/pairs, lossNaive/pairs)
	t.AddNote("the simplex refinement (§5.2.1) should never lose to moment matching; both crush the naive floor")
	return t, nil
}

// AblationCovType compares full vs diagonal covariances (the Theorem-3
// memory note): time, model-list bytes and recent-horizon quality.
func AblationCovType(p Params) (*Table, error) {
	t := &Table{
		Title:   "Ablation: full vs diagonal covariance",
		Columns: []string{"full sec", "diag sec", "full bytes", "diag bytes(packed-equivalent)", "full LL", "diag LL"},
	}
	run := func(ct em.CovType) (float64, int, float64, error) {
		gen := p.synthetic(0)
		cfg := p.siteConfig(1)
		cfg.EM.CovType = ct
		st, dur, err := runSite(cfg, gen, p.Updates)
		if err != nil {
			return 0, 0, 0, err
		}
		eval := make([]linalg.Vector, 0, p.RegimeLen)
		for i := 0; i < p.RegimeLen; i++ {
			eval = append(eval, gen.Next())
		}
		var ll float64
		if cur := st.Current(); cur != nil {
			ll = quality(cur.Mixture, eval)
		} else {
			ll = -10
		}
		return dur.Seconds(), st.ModelListBytes(), ll, nil
	}
	fSec, fBytes, fLL, err := run(em.FullCov)
	if err != nil {
		return nil, err
	}
	dSec, dBytes, dLL, err := run(em.DiagCov)
	if err != nil {
		return nil, err
	}
	// Diagonal models could be stored as d floats instead of d(d+1)/2; the
	// packed-equivalent column reports that saving.
	d := p.Dim
	diagBytes := dBytes * (1 + d + d) / (1 + d + d*(d+1)/2)
	t.AddRow(fSec, dSec, float64(fBytes), float64(diagBytes), fLL, dLL)
	t.AddNote("theorem 3: diagonal covariance stores d values instead of d(d+1)/2 — cheaper, slightly less expressive")
	return t, nil
}

// AblationSharpTest compares the standard J_fit statistic (full mixture
// average log-likelihood) against the sharpened max-component variant from
// Theorem 2's proof: EM runs triggered and quality on a stationary stream.
func AblationSharpTest(p Params) (*Table, error) {
	t := &Table{
		Title:   "Ablation: J_fit statistic — mixture LL vs max-component LL",
		Columns: []string{"sharp(0/1)", "EM runs", "fits", "sec"},
	}
	for _, sharp := range []bool{false, true} {
		q := p
		q.Pd = 0.3
		gen := q.synthetic(0)
		cfg := q.siteConfig(1)
		cfg.SharpTest = sharp
		st, dur, err := runSite(cfg, gen, q.Updates)
		if err != nil {
			return nil, err
		}
		stats := st.Stats()
		flag := 0.0
		if sharp {
			flag = 1
		}
		t.AddRow(flag, float64(stats.EMRuns), float64(stats.Fits), dur.Seconds())
	}
	t.AddNote("theorem 2's proof sharpens the test with the max-component statistic; both must track the same regime changes")
	return t, nil
}

// AblationVsDEM contrasts CluDistream's event-driven communication with
// the ring-circulating distributed EM of Nowak [20] on a *stationary*
// shared distribution — DEM's best case statistically and worst case
// communicationally: its parameters must keep circulating (one ring cycle
// per chunk interval to stay current) while CluDistream's sites go silent
// after the first chunk.
func AblationVsDEM(p Params) (*Table, error) {
	perSite := p.Updates / p.Sites
	m := chunkSizeFor(p)

	// One shared mixture across all nodes (DEM's assumption).
	shared := p.synthetic(0)
	datasets := make([][]linalg.Vector, p.Sites)
	for i := range datasets {
		datasets[i] = stream.Take(shared, perSite)
	}

	// DEM: one ring cycle per chunk interval of new data.
	cycles := perSite / m
	if cycles < 1 {
		cycles = 1
	}
	demRes, err := dem.Fit(datasets, dem.Config{
		K:      p.K,
		Cycles: cycles,
		EM:     em.Config{Seed: p.Seed, MaxIter: 30, Tol: 1e-3, MinVar: 1e-4},
	})
	if err != nil {
		return nil, err
	}

	// CluDistream over the same records.
	sys, err := newSystem(p, p.Dim, p.Sites)
	if err != nil {
		return nil, err
	}
	for rec := 0; rec < perSite; rec++ {
		for i := range datasets {
			if err := sys.Feed(i, datasets[i][rec]); err != nil {
				return nil, err
			}
		}
	}
	if err := sys.Drain(); err != nil {
		return nil, err
	}

	var all []linalg.Vector
	for _, ds := range datasets {
		all = append(all, tail(ds, p.RegimeLen/p.Sites+1)...)
	}
	t := &Table{
		Title:   "Ablation: CluDistream vs DEM [20] on a stationary shared distribution",
		Columns: []string{"CluD bytes", "DEM bytes", "CluD avgLL", "DEM avgLL"},
	}
	t.AddRow(float64(sys.TotalBytes()), float64(demRes.BytesTransmitted),
		quality(sys.GlobalMixture(), all), demRes.AvgLogLikelihood)
	t.AddNote("DEM must circulate parameters every cycle (%d hops); CluDistream transmits once per site and goes silent", demRes.Hops)
	return t, nil
}

// AblationIncomplete measures how clustering quality degrades as records
// lose attributes — the paper's motivating "noisy or incomplete data
// records". A CluDistream site consumes the same stream with 0%, 10% and
// 30% of attributes blanked (NaN); its current model is scored on complete
// held-out probes of the active regime. The claim: the marginal-likelihood
// EM degrades gracefully rather than collapsing.
func AblationIncomplete(p Params) (*Table, error) {
	t := &Table{
		Title:   "Ablation: clustering quality vs fraction of missing attributes",
		Columns: []string{"missing frac", "avgLL on complete probes", "EM runs"},
	}
	for _, frac := range []float64{0, 0.1, 0.3} {
		q := p
		q.Pd = 0 // isolate the missing-data effect from regime churn
		gen, err := stream.NewSynthetic(stream.SyntheticConfig{
			Dim:         q.Dim,
			K:           q.K,
			Pd:          0,
			RegimeLen:   q.RegimeLen,
			MissingFrac: frac,
			Seed:        q.Seed,
		})
		if err != nil {
			return nil, err
		}
		st, _, err := runSite(q.siteConfig(1), gen, q.Updates/2)
		if err != nil {
			return nil, err
		}
		// Complete probes from the same (stationary) regime.
		probeGen, err := stream.NewSynthetic(stream.SyntheticConfig{
			Dim: q.Dim, K: q.K, Pd: 0, RegimeLen: q.RegimeLen, Seed: q.Seed,
		})
		if err != nil {
			return nil, err
		}
		probes := stream.Take(probeGen, q.RegimeLen)
		var ll float64 = -10
		if cur := st.Current(); cur != nil {
			ll = quality(cur.Mixture, probes)
		}
		t.AddRow(frac, ll, float64(st.Stats().EMRuns))
	}
	t.AddNote("§1/§3: EM learns mixture parameters in the presence of incomplete data — quality should degrade gracefully with the missing fraction")
	return t, nil
}

// AblationMergeTree compares the coordinator's merged global mixture with
// the flat r·K union (the strategy §5.2 rejects): component count and
// recent-data quality.
func AblationMergeTree(p Params) (*Table, error) {
	sys, err := newSystem(p, p.Dim, p.Sites)
	if err != nil {
		return nil, err
	}
	gens := make([]stream.Generator, p.Sites)
	for i := range gens {
		q := p
		q.Seed = p.Seed + int64(i)*31
		gens[i] = q.synthetic(0)
	}
	perSite := p.Updates / p.Sites
	var recent []linalg.Vector
	for rec := 0; rec < perSite; rec++ {
		for i, g := range gens {
			x := g.Next()
			if err := sys.Feed(i, x); err != nil {
				return nil, err
			}
			recent = append(recent, x)
			if len(recent) > p.RegimeLen {
				recent = recent[1:]
			}
		}
	}
	if err := sys.Drain(); err != nil {
		return nil, err
	}
	merged := sys.GlobalMixture()
	flat := sys.Coordinator().FlatMixture()
	t := &Table{
		Title:   "Ablation: merged tree vs flat r·K union at the coordinator",
		Columns: []string{"merged K", "flat K", "merged LL", "flat LL"},
	}
	t.AddRow(float64(merged.K()), float64(flat.K()), quality(merged, recent), quality(flat, recent))
	t.AddNote("§5.2: the merged tree must use far fewer components at comparable quality")
	return t, nil
}
