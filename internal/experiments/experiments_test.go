package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run the Quick() profile and assert the *shape* each
// paper figure claims — they are the repository's executable statement that
// the reproduction reproduces.

func TestFig1MMergeTracksJMerge(t *testing.T) {
	for _, nfd := range []bool{true, false} {
		tb, err := Fig1(Quick(), nfd)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) != 28 {
			t.Fatalf("nfd=%v: %d pairs, want 28", nfd, len(tb.Rows))
		}
		// The correlation note must report strong agreement.
		assertNoteValueAtLeast(t, tb, "Spearman rank correlation", 0.5)
	}
}

func TestFig2aCluDistreamCheaperThanSEM(t *testing.T) {
	tb, err := Fig2a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	clud, semB := last[1], last[2]
	if clud <= 0 || semB <= 0 {
		t.Fatalf("degenerate byte counts: %v", last)
	}
	if clud >= semB {
		t.Fatalf("CluDistream bytes %v not below SEM %v", clud, semB)
	}
	// Cumulative series must be non-decreasing.
	for j := 1; j <= 2; j++ {
		col := tb.Col(j)
		for i := 1; i < len(col); i++ {
			if col[i] < col[i-1] {
				t.Fatalf("column %d not monotone: %v", j, col)
			}
		}
	}
}

func TestFig2bPdOrdering(t *testing.T) {
	tb, err := Fig2b(Quick())
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	pd01, pd05, semB := last[1], last[3], last[4]
	// Higher P_d costs at least as much, and everything stays below SEM.
	if pd05 < pd01 {
		t.Fatalf("P_d=0.5 cost %v below P_d=0.1 cost %v", pd05, pd01)
	}
	for _, v := range last[1:4] {
		if v >= semB {
			t.Fatalf("CluDistream cost %v not below SEM %v", v, semB)
		}
	}
}

func TestFig3HistogramsDiffer(t *testing.T) {
	tb, err := Fig3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Each time point's histogram must hold the full horizon mass.
	p := Quick()
	for j := 1; j <= 3; j++ {
		var total float64
		for _, v := range tb.Col(j) {
			total += v
		}
		if int(total) != p.RegimeLen {
			t.Fatalf("t%d histogram mass = %v, want %d", j, total, p.RegimeLen)
		}
	}
	// The three histograms must differ pairwise (evolving stream).
	diff := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += abs(a[i] - b[i])
		}
		return s
	}
	if diff(tb.Col(1), tb.Col(2)) < 100 || diff(tb.Col(2), tb.Col(3)) < 100 {
		t.Fatal("histograms at different time points are too similar")
	}
}

func TestFig4ModelsTrackRegimesAndSurviveNoise(t *testing.T) {
	tb, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Densities integrate to ~1 over the grid (Δx=0.5).
	for j := 1; j <= 4; j++ {
		var integral float64
		for _, v := range tb.Col(j) {
			integral += v * 0.5
		}
		if integral < 0.8 || integral > 1.1 {
			t.Fatalf("column %d integrates to %v", j, integral)
		}
	}
	// Noisy t3 must resemble clean t3: compare density curves.
	clean, noisy := tb.Col(3), tb.Col(4)
	var l1 float64
	for i := range clean {
		l1 += abs(clean[i]-noisy[i]) * 0.5
	}
	if l1 > 0.5 {
		t.Fatalf("noise changed the model too much: L1 = %v", l1)
	}
}

func TestFig5CluDistreamBeatsSEMInHorizon(t *testing.T) {
	p := Quick()
	p.Pd = 0.5 // regime churn is where the horizon comparison bites
	tb, err := Fig5(p)
	if err != nil {
		t.Fatal(err)
	}
	if gap := meanGap(tb, 1, 2); gap <= 0 {
		t.Fatalf("CluDistream mean horizon quality gap = %v, want > 0", gap)
	}
}

func TestFig6LandmarkOrdering(t *testing.T) {
	p := Quick()
	p.Pd = 0.5
	tb, err := Fig6(p)
	if err != nil {
		t.Fatal(err)
	}
	if gap := meanGap(tb, 1, 3); gap <= 0 {
		t.Fatalf("CluDistream does not beat sampling-EM: gap = %v", gap)
	}
}

func TestFig7CoordinatorQuality(t *testing.T) {
	p := Quick()
	p.Pd = 0.5
	tb, err := Fig7(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	// The paper's claim: CluDistream beats even a centralized SEM on the
	// recent horizon.
	if gap := meanGap(tb, 1, 2); gap <= 0 {
		t.Fatalf("coordinator does not beat centralized SEM: gap = %v", gap)
	}
}

func TestFig8CluDistreamFasterThanSEM(t *testing.T) {
	tb, err := Fig8(Quick(), false)
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] >= last[2] {
		t.Fatalf("CluDistream %vs not faster than SEM %vs", last[1], last[2])
	}
}

func TestFig9Shapes(t *testing.T) {
	p := Quick()
	p.Updates /= 2
	ta, err := Fig9a(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 4 {
		t.Fatalf("fig9a rows = %d", len(ta.Rows))
	}
	tbl, err := Fig9b(p)
	if err != nil {
		t.Fatal(err)
	}
	// Time must grow with d overall (first to last).
	if tbl.Rows[3][1] <= tbl.Rows[0][1] {
		t.Fatalf("time did not grow with d: %v", tbl.Col(1))
	}
}

func TestFig10MemoryShapes(t *testing.T) {
	tb, err := Fig10a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	col := tb.Col(1)
	// CluDistream memory must grow far slower than linearly: final/initial
	// well below the updates ratio.
	if col[len(col)-1] > col[0]*float64(len(col)) {
		t.Fatalf("memory grew superlinearly: %v", col)
	}
	tb2, err := Fig10b(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Linear in K: check exact ratios for d=10 column.
	c := tb2.Col(1)
	if c[1] != 2*c[0] || c[3] != 4*c[0] {
		t.Fatalf("memory not linear in K: %v", c)
	}
	// Slope grows with d.
	r0 := tb2.Rows[0]
	if !(r0[1] < r0[2] && r0[2] < r0[3] && r0[3] < r0[4]) {
		t.Fatalf("slope not increasing in d: %v", r0)
	}
}

func TestFig11EpsilonTradeoffs(t *testing.T) {
	p := Quick()
	p.Updates /= 2
	tb, err := Fig11(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Quality at the loosest ε must not exceed quality at the tightest by
	// much (paper: it degrades); allow noise but catch inversions.
	first, last := tb.Rows[0][1], tb.Rows[len(tb.Rows)-1][1]
	if last > first+0.5 {
		t.Fatalf("quality improved with looser ε: %v -> %v", first, last)
	}
}

func TestFig12DeltaTimeMonotoneish(t *testing.T) {
	p := Quick()
	p.Updates /= 2
	tb, err := Fig12(p)
	if err != nil {
		t.Fatal(err)
	}
	// Larger δ → smaller chunks → paper says time decreases; wall-clock is
	// noisy, so compare the extremes with slack.
	t0, tN := tb.Rows[0][3], tb.Rows[len(tb.Rows)-1][3]
	if tN > t0*2 {
		t.Fatalf("time grew strongly with δ: %v -> %v", t0, tN)
	}
}

func TestFig13CmaxSweetSpot(t *testing.T) {
	p := Quick()
	tb, err := Fig13(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// EM runs at c_max=4 (all regimes testable) must be far below c_max=1.
	em1, em4 := tb.Rows[0][2], tb.Rows[3][2]
	if em4 >= em1 {
		t.Fatalf("multi-test saved no EM runs: c_max=1→%v, c_max=4→%v", em1, em4)
	}
	// Tests performed grow with c_max.
	if tb.Rows[6][3] < tb.Rows[0][3] {
		t.Fatalf("tests did not grow with c_max: %v", tb.Col(3))
	}
}

func TestFig14PdCost(t *testing.T) {
	p := Quick()
	p.Updates /= 2
	tb, err := Fig14(p)
	if err != nil {
		t.Fatal(err)
	}
	// EM runs must increase with P_d, dramatically by P_d=1.
	emRuns := tb.Col(2)
	if emRuns[len(emRuns)-1] < 2*emRuns[0] {
		t.Fatalf("EM runs did not escalate with P_d: %v", emRuns)
	}
}

func TestAblations(t *testing.T) {
	p := Quick()
	p.Updates /= 2

	tac, err := AblationTestAndCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	// At P_d=0.1, test-and-cluster must be meaningfully faster.
	if speed := tac.Rows[0][3]; speed < 1.2 {
		t.Fatalf("test-and-cluster speedup = %v at P_d=0.1", speed)
	}

	amf, err := AblationMergeFit(p)
	if err != nil {
		t.Fatal(err)
	}
	moment, simplex, naive := amf.Rows[0][0], amf.Rows[0][1], amf.Rows[0][2]
	// Evaluation uses an independent Monte-Carlo stream, so allow a sliver
	// of noise — but the simplex must not genuinely lose.
	if simplex > moment+0.005 {
		t.Fatalf("simplex fit (%v) lost to moment merge (%v)", simplex, moment)
	}
	if naive < moment {
		t.Fatalf("naive floor (%v) beat moment merge (%v)?", naive, moment)
	}

	act, err := AblationCovType(p)
	if err != nil {
		t.Fatal(err)
	}
	if act.Rows[0][3] >= act.Rows[0][2] {
		t.Fatalf("diagonal storage not smaller: %v", act.Rows[0])
	}

	ast, err := AblationSharpTest(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ast.Rows) != 2 {
		t.Fatal("sharp-test ablation incomplete")
	}

	amt, err := AblationMergeTree(p)
	if err != nil {
		t.Fatal(err)
	}
	if amt.Rows[0][0] > amt.Rows[0][1] {
		t.Fatalf("merged K %v exceeds flat K %v", amt.Rows[0][0], amt.Rows[0][1])
	}

	avd, err := AblationVsDEM(p)
	if err != nil {
		t.Fatal(err)
	}
	cludBytes, demBytes := avd.Rows[0][0], avd.Rows[0][1]
	if cludBytes >= demBytes {
		t.Fatalf("CluDistream bytes %v not below DEM %v on a stationary stream", cludBytes, demBytes)
	}
	// Quality should be in the same ballpark — DEM has the statistical
	// advantage (shared-distribution assumption holds exactly here), so
	// only require CluDistream within 1.5 nats.
	if gap := avd.Rows[0][2] - avd.Rows[0][3]; gap < -1.5 {
		t.Fatalf("CluDistream quality collapsed vs DEM: gap %v", gap)
	}

	ai, err := AblationIncomplete(p)
	if err != nil {
		t.Fatal(err)
	}
	clean, ten, thirty := ai.Rows[0][1], ai.Rows[1][1], ai.Rows[2][1]
	// Graceful degradation: 30% missing costs at most 1 nat vs clean, and
	// the ordering never inverts badly.
	if thirty < clean-1.0 {
		t.Fatalf("missing data collapsed quality: clean %v vs 30%% %v", clean, thirty)
	}
	if ten < thirty-0.3 {
		t.Fatalf("10%% missing (%v) much worse than 30%% (%v)?", ten, thirty)
	}
}

func TestAblationSnapshots(t *testing.T) {
	tb, err := AblationSnapshots(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	eventEntries, eventAcc := tb.Rows[0][1], tb.Rows[0][2]
	// The event-driven historian must be (near-)perfect.
	if eventAcc < 0.9 {
		t.Fatalf("event-driven accuracy = %v", eventAcc)
	}
	for _, row := range tb.Rows[1:] {
		s, entries, acc := row[0], row[1], row[2]
		switch s {
		case 1:
			// Snapshot-every-chunk: as accurate but redundant storage.
			if acc < eventAcc-0.1 {
				t.Fatalf("S=1 accuracy %v below event-driven %v", acc, eventAcc)
			}
			if entries <= eventEntries {
				t.Fatalf("S=1 stored %v entries, should exceed event-driven %v", entries, eventEntries)
			}
		case 4:
			// Sparse snapshots miss the one-chunk burst.
			if acc >= eventAcc {
				t.Fatalf("S=4 accuracy %v should trail event-driven %v", acc, eventAcc)
			}
		}
	}
}

func TestAblationHierarchy(t *testing.T) {
	if testing.Short() {
		t.Skip("hierarchy ablation needs a long steady-state run")
	}
	tb, err := AblationHierarchy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	flatSteady, treeSteady := tb.Rows[0][2], tb.Rows[1][2]
	// The §7 claim is about steady state: the tree's root link must be at
	// least as quiet as the flat star's (ideally silent).
	if treeSteady > flatSteady {
		t.Fatalf("tree root link (%v B) louder than flat (%v B) at steady state", treeSteady, flatSteady)
	}
}

func TestSuiteComplete(t *testing.T) {
	s := Suite()
	if len(s) != 29 {
		t.Fatalf("suite has %d runners", len(s))
	}
	names := map[string]bool{}
	for _, r := range s {
		if names[r.Name] {
			t.Fatalf("duplicate runner %q", r.Name)
		}
		names[r.Name] = true
		if r.Run == nil {
			t.Fatalf("runner %q has no Run", r.Name)
		}
	}
	if Find("fig2a") == nil || Find("nope") != nil {
		t.Fatal("Find broken")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddNote("note %d", 7)
	out := tb.Render()
	for _, want := range []string{"== T ==", "a", "bb", "2.5", "# note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableAddRowPanics(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow(1, 2)
}

// assertNoteValueAtLeast parses "... = X" from the note containing key and
// asserts X ≥ min.
func assertNoteValueAtLeast(t *testing.T, tb *Table, key string, min float64) {
	t.Helper()
	for _, n := range tb.Notes {
		if strings.Contains(n, key) {
			var v float64
			idx := strings.LastIndex(n, "= ")
			if idx < 0 {
				t.Fatalf("note %q has no value", n)
			}
			if _, err := fmtSscan(n[idx+2:], &v); err != nil {
				t.Fatalf("unparseable note %q: %v", n, err)
			}
			if v < min {
				t.Fatalf("%s = %v, want ≥ %v", key, v, min)
			}
			return
		}
	}
	t.Fatalf("no note mentioning %q in %v", key, tb.Notes)
}
