package experiments

import (
	"math"
	"sort"

	"cludistream/internal/em"
	"cludistream/internal/gaussian"
	"cludistream/internal/metrics"
	"cludistream/internal/stream"
)

// Fig1 reproduces Figure 1: with an 8-component model fitted to real-like
// (NFD) or synthetic data, the transmit-free M_merge criterion tracks
// SMEM's data-driven J_merge across all 28 component pairs. Both series are
// min-max normalized exactly as the paper does, and pairs are ordered by
// descending M_merge (the paper's x-axis is the pair index).
func Fig1(p Params, useNFD bool) (*Table, error) {
	const k = 8
	var gen stream.Generator
	name := "synthetic"
	if useNFD {
		gen = p.nfd()
		name = "NFD"
	} else {
		gen = p.synthetic(0)
	}
	n := p.Updates / 10
	if n < 2000 {
		n = 2000
	}
	data := stream.Take(gen, n)
	res, err := em.Fit(data, em.Config{K: k, Seed: p.Seed, MaxIter: 60, Tol: 1e-3, MinVar: 1e-5})
	if err != nil {
		return nil, err
	}
	mix := res.Mixture

	type pair struct{ mm, jm float64 }
	var pairs []pair
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairs = append(pairs, pair{
				mm: gaussian.MMerge(mix.Component(i), mix.Component(j)),
				jm: gaussian.JMerge(mix, i, j, data),
			})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].mm > pairs[b].mm })
	mms := make([]float64, len(pairs))
	jms := make([]float64, len(pairs))
	maxFinite := 0.0
	for _, pr := range pairs {
		if !math.IsInf(pr.mm, 1) && pr.mm > maxFinite {
			maxFinite = pr.mm
		}
	}
	for i, pr := range pairs {
		mms[i] = pr.mm
		if math.IsInf(mms[i], 1) { // coincident means: winsorize for plotting
			mms[i] = maxFinite * 10
		}
		jms[i] = pr.jm
	}
	nm := gaussian.NormalizeSeries(mms)
	nj := gaussian.NormalizeSeries(jms)

	t := &Table{
		Title:   "Figure 1 (" + name + "): M_merge vs J_merge across component pairs",
		Columns: []string{"pair", "M_merge(norm)", "J_merge(norm)"},
	}
	for i := range nm {
		t.AddRow(float64(i+1), nm[i], nj[i])
	}
	t.AddNote("paper: the two normalized curves are very similar — M_merge is a sufficient replacement for J_merge")
	// Rank correlation is the honest agreement measure here: M_merge blows
	// up for near-coincident components, so min-max normalization squashes
	// everything else toward 0 and linear correlation understates the
	// agreement the figure shows.
	t.AddNote("measured: Spearman rank correlation = %.3f over %d pairs (Pearson %.3f)",
		metrics.Spearman(mms, jms), len(nm), metrics.Pearson(nm, nj))
	return t, nil
}
