package experiments

import (
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/sem"
	"cludistream/internal/site"
	"cludistream/internal/stream"
	"cludistream/internal/window"
)

// sweepQualityAndTime runs a CluDistream site over a synthetic stream with
// the given parameters and returns (avg recent-horizon quality at the
// checkpoints' mean, total seconds). The SEM comparator runs on an
// identical stream when wantSEM is set.
func sweepQualityAndTime(p Params, wantSEM bool) (cludQ, semQ, cludSec float64, err error) {
	gen := p.synthetic(0)
	st, err := site.New(p.siteConfig(1))
	if err != nil {
		return 0, 0, 0, err
	}
	var sm *sem.SEM
	var genSEM stream.Generator
	if wantSEM {
		if sm, err = newSEM(p); err != nil {
			return 0, 0, 0, err
		}
		genSEM = p.synthetic(0)
	}
	h := p.RegimeLen
	m := st.ChunkSize()
	windowChunks := (h + m - 1) / m
	recent := make([]linalg.Vector, 0, h)

	_, dur, err := func() (*site.Site, float64, error) {
		start := nowSeconds()
		checkpoints := p.checkpointsFor(p.Updates)
		next := 0
		var qSum float64
		var qN int
		var sSum float64
		for rec := 1; rec <= p.Updates; rec++ {
			x := gen.Next()
			if _, err := st.Observe(x); err != nil {
				return nil, 0, err
			}
			recent = append(recent, x)
			if len(recent) > h {
				recent = recent[1:]
			}
			if sm != nil {
				if err := sm.Observe(genSEM.Next()); err != nil {
					return nil, 0, err
				}
			}
			if next < len(checkpoints) && rec == checkpoints[next] {
				next++
				cw := window.Mixture(st, st.ChunksSeen()-windowChunks+1, st.ChunksSeen())
				qSum += quality(cw, recent)
				if sm != nil {
					sSum += quality(sm.Model(), recent)
				}
				qN++
			}
		}
		elapsed := nowSeconds() - start
		if qN > 0 {
			cludQ = qSum / float64(qN)
			semQ = sSum / float64(qN)
		}
		return st, elapsed, nil
	}()
	if err != nil {
		return 0, 0, 0, err
	}
	return cludQ, semQ, dur, nil
}

// Fig11 reproduces Figure 11: clustering quality (a) and processing time
// (b) as ε varies from 0.01 to 0.1.
func Fig11(p Params) (*Table, error) {
	t := &Table{
		Title:   "Figure 11: quality and time vs epsilon",
		Columns: []string{"epsilon", "CluDistream avgLL", "SEM avgLL", "CluDistream sec"},
	}
	for _, eps := range []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.1} {
		q := p
		// The sweep axis is the paper's nominal ε; scale both the chunk-size
		// driver and the calibrated fit threshold by the same factor so the
		// profile's calibration is preserved across the sweep.
		factor := eps / 0.02
		q.Epsilon = p.Epsilon * factor
		q.FitEps = p.FitEps * factor
		cq, sq, sec, err := sweepQualityAndTime(q, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(eps, cq, sq, sec)
	}
	t.AddNote("paper: quality degrades as ε grows but stays above SEM (≥ −1.01); time is U-shaped with a minimum near ε=0.04")
	return t, nil
}

// Fig12 reproduces Figure 12: quality (a) and time (b) as δ varies from
// 0.01 to 0.1.
func Fig12(p Params) (*Table, error) {
	t := &Table{
		Title:   "Figure 12: quality and time vs delta",
		Columns: []string{"delta", "CluDistream avgLL", "SEM avgLL", "CluDistream sec"},
	}
	for _, delta := range []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.1} {
		q := p
		q.Delta = delta
		cq, sq, sec, err := sweepQualityAndTime(q, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(delta, cq, sq, sec)
	}
	t.AddNote("paper: quality high for δ∈[0.01,0.04], deteriorates by δ=0.1 yet stays above SEM; time decreases as δ grows")
	return t, nil
}

// Fig13 reproduces Figure 13: processing time vs c_max on a stream that
// alternates between a fixed set of distributions — the scenario the
// multi-test strategy targets. The paper finds the minimum at c_max = 3–4.
func Fig13(p Params) (*Table, error) {
	// Build 4 alternating regimes so re-activating archived models pays
	// off for c_max ≥ 4 but wastes tests beyond that.
	mk := func(center float64) *gaussian.Mixture {
		comps := make([]*gaussian.Component, p.K)
		ws := make([]float64, p.K)
		for j := range comps {
			mean := linalg.NewVector(p.Dim)
			for i := range mean {
				mean[i] = center + float64(j)*2
			}
			comps[j] = gaussian.Spherical(mean, 1)
			ws[j] = 1
		}
		return gaussian.MustMixture(ws, comps)
	}
	regimes := []*gaussian.Mixture{mk(-30), mk(-10), mk(10), mk(30)}

	t := &Table{
		Title:   "Figure 13: processing time vs c_max (alternating distributions)",
		Columns: []string{"c_max", "sec", "EM runs", "tests"},
	}
	m := chunkSizeFor(p)
	for cmax := 1; cmax <= 7; cmax++ {
		gen, err := stream.NewAlternating(regimes, 2*m, p.Seed)
		if err != nil {
			return nil, err
		}
		cfg := p.siteConfig(1)
		cfg.CMax = cmax
		st, dur, err := runSite(cfg, gen, p.Updates)
		if err != nil {
			return nil, err
		}
		stats := st.Stats()
		t.AddRow(float64(cmax), dur.Seconds(), float64(stats.EMRuns), float64(stats.Tests))
	}
	t.AddNote("paper: minimum processing time at c_max=3 or 4; both smaller and larger c_max cost more")
	return t, nil
}

// Fig14 reproduces Figure 14: processing time vs P_d. Per the power-law
// discussion of Theorem 4, time grows slowly while P_d is small and
// dramatically as P_d approaches 1 (every chunk needs a fresh EM run).
func Fig14(p Params) (*Table, error) {
	t := &Table{
		Title:   "Figure 14: processing time vs P_d",
		Columns: []string{"P_d", "sec", "EM runs"},
	}
	for _, pd := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		q := p
		q.Pd = pd
		// Regime boundaries aligned with chunks make P_d's effect crisp.
		q.RegimeLen = chunkSizeFor(p)
		gen := q.synthetic(0)
		st, dur, err := runSite(q.siteConfig(1), gen, p.Updates)
		if err != nil {
			return nil, err
		}
		t.AddRow(pd, dur.Seconds(), float64(st.Stats().EMRuns))
	}
	t.AddNote("paper: slow growth for small P_d, dramatic increase as P_d→1")
	return t, nil
}
