package experiments

import (
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/metrics"
	"cludistream/internal/site"
	"cludistream/internal/stream"
)

// fig34Stream builds the 1-d visualization stream of Figures 3–4: three
// clearly distinct regimes, one per horizon H, so the three time points
// show three different densities.
func fig34Stream(p Params, h int) (*stream.Alternating, error) {
	mk := func(m1, m2 float64) *gaussian.Mixture {
		return gaussian.MustMixture(
			[]float64{0.6, 0.4},
			[]*gaussian.Component{
				gaussian.Spherical(linalg.Vector{m1}, 0.8),
				gaussian.Spherical(linalg.Vector{m2}, 0.5),
			})
	}
	regimes := []*gaussian.Mixture{mk(-6, -2), mk(0, 4), mk(6, -4)}
	return stream.NewAlternating(regimes, h, p.Seed)
}

// Fig3 reproduces Figure 3: histograms of the 1-d synthetic stream in a
// horizon H=2k at three time points. Columns are the bin center and the
// three per-time-point counts.
func Fig3(p Params) (*Table, error) {
	h := p.RegimeLen
	gen, err := fig34Stream(p, h)
	if err != nil {
		return nil, err
	}
	const bins = 24
	lo, hi := -10.0, 10.0
	var hists [3][]int
	for tp := 0; tp < 3; tp++ {
		window := stream.Take(gen, h)
		hists[tp] = metrics.Histogram(window, 0, bins, lo, hi)
	}
	t := &Table{
		Title:   "Figure 3: histograms of 1-d synthetic data in horizon H at 3 time points",
		Columns: []string{"bin center", "t1 count", "t2 count", "t3 count"},
	}
	width := (hi - lo) / bins
	for b := 0; b < bins; b++ {
		t.AddRow(lo+(float64(b)+0.5)*width, float64(hists[0][b]), float64(hists[1][b]), float64(hists[2][b]))
	}
	t.AddNote("paper: the three histograms show clearly different bimodal shapes (the evolving stream)")
	return t, nil
}

// Fig4 reproduces Figure 4: the densities of the CluDistream models at the
// three Figure-3 time points, plus (d) the third time point re-run with 5%%
// uniform noise — the model must stay essentially the same.
func Fig4(p Params) (*Table, error) {
	h := p.RegimeLen
	run := func(noise float64) ([3]*gaussian.Mixture, error) {
		gen, err := fig34Stream(p, h)
		if err != nil {
			return [3]*gaussian.Mixture{}, err
		}
		cfg := p.siteConfig(1)
		cfg.Dim = 1
		cfg.K = 3 // the visualization regimes are bimodal; 3 leaves slack
		// The 1-d visualization wants several chunks per regime and a fit
		// threshold comfortably above same-regime fluctuation yet far below
		// the regime gaps (which are tens of nats here).
		cfg.ChunkSize = h / 3
		cfg.FitEps = 1.0
		s, err := site.New(cfg)
		if err != nil {
			return [3]*gaussian.Mixture{}, err
		}
		var snaps [3]*gaussian.Mixture
		for tp := 0; tp < 3; tp++ {
			for i := 0; i < h; i++ {
				x := gen.Next()
				if noise > 0 && i%20 == 0 { // 5% uniform noise
					x = linalg.Vector{(float64(i%41)/40 - 0.5) * 24}
				}
				if _, err := s.Observe(x); err != nil {
					return snaps, err
				}
			}
			if cur := s.Current(); cur != nil {
				snaps[tp] = cur.Mixture
			}
		}
		return snaps, nil
	}
	clean, err := run(0)
	if err != nil {
		return nil, err
	}
	noisy, err := run(0.05)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Figure 4: CluDistream model densities at 3 time points (+5% noise variant of t3)",
		Columns: []string{"x", "p(x) t1", "p(x) t2", "p(x) t3", "p(x) t3 noisy"},
	}
	for x := -10.0; x <= 10.0; x += 0.5 {
		xv := linalg.Vector{x}
		t.AddRow(x,
			densityOrZero(clean[0], xv),
			densityOrZero(clean[1], xv),
			densityOrZero(clean[2], xv),
			densityOrZero(noisy[2], xv))
	}
	t.AddNote("paper: each model matches its time point's histogram; the noisy run captures the same model as the clean one")
	if clean[2] != nil && noisy[2] != nil {
		probe := stream.Take(mustFig34(p, h), 3*h)
		recent := probe[2*h:]
		t.AddNote("measured: |LL(clean t3) − LL(noisy t3)| on t3 data = %.3f",
			abs(quality(clean[2], recent)-quality(noisy[2], recent)))
	}
	return t, nil
}

func mustFig34(p Params, h int) *stream.Alternating {
	g, err := fig34Stream(p, h)
	if err != nil {
		panic(err)
	}
	return g
}

func densityOrZero(m *gaussian.Mixture, x linalg.Vector) float64 {
	if m == nil {
		return 0
	}
	return m.PDF(x)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
