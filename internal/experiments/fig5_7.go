package experiments

import (
	"math/rand"

	"cludistream/internal/linalg"
	"cludistream/internal/sem"
	"cludistream/internal/site"
	"cludistream/internal/stream"
	"cludistream/internal/window"
)

// Fig5 reproduces Figure 5: clustering quality in a horizon (sliding
// window) at successive time points — CluDistream's window mixture vs the
// single SEM model, both evaluated by average log-likelihood on the most
// recent H records.
func Fig5(p Params) (*Table, error) {
	h := p.RegimeLen
	gen := p.synthetic(0)

	st, err := site.New(p.siteConfig(1))
	if err != nil {
		return nil, err
	}
	sm, err := sem.New(p.semConfig())
	if err != nil {
		return nil, err
	}
	m := st.ChunkSize()
	windowChunks := (h + m - 1) / m
	if windowChunks < 1 {
		windowChunks = 1
	}

	t := &Table{
		Title:   "Figure 5: cluster quality in a horizon over time (synthetic)",
		Columns: []string{"updates", "CluDistream avgLL", "SEM avgLL"},
	}
	checkpoints := p.checkpointsFor(p.Updates)
	next := 0
	recent := make([]linalg.Vector, 0, h)
	for rec := 1; rec <= p.Updates; rec++ {
		x := gen.Next()
		if _, err := st.Observe(x); err != nil {
			return nil, err
		}
		if err := sm.Observe(x); err != nil {
			return nil, err
		}
		recent = append(recent, x)
		if len(recent) > h {
			recent = recent[1:]
		}
		if next < len(checkpoints) && rec == checkpoints[next] {
			next++
			cw := window.Mixture(st, st.ChunksSeen()-windowChunks+1, st.ChunksSeen())
			if cw == nil || sm.Model() == nil {
				continue // cold start
			}
			t.AddRow(float64(rec), quality(cw, recent), quality(sm.Model(), recent))
		}
	}
	t.AddNote("paper: CluDistream clearly outperforms SEM — SEM fits chunks from different distributions into one model")
	t.AddNote("measured: mean gap = %.3f", meanGap(t, 1, 2))
	return t, nil
}

// Fig6 reproduces Figure 6: clustering quality in a landmark window —
// CluDistream vs SEM vs sampling-based EM, evaluated on a uniform reservoir
// of everything seen so far.
func Fig6(p Params) (*Table, error) {
	gen := p.synthetic(0)
	st, err := site.New(p.siteConfig(1))
	if err != nil {
		return nil, err
	}
	sm, err := sem.New(p.semConfig())
	if err != nil {
		return nil, err
	}
	emCfg := p.semConfig().EM
	emCfg.K = p.K
	sampler, err := sem.NewSamplingEM(p.SEMBuffer/2, emCfg, p.Seed+5)
	if err != nil {
		return nil, err
	}

	// Evaluation reservoir: a uniform sample of the whole landmark window.
	evalRng := rand.New(rand.NewSource(p.Seed + 99))
	const evalCap = 2000
	var eval []linalg.Vector
	seen := 0

	t := &Table{
		Title:   "Figure 6: cluster quality in a landmark window (synthetic)",
		Columns: []string{"updates", "CluDistream avgLL", "SEM avgLL", "sampling-EM avgLL"},
	}
	checkpoints := p.checkpointsFor(p.Updates)
	next := 0
	for rec := 1; rec <= p.Updates; rec++ {
		x := gen.Next()
		if _, err := st.Observe(x); err != nil {
			return nil, err
		}
		if err := sm.Observe(x); err != nil {
			return nil, err
		}
		sampler.Observe(x)
		seen++
		if len(eval) < evalCap {
			eval = append(eval, x)
		} else if j := evalRng.Intn(seen); j < evalCap {
			eval[j] = x
		}
		if next < len(checkpoints) && rec == checkpoints[next] {
			next++
			if st.LandmarkMixture() == nil || sm.Model() == nil || sampler.Model() == nil {
				continue // cold start
			}
			t.AddRow(float64(rec),
				quality(st.LandmarkMixture(), eval),
				quality(sm.Model(), eval),
				quality(sampler.Model(), eval))
		}
	}
	t.AddNote("paper: CluDistream highest, slightly above SEM, well above sampling-based EM")
	t.AddNote("measured: mean gap over SEM = %.3f, over sampling = %.3f", meanGap(t, 1, 2), meanGap(t, 1, 3))
	return t, nil
}

// Fig7 reproduces Figure 7: quality at the coordinator over r distributed
// streams — CluDistream's merged global mixture vs a *centralized* SEM fed
// every update, evaluated on the pooled recent horizon. useNFD selects
// panel (a) (NFD-like streams, small horizon) vs (b) (synthetic, larger
// horizon).
func Fig7(p Params, useNFD bool) (*Table, error) {
	if useNFD {
		p = p.nfdParams()
	}
	perSite := p.Updates / p.Sites
	gens := make([]stream.Generator, p.Sites)
	dim := p.Dim
	for i := range gens {
		q := p
		q.Seed = p.Seed + int64(i)*31
		if useNFD {
			gens[i] = q.nfd()
		} else {
			gens[i] = q.synthetic(0)
		}
	}

	sys, err := newSystem(p, dim, len(gens))
	if err != nil {
		return nil, err
	}
	semCfg := p.semConfig()
	semCfg.Dim = dim
	central, err := sem.New(semCfg)
	if err != nil {
		return nil, err
	}

	h := p.RegimeLen
	recent := make([]linalg.Vector, 0, h)
	name := "synthetic"
	if useNFD {
		name = "NFD"
	}
	t := &Table{
		Title:   "Figure 7 (" + name + "): cluster quality at the coordinator",
		Columns: []string{"updates/site", "CluDistream avgLL", "centralized SEM avgLL"},
	}
	checkpoints := p.checkpointsFor(perSite)
	next := 0
	for rec := 1; rec <= perSite; rec++ {
		for i, g := range gens {
			x := g.Next()
			if err := sys.Feed(i, x); err != nil {
				return nil, err
			}
			if err := central.Observe(x); err != nil {
				return nil, err
			}
			recent = append(recent, x)
			if len(recent) > h {
				recent = recent[1:]
			}
		}
		if next < len(checkpoints) && rec == checkpoints[next] {
			next++
			if err := sys.Drain(); err != nil {
				return nil, err
			}
			gm := sys.GlobalMixture()
			cm := central.Model()
			if gm == nil || cm == nil {
				continue // cold start: neither side has a model to compare yet
			}
			t.AddRow(float64(rec), quality(gm, recent), quality(cm, recent))
		}
	}
	t.AddNote("paper: CluDistream beats even a centralized SEM on recent-horizon quality")
	t.AddNote("measured: mean gap = %.3f", meanGap(t, 1, 2))
	return t, nil
}

// meanGap returns mean(col a − col b) over a table's rows.
func meanGap(t *Table, a, b int) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	var s float64
	for _, r := range t.Rows {
		s += r[a] - r[b]
	}
	return s / float64(len(t.Rows))
}
