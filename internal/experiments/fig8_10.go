package experiments

import (
	"cludistream/internal/site"
	"cludistream/internal/stream"
)

// Fig8 reproduces Figure 8: per-site processing time vs number of updates
// for CluDistream and SEM. useNFD selects panel (a) vs (b). Both processors
// consume identical records; times are wall-clock seconds.
func Fig8(p Params, useNFD bool) (*Table, error) {
	name := "synthetic"
	if useNFD {
		name = "NFD"
	}
	t := &Table{
		Title:   "Figure 8 (" + name + "): processing time vs updates",
		Columns: []string{"updates", "CluDistream sec", "SEM sec"},
	}
	for _, n := range p.checkpointsFor(p.Updates) {
		q := p
		var gen1, gen2 stream.Generator
		if useNFD {
			q = q.nfdParams()
			gen1, gen2 = q.nfd(), q.nfd()
		} else {
			gen1, gen2 = q.synthetic(0), q.synthetic(0)
		}
		st, dClud, err := runSite(q.siteConfig(1), gen1, n)
		if err != nil {
			return nil, err
		}
		_, dSEM, err := runSEM(q.semConfig(), gen2, n)
		if err != nil {
			return nil, err
		}
		_ = st
		t.AddRow(float64(n), dClud.Seconds(), dSEM.Seconds())
	}
	t.AddNote("paper: both linear; CluDistream >1000 updates/s vs SEM <400 updates/s")
	if last := len(t.Rows) - 1; last >= 0 {
		r := t.Rows[last]
		t.AddNote("measured: CluDistream %.0f upd/s, SEM %.0f upd/s", r[0]/r[1], r[0]/r[2])
	}
	return t, nil
}

// Fig9a reproduces Figure 9(a): CluDistream processing time vs cluster
// number K, linear in K.
func Fig9a(p Params) (*Table, error) {
	t := &Table{
		Title:   "Figure 9(a): processing time vs cluster number K",
		Columns: []string{"K", "CluDistream sec"},
	}
	for _, k := range []int{10, 20, 30, 40} {
		q := p
		q.K = k
		cfg := q.siteConfig(1)
		// Fresh-regime stream per K so EM always has K-cluster structure.
		gen := q.synthetic(0)
		_, d, err := runSite(cfg, gen, p.Updates)
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(k), d.Seconds())
	}
	t.AddNote("paper: processing time linear in K")
	return t, nil
}

// Fig9b reproduces Figure 9(b): CluDistream processing time vs
// dimensionality d, linear in d. The Theorem-1 chunk size grows linearly in
// d as well, which the paper's setup inherits; we hold the chunk count
// comparable by fixing the chunk size to its d=10 value so the measured
// scaling isolates the per-record cost.
func Fig9b(p Params) (*Table, error) {
	t := &Table{
		Title:   "Figure 9(b): processing time vs dimensionality d",
		Columns: []string{"d", "CluDistream sec"},
	}
	base := p
	base.Dim = 10
	fixedChunk := chunkSizeFor(base)
	for _, d := range []int{10, 20, 30, 40} {
		q := p
		q.Dim = d
		cfg := q.siteConfig(1)
		cfg.ChunkSize = fixedChunk
		gen := q.synthetic(0)
		_, dur, err := runSite(cfg, gen, p.Updates)
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(d), dur.Seconds())
	}
	t.AddNote("paper: processing time scales linearly with dimensionality")
	return t, nil
}

// Fig10a reproduces Figure 10(a): per-site memory vs updates on the
// NFD-like stream, for CluDistream (buffer + model list) and SEM (buffer +
// discard sets). The paper highlights CluDistream's slow growth: +10 kB
// from 100k to 500k updates.
func Fig10a(p Params) (*Table, error) {
	q := p.nfdParams()
	cfg := q.siteConfig(1)
	st, err := site.New(cfg)
	if err != nil {
		return nil, err
	}
	smInst, err := newSEM(q)
	if err != nil {
		return nil, err
	}
	gen := q.nfd()
	gen2 := q.nfd()
	t := &Table{
		Title:   "Figure 10(a): memory usage vs updates (NFD)",
		Columns: []string{"updates", "CluDistream bytes", "SEM bytes"},
	}
	checkpoints := p.checkpointsFor(p.Updates)
	next := 0
	for rec := 1; rec <= p.Updates; rec++ {
		if _, err := st.Observe(gen.Next()); err != nil {
			return nil, err
		}
		if err := smInst.Observe(gen2.Next()); err != nil {
			return nil, err
		}
		if next < len(checkpoints) && rec == checkpoints[next] {
			next++
			t.AddRow(float64(rec), float64(st.ModelListBytes()+st.BufferBytes()), float64(smInst.MemoryBytes()))
		}
	}
	t.AddNote("paper: CluDistream memory grows very slowly with the stream (only +10kB over 100k→500k updates)")
	return t, nil
}

// Fig10b reproduces Figure 10(b): memory consumption linear in K with
// slopes growing in d. Memory here is the analytic Theorem-3 model with
// B = 1 (a single active model), matching the paper's single-distribution
// measurement.
func Fig10b(p Params) (*Table, error) {
	t := &Table{
		Title:   "Figure 10(b): model memory vs K for several d",
		Columns: []string{"K", "bytes d=10", "bytes d=20", "bytes d=30", "bytes d=40"},
	}
	for _, k := range []int{10, 20, 30, 40} {
		row := []float64{float64(k)}
		for _, d := range []int{10, 20, 30, 40} {
			perComp := 8 * (1 + d + d*(d+1)/2)
			row = append(row, float64(k*perComp))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: memory linear in K; larger d gives steeper slopes")
	return t, nil
}
