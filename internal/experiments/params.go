package experiments

import (
	"time"

	"cludistream/internal/chunk"
	"cludistream/internal/em"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/sem"
	"cludistream/internal/site"
	"cludistream/internal/stream"
	"cludistream/internal/telemetry"

	root "cludistream"
)

// Params scales the experiment suite. Paper() reproduces the paper's
// settings (δ=0.01, ε=0.02, d=4, K=5, P_d=0.1, r=20, c_max=4,
// updates=100k); Quick() shrinks the workload ~20× so the whole suite runs
// in seconds inside tests and benchmarks without changing any shape.
type Params struct {
	// Updates is the stream length per experiment (paper: 100_000).
	Updates int
	// Sites is r (paper: 20).
	Sites int
	// Dim is d (paper: 4).
	Dim int
	// K is the components per model (paper: 5).
	K int
	// Epsilon, Delta are the paper's ε and δ.
	Epsilon, Delta float64
	// FitEps is the J_fit threshold actually applied (see site.Config.FitEps:
	// the training-chunk reference carries an overfit bias the nominal ε
	// cannot absorb). Calibrated to ~3× the measured stationary
	// chunk-to-chunk fluctuation at this profile's chunk size.
	FitEps float64
	// FitEpsNFD is the threshold for the heavier-tailed NFD-like streams.
	FitEpsNFD float64
	// Pd is the regime-change probability (paper: 0.1).
	Pd float64
	// CMax is c_max (paper: 4).
	CMax int
	// RegimeLen is points between regime draws (paper: 2000).
	RegimeLen int
	// Seed drives every generator and fit.
	Seed int64
	// SEMBuffer is the scalable-EM buffer size.
	SEMBuffer int
	// SamplePoints is how many x-axis points sweeps produce.
	SamplePoints int
	// WarmStart selects the sites' refit-seeding policy (empty ⇒
	// site.WarmStartOn): warm refits seed EM from the best-scoring tested
	// model when drift stayed inside the WarmMargin gate, which cuts EM
	// iterations without changing which chunks refit. site.WarmStartCold
	// restores the pre-warm-start cold k-means++ path for A/B runs.
	WarmStart string
	// PruneTopM selects the sites' k-d-pruned J_fit scoring (0 ⇒ the
	// default top-4; negative disables pruning for A/B runs). Decisions are
	// bit-identical either way (see site.Config.PruneTopM).
	PruneTopM int
	// SharedChunkStats selects the sites' shared per-chunk scoring
	// workspace (empty ⇒ site.SharedStatsOn; site.SharedStatsOff restores
	// per-probe re-scans for A/B runs).
	SharedChunkStats string
	// IncrementalRemerge selects the coordinator's stability-sweep
	// scheduling (empty ⇒ coordinator.RemergeOn; "exact" and "off" are the
	// reference schedules; see coordinator.Config.IncrementalRemerge).
	IncrementalRemerge string
	// EMWorkers caps the worker goroutines of every inner EM fit (0 ⇒
	// GOMAXPROCS). Fitted models are bit-identical at any value — the
	// fused E-step reduces on fixed shard boundaries — so figures never
	// depend on the core count they were produced on.
	EMWorkers int
	// Telemetry, when non-nil, instruments every site, EM fit, system and
	// coordinator the suite constructs. Figures are unchanged with it on
	// (telemetry never alters clustering output).
	Telemetry *telemetry.Registry
}

// Paper returns the paper's parameter setting.
func Paper() Params {
	return Params{
		Updates:      100_000,
		Sites:        20,
		Dim:          4,
		K:            5,
		Epsilon:      0.02,
		Delta:        0.01,
		FitEps:       0.25,
		FitEpsNFD:    2.5,
		Pd:           0.1,
		CMax:         4,
		RegimeLen:    2000,
		Seed:         1,
		SEMBuffer:    1000,
		SamplePoints: 10,
	}
}

// Quick returns a scaled-down setting for tests and benchmarks: smaller
// streams and fewer sites, with ε loosened in proportion to the shorter
// chunks so the test-and-cluster behaviour is preserved.
func Quick() Params {
	p := Paper()
	p.Updates = 6_000
	p.Sites = 4
	p.RegimeLen = 600
	p.Epsilon = 0.1 // keeps M(d=4) at 314 records — several chunks per regime
	p.FitEps = 0.8
	p.FitEpsNFD = 1.2
	p.SEMBuffer = 300
	p.SamplePoints = 5
	return p
}

// nfdParams adapts the profile for NFD-like streams: d = 6 and the
// heavier-tail fit threshold.
func (p Params) nfdParams() Params {
	p.Dim = stream.NFDDim
	p.FitEps = p.FitEpsNFD
	return p
}

// siteConfig builds the standard remote-site configuration.
func (p Params) siteConfig(id int) site.Config {
	return site.Config{
		SiteID:           id,
		Dim:              p.Dim,
		K:                p.K,
		Epsilon:          p.Epsilon,
		FitEps:           p.FitEps,
		Delta:            p.Delta,
		CMax:             p.CMax,
		Seed:             p.Seed + int64(id)*7919,
		EM:               em.Config{MaxIter: 50, Tol: 1e-3, MinVar: 1e-4, Workers: p.EMWorkers},
		WarmStart:        p.WarmStart,
		PruneTopM:        p.PruneTopM,
		SharedChunkStats: p.SharedChunkStats,
		Telemetry:        p.Telemetry,
	}
}

// semConfig builds the matching SEM baseline configuration.
func (p Params) semConfig() sem.Config {
	return sem.Config{
		K:          p.K,
		Dim:        p.Dim,
		BufferSize: p.SEMBuffer,
		Seed:       p.Seed,
		EM:         em.Config{MaxIter: 25, Tol: 1e-3, MinVar: 1e-4, Workers: p.EMWorkers, Telemetry: p.Telemetry},
	}
}

// synthetic builds the evolving-Gaussian generator for these parameters.
func (p Params) synthetic(noise float64) *stream.Synthetic {
	g, err := stream.NewSynthetic(stream.SyntheticConfig{
		Dim:       p.Dim,
		K:         p.K,
		Pd:        p.Pd,
		RegimeLen: p.RegimeLen,
		NoiseFrac: noise,
		Seed:      p.Seed,
	})
	if err != nil {
		panic(err) // Params constructors only produce valid configs
	}
	return g
}

// nfd builds the NFD-like net-flow generator (d is fixed at 6 for it).
func (p Params) nfd() *stream.NFD {
	g, err := stream.NewNFD(stream.NFDConfig{Pd: p.Pd, RegimeLen: p.RegimeLen, Seed: p.Seed})
	if err != nil {
		panic(err)
	}
	return g
}

// runSite drives a fresh site over n records from gen, returning the site
// and the wall-clock processing duration (the Figure 8/9 observable).
func runSite(cfg site.Config, gen stream.Generator, n int) (*site.Site, time.Duration, error) {
	s, err := site.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := s.Observe(gen.Next()); err != nil {
			return nil, 0, err
		}
	}
	return s, time.Since(start), nil
}

// nowSeconds is a monotonic wall-clock reading for coarse experiment
// timings.
func nowSeconds() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}

// newSEM builds a fresh SEM baseline instance for these parameters.
func newSEM(p Params) (*sem.SEM, error) {
	return sem.New(p.semConfig())
}

// runSEM drives a fresh SEM instance over n records, returning it and the
// processing duration.
func runSEM(cfg sem.Config, gen stream.Generator, n int) (*sem.SEM, time.Duration, error) {
	s, err := sem.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := s.Observe(gen.Next()); err != nil {
			return nil, 0, err
		}
	}
	return s, time.Since(start), nil
}

// newSystem builds a full CluDistream deployment with these parameters.
func newSystem(p Params, dim, sites int) (*root.System, error) {
	return root.New(root.Config{
		NumSites:           sites,
		Dim:                dim,
		K:                  p.K,
		Epsilon:            p.Epsilon,
		FitEps:             p.FitEps,
		Delta:              p.Delta,
		CMax:               p.CMax,
		Seed:               p.Seed,
		EM:                 em.Config{MaxIter: 50, Tol: 1e-3, MinVar: 1e-4, Workers: p.EMWorkers},
		WarmStart:          p.WarmStart,
		PruneTopM:          p.PruneTopM,
		SharedChunkStats:   p.SharedChunkStats,
		IncrementalRemerge: p.IncrementalRemerge,
		Telemetry:          p.Telemetry,
	})
}

// chunkSizeFor returns the Theorem-1 chunk size for these parameters.
func chunkSizeFor(p Params) int {
	return chunk.Size(p.Dim, p.Epsilon, p.Delta)
}

// tail returns the most recent h records of data (all of it when shorter).
func tail(data []linalg.Vector, h int) []linalg.Vector {
	if len(data) <= h {
		return data
	}
	return data[len(data)-h:]
}

// quality evaluates a mixture on eval data; nil mixtures score the paper's
// axis floor rather than panicking so plots stay well-defined early in a
// stream.
func quality(m *gaussian.Mixture, eval []linalg.Vector) float64 {
	if m == nil || len(eval) == 0 {
		return -10
	}
	return m.AvgLogLikelihood(eval)
}
