package experiments

import (
	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/hier"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/stream"
)

// AblationSnapshots reproduces the Section-7 argument against static
// snapshotting: "previous efforts such as CluStream often adopt a static
// strategy... when a pyramid time arrives, a snapshot of the current
// cluster model is stored. This strategy may introduce redundant records,
// while missing some important events."
//
// A site consumes a stream whose regimes have very uneven durations. Two
// historians answer "which model governed chunk c?":
//
//   - event-driven: CluDistream's event list (a new entry only when the
//     distribution actually changed);
//   - static: a snapshot of the current model taken every S chunks,
//     queries answered by the latest snapshot at or before c.
//
// Both are scored on every past chunk: the answer is correct when the
// returned model assigns the chunk's own records an average log-likelihood
// within tolerance of the best model's. The table reports storage entries
// and accuracy for snapshot intervals S ∈ {1, 2, 4}.
func AblationSnapshots(p Params) (*Table, error) {
	m := chunkSizeFor(p)
	// Regimes with deliberately uneven durations (in chunks): the short
	// ones are the "important events" static snapshots miss.
	regimeOfChunk := func(c int) int { // 1-based chunk → regime index
		switch {
		case c <= 5:
			return 0
		case c == 6: // a one-chunk burst
			return 1
		case c <= 12:
			return 2
		case c <= 14:
			return 3
		default:
			return 2 // return to regime 2
		}
	}
	mkRegime := func(idx int) *gaussian.Mixture {
		center := float64(idx*40) - 60
		comps := make([]*gaussian.Component, p.K)
		ws := make([]float64, p.K)
		for j := range comps {
			mean := linalg.NewVector(p.Dim)
			for i := range mean {
				mean[i] = center + float64(j)*2
			}
			comps[j] = gaussian.Spherical(mean, 1)
			ws[j] = 1
		}
		return gaussian.MustMixture(ws, comps)
	}

	const totalChunks = 18
	st, err := site.New(p.siteConfig(1))
	if err != nil {
		return nil, err
	}

	// Feed chunk by chunk, remembering each chunk's records and taking
	// static snapshots.
	type snapshot struct {
		chunk int
		mix   *gaussian.Mixture
	}
	snapshotsAt := map[int][]snapshot{1: nil, 2: nil, 4: nil}
	chunkData := make([][]linalg.Vector, totalChunks+1)
	src := newRegimeSampler(p.Seed, mkRegime)
	for c := 1; c <= totalChunks; c++ {
		data := src.chunk(regimeOfChunk(c), m)
		chunkData[c] = data
		if _, err := st.ProcessChunk(data); err != nil {
			return nil, err
		}
		for s := range snapshotsAt {
			if c%s == 0 {
				if cur := st.Current(); cur != nil {
					snapshotsAt[s] = append(snapshotsAt[s], snapshot{chunk: c, mix: cur.Mixture})
				}
			}
		}
	}

	// Ground truth per chunk: the regime mixture itself. An answer is
	// correct if it scores the chunk within tol of the true regime model.
	const tol = 2.0
	correct := func(answer *gaussian.Mixture, c int) bool {
		if answer == nil {
			return false
		}
		truth := mkRegime(regimeOfChunk(c))
		return answer.AvgLogLikelihood(chunkData[c]) >= truth.AvgLogLikelihood(chunkData[c])-tol
	}

	// Event-driven historian.
	models := map[int]*gaussian.Mixture{}
	for _, mm := range st.Models() {
		models[mm.ID] = mm.Mixture
	}
	eventAnswer := func(c int) *gaussian.Mixture {
		if id, ok := st.Events().ModelAt(c); ok {
			return models[id]
		}
		if cur := st.Current(); cur != nil {
			return cur.Mixture
		}
		return nil
	}
	var eventCorrect int
	for c := 1; c <= totalChunks; c++ {
		if correct(eventAnswer(c), c) {
			eventCorrect++
		}
	}

	t := &Table{
		Title:   "Ablation: event-driven history vs static snapshots (§7)",
		Columns: []string{"interval S (0=event-driven)", "stored entries", "accuracy"},
	}
	t.AddRow(0, float64(st.Events().Len()+1), float64(eventCorrect)/totalChunks)
	for _, s := range []int{1, 2, 4} {
		snaps := snapshotsAt[s]
		staticAnswer := func(c int) *gaussian.Mixture {
			var best *gaussian.Mixture
			for _, sn := range snaps {
				if sn.chunk <= c {
					best = sn.mix
				}
			}
			// Chunks before the first snapshot fall back to it.
			if best == nil && len(snaps) > 0 {
				best = snaps[0].mix
			}
			return best
		}
		var ok int
		for c := 1; c <= totalChunks; c++ {
			if correct(staticAnswer(c), c) {
				ok++
			}
		}
		t.AddRow(float64(s), float64(len(snaps)), float64(ok)/totalChunks)
	}
	t.AddNote("§7: the event-driven list stores one entry per actual change and answers every window; sparse static snapshots miss the one-chunk burst, dense ones store redundantly")
	return t, nil
}

// AblationHierarchy compares the flat star topology (every site talks to
// the coordinator) with the §7 multi-layer tree (leaves under aggregators
// under a root) on the load reaching the *root*: the tree's internal nodes
// absorb leaf churn and upload only merged-model changes. Each leaf sees
// its own regime sequence so lower levels churn while the global picture
// moves slowly.
func AblationHierarchy(p Params) (*Table, error) {
	const branching = 2
	leaves := branching * branching // depth-2 tree: 4 leaves, 2 aggregators
	m := chunkSizeFor(p)
	// Each leaf must cycle its 4 regimes (8 chunks per cycle) several times
	// to reach steady state; the profile's Updates alone may be too short.
	perLeaf := p.Updates / leaves
	if min := 24 * m; perLeaf < min {
		perLeaf = min
	}

	// Every leaf alternates among a SHARED pool of regimes with its own
	// phase: lower levels keep switching models, but once the aggregators
	// have absorbed all four regimes the global picture stops changing —
	// the regime where the tree's event-driven propagation pays off.
	pool := make([]*gaussian.Mixture, 4)
	for r := range pool {
		center := float64(r*30) - 45
		comps := make([]*gaussian.Component, p.K)
		ws := make([]float64, p.K)
		for j := range comps {
			mean := linalg.NewVector(p.Dim)
			for i := range mean {
				mean[i] = center + float64(j)*2
			}
			comps[j] = gaussian.Spherical(mean, 1)
			ws[j] = 1
		}
		pool[r] = gaussian.MustMixture(ws, comps)
	}
	mkGen := func(i int) stream.Generator {
		// Rotate the pool per leaf so phases differ.
		rot := append(append([]*gaussian.Mixture{}, pool[i%4:]...), pool[:i%4]...)
		g, err := stream.NewAlternating(rot, 2*m, p.Seed+int64(i))
		if err != nil {
			panic(err)
		}
		return g
	}

	// Compare the final third (steady state) against the rest (learning).
	cut := perLeaf * 2 / 3

	// Flat star: r leaves directly under one coordinator; root-link bytes =
	// everything every site sends.
	flat, err := newSystem(p, p.Dim, leaves)
	if err != nil {
		return nil, err
	}
	flatGens := make([]stream.Generator, leaves)
	for i := range flatGens {
		flatGens[i] = mkGen(i)
	}
	flatCut := 0
	for rec := 0; rec < perLeaf; rec++ {
		for i, g := range flatGens {
			if err := flat.Feed(i, g.Next()); err != nil {
				return nil, err
			}
		}
		if rec == cut {
			flatCut = flat.TotalBytes()
		}
	}
	if err := flat.Drain(); err != nil {
		return nil, err
	}

	// Tree: same leaf streams, aggregators in between. Root-link bytes =
	// total uploads minus the leaf→aggregator edges.
	tree, err := hier.NewTree(hier.Config{
		Branching: branching,
		Depth:     2,
		Site:      p.siteConfig(0),
		Coord:     coordinator.Config{Dim: p.Dim},
	})
	if err != nil {
		return nil, err
	}
	treeGens := make([]stream.Generator, leaves)
	for i := range treeGens {
		treeGens[i] = mkGen(i)
	}
	rootLinkBytes := func() int {
		var leafBytes int
		for _, l := range tree.Leaves() {
			leafBytes += l.BytesUploaded()
		}
		return tree.TotalUploadBytes() - leafBytes
	}
	treeCut := 0
	for rec := 0; rec < perLeaf; rec++ {
		for i, g := range treeGens {
			if err := tree.ObserveLeaf(i, g.Next()); err != nil {
				return nil, err
			}
		}
		if rec == cut {
			treeCut = rootLinkBytes()
		}
	}

	t := &Table{
		Title:   "Ablation: flat star vs multi-layer tree (§7) — bytes arriving at the root",
		Columns: []string{"topology (0=flat,1=tree)", "root bytes learning", "root bytes steady state"},
	}
	t.AddRow(0, float64(flatCut), float64(flat.TotalBytes()-flatCut))
	t.AddRow(1, float64(treeCut), float64(rootLinkBytes()-treeCut))
	t.AddNote("§7: once the aggregators have absorbed the shared regimes their merged models stop changing materially, so the tree's root link goes quiet while the flat root keeps receiving per-leaf weight updates")
	return t, nil
}

// regimeSampler deterministically samples chunks from regime mixtures.
type regimeSampler struct {
	seed int64
	mk   func(int) *gaussian.Mixture
	rngs map[int]*stream.Alternating
}

func newRegimeSampler(seed int64, mk func(int) *gaussian.Mixture) *regimeSampler {
	return &regimeSampler{seed: seed, mk: mk, rngs: map[int]*stream.Alternating{}}
}

func (r *regimeSampler) chunk(regime, m int) []linalg.Vector {
	g, ok := r.rngs[regime]
	if !ok {
		g, _ = stream.NewAlternating([]*gaussian.Mixture{r.mk(regime)}, 1, r.seed+int64(regime))
		r.rngs[regime] = g
	}
	return stream.Take(g, m)
}
