package experiments

// Runner is one registered experiment.
type Runner struct {
	// Name is the CLI identifier, e.g. "fig2a".
	Name string
	// Run executes the experiment at the given scale.
	Run func(Params) (*Table, error)
}

// Suite lists every reproducible figure and ablation in paper order.
func Suite() []Runner {
	return []Runner{
		{"fig1-nfd", func(p Params) (*Table, error) { return Fig1(p, true) }},
		{"fig1-synth", func(p Params) (*Table, error) { return Fig1(p, false) }},
		{"fig2a", Fig2a},
		{"fig2b", Fig2b},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"fig7a", func(p Params) (*Table, error) { return Fig7(p, true) }},
		{"fig7b", func(p Params) (*Table, error) { return Fig7(p, false) }},
		{"fig8a", func(p Params) (*Table, error) { return Fig8(p, true) }},
		{"fig8b", func(p Params) (*Table, error) { return Fig8(p, false) }},
		{"fig9a", Fig9a},
		{"fig9b", Fig9b},
		{"fig10a", Fig10a},
		{"fig10b", Fig10b},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"ablation-test-and-cluster", AblationTestAndCluster},
		{"ablation-merge-fit", AblationMergeFit},
		{"ablation-cov-type", AblationCovType},
		{"ablation-sharp-test", AblationSharpTest},
		{"ablation-merge-tree", AblationMergeTree},
		{"ablation-vs-dem", AblationVsDEM},
		{"ablation-incomplete", AblationIncomplete},
		{"ablation-snapshots", AblationSnapshots},
		{"ablation-hierarchy", AblationHierarchy},
	}
}

// Find returns the runner with the given name, or nil.
func Find(name string) *Runner {
	for _, r := range Suite() {
		if r.Name == name {
			r := r
			return &r
		}
	}
	return nil
}
