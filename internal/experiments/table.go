// Package experiments regenerates every figure of the paper's evaluation
// (Section 6). Each FigN function runs the corresponding experiment and
// returns a Table whose rows are the series the paper plots; cmd/experiments
// renders them as text and bench_test.go wraps them in testing.B benchmarks.
//
// Absolute numbers differ from the paper (different hardware, simulated
// NFD data), but each Table's Notes records the shape the paper claims so
// EXPERIMENTS.md can compare like for like.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one reproduced figure: labelled columns, float rows, and the
// paper's claim for the shape.
type Table struct {
	// Title names the figure, e.g. "Figure 2(a): communication cost (NFD)".
	Title string
	// Columns labels each value in a row.
	Columns []string
	// Rows holds the series, one row per x-axis point.
	Rows [][]float64
	// Notes records the paper-claimed shape and any measured summary.
	Notes []string
}

// AddRow appends a row; it panics on column-count mismatch (figure
// generators are trusted code — a mismatch is a bug, not input error).
func (t *Table) AddRow(vals ...float64) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row of %d values for %d columns in %q", len(vals), len(t.Columns), t.Title))
	}
	t.Rows = append(t.Rows, vals)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Col returns column j as a slice.
func (t *Table) Col(j int) []float64 {
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[j]
	}
	return out
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for j, c := range t.Columns {
		widths[j] = len(c)
	}
	for i, row := range t.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := formatCell(v)
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	for j, c := range t.Columns {
		if j > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[j], c)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for j, s := range row {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[j], s)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// formatCell renders integers without decimals and floats compactly.
func formatCell(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
