package experiments

import "fmt"

// fmtSscan wraps fmt.Sscan for note-parsing assertions.
func fmtSscan(s string, args ...any) (int, error) {
	return fmt.Sscan(s, args...)
}
