package gaussian

import (
	"math"
	"sync"

	"cludistream/internal/kdtree"
	"cludistream/internal/linalg"
)

// batchBlock is the number of records a batched scoring pass processes per
// block: large enough to amortize per-component setup (log-weights,
// factor walks) across many records, small enough that the d×block panel
// and block×K log-prob tile stay resident in L1/L2 cache.
const batchBlock = 128

// BatchScratch is the caller-owned workspace of the batched scoring
// kernels. One scratch serves any mixture — buffers grow on demand and are
// reused across calls — but it is not safe for concurrent use; give each
// goroutine its own (the parallel E-step keeps one per worker).
type BatchScratch struct {
	panel []float64 // d × batchBlock dimension-major diff/half-solve panel
	logp  []float64 // batchBlock × K per-record component log-probs
	maha  []float64 // batchBlock squared Mahalanobis distances
	vals  []float64 // batchBlock per-record reductions (logpdf, max, min)
	// nbrs backs the pruned scorer's per-record nearest-mean query
	// (see prune.go); sized to the query's topM on first use.
	nbrs []kdtree.Neighbor
}

// NewBatchScratch returns an empty scratch; buffers are sized lazily.
func NewBatchScratch() *BatchScratch { return &BatchScratch{} }

func (s *BatchScratch) ensure(d, k int) {
	if need := d * batchBlock; cap(s.panel) < need {
		s.panel = make([]float64, need)
	} else {
		s.panel = s.panel[:need]
	}
	if need := batchBlock * k; cap(s.logp) < need {
		s.logp = make([]float64, need)
	} else {
		s.logp = s.logp[:need]
	}
	if cap(s.maha) < batchBlock {
		s.maha = make([]float64, batchBlock)
		s.vals = make([]float64, batchBlock)
	}
}

// scratchPool backs the scratchless convenience entry points
// (AvgLogLikelihood and friends) so every call site in the tree gets
// amortized allocation without threading a scratch through its signature.
var scratchPool = sync.Pool{New: func() any { return NewBatchScratch() }}

// scoreBlock fills s.logp[p*K+j] = log(w_j·p(x_p|j)) for the records xs
// (at most batchBlock of them), batched per component: one diff panel,
// one blocked triangular solve, one Mahalanobis reduction per component.
// Per record the arithmetic and its order match the scalar
// logW[j] + (logNorm − ½·QuadForm) path exactly, so every entry is
// bit-identical to what PosteriorInto/logPDFScratch would compute.
func (m *Mixture) scoreBlock(xs []linalg.Vector, s *BatchScratch) {
	k := len(m.comps)
	count := len(xs)
	for j, c := range m.comps {
		if m.weights[j] == 0 {
			for p := 0; p < count; p++ {
				s.logp[p*k+j] = math.Inf(-1)
			}
			continue
		}
		linalg.SubRowsInto(xs, c.mean, s.panel, batchBlock, count)
		c.chol.QuadFormPanel(s.panel, batchBlock, count, s.maha)
		lw, ln := m.logW[j], c.logNorm
		for p := 0; p < count; p++ {
			s.logp[p*k+j] = lw + (ln - 0.5*s.maha[p])
		}
	}
}

// lseRows reduces each K-wide row of logp with the same sequential logAdd
// chain the scalar path uses (−Inf entries are no-ops), keeping the fused
// reduction bit-identical to LogPDF.
func lseRows(logp []float64, count, k int, dst []float64) {
	for p := 0; p < count; p++ {
		row := logp[p*k : p*k+k]
		lse := math.Inf(-1)
		for _, lp := range row {
			lse = logAdd(lse, lp)
		}
		dst[p] = lse
	}
}

// ScoreBatch writes log p(x) for every record of data into dst (len(data)
// long), bit-identical to calling LogPDF per record but batched: per-model
// constants are loaded once per block instead of once per record, and the
// per-component inner loops stream through one contiguous panel. Pass a
// reusable scratch for allocation-free operation, or nil to borrow one
// from an internal pool.
func (m *Mixture) ScoreBatch(data []linalg.Vector, dst []float64, s *BatchScratch) {
	if len(dst) != len(data) {
		panic("gaussian: ScoreBatch dst length mismatch")
	}
	if s == nil {
		s = scratchPool.Get().(*BatchScratch)
		defer scratchPool.Put(s)
	}
	k := len(m.comps)
	s.ensure(m.Dim(), k)
	for base := 0; base < len(data); base += batchBlock {
		xs := data[base:min(base+batchBlock, len(data))]
		m.scoreBlock(xs, s)
		lseRows(s.logp, len(xs), k, dst[base:base+len(xs)])
	}
}

// PosteriorBatch computes posteriors Pr(j|x) (Eq. 2) for every record of
// data into the rows of post (reshaped to len(data)×K) and, when logpdf is
// non-nil, the per-record log p(x) into it. It returns Σ log p(x) summed
// in record order. Results are bit-identical to PosteriorInto per record;
// this is the E-step kernel.
func (m *Mixture) PosteriorBatch(data []linalg.Vector, post *linalg.Matrix, logpdf []float64, s *BatchScratch) float64 {
	if logpdf != nil && len(logpdf) != len(data) {
		panic("gaussian: PosteriorBatch logpdf length mismatch")
	}
	if s == nil {
		s = scratchPool.Get().(*BatchScratch)
		defer scratchPool.Put(s)
	}
	k := len(m.comps)
	s.ensure(m.Dim(), k)
	post.Reset(len(data), k)
	out := post.Data()
	var sum float64
	for base := 0; base < len(data); base += batchBlock {
		xs := data[base:min(base+batchBlock, len(data))]
		m.scoreBlock(xs, s)
		lseRows(s.logp, len(xs), k, s.vals)
		for p := 0; p < len(xs); p++ {
			lse := s.vals[p]
			row := s.logp[p*k : p*k+k]
			dst := out[(base+p)*k : (base+p)*k+k]
			for j, lp := range row {
				if math.IsInf(lp, -1) {
					dst[j] = 0
					continue
				}
				dst[j] = math.Exp(lp - lse)
			}
			sum += lse
			if logpdf != nil {
				logpdf[base+p] = lse
			}
		}
	}
	return sum
}

// AvgLogLikelihoodScratch is AvgLogLikelihood with a caller-owned scratch
// for allocation-free repeated evaluation (the site's J_fit test scores
// every chunk through here).
func (m *Mixture) AvgLogLikelihoodScratch(data []linalg.Vector, s *BatchScratch) float64 {
	if len(data) == 0 {
		return 0
	}
	if s == nil {
		s = scratchPool.Get().(*BatchScratch)
		defer scratchPool.Put(s)
	}
	k := len(m.comps)
	s.ensure(m.Dim(), k)
	var sum float64
	for base := 0; base < len(data); base += batchBlock {
		xs := data[base:min(base+batchBlock, len(data))]
		m.scoreBlock(xs, s)
		lseRows(s.logp, len(xs), k, s.vals)
		for p := 0; p < len(xs); p++ {
			sum += s.vals[p]
		}
	}
	return sum / float64(len(data))
}

// AvgLogLikelihoodMulti writes, for each mixture of ms, the average
// log-likelihood of data into dst (len(ms) long), reading the data exactly
// once: every block of records is scored against all mixtures while it is
// cache-resident, instead of re-traversing the chunk per model. Each entry
// is bit-identical to AvgLogLikelihoodScratch on that mixture — the
// per-mixture arithmetic and accumulation order are unchanged; only the
// data traversal is shared. The site's refit re-scan scores every model it
// tested through here in one pass.
func AvgLogLikelihoodMulti(ms []*Mixture, data []linalg.Vector, dst []float64, s *BatchScratch) {
	if len(dst) != len(ms) {
		panic("gaussian: AvgLogLikelihoodMulti dst length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	if len(data) == 0 || len(ms) == 0 {
		return
	}
	if s == nil {
		s = scratchPool.Get().(*BatchScratch)
		defer scratchPool.Put(s)
	}
	for base := 0; base < len(data); base += batchBlock {
		xs := data[base:min(base+batchBlock, len(data))]
		for i, m := range ms {
			k := len(m.comps)
			s.ensure(m.Dim(), k)
			m.scoreBlock(xs, s)
			lseRows(s.logp, len(xs), k, s.vals)
			for p := 0; p < len(xs); p++ {
				dst[i] += s.vals[p]
			}
		}
	}
	for i := range dst {
		dst[i] /= float64(len(data))
	}
}

// AvgMaxComponentLLScratch is AvgMaxComponentLL with caller-owned scratch.
func (m *Mixture) AvgMaxComponentLLScratch(data []linalg.Vector, s *BatchScratch) float64 {
	if len(data) == 0 {
		return 0
	}
	if s == nil {
		s = scratchPool.Get().(*BatchScratch)
		defer scratchPool.Put(s)
	}
	k := len(m.comps)
	s.ensure(m.Dim(), k)
	var sum float64
	for base := 0; base < len(data); base += batchBlock {
		xs := data[base:min(base+batchBlock, len(data))]
		m.scoreBlock(xs, s)
		for p := 0; p < len(xs); p++ {
			row := s.logp[p*k : p*k+k]
			best := math.Inf(-1)
			for _, lp := range row {
				if lp > best {
					best = lp
				}
			}
			sum += best
		}
	}
	return sum / float64(len(data))
}

// NearestComponents finds, for every record, the component with the
// smallest squared Mahalanobis distance (ties to the lowest index, like a
// scalar ascending scan with strict <). idx and dist receive the winning
// index and distance; either may be nil. SEM's compression phase is the
// main consumer — it classifies whole buffers at once.
func (m *Mixture) NearestComponents(data []linalg.Vector, idx []int, dist []float64, s *BatchScratch) {
	if s == nil {
		s = scratchPool.Get().(*BatchScratch)
		defer scratchPool.Put(s)
	}
	s.ensure(m.Dim(), len(m.comps))
	for base := 0; base < len(data); base += batchBlock {
		xs := data[base:min(base+batchBlock, len(data))]
		best := s.vals[:len(xs)]
		bestJ := s.logp[:len(xs)] // reuse as float-encoded winners
		for p := range best {
			best[p] = math.Inf(1)
			bestJ[p] = 0
		}
		for j, c := range m.comps {
			linalg.SubRowsInto(xs, c.mean, s.panel, batchBlock, len(xs))
			c.chol.QuadFormPanel(s.panel, batchBlock, len(xs), s.maha)
			for p := 0; p < len(xs); p++ {
				if s.maha[p] < best[p] {
					best[p] = s.maha[p]
					bestJ[p] = float64(j)
				}
			}
		}
		for p := 0; p < len(xs); p++ {
			if idx != nil {
				idx[base+p] = int(bestJ[p])
			}
			if dist != nil {
				dist[base+p] = best[p]
			}
		}
	}
}
