package gaussian

import (
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/linalg"
)

// randMixture builds a random full-covariance mixture. When zeroWeight is
// set, component 0 gets weight 0 so the batch path's −Inf handling is
// exercised against the scalar skip.
func randMixture(t *testing.T, rng *rand.Rand, k, d int, zeroWeight bool) *Mixture {
	t.Helper()
	comps := make([]*Component, k)
	ws := make([]float64, k)
	for j := range comps {
		mean := linalg.NewVector(d)
		for i := range mean {
			mean[i] = rng.NormFloat64() * 3
		}
		cov := linalg.NewSym(d)
		for r := 0; r < d+3; r++ {
			v := linalg.NewVector(d)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			cov.AddOuterScaled(0.5, v)
		}
		c, err := NewComponent(mean, cov, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		comps[j] = c
		ws[j] = 0.2 + rng.Float64()
	}
	if zeroWeight {
		ws[0] = 0
	}
	m, err := NewMixture(ws, comps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randData(rng *rand.Rand, n, d int) []linalg.Vector {
	out := make([]linalg.Vector, n)
	for i := range out {
		out[i] = linalg.NewVector(d)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64() * 4
		}
	}
	return out
}

// TestScoreBatchBitIdentical pins the batched scorer to the scalar LogPDF
// path bit-for-bit, across dimensions, component counts, zero weights, and
// data sizes that straddle the block boundary.
func TestScoreBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		k, d, n    int
		zeroWeight bool
	}{
		{1, 1, 1, false},
		{3, 2, 17, false},
		{5, 4, 127, false},
		{5, 4, 128, true},
		{4, 8, 129, false},
		{6, 12, 400, true},
	} {
		m := randMixture(t, rng, tc.k, tc.d, tc.zeroWeight)
		data := randData(rng, tc.n, tc.d)
		got := make([]float64, tc.n)
		m.ScoreBatch(data, got, NewBatchScratch())
		for i, x := range data {
			want := m.LogPDF(x)
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("K=%d d=%d n=%d zero=%v: record %d ScoreBatch=%v LogPDF=%v",
					tc.k, tc.d, tc.n, tc.zeroWeight, i, got[i], want)
			}
		}
	}
}

// TestPosteriorBatchBitIdentical pins PosteriorBatch (posteriors, per-record
// log-likelihoods, and their ordered sum) to PosteriorInto bit-for-bit.
func TestPosteriorBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tc := range []struct {
		k, d, n    int
		zeroWeight bool
	}{
		{2, 3, 5, false},
		{5, 4, 300, true},
		{4, 8, 131, false},
	} {
		m := randMixture(t, rng, tc.k, tc.d, tc.zeroWeight)
		data := randData(rng, tc.n, tc.d)
		post := linalg.NewMatrix(0, 0)
		logpdf := make([]float64, tc.n)
		sum := m.PosteriorBatch(data, post, logpdf, NewBatchScratch())

		scalarPost := make([]float64, tc.k)
		var scalarSum float64
		for i, x := range data {
			lse := m.PosteriorInto(x, scalarPost)
			scalarSum += lse
			if math.Float64bits(logpdf[i]) != math.Float64bits(lse) {
				t.Fatalf("record %d logpdf=%v want %v", i, logpdf[i], lse)
			}
			for j := 0; j < tc.k; j++ {
				if math.Float64bits(post.At(i, j)) != math.Float64bits(scalarPost[j]) {
					t.Fatalf("record %d comp %d posterior=%v want %v", i, j, post.At(i, j), scalarPost[j])
				}
			}
		}
		if math.Float64bits(sum) != math.Float64bits(scalarSum) {
			t.Fatalf("sum=%v want %v", sum, scalarSum)
		}
	}
}

// TestAvgLogLikelihoodBitIdentical pins the batched Definition-1 statistic
// to an explicit in-order scalar sum of LogPDF — the quantity the J_fit
// test thresholds, so a single flipped bit could flip a clustering
// decision.
func TestAvgLogLikelihoodBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randMixture(t, rng, 5, 6, true)
	data := randData(rng, 333, 6)

	var sum float64
	for _, x := range data {
		sum += m.LogPDF(x)
	}
	want := sum / float64(len(data))
	if got := m.AvgLogLikelihood(data); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("AvgLogLikelihood=%v want %v", got, want)
	}

	var maxSum float64
	for _, x := range data {
		maxSum += m.MaxComponentLogPDF(x)
	}
	wantMax := maxSum / float64(len(data))
	if got := m.AvgMaxComponentLL(data); math.Float64bits(got) != math.Float64bits(wantMax) {
		t.Fatalf("AvgMaxComponentLL=%v want %v", got, wantMax)
	}
}

// TestNearestComponentsBitIdentical pins the batched nearest-component
// sweep to the scalar ascending argmin over MahalanobisSq.
func TestNearestComponentsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := randMixture(t, rng, 4, 5, false)
	data := randData(rng, 200, 5)
	idx := make([]int, len(data))
	dist := make([]float64, len(data))
	m.NearestComponents(data, idx, dist, nil)
	for i, x := range data {
		best, bestD := 0, math.Inf(1)
		for j := 0; j < m.K(); j++ {
			if d := m.Component(j).MahalanobisSq(x); d < bestD {
				best, bestD = j, d
			}
		}
		if idx[i] != best || math.Float64bits(dist[i]) != math.Float64bits(bestD) {
			t.Fatalf("record %d: batch (%d, %v), scalar (%d, %v)", i, idx[i], dist[i], best, bestD)
		}
	}
}

// TestBatchScratchReuse verifies one scratch serves mixtures of different
// shapes in sequence (buffers regrow as needed).
func TestBatchScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	s := NewBatchScratch()
	for _, shape := range []struct{ k, d int }{{2, 2}, {6, 10}, {3, 4}} {
		m := randMixture(t, rng, shape.k, shape.d, false)
		data := randData(rng, 150, shape.d)
		got := make([]float64, len(data))
		m.ScoreBatch(data, got, s)
		for i, x := range data {
			if want := m.LogPDF(x); math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("shape %+v record %d: %v want %v", shape, i, got[i], want)
			}
		}
	}
}
