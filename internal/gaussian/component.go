// Package gaussian implements the probabilistic substrate of CluDistream:
// multivariate Gaussian components, Gaussian mixture models (Section 3.1 of
// the paper), posterior membership probabilities (Eq. 2), the average
// log-likelihood quality measure (Definition 1), and the coordinator-side
// merge/split criteria M_merge, M_split and M_remerge (Eqs. 5–6) together
// with SMEM's J_merge that they approximate.
package gaussian

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cludistream/internal/linalg"
)

// log(2π), the constant in every Gaussian log-density.
const log2Pi = 1.8378770664093453

// ErrSingular is returned when a covariance matrix cannot be factored even
// after PSD repair.
var ErrSingular = errors.New("gaussian: singular covariance")

// Component is a single d-dimensional Gaussian N(μ, Σ) with a cached
// Cholesky factor of Σ. The factor makes log-densities and Mahalanobis
// distances O(d²) after an O(d³) one-time cost; the inverse needed by the
// merge criteria is computed lazily and cached as well.
//
// A Component is immutable after construction: the EM and coordinator code
// always build fresh components rather than mutate, so cached factors can
// never go stale.
type Component struct {
	mean linalg.Vector
	cov  *linalg.Sym
	chol *linalg.Cholesky
	inv  *linalg.Sym // lazily computed Σ⁻¹
	// logNorm = -(d/2)·log(2π) - (1/2)·log|Σ|, the log normalizing constant.
	logNorm float64
}

// NewComponent builds a Gaussian from a mean and covariance. The covariance
// must be symmetric positive definite; if it is not (a degenerate chunk can
// produce one), it is repaired by flooring its eigenvalues at minVar before
// giving up. Pass minVar <= 0 for a default floor of 1e-9.
func NewComponent(mean linalg.Vector, cov *linalg.Sym, minVar float64) (*Component, error) {
	if len(mean) != cov.Order() {
		return nil, fmt.Errorf("gaussian: mean dim %d != cov order %d", len(mean), cov.Order())
	}
	if !mean.IsFinite() {
		return nil, fmt.Errorf("gaussian: non-finite mean %v", trunc(mean))
	}
	if !cov.IsFinite() {
		return nil, fmt.Errorf("gaussian: non-finite covariance")
	}
	if minVar <= 0 {
		minVar = 1e-9
	}
	chol, err := linalg.CholeskyDecompose(cov)
	if err != nil {
		cov = linalg.RepairPSD(cov, minVar)
		chol, err = linalg.CholeskyDecompose(cov)
		if err != nil {
			return nil, ErrSingular
		}
	}
	d := float64(len(mean))
	return &Component{
		mean:    mean.Clone(),
		cov:     cov.Clone(),
		chol:    chol,
		logNorm: -0.5*d*log2Pi - 0.5*chol.LogDet(),
	}, nil
}

// MustComponent is NewComponent that panics on error; for tests and
// literals with known-good covariances.
func MustComponent(mean linalg.Vector, cov *linalg.Sym) *Component {
	c, err := NewComponent(mean, cov, 0)
	if err != nil {
		panic(err)
	}
	return c
}

// Spherical returns N(mean, variance·I).
func Spherical(mean linalg.Vector, variance float64) *Component {
	cov := linalg.NewSym(len(mean))
	for i := range mean {
		cov.Set(i, i, variance)
	}
	return MustComponent(mean, cov)
}

// Dim returns the dimensionality d.
func (c *Component) Dim() int { return len(c.mean) }

// Mean returns the mean vector. The returned slice is owned by the
// component and must not be mutated.
func (c *Component) Mean() linalg.Vector { return c.mean }

// Cov returns the covariance matrix, owned by the component.
func (c *Component) Cov() *linalg.Sym { return c.cov }

// LogDet returns log|Σ|.
func (c *Component) LogDet() float64 { return c.chol.LogDet() }

// CovInverse returns Σ⁻¹, computing and caching it on first use.
func (c *Component) CovInverse() *linalg.Sym {
	if c.inv == nil {
		c.inv = c.chol.Inverse()
	}
	return c.inv
}

// LogProb returns log p(x | this component) = logNorm - ½·Mahalanobis²(x).
func (c *Component) LogProb(x linalg.Vector) float64 {
	return c.logNorm - 0.5*c.MahalanobisSq(x)
}

// LogProbScratch is LogProb with caller-provided scratch vectors of
// dimension d, for allocation-free hot loops (the E-step calls this once
// per record per component).
func (c *Component) LogProbScratch(x, diff, half linalg.Vector) float64 {
	x.SubInto(c.mean, diff)
	return c.logNorm - 0.5*c.chol.QuadFormScratch(diff, half)
}

// Prob returns the density p(x | component).
func (c *Component) Prob(x linalg.Vector) float64 {
	return math.Exp(c.LogProb(x))
}

// MahalanobisSq returns (x-μ)ᵀ Σ⁻¹ (x-μ).
func (c *Component) MahalanobisSq(x linalg.Vector) float64 {
	diff := x.Sub(c.mean)
	return c.chol.QuadForm(diff)
}

// SampleInto draws one sample x = μ + L·z (z standard normal) into dst.
func (c *Component) SampleInto(rng *rand.Rand, dst linalg.Vector) {
	d := c.Dim()
	z := make(linalg.Vector, d)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	c.chol.MulLVecInto(z, dst)
	dst.AddInPlace(c.mean)
}

// Sample draws one fresh sample.
func (c *Component) Sample(rng *rand.Rand) linalg.Vector {
	dst := linalg.NewVector(c.Dim())
	c.SampleInto(rng, dst)
	return dst
}

// Equal reports whether two components have means and covariances within
// tol of each other.
func (c *Component) Equal(o *Component, tol float64) bool {
	return c.mean.Equal(o.mean, tol) && c.cov.Equal(o.cov, tol)
}

// String renders a compact description for logs and error messages.
func (c *Component) String() string {
	return fmt.Sprintf("N(μ=%v, diag(Σ)=%v)", trunc(c.mean), trunc(c.cov.Diag()))
}

func trunc(v linalg.Vector) linalg.Vector {
	if len(v) <= 4 {
		return v
	}
	return v[:4]
}
