package gaussian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cludistream/internal/linalg"
)

func TestComponentStandardNormalDensity(t *testing.T) {
	c := Spherical(linalg.Vector{0}, 1)
	// φ(0) = 1/sqrt(2π)
	want := 1 / math.Sqrt(2*math.Pi)
	if got := c.Prob(linalg.Vector{0}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("φ(0) = %v, want %v", got, want)
	}
	// φ(1) = exp(-1/2)/sqrt(2π)
	want1 := math.Exp(-0.5) / math.Sqrt(2*math.Pi)
	if got := c.Prob(linalg.Vector{1}); math.Abs(got-want1) > 1e-12 {
		t.Fatalf("φ(1) = %v, want %v", got, want1)
	}
}

func TestComponentMultivariateDensity(t *testing.T) {
	// 2-d with Σ = diag(4, 9): density at μ is 1/(2π·sqrt(36)).
	cov := linalg.Diagonal(linalg.Vector{4, 9})
	c := MustComponent(linalg.Vector{1, 2}, cov)
	want := 1 / (2 * math.Pi * 6)
	if got := c.Prob(linalg.Vector{1, 2}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("p(μ) = %v, want %v", got, want)
	}
}

func TestComponentMahalanobis(t *testing.T) {
	cov := linalg.Diagonal(linalg.Vector{4, 1})
	c := MustComponent(linalg.Vector{0, 0}, cov)
	// (2,0): 2²/4 = 1. (0,2): 2²/1 = 4.
	if got := c.MahalanobisSq(linalg.Vector{2, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("maha = %v, want 1", got)
	}
	if got := c.MahalanobisSq(linalg.Vector{0, 2}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("maha = %v, want 4", got)
	}
}

func TestComponentLogProbScratchMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := randComponent(rng, 5)
	diff := linalg.NewVector(5)
	half := linalg.NewVector(5)
	for i := 0; i < 50; i++ {
		x := randVec(rng, 5)
		a := c.LogProb(x)
		b := c.LogProbScratch(x, diff, half)
		if math.Abs(a-b) > 1e-12*(1+math.Abs(a)) {
			t.Fatalf("LogProbScratch = %v, LogProb = %v", b, a)
		}
	}
}

func TestComponentDimMismatch(t *testing.T) {
	if _, err := NewComponent(linalg.Vector{0, 0}, linalg.Identity(3), 0); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestComponentRejectsNonFinite(t *testing.T) {
	if _, err := NewComponent(linalg.Vector{math.NaN()}, linalg.Identity(1), 0); err == nil {
		t.Fatal("NaN mean accepted")
	}
	if _, err := NewComponent(linalg.Vector{math.Inf(1)}, linalg.Identity(1), 0); err == nil {
		t.Fatal("Inf mean accepted")
	}
	badCov := linalg.NewSym(1)
	badCov.Set(0, 0, math.NaN())
	if _, err := NewComponent(linalg.Vector{0}, badCov, 0); err == nil {
		t.Fatal("NaN covariance accepted")
	}
}

func TestComponentSingularRepaired(t *testing.T) {
	// Rank-deficient covariance: identical attributes.
	cov := linalg.NewSymFrom(2, []float64{1, 1, 1, 1})
	c, err := NewComponent(linalg.Vector{0, 0}, cov, 1e-6)
	if err != nil {
		t.Fatalf("repair failed: %v", err)
	}
	if lp := c.LogProb(linalg.Vector{0, 0}); math.IsNaN(lp) || math.IsInf(lp, 0) {
		t.Fatalf("density at mean not finite: %v", lp)
	}
}

func TestComponentSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	mean := linalg.Vector{1, -2}
	cov := linalg.NewSymFrom(2, []float64{2, 0.8, 0.8, 1})
	c := MustComponent(mean, cov)
	const n = 60000
	sm := linalg.NewVector(2)
	sc := linalg.NewSym(2)
	xs := make([]linalg.Vector, n)
	for i := 0; i < n; i++ {
		x := c.Sample(rng)
		xs[i] = x
		sm.AddInPlace(x)
	}
	sm.ScaleInPlace(1 / float64(n))
	for _, x := range xs {
		d := x.Sub(sm)
		sc.AddOuterScaled(1/float64(n), d)
	}
	if !sm.Equal(mean, 0.03) {
		t.Fatalf("sample mean = %v", sm)
	}
	if !sc.Equal(cov, 0.05) {
		t.Fatalf("sample cov = %v vs %v", sc.Diag(), cov.Diag())
	}
}

// Property: log-density is maximized at the mean.
func TestComponentDensityPeakAtMean(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	f := func(n uint8) bool {
		d := int(n%6) + 1
		c := randComponent(rng, d)
		peak := c.LogProb(c.Mean())
		for trial := 0; trial < 10; trial++ {
			if c.LogProb(randVec(rng, d)) > peak+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: 1-d density integrates to ~1 (trapezoid over ±8σ).
func TestComponentDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 10; trial++ {
		mu := rng.NormFloat64() * 3
		sig2 := 0.2 + rng.Float64()*3
		c := MustComponent(linalg.Vector{mu}, linalg.Diagonal(linalg.Vector{sig2}))
		sigma := math.Sqrt(sig2)
		const steps = 4000
		lo, hi := mu-8*sigma, mu+8*sigma
		h := (hi - lo) / steps
		var integral float64
		for i := 0; i <= steps; i++ {
			x := lo + float64(i)*h
			wgt := 1.0
			if i == 0 || i == steps {
				wgt = 0.5
			}
			integral += wgt * c.Prob(linalg.Vector{x})
		}
		integral *= h
		if math.Abs(integral-1) > 1e-6 {
			t.Fatalf("∫φ = %v (μ=%v σ²=%v)", integral, mu, sig2)
		}
	}
}

func TestComponentCovInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	c := randComponent(rng, 4)
	inv := c.CovInverse()
	// Σ·Σ⁻¹ ≈ I.
	for j := 0; j < 4; j++ {
		col := linalg.NewVector(4)
		for i := 0; i < 4; i++ {
			col[i] = inv.At(i, j)
		}
		prod := c.Cov().MulVec(col)
		for i := 0; i < 4; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod[i]-want) > 1e-8 {
				t.Fatalf("Σ·Σ⁻¹[%d][%d] = %v", i, j, prod[i])
			}
		}
	}
	if c.CovInverse() != inv {
		t.Error("CovInverse not cached")
	}
}

func randVec(rng *rand.Rand, d int) linalg.Vector {
	v := linalg.NewVector(d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randComponent(rng *rand.Rand, d int) *Component {
	mean := randVec(rng, d)
	cov := linalg.NewSym(d)
	for k := 0; k < d+2; k++ {
		cov.AddOuterScaled(1, randVec(rng, d))
	}
	for i := 0; i < d; i++ {
		cov.Add(i, i, 0.3)
	}
	return MustComponent(mean, cov)
}
