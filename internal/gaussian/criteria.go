package gaussian

import (
	"math"

	"cludistream/internal/linalg"
)

// This file implements the coordinator-side structural criteria of
// Section 5.2: SMEM's data-driven J_merge, and the transmit-free
// Mahalanobis surrogates M_merge (Eq. 5), M_split (Eq. 6) and M_remerge
// that CluDistream substitutes for it because raw records never reach the
// coordinator.

// JMerge is SMEM's merge criterion J_merge(i,j) = Σ_x Pr(i|x)·Pr(j|x): two
// components that claim the same records with similar posteriors are merge
// candidates. It needs the raw data, so CluDistream only uses it offline to
// validate M_merge (Figure 1); scratch allocations are fine here.
func JMerge(m *Mixture, i, j int, data []linalg.Vector) float64 {
	post := make([]float64, m.K())
	var sum float64
	for _, x := range data {
		m.PosteriorInto(x, post)
		sum += post[i] * post[j]
	}
	return sum
}

// CrossMahalanobisSq returns (μi−μj)ᵀ (Σi⁻¹+Σj⁻¹) (μi−μj), the symmetric
// squared Mahalanobis distance between two components' means that both
// M_merge and M_split are built from. The paper notes it can also be
// derived from the sum of the two directed KL divergences.
func CrossMahalanobisSq(a, b *Component) float64 {
	diff := a.Mean().Sub(b.Mean())
	s := a.CovInverse().Clone()
	s.AddSym(1, b.CovInverse())
	return s.Quad(diff)
}

// MMerge is Eq. 5: M_merge(i,j) = 1 / CrossMahalanobisSq(i,j). Larger
// values mean closer components, hence better merge candidates. Identical
// means give +Inf (merge immediately).
func MMerge(a, b *Component) float64 {
	d := CrossMahalanobisSq(a, b)
	if d == 0 {
		return math.Inf(1)
	}
	return 1 / d
}

// MSplit is Eq. 6: M_split(i, Mix) = (μi−μMix)ᵀ(Σi⁻¹+ΣMix⁻¹)(μi−μMix),
// where (μMix, ΣMix) are the moments of the father mixture. A component far
// (in this metric) from its father should be split off.
func MSplit(c *Component, mixMean linalg.Vector, mixCov *linalg.Sym) float64 {
	father, err := NewComponent(mixMean, mixCov, 0)
	if err != nil {
		// A singular father (degenerate merged model) cannot hold anything:
		// force a split.
		return math.Inf(1)
	}
	return CrossMahalanobisSq(c, father)
}

// MSplitComp is MSplit against a father that is already a Component.
func MSplitComp(c, father *Component) float64 {
	return CrossMahalanobisSq(c, father)
}

// MRemerge is the re-merge criterion: the reciprocal of MSplit. The split
// component joins the sibling mixture with the largest M_remerge, i.e. the
// nearest one. Note the identity M_split = 1/M_remerge that Algorithm 2's
// stability test relies on.
func MRemerge(c *Component, mixMean linalg.Vector, mixCov *linalg.Sym) float64 {
	d := MSplit(c, mixMean, mixCov)
	if d == 0 {
		return math.Inf(1)
	}
	return 1 / d
}

// KLDivergence returns KL(a ‖ b) for Gaussians in closed form:
// ½·[tr(Σb⁻¹Σa) + (μb−μa)ᵀΣb⁻¹(μb−μa) − d + log(|Σb|/|Σa|)].
// The paper observes M_merge's distance is the mean-difference part of the
// symmetrized KL; this function exists so tests can verify that relation.
func KLDivergence(a, b *Component) float64 {
	d := float64(a.Dim())
	binv := b.CovInverse()
	// tr(Σb⁻¹ Σa)
	var tr float64
	for i := 0; i < a.Dim(); i++ {
		for k := 0; k < a.Dim(); k++ {
			tr += binv.At(i, k) * a.Cov().At(k, i)
		}
	}
	diff := b.Mean().Sub(a.Mean())
	quad := binv.Quad(diff)
	return 0.5 * (tr + quad - d + b.LogDet() - a.LogDet())
}

// SymKL returns KL(a‖b) + KL(b‖a).
func SymKL(a, b *Component) float64 {
	return KLDivergence(a, b) + KLDivergence(b, a)
}

// NormalizeSeries min-max normalizes a criterion series to [0,1] the way
// Figure 1 does: (v − min) / (max − min). A constant series maps to all
// zeros.
func NormalizeSeries(vals []float64) []float64 {
	out := make([]float64, len(vals))
	if len(vals) == 0 {
		return out
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		return out
	}
	for i, v := range vals {
		out[i] = (v - lo) / (hi - lo)
	}
	return out
}
