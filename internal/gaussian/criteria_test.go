package gaussian

import (
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/linalg"
)

func TestCrossMahalanobisKnown(t *testing.T) {
	// Unit covariances: Σi⁻¹+Σj⁻¹ = 2I, so distance = 2‖μi−μj‖².
	a := Spherical(linalg.Vector{0, 0}, 1)
	b := Spherical(linalg.Vector{3, 4}, 1)
	if got := CrossMahalanobisSq(a, b); math.Abs(got-50) > 1e-10 {
		t.Fatalf("cross-maha = %v, want 50", got)
	}
}

func TestCrossMahalanobisSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 20; i++ {
		a, b := randComponent(rng, 3), randComponent(rng, 3)
		ab := CrossMahalanobisSq(a, b)
		ba := CrossMahalanobisSq(b, a)
		if math.Abs(ab-ba) > 1e-9*(1+ab) {
			t.Fatalf("not symmetric: %v vs %v", ab, ba)
		}
		if ab < 0 {
			t.Fatalf("negative distance %v", ab)
		}
	}
}

func TestMMergeOrdering(t *testing.T) {
	// Closer components must have larger M_merge.
	base := Spherical(linalg.Vector{0}, 1)
	near := Spherical(linalg.Vector{0.5}, 1)
	far := Spherical(linalg.Vector{5}, 1)
	if MMerge(base, near) <= MMerge(base, far) {
		t.Fatal("M_merge does not prefer nearby components")
	}
	// Identical means: +Inf.
	if !math.IsInf(MMerge(base, Spherical(linalg.Vector{0}, 2)), 1) {
		t.Fatal("identical means should give +Inf M_merge")
	}
}

func TestMSplitRemergeReciprocal(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	c := randComponent(rng, 2)
	mixMean := linalg.Vector{5, -1}
	mixCov := linalg.NewSymFrom(2, []float64{2, 0.3, 0.3, 1})
	ms := MSplit(c, mixMean, mixCov)
	mr := MRemerge(c, mixMean, mixCov)
	// The paper's identity: M_split = 1/M_remerge.
	if math.Abs(ms*mr-1) > 1e-9 {
		t.Fatalf("M_split·M_remerge = %v, want 1", ms*mr)
	}
}

func TestMSplitCompMatchesMSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	c := randComponent(rng, 2)
	father := randComponent(rng, 2)
	direct := MSplitComp(c, father)
	viaMoments := MSplit(c, father.Mean(), father.Cov())
	if math.Abs(direct-viaMoments) > 1e-9*(1+direct) {
		t.Fatalf("MSplitComp %v != MSplit %v", direct, viaMoments)
	}
}

func TestMSplitSingularFather(t *testing.T) {
	c := Spherical(linalg.Vector{0, 0}, 1)
	// Perfectly correlated father covariance that cannot be repaired to a
	// meaningful Gaussian at floor 0 — NewComponent repairs it internally,
	// so M_split should still return a finite positive number OR +Inf;
	// either way it must not be NaN.
	sing := linalg.NewSymFrom(2, []float64{1, 1, 1, 1})
	got := MSplit(c, linalg.Vector{3, 3}, sing)
	if math.IsNaN(got) {
		t.Fatal("M_split returned NaN for singular father")
	}
}

func TestJMergeIdentifiesOverlap(t *testing.T) {
	// Three components: 0 and 1 overlap, 2 is far away. J_merge(0,1) must
	// dominate J_merge(0,2) and J_merge(1,2).
	rng := rand.New(rand.NewSource(53))
	c0 := Spherical(linalg.Vector{0}, 1)
	c1 := Spherical(linalg.Vector{1}, 1)
	c2 := Spherical(linalg.Vector{20}, 1)
	m := MustMixture([]float64{1, 1, 1}, []*Component{c0, c1, c2})
	data := m.SampleN(rng, 3000)
	j01 := JMerge(m, 0, 1, data)
	j02 := JMerge(m, 0, 2, data)
	j12 := JMerge(m, 1, 2, data)
	if j01 <= j02 || j01 <= j12 {
		t.Fatalf("J_merge(0,1)=%v should dominate (0,2)=%v and (1,2)=%v", j01, j02, j12)
	}
}

func TestMMergeTracksJMerge(t *testing.T) {
	// The Figure-1 claim in miniature: rank correlation between M_merge and
	// J_merge across all pairs of a fitted model should be strongly
	// positive.
	rng := rand.New(rand.NewSource(54))
	var comps []*Component
	for i := 0; i < 5; i++ {
		comps = append(comps, Spherical(linalg.Vector{float64(i) * 1.5, float64(i%2) * 2}, 0.8))
	}
	m := MustMixture([]float64{1, 1, 1, 1, 1}, comps)
	data := m.SampleN(rng, 4000)

	var mm, jm []float64
	for i := 0; i < m.K(); i++ {
		for j := i + 1; j < m.K(); j++ {
			mm = append(mm, MMerge(m.Component(i), m.Component(j)))
			jm = append(jm, JMerge(m, i, j, data))
		}
	}
	if rho := spearman(mm, jm); rho < 0.7 {
		t.Fatalf("Spearman(M_merge, J_merge) = %v, want ≥ 0.7", rho)
	}
}

func TestKLDivergenceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 20; i++ {
		a, b := randComponent(rng, 3), randComponent(rng, 3)
		if kl := KLDivergence(a, b); kl < -1e-9 {
			t.Fatalf("KL negative: %v", kl)
		}
		if kl := KLDivergence(a, a); math.Abs(kl) > 1e-9 {
			t.Fatalf("KL(a‖a) = %v, want 0", kl)
		}
	}
}

func TestSymKLRelatesToCrossMahalanobis(t *testing.T) {
	// For equal covariances, SymKL = CrossMahalanobisSq/2 exactly:
	// KL(a‖b)+KL(b‖a) = Δᵀ(Σ⁻¹)Δ while cross-maha = Δᵀ(2Σ⁻¹)Δ.
	cov := linalg.NewSymFrom(2, []float64{2, 0.5, 0.5, 1})
	a := MustComponent(linalg.Vector{0, 0}, cov)
	b := MustComponent(linalg.Vector{1, 2}, cov)
	sym := SymKL(a, b)
	cross := CrossMahalanobisSq(a, b)
	if math.Abs(sym-cross/2) > 1e-9 {
		t.Fatalf("SymKL = %v, cross/2 = %v", sym, cross/2)
	}
}

func TestNormalizeSeries(t *testing.T) {
	got := NormalizeSeries([]float64{2, 4, 6})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Fatalf("normalize = %v", got)
		}
	}
	if got := NormalizeSeries([]float64{5, 5}); got[0] != 0 || got[1] != 0 {
		t.Fatalf("constant series should normalize to zeros, got %v", got)
	}
	if got := NormalizeSeries(nil); len(got) != 0 {
		t.Fatal("nil series should give empty result")
	}
}

// spearman computes Spearman's rank correlation.
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	return cov / math.Sqrt(va*vb)
}

func ranks(v []float64) []float64 {
	r := make([]float64, len(v))
	for i := range v {
		var rank float64
		for j := range v {
			if v[j] < v[i] {
				rank++
			}
		}
		r[i] = rank
	}
	return r
}
