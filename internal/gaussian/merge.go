package gaussian

import (
	"math"
	"math/rand"

	"cludistream/internal/linalg"
	"cludistream/internal/simplex"
)

// This file implements the actual merging of two Gaussian components into
// one (Section 5.2.1): the closed-form moment merge used as the starting
// point, the Monte-Carlo estimator of the paper's L1 accuracy-loss l(x),
// and the Nelder–Mead refinement that minimizes it.

// MomentMerge returns the weight, mean and covariance of the Gaussian that
// matches the first two moments of the pair (w_i·p_i + w_j·p_j):
//
//	w  = w_i + w_j
//	μ  = (w_i·μ_i + w_j·μ_j) / w
//	Σ  = (w_i·(Σ_i + μ_iμ_iᵀ) + w_j·(Σ_j + μ_jμ_jᵀ)) / w − μμᵀ
//
// This is the optimal single-Gaussian approximation under KL and serves as
// the simplex starting point.
func MomentMerge(wi float64, ci *Component, wj float64, cj *Component) (float64, linalg.Vector, *linalg.Sym) {
	w := wi + wj
	d := ci.Dim()
	mean := linalg.NewVector(d)
	mean.AXPYInPlace(wi/w, ci.Mean())
	mean.AXPYInPlace(wj/w, cj.Mean())

	cov := linalg.NewSym(d)
	cov.AddSym(wi/w, ci.Cov())
	cov.AddSym(wj/w, cj.Cov())
	di := ci.Mean().Sub(mean)
	dj := cj.Mean().Sub(mean)
	cov.AddOuterScaled(wi/w, di)
	cov.AddOuterScaled(wj/w, dj)
	return w, mean, cov
}

// L1Loss estimates the paper's accuracy-loss
//
//	l = ∫ |w_i·p(x|i) + w_j·p(x|j) − (w_i+w_j)·p(x|i′)| dx
//
// by importance sampling: x is drawn from the normalized parent pair
// q(x) = (w_i·p_i + w_j·p_j)/(w_i+w_j) and the integrand is averaged as
// |a(x) − b(x)|/q(x). The estimator is unbiased wherever q > 0, and the
// merged density i′ always lives between the parents, so coverage is good.
// nSamples around 256 gives a stable enough signal to steer Nelder–Mead.
func L1Loss(wi float64, ci *Component, wj float64, cj *Component, merged *Component, nSamples int, rng *rand.Rand) float64 {
	if nSamples <= 0 {
		nSamples = 256
	}
	w := wi + wj
	pi := wi / w
	x := linalg.NewVector(ci.Dim())
	var acc float64
	for s := 0; s < nSamples; s++ {
		if rng.Float64() < pi {
			ci.SampleInto(rng, x)
		} else {
			cj.SampleInto(rng, x)
		}
		a := wi*ci.Prob(x) + wj*cj.Prob(x)
		b := w * merged.Prob(x)
		q := a / w
		if q <= 0 || math.IsInf(q, 0) || math.IsNaN(q) {
			continue
		}
		acc += math.Abs(a-b) / q
	}
	return acc / float64(nSamples)
}

// MergeOptions tunes FitMerge. The zero value selects the defaults the
// experiments use.
type MergeOptions struct {
	// Samples is the Monte-Carlo sample count per objective evaluation
	// (default 128).
	Samples int
	// MaxIter caps simplex iterations (default 25·d — merging is on the
	// coordinator's critical path, so the budget is deliberately tight).
	MaxIter int
	// Seed drives the common-random-numbers stream used across objective
	// evaluations; fixed CRN makes the noisy objective coherent for the
	// simplex. Zero means seed 1.
	Seed int64
	// MomentOnly skips the simplex refinement and returns the moment merge
	// directly (the ablation of DESIGN.md §5).
	MomentOnly bool
}

// FitMerge merges components i and j (with weights wi, wj) into a single
// component i′ by minimizing the L1 accuracy-loss with downhill simplex,
// starting from the moment merge. It returns the merged weight and
// component. The simplex optimizes the mean and the log of the covariance
// diagonal scale factors — a (2d)-parameter search that keeps Σ positive
// definite by construction while still letting the fit trade variance
// against position; full-matrix search would need d(d+3)/2 parameters for
// marginal gain.
func FitMerge(wi float64, ci *Component, wj float64, cj *Component, opt MergeOptions) (float64, *Component) {
	w, mean0, cov0 := MomentMerge(wi, ci, wj, cj)
	base := MustComponent(mean0, cov0)
	if opt.MomentOnly {
		return w, base
	}
	if opt.Samples <= 0 {
		opt.Samples = 128
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	d := ci.Dim()
	if opt.MaxIter <= 0 {
		opt.MaxIter = 25 * d
	}

	// Parameter vector: [μ_1..μ_d, log s_1..log s_d] where Σ′ has entries
	// Σ′[a][b] = s_a·s_b·Σ0[a][b] — a diagonal congruence of the moment
	// covariance, which preserves positive definiteness for any s > 0.
	obj := func(p []float64) float64 {
		mean := linalg.Vector(p[:d])
		cov := linalg.NewSym(d)
		for a := 0; a < d; a++ {
			sa := math.Exp(p[d+a])
			// The merged covariance may shrink or grow only moderately
			// relative to the moment match: merge candidates are close (the
			// coordinator gates on M_merge), and an unbounded scale lets
			// the simplex chase Monte-Carlo noise into degenerate shapes.
			if sa > 2 || sa < 0.5 {
				return math.Inf(1)
			}
			for b := 0; b <= a; b++ {
				sb := math.Exp(p[d+b])
				cov.Set(a, b, sa*sb*cov0.At(a, b))
			}
		}
		cand, err := NewComponent(mean, cov, 0)
		if err != nil {
			return math.Inf(1)
		}
		// Common random numbers: same seed each evaluation.
		return L1Loss(wi, ci, wj, cj, cand, opt.Samples, rand.New(rand.NewSource(seed)))
	}

	p0 := make([]float64, 2*d)
	copy(p0, mean0)
	res, err := simplex.Minimize(obj, p0, simplex.Options{MaxIter: opt.MaxIter, Step: 0.05, TolF: 1e-6, TolX: 1e-6})
	if err != nil {
		return w, base
	}
	// Only accept the refined parameters if they actually improve on the
	// moment merge under the same CRN stream.
	baseLoss := L1Loss(wi, ci, wj, cj, base, opt.Samples, rand.New(rand.NewSource(seed)))
	if res.F >= baseLoss {
		return w, base
	}
	mean := linalg.Vector(res.X[:d]).Clone()
	cov := linalg.NewSym(d)
	for a := 0; a < d; a++ {
		sa := math.Exp(res.X[d+a])
		for b := 0; b <= a; b++ {
			sb := math.Exp(res.X[d+b])
			cov.Set(a, b, sa*sb*cov0.At(a, b))
		}
	}
	merged, err2 := NewComponent(mean, cov, 0)
	if err2 != nil {
		return w, base
	}
	return w, merged
}
