package gaussian

import (
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/linalg"
)

func TestMomentMergeIdenticalComponents(t *testing.T) {
	c := Spherical(linalg.Vector{1, 2}, 2)
	w, mean, cov := MomentMerge(0.3, c, 0.7, c)
	if math.Abs(w-1) > 1e-15 {
		t.Fatalf("w = %v", w)
	}
	if !mean.Equal(linalg.Vector{1, 2}, 1e-12) {
		t.Fatalf("mean = %v", mean)
	}
	if !cov.Equal(c.Cov(), 1e-12) {
		t.Fatalf("cov diag = %v", cov.Diag())
	}
}

func TestMomentMergeKnown1D(t *testing.T) {
	// Equal weights, unit variances, means ±1: merged μ=0,
	// σ² = 1 + 1 = mean of (σ²+μ²) − μ̄² = (1+1+1+1)/2 − 0 = 2.
	a := Spherical(linalg.Vector{-1}, 1)
	b := Spherical(linalg.Vector{1}, 1)
	w, mean, cov := MomentMerge(0.5, a, 0.5, b)
	if w != 1 || math.Abs(mean[0]) > 1e-15 {
		t.Fatalf("w=%v mean=%v", w, mean)
	}
	if math.Abs(cov.At(0, 0)-2) > 1e-12 {
		t.Fatalf("var = %v, want 2", cov.At(0, 0))
	}
}

func TestMomentMergeMatchesMixtureMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a, b := randComponent(rng, 3), randComponent(rng, 3)
	wi, wj := 0.3, 0.5
	_, mean, cov := MomentMerge(wi, a, wj, b)
	// Compare with Moments() of the normalized 2-component mixture.
	m := MustMixture([]float64{wi, wj}, []*Component{a, b})
	mMean, mCov := m.Moments()
	if !mean.Equal(mMean, 1e-12) {
		t.Fatalf("mean %v vs %v", mean, mMean)
	}
	if !cov.Equal(mCov, 1e-10) {
		t.Fatalf("cov mismatch")
	}
}

func TestL1LossZeroForPerfectMerge(t *testing.T) {
	// Merging a component with itself: the moment merge is exact, so the
	// L1 loss must be ~0.
	rng := rand.New(rand.NewSource(62))
	c := Spherical(linalg.Vector{0, 0}, 1)
	_, mean, cov := MomentMerge(0.5, c, 0.5, c)
	merged := MustComponent(mean, cov)
	loss := L1Loss(0.5, c, 0.5, c, merged, 512, rng)
	if loss > 1e-10 {
		t.Fatalf("L1 loss for identity merge = %v", loss)
	}
}

func TestL1LossPositiveForBadMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	a := Spherical(linalg.Vector{-4}, 1)
	b := Spherical(linalg.Vector{4}, 1)
	good := func() *Component {
		_, mean, cov := MomentMerge(0.5, a, 0.5, b)
		return MustComponent(mean, cov)
	}()
	bad := Spherical(linalg.Vector{50}, 1) // nowhere near the mass
	lGood := L1Loss(0.5, a, 0.5, b, good, 512, rng)
	lBad := L1Loss(0.5, a, 0.5, b, bad, 512, rand.New(rand.NewSource(63)))
	if lGood >= lBad {
		t.Fatalf("good merge loss %v should beat bad %v", lGood, lBad)
	}
	// Totally wrong merged density: |a − b| ≈ a everywhere mass lives, so
	// loss ≈ total weight = 1.
	if math.Abs(lBad-1) > 0.05 {
		t.Fatalf("bad merge loss = %v, want ≈ 1", lBad)
	}
}

func TestL1LossBounded(t *testing.T) {
	// l(x) = ∫|a−b| ≤ ∫a + ∫b = 2w. Monte-Carlo noise stays within ~10%.
	rng := rand.New(rand.NewSource(64))
	for i := 0; i < 10; i++ {
		a, b := randComponent(rng, 2), randComponent(rng, 2)
		merged := randComponent(rng, 2)
		loss := L1Loss(0.5, a, 0.5, b, merged, 512, rng)
		if loss < 0 || loss > 2.2 {
			t.Fatalf("loss out of bounds: %v", loss)
		}
	}
}

func TestFitMergeImprovesOrMatchesMoment(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	a := Spherical(linalg.Vector{-2, 0}, 1)
	b := Spherical(linalg.Vector{2, 0}, 1)
	w, fitted := FitMerge(0.5, a, 0.5, b, MergeOptions{Samples: 256, Seed: 7})
	if math.Abs(w-1) > 1e-12 {
		t.Fatalf("w = %v", w)
	}
	_, mean0, cov0 := MomentMerge(0.5, a, 0.5, b)
	base := MustComponent(mean0, cov0)
	crn := func(c *Component) float64 {
		return L1Loss(0.5, a, 0.5, b, c, 256, rand.New(rand.NewSource(7)))
	}
	if crn(fitted) > crn(base)+1e-12 {
		t.Fatalf("fitted loss %v worse than moment %v", crn(fitted), crn(base))
	}
	_ = rng
}

func TestFitMergeMomentOnly(t *testing.T) {
	a := Spherical(linalg.Vector{-1}, 1)
	b := Spherical(linalg.Vector{1}, 1)
	w, c := FitMerge(0.4, a, 0.6, b, MergeOptions{MomentOnly: true})
	_, mean, cov := MomentMerge(0.4, a, 0.6, b)
	want := MustComponent(mean, cov)
	if math.Abs(w-1) > 1e-12 || !c.Equal(want, 1e-12) {
		t.Fatal("MomentOnly did not return the moment merge")
	}
}

func TestFitMergeDeterministic(t *testing.T) {
	a := Spherical(linalg.Vector{-2, 1}, 1.5)
	b := Spherical(linalg.Vector{2, -1}, 0.8)
	_, c1 := FitMerge(0.5, a, 0.5, b, MergeOptions{Samples: 128, Seed: 3})
	_, c2 := FitMerge(0.5, a, 0.5, b, MergeOptions{Samples: 128, Seed: 3})
	if !c1.Equal(c2, 0) {
		t.Fatal("FitMerge not deterministic for fixed seed")
	}
}

func TestFitMergePreservesTotalWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for i := 0; i < 5; i++ {
		a, b := randComponent(rng, 2), randComponent(rng, 2)
		wi, wj := rng.Float64()+0.1, rng.Float64()+0.1
		w, merged := FitMerge(wi, a, wj, b, MergeOptions{Samples: 64, Seed: int64(i + 1), MaxIter: 40})
		if math.Abs(w-(wi+wj)) > 1e-12 {
			t.Fatalf("weight not preserved: %v vs %v", w, wi+wj)
		}
		if merged.Dim() != 2 {
			t.Fatal("dimension changed")
		}
	}
}
