package gaussian

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"cludistream/internal/linalg"
)

// Mixture is a Gaussian mixture model p(x) = Σ_j w_j p(x|j) (Eq. 1 of the
// paper), the representation CluDistream uses for every cluster model on
// both remote sites and the coordinator.
type Mixture struct {
	weights []float64
	comps   []*Component
	// logW caches log(weights[j]) (−Inf for zero weights). Mixtures are
	// immutable, so the cache is computed once in NewMixture instead of
	// once per record in every scoring loop.
	logW []float64
	// prune is the lazily built pruning index of prune.go; pruneOnce makes
	// the build race-free when concurrent goroutines score one mixture.
	pruneOnce sync.Once
	prune     *ScoreIndex
}

// ErrEmptyMixture is returned by constructors given no components.
var ErrEmptyMixture = errors.New("gaussian: mixture needs at least one component")

// NewMixture builds a mixture from parallel weight/component slices. The
// weights are copied and normalized to sum to 1; they must be non-negative
// with a positive sum, and every component must share one dimensionality.
func NewMixture(weights []float64, comps []*Component) (*Mixture, error) {
	if len(comps) == 0 {
		return nil, ErrEmptyMixture
	}
	if len(weights) != len(comps) {
		return nil, fmt.Errorf("gaussian: %d weights for %d components", len(weights), len(comps))
	}
	d := comps[0].Dim()
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("gaussian: negative or NaN weight %v at %d", w, i)
		}
		if comps[i].Dim() != d {
			return nil, fmt.Errorf("gaussian: component %d has dim %d, want %d", i, comps[i].Dim(), d)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, errors.New("gaussian: weights sum to zero")
	}
	ws := make([]float64, len(weights))
	for i, w := range weights {
		ws[i] = w / sum
	}
	cs := make([]*Component, len(comps))
	copy(cs, comps)
	lw := make([]float64, len(ws))
	for i, w := range ws {
		lw[i] = math.Log(w) // Log(0) = -Inf, matching the zero-weight skip
	}
	return &Mixture{weights: ws, comps: cs, logW: lw}, nil
}

// MustMixture is NewMixture that panics on error.
func MustMixture(weights []float64, comps []*Component) *Mixture {
	m, err := NewMixture(weights, comps)
	if err != nil {
		panic(err)
	}
	return m
}

// Uniform builds a mixture with equal weights over comps.
func Uniform(comps []*Component) (*Mixture, error) {
	ws := make([]float64, len(comps))
	for i := range ws {
		ws[i] = 1
	}
	return NewMixture(ws, comps)
}

// K returns the number of components.
func (m *Mixture) K() int { return len(m.comps) }

// Dim returns the data dimensionality.
func (m *Mixture) Dim() int { return m.comps[0].Dim() }

// Weight returns w_j.
func (m *Mixture) Weight(j int) float64 { return m.weights[j] }

// Weights returns a copy of the weight vector.
func (m *Mixture) Weights() []float64 {
	return append([]float64(nil), m.weights...)
}

// Component returns component j (immutable).
func (m *Mixture) Component(j int) *Component { return m.comps[j] }

// Components returns a copy of the component slice (components themselves
// are shared — they are immutable).
func (m *Mixture) Components() []*Component {
	return append([]*Component(nil), m.comps...)
}

// LogPDF returns log p(x) = log Σ_j w_j p(x|j), evaluated stably with
// log-sum-exp. Two scratch vectors are allocated per call (not per
// component); the fit test and the E-step funnel through here, so the
// allocation profile matters.
func (m *Mixture) LogPDF(x linalg.Vector) float64 {
	diff := linalg.NewVector(m.Dim())
	half := linalg.NewVector(m.Dim())
	return m.logPDFScratch(x, diff, half)
}

func (m *Mixture) logPDFScratch(x, diff, half linalg.Vector) float64 {
	lse := math.Inf(-1)
	for j, c := range m.comps {
		if m.weights[j] == 0 {
			continue
		}
		lp := m.logW[j] + c.LogProbScratch(x, diff, half)
		lse = logAdd(lse, lp)
	}
	return lse
}

// PDF returns the density p(x).
func (m *Mixture) PDF(x linalg.Vector) float64 { return math.Exp(m.LogPDF(x)) }

// MaxComponentLogPDF returns max_j log(w_j·p(x|j)) — the "sharpened"
// statistic the proof of Theorem 2 substitutes for the full mixture
// likelihood ("we use the maximal probability of x belongs to one of the
// clusters instead of the overall probability").
func (m *Mixture) MaxComponentLogPDF(x linalg.Vector) float64 {
	best := math.Inf(-1)
	for j, c := range m.comps {
		if m.weights[j] == 0 {
			continue
		}
		if lp := m.logW[j] + c.LogProb(x); lp > best {
			best = lp
		}
	}
	return best
}

// AvgLogLikelihood is Definition 1: (1/|D|)·Σ_x log p(x). It is the quality
// measure used by every experiment in Section 6 and the statistic of the
// J_fit test. An empty data set yields 0. It runs on the batched scoring
// kernel (see batch.go), which is bit-identical to summing LogPDF per
// record but streams through the data block-wise.
func (m *Mixture) AvgLogLikelihood(data []linalg.Vector) float64 {
	return m.AvgLogLikelihoodScratch(data, nil)
}

// AvgMaxComponentLL is AvgLogLikelihood with the sharpened per-record
// statistic of Theorem 2's proof. Batched like AvgLogLikelihood.
func (m *Mixture) AvgMaxComponentLL(data []linalg.Vector) float64 {
	return m.AvgMaxComponentLLScratch(data, nil)
}

// PosteriorInto writes Pr(j|x) = w_j·p(x|j) / p(x) (Eq. 2) for all j into
// dst, which must have length K. It returns log p(x) as a by-product (the
// E-step wants both).
func (m *Mixture) PosteriorInto(x linalg.Vector, dst []float64) float64 {
	if len(dst) != len(m.comps) {
		panic("gaussian: posterior buffer length mismatch")
	}
	diff := linalg.NewVector(m.Dim())
	half := linalg.NewVector(m.Dim())
	lse := math.Inf(-1)
	for j, c := range m.comps {
		if m.weights[j] == 0 {
			dst[j] = math.Inf(-1)
			continue
		}
		dst[j] = m.logW[j] + c.LogProbScratch(x, diff, half)
		lse = logAdd(lse, dst[j])
	}
	for j := range dst {
		if math.IsInf(dst[j], -1) {
			dst[j] = 0
			continue
		}
		dst[j] = math.Exp(dst[j] - lse)
	}
	return lse
}

// Posterior returns Pr(·|x) as a fresh slice.
func (m *Mixture) Posterior(x linalg.Vector) []float64 {
	dst := make([]float64, len(m.comps))
	m.PosteriorInto(x, dst)
	return dst
}

// Sample draws one record: pick a component by weight, then sample it.
func (m *Mixture) Sample(rng *rand.Rand) linalg.Vector {
	j := m.SampleComponentIndex(rng)
	return m.comps[j].Sample(rng)
}

// SampleComponentIndex draws a component index distributed as the weights.
func (m *Mixture) SampleComponentIndex(rng *rand.Rand) int {
	u := rng.Float64()
	var acc float64
	for j, w := range m.weights {
		acc += w
		if u < acc {
			return j
		}
	}
	return len(m.weights) - 1
}

// SampleN draws n records.
func (m *Mixture) SampleN(rng *rand.Rand, n int) []linalg.Vector {
	out := make([]linalg.Vector, n)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// Reweighted returns a mixture with the same components and new weights.
func (m *Mixture) Reweighted(weights []float64) (*Mixture, error) {
	return NewMixture(weights, m.comps)
}

// Moments returns the overall mean and covariance of the mixture:
// μ = Σ w_j μ_j and Σ = Σ w_j (Σ_j + μ_j μ_jᵀ) − μμᵀ. The coordinator uses
// these as the parameters (μ_Mix, Σ_Mix) of a father mixture node in the
// M_split/M_remerge criteria (Eq. 6).
func (m *Mixture) Moments() (linalg.Vector, *linalg.Sym) {
	d := m.Dim()
	mean := linalg.NewVector(d)
	for j, c := range m.comps {
		mean.AXPYInPlace(m.weights[j], c.Mean())
	}
	cov := linalg.NewSym(d)
	for j, c := range m.comps {
		cov.AddSym(m.weights[j], c.Cov())
		diff := c.Mean().Sub(mean)
		cov.AddOuterScaled(m.weights[j], diff)
	}
	return mean, cov
}

// String renders a compact summary.
func (m *Mixture) String() string {
	return fmt.Sprintf("Mixture(K=%d, d=%d)", m.K(), m.Dim())
}

// Signature returns a cheap change-detection fingerprint of the mixture:
// component count plus a weighted hash of means and weights. Two mixtures
// with equal signatures are almost surely identical; hierarchy nodes use
// this to decide whether their locally-observed model changed enough to
// re-upload (Section 7's event-driven propagation).
func (m *Mixture) Signature() float64 {
	sig := float64(m.K()) * 1e9
	for j := 0; j < m.K(); j++ {
		w := m.weights[j]
		for i, v := range m.comps[j].Mean() {
			sig += w * v * float64(i+1)
		}
		sig += w * float64(j+1) * 13.37
	}
	return sig
}

// ApproxEqual reports whether two mixtures describe materially the same
// model: identical component counts, weights within weightTol, and
// component means within meanTol per coordinate (matched positionally —
// coordinator snapshots keep stable group ordering). Hierarchy nodes use
// this as the §7 "locally-observed Gaussian mixture model changes" test:
// weight drift within tolerance does not trigger a re-upload.
func (m *Mixture) ApproxEqual(o *Mixture, weightTol, meanTol float64) bool {
	if o == nil || m.K() != o.K() || m.Dim() != o.Dim() {
		return false
	}
	for j := 0; j < m.K(); j++ {
		if math.Abs(m.weights[j]-o.weights[j]) > weightTol {
			return false
		}
		if !m.comps[j].Mean().Equal(o.comps[j].Mean(), meanTol) {
			return false
		}
	}
	return true
}

// logAdd returns log(e^a + e^b) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
