package gaussian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cludistream/internal/linalg"
)

func twoComponentMixture() *Mixture {
	c1 := Spherical(linalg.Vector{-3}, 1)
	c2 := Spherical(linalg.Vector{3}, 1)
	return MustMixture([]float64{0.4, 0.6}, []*Component{c1, c2})
}

func TestMixtureConstruction(t *testing.T) {
	m := twoComponentMixture()
	if m.K() != 2 || m.Dim() != 1 {
		t.Fatalf("K=%d d=%d", m.K(), m.Dim())
	}
	if math.Abs(m.Weight(0)-0.4) > 1e-15 || math.Abs(m.Weight(1)-0.6) > 1e-15 {
		t.Fatalf("weights = %v", m.Weights())
	}
}

func TestMixtureWeightNormalization(t *testing.T) {
	c := Spherical(linalg.Vector{0}, 1)
	m := MustMixture([]float64{2, 6}, []*Component{c, c})
	if math.Abs(m.Weight(0)-0.25) > 1e-15 {
		t.Fatalf("weights not normalized: %v", m.Weights())
	}
}

func TestMixtureConstructionErrors(t *testing.T) {
	c := Spherical(linalg.Vector{0}, 1)
	c2d := Spherical(linalg.Vector{0, 0}, 1)
	cases := []struct {
		name  string
		w     []float64
		comps []*Component
	}{
		{"empty", nil, nil},
		{"len mismatch", []float64{1}, []*Component{c, c}},
		{"negative weight", []float64{-1, 2}, []*Component{c, c}},
		{"zero sum", []float64{0, 0}, []*Component{c, c}},
		{"NaN weight", []float64{math.NaN(), 1}, []*Component{c, c}},
		{"dim mismatch", []float64{1, 1}, []*Component{c, c2d}},
	}
	for _, tc := range cases {
		if _, err := NewMixture(tc.w, tc.comps); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestMixtureLogPDFMatchesDirectSum(t *testing.T) {
	m := twoComponentMixture()
	for _, x := range []float64{-5, -3, 0, 1, 3, 7} {
		xv := linalg.Vector{x}
		direct := 0.4*m.Component(0).Prob(xv) + 0.6*m.Component(1).Prob(xv)
		if got := m.PDF(xv); math.Abs(got-direct) > 1e-12*(1+direct) {
			t.Fatalf("PDF(%v) = %v, want %v", x, got, direct)
		}
	}
}

func TestMixturePosteriorSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(n uint8) bool {
		k := int(n%4) + 1
		comps := make([]*Component, k)
		ws := make([]float64, k)
		for i := range comps {
			comps[i] = randComponent(rng, 3)
			ws[i] = rng.Float64() + 0.1
		}
		m := MustMixture(ws, comps)
		x := randVec(rng, 3)
		post := m.Posterior(x)
		var sum float64
		for _, p := range post {
			if p < -1e-12 || p > 1+1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMixturePosteriorExtremePoint(t *testing.T) {
	m := twoComponentMixture()
	// Far to the left, component 0 should own the point.
	post := m.Posterior(linalg.Vector{-10})
	if post[0] < 0.999 {
		t.Fatalf("posterior = %v", post)
	}
	// Return value is log p(x).
	dst := make([]float64, 2)
	lp := m.PosteriorInto(linalg.Vector{-10}, dst)
	if math.Abs(lp-m.LogPDF(linalg.Vector{-10})) > 1e-12 {
		t.Fatalf("PosteriorInto logpdf = %v, want %v", lp, m.LogPDF(linalg.Vector{-10}))
	}
}

func TestMixtureAvgLogLikelihood(t *testing.T) {
	m := twoComponentMixture()
	data := []linalg.Vector{{-3}, {3}}
	want := (m.LogPDF(data[0]) + m.LogPDF(data[1])) / 2
	if got := m.AvgLogLikelihood(data); math.Abs(got-want) > 1e-15 {
		t.Fatalf("AvgLL = %v, want %v", got, want)
	}
	if got := m.AvgLogLikelihood(nil); got != 0 {
		t.Fatalf("AvgLL(empty) = %v", got)
	}
}

func TestMixtureMaxComponentLL(t *testing.T) {
	m := twoComponentMixture()
	x := linalg.Vector{-3}
	want := math.Log(0.4) + m.Component(0).LogProb(x)
	if got := m.MaxComponentLogPDF(x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxComponentLogPDF = %v, want %v", got, want)
	}
	// Sharpened statistic is never above the full mixture log-density...
	if m.MaxComponentLogPDF(x) > m.LogPDF(x) {
		t.Fatal("max-component exceeds mixture log-density")
	}
	// ...and within log(K) of it.
	if m.LogPDF(x)-m.MaxComponentLogPDF(x) > math.Log(2)+1e-12 {
		t.Fatal("max-component more than log K below mixture")
	}
}

func TestMixtureSampleFrequencies(t *testing.T) {
	m := twoComponentMixture()
	rng := rand.New(rand.NewSource(42))
	var count0 int
	const n = 20000
	for i := 0; i < n; i++ {
		if m.SampleComponentIndex(rng) == 0 {
			count0++
		}
	}
	frac := float64(count0) / n
	if math.Abs(frac-0.4) > 0.02 {
		t.Fatalf("component 0 frequency = %v, want ~0.4", frac)
	}
}

func TestMixtureSampleNSeparation(t *testing.T) {
	m := twoComponentMixture()
	rng := rand.New(rand.NewSource(43))
	xs := m.SampleN(rng, 5000)
	var left, right int
	for _, x := range xs {
		if x[0] < 0 {
			left++
		} else {
			right++
		}
	}
	if math.Abs(float64(left)/5000-0.4) > 0.03 {
		t.Fatalf("left fraction = %v", float64(left)/5000)
	}
	_ = right
}

func TestMixtureMoments(t *testing.T) {
	m := twoComponentMixture()
	mean, cov := m.Moments()
	// μ = 0.4·(−3) + 0.6·3 = 0.6
	if math.Abs(mean[0]-0.6) > 1e-12 {
		t.Fatalf("mixture mean = %v, want 0.6", mean[0])
	}
	// Σ = Σ w_j(σ² + μ_j²) − μ² = (0.4·(1+9) + 0.6·(1+9)) − 0.36 = 9.64
	if math.Abs(cov.At(0, 0)-9.64) > 1e-12 {
		t.Fatalf("mixture var = %v, want 9.64", cov.At(0, 0))
	}
}

func TestMixtureMomentsMatchSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	comps := []*Component{randComponent(rng, 2), randComponent(rng, 2), randComponent(rng, 2)}
	m := MustMixture([]float64{1, 2, 3}, comps)
	mean, cov := m.Moments()
	const n = 120000
	sm := linalg.NewVector(2)
	xs := make([]linalg.Vector, n)
	for i := range xs {
		xs[i] = m.Sample(rng)
		sm.AddInPlace(xs[i])
	}
	sm.ScaleInPlace(1 / float64(n))
	if !sm.Equal(mean, 0.05) {
		t.Fatalf("sampled mean %v vs moments %v", sm, mean)
	}
	sc := linalg.NewSym(2)
	for _, x := range xs {
		sc.AddOuterScaled(1/float64(n), x.Sub(sm))
	}
	if !sc.Equal(cov, 0.15) {
		t.Fatalf("sampled cov diag %v vs moments %v", sc.Diag(), cov.Diag())
	}
}

func TestMixtureReweighted(t *testing.T) {
	m := twoComponentMixture()
	r, err := m.Reweighted([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Weight(0)-0.5) > 1e-15 {
		t.Fatalf("reweighted = %v", r.Weights())
	}
	// Original untouched.
	if math.Abs(m.Weight(0)-0.4) > 1e-15 {
		t.Fatal("Reweighted mutated original")
	}
}

func TestMixtureAccessors(t *testing.T) {
	m := twoComponentMixture()
	ws := m.Weights()
	if len(ws) != 2 || math.Abs(ws[0]-0.4) > 1e-15 {
		t.Fatalf("Weights = %v", ws)
	}
	ws[0] = 99 // returned slice must be a copy
	if m.Weight(0) != 0.4 {
		t.Fatal("Weights aliases internal storage")
	}
	cs := m.Components()
	if len(cs) != 2 || cs[0] != m.Component(0) {
		t.Fatal("Components mismatch")
	}
	if s := m.String(); s != "Mixture(K=2, d=1)" {
		t.Fatalf("String = %q", s)
	}
	if s := m.Component(0).String(); s == "" {
		t.Fatal("component String empty")
	}
	u, err := Uniform(cs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.Weight(0)-0.5) > 1e-15 {
		t.Fatalf("Uniform weights = %v", u.Weights())
	}
	if _, err := Uniform(nil); err == nil {
		t.Fatal("Uniform(nil) accepted")
	}
}

func TestMixtureAvgMaxComponentLL(t *testing.T) {
	m := twoComponentMixture()
	data := []linalg.Vector{{-3}, {3}}
	want := (m.MaxComponentLogPDF(data[0]) + m.MaxComponentLogPDF(data[1])) / 2
	if got := m.AvgMaxComponentLL(data); math.Abs(got-want) > 1e-15 {
		t.Fatalf("AvgMaxComponentLL = %v, want %v", got, want)
	}
	if m.AvgMaxComponentLL(nil) != 0 {
		t.Fatal("empty data should score 0")
	}
	// Sharpened statistic is a lower bound on the full likelihood.
	if m.AvgMaxComponentLL(data) > m.AvgLogLikelihood(data) {
		t.Fatal("max-component exceeds mixture avg LL")
	}
}

func TestMixtureSignatureAndApproxEqual(t *testing.T) {
	a := twoComponentMixture()
	b := twoComponentMixture()
	if a.Signature() != b.Signature() {
		t.Fatal("identical mixtures differ in signature")
	}
	if !a.ApproxEqual(b, 0.01, 0.01) {
		t.Fatal("identical mixtures not ApproxEqual")
	}
	if a.ApproxEqual(nil, 1, 1) {
		t.Fatal("nil comparison true")
	}
	// A small weight shift stays within tolerance; a big one does not.
	shifted := MustMixture([]float64{0.42, 0.58}, a.Components())
	if !a.ApproxEqual(shifted, 0.05, 0.01) {
		t.Fatal("2% weight drift flagged at 5% tolerance")
	}
	if a.ApproxEqual(shifted, 0.01, 0.01) {
		t.Fatal("2% weight drift missed at 1% tolerance")
	}
	// A mean move beyond tolerance flags.
	moved := MustMixture([]float64{0.4, 0.6}, []*Component{
		Spherical(linalg.Vector{-3.5}, 1), a.Component(1),
	})
	if a.ApproxEqual(moved, 0.05, 0.1) {
		t.Fatal("0.5 mean move missed at 0.1 tolerance")
	}
	// Different K.
	single := MustMixture([]float64{1}, []*Component{a.Component(0)})
	if a.ApproxEqual(single, 1, 1e9) {
		t.Fatal("different K reported equal")
	}
}

func TestLogAddStability(t *testing.T) {
	// logAdd must not overflow for large magnitude inputs.
	got := logAdd(-1000, -1000)
	want := -1000 + math.Log(2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("logAdd(-1000,-1000) = %v, want %v", got, want)
	}
	if got := logAdd(math.Inf(-1), -5); got != -5 {
		t.Fatalf("logAdd(-inf, -5) = %v", got)
	}
	if got := logAdd(-5, math.Inf(-1)); got != -5 {
		t.Fatalf("logAdd(-5, -inf) = %v", got)
	}
}
