// Pruned mixture scoring: the paper names "constructing index structure to
// accelerate merge and split based on the mixture models" as future work;
// this file applies the same idea to the J_fit hot path. A per-mixture
// ScoreIndex holds a k-d tree over component means plus two conservative
// constants, and AvgLogLikelihoodBounds evaluates only the top-m
// nearest-mean components per record, returning a mathematically sound
// interval [lo, hi] around the exact average log-likelihood:
//
//	lo  = the log-sum-exp over the m candidate components alone
//	      (a subset of the full sum, hence a lower bound), and
//	hi  = logAdd(lo, ub) where ub bounds the total mass of every skipped
//	      component: for a skipped component j the squared Mahalanobis
//	      distance satisfies (x−μ_j)ᵀΣ_j⁻¹(x−μ_j) ≥ ‖x−μ_j‖²/λmax(Σ_j)
//	      ≥ dm²/λmax(model), with dm the distance to the m-th nearest
//	      mean (every skipped mean is at least that far), so
//	      Σ_skipped w_j·p(x|j) ≤ exp(logSumWN − ½·dm²/λmax).
//
// Callers (the site's fit test) act on the interval only when it decides
// the J_fit verdict with slack to spare, and fall back to the exact batched
// scan otherwise — which is how the pruned path stays bit-identical to the
// exact path at the decision level.
package gaussian

import (
	"math"

	"cludistream/internal/kdtree"
	"cludistream/internal/linalg"
)

// lambdaMaxInflate guards the eigenvalue bound against Jacobi rounding:
// the largest eigenvalue is inflated by this relative factor (plus a tiny
// absolute floor) before it is used to lower-bound Mahalanobis distances.
const lambdaMaxInflate = 1e-6

// ScoreIndex is the per-mixture pruning index: a k-d tree over the means
// of the non-zero-weight components and the two constants of the skipped-
// mass bound. It is built lazily (once, thread-safe) and read-only after
// construction, so concurrent scoring goroutines can share it.
type ScoreIndex struct {
	tree *kdtree.Tree
	// active is the number of non-zero-weight (indexed) components.
	active int
	// lambdaMax bounds the largest covariance eigenvalue over all indexed
	// components, inflated by lambdaMaxInflate.
	lambdaMax float64
	// logSumWN = log Σ_j exp(logW_j + logNorm_j) over indexed components —
	// the x-independent part of the skipped-mass bound.
	logSumWN float64
	usable   bool
}

// scoreIndex returns the mixture's pruning index, building it on first use.
func (m *Mixture) scoreIndex() *ScoreIndex {
	m.pruneOnce.Do(func() { m.prune = buildScoreIndex(m) })
	return m.prune
}

func buildScoreIndex(m *Mixture) *ScoreIndex {
	idx := &ScoreIndex{}
	d := m.Dim()
	tree := kdtree.New(d)
	logSumWN := math.Inf(-1)
	lambdaMax := 0.0
	for j, c := range m.comps {
		if m.weights[j] == 0 {
			continue
		}
		tree.Insert(j, c.mean)
		logSumWN = logAdd(logSumWN, m.logW[j]+c.logNorm)
		eig, _ := linalg.JacobiEigen(c.cov)
		for _, lam := range eig {
			if lam > lambdaMax {
				lambdaMax = lam
			}
		}
		idx.active++
	}
	lambdaMax = lambdaMax*(1+lambdaMaxInflate) + 1e-300
	if idx.active < 2 || !(lambdaMax > 0) || math.IsInf(lambdaMax, 1) ||
		math.IsNaN(logSumWN) || math.IsInf(logSumWN, 1) {
		return idx // unusable: degenerate weights or covariance spectrum
	}
	idx.tree = tree
	idx.lambdaMax = lambdaMax
	idx.logSumWN = logSumWN
	idx.usable = true
	return idx
}

// AvgLogLikelihoodBounds returns a sound interval [lo, hi] around
// AvgLogLikelihoodScratch(data) evaluated with only the topM nearest-mean
// components per record (see the file comment for the bound). ok reports
// whether the pruned evaluation applies: it is false — and the caller must
// use the exact path — when the index is degenerate, topM would not skip
// anything, or the data is empty. Records must be free of NaNs (the site
// filters incomplete records before scoring).
//
// The interval brackets the exact value up to floating-point roundoff of
// order machine epsilon times the magnitudes involved; callers must keep a
// guard slack of that order when acting on it.
func (m *Mixture) AvgLogLikelihoodBounds(data []linalg.Vector, topM int, s *BatchScratch) (lo, hi float64, ok bool) {
	idx := m.scoreIndex()
	if !idx.usable || topM <= 0 || idx.active <= topM || len(data) == 0 {
		return 0, 0, false
	}
	if s == nil {
		s = scratchPool.Get().(*BatchScratch)
		defer scratchPool.Put(s)
	}
	d := m.Dim()
	s.ensure(d, len(m.comps))
	if cap(s.nbrs) < topM {
		s.nbrs = make([]kdtree.Neighbor, 0, topM)
	}
	diff := linalg.Vector(s.panel[:d])
	half := linalg.Vector(s.panel[d : 2*d])
	var sumLo, sumHi float64
	for _, x := range data {
		nbrs := idx.tree.NearestKInto(x, topM, s.nbrs[:0])
		s.nbrs = nbrs
		dm := nbrs[len(nbrs)-1].DistSq
		loR := math.Inf(-1)
		for _, nb := range nbrs {
			j := nb.ID
			lp := m.logW[j] + m.comps[j].LogProbScratch(x, diff, half)
			loR = logAdd(loR, lp)
		}
		ubSkip := idx.logSumWN - 0.5*dm/idx.lambdaMax
		sumLo += loR
		sumHi += logAdd(loR, ubSkip)
	}
	n := float64(len(data))
	lo, hi = sumLo/n, sumHi/n
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return 0, 0, false
	}
	return lo, hi, true
}
