package gaussian

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"cludistream/internal/linalg"
)

// randSepMixture builds a K-component mixture of spherical-ish Gaussians
// with means spread by sep, plus random weights.
func randSepMixture(rng *rand.Rand, k, d int, sep float64) *Mixture {
	comps := make([]*Component, k)
	weights := make([]float64, k)
	for j := 0; j < k; j++ {
		mean := linalg.NewVector(d)
		for i := range mean {
			mean[i] = rng.NormFloat64() * sep
		}
		cov := linalg.NewSym(d)
		for i := 0; i < d; i++ {
			cov.Set(i, i, 0.5+rng.Float64())
			for l := 0; l < i; l++ {
				cov.Set(i, l, 0.1*rng.NormFloat64())
			}
		}
		c, err := NewComponent(mean, cov, 0)
		if err != nil {
			c = Spherical(mean, 1)
		}
		comps[j] = c
		weights[j] = 0.2 + rng.Float64()
	}
	return MustMixture(weights, comps)
}

// TestAvgLogLikelihoodBoundsSound pins the pruned kernel's contract: the
// interval [lo, hi] brackets the exact batched average log-likelihood (up
// to a roundoff-sized slack) across random mixtures, separations and topM.
func TestAvgLogLikelihoodBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewBatchScratch()
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(6)
		k := 3 + rng.Intn(30)
		sep := []float64{0.5, 2, 8, 30}[rng.Intn(4)]
		m := randSepMixture(rng, k, d, sep)
		data := m.SampleN(rng, 50+rng.Intn(200))
		topM := 1 + rng.Intn(6)
		lo, hi, ok := m.AvgLogLikelihoodBounds(data, topM, s)
		if !ok {
			if k > topM {
				t.Fatalf("trial %d: bounds unavailable for K=%d topM=%d", trial, k, topM)
			}
			continue
		}
		exact := m.AvgLogLikelihoodScratch(data, s)
		slack := 1e-9 * (1 + math.Abs(exact))
		if lo > exact+slack || hi < exact-slack {
			t.Fatalf("trial %d (K=%d d=%d sep=%v topM=%d): exact %v outside [%v, %v]",
				trial, k, d, sep, topM, exact, lo, hi)
		}
		if hi < lo {
			t.Fatalf("trial %d: hi %v < lo %v", trial, hi, lo)
		}
	}
}

// TestAvgLogLikelihoodBoundsTight: on well-separated clusters the skipped
// mass is negligible, so the interval must collapse to (near) the exact
// value — the regime where the site's pruned verdicts are decisive.
func TestAvgLogLikelihoodBoundsTight(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := randSepMixture(rng, 16, 4, 50)
	data := m.SampleN(rng, 256)
	s := NewBatchScratch()
	lo, hi, ok := m.AvgLogLikelihoodBounds(data, 4, s)
	if !ok {
		t.Fatal("bounds unavailable")
	}
	if width := hi - lo; width > 1e-6 {
		t.Fatalf("interval width %v on well-separated clusters, want ~0", width)
	}
	exact := m.AvgLogLikelihoodScratch(data, s)
	if math.Abs(lo-exact) > 1e-6 {
		t.Fatalf("lo %v vs exact %v", lo, exact)
	}
}

// TestBoundsRefusals: configurations where the pruned path must decline.
func TestBoundsRefusals(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randSepMixture(rng, 4, 2, 5)
	data := m.SampleN(rng, 32)
	s := NewBatchScratch()
	if _, _, ok := m.AvgLogLikelihoodBounds(data, 0, s); ok {
		t.Error("topM=0 accepted")
	}
	if _, _, ok := m.AvgLogLikelihoodBounds(data, 4, s); ok {
		t.Error("topM=K accepted (nothing to skip)")
	}
	if _, _, ok := m.AvgLogLikelihoodBounds(nil, 2, s); ok {
		t.Error("empty data accepted")
	}
	single := MustMixture([]float64{1}, []*Component{Spherical(linalg.Vector{0, 0}, 1)})
	if _, _, ok := single.AvgLogLikelihoodBounds(data, 1, s); ok {
		t.Error("K=1 accepted")
	}
}

// TestZeroWeightComponentsSkipped: zero-weight components carry no mass in
// the exact path and must not enter the index either.
func TestZeroWeightComponentsSkipped(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	base := randSepMixture(rng, 8, 3, 20)
	weights := base.Weights()
	weights[2], weights[5] = 0, 0
	m := MustMixture(weights, base.Components())
	data := m.SampleN(rng, 128)
	s := NewBatchScratch()
	lo, hi, ok := m.AvgLogLikelihoodBounds(data, 3, s)
	if !ok {
		t.Fatal("bounds unavailable")
	}
	exact := m.AvgLogLikelihoodScratch(data, s)
	slack := 1e-9 * (1 + math.Abs(exact))
	if lo > exact+slack || hi < exact-slack {
		t.Fatalf("exact %v outside [%v, %v] with zero-weight comps", exact, lo, hi)
	}
}

// TestAvgLogLikelihoodMultiMatchesPerModel pins the fused multi-model scan
// bit-identical to scoring each mixture separately.
func TestAvgLogLikelihoodMultiMatchesPerModel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var ms []*Mixture
	for i := 0; i < 5; i++ {
		ms = append(ms, randSepMixture(rng, 2+rng.Intn(12), 3, 6))
	}
	data := ms[0].SampleN(rng, 300)
	s := NewBatchScratch()
	got := make([]float64, len(ms))
	AvgLogLikelihoodMulti(ms, data, got, s)
	for i, m := range ms {
		want := m.AvgLogLikelihoodScratch(data, NewBatchScratch())
		if got[i] != want {
			t.Fatalf("model %d: fused %v != separate %v", i, got[i], want)
		}
	}
	// Empty data zeroes the destinations.
	AvgLogLikelihoodMulti(ms, nil, got, s)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("empty data: dst[%d] = %v", i, v)
		}
	}
}

// TestScoreIndexConcurrentBuild hammers the lazy index construction from
// many goroutines, each scoring with its own scratch: the sync.Once build
// must be race-free (run under -race by make race-score) and every
// goroutine must observe the same sound interval.
func TestScoreIndexConcurrentBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := randSepMixture(rng, 24, 4, 10)
	data := m.SampleN(rng, 200)
	exact := m.AvgLogLikelihood(data)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewBatchScratch()
			for iter := 0; iter < 20; iter++ {
				lo, hi, ok := m.AvgLogLikelihoodBounds(data, 4, s)
				if !ok {
					errs <- "bounds unavailable"
					return
				}
				slack := 1e-9 * (1 + math.Abs(exact))
				if lo > exact+slack || hi < exact-slack {
					errs <- "exact outside bounds"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestBoundsAllocFree: steady-state pruned scoring with a warmed scratch
// must not allocate (the site's zero-alloc ingest gate rides on this).
func TestBoundsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	m := randSepMixture(rng, 16, 4, 10)
	data := m.SampleN(rng, 64)
	s := NewBatchScratch()
	m.AvgLogLikelihoodBounds(data, 4, s) // warm the index and buffers
	allocs := testing.AllocsPerRun(50, func() {
		m.AvgLogLikelihoodBounds(data, 4, s)
	})
	if allocs != 0 {
		t.Fatalf("pruned scoring allocated %.1f times per chunk, want 0", allocs)
	}
}
