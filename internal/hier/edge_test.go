package hier

import (
	"math/rand"
	"testing"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

func testTreeSiteConfig() site.Config {
	return site.Config{Dim: 1, K: 2, Epsilon: 0.5, Delta: 0.01, Seed: 1, ChunkSize: 200}
}

func testTreeCoordConfig() coordinator.Config {
	return coordinator.Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}}
}

// TestSingleChildAggregatorChain: Branching 1 builds a relay chain — every
// aggregator has exactly one child — and updates must still flow edge by
// edge to the root with the upload-on-change rule applied at every hop.
func TestSingleChildAggregatorChain(t *testing.T) {
	tr := testTree(t, 1, 3)
	if got := len(tr.Leaves()); got != 1 {
		t.Fatalf("leaves = %d, want 1", got)
	}
	if got := tr.NumNodes(); got != 4 {
		t.Fatalf("nodes = %d, want root + 2 relays + leaf", got)
	}
	rng := rand.New(rand.NewSource(21))
	mix := regime(0)
	for rec := 0; rec < 200*2; rec++ {
		if err := tr.ObserveLeaf(0, mix.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	gm := tr.GlobalMixture()
	if gm == nil {
		t.Fatal("no root model after two chunks through the chain")
	}
	probe := []linalg.Vector{{-2}, {2}}
	if ll := gm.AvgLogLikelihood(probe); ll < -8 {
		t.Fatalf("chain root model misses the regime: LL=%v", ll)
	}
	// Every interior edge carried traffic (the chain has no silent hops
	// after a model change reaches it).
	for _, n := range tr.nodes {
		if n.parent != nil && n.BytesUploaded() == 0 {
			t.Fatalf("node %d uploaded nothing on a single-path chain", n.ID())
		}
	}
}

// TestEmptyMixtureChildren: only one subtree of a fan-out-2, depth-2 tree
// receives data. Aggregators over silent children must contribute nothing
// — and cause no errors — while the active subtree propagates normally.
func TestEmptyMixtureChildren(t *testing.T) {
	tr := testTree(t, 2, 2)
	rng := rand.New(rand.NewSource(22))
	mix := regime(0)
	for rec := 0; rec < 200*2; rec++ {
		if err := tr.ObserveLeaf(0, mix.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	gm := tr.GlobalMixture()
	if gm == nil {
		t.Fatal("no root model")
	}
	// The silent subtree's aggregator never uploaded.
	var silentAgg *Node
	for _, n := range tr.nodes {
		if !n.IsLeaf() && n.parent != nil && n.Coordinator().NumModels() == 0 {
			silentAgg = n
		}
	}
	if silentAgg == nil {
		t.Fatal("no empty aggregator found")
	}
	if silentAgg.BytesUploaded() != 0 {
		t.Fatalf("empty aggregator uploaded %d bytes", silentAgg.BytesUploaded())
	}
	// Root model reflects only the fed leaf: one pseudo-site, ~2 groups.
	if got := tr.Root().Coordinator().NumModels(); got != 1 {
		t.Fatalf("root models = %d, want 1 pseudo-model", got)
	}
	if gm.K() > 3 {
		t.Fatalf("root K = %d for a single bimodal regime", gm.K())
	}
	// A late joiner on the previously empty subtree must surface at the
	// root once its first chunk closes.
	last := len(tr.Leaves()) - 1
	far := regime(80)
	for rec := 0; rec < 200*2; rec++ {
		if err := tr.ObserveLeaf(last, far.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Root().Coordinator().NumModels(); got != 2 {
		t.Fatalf("root models after late join = %d, want 2", got)
	}
	if ll := tr.GlobalMixture().AvgLogLikelihood([]linalg.Vector{{78}, {82}}); ll < -8 {
		t.Fatalf("late joiner's regime missing from root: LL=%v", ll)
	}
}

// TestDeepCompositionMatchesShallow: the same leaf streams pushed through a
// depth-3 tree and a flat depth-1 star must land on equivalent root
// mixtures — Section 7's claim that layering is a composition, not an
// approximation. Exact-change detection keeps every hop faithful.
func TestDeepCompositionMatchesShallow(t *testing.T) {
	build := func(branching, depth int) *Tree {
		tr, err := NewTree(Config{
			Branching: branching, Depth: depth,
			Site:      testTreeSiteConfig(),
			Coord:     testTreeCoordConfig(),
			WeightTol: -1, MeanTol: -1, // exact replication at every hop
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	deep := build(2, 3)    // 8 leaves behind two aggregator layers
	shallow := build(8, 1) // the same 8 leaves directly under the root
	if len(deep.Leaves()) != 8 || len(shallow.Leaves()) != 8 {
		t.Fatalf("leaves = %d / %d", len(deep.Leaves()), len(shallow.Leaves()))
	}
	rng := rand.New(rand.NewSource(23))
	regimes := []*gaussian.Mixture{regime(0), regime(60), regime(-60), regime(120)}
	for rec := 0; rec < 200*2; rec++ {
		for li := 0; li < 8; li++ {
			x := regimes[li%len(regimes)].Sample(rng)
			if err := deep.ObserveLeaf(li, x); err != nil {
				t.Fatal(err)
			}
			if err := shallow.ObserveLeaf(li, x); err != nil {
				t.Fatal(err)
			}
		}
	}
	dm, sm := deep.GlobalMixture(), shallow.GlobalMixture()
	if dm == nil || sm == nil {
		t.Fatal("missing root mixture")
	}
	// Same record mass at both roots.
	if d, s := deep.Root().Coordinator().TotalWeight(), shallow.Root().Coordinator().TotalWeight(); d != s {
		t.Fatalf("root mass %v (deep) vs %v (flat)", d, s)
	}
	// Every regime mode is equally well represented by both roots.
	for _, mean := range []float64{0, 60, -60, 120} {
		probe := []linalg.Vector{{mean - 2}, {mean + 2}}
		dLL, sLL := dm.AvgLogLikelihood(probe), sm.AvgLogLikelihood(probe)
		if dLL < -8 || sLL < -8 {
			t.Fatalf("regime %v: deep LL=%v flat LL=%v", mean, dLL, sLL)
		}
		if diff := dLL - sLL; diff > 0.5 || diff < -0.5 {
			t.Fatalf("regime %v: deep/flat likelihood diverged: %v vs %v", mean, dLL, sLL)
		}
	}
}
