// Package hier implements the multi-layer network extension of Section 7:
// a tree-structured hierarchy where every leaf runs CluDistream remote-site
// processing on its own stream, every internal node runs a coordinator over
// its children, and an internal node uploads its locally-observed global
// mixture to its parent only when that mixture changes — the event-driven
// propagation rule that keeps upper links quiet while lower levels churn.
package hier

import (
	"fmt"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/transport"
)

// Node is one vertex of the tree. Leaves carry a Site; internal nodes carry
// a Coordinator.
type Node struct {
	id       int
	parent   *Node
	children []*Node

	st    *site.Site
	coord *coordinator.Coordinator

	// mirror holds the upload-on-change state: internal nodes present
	// themselves to their parent as a single pseudo-site whose model is
	// replaced whenever the local global mixture changes materially.
	mirror *UploadMirror

	bytesUp int // bytes sent to parent
}

// ID returns the node's identifier (unique within the tree).
func (n *Node) ID() int { return n.id }

// IsLeaf reports whether the node processes a raw stream.
func (n *Node) IsLeaf() bool { return n.st != nil }

// Site returns the leaf's site processor (nil for internal nodes).
func (n *Node) Site() *site.Site { return n.st }

// Coordinator returns the internal node's coordinator (nil for leaves).
func (n *Node) Coordinator() *coordinator.Coordinator { return n.coord }

// BytesUploaded returns the bytes this node has sent to its parent.
func (n *Node) BytesUploaded() int { return n.bytesUp }

// Tree is a balanced tree of CluDistream nodes.
type Tree struct {
	root      *Node
	leaves    []*Node
	nodes     []*Node
	weightTol float64
	meanTol   float64
}

// Config parameterizes NewTree.
type Config struct {
	// Branching is the fan-out of internal nodes (≥ 1). Branching 1 models
	// a chain of single-child aggregators — a degenerate but legal Section-7
	// deployment (e.g. a relay tier in front of a WAN uplink).
	Branching int
	// Depth is the number of edges from root to leaf (≥ 1). A tree of
	// depth 1 is the flat star topology of the base paper.
	Depth int
	// Site configures every leaf (SiteID is assigned per leaf).
	Site site.Config
	// Coord configures every internal node's coordinator.
	Coord coordinator.Config
	// WeightTol and MeanTol define when an internal node's merged model
	// has changed *materially* enough to re-upload (see
	// gaussian.Mixture.ApproxEqual). Defaults 0.05 and 0.25; zero values
	// take the defaults, negative values force exact-change detection.
	WeightTol, MeanTol float64
}

// NewTree builds a balanced tree with Branching^Depth leaves.
func NewTree(cfg Config) (*Tree, error) {
	if cfg.Branching < 1 {
		return nil, fmt.Errorf("hier: branching %d", cfg.Branching)
	}
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("hier: depth %d", cfg.Depth)
	}
	t := &Tree{weightTol: cfg.WeightTol, meanTol: cfg.MeanTol}
	exact := t.weightTol < 0 || t.meanTol < 0
	if t.weightTol == 0 {
		t.weightTol = 0.05
	}
	if t.meanTol == 0 {
		t.meanTol = 0.25
	}
	if t.weightTol < 0 {
		t.weightTol = 0
	}
	if t.meanTol < 0 {
		t.meanTol = 0
	}
	nextID := 1
	var build func(depth int, parent *Node) (*Node, error)
	build = func(depth int, parent *Node) (*Node, error) {
		n := &Node{id: nextID, parent: parent}
		nextID++
		t.nodes = append(t.nodes, n)
		if depth == cfg.Depth {
			sc := cfg.Site
			sc.SiteID = n.id
			st, err := site.New(sc)
			if err != nil {
				return nil, err
			}
			n.st = st
			t.leaves = append(t.leaves, n)
			return n, nil
		}
		coord, err := coordinator.New(cfg.Coord)
		if err != nil {
			return nil, err
		}
		n.coord = coord
		n.mirror = &UploadMirror{
			NodeID:    n.id,
			WeightTol: t.weightTol,
			MeanTol:   t.meanTol,
			Exact:     exact,
		}
		for i := 0; i < cfg.Branching; i++ {
			child, err := build(depth+1, n)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, child)
		}
		return n, nil
	}
	root, err := build(0, nil)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Leaves returns the leaf nodes in construction order.
func (t *Tree) Leaves() []*Node { return append([]*Node(nil), t.leaves...) }

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// ObserveLeaf feeds one record to leaf index i and propagates any resulting
// model updates up the tree.
func (t *Tree) ObserveLeaf(i int, x linalg.Vector) error {
	if i < 0 || i >= len(t.leaves) {
		return fmt.Errorf("hier: leaf index %d of %d", i, len(t.leaves))
	}
	leaf := t.leaves[i]
	ups, err := leaf.st.Observe(x)
	if err != nil {
		return err
	}
	if len(ups) == 0 {
		return nil
	}
	parent := leaf.parent
	for _, u := range ups {
		leaf.bytesUp += transport.FromSiteUpdate(u).WireSize()
		if err := parent.coord.HandleUpdate(u); err != nil {
			return err
		}
	}
	return t.propagate(parent)
}

// propagate walks from an updated internal node to the root, re-uploading
// each node's global mixture when it changed (via the node's UploadMirror —
// the same rule cmd/aggd runs over real links).
func (t *Tree) propagate(n *Node) error {
	for ; n != nil && n.parent != nil; n = n.parent {
		msgs := n.mirror.Sync(n.coord.GlobalMixture(), n.coord.TotalWeight())
		if len(msgs) == 0 {
			return nil // no material change: the upper links stay silent
		}
		for _, m := range msgs {
			n.bytesUp += m.WireSize()
			if m.Kind == transport.MsgDeletion {
				if err := n.parent.coord.HandleDeletion(int(m.SiteID), int(m.ModelID), int(m.Count)); err != nil {
					return err
				}
				continue
			}
			if err := n.parent.coord.HandleUpdate(m.ToSiteUpdate()); err != nil {
				return err
			}
		}
	}
	return nil
}

// GlobalMixture returns the root coordinator's merged model over the union
// of all leaf streams.
func (t *Tree) GlobalMixture() *gaussian.Mixture {
	return t.root.coord.GlobalMixture()
}

// TotalUploadBytes sums bytes sent on every edge of the tree.
func (t *Tree) TotalUploadBytes() int {
	var total int
	for _, n := range t.nodes {
		total += n.bytesUp
	}
	return total
}
