package hier

import (
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

func testTree(t *testing.T, branching, depth int) *Tree {
	t.Helper()
	tr, err := NewTree(Config{
		Branching: branching,
		Depth:     depth,
		Site: site.Config{
			Dim: 1, K: 2, Epsilon: 0.5, Delta: 0.01, Seed: 1, ChunkSize: 200,
		},
		Coord: coordinator.Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func regime(mean float64) *gaussian.Mixture {
	return gaussian.MustMixture(
		[]float64{0.5, 0.5},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{mean - 2}, 0.5),
			gaussian.Spherical(linalg.Vector{mean + 2}, 0.5),
		})
}

func TestTreeShape(t *testing.T) {
	tr := testTree(t, 2, 2)
	if got := len(tr.Leaves()); got != 4 {
		t.Fatalf("leaves = %d, want 4", got)
	}
	if got := tr.NumNodes(); got != 7 {
		t.Fatalf("nodes = %d, want 7", got)
	}
	if tr.Root().IsLeaf() {
		t.Fatal("root is a leaf")
	}
	for _, l := range tr.Leaves() {
		if !l.IsLeaf() || l.Site() == nil {
			t.Fatal("leaf without a site")
		}
	}
	if tr.Root().Coordinator() == nil {
		t.Fatal("root without coordinator")
	}
}

func TestTreeValidation(t *testing.T) {
	if _, err := NewTree(Config{Branching: 0, Depth: 1}); err == nil {
		t.Error("branching 0 accepted")
	}
	if _, err := NewTree(Config{Branching: 2, Depth: 0}); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := NewTree(Config{Branching: 2, Depth: 1}); err == nil {
		t.Error("invalid site config accepted")
	}
}

func TestLeafUpdatesReachRoot(t *testing.T) {
	tr := testTree(t, 2, 2)
	rng := rand.New(rand.NewSource(10))
	mixes := []*gaussian.Mixture{regime(0), regime(40), regime(-40), regime(80)}
	for rec := 0; rec < 200*3; rec++ {
		for li := range tr.Leaves() {
			if err := tr.ObserveLeaf(li, mixes[li].Sample(rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	gm := tr.GlobalMixture()
	if gm == nil {
		t.Fatal("no global mixture at root")
	}
	// Every leaf's regime should be represented: evaluate likelihood at
	// each regime's modes.
	for i, mean := range []float64{0, 40, -40, 80} {
		probe := []linalg.Vector{{mean - 2}, {mean + 2}}
		if ll := gm.AvgLogLikelihood(probe); ll < -8 {
			t.Fatalf("leaf %d regime (mean %v) missing from root model: LL=%v", i, mean, ll)
		}
	}
}

func TestStableStreamSilencesUpperLinks(t *testing.T) {
	tr := testTree(t, 2, 2)
	rng := rand.New(rand.NewSource(11))
	mix := regime(0)
	observe := func(n int) {
		for rec := 0; rec < n; rec++ {
			for li := range tr.Leaves() {
				if err := tr.ObserveLeaf(li, mix.Sample(rng)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	observe(200 * 2)
	bytesAfterLearn := tr.TotalUploadBytes()
	observe(200 * 6)
	bytesLater := tr.TotalUploadBytes()
	if bytesAfterLearn == 0 {
		t.Fatal("no upload traffic at all")
	}
	if bytesLater != bytesAfterLearn {
		t.Fatalf("stable stream still uploading: %d -> %d bytes", bytesAfterLearn, bytesLater)
	}
}

func TestObserveLeafBounds(t *testing.T) {
	tr := testTree(t, 2, 1)
	if err := tr.ObserveLeaf(-1, linalg.Vector{0}); err == nil {
		t.Error("negative leaf index accepted")
	}
	if err := tr.ObserveLeaf(99, linalg.Vector{0}); err == nil {
		t.Error("out-of-range leaf index accepted")
	}
}

func TestDepth1MatchesStarTopology(t *testing.T) {
	// Depth 1 = sites directly under one coordinator (the base paper).
	tr := testTree(t, 3, 1)
	if tr.NumNodes() != 4 || len(tr.Leaves()) != 3 {
		t.Fatalf("nodes=%d leaves=%d", tr.NumNodes(), len(tr.Leaves()))
	}
	rng := rand.New(rand.NewSource(12))
	for rec := 0; rec < 200*2; rec++ {
		for li := range tr.Leaves() {
			if err := tr.ObserveLeaf(li, regime(0).Sample(rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	gm := tr.GlobalMixture()
	if gm == nil {
		t.Fatal("no root model")
	}
	// All three sites saw the same regime: the root should have merged
	// their components into ~2 groups, not 6.
	if gm.K() > 3 {
		t.Fatalf("root mixture K = %d, merging failed", gm.K())
	}
	mu0 := math.Abs(gm.Component(0).Mean()[0])
	if mu0 > 4 {
		t.Fatalf("root component mean = %v", mu0)
	}
}

func TestSignatureDetectsChange(t *testing.T) {
	a := regime(0)
	b := regime(1)
	if a.Signature() == b.Signature() {
		t.Fatal("different mixtures share a signature")
	}
	if a.Signature() != regime(0).Signature() {
		t.Fatal("identical mixtures have different signatures")
	}
}
