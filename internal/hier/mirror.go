package hier

import (
	"math"

	"cludistream/internal/gaussian"
	"cludistream/internal/transport"
)

// UploadMirror is the merge-and-upload-on-change rule every internal node of
// a Section-7 multi-layer network runs toward its parent, extracted from
// cmd/aggd so it can be unit-tested and shared: the node presents itself to
// the parent as a single pseudo-site whose one model is replaced — stale
// deletion followed by a fresh NewModel — whenever the locally merged global
// mixture changes, and transmits nothing while the mixture is stable. Sync
// returns the wire messages to transmit; the caller owns the transport
// (netio connection, netsim courier, or an in-process coordinator call).
type UploadMirror struct {
	// NodeID is the pseudo-site id the parent sees on every message.
	NodeID int

	// WeightTol and MeanTol define a "material" mixture change (see
	// gaussian.Mixture.ApproxEqual); drift inside the tolerance does not
	// re-upload. Exact forces bit-level change detection over weights,
	// means and covariances regardless of the tolerances — ApproxEqual
	// ignores covariances, so exact replication (as DST requires) cannot
	// be expressed as a zero tolerance.
	WeightTol, MeanTol float64
	Exact              bool

	lastModelID int
	lastCount   int
	lastMix     *gaussian.Mixture
}

// NewUploadMirror returns a mirror for pseudo-site nodeID with the aggd
// default tolerances (0.05, 0.25).
func NewUploadMirror(nodeID int) *UploadMirror {
	return &UploadMirror{NodeID: nodeID, WeightTol: 0.05, MeanTol: 0.25}
}

// Sync compares mix (with total record weight) against the last uploaded
// mixture and returns the messages that bring the parent up to date: nothing
// when the mixture is unchanged, a single NewModel on first upload, or a
// deletion of the stale pseudo-model followed by the fresh NewModel. A nil
// mix is a no-op. The mirror's state advances as soon as the messages are
// returned; a caller whose transport fails must call Invalidate to force a
// re-send on the next Sync.
func (u *UploadMirror) Sync(mix *gaussian.Mixture, totalWeight float64) []transport.Message {
	if mix == nil {
		return nil
	}
	if u.lastMix != nil && u.unchanged(mix) {
		return nil // stable mixture: the upper link stays silent
	}
	var out []transport.Message
	if u.lastModelID > 0 {
		out = append(out, transport.Message{
			Kind:    transport.MsgDeletion,
			SiteID:  int32(u.NodeID),
			ModelID: int32(u.lastModelID),
			Count:   int64(u.lastCount),
		})
	}
	u.lastModelID++
	count := int(math.Round(totalWeight))
	if count < 1 {
		count = 1
	}
	out = append(out, transport.Message{
		Kind:    transport.MsgNewModel,
		SiteID:  int32(u.NodeID),
		ModelID: int32(u.lastModelID),
		Count:   int64(count),
		Mixture: mix,
	})
	u.lastCount = count
	u.lastMix = mix
	return out
}

// Reset forgets all upload state. Use after an epoch bump: the parent has
// discarded (or will discard, on the first new-epoch message) every model of
// this pseudo-site, so no deletion is owed and model ids restart from 1.
func (u *UploadMirror) Reset() {
	u.lastModelID = 0
	u.lastCount = 0
	u.lastMix = nil
}

// Invalidate forces the next Sync to re-send even if the mixture has not
// changed, without forgetting the pseudo-model the parent may still hold.
func (u *UploadMirror) Invalidate() { u.lastMix = nil }

// LastModelID returns the id of the most recently uploaded pseudo-model
// (0 when nothing has been uploaded this epoch).
func (u *UploadMirror) LastModelID() int { return u.lastModelID }

// LastCount returns the record count of the most recent upload.
func (u *UploadMirror) LastCount() int { return u.lastCount }

func (u *UploadMirror) unchanged(mix *gaussian.Mixture) bool {
	if u.Exact {
		return mixEqualBits(mix, u.lastMix)
	}
	return mix.ApproxEqual(u.lastMix, u.WeightTol, u.MeanTol)
}

// mixEqualBits reports bit-level equality of weights, means and covariances.
func mixEqualBits(a, b *gaussian.Mixture) bool {
	if a.K() != b.K() {
		return false
	}
	if a.K() == 0 {
		return true
	}
	d := a.Dim()
	if d != b.Dim() {
		return false
	}
	for j := 0; j < a.K(); j++ {
		if a.Weight(j) != b.Weight(j) {
			return false
		}
		ca, cb := a.Component(j), b.Component(j)
		ma, mb := ca.Mean(), cb.Mean()
		for i := 0; i < d; i++ {
			if ma[i] != mb[i] {
				return false
			}
		}
		va, vb := ca.Cov(), cb.Cov()
		for r := 0; r < d; r++ {
			for c := r; c < d; c++ {
				if va.At(r, c) != vb.At(r, c) {
					return false
				}
			}
		}
	}
	return true
}
