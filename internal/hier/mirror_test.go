package hier

import (
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/transport"
)

func mirrorMix(mean, variance float64) *gaussian.Mixture {
	return gaussian.MustMixture(
		[]float64{0.5, 0.5},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{mean - 2}, variance),
			gaussian.Spherical(linalg.Vector{mean + 2}, variance),
		})
}

func TestMirrorFirstUploadIsSingleNewModel(t *testing.T) {
	m := NewUploadMirror(42)
	msgs := m.Sync(mirrorMix(0, 0.5), 199.6)
	if len(msgs) != 1 {
		t.Fatalf("first sync sent %d messages, want 1", len(msgs))
	}
	got := msgs[0]
	if got.Kind != transport.MsgNewModel || got.SiteID != 42 || got.ModelID != 1 {
		t.Fatalf("first upload = %+v", got)
	}
	if got.Count != 200 {
		t.Fatalf("count = %d, want round(199.6) = 200", got.Count)
	}
	if got.Mixture == nil {
		t.Fatal("upload without mixture payload")
	}
	if m.LastModelID() != 1 || m.LastCount() != 200 {
		t.Fatalf("mirror state = (%d, %d)", m.LastModelID(), m.LastCount())
	}
}

func TestMirrorUploadsOnlyOnChange(t *testing.T) {
	m := NewUploadMirror(1)
	mix := mirrorMix(0, 0.5)
	if got := m.Sync(mix, 100); len(got) != 1 {
		t.Fatalf("first sync sent %d messages", len(got))
	}
	// Identical mixture: silent.
	if got := m.Sync(mirrorMix(0, 0.5), 100); len(got) != 0 {
		t.Fatalf("unchanged mixture re-uploaded: %d messages", len(got))
	}
	// Drift inside the tolerance: still silent.
	if got := m.Sync(mirrorMix(0.05, 0.5), 100); len(got) != 0 {
		t.Fatalf("in-tolerance drift re-uploaded: %d messages", len(got))
	}
	// Material change: deletion of the stale pseudo-model, then the
	// replacement.
	msgs := m.Sync(mirrorMix(40, 0.5), 150)
	if len(msgs) != 2 {
		t.Fatalf("material change sent %d messages, want deletion+new", len(msgs))
	}
	del, nm := msgs[0], msgs[1]
	if del.Kind != transport.MsgDeletion || del.ModelID != 1 || del.Count != 100 {
		t.Fatalf("stale deletion = %+v", del)
	}
	if nm.Kind != transport.MsgNewModel || nm.ModelID != 2 || nm.Count != 150 {
		t.Fatalf("replacement = %+v", nm)
	}
}

func TestMirrorExactDetectsCovarianceOnlyChange(t *testing.T) {
	// ApproxEqual ignores covariances, so tolerance mode treats a
	// variance-only change as "unchanged"; Exact must not.
	tol := NewUploadMirror(1)
	tol.Sync(mirrorMix(0, 0.5), 100)
	if got := tol.Sync(mirrorMix(0, 0.9), 100); len(got) != 0 {
		t.Fatalf("tolerance mode re-uploaded on covariance change: %d messages", len(got))
	}

	ex := NewUploadMirror(1)
	ex.Exact = true
	ex.Sync(mirrorMix(0, 0.5), 100)
	if got := ex.Sync(mirrorMix(0, 0.9), 100); len(got) != 2 {
		t.Fatalf("exact mode missed covariance change: %d messages", len(got))
	}
	// And exact mode is silent on a bit-identical mixture.
	if got := ex.Sync(mirrorMix(0, 0.9), 100); len(got) != 0 {
		t.Fatalf("exact mode re-uploaded identical mixture: %d messages", len(got))
	}
}

func TestMirrorNilMixtureIsNoop(t *testing.T) {
	m := NewUploadMirror(1)
	if got := m.Sync(nil, 100); got != nil {
		t.Fatalf("nil mixture produced %d messages", len(got))
	}
	m.Sync(mirrorMix(0, 0.5), 100)
	// A transiently empty coordinator must not disturb the upload state.
	if got := m.Sync(nil, 0); got != nil {
		t.Fatalf("nil mixture after upload produced %d messages", len(got))
	}
	if m.LastModelID() != 1 {
		t.Fatalf("nil sync disturbed state: lastModelID = %d", m.LastModelID())
	}
}

func TestMirrorMinimumCountIsOne(t *testing.T) {
	m := NewUploadMirror(1)
	msgs := m.Sync(mirrorMix(0, 0.5), 0.2)
	if len(msgs) != 1 || msgs[0].Count != 1 {
		t.Fatalf("tiny weight upload = %+v", msgs)
	}
}

func TestMirrorResetRestartsEpochState(t *testing.T) {
	m := NewUploadMirror(7)
	m.Sync(mirrorMix(0, 0.5), 100)
	m.Sync(mirrorMix(40, 0.5), 100)
	if m.LastModelID() != 2 {
		t.Fatalf("lastModelID = %d", m.LastModelID())
	}
	// Epoch bump: the parent forgot this pseudo-site, so no deletion is
	// owed and ids restart from 1.
	m.Reset()
	msgs := m.Sync(mirrorMix(40, 0.5), 100)
	if len(msgs) != 1 {
		t.Fatalf("post-reset sync sent %d messages, want a bare NewModel", len(msgs))
	}
	if msgs[0].Kind != transport.MsgNewModel || msgs[0].ModelID != 1 {
		t.Fatalf("post-reset upload = %+v", msgs[0])
	}
}

func TestMirrorInvalidateForcesResend(t *testing.T) {
	m := NewUploadMirror(7)
	m.Sync(mirrorMix(0, 0.5), 100)
	if got := m.Sync(mirrorMix(0, 0.5), 100); len(got) != 0 {
		t.Fatal("sanity: unchanged mixture should be silent")
	}
	// After a transport failure the caller invalidates; the same mixture
	// must go out again, still replacing the (possibly delivered) old id.
	m.Invalidate()
	msgs := m.Sync(mirrorMix(0, 0.5), 100)
	if len(msgs) != 2 {
		t.Fatalf("post-invalidate sync sent %d messages, want deletion+new", len(msgs))
	}
	if msgs[0].ModelID != 1 || msgs[1].ModelID != 2 {
		t.Fatalf("post-invalidate ids = %d, %d", msgs[0].ModelID, msgs[1].ModelID)
	}
}
