// Package kdtree is a k-d tree over identified points, built for the
// paper's stated future work: "constructing index structure to accelerate
// merge and split based on the mixture models". The coordinator indexes
// its group representatives' means so that placing a component consults
// only the few nearest groups instead of scanning all of them.
//
// Deletions are tombstoned and the tree rebuilds itself once tombstones
// outnumber live points, which keeps Remove O(1) amortized and the tree
// balanced enough under the coordinator's churn.
package kdtree

import (
	"fmt"
	"sort"

	"cludistream/internal/linalg"
)

// Tree is a k-d tree mapping integer ids to points.
type Tree struct {
	dim  int
	root *node
	byID map[int]*node
	dead int
}

type node struct {
	id          int
	pt          linalg.Vector
	axis        int
	dead        bool
	left, right *node
}

// New returns an empty tree for points of the given dimension.
func New(dim int) *Tree {
	if dim < 1 {
		panic(fmt.Sprintf("kdtree: dim %d", dim))
	}
	return &Tree{dim: dim, byID: make(map[int]*node)}
}

// Len returns the number of live points.
func (t *Tree) Len() int { return len(t.byID) }

// Insert adds a point under id. Inserting an existing id replaces its
// point (remove + insert).
func (t *Tree) Insert(id int, pt linalg.Vector) {
	if len(pt) != t.dim {
		panic(fmt.Sprintf("kdtree: point dim %d, want %d", len(pt), t.dim))
	}
	if _, ok := t.byID[id]; ok {
		t.Remove(id)
	}
	n := &node{id: id, pt: pt.Clone()}
	t.byID[id] = n
	if t.root == nil {
		n.axis = 0
		t.root = n
		return
	}
	cur := t.root
	for {
		next := &cur.left
		if n.pt[cur.axis] >= cur.pt[cur.axis] {
			next = &cur.right
		}
		if *next == nil {
			n.axis = (cur.axis + 1) % t.dim
			*next = n
			return
		}
		cur = *next
	}
}

// Remove tombstones id; it is a no-op for unknown ids. The tree rebuilds
// once tombstones outnumber live points.
func (t *Tree) Remove(id int) {
	n, ok := t.byID[id]
	if !ok {
		return
	}
	n.dead = true
	delete(t.byID, id)
	t.dead++
	if t.dead > len(t.byID) {
		t.rebuild()
	}
}

// rebuild reconstructs a balanced tree from the live points.
func (t *Tree) rebuild() {
	type entry struct {
		id int
		pt linalg.Vector
	}
	entries := make([]entry, 0, len(t.byID))
	for id, n := range t.byID {
		entries = append(entries, entry{id: id, pt: n.pt})
	}
	// Deterministic construction order.
	sort.Slice(entries, func(a, b int) bool { return entries[a].id < entries[b].id })
	t.root = nil
	t.byID = make(map[int]*node, len(entries))
	t.dead = 0

	var build func(es []entry, axis int) *node
	build = func(es []entry, axis int) *node {
		if len(es) == 0 {
			return nil
		}
		sort.SliceStable(es, func(a, b int) bool { return es[a].pt[axis] < es[b].pt[axis] })
		mid := len(es) / 2
		n := &node{id: es[mid].id, pt: es[mid].pt, axis: axis}
		t.byID[n.id] = n
		n.left = build(es[:mid], (axis+1)%t.dim)
		n.right = build(es[mid+1:], (axis+1)%t.dim)
		return n
	}
	t.root = build(entries, 0)
}

// Neighbor is one NearestK result.
type Neighbor struct {
	ID     int
	DistSq float64
}

// NearestK returns up to k live points nearest to q in Euclidean distance,
// closest first. It allocates the result slice; hot loops should use
// NearestKInto with a reused buffer instead.
func (t *Tree) NearestK(q linalg.Vector, k int) []Neighbor {
	return t.NearestKInto(q, k, nil)
}

// NearestKInto is NearestK writing into dst, which is grown as needed and
// returned re-sliced. A dst with capacity >= min(k, Len()) makes the query
// allocation-free: the heap uses dst as its backing storage and the final
// ascending sort happens in place.
func (t *Tree) NearestKInto(q linalg.Vector, k int, dst []Neighbor) []Neighbor {
	if len(q) != t.dim {
		panic(fmt.Sprintf("kdtree: query dim %d, want %d", len(q), t.dim))
	}
	if k <= 0 || t.root == nil {
		return dst[:0]
	}
	if k > len(t.byID) {
		k = len(t.byID)
	}
	best := resultHeap{items: dst[:0]}
	t.search(t.root, q, k, &best)
	// Heap holds the k best with the worst on top; sort ascending with an
	// insertion sort — k is small and sort.Slice would allocate its
	// reflect.Swapper, breaking the allocation-free contract.
	out := best.items
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DistSq < out[j-1].DistSq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (t *Tree) search(n *node, q linalg.Vector, k int, best *resultHeap) {
	if n == nil {
		return
	}
	if !n.dead {
		d := q.DistSq(n.pt)
		if len(best.items) < k {
			best.push(Neighbor{ID: n.id, DistSq: d})
		} else if d < best.worst() {
			best.popWorst()
			best.push(Neighbor{ID: n.id, DistSq: d})
		}
	}
	diff := q[n.axis] - n.pt[n.axis]
	near, far := n.left, n.right
	if diff >= 0 {
		near, far = n.right, n.left
	}
	t.search(near, q, k, best)
	// Prune the far side when the splitting plane is beyond the current
	// k-th best distance.
	if len(best.items) < k || diff*diff < best.worst() {
		t.search(far, q, k, best)
	}
}

// resultHeap is a small max-heap on DistSq (worst candidate on top).
type resultHeap struct {
	items []Neighbor
}

func (h *resultHeap) worst() float64 { return h.items[0].DistSq }

func (h *resultHeap) push(n Neighbor) {
	h.items = append(h.items, n)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].DistSq >= h.items[i].DistSq {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *resultHeap) popWorst() {
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.items) && h.items[l].DistSq > h.items[largest].DistSq {
			largest = l
		}
		if r < len(h.items) && h.items[r].DistSq > h.items[largest].DistSq {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}
