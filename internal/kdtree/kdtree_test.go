package kdtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cludistream/internal/linalg"
)

func randPt(rng *rand.Rand, d int) linalg.Vector {
	v := linalg.NewVector(d)
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return v
}

// bruteNearestK is the reference implementation.
func bruteNearestK(pts map[int]linalg.Vector, q linalg.Vector, k int) []Neighbor {
	out := make([]Neighbor, 0, len(pts))
	for id, p := range pts {
		out = append(out, Neighbor{ID: id, DistSq: q.DistSq(p)})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].DistSq != out[b].DistSq {
			return out[a].DistSq < out[b].DistSq
		}
		return out[a].ID < out[b].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		d := rng.Intn(5) + 1
		n := rng.Intn(200) + 1
		tree := New(d)
		pts := map[int]linalg.Vector{}
		for id := 0; id < n; id++ {
			p := randPt(rng, d)
			tree.Insert(id, p)
			pts[id] = p
		}
		for query := 0; query < 10; query++ {
			q := randPt(rng, d)
			k := rng.Intn(8) + 1
			got := tree.NearestK(q, k)
			want := bruteNearestK(pts, q, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
			}
			for i := range got {
				// Distances must agree (ids may differ under exact ties).
				if got[i].DistSq != want[i].DistSq {
					t.Fatalf("trial %d: dist[%d] = %v, want %v", trial, i, got[i].DistSq, want[i].DistSq)
				}
			}
		}
	}
}

func TestRemoveAndRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree := New(2)
	pts := map[int]linalg.Vector{}
	for id := 0; id < 100; id++ {
		p := randPt(rng, 2)
		tree.Insert(id, p)
		pts[id] = p
	}
	// Remove most points — forces at least one rebuild.
	for id := 0; id < 80; id++ {
		tree.Remove(id)
		delete(pts, id)
	}
	if tree.Len() != 20 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for query := 0; query < 10; query++ {
		q := randPt(rng, 2)
		got := tree.NearestK(q, 5)
		want := bruteNearestK(pts, q, 5)
		for i := range want {
			if got[i].DistSq != want[i].DistSq {
				t.Fatalf("after removal: dist[%d] = %v, want %v", i, got[i].DistSq, want[i].DistSq)
			}
		}
		// Removed ids must never appear.
		for _, nb := range got {
			if nb.ID < 80 {
				t.Fatalf("tombstoned id %d returned", nb.ID)
			}
		}
	}
}

func TestInsertReplacesExistingID(t *testing.T) {
	tree := New(1)
	tree.Insert(7, linalg.Vector{0})
	tree.Insert(7, linalg.Vector{100})
	if tree.Len() != 1 {
		t.Fatalf("Len = %d", tree.Len())
	}
	got := tree.NearestK(linalg.Vector{100}, 1)
	if len(got) != 1 || got[0].ID != 7 || got[0].DistSq != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestRemoveUnknownIsNoop(t *testing.T) {
	tree := New(2)
	tree.Remove(42)
	tree.Insert(1, linalg.Vector{0, 0})
	tree.Remove(42)
	if tree.Len() != 1 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

func TestEdgeCases(t *testing.T) {
	tree := New(2)
	if got := tree.NearestK(linalg.Vector{0, 0}, 3); got != nil {
		t.Fatalf("empty tree returned %v", got)
	}
	tree.Insert(1, linalg.Vector{1, 1})
	if got := tree.NearestK(linalg.Vector{0, 0}, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	// k larger than live points.
	got := tree.NearestK(linalg.Vector{0, 0}, 10)
	if len(got) != 1 {
		t.Fatalf("k>n returned %d", len(got))
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0) },
		func() { New(2).Insert(1, linalg.Vector{1}) },
		func() { New(2).NearestK(linalg.Vector{1}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	// Many points at the same location: all must be retrievable.
	tree := New(2)
	for id := 0; id < 10; id++ {
		tree.Insert(id, linalg.Vector{5, 5})
	}
	got := tree.NearestK(linalg.Vector{5, 5}, 10)
	if len(got) != 10 {
		t.Fatalf("got %d of 10 duplicate points", len(got))
	}
	seen := map[int]bool{}
	for _, nb := range got {
		if nb.DistSq != 0 || seen[nb.ID] {
			t.Fatalf("bad neighbor %v", nb)
		}
		seen[nb.ID] = true
	}
}

// Property: after an arbitrary interleaving of inserts and removes, the
// nearest neighbour always matches brute force.
func TestQuickInterleavedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(opsRaw []uint16) bool {
		tree := New(3)
		pts := map[int]linalg.Vector{}
		nextID := 0
		for _, op := range opsRaw {
			if op%3 == 0 && len(pts) > 0 {
				// Remove a pseudo-random live id.
				for id := range pts {
					tree.Remove(id)
					delete(pts, id)
					break
				}
			} else {
				p := randPt(rng, 3)
				tree.Insert(nextID, p)
				pts[nextID] = p
				nextID++
			}
		}
		if tree.Len() != len(pts) {
			return false
		}
		if len(pts) == 0 {
			return tree.NearestK(linalg.Vector{0, 0, 0}, 1) == nil
		}
		q := randPt(rng, 3)
		got := tree.NearestK(q, 1)
		want := bruteNearestK(pts, q, 1)
		return len(got) == 1 && got[0].DistSq == want[0].DistSq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNearestKIntoMatchesNearestK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tree := New(3)
	pts := map[int]linalg.Vector{}
	for id := 0; id < 300; id++ {
		p := randPt(rng, 3)
		tree.Insert(id, p)
		pts[id] = p
	}
	buf := make([]Neighbor, 0, 8)
	for query := 0; query < 50; query++ {
		q := randPt(rng, 3)
		k := rng.Intn(8) + 1
		want := tree.NearestK(q, k)
		got := tree.NearestKInto(q, k, buf)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", query, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: result[%d] = %+v, want %+v", query, i, got[i], want[i])
			}
		}
		buf = got // reuse across queries, like the scoring loop does
	}
}

func TestNearestKIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tree := New(4)
	for id := 0; id < 256; id++ {
		tree.Insert(id, randPt(rng, 4))
	}
	q := randPt(rng, 4)
	buf := make([]Neighbor, 0, 8)
	allocs := testing.AllocsPerRun(200, func() {
		buf = tree.NearestKInto(q, 8, buf)
	})
	if allocs != 0 {
		t.Fatalf("NearestKInto allocated %.1f times per query, want 0", allocs)
	}
}

// TestRemoveRebuildAmortized pins the tombstone amortization contract:
// after every Remove, tombstones never outnumber live points (the rebuild
// trigger fired whenever they would), and queries through a heavily
// churned tree stay exact. The churn removes and re-inserts every point
// several times, so the test fails if rebuilds stop firing or a rebuild
// loses points.
func TestRemoveRebuildAmortized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree := New(2)
	pts := map[int]linalg.Vector{}
	const n = 64
	for id := 0; id < n; id++ {
		p := randPt(rng, 2)
		tree.Insert(id, p)
		pts[id] = p
	}
	for round := 0; round < 5; round++ {
		for id := 0; id < n; id++ {
			tree.Remove(id)
			delete(pts, id)
			if tree.dead > len(tree.byID) {
				t.Fatalf("round %d: %d tombstones for %d live points — rebuild did not fire", round, tree.dead, len(tree.byID))
			}
		}
		if tree.Len() != 0 {
			t.Fatalf("round %d: Len = %d after removing all", round, tree.Len())
		}
		for id := 0; id < n; id++ {
			p := randPt(rng, 2)
			tree.Insert(id, p)
			pts[id] = p
		}
		q := randPt(rng, 2)
		got := tree.NearestK(q, 5)
		want := bruteNearestK(pts, q, 5)
		for i := range want {
			if got[i].DistSq != want[i].DistSq {
				t.Fatalf("round %d: dist[%d] = %v, want %v", round, i, got[i].DistSq, want[i].DistSq)
			}
		}
	}
}

func BenchmarkNearestKVsBrute(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const n = 1000
	tree := New(4)
	pts := map[int]linalg.Vector{}
	for id := 0; id < n; id++ {
		p := randPt(rng, 4)
		tree.Insert(id, p)
		pts[id] = p
	}
	q := randPt(rng, 4)
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tree.NearestK(q, 8)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = bruteNearestK(pts, q, 8)
		}
	})
}

// TestNearestKIntoKExceedsPoints: asking for more neighbors than the tree
// holds clamps to Len() — every point comes back, exactly once, sorted —
// and stays allocation-free when the destination has capacity.
func TestNearestKIntoKExceedsPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	tree := New(3)
	pts := map[int]linalg.Vector{}
	const n = 7
	for id := 0; id < n; id++ {
		p := randPt(rng, 3)
		tree.Insert(id, p)
		pts[id] = p
	}
	q := randPt(rng, 3)
	buf := make([]Neighbor, 0, n)
	for _, k := range []int{n, n + 1, n * 10} {
		got := tree.NearestKInto(q, k, buf[:0])
		if len(got) != n {
			t.Fatalf("k=%d: got %d neighbors, want all %d points", k, len(got), n)
		}
		want := bruteNearestK(pts, q, n)
		seen := map[int]bool{}
		for i := range got {
			if seen[got[i].ID] {
				t.Fatalf("k=%d: point %d returned twice", k, got[i].ID)
			}
			seen[got[i].ID] = true
			if got[i].DistSq != want[i].DistSq {
				t.Fatalf("k=%d: result[%d].DistSq = %v, want %v", k, i, got[i].DistSq, want[i].DistSq)
			}
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		buf = tree.NearestKInto(q, n*10, buf[:0])
	}); allocs != 0 {
		t.Fatalf("NearestKInto with k>Len allocated %.1f times per query, want 0", allocs)
	}
}

// TestNearestKIntoDuplicateCoordinates: several IDs at the same exact
// coordinates must all be returned (distinct IDs, equal distances), and
// the query must not lose non-duplicate points behind them.
func TestNearestKIntoDuplicateCoordinates(t *testing.T) {
	tree := New(2)
	dup := linalg.Vector{1, 1}
	for id := 0; id < 4; id++ {
		tree.Insert(id, dup.Clone())
	}
	tree.Insert(9, linalg.Vector{5, 5})
	q := linalg.Vector{1, 1}
	buf := make([]Neighbor, 0, 5)
	got := tree.NearestKInto(q, 5, buf)
	if len(got) != 5 {
		t.Fatalf("got %d neighbors, want 5", len(got))
	}
	seen := map[int]bool{}
	for i, nb := range got {
		if seen[nb.ID] {
			t.Fatalf("id %d returned twice", nb.ID)
		}
		seen[nb.ID] = true
		if i < 4 {
			if nb.DistSq != 0 {
				t.Fatalf("duplicate-coordinate neighbor %d has DistSq %v, want 0", i, nb.DistSq)
			}
		} else if nb.ID != 9 || nb.DistSq != 32 {
			t.Fatalf("last neighbor = %+v, want id 9 at DistSq 32", nb)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		buf = tree.NearestKInto(q, 5, buf[:0])
	}); allocs != 0 {
		t.Fatalf("duplicate-coordinate query allocated %.1f times, want 0", allocs)
	}
}

// TestNearestKIntoSinglePoint: the 1-point tree — the smallest non-empty
// kd-tree — answers any k with its single point, alloc-free.
func TestNearestKIntoSinglePoint(t *testing.T) {
	tree := New(4)
	p := linalg.Vector{1, 2, 3, 4}
	tree.Insert(42, p)
	q := linalg.Vector{2, 2, 3, 4}
	buf := make([]Neighbor, 0, 1)
	for _, k := range []int{1, 2, 100} {
		got := tree.NearestKInto(q, k, buf[:0])
		if len(got) != 1 || got[0].ID != 42 || got[0].DistSq != 1 {
			t.Fatalf("k=%d: got %+v, want [{42 1}]", k, got)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		buf = tree.NearestKInto(q, 1, buf[:0])
	}); allocs != 0 {
		t.Fatalf("1-point query allocated %.1f times, want 0", allocs)
	}
}
