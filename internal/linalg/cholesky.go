package linalg

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization is
// attempted on a matrix that is not (numerically) positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// Cholesky is the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ, stored packed like Sym. It is the workhorse of
// Gaussian log-densities: solves, log-determinants and Mahalanobis
// distances all go through the factor rather than an explicit inverse,
// which is both faster and far better conditioned.
type Cholesky struct {
	n int
	l []float64 // packed lower triangular, same layout as Sym
}

// CholeskyDecompose factors a into L·Lᵀ. It returns
// ErrNotPositiveDefinite if a pivot is not strictly positive.
func CholeskyDecompose(a *Sym) (*Cholesky, error) {
	n := a.n
	c := &Cholesky{n: n, l: make([]float64, len(a.data))}
	copy(c.l, a.data)
	for j := 0; j < n; j++ {
		// Diagonal pivot: l[j][j] = sqrt(a[j][j] - sum_k l[j][k]^2).
		d := c.at(j, j)
		for k := 0; k < j; k++ {
			ljk := c.at(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		c.set(j, j, d)
		// Column below the pivot.
		for i := j + 1; i < n; i++ {
			v := c.at(i, j)
			for k := 0; k < j; k++ {
				v -= c.at(i, k) * c.at(j, k)
			}
			c.set(i, j, v/d)
		}
	}
	return c, nil
}

func (c *Cholesky) at(i, j int) float64     { return c.l[i*(i+1)/2+j] }
func (c *Cholesky) set(i, j int, v float64) { c.l[i*(i+1)/2+j] = v }

// Order returns the matrix order.
func (c *Cholesky) Order() int { return c.n }

// LogDet returns log|A| = 2·Σ log L[i][i].
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.at(i, i))
	}
	return 2 * s
}

// SolveInto solves A x = b, writing x into dst. b and dst may alias.
func (c *Cholesky) SolveInto(b, dst Vector) {
	if len(b) != c.n || len(dst) != c.n {
		panic("linalg: Cholesky solve dimension mismatch")
	}
	// Forward: L y = b.
	for i := 0; i < c.n; i++ {
		v := b[i]
		for k := 0; k < i; k++ {
			v -= c.at(i, k) * dst[k]
		}
		dst[i] = v / c.at(i, i)
	}
	// Backward: Lᵀ x = y.
	for i := c.n - 1; i >= 0; i-- {
		v := dst[i]
		for k := i + 1; k < c.n; k++ {
			v -= c.at(k, i) * dst[k]
		}
		dst[i] = v / c.at(i, i)
	}
}

// Solve solves A x = b and returns a fresh x.
func (c *Cholesky) Solve(b Vector) Vector {
	x := NewVector(c.n)
	c.SolveInto(b, x)
	return x
}

// HalfSolveInto solves the triangular system L y = b, writing y into dst.
// Since (x-μ)ᵀ A⁻¹ (x-μ) = ‖L⁻¹(x-μ)‖², this is all a Mahalanobis distance
// needs — half the work of a full solve.
func (c *Cholesky) HalfSolveInto(b, dst Vector) {
	if len(b) != c.n || len(dst) != c.n {
		panic("linalg: Cholesky half-solve dimension mismatch")
	}
	for i := 0; i < c.n; i++ {
		v := b[i]
		for k := 0; k < i; k++ {
			v -= c.at(i, k) * dst[k]
		}
		dst[i] = v / c.at(i, i)
	}
}

// HalfSolvePanel runs the forward solve L·y = b simultaneously for count
// right-hand sides held dimension-major in panel (panel[i*stride+p] is
// coordinate i of right-hand side p), in place. The k-loop order and the
// final division match HalfSolveInto exactly, so each column's result is
// bit-identical to a scalar half-solve of that column; the win is purely
// structural — the inner loops stream contiguously across the panel
// instead of re-walking the factor per record.
func (c *Cholesky) HalfSolvePanel(panel []float64, stride, count int) {
	if count == 0 {
		return
	}
	if stride < count || len(panel) < c.n*stride {
		panic("linalg: Cholesky panel solve shape mismatch")
	}
	for i := 0; i < c.n; i++ {
		row := panel[i*stride : i*stride+count]
		for k := 0; k < i; k++ {
			lik := c.at(i, k)
			prev := panel[k*stride : k*stride+count]
			for p := range row {
				row[p] -= lik * prev[p]
			}
		}
		dii := c.at(i, i)
		for p := range row {
			row[p] /= dii
		}
	}
}

// QuadFormPanel computes dst[p] = bₚᵀ A⁻¹ bₚ for the count right-hand
// sides held dimension-major in panel, destroying the panel (it becomes
// the half-solved L⁻¹b). Each dst[p] is bit-identical to QuadFormScratch
// on the corresponding column.
func (c *Cholesky) QuadFormPanel(panel []float64, stride, count int, dst []float64) {
	c.HalfSolvePanel(panel, stride, count)
	SumSqPanel(panel, stride, count, c.n, dst)
}

// QuadForm returns the quadratic form bᵀ A⁻¹ b using the factor, allocating
// one scratch vector.
func (c *Cholesky) QuadForm(b Vector) float64 {
	y := NewVector(c.n)
	c.HalfSolveInto(b, y)
	return y.Dot(y)
}

// QuadFormScratch is QuadForm with caller-provided scratch, for hot loops.
func (c *Cholesky) QuadFormScratch(b, scratch Vector) float64 {
	c.HalfSolveInto(b, scratch)
	return scratch.Dot(scratch)
}

// Inverse returns A⁻¹ as a symmetric matrix. CluDistream's merge criteria
// (Eq. 5–6) need explicit Σ⁻¹ sums, so this is a first-class operation.
func (c *Cholesky) Inverse() *Sym {
	inv := NewSym(c.n)
	e := NewVector(c.n)
	col := NewVector(c.n)
	for j := 0; j < c.n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		c.SolveInto(e, col)
		for i := j; i < c.n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv
}

// MulLVecInto computes dst = L · v, used when sampling from a Gaussian
// (x = μ + L z with z standard normal).
func (c *Cholesky) MulLVecInto(v, dst Vector) {
	if len(v) != c.n || len(dst) != c.n {
		panic("linalg: Cholesky MulLVec dimension mismatch")
	}
	for i := c.n - 1; i >= 0; i-- {
		var acc float64
		for j := 0; j <= i; j++ {
			acc += c.at(i, j) * v[j]
		}
		dst[i] = acc
	}
}

// Det returns the determinant |A| = exp(LogDet). It underflows to 0 for
// very ill-conditioned matrices; callers that only need the log scale
// should use LogDet.
func (c *Cholesky) Det() float64 { return math.Exp(c.LogDet()) }
