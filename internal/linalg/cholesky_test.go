package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnownMatrix(t *testing.T) {
	// A = [[4,2],[2,3]]  =>  L = [[2,0],[1,sqrt(2)]]
	a := NewSymFrom(2, []float64{4, 2, 2, 3})
	c, err := CholeskyDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.at(0, 0)-2) > 1e-15 || math.Abs(c.at(1, 0)-1) > 1e-15 ||
		math.Abs(c.at(1, 1)-math.Sqrt2) > 1e-15 {
		t.Fatalf("L wrong: %v %v %v", c.at(0, 0), c.at(1, 0), c.at(1, 1))
	}
	// det(A) = 8
	if math.Abs(c.Det()-8) > 1e-12 {
		t.Fatalf("Det = %v", c.Det())
	}
	if math.Abs(c.LogDet()-math.Log(8)) > 1e-12 {
		t.Fatalf("LogDet = %v", c.LogDet())
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewSymFrom(2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := CholeskyDecompose(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	zero := NewSym(3)
	if _, err := CholeskyDecompose(zero); err == nil {
		t.Fatal("zero matrix should not factor")
	}
}

func TestCholeskySolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8) bool {
		d := int(n%10) + 1
		a := randSPD(rng, d)
		c, err := CholeskyDecompose(a)
		if err != nil {
			return false
		}
		x := randVec(rng, d)
		b := a.MulVec(x)
		got := c.Solve(b)
		return got.Equal(x, 1e-6*(1+x.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyQuadFormMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		d := rng.Intn(6) + 1
		a := randSPD(rng, d)
		c, err := CholeskyDecompose(a)
		if err != nil {
			t.Fatal(err)
		}
		inv := c.Inverse()
		v := randVec(rng, d)
		want := inv.Quad(v)
		got := c.QuadForm(v)
		if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("d=%d QuadForm=%v inverse quad=%v", d, got, want)
		}
	}
}

func TestCholeskyInverseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := 5
	a := randSPD(rng, d)
	c, _ := CholeskyDecompose(a)
	inv := c.Inverse()
	// A * A^{-1} should be ~identity: check column by column.
	for j := 0; j < d; j++ {
		col := NewVector(d)
		for i := 0; i < d; i++ {
			col[i] = inv.At(i, j)
		}
		prod := a.MulVec(col)
		for i := 0; i < d; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod[i]-want) > 1e-8 {
				t.Fatalf("A·A⁻¹[%d,%d] = %v", i, j, prod[i])
			}
		}
	}
}

func TestCholeskyMulLVecReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := 4
	a := randSPD(rng, d)
	c, _ := CholeskyDecompose(a)
	// L·Lᵀ == A: verify via (L(Lᵀ e_j)) columns. Simpler: check that for
	// random z, ‖L z‖² = zᵀ A z… that's wrong (zᵀLᵀLz ≠ zᵀLLᵀz). Instead
	// verify Var[L z] reconstruction: compute A' = Σ over basis:
	// A'[i][j] = Σ_k L[i][k] L[j][k] via MulLVecInto on basis vectors.
	cols := make([]Vector, d)
	for k := 0; k < d; k++ {
		e := NewVector(d)
		e[k] = 1
		out := NewVector(d)
		c.MulLVecInto(e, out)
		cols[k] = out
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			var acc float64
			for k := 0; k < d; k++ {
				acc += cols[k][i] * cols[k][j]
			}
			if math.Abs(acc-a.At(i, j)) > 1e-10*(1+math.Abs(a.At(i, j))) {
				t.Fatalf("LLᵀ[%d,%d]=%v want %v", i, j, acc, a.At(i, j))
			}
		}
	}
}

func TestCholeskyHalfSolveConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := 6
	a := randSPD(rng, d)
	c, _ := CholeskyDecompose(a)
	b := randVec(rng, d)
	y := NewVector(d)
	c.HalfSolveInto(b, y)
	// ‖y‖² should equal bᵀ A⁻¹ b.
	if math.Abs(y.Dot(y)-c.QuadForm(b)) > 1e-10*(1+y.Dot(y)) {
		t.Fatal("HalfSolve norm does not match QuadForm")
	}
}

// Property: log-determinant is additive under scaling: |cA| = c^d |A|.
func TestCholeskyLogDetScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(n uint8) bool {
		d := int(n%6) + 1
		a := randSPD(rng, d)
		scale := 0.5 + rng.Float64()*2
		b := a.Clone()
		b.ScaleInPlace(scale)
		ca, err1 := CholeskyDecompose(a)
		cb, err2 := CholeskyDecompose(b)
		if err1 != nil || err2 != nil {
			return false
		}
		want := ca.LogDet() + float64(d)*math.Log(scale)
		return math.Abs(cb.LogDet()-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
