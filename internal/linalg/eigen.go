package linalg

import "math"

// JacobiEigen computes the full eigendecomposition of a symmetric matrix
// using the classical cyclic Jacobi rotation method. It returns the
// eigenvalues (unsorted) and the matrix of eigenvectors as row-major n×n
// data, column k being the eigenvector for eigenvalue k.
//
// Jacobi is slow compared with QR iterations but is simple, numerically
// robust, and more than fast enough for the d ≤ 40 covariance matrices this
// repository deals with. It backs PSD repair (flooring negative eigenvalues
// after aggressive covariance updates) and Theorem 1's diagonalization
// argument in tests.
func JacobiEigen(a *Sym) (eigenvalues Vector, eigenvectors []float64) {
	n := a.n
	// Work on a full copy for simpler indexing.
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i*n+j] = a.At(i, j)
		}
	}
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i*n+j] * m[i*n+j]
			}
		}
		if off < 1e-24*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := m[p*n+p]
				aqq := m[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation G(p,q,θ) on both sides: m = Gᵀ m G.
				for k := 0; k < n; k++ {
					mkp := m[k*n+p]
					mkq := m[k*n+q]
					m[k*n+p] = c*mkp - s*mkq
					m[k*n+q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk := m[p*n+k]
					mqk := m[q*n+k]
					m[p*n+k] = c*mpk - s*mqk
					m[q*n+k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp := v[k*n+p]
					vkq := v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals := NewVector(n)
	for i := 0; i < n; i++ {
		vals[i] = m[i*n+i]
	}
	return vals, v
}

// RepairPSD returns a positive definite matrix close to a, obtained by
// flooring its eigenvalues at minEig and reassembling V diag(λ) Vᵀ. If a is
// already positive definite with smallest eigenvalue ≥ minEig, a clone of a
// is returned. This implements the paper's footnote that singular
// covariances (zero-variance or linearly dependent attributes) are excluded
// from consideration: instead of failing, we nudge them back into the
// admissible set.
func RepairPSD(a *Sym, minEig float64) *Sym {
	if minEig <= 0 {
		minEig = 1e-12
	}
	if _, err := CholeskyDecompose(a); err == nil {
		// Fast path: already PD. Still verify the floor via Gershgorin-ish
		// cheap check (diagonal dominance not guaranteed, so just accept).
		return a.Clone()
	}
	vals, vecs := JacobiEigen(a)
	n := a.n
	out := NewSym(n)
	for k := 0; k < n; k++ {
		lam := vals[k]
		if lam < minEig {
			lam = minEig
		}
		// out += lam * v_k v_kᵀ where v_k is column k of vecs.
		idx := 0
		for i := 0; i < n; i++ {
			vik := vecs[i*n+k]
			for j := 0; j <= i; j++ {
				out.data[idx] += lam * vik * vecs[j*n+k]
				idx++
			}
		}
	}
	return out
}
