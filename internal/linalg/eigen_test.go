package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestJacobiEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewSymFrom(2, []float64{2, 1, 1, 2})
	vals, _ := JacobiEigen(a)
	got := []float64{vals[0], vals[1]}
	sort.Float64s(got)
	if math.Abs(got[0]-1) > 1e-10 || math.Abs(got[1]-3) > 1e-10 {
		t.Fatalf("eigenvalues = %v", got)
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		d := rng.Intn(8) + 2
		a := randSym(rng, d)
		vals, vecs := JacobiEigen(a)
		// Reconstruct V diag(λ) Vᵀ and compare.
		for i := 0; i < d; i++ {
			for j := 0; j <= i; j++ {
				var acc float64
				for k := 0; k < d; k++ {
					acc += vals[k] * vecs[i*d+k] * vecs[j*d+k]
				}
				if math.Abs(acc-a.At(i, j)) > 1e-8*(1+a.MaxAbs()) {
					t.Fatalf("d=%d reconstruction (%d,%d): %v want %v", d, i, j, acc, a.At(i, j))
				}
			}
		}
		// Eigenvector matrix should be orthogonal.
		for c1 := 0; c1 < d; c1++ {
			for c2 := 0; c2 <= c1; c2++ {
				var dot float64
				for k := 0; k < d; k++ {
					dot += vecs[k*d+c1] * vecs[k*d+c2]
				}
				want := 0.0
				if c1 == c2 {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					t.Fatalf("eigenvectors not orthonormal: <%d,%d>=%v", c1, c2, dot)
				}
			}
		}
	}
}

func TestJacobiEigenTraceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		d := rng.Intn(10) + 1
		a := randSym(rng, d)
		vals, _ := JacobiEigen(a)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if math.Abs(sum-a.Trace()) > 1e-9*(1+math.Abs(a.Trace())) {
			t.Fatalf("Σλ=%v trace=%v", sum, a.Trace())
		}
	}
}

func TestRepairPSDIndefinite(t *testing.T) {
	a := NewSymFrom(2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	fixed := RepairPSD(a, 1e-6)
	c, err := CholeskyDecompose(fixed)
	if err != nil {
		t.Fatalf("repaired matrix not PD: %v", err)
	}
	if c.LogDet() < math.Log(1e-6*3)-1 {
		t.Errorf("repaired determinant suspiciously small: %v", c.LogDet())
	}
	// The positive eigenvalue should be (approximately) preserved.
	vals, _ := JacobiEigen(fixed)
	max := math.Max(vals[0], vals[1])
	if math.Abs(max-3) > 1e-6 {
		t.Errorf("dominant eigenvalue perturbed: %v", max)
	}
}

func TestRepairPSDAlreadyPD(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randSPD(rng, 4)
	fixed := RepairPSD(a, 1e-12)
	if !fixed.Equal(a, 0) {
		t.Fatal("already-PD matrix should be returned unchanged")
	}
}

func TestRepairPSDZeroMatrix(t *testing.T) {
	fixed := RepairPSD(NewSym(3), 1e-4)
	if _, err := CholeskyDecompose(fixed); err != nil {
		t.Fatalf("repaired zero matrix not PD: %v", err)
	}
	for i := 0; i < 3; i++ {
		if fixed.At(i, i) < 1e-4-1e-12 {
			t.Fatalf("diagonal below floor: %v", fixed.At(i, i))
		}
	}
}
