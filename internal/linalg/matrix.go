package linalg

import "fmt"

// Matrix is a dense row-major matrix backed by one flat []float64. It is
// the batching substrate for the hot scoring paths: a chunk of records
// packed as rows is one contiguous block, so the batched kernels stream
// through memory instead of chasing per-record slice headers the way
// []Vector does. The zero value is an empty matrix; Reset grows the
// backing array on demand so one Matrix can be reused across chunks.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	m := &Matrix{}
	m.Reset(rows, cols)
	return m
}

// Reset reshapes m to rows×cols, zeroing the content. The backing array is
// reused when large enough, so hot loops can Reset instead of reallocating.
func (m *Matrix) Reset(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix shape %d×%d", rows, cols))
	}
	n := rows * cols
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
		for i := range m.data {
			m.data[i] = 0
		}
	}
	m.rows, m.cols = rows, cols
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// Row returns row i as a Vector aliasing the backing array (no copy).
func (m *Matrix) Row(i int) Vector {
	return Vector(m.data[i*m.cols : (i+1)*m.cols])
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Data returns the flat row-major backing slice (aliased, not copied).
func (m *Matrix) Data() []float64 { return m.data }

// CopyRow copies x into row i. It panics on dimension mismatch.
func (m *Matrix) CopyRow(i int, x Vector) {
	mustSameDim(m.cols, len(x))
	copy(m.data[i*m.cols:(i+1)*m.cols], x)
}

// MatrixFromVectors packs the records xs as the rows of a fresh matrix.
// All records must share one dimensionality.
func MatrixFromVectors(xs []Vector) *Matrix {
	if len(xs) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(xs), len(xs[0]))
	for i, x := range xs {
		m.CopyRow(i, x)
	}
	return m
}

// SubRowsInto writes (xs[p] - mean) for p in [0, count) into panel in
// dimension-major order: panel[i*stride+p] holds coordinate i of record p.
// That transposed layout is what the blocked triangular solve wants — the
// per-dimension inner loops walk contiguous memory across records. Each
// element is the same single subtraction Vector.SubInto performs, so the
// panel is bit-identical to per-record diffs.
func SubRowsInto(xs []Vector, mean Vector, panel []float64, stride, count int) {
	d := len(mean)
	for i := 0; i < d; i++ {
		mi := mean[i]
		row := panel[i*stride : i*stride+count]
		for p := 0; p < count; p++ {
			row[p] = xs[p][i] - mi
		}
	}
}

// SumSqPanel writes dst[p] = Σ_i panel[i*stride+p]² for p in [0, count),
// accumulating over i ascending — the same order Vector.Dot(self) uses, so
// each result is bit-identical to the scalar squared norm.
func SumSqPanel(panel []float64, stride, count, n int, dst []float64) {
	for p := 0; p < count; p++ {
		dst[p] = 0
	}
	for i := 0; i < n; i++ {
		row := panel[i*stride : i*stride+count]
		for p := 0; p < count; p++ {
			dst[p] += row[p] * row[p]
		}
	}
}
