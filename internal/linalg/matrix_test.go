package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 2)
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %d×%d", m.Rows(), m.Cols())
	}
	m.Set(2, 1, 7)
	if m.At(2, 1) != 7 || m.Row(2)[1] != 7 {
		t.Fatal("Set/At/Row disagree")
	}
	m.CopyRow(0, Vector{1, 2})
	if m.Data()[0] != 1 || m.Data()[1] != 2 {
		t.Fatalf("CopyRow wrote %v", m.Data()[:2])
	}
}

func TestMatrixResetReuse(t *testing.T) {
	m := NewMatrix(4, 4)
	m.Set(0, 0, 5)
	base := &m.Data()[0]
	m.Reset(2, 3) // smaller: must reuse and zero
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape after Reset = %d×%d", m.Rows(), m.Cols())
	}
	if &m.Data()[0] != base {
		t.Fatal("Reset to a smaller shape reallocated")
	}
	for _, v := range m.Data() {
		if v != 0 {
			t.Fatalf("Reset left stale value %v", v)
		}
	}
	m.Reset(10, 10) // larger: must grow
	if len(m.Data()) != 100 {
		t.Fatalf("grown len = %d", len(m.Data()))
	}
}

func TestMatrixFromVectors(t *testing.T) {
	m := MatrixFromVectors([]Vector{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 || m.At(1, 1) != 4 || m.At(2, 0) != 5 {
		t.Fatalf("packed matrix wrong: %v", m.Data())
	}
	if e := MatrixFromVectors(nil); e.Rows() != 0 {
		t.Fatal("empty pack should have zero rows")
	}
}

func TestSubRowsIntoMatchesSubInto(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const d, n, stride = 5, 7, 16
	xs := make([]Vector, n)
	for i := range xs {
		xs[i] = NewVector(d)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	mean := NewVector(d)
	for j := range mean {
		mean[j] = rng.NormFloat64()
	}
	panel := make([]float64, d*stride)
	SubRowsInto(xs, mean, panel, stride, n)
	diff := NewVector(d)
	for p, x := range xs {
		x.SubInto(mean, diff)
		for i := 0; i < d; i++ {
			if math.Float64bits(panel[i*stride+p]) != math.Float64bits(diff[i]) {
				t.Fatalf("record %d coord %d: panel %v, scalar %v", p, i, panel[i*stride+p], diff[i])
			}
		}
	}
}

// TestHalfSolvePanelBitIdentical pins the blocked forward solve to the
// scalar HalfSolveInto column by column — the property the batched
// Mahalanobis kernels rely on.
func TestHalfSolvePanelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, d := range []int{1, 2, 5, 12} {
		chol, err := CholeskyDecompose(randSPD(rng, d))
		if err != nil {
			t.Fatal(err)
		}
		const n, stride = 9, 11
		panel := make([]float64, d*stride)
		cols := make([]Vector, n)
		for p := 0; p < n; p++ {
			cols[p] = NewVector(d)
			for i := 0; i < d; i++ {
				cols[p][i] = rng.NormFloat64()
				panel[i*stride+p] = cols[p][i]
			}
		}
		chol.HalfSolvePanel(panel, stride, n)
		y := NewVector(d)
		for p := 0; p < n; p++ {
			chol.HalfSolveInto(cols[p], y)
			for i := 0; i < d; i++ {
				if math.Float64bits(panel[i*stride+p]) != math.Float64bits(y[i]) {
					t.Fatalf("d=%d rhs %d coord %d: panel %v, scalar %v", d, p, i, panel[i*stride+p], y[i])
				}
			}
		}
	}
}

// TestQuadFormPanelBitIdentical pins the fused panel quadratic form to the
// scalar QuadForm.
func TestQuadFormPanelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := 6
	chol, err := CholeskyDecompose(randSPD(rng, d))
	if err != nil {
		t.Fatal(err)
	}
	const n = 13
	panel := make([]float64, d*n)
	cols := make([]Vector, n)
	for p := 0; p < n; p++ {
		cols[p] = NewVector(d)
		for i := 0; i < d; i++ {
			cols[p][i] = rng.NormFloat64()
			panel[i*n+p] = cols[p][i]
		}
	}
	dst := make([]float64, n)
	chol.QuadFormPanel(panel, n, n, dst)
	for p := 0; p < n; p++ {
		if want := chol.QuadForm(cols[p]); math.Float64bits(dst[p]) != math.Float64bits(want) {
			t.Fatalf("rhs %d: panel %v, scalar %v", p, dst[p], want)
		}
	}
}

func TestSumSqPanel(t *testing.T) {
	// 2 dims, stride 4, 3 columns: dst[p] = panel[0*4+p]² + panel[1*4+p]².
	panel := []float64{1, 2, 3, 99, 4, 5, 6, 99}
	dst := make([]float64, 3)
	SumSqPanel(panel, 4, 3, 2, dst)
	want := []float64{17, 29, 45}
	for p := range want {
		if dst[p] != want[p] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}
