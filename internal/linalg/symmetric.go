package linalg

import (
	"fmt"
	"math"
)

// Sym is a dense symmetric d×d matrix stored in packed lower-triangular
// form: element (i, j) with i >= j lives at data[i*(i+1)/2 + j]. Packed
// storage halves the memory footprint of covariance matrices, which matters
// because the coordinator keeps B·K of them per site (Theorem 3).
type Sym struct {
	n    int
	data []float64
}

// NewSym returns the zero symmetric matrix of order n.
func NewSym(n int) *Sym {
	return &Sym{n: n, data: make([]float64, n*(n+1)/2)}
}

// NewSymFrom builds a symmetric matrix from a full row-major d×d slice,
// averaging the off-diagonal pairs so that slightly asymmetric inputs (from
// accumulated floating-point error) are symmetrized.
func NewSymFrom(n int, full []float64) *Sym {
	if len(full) != n*n {
		panic(fmt.Sprintf("linalg: NewSymFrom: need %d elements, got %d", n*n, len(full)))
	}
	s := NewSym(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s.Set(i, j, 0.5*(full[i*n+j]+full[j*n+i]))
		}
	}
	return s
}

// Identity returns the n×n identity as a symmetric matrix.
func Identity(n int) *Sym {
	s := NewSym(n)
	for i := 0; i < n; i++ {
		s.Set(i, i, 1)
	}
	return s
}

// Diagonal returns a symmetric matrix with the given diagonal.
func Diagonal(diag Vector) *Sym {
	s := NewSym(len(diag))
	for i, v := range diag {
		s.Set(i, i, v)
	}
	return s
}

// Order returns the matrix order (number of rows = columns).
func (s *Sym) Order() int { return s.n }

// At returns element (i, j).
func (s *Sym) At(i, j int) float64 {
	if j > i {
		i, j = j, i
	}
	return s.data[i*(i+1)/2+j]
}

// Set assigns element (i, j) (and by symmetry (j, i)).
func (s *Sym) Set(i, j int, v float64) {
	if j > i {
		i, j = j, i
	}
	s.data[i*(i+1)/2+j] = v
}

// Add accumulates v into element (i, j).
func (s *Sym) Add(i, j int, v float64) {
	if j > i {
		i, j = j, i
	}
	s.data[i*(i+1)/2+j] += v
}

// Clone returns a deep copy of s.
func (s *Sym) Clone() *Sym {
	out := &Sym{n: s.n, data: make([]float64, len(s.data))}
	copy(out.data, s.data)
	return out
}

// CopyFrom overwrites s with the contents of src (same order required).
func (s *Sym) CopyFrom(src *Sym) {
	if s.n != src.n {
		panic("linalg: CopyFrom order mismatch")
	}
	copy(s.data, src.data)
}

// AddSym performs s += a*t element-wise.
func (s *Sym) AddSym(a float64, t *Sym) {
	if s.n != t.n {
		panic("linalg: AddSym order mismatch")
	}
	for i := range s.data {
		s.data[i] += a * t.data[i]
	}
}

// ScaleInPlace multiplies all elements by a.
func (s *Sym) ScaleInPlace(a float64) {
	for i := range s.data {
		s.data[i] *= a
	}
}

// AddOuterScaled performs the rank-1 update s += a * v vᵀ.
func (s *Sym) AddOuterScaled(a float64, v Vector) {
	if len(v) != s.n {
		panic("linalg: AddOuterScaled dimension mismatch")
	}
	k := 0
	for i := 0; i < s.n; i++ {
		avi := a * v[i]
		for j := 0; j <= i; j++ {
			s.data[k] += avi * v[j]
			k++
		}
	}
}

// MulVec returns s · v as a fresh vector.
func (s *Sym) MulVec(v Vector) Vector {
	out := NewVector(s.n)
	s.MulVecInto(v, out)
	return out
}

// MulVecInto writes s · v into dst.
func (s *Sym) MulVecInto(v, dst Vector) {
	if len(v) != s.n || len(dst) != s.n {
		panic("linalg: MulVec dimension mismatch")
	}
	for i := 0; i < s.n; i++ {
		var acc float64
		for j := 0; j < s.n; j++ {
			acc += s.At(i, j) * v[j]
		}
		dst[i] = acc
	}
}

// Quad returns the quadratic form vᵀ s v.
func (s *Sym) Quad(v Vector) float64 {
	if len(v) != s.n {
		panic("linalg: Quad dimension mismatch")
	}
	var acc float64
	k := 0
	for i := 0; i < s.n; i++ {
		vi := v[i]
		for j := 0; j < i; j++ {
			acc += 2 * vi * v[j] * s.data[k]
			k++
		}
		acc += vi * vi * s.data[k]
		k++
	}
	return acc
}

// Diag returns a copy of the main diagonal.
func (s *Sym) Diag() Vector {
	out := NewVector(s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.At(i, i)
	}
	return out
}

// Trace returns the sum of the diagonal elements.
func (s *Sym) Trace() float64 {
	var t float64
	for i := 0; i < s.n; i++ {
		t += s.At(i, i)
	}
	return t
}

// MaxAbs returns the largest absolute element value (an inexpensive norm
// used for scaling tolerances).
func (s *Sym) MaxAbs() float64 {
	var m float64
	for _, v := range s.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether s and t agree element-wise within tol.
func (s *Sym) Equal(t *Sym, tol float64) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.data {
		if math.Abs(s.data[i]-t.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element is finite.
func (s *Sym) IsFinite() bool {
	for _, v := range s.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Packed exposes the underlying packed lower-triangular storage. The slice
// aliases the matrix: mutations are visible. Intended for serialization.
func (s *Sym) Packed() []float64 { return s.data }

// SymFromPacked wraps packed lower-triangular data (length n*(n+1)/2) in a
// Sym without copying.
func SymFromPacked(n int, packed []float64) *Sym {
	if len(packed) != n*(n+1)/2 {
		panic(fmt.Sprintf("linalg: SymFromPacked: need %d elements, got %d", n*(n+1)/2, len(packed)))
	}
	return &Sym{n: n, data: packed}
}

// PackedLen returns the packed storage length for order n.
func PackedLen(n int) int { return n * (n + 1) / 2 }
