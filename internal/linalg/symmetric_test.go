package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymSetAtSymmetry(t *testing.T) {
	s := NewSym(3)
	s.Set(0, 2, 7)
	if s.At(2, 0) != 7 || s.At(0, 2) != 7 {
		t.Fatalf("symmetry broken: At(2,0)=%v At(0,2)=%v", s.At(2, 0), s.At(0, 2))
	}
	s.Add(2, 0, 3)
	if s.At(0, 2) != 10 {
		t.Fatalf("Add not symmetric: %v", s.At(0, 2))
	}
}

func TestSymIdentityAndDiagonal(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
	d := Diagonal(Vector{2, 3})
	if d.At(0, 0) != 2 || d.At(1, 1) != 3 || d.At(0, 1) != 0 {
		t.Fatal("Diagonal wrong")
	}
	if d.Trace() != 5 {
		t.Fatalf("Trace = %v", d.Trace())
	}
}

func TestNewSymFromSymmetrizes(t *testing.T) {
	// Slightly asymmetric input gets averaged.
	s := NewSymFrom(2, []float64{1, 2, 4, 9})
	if s.At(0, 1) != 3 {
		t.Fatalf("off-diagonal = %v, want 3", s.At(0, 1))
	}
}

func TestSymMulVec(t *testing.T) {
	s := NewSymFrom(2, []float64{2, 1, 1, 3})
	got := s.MulVec(Vector{1, 2})
	if !got.Equal(Vector{4, 7}, 1e-15) {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestSymQuadMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8) bool {
		d := int(n%8) + 1
		s := randSym(rng, d)
		v := randVec(rng, d)
		want := v.Dot(s.MulVec(v))
		got := s.Quad(v)
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSymAddOuterScaled(t *testing.T) {
	s := NewSym(2)
	s.AddOuterScaled(2, Vector{1, 3})
	// 2 * [1,3][1,3]^T = [[2,6],[6,18]]
	if s.At(0, 0) != 2 || s.At(0, 1) != 6 || s.At(1, 1) != 18 {
		t.Fatalf("AddOuterScaled wrong: %v %v %v", s.At(0, 0), s.At(0, 1), s.At(1, 1))
	}
}

func TestSymAddSymScale(t *testing.T) {
	a := Identity(2)
	b := Diagonal(Vector{1, 2})
	a.AddSym(3, b)
	if a.At(0, 0) != 4 || a.At(1, 1) != 7 {
		t.Fatal("AddSym wrong")
	}
	a.ScaleInPlace(0.5)
	if a.At(0, 0) != 2 || a.At(1, 1) != 3.5 {
		t.Fatal("ScaleInPlace wrong")
	}
}

func TestSymPackedRoundTrip(t *testing.T) {
	s := randSym(rand.New(rand.NewSource(4)), 5)
	p := s.Packed()
	if len(p) != PackedLen(5) {
		t.Fatalf("packed len = %d", len(p))
	}
	q := SymFromPacked(5, append([]float64(nil), p...))
	if !s.Equal(q, 0) {
		t.Fatal("packed round trip mismatch")
	}
}

func TestSymCloneIndependence(t *testing.T) {
	s := Identity(2)
	c := s.Clone()
	c.Set(0, 0, 9)
	if s.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestSymMaxAbsAndFinite(t *testing.T) {
	s := NewSymFrom(2, []float64{1, -5, -5, 2})
	if s.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", s.MaxAbs())
	}
	if !s.IsFinite() {
		t.Error("finite matrix reported non-finite")
	}
	s.Set(1, 1, math.NaN())
	if s.IsFinite() {
		t.Error("NaN matrix reported finite")
	}
}

// randSym returns a random symmetric matrix (not necessarily PD).
func randSym(rng *rand.Rand, d int) *Sym {
	s := NewSym(d)
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			s.Set(i, j, rng.NormFloat64())
		}
	}
	return s
}

// randSPD returns a random symmetric positive definite matrix A = GᵀG + εI.
func randSPD(rng *rand.Rand, d int) *Sym {
	s := NewSym(d)
	for k := 0; k < d+2; k++ {
		v := randVec(rng, d)
		s.AddOuterScaled(1, v)
	}
	for i := 0; i < d; i++ {
		s.Add(i, i, 0.5)
	}
	return s
}
