// Package linalg provides the small dense linear-algebra kernel that the
// rest of the repository builds on: d-dimensional vectors, symmetric
// matrices in packed form, Cholesky factorizations, triangular solves and a
// Jacobi eigendecomposition.
//
// Go's standard library has no numeric linear algebra, and the module is
// offline, so everything here is implemented from first principles. The
// dimensions involved in CluDistream are small (the paper sweeps d up to
// 40), so simple O(d^3) dense algorithms are the right tool; no blocking or
// SIMD is attempted.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned by operations whose operands have
// incompatible dimensions.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector of float64s. The zero value is an empty
// vector. Vectors are plain slices so callers may index them directly.
type Vector []float64

// NewVector returns a zero vector of dimension d.
func NewVector(d int) Vector {
	return make(Vector, d)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dim returns the dimension of v.
func (v Vector) Dim() int { return len(v) }

// AddInPlace adds u into v element-wise. It panics if dimensions differ.
func (v Vector) AddInPlace(u Vector) {
	mustSameDim(len(v), len(u))
	for i := range v {
		v[i] += u[i]
	}
}

// Add returns v + u as a fresh vector.
func (v Vector) Add(u Vector) Vector {
	out := v.Clone()
	out.AddInPlace(u)
	return out
}

// Sub returns v - u as a fresh vector.
func (v Vector) Sub(u Vector) Vector {
	mustSameDim(len(v), len(u))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - u[i]
	}
	return out
}

// SubInto writes v - u into dst, which must have the same dimension. It
// exists so hot loops can avoid allocation.
func (v Vector) SubInto(u, dst Vector) {
	mustSameDim(len(v), len(u))
	mustSameDim(len(v), len(dst))
	for i := range v {
		dst[i] = v[i] - u[i]
	}
}

// ScaleInPlace multiplies every element of v by a.
func (v Vector) ScaleInPlace(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Scale returns a*v as a fresh vector.
func (v Vector) Scale(a float64) Vector {
	out := v.Clone()
	out.ScaleInPlace(a)
	return out
}

// AXPYInPlace performs v += a*u.
func (v Vector) AXPYInPlace(a float64, u Vector) {
	mustSameDim(len(v), len(u))
	for i := range v {
		v[i] += a * u[i]
	}
}

// Dot returns the inner product <v, u>.
func (v Vector) Dot(u Vector) float64 {
	mustSameDim(len(v), len(u))
	var s float64
	for i := range v {
		s += v[i] * u[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// DistSq returns the squared Euclidean distance between v and u.
func (v Vector) DistSq(u Vector) float64 {
	mustSameDim(len(v), len(u))
	var s float64
	for i := range v {
		d := v[i] - u[i]
		s += d * d
	}
	return s
}

// Equal reports whether v and u are element-wise within tol of each other.
func (v Vector) Equal(u Vector, tol float64) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-u[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element of v is finite (neither NaN nor
// infinite).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

func mustSameDim(a, b int) {
	if a != b {
		panic(fmt.Sprintf("linalg: dimension mismatch: %d vs %d", a, b))
	}
}
