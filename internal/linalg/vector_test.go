package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasicOps(t *testing.T) {
	v := Vector{1, 2, 3}
	u := Vector{4, 5, 6}

	if got := v.Add(u); !got.Equal(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(u); !got.Equal(Vector{-3, -3, -3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Vector{2, 4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(u); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := v.Norm(); math.Abs(got-math.Sqrt(14)) > 1e-15 {
		t.Errorf("Norm = %v", got)
	}
	if got := v.DistSq(u); got != 27 {
		t.Errorf("DistSq = %v, want 27", got)
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestVectorAXPY(t *testing.T) {
	v := Vector{1, 1}
	v.AXPYInPlace(3, Vector{2, -1})
	if !v.Equal(Vector{7, -2}, 0) {
		t.Errorf("AXPY = %v", v)
	}
}

func TestVectorSubInto(t *testing.T) {
	v := Vector{5, 5}
	dst := NewVector(2)
	v.SubInto(Vector{2, 3}, dst)
	if !dst.Equal(Vector{3, 2}, 0) {
		t.Errorf("SubInto = %v", dst)
	}
}

func TestVectorDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Vector{1, 2}.Dot(Vector{1})
}

func TestVectorIsFinite(t *testing.T) {
	if !(Vector{1, 2}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vector{math.Inf(1), 0}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestVectorEqualDifferentDims(t *testing.T) {
	if (Vector{1}).Equal(Vector{1, 2}, 1) {
		t.Error("vectors of different dims reported equal")
	}
}

// Property: dot product is symmetric and bilinear.
func TestVectorDotProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		d := int(n%16) + 1
		v, u, w := randVec(rng, d), randVec(rng, d), randVec(rng, d)
		a := rng.NormFloat64()
		if math.Abs(v.Dot(u)-u.Dot(v)) > 1e-9 {
			return false
		}
		lhs := v.Add(u.Scale(a)).Dot(w)
		rhs := v.Dot(w) + a*u.Dot(w)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ‖v‖² == v·v and triangle inequality.
func TestVectorNormProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n uint8) bool {
		d := int(n%16) + 1
		v, u := randVec(rng, d), randVec(rng, d)
		if math.Abs(v.Norm()*v.Norm()-v.Dot(v)) > 1e-9*(1+v.Dot(v)) {
			return false
		}
		return v.Add(u).Norm() <= v.Norm()+u.Norm()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randVec(rng *rand.Rand, d int) Vector {
	v := NewVector(d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
