// Package metrics provides the measurement helpers the experiments share:
// histograms (Figure 3), the Theorem-3 memory model, and simple descriptive
// statistics over series.
package metrics

import (
	"fmt"
	"math"

	"cludistream/internal/chunk"
	"cludistream/internal/linalg"
)

// Histogram bins attribute attr of data into bins equal-width buckets over
// [lo, hi). Values outside the range clamp into the edge buckets, so mass
// is never silently dropped.
func Histogram(data []linalg.Vector, attr, bins int, lo, hi float64) []int {
	if bins < 1 {
		panic(fmt.Sprintf("metrics: bins = %d", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("metrics: empty range [%v, %v)", lo, hi))
	}
	out := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, x := range data {
		idx := int((x[attr] - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		out[idx]++
	}
	return out
}

// Theorem3Bytes evaluates the paper's per-site memory bound
// O(M + B·K·(d²+d+1)) in bytes (float64 entries): the chunk buffer plus B
// models of K components each.
func Theorem3Bytes(d, k, b int, epsilon, delta float64) int {
	m := chunk.Size(d, epsilon, delta)
	return 8 * (m*d + b*k*(d*d+d+1))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// MinMax returns the extrema of xs; it panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("metrics: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Pearson returns the Pearson correlation of two equal-length series; it
// panics on mismatched or short input. Figure-1 style agreement checks use
// it.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		panic("metrics: Pearson needs two equal series of length ≥ 2")
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Spearman returns the rank correlation of two equal-length series — the
// right agreement measure when one series has heavy-tailed magnitudes (as
// M_merge does when two components nearly coincide).
func Spearman(a, b []float64) float64 {
	return Pearson(ranks(a), ranks(b))
}

func ranks(v []float64) []float64 {
	r := make([]float64, len(v))
	for i := range v {
		var rank float64
		for j := range v {
			if v[j] < v[i] {
				rank++
			}
		}
		r[i] = rank
	}
	return r
}
