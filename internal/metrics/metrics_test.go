package metrics

import (
	"math"
	"testing"

	"cludistream/internal/chunk"
	"cludistream/internal/linalg"
)

func TestHistogramBasic(t *testing.T) {
	data := []linalg.Vector{{0.1}, {0.2}, {0.6}, {0.9}, {0.95}}
	h := Histogram(data, 0, 2, 0, 1)
	if h[0] != 2 || h[1] != 3 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	data := []linalg.Vector{{-5}, {0.5}, {99}}
	h := Histogram(data, 0, 3, 0, 1)
	if h[0] != 1 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	var total int
	for _, c := range h {
		total += c
	}
	if total != len(data) {
		t.Fatal("mass lost")
	}
}

func TestHistogramMultiAttr(t *testing.T) {
	data := []linalg.Vector{{0, 0.9}, {0, 0.1}}
	h := Histogram(data, 1, 2, 0, 1)
	if h[0] != 1 || h[1] != 1 {
		t.Fatalf("attr-1 histogram = %v", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Histogram(nil, 0, 0, 0, 1) },
		func() { Histogram(nil, 0, 2, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTheorem3Bytes(t *testing.T) {
	// Paper defaults: d=4, K=5, ε=0.02, δ=0.01 → M=1567.
	// One model (B=1): 8·(1567·4 + 1·5·(16+4+1)) = 8·(6268+105) = 50984.
	if got := Theorem3Bytes(4, 5, 1, 0.02, 0.01); got != 50984 {
		t.Fatalf("Theorem3Bytes = %d, want 50984", got)
	}
	// Linear in B.
	b1 := Theorem3Bytes(4, 5, 1, 0.02, 0.01)
	b3 := Theorem3Bytes(4, 5, 3, 0.02, 0.01)
	m := chunk.Size(4, 0.02, 0.01)
	if b3-b1 != 2*8*5*(16+4+1) {
		t.Fatalf("B scaling wrong: %d vs %d (M=%d)", b1, b3, m)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v %v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty MinMax did not panic")
		}
	}()
	MinMax(nil)
}

func TestSpearman(t *testing.T) {
	// Any monotone transform preserves rank correlation perfectly.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{1, 8, 27, 64, 125} // a³ — nonlinear but monotone
	if got := Spearman(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman(monotone) = %v, want 1", got)
	}
	if got := Spearman(a, []float64{5, 4, 3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Spearman(reversed) = %v, want -1", got)
	}
	// Spearman is robust to one extreme outlier where Pearson is not.
	c := []float64{1, 2, 3, 4, 1e9}
	if p, s := Pearson(a, c), Spearman(a, c); s < p {
		t.Fatalf("Spearman %v should dominate Pearson %v under an outlier", s, p)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := Pearson(a, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	if got := Pearson(a, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(a, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant series correlation = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Pearson did not panic")
		}
	}()
	Pearson(a, []float64{1})
}

func TestHistogramExactBoundaries(t *testing.T) {
	// x = lo lands in the first bucket; x = hi is outside the half-open
	// [lo, hi) range and must clamp into the last bucket, not vanish.
	data := []linalg.Vector{{0}, {1}}
	h := Histogram(data, 0, 4, 0, 1)
	if h[0] != 1 {
		t.Fatalf("x = lo landed in %v, want bucket 0", h)
	}
	if h[3] != 1 {
		t.Fatalf("x = hi landed in %v, want clamped into bucket 3", h)
	}
	// An interior bucket edge belongs to the bucket it opens.
	h = Histogram([]linalg.Vector{{0.5}}, 0, 2, 0, 1)
	if h[1] != 1 {
		t.Fatalf("x = midpoint landed in %v, want bucket 1", h)
	}
}

func TestTheorem3BytesHandComputed(t *testing.T) {
	// Second hand-computed point away from the paper defaults:
	// d=2, ε=0.1, δ=0.05 → M = ⌈-2·2·ln(0.05·1.95)/0.1⌉ = ⌈93.12⌉ = 94;
	// then 8·(94·2 + 2·3·(4+2+1)) = 8·(188 + 42) = 1840 bytes.
	if m := chunk.Size(2, 0.1, 0.05); m != 94 {
		t.Fatalf("chunk.Size(2, 0.1, 0.05) = %d, want 94", m)
	}
	if got := Theorem3Bytes(2, 3, 2, 0.1, 0.05); got != 1840 {
		t.Fatalf("Theorem3Bytes(2,3,2) = %d, want 1840", got)
	}
}

func TestMeanSingleElement(t *testing.T) {
	if got := Mean([]float64{7.5}); got != 7.5 {
		t.Fatalf("Mean([7.5]) = %v", got)
	}
}

func TestMinMaxSingleElement(t *testing.T) {
	lo, hi := MinMax([]float64{-3.25})
	if lo != -3.25 || hi != -3.25 {
		t.Fatalf("MinMax([x]) = %v %v, want both -3.25", lo, hi)
	}
}

func TestMinMaxEmptyPanicsWithMessage(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MinMax([]) did not panic")
		}
		if s, ok := r.(string); !ok || s != "metrics: MinMax of empty slice" {
			t.Fatalf("panic value = %v", r)
		}
	}()
	MinMax([]float64{})
}
