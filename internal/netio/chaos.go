package netio

import (
	"net"
	"sync"
	"sync/atomic"
)

// ChaosProxy is a TCP fault injector: it forwards byte streams between
// clients and a target address, and can kill every connection after a
// per-connection byte budget or reject traffic entirely during a paused
// window. It is the real-network counterpart of netsim.FaultPlan, used by
// the chaos tests and examples/distributed to exercise the retry and
// reconnect paths of Conn against genuine mid-frame connection loss.
type ChaosProxy struct {
	ln     net.Listener
	target string

	mu        sync.Mutex
	killAfter int64 // forwarded-byte budget per connection pair; 0 = unlimited
	paused    bool
	conns     map[net.Conn]struct{}

	wg      sync.WaitGroup
	closing chan struct{}
}

// NewChaosProxy listens on an ephemeral loopback port and forwards every
// accepted connection to target.
func NewChaosProxy(target string) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{ln: ln, target: target, conns: make(map[net.Conn]struct{}), closing: make(chan struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address; dial this instead of the
// target to route traffic through the fault injector.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// KillAfter makes every future connection pair die after n forwarded
// bytes (both directions combined), tearing connections mid-frame. Zero
// disables the budget.
func (p *ChaosProxy) KillAfter(n int64) {
	p.mu.Lock()
	p.killAfter = n
	p.mu.Unlock()
}

// SetPaused simulates a coordinator outage: while paused, live
// connections are severed and new ones are accepted and immediately
// closed (the listener stays up, as a crashed-but-respawning process
// would look to clients).
func (p *ChaosProxy) SetPaused(paused bool) {
	p.mu.Lock()
	p.paused = paused
	p.mu.Unlock()
	if paused {
		p.KillAll()
	}
}

// KillAll severs every live connection pair.
func (p *ChaosProxy) KillAll() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close stops the proxy and severs everything.
func (p *ChaosProxy) Close() {
	close(p.closing)
	p.ln.Close()
	p.KillAll()
	p.wg.Wait()
}

func (p *ChaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		paused := p.paused
		budget := p.killAfter
		p.mu.Unlock()
		if paused {
			conn.Close()
			continue
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		p.conns[conn] = struct{}{}
		p.conns[upstream] = struct{}{}
		p.mu.Unlock()
		var remaining atomic.Int64
		useBudget := budget > 0
		remaining.Store(budget)
		kill := func() {
			conn.Close()
			upstream.Close()
			p.mu.Lock()
			delete(p.conns, conn)
			delete(p.conns, upstream)
			p.mu.Unlock()
		}
		p.wg.Add(2)
		go p.pipe(upstream, conn, useBudget, &remaining, kill)
		go p.pipe(conn, upstream, useBudget, &remaining, kill)
	}
}

// pipe copies src→dst, charging the shared budget; exhausting it (or any
// error) kills the whole pair.
func (p *ChaosProxy) pipe(dst, src net.Conn, useBudget bool, remaining *atomic.Int64, kill func()) {
	defer p.wg.Done()
	defer kill()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if useBudget && remaining.Add(-int64(n)) < 0 {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
