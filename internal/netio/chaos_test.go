package netio

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/transport"
)

// fastRetry keeps chaos tests quick: failures on loopback surface
// immediately, so tight backoff just shortens the recovery dance.
func fastRetry() RetryPolicy {
	return RetryPolicy{
		AttemptTimeout: 500 * time.Millisecond,
		BaseBackoff:    2 * time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
	}
}

// chaosRecords is a deterministic stream with three drifting regimes —
// enough chunks to emit several NewModel and WeightUpdate messages.
func chaosRecords(n int) []linalg.Vector {
	rng := rand.New(rand.NewSource(42))
	recs := make([]linalg.Vector, n)
	for i := range recs {
		recs[i] = regime(float64(3*i/n) * 40).Sample(rng)
	}
	return recs
}

// encodeMixture canonicalizes a mixture to its exact wire bytes so "same
// final model" means bit-identical, not approximately close.
func encodeMixture(t *testing.T, mix *gaussian.Mixture) []byte {
	t.Helper()
	if mix == nil {
		t.Fatal("nil global mixture")
	}
	return transport.Encode(transport.Message{Kind: transport.MsgNewModel, Mixture: mix})
}

// runDirect replays records against a pristine server with no faults and
// returns the encoded final global mixture — the ground truth every chaos
// run must reproduce exactly.
func runDirect(t *testing.T, records []linalg.Vector) []byte {
	t.Helper()
	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr().String(), newSite(t, 1), 1, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ObserveAll(records); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var out []byte
	srv.Snapshot(func(co *coordinator.Coordinator) {
		out = encodeMixture(t, co.GlobalMixture())
	})
	return out
}

// TestChaosConnectionKills routes a site through a proxy that severs the
// connection after a small byte budget, forcing mid-frame kills, lost
// acks, reconnects and retransmissions. The final global model must be
// byte-identical to the fault-free run.
func TestChaosConnectionKills(t *testing.T) {
	records := chaosRecords(200 * 6)
	want := runDirect(t, records)

	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Logf = func(string, ...any) {} // kill noise is the point

	proxy, err := NewChaosProxy(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	// Budget fits one full NewModel round trip, then dies mid-frame on the
	// next message: every connection delivers a little and is murdered.
	proxy.KillAfter(130)

	c, err := Dial(proxy.Addr(), newSite(t, 1), 1, DialOptions{Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ObserveAll(records); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	d := c.Delivery()
	if d.Reconnects == 0 {
		t.Fatal("chaos run survived without a single reconnect — proxy not biting")
	}
	if d.RetransmitBytes == 0 {
		t.Fatal("no retransmitted bytes under connection kills")
	}
	if d.Dropped != 0 || d.Rejected != 0 {
		t.Fatalf("lost messages: dropped=%d rejected=%d", d.Dropped, d.Rejected)
	}
	ss := srv.DeliveryStats()
	if ss.ApplyErrors != 0 {
		t.Fatalf("apply errors: %d", ss.ApplyErrors)
	}
	// Goodput is counted once per acked message on both ends; the
	// retransmission overhead rides on top.
	if ss.BytesIn < d.GoodputBytes {
		t.Fatalf("server saw %d bytes < client goodput %d", ss.BytesIn, d.GoodputBytes)
	}
	srv.Snapshot(func(co *coordinator.Coordinator) {
		if got := encodeMixture(t, co.GlobalMixture()); !bytes.Equal(got, want) {
			t.Fatalf("final mixture diverged under connection kills:\n got %d bytes\nwant %d bytes", len(got), len(want))
		}
	})
}

// TestChaosSiteCrashRestart crashes the site mid-stream and restarts it
// with a higher epoch, replaying the stream from the beginning (the
// model-list-as-replay-log recovery of Section 6). The coordinator must
// reset the dead incarnation exactly once and converge to the fault-free
// model, bit for bit.
func TestChaosSiteCrashRestart(t *testing.T) {
	records := chaosRecords(200 * 6)
	want := runDirect(t, records)

	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Logf = func(string, ...any) {}

	// First incarnation: epoch 1, dies halfway with updates applied.
	pol := fastRetry()
	pol.Epoch = 1
	c1, err := Dial(srv.Addr().String(), newSite(t, 1), 1, DialOptions{Retry: pol})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.ObserveAll(records[:len(records)/2]); err != nil {
		t.Fatal(err)
	}
	if err := c1.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c1.Close() // crash: the site.Site and its state are gone

	// Restarted incarnation: fresh site (same config and seed), higher
	// epoch, replays the whole stream.
	pol.Epoch = 2
	c2, err := Dial(srv.Addr().String(), newSite(t, 1), 1, DialOptions{Retry: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.ObserveAll(records); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	ss := srv.DeliveryStats()
	if ss.SiteResets != 1 {
		t.Fatalf("site resets = %d, want 1", ss.SiteResets)
	}
	if ss.ApplyErrors != 0 {
		t.Fatalf("apply errors: %d", ss.ApplyErrors)
	}
	srv.Snapshot(func(co *coordinator.Coordinator) {
		if co.Stats().SiteResets != 1 {
			t.Fatalf("coordinator resets = %d", co.Stats().SiteResets)
		}
		if got := encodeMixture(t, co.GlobalMixture()); !bytes.Equal(got, want) {
			t.Fatal("final mixture diverged after crash/restart replay")
		}
	})
}

// TestChaosCoordinatorOutage pauses the proxy mid-stream — a coordinator
// outage as seen from the site. The site must keep clustering and queuing
// while dark, then drain the backlog on recovery and land on the exact
// fault-free model.
func TestChaosCoordinatorOutage(t *testing.T) {
	records := chaosRecords(200 * 6)
	want := runDirect(t, records)

	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Logf = func(string, ...any) {}
	proxy, err := NewChaosProxy(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := Dial(proxy.Addr(), newSite(t, 1), 1, DialOptions{Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	third := len(records) / 3
	if err := c.ObserveAll(records[:third]); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Coordinator goes dark; the site streams on regardless.
	proxy.SetPaused(true)
	if err := c.ObserveAll(records[third : 2*third]); err != nil {
		t.Fatalf("observe during outage: %v", err)
	}
	if d := c.Delivery(); d.Queued == 0 {
		t.Fatal("outage produced no backlog — mid-outage chunks emitted nothing?")
	}

	// Recovery: the backlog drains in order, then the rest of the stream.
	proxy.SetPaused(false)
	if err := c.ObserveAll(records[2*third:]); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	if d := c.Delivery(); d.Reconnects == 0 {
		t.Fatal("recovered without reconnecting")
	}
	srv.Snapshot(func(co *coordinator.Coordinator) {
		if got := encodeMixture(t, co.GlobalMixture()); !bytes.Equal(got, want) {
			t.Fatal("final mixture diverged across the outage")
		}
	})
}
