package netio

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
	"cludistream/internal/transport"
	"cludistream/internal/window"
)

// RetryPolicy tunes fault-tolerant delivery on a Conn. The zero value
// selects the defaults noted on each field.
type RetryPolicy struct {
	// DialTimeout bounds each TCP connect (default 10s).
	DialTimeout time.Duration
	// AttemptTimeout bounds one frame+ack round trip (default 5s); a
	// round trip that exceeds it counts as a connection failure.
	AttemptTimeout time.Duration
	// BaseBackoff is the first reconnect delay (default 50ms); it doubles
	// per consecutive failure up to MaxBackoff (default 2s), with
	// deterministic jitter drawn from Rand in [d/2, d).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts caps transmission attempts per message; a message that
	// fails that many round trips is dropped (counted in
	// DeliveryStats.Dropped). Zero retries forever — the default, since
	// dropping updates silently skews the global model.
	MaxAttempts int
	// OutboxLimit bounds the number of queued messages (default 4096).
	// Overflow drops the oldest queued message.
	OutboxLimit int
	// Epoch is the sender's incarnation number (default 1). A process
	// that restarts after a crash must use a strictly higher epoch so the
	// coordinator discards the dead incarnation's state.
	Epoch uint32
	// SiteID, when non-zero, enables the restart handshake: each new
	// connection opens with a hello frame, and the coordinator's watermark
	// reply prunes every outbox entry it has already durably applied, so a
	// reconnect after a coordinator restart retransmits only the suffix.
	// Dial sets this automatically from the client's site id.
	SiteID int32
	// Rand supplies backoff jitter; nil uses a fixed-seed source (still
	// deterministic, just shared shape across conns).
	Rand *rand.Rand
	// Sleep replaces time.Sleep in blocking flushes (test hook).
	Sleep func(time.Duration)
	// Telemetry, when non-nil, mirrors DeliveryStats into net.* counters
	// and journals reconnects, backoff waits and drops.
	Telemetry *telemetry.Registry
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.DialTimeout <= 0 {
		p.DialTimeout = 10 * time.Second
	}
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = 5 * time.Second
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = 2 * time.Second
		if p.MaxBackoff < p.BaseBackoff {
			p.MaxBackoff = p.BaseBackoff
		}
	}
	if p.OutboxLimit <= 0 {
		p.OutboxLimit = 4096
	}
	if p.Epoch == 0 {
		p.Epoch = 1
	}
	if p.Rand == nil {
		p.Rand = rand.New(rand.NewSource(1))
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// DeliveryStats counts the work of fault-tolerant delivery.
type DeliveryStats struct {
	// Acked is the number of messages acknowledged by the coordinator.
	Acked int
	// GoodputBytes is the payload bytes of acked messages, counted once
	// per message regardless of how many attempts it took.
	GoodputBytes int
	// RetransmitBytes is the payload bytes of second and later attempts —
	// the wire overhead of fault tolerance.
	RetransmitBytes int
	// Retries is the number of failed round-trip attempts.
	Retries int
	// Reconnects is the number of successful re-dials after a broken
	// connection.
	Reconnects int
	// Dropped counts messages abandoned (outbox overflow or MaxAttempts).
	Dropped int
	// Rejected counts messages the coordinator refused (ErrRemote).
	Rejected int
	// HandshakePruned counts queued messages the restart handshake removed
	// because the coordinator's durable watermark already covered them —
	// retransmissions the handshake saved.
	HandshakePruned int
	// Queued is the current outbox depth.
	Queued int
}

// pending is one queued outbox entry. Epoch and seq mirror the encoded
// payload's delivery metadata so the restart handshake can prune without
// decoding. trace/span carry the producing chunk's trace context
// side-band: the payload itself is encoded suffix-free, and the 16-byte
// trace suffix is appended per transmission only when the connection has
// negotiated the capability.
type pending struct {
	payload  []byte
	epoch    uint32
	seq      uint64
	attempts int
	trace    uint64
	span     uint64
}

// connTele holds a Conn's transport instruments (all nil ⇒ no-op). The
// counters aggregate across every Conn sharing a registry, so a daemon's
// snapshot shows deployment-wide delivery behaviour.
type connTele struct {
	reg         *telemetry.Registry
	sends       *telemetry.Counter
	acked       *telemetry.Counter
	goodput     *telemetry.Counter
	retransmit  *telemetry.Counter
	retries     *telemetry.Counter
	reconnects  *telemetry.Counter
	dropped     *telemetry.Counter
	rejected    *telemetry.Counter
	backoffs    *telemetry.Counter
	backoffSecs *telemetry.Histogram
	depth       *telemetry.Gauge
	highWater   *telemetry.Gauge
	storms      *telemetry.Counter
	pruned      *telemetry.Counter
}

func newConnTele(reg *telemetry.Registry) connTele {
	if reg == nil {
		return connTele{}
	}
	return connTele{
		reg:        reg,
		sends:      reg.Counter("net.sends"),
		acked:      reg.Counter("net.acked"),
		goodput:    reg.Counter("net.goodput_bytes"),
		retransmit: reg.Counter("net.retransmit_bytes"),
		retries:    reg.Counter("net.retries"),
		reconnects: reg.Counter("net.reconnects"),
		dropped:    reg.Counter("net.dropped"),
		rejected:   reg.Counter("net.rejected"),
		backoffs:   reg.Counter("net.backoff_waits"),
		backoffSecs: reg.Histogram("net.backoff_seconds",
			0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10),
		depth:     reg.Gauge("net.outbox_depth"),
		highWater: reg.Gauge("net.outbox_high_water"),
		storms:    reg.Counter("net.reconnect_storms"),
		pruned:    reg.Counter("net.handshake_pruned"),
	}
}

// Conn is a fault-tolerant protocol connection: messages are assigned
// per-connection monotone sequence numbers, queued in a bounded outbox,
// and delivered with frame+ack round trips. A broken connection is
// re-dialed with capped exponential backoff; queued messages survive the
// outage and drain in order on reconnect, and the receiver dedupes by
// (site, epoch, seq), so retransmitted frames are exactly-once in effect.
//
// Send never blocks on an unreachable coordinator — it queues and returns
// — so a site degrades gracefully to local-only clustering while
// disconnected. Call Flush to block until the outbox drains. Safe for
// concurrent senders.
type Conn struct {
	mu   sync.Mutex
	addr string
	pol  RetryPolicy

	nc        net.Conn // nil while disconnected
	nextSeq   uint64
	outbox    []pending
	fails     int       // consecutive connection failures (backoff exponent)
	notBefore time.Time // earliest next reconnect attempt

	// helloDone records that the restart handshake ran on the current
	// connection (only meaningful when pol.SiteID != 0).
	helloDone bool
	// progressed / noProgress detect reconnect storms: a reconnect with no
	// ack since the previous one extends a no-progress streak, and a
	// streak of stormStreak reconnects counts one storm.
	progressed bool
	noProgress int

	highWater int // peak outbox depth
	stats     DeliveryStats
	tele      connTele

	// tracer is the registry's tracer (nil when tracing is off). traceOK
	// records that the current connection's handshake granted the
	// trace-suffix capability; it resets with every reconnect, so a
	// coordinator downgrade simply stops the suffixes.
	tracer  *telemetry.Tracer
	traceOK bool
}

// stormStreak is how many consecutive no-progress reconnects count as a
// reconnect storm (a flapping link or a coordinator that accepts and
// immediately drops connections).
const stormStreak = 3

// DialConn opens a protocol connection to a Server with the default
// retry policy.
func DialConn(addr string, timeout time.Duration) (*Conn, error) {
	return DialConnRetry(addr, RetryPolicy{DialTimeout: timeout})
}

// DialConnRetry opens a protocol connection with an explicit retry
// policy. The initial dial is eager: an unreachable coordinator is
// reported immediately so callers can apply their own startup policy.
func DialConnRetry(addr string, pol RetryPolicy) (*Conn, error) {
	pol = pol.withDefaults()
	nc, err := net.DialTimeout("tcp", addr, pol.DialTimeout)
	if err != nil {
		return nil, err
	}
	return &Conn{addr: addr, pol: pol, nc: nc, tele: newConnTele(pol.Telemetry), tracer: pol.Telemetry.Tracer()}, nil
}

// Send queues one message for delivery and opportunistically drains the
// outbox. It returns nil when the message was delivered or remains
// queued for a later retry, and ErrRemote when the coordinator rejected
// a message during this drain.
func (c *Conn) Send(msg transport.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextSeq++
	msg.Seq = c.nextSeq
	msg.Epoch = c.pol.Epoch
	// The payload is encoded suffix-free; whether the trace suffix goes on
	// the wire is the connection's per-transmission capability decision
	// (see transmit), so the queued bytes stay bit-identical to v1/v2.
	trace, span := msg.TraceID, msg.SpanID
	msg.TraceID, msg.SpanID = 0, 0
	if c.tracer != nil && trace != 0 {
		now := c.tracer.Now()
		c.tracer.Record(trace, span, "enqueue",
			int(msg.SiteID), int(msg.ModelID), now, now, msg.WireSize(), "")
	}
	if len(c.outbox) >= c.pol.OutboxLimit {
		// Drop the oldest entry: it is the most stale, and the site's
		// model list will re-derive the coordinator's view anyway.
		c.outbox[0] = pending{}
		c.outbox = c.outbox[1:]
		c.stats.Dropped++
		c.tele.dropped.Inc()
	}
	c.outbox = append(c.outbox, pending{payload: transport.Encode(msg), epoch: msg.Epoch, seq: msg.Seq, trace: trace, span: span})
	c.tele.sends.Inc()
	if n := len(c.outbox); n > c.highWater {
		c.highWater = n
		c.tele.highWater.Set(float64(n))
	}
	err := c.flushLocked(false, time.Time{})
	c.tele.depth.Set(float64(len(c.outbox)))
	return err
}

// Flush blocks until the outbox is empty, retrying with backoff. A
// non-positive timeout waits forever. It returns ErrRemote if the
// coordinator rejected a message, or a timeout error when messages
// remain queued at the deadline.
func (c *Conn) Flush(timeout time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	err := c.flushLocked(true, deadline)
	c.tele.depth.Set(float64(len(c.outbox)))
	if err != nil {
		return err
	}
	if n := len(c.outbox); n > 0 {
		return fmt.Errorf("netio: flush timed out with %d messages queued", n)
	}
	return nil
}

// flushLocked drains the outbox head-first. In non-blocking mode it
// stops at the first connection failure or unexpired backoff window; in
// blocking mode it sleeps through backoff until the outbox empties or
// the deadline passes. Callers hold c.mu.
func (c *Conn) flushLocked(block bool, deadline time.Time) error {
	var rejected bool
	for len(c.outbox) > 0 {
		now := time.Now()
		if !deadline.IsZero() && now.After(deadline) {
			break
		}
		if c.nc == nil {
			if wait := c.notBefore.Sub(now); wait > 0 {
				if !block {
					break
				}
				if rem := deadline.Sub(now); !deadline.IsZero() && rem < wait {
					wait = rem
				}
				c.pol.Sleep(wait)
				continue
			}
			nc, err := net.DialTimeout("tcp", c.addr, c.pol.DialTimeout)
			if err != nil {
				c.fails++
				c.armBackoff()
				if !block {
					break
				}
				continue
			}
			c.nc = nc
			c.helloDone = false
			c.stats.Reconnects++
			c.tele.reconnects.Inc()
			if c.tele.reg != nil {
				c.tele.reg.Record(telemetry.Event{
					Kind: "net-reconnect", N: c.fails, Note: c.addr,
				})
			}
			// Storm detection: reconnecting without a single ack since the
			// previous reconnect means the link is churning, not working.
			if c.progressed {
				c.noProgress = 0
			} else {
				c.noProgress++
				if c.noProgress == stormStreak {
					c.tele.storms.Inc()
					if c.tele.reg != nil {
						c.tele.reg.Record(telemetry.Event{
							Kind: "net-reconnect-storm", N: c.noProgress, Note: c.addr,
						})
					}
				}
			}
			c.progressed = false
		}
		if c.pol.SiteID != 0 && !c.helloDone {
			if err := c.handshake(); err != nil {
				c.stats.Retries++
				c.tele.retries.Inc()
				c.nc.Close()
				c.nc = nil
				c.fails++
				c.armBackoff()
				if !block {
					break
				}
				continue
			}
			continue // the prune may have emptied the outbox
		}
		head := &c.outbox[0]
		head.attempts++
		if head.attempts > 1 {
			c.stats.RetransmitBytes += len(head.payload)
			c.tele.retransmit.Add(int64(len(head.payload)))
		}
		err := c.transmit(head)
		switch {
		case err == nil:
			c.stats.Acked++
			c.stats.GoodputBytes += len(head.payload)
			c.tele.acked.Inc()
			c.tele.goodput.Add(int64(len(head.payload)))
			c.popHead()
			c.fails = 0
			c.progressed = true
		case errors.Is(err, ErrRemote):
			// The coordinator decoded the frame and refused it; the
			// connection is healthy and retrying cannot help.
			c.stats.Rejected++
			c.tele.rejected.Inc()
			c.popHead()
			rejected = true
			c.fails = 0
		default:
			c.stats.Retries++
			c.tele.retries.Inc()
			c.nc.Close()
			c.nc = nil
			c.helloDone = false
			c.fails++
			c.armBackoff()
			if c.pol.MaxAttempts > 0 && c.outbox[0].attempts >= c.pol.MaxAttempts {
				c.stats.Dropped++
				c.tele.dropped.Inc()
				c.popHead()
			}
			if !block {
				goto out
			}
		}
	}
out:
	if rejected {
		return ErrRemote
	}
	return nil
}

// handshake runs the restart handshake on a fresh connection: send a
// hello, read the coordinator's durable (epoch, maxSeq) watermark for
// this site, and prune every outbox entry the watermark already covers —
// after a coordinator restart, only the unapplied suffix is retransmitted.
// Callers hold c.mu.
func (c *Conn) handshake() error {
	hello := transport.Message{Kind: transport.MsgHello, SiteID: c.pol.SiteID}
	if c.tracer != nil {
		// Request the trace-suffix capability. Legacy servers ignore a
		// hello's Count, so the bit is invisible to them.
		hello.Count = helloTraceBit
	}
	payload := transport.Encode(hello)
	c.nc.SetDeadline(time.Now().Add(c.pol.AttemptTimeout))
	if err := writeFrame(c.nc, payload); err != nil {
		return err
	}
	epoch, maxSeq, traced, err := readWatermarkAck(c.nc)
	if err != nil {
		return err
	}
	c.traceOK = traced && c.tracer != nil
	c.pruneOutbox(epoch, maxSeq)
	c.helloDone = true
	return nil
}

// pruneOutbox drops queued entries at or below the coordinator's durable
// watermark: lower epochs are from incarnations the coordinator has
// already superseded, and (epoch, seq <= maxSeq) entries were applied
// before the restart.
func (c *Conn) pruneOutbox(epoch uint32, maxSeq uint64) {
	kept := c.outbox[:0]
	for _, p := range c.outbox {
		if p.epoch < epoch || (p.epoch == epoch && p.seq <= maxSeq) {
			c.stats.HandshakePruned++
			c.tele.pruned.Inc()
			continue
		}
		kept = append(kept, p)
	}
	for i := len(kept); i < len(c.outbox); i++ {
		c.outbox[i] = pending{} // release pruned payloads
	}
	c.outbox = kept
}

// transmit performs one frame+ack round trip for the outbox head,
// attaching the 16-byte trace suffix when the connection negotiated the
// capability and recording a wire-send span per attempt (retransmits
// included) under the producing chunk's trace.
func (c *Conn) transmit(head *pending) error {
	payload := head.payload
	if c.traceOK && head.trace != 0 {
		payload = transport.AppendTraceSuffix(append([]byte(nil), payload...), head.trace, head.span)
	}
	ref := c.tracer.Begin(head.trace, head.span, "wire-send", 0, 0)
	err := c.roundTrip(payload)
	note := ""
	if head.attempts > 1 {
		note = "retransmit"
	}
	if err != nil {
		if note == "" {
			note = "dropped"
		} else {
			note = "retransmit-dropped"
		}
	}
	ref.End(len(payload), note)
	return err
}

// roundTrip performs one frame+ack exchange under the attempt deadline.
func (c *Conn) roundTrip(payload []byte) error {
	c.nc.SetDeadline(time.Now().Add(c.pol.AttemptTimeout))
	if err := writeFrame(c.nc, payload); err != nil {
		return err
	}
	return readAck(c.nc)
}

// armBackoff schedules the earliest next reconnect attempt: capped
// exponential in the consecutive-failure count with jitter in [d/2, d).
func (c *Conn) armBackoff() {
	d := c.pol.BaseBackoff << uint(c.fails-1)
	if d <= 0 || d > c.pol.MaxBackoff {
		d = c.pol.MaxBackoff
	}
	d = d/2 + time.Duration(c.pol.Rand.Int63n(int64(d/2)+1))
	c.notBefore = time.Now().Add(d)
	c.tele.backoffs.Inc()
	c.tele.backoffSecs.Observe(d.Seconds())
}

func (c *Conn) popHead() {
	c.outbox[0] = pending{}
	c.outbox = c.outbox[1:]
}

// Stats returns (goodput bytes, messages acknowledged) — the pre-retry
// accounting surface, preserved for the cost experiments.
func (c *Conn) Stats() (bytesOut, messages int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.GoodputBytes, c.stats.Acked
}

// Delivery returns the full fault-tolerance counters.
func (c *Conn) Delivery() DeliveryStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Queued = len(c.outbox)
	return s
}

// Close closes the underlying connection. Queued messages are not
// flushed — call Flush first if delivery matters.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nc == nil {
		return nil
	}
	err := c.nc.Close()
	c.nc = nil
	c.helloDone = false
	return err
}

// Client is the remote-site endpoint: it owns a site.Site, feeds records to
// it, and ships every resulting update to the coordinator over TCP. It is
// safe for use from one goroutine (a site observes one stream; run one
// Client per stream).
type Client struct {
	conn    *Conn
	st      *site.Site
	siteID  int
	tracker *window.Tracker
}

// DialOptions tunes Dial.
type DialOptions struct {
	// Timeout bounds the TCP connect (default 10s); shorthand for
	// Retry.DialTimeout.
	Timeout time.Duration
	// Retry tunes fault-tolerant delivery (zero value: defaults).
	Retry RetryPolicy
	// SlidingHorizonChunks enables sliding-window deletions (Section 7)
	// with the given horizon; zero keeps landmark behaviour.
	SlidingHorizonChunks int
}

// Dial connects to the coordinator at addr and wraps st. The site's
// SiteID identifies this client in every message.
func Dial(addr string, st *site.Site, siteID int, opts DialOptions) (*Client, error) {
	if opts.SlidingHorizonChunks < 0 {
		return nil, fmt.Errorf("netio: sliding horizon %d chunks", opts.SlidingHorizonChunks)
	}
	pol := opts.Retry
	if pol.DialTimeout == 0 {
		pol.DialTimeout = opts.Timeout
	}
	if pol.SiteID == 0 {
		pol.SiteID = int32(siteID) // enable the restart handshake
	}
	conn, err := DialConnRetry(addr, pol)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, st: st, siteID: siteID}
	if opts.SlidingHorizonChunks > 0 {
		tr, err := window.NewTracker(st, opts.SlidingHorizonChunks)
		if err != nil {
			conn.Close()
			return nil, err
		}
		c.tracker = tr
	}
	return c, nil
}

// Site returns the wrapped site processor.
func (c *Client) Site() *site.Site { return c.st }

// Observe feeds one record to the site and queues any updates (and
// sliding-window deletions) it produced for delivery. Every update is
// queued even when an earlier one errors — the outbox, not the caller,
// owns retransmission — so a delivery failure can never lose the rest of
// a chunk's updates. The returned error is the site's own error, or the
// first delivery rejection.
func (c *Client) Observe(x linalg.Vector) error {
	ups, err := c.st.Observe(x)
	if err != nil {
		return err
	}
	var firstErr error
	for _, u := range ups {
		if err := c.send(transport.FromSiteUpdate(u)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.tracker != nil {
		// Deletions carry the trace of the chunk whose completion expired
		// them (the site mints traces; LastTrace is zeros when tracing is
		// off, leaving the messages untraced).
		delTrace, delSpan := c.st.LastTrace()
		for _, d := range c.tracker.Expire(c.siteID) {
			msg := transport.Message{
				Kind:    transport.MsgDeletion,
				SiteID:  int32(d.SiteID),
				ModelID: int32(d.ModelID),
				Count:   int64(d.Count),
				TraceID: delTrace,
				SpanID:  delSpan,
			}
			if err := c.send(msg); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// ObserveAll feeds a batch.
func (c *Client) ObserveAll(xs []linalg.Vector) error {
	for _, x := range xs {
		if err := c.Observe(x); err != nil {
			return err
		}
	}
	return nil
}

// send queues one message on the fault-tolerant connection.
func (c *Client) send(msg transport.Message) error {
	return c.conn.Send(msg)
}

// Flush blocks until every queued update is delivered (see Conn.Flush).
func (c *Client) Flush(timeout time.Duration) error {
	return c.conn.Flush(timeout)
}

// Stats returns (goodput bytes, messages acknowledged).
func (c *Client) Stats() (bytesOut, messages int) {
	return c.conn.Stats()
}

// Delivery returns the fault-tolerance counters.
func (c *Client) Delivery() DeliveryStats { return c.conn.Delivery() }

// Close closes the connection. The wrapped site remains usable locally.
func (c *Client) Close() error { return c.conn.Close() }
