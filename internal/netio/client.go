package netio

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/transport"
	"cludistream/internal/window"
)

// Conn is a bare protocol connection: frame-and-ack transport of wire
// messages without any site attached. Aggregator nodes (cmd/aggd) use it
// to upload their merged models; Client builds on it. Safe for concurrent
// senders (round trips are serialized).
type Conn struct {
	mu   sync.Mutex // serializes frame+ack round trips
	conn net.Conn

	bytesOut int
	messages int
}

// DialConn opens a bare protocol connection to a Server.
func DialConn(addr string, timeout time.Duration) (*Conn, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Conn{conn: c}, nil
}

// Send performs one synchronous frame+ack round trip.
func (c *Conn) Send(msg transport.Message) error {
	payload := transport.Encode(msg)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, payload); err != nil {
		return fmt.Errorf("netio: send %v: %w", msg.Kind, err)
	}
	if err := readAck(c.conn); err != nil {
		return fmt.Errorf("netio: %v: %w", msg.Kind, err)
	}
	c.bytesOut += len(payload)
	c.messages++
	return nil
}

// Stats returns (bytes sent, messages acknowledged).
func (c *Conn) Stats() (bytesOut, messages int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesOut, c.messages
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// Client is the remote-site endpoint: it owns a site.Site, feeds records to
// it, and ships every resulting update to the coordinator over TCP. It is
// safe for use from one goroutine (a site observes one stream; run one
// Client per stream).
type Client struct {
	conn    *Conn
	st      *site.Site
	siteID  int
	tracker *window.Tracker
}

// DialOptions tunes Dial.
type DialOptions struct {
	// Timeout bounds the TCP connect (default 10s).
	Timeout time.Duration
	// SlidingHorizonChunks enables sliding-window deletions (Section 7)
	// with the given horizon; zero keeps landmark behaviour.
	SlidingHorizonChunks int
}

// Dial connects to the coordinator at addr and wraps st. The site's
// SiteID identifies this client in every message.
func Dial(addr string, st *site.Site, siteID int, opts DialOptions) (*Client, error) {
	if opts.SlidingHorizonChunks < 0 {
		return nil, fmt.Errorf("netio: sliding horizon %d chunks", opts.SlidingHorizonChunks)
	}
	conn, err := DialConn(addr, opts.Timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, st: st, siteID: siteID}
	if opts.SlidingHorizonChunks > 0 {
		tr, err := window.NewTracker(st, opts.SlidingHorizonChunks)
		if err != nil {
			conn.Close()
			return nil, err
		}
		c.tracker = tr
	}
	return c, nil
}

// Site returns the wrapped site processor.
func (c *Client) Site() *site.Site { return c.st }

// Observe feeds one record to the site and transmits any updates (and
// sliding-window deletions) it produced.
func (c *Client) Observe(x linalg.Vector) error {
	ups, err := c.st.Observe(x)
	if err != nil {
		return err
	}
	for _, u := range ups {
		if err := c.send(transport.FromSiteUpdate(u)); err != nil {
			return err
		}
	}
	if c.tracker != nil {
		for _, d := range c.tracker.Expire(c.siteID) {
			msg := transport.Message{
				Kind:    transport.MsgDeletion,
				SiteID:  int32(d.SiteID),
				ModelID: int32(d.ModelID),
				Count:   int64(d.Count),
			}
			if err := c.send(msg); err != nil {
				return err
			}
		}
	}
	return nil
}

// ObserveAll feeds a batch.
func (c *Client) ObserveAll(xs []linalg.Vector) error {
	for _, x := range xs {
		if err := c.Observe(x); err != nil {
			return err
		}
	}
	return nil
}

// send performs one synchronous frame+ack round trip.
func (c *Client) send(msg transport.Message) error {
	return c.conn.Send(msg)
}

// Stats returns (bytes sent, messages acknowledged).
func (c *Client) Stats() (bytesOut, messages int) {
	return c.conn.Stats()
}

// Close closes the connection. The wrapped site remains usable locally.
func (c *Client) Close() error { return c.conn.Close() }
