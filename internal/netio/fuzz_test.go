package netio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame mirrors internal/transport's decoder fuzz: readFrame must
// never panic, never allocate more than the frame cap, and must round-trip
// anything writeFrame produced.
func FuzzReadFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			f.Fatalf("seed frame: %v", err)
		}
		return buf.Bytes()
	}
	f.Add(frame(nil))
	f.Add(frame([]byte{1}))
	f.Add(frame(bytes.Repeat([]byte{0xAB}, 300)))
	// Truncated: header promises 100 bytes, body holds 3.
	f.Add(append([]byte{0, 0, 0, 100}, 1, 2, 3))
	// Header-only, and a cut inside the header.
	f.Add([]byte{0, 0, 0, 5})
	f.Add([]byte{0, 0})
	// Oversized length prefix: must be rejected before allocation.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(append([]byte{0x04, 0x00, 0x00, 0x01}, bytes.Repeat([]byte{0}, 64)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			if payload != nil {
				t.Fatal("non-nil payload alongside error")
			}
			return
		}
		// A successful read must agree with the header and re-encode to a
		// prefix of the input.
		if len(data) < 4 {
			t.Fatal("success from short input")
		}
		n := binary.BigEndian.Uint32(data[:4])
		if uint32(len(payload)) != n {
			t.Fatalf("payload %d bytes, header says %d", len(payload), n)
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:4+len(payload)]) {
			t.Fatal("re-encoded frame differs from input prefix")
		}
	})
}

// TestReadFrameOversizedPrefix pins the property the fuzz seeds probe: a
// corrupt length prefix beyond maxFrameSize fails with ErrFrameTooLarge
// without attempting the allocation.
func TestReadFrameOversizedPrefix(t *testing.T) {
	for _, n := range []uint32{maxFrameSize + 1, 1 << 30, 0xFFFFFFFF} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		_, err := readFrame(bytes.NewReader(hdr[:]))
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("prefix %d: err = %v, want ErrFrameTooLarge", n, err)
		}
	}
	if err := writeFrame(io.Discard, make([]byte, maxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("writeFrame oversize: %v", err)
	}
}

// FuzzReadAck: the ack decoder accepts exactly one byte value as success.
func FuzzReadAck(f *testing.F) {
	f.Add([]byte{ackOK})
	f.Add([]byte{ackErr})
	f.Add([]byte{0x7F})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		err := readAck(bytes.NewReader(data))
		switch {
		case len(data) == 0:
			if err == nil {
				t.Fatal("ack from empty stream")
			}
		case data[0] == ackOK:
			if err != nil {
				t.Fatalf("ackOK rejected: %v", err)
			}
		case data[0] == ackErr:
			if !errors.Is(err, ErrRemote) {
				t.Fatalf("ackErr: err = %v, want ErrRemote", err)
			}
		default:
			if err == nil {
				t.Fatalf("invalid ack byte 0x%02x accepted", data[0])
			}
		}
	})
}
