package netio

import (
	"bytes"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

func newCoord(t *testing.T) *coordinator.Coordinator {
	t.Helper()
	c, err := coordinator.New(coordinator.Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newSite(t *testing.T, id int) *site.Site {
	t.Helper()
	s, err := site.New(site.Config{
		SiteID: id, Dim: 1, K: 2, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
		Seed: int64(id), ChunkSize: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func regime(mean float64) *gaussian.Mixture {
	return gaussian.MustMixture(
		[]float64{0.5, 0.5},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{mean - 2}, 0.5),
			gaussian.Spherical(linalg.Vector{mean + 2}, 0.5),
		})
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{7}, 100000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame corrupted: %d bytes vs %d", len(got), len(want))
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	// A forged length prefix above the cap must be rejected without
	// allocating the claimed size.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
	if err := writeFrame(&buf, make([]byte, maxFrameSize+1)); err != ErrFrameTooLarge {
		t.Fatalf("write err = %v", err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	_ = writeAck(&buf, true)
	_ = writeAck(&buf, false)
	if err := readAck(&buf); err != nil {
		t.Fatalf("ok ack: %v", err)
	}
	if err := readAck(&buf); err != ErrRemote {
		t.Fatalf("err ack: %v", err)
	}
	buf.Write([]byte{0x42})
	if err := readAck(&buf); err == nil {
		t.Fatal("invalid ack byte accepted")
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const sites = 3
	clients := make([]*Client, sites)
	for i := range clients {
		c, err := Dial(srv.Addr().String(), newSite(t, i+1), i+1, DialOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	rng := rand.New(rand.NewSource(1))
	mix := regime(0)
	for rec := 0; rec < 200*3; rec++ {
		for _, c := range clients {
			if err := c.Observe(mix.Sample(rng)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Synchronous acks mean everything sent has been applied.
	_, messages, applyErrs := srv.Stats()
	if messages != 3 {
		t.Fatalf("server applied %d messages, want 3", messages)
	}
	if applyErrs != 0 {
		t.Fatalf("apply errors: %d", applyErrs)
	}
	srv.Snapshot(func(c *coordinator.Coordinator) {
		if c.NumModels() != 3 {
			t.Fatalf("coordinator has %d models", c.NumModels())
		}
		gm := c.GlobalMixture()
		if gm == nil {
			t.Fatal("no global mixture")
		}
		if ll := gm.AvgLogLikelihood([]linalg.Vector{{-2}, {2}}); ll < -4 {
			t.Fatalf("global LL = %v", ll)
		}
	})

	// Client accounting matches server accounting.
	var clientBytes int
	for _, c := range clients {
		b, m := c.Stats()
		clientBytes += b
		if m != 1 {
			t.Fatalf("client messages = %d", m)
		}
	}
	serverBytes, _, _ := srv.Stats()
	if clientBytes != serverBytes {
		t.Fatalf("byte accounting: clients %d vs server %d", clientBytes, serverBytes)
	}
}

func TestConcurrentClients(t *testing.T) {
	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const sites = 8
	var wg sync.WaitGroup
	errs := make(chan error, sites)
	for i := 0; i < sites; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(srv.Addr().String(), newSite(t, id), id, DialOptions{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(id)))
			mix := regime(float64(id) * 30)
			for rec := 0; rec < 200*2; rec++ {
				if err := c.Observe(mix.Sample(rng)); err != nil {
					errs <- err
					return
				}
			}
		}(i + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	srv.Snapshot(func(c *coordinator.Coordinator) {
		if c.NumModels() != sites {
			t.Fatalf("models = %d, want %d", c.NumModels(), sites)
		}
	})
}

func TestSlidingWindowDeletionsOverTCP(t *testing.T) {
	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	st := newSite(t, 1)
	// Sliding windows need the coordinator's weights synced to the site
	// counters.
	c, err := Dial(srv.Addr().String(), mustSlidingSite(t), 1, DialOptions{SlidingHorizonChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = st

	rng := rand.New(rand.NewSource(2))
	mix := regime(0)
	for rec := 0; rec < 200*6; rec++ {
		if err := c.Observe(mix.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Snapshot(func(co *coordinator.Coordinator) {
		var total float64
		for _, g := range co.Groups() {
			total += g.Weight()
		}
		if math.Abs(total-400) > 1e-6 {
			t.Fatalf("coordinator mass = %v, want 400 (horizon 2 × 200)", total)
		}
	})
}

func mustSlidingSite(t *testing.T) *site.Site {
	t.Helper()
	s, err := site.New(site.Config{
		SiteID: 1, Dim: 1, K: 2, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
		Seed: 1, ChunkSize: 200, EmitFitWeightUpdates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUploaderTwoLevelHierarchy(t *testing.T) {
	// Root coordinator ← aggregator ← site: the §7 tree over real TCP.
	rootCoord := newCoord(t)
	rootSrv, err := NewServer("127.0.0.1:0", rootCoord)
	if err != nil {
		t.Fatal(err)
	}
	defer rootSrv.Close()

	aggCoord := newCoord(t)
	aggSrv, err := NewServer("127.0.0.1:0", aggCoord)
	if err != nil {
		t.Fatal(err)
	}
	defer aggSrv.Close()

	upConn, err := DialConn(rootSrv.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer upConn.Close()
	up := NewUploader(upConn, 100)

	// Two sites feed the aggregator.
	rng := rand.New(rand.NewSource(5))
	for i := 1; i <= 2; i++ {
		c, err := Dial(aggSrv.Addr().String(), newSite(t, i), i, DialOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mix := regime(float64(i-1) * 40)
		for rec := 0; rec < 200*2; rec++ {
			if err := c.Observe(mix.Sample(rng)); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
	}

	// Sync the aggregator's merged model upward.
	syncOnce := func() bool {
		var sent bool
		aggSrv.Snapshot(func(co *coordinator.Coordinator) {
			var total float64
			for _, g := range co.Groups() {
				total += g.Weight()
			}
			var err error
			sent, err = up.Sync(co.GlobalMixture(), total)
			if err != nil {
				t.Fatal(err)
			}
		})
		return sent
	}
	if !syncOnce() {
		t.Fatal("first sync transmitted nothing")
	}
	// Unchanged model: second sync must be silent.
	if syncOnce() {
		t.Fatal("unchanged model re-uploaded")
	}
	rootSrv.Snapshot(func(co *coordinator.Coordinator) {
		if co.NumModels() != 1 {
			t.Fatalf("root has %d models, want the aggregator's 1", co.NumModels())
		}
		gm := co.GlobalMixture()
		for _, mean := range []float64{0, 40} {
			probe := []linalg.Vector{{mean - 2}, {mean + 2}}
			if ll := gm.AvgLogLikelihood(probe); ll < -8 {
				t.Fatalf("regime at %v missing from root: LL=%v", mean, ll)
			}
		}
	})

	// A third site with a new regime changes the aggregator's model; the
	// next sync must replace the root's copy (deletion + new model).
	c3, err := Dial(aggSrv.Addr().String(), newSite(t, 3), 3, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mix := regime(-40)
	for rec := 0; rec < 200*2; rec++ {
		if err := c3.Observe(mix.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	c3.Close()
	if !syncOnce() {
		t.Fatal("changed model not re-uploaded")
	}
	rootSrv.Snapshot(func(co *coordinator.Coordinator) {
		if co.NumModels() != 1 {
			t.Fatalf("stale upload not replaced: %d models", co.NumModels())
		}
		probe := []linalg.Vector{{-42}, {-38}}
		if ll := co.GlobalMixture().AvgLogLikelihood(probe); ll < -8 {
			t.Fatalf("new regime missing after re-upload: LL=%v", ll)
		}
	})
}

func TestServerRejectsGarbage(t *testing.T) {
	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {} // expected noise
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := readAck(conn); err != ErrRemote {
		t.Fatalf("garbage frame ack = %v, want ErrRemote", err)
	}
	_, _, applyErrs := srv.Stats()
	if applyErrs != 1 {
		t.Fatalf("applyErrs = %d", applyErrs)
	}
}

func TestClientObserveAllAndSite(t *testing.T) {
	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	st := newSite(t, 1)
	c, err := Dial(srv.Addr().String(), st, 1, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Site() != st {
		t.Fatal("Site accessor mismatch")
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([]linalg.Vector, 200*2)
	mix := regime(0)
	for i := range batch {
		batch[i] = mix.Sample(rng)
	}
	if err := c.ObserveAll(batch); err != nil {
		t.Fatal(err)
	}
	if _, messages := c.Stats(); messages != 1 {
		t.Fatalf("messages = %d", messages)
	}
	// A wrong-dimension record aborts the batch with the site's error.
	if err := c.ObserveAll([]linalg.Vector{{1, 2, 3}}); err == nil {
		t.Fatal("bad batch accepted")
	}
}

func TestServerCustomLogf(t *testing.T) {
	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var logged int
	srv.Logf = func(string, ...any) { logged++ }
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, []byte{1, 2, 3}); err != nil { // undecodable
		t.Fatal(err)
	}
	if err := readAck(conn); err != ErrRemote {
		t.Fatalf("ack = %v", err)
	}
	if logged == 0 {
		t.Fatal("custom Logf never invoked")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", newSite(t, 1), 1, DialOptions{Timeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestDialInvalidHorizon(t *testing.T) {
	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := Dial(srv.Addr().String(), newSite(t, 1), 1, DialOptions{SlidingHorizonChunks: -1}); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

func TestServerCloseDegradesGracefully(t *testing.T) {
	coord := newCoord(t)
	srv, err := NewServer("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr().String(), newSite(t, 1), 1, DialOptions{
		Retry: RetryPolicy{AttemptTimeout: 300 * time.Millisecond, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := srv.Close(); err != nil && !strings.Contains(err.Error(), "use of closed") {
		t.Fatalf("close: %v", err)
	}
	// With the coordinator gone, the site must keep clustering locally:
	// Observe queues updates in the outbox instead of failing or hanging.
	rng := rand.New(rand.NewSource(3))
	mix := regime(0)
	for rec := 0; rec < 200*2; rec++ {
		if err := c.Observe(mix.Sample(rng)); err != nil {
			t.Fatalf("observe against a dead coordinator: %v", err)
		}
	}
	d := c.Delivery()
	if d.Queued == 0 {
		t.Fatal("no updates queued while disconnected")
	}
	if d.Acked != 0 {
		t.Fatalf("acked %d messages against a closed server", d.Acked)
	}
	// A bounded flush against a dead coordinator reports the backlog.
	if err := c.Flush(100 * time.Millisecond); err == nil {
		t.Fatal("flush against a dead coordinator succeeded")
	}
	if st := c.Site().Stats(); st.Chunks == 0 {
		t.Fatal("site stopped clustering while disconnected")
	}
}
