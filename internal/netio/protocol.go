// Package netio is the real-network runtime of CluDistream: the same
// site/coordinator protocol that internal/netsim simulates, carried over
// TCP. A coordinator process runs a Server; each remote site runs a Client
// that wraps its site.Site and ships every model update as a
// length-prefixed frame of the internal/transport wire format.
//
// The protocol is deliberately simple and synchronous: each frame is
// acknowledged with a single status byte before the next is sent. Model
// updates are rare (that is the whole point of test-and-cluster), so the
// round trip is irrelevant to throughput, and synchronous acks give the
// client immediate, per-message error reporting.
package netio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame limits and ack codes.
const (
	// maxFrameSize bounds a frame: a K=1024, d=256 model is ~270 MB, far
	// beyond anything real; 64 MB is a generous hard cap against corrupt
	// length prefixes.
	maxFrameSize = 64 << 20

	ackOK  byte = 0x00
	ackErr byte = 0x01
)

// ErrFrameTooLarge is returned for frames exceeding maxFrameSize.
var ErrFrameTooLarge = errors.New("netio: frame too large")

// ErrRemote is returned by the client when the coordinator reports that
// applying a message failed.
var ErrRemote = errors.New("netio: coordinator rejected message")

// writeFrame sends one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// writeAck sends a one-byte status.
func writeAck(w io.Writer, ok bool) error {
	b := ackOK
	if !ok {
		b = ackErr
	}
	_, err := w.Write([]byte{b})
	return err
}

// readAck reads a one-byte status.
func readAck(r io.Reader) error {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	switch b[0] {
	case ackOK:
		return nil
	case ackErr:
		return ErrRemote
	default:
		return fmt.Errorf("netio: invalid ack byte 0x%02x", b[0])
	}
}
