// Package netio is the real-network runtime of CluDistream: the same
// site/coordinator protocol that internal/netsim simulates, carried over
// TCP. A coordinator process runs a Server; each remote site runs a Client
// that wraps its site.Site and ships every model update as a
// length-prefixed frame of the internal/transport wire format.
//
// The protocol is deliberately simple and synchronous: each frame is
// acknowledged with a single status byte before the next is sent. Model
// updates are rare (that is the whole point of test-and-cluster), so the
// round trip is irrelevant to throughput, and synchronous acks give the
// client immediate, per-message error reporting. A hello frame
// (transport.MsgHello), sent once per connection by sites that identify
// themselves, is instead answered with a 13-byte watermark ack carrying
// the coordinator's durable (epoch, maxSeq) high-water mark for that
// site, so after a coordinator restart the site retransmits only the
// suffix of its outbox the recovered state has not applied.
//
// # Outbox policy
//
// The client's outbox is bounded (RetryPolicy.OutboxLimit, default 4096
// messages). Send never blocks: while the coordinator is unreachable,
// messages queue, and once the outbox is full the *oldest* queued message
// is dropped to admit the new one (drop-oldest, counted in
// DeliveryStats.Dropped and net.outbox_dropped). The newest model
// synopses are the ones the coordinator's global model still needs;
// stale ones it would supersede anyway. Flush is the blocking
// counterpart: it drains the outbox through the retry schedule and
// reports what could not be delivered.
package netio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame limits and ack codes.
const (
	// maxFrameSize bounds a frame: a K=1024, d=256 model is ~270 MB, far
	// beyond anything real; 64 MB is a generous hard cap against corrupt
	// length prefixes.
	maxFrameSize = 64 << 20

	ackOK  byte = 0x00
	ackErr byte = 0x01
	// ackWatermark introduces the 13-byte hello reply:
	// [0x02][epoch u32 LE][maxSeq u64 LE].
	ackWatermark byte = 0x02
	// ackWatermarkTraced is ackWatermark with the trace capability granted:
	// same 13-byte layout, but the status byte tells the site it may append
	// the 16-byte trace suffix to subsequent frames. Sent only when the
	// hello requested tracing (Count bit 0) AND the server has a tracer; a
	// legacy peer on either side falls back to plain v1/v2 frames.
	ackWatermarkTraced byte = 0x03

	// helloTraceBit, set in a hello frame's Count field, requests the trace
	// capability. Legacy servers ignore Count on hellos, so the request is
	// invisible to them.
	helloTraceBit = 1

	// watermarkAckSize is the hello reply length (status + epoch + seq).
	watermarkAckSize = 1 + 4 + 8
)

// ErrFrameTooLarge is returned for frames exceeding maxFrameSize.
var ErrFrameTooLarge = errors.New("netio: frame too large")

// ErrRemote is returned by the client when the coordinator reports that
// applying a message failed.
var ErrRemote = errors.New("netio: coordinator rejected message")

// writeFrame sends one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// writeAck sends a one-byte status.
func writeAck(w io.Writer, ok bool) error {
	b := ackOK
	if !ok {
		b = ackErr
	}
	_, err := w.Write([]byte{b})
	return err
}

// writeWatermarkAck answers a hello with the site's durable high-water
// mark; traced grants the trace-suffix capability for this connection.
func writeWatermarkAck(w io.Writer, epoch uint32, maxSeq uint64, traced bool) error {
	var b [watermarkAckSize]byte
	b[0] = ackWatermark
	if traced {
		b[0] = ackWatermarkTraced
	}
	binary.LittleEndian.PutUint32(b[1:], epoch)
	binary.LittleEndian.PutUint64(b[5:], maxSeq)
	_, err := w.Write(b[:])
	return err
}

// readWatermarkAck reads a hello reply. traced reports whether the server
// granted the trace-suffix capability.
func readWatermarkAck(r io.Reader) (epoch uint32, maxSeq uint64, traced bool, err error) {
	var b [watermarkAckSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, 0, false, err
	}
	if b[0] != ackWatermark && b[0] != ackWatermarkTraced {
		return 0, 0, false, fmt.Errorf("netio: invalid watermark ack byte 0x%02x", b[0])
	}
	return binary.LittleEndian.Uint32(b[1:]), binary.LittleEndian.Uint64(b[5:]), b[0] == ackWatermarkTraced, nil
}

// readAck reads a one-byte status.
func readAck(r io.Reader) error {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	switch b[0] {
	case ackOK:
		return nil
	case ackErr:
		return ErrRemote
	default:
		return fmt.Errorf("netio: invalid ack byte 0x%02x", b[0])
	}
}
