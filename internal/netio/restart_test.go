package netio

import (
	"bytes"
	"testing"
	"time"

	"cludistream/internal/coordinator"
	"cludistream/internal/durable"
	"cludistream/internal/gaussian"
	"cludistream/internal/persist"
	"cludistream/internal/transport"
)

// restartPolicy keeps reconnect/backoff latency test-sized.
func restartPolicy(siteID int32) RetryPolicy {
	return RetryPolicy{
		SiteID:         siteID,
		DialTimeout:    2 * time.Second,
		AttemptTimeout: 2 * time.Second,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
	}
}

// coordStateBytes canonicalizes a (coordinator, dedupe, applied) triple to
// checkpoint bytes for bit-level comparison.
func coordStateBytes(t *testing.T, coord *coordinator.Coordinator, ded *durable.Dedupe, applied uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := persist.SaveCoordinatorState(&buf, &persist.CoordinatorState{
		Applied: applied, Snapshot: coord.Snapshot(), Dedupe: ded.Entries(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHandshakePrunesRecoveredSuffix: a client that queued messages while
// the coordinator was down reconnects to a recovered server whose durable
// watermark already covers part of the queue. The hello/watermark
// handshake must prune exactly that prefix — the suffix is transmitted,
// nothing is re-applied, nothing is re-sent just to be deduped.
func TestHandshakePrunesRecoveredSuffix(t *testing.T) {
	srv1, err := NewServer("127.0.0.1:0", newCoord(t))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr().String()
	conn, err := DialConnRetry(addr, restartPolicy(7))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Five models queue against the dead coordinator (Send never blocks).
	for id := int32(1); id <= 5; id++ {
		if err := conn.Send(transport.Message{
			Kind: transport.MsgNewModel, SiteID: 7, ModelID: id,
			Count: 200, Mixture: regime(float64(id) * 100),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if d := conn.Delivery(); d.Queued != 5 || d.Acked != 0 {
		t.Fatalf("outbox before restart: %+v", d)
	}

	// The restarted coordinator recovered a watermark covering seqs 1-3,
	// as if those frames had been durably applied before the crash.
	coord2 := newCoord(t)
	srv2, err := NewServerOpts(addr, coord2, ServerOptions{
		Dedupe: durable.DedupeFromEntries([]persist.DedupeEntry{{SiteID: 7, Epoch: 1, MaxSeq: 3}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := conn.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	d := conn.Delivery()
	if d.HandshakePruned != 3 {
		t.Fatalf("handshake pruned %d messages, want 3 (%+v)", d.HandshakePruned, d)
	}
	if d.Acked != 2 || d.Queued != 0 {
		t.Fatalf("suffix delivery: %+v", d)
	}
	ss := srv2.DeliveryStats()
	if ss.Applied != 2 || ss.Duplicates != 0 {
		t.Fatalf("server applied %d with %d duplicates, want 2 applied, 0 dups", ss.Applied, ss.Duplicates)
	}
	srv2.Snapshot(func(c *coordinator.Coordinator) {
		if c.NumModels() != 2 {
			t.Fatalf("coordinator holds %d models, want the 2 un-pruned ones", c.NumModels())
		}
	})
}

// TestServerRestartRecoveryOverTCP is the full loop on a real listener:
// a durable server applies half a stream, dies, a new process recovers
// the store from disk, rebinds, and the same client reconnects through
// the restart handshake and delivers the rest. The final coordinator
// state must be bit-identical to applying the stream uninterrupted, and
// a third recovery must agree again.
func TestServerRestartRecoveryOverTCP(t *testing.T) {
	dir := t.TempDir()
	cfg := coordinator.Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}}

	store1, rec1, err := durable.Open(dir, cfg, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := NewServerOpts("127.0.0.1:0", rec1.Coord, ServerOptions{Store: store1, Dedupe: rec1.Dedupe})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr().String()
	conn, err := DialConnRetry(addr, restartPolicy(7))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	stream := []transport.Message{
		{Kind: transport.MsgNewModel, SiteID: 7, ModelID: 1, Count: 200, Mixture: regime(0)},
		{Kind: transport.MsgNewModel, SiteID: 7, ModelID: 2, Count: 200, Mixture: regime(300)},
		{Kind: transport.MsgWeightUpdate, SiteID: 7, ModelID: 1, Count: 100},
		{Kind: transport.MsgNewModel, SiteID: 7, ModelID: 3, Count: 200, Mixture: regime(-300)},
		{Kind: transport.MsgWeightUpdate, SiteID: 7, ModelID: 2, Count: 50},
		{Kind: transport.MsgWeightUpdate, SiteID: 7, ModelID: 3, Count: 25},
		{Kind: transport.MsgWeightUpdate, SiteID: 7, ModelID: 1, Count: 10},
		{Kind: transport.MsgNewModel, SiteID: 7, ModelID: 4, Count: 200, Mixture: regime(600)},
		{Kind: transport.MsgWeightUpdate, SiteID: 7, ModelID: 4, Count: 5},
		{Kind: transport.MsgWeightUpdate, SiteID: 7, ModelID: 2, Count: 5},
	}
	const cut = 6

	for _, m := range stream[:cut] {
		if err := conn.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The process dies. Close flushes the WAL but writes no checkpoint,
	// so the next open must genuinely replay the tail.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	store2, rec2, err := durable.Open(dir, cfg, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.RecordsReplayed != cut {
		t.Fatalf("recovery replayed %d records, want %d", rec2.RecordsReplayed, cut)
	}
	srv2, err := NewServerOpts(addr, rec2.Coord, ServerOptions{Store: store2, Dedupe: rec2.Dedupe})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range stream[cut:] {
		if err := conn.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	d := conn.Delivery()
	if d.Acked != len(stream) || d.Queued != 0 {
		t.Fatalf("delivery after restart: %+v", d)
	}
	if d.Reconnects == 0 {
		t.Fatal("client never reconnected — the restart was not exercised")
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference: the same wire bytes applied by an uninterrupted
	// coordinator through the identical dedupe-then-apply path.
	refCoord, err := coordinator.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refDed := durable.NewDedupe()
	for i, m := range stream {
		m.Epoch, m.Seq = 1, uint64(i+1)
		msg, err := transport.Decode(transport.Encode(m))
		if err != nil {
			t.Fatal(err)
		}
		if err := durable.ReplayApply(refCoord, refDed, msg); err != nil {
			t.Fatal(err)
		}
	}
	want := coordStateBytes(t, refCoord, refDed, uint64(len(stream)))
	if got := coordStateBytes(t, rec2.Coord, rec2.Dedupe, store2.Applied()); !bytes.Equal(got, want) {
		t.Fatalf("restarted server state differs from uninterrupted reference (%d vs %d bytes)", len(got), len(want))
	}

	// A third incarnation recovers the post-restart appends and agrees.
	store3, rec3, err := durable.Open(dir, cfg, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	if rec3.RecordsReplayed != len(stream)-cut {
		t.Fatalf("second recovery replayed %d records, want %d", rec3.RecordsReplayed, len(stream)-cut)
	}
	if got := coordStateBytes(t, rec3.Coord, rec3.Dedupe, store3.Applied()); !bytes.Equal(got, want) {
		t.Fatal("second recovery diverged from the reference state")
	}
}
