package netio

import (
	"errors"
	"io"
	"log"
	"net"
	"sync"

	"cludistream/internal/coordinator"
	"cludistream/internal/telemetry"
	"cludistream/internal/transport"
)

// Server is the coordinator endpoint: it accepts site connections, decodes
// frames, and applies them to the shared Coordinator under a mutex. It is
// safe for any number of concurrent site connections.
type Server struct {
	ln    net.Listener
	coord *coordinator.Coordinator
	// Logf receives connection-level errors; nil silences them. Set before
	// Serve is running.
	Logf func(format string, args ...any)

	mu       sync.Mutex // guards coord, counters and dedupe state
	bytesIn  int
	messages int
	applyErr int
	dup      int
	dupBytes int
	resets   int
	// seen tracks the highest (epoch, seq) applied per site; retransmitted
	// frames and frames from dead incarnations are acked without
	// re-applying, making delivery exactly-once in effect.
	seen map[int32]*siteSeq
	tele serverTele

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	wg      sync.WaitGroup
	closing chan struct{}
}

// serverTele holds the coordinator endpoint's receive-side instruments
// (all nil ⇒ no-op).
type serverTele struct {
	reg        *telemetry.Registry
	bytesIn    *telemetry.Counter
	applied    *telemetry.Counter
	applyErrs  *telemetry.Counter
	dups       *telemetry.Counter
	dupBytes   *telemetry.Counter
	siteResets *telemetry.Counter
}

func newServerTele(reg *telemetry.Registry) serverTele {
	if reg == nil {
		return serverTele{}
	}
	return serverTele{
		reg:        reg,
		bytesIn:    reg.Counter("srv.bytes_in"),
		applied:    reg.Counter("srv.applied"),
		applyErrs:  reg.Counter("srv.apply_errors"),
		dups:       reg.Counter("srv.duplicates"),
		dupBytes:   reg.Counter("srv.duplicate_bytes"),
		siteResets: reg.Counter("srv.site_resets"),
	}
}

// NewServer listens on addr ("host:port", ":0" for an ephemeral port) and
// serves the given coordinator until Close. Serving starts immediately in
// background goroutines.
func NewServer(addr string, coord *coordinator.Coordinator) (*Server, error) {
	return NewServerTelemetry(addr, coord, nil)
}

// NewServerTelemetry is NewServer with receive-side srv.* instruments
// registered in reg (nil reg behaves exactly like NewServer). A separate
// constructor because NewServer starts accepting before it returns, so
// instruments cannot be attached after the fact without racing apply.
func NewServerTelemetry(addr string, coord *coordinator.Coordinator, reg *telemetry.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, coord: coord, conns: make(map[net.Conn]struct{}), closing: make(chan struct{}), seen: make(map[int32]*siteSeq), tele: newServerTele(reg)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	// Default: quiet about expected shutdown noise, loud otherwise.
	select {
	case <-s.closing:
	default:
		log.Printf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return
			default:
				s.logf("netio: accept: %v", err)
				return
			}
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles one site connection: frame → decode → apply → ack.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.connMu.Lock()
	if s.conns == nil { // closed while this connection raced Accept
		s.connMu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			// EOF is the normal client hang-up; closed-connection errors
			// accompany shutdown. Anything else is worth a log line.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("netio: read from %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		ok := s.apply(payload)
		if err := writeAck(conn, ok); err != nil {
			s.logf("netio: ack to %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// siteSeq is the per-site dedupe watermark.
type siteSeq struct {
	epoch  uint32
	maxSeq uint64
}

// apply decodes and applies one message, returning whether it succeeded.
// Versioned messages are deduped by (site, epoch, seq): duplicates are
// acked without re-applying, and a higher epoch first resets the site's
// coordinator state (the restarted site replays its model list).
func (s *Server) apply(payload []byte) bool {
	msg, err := transport.Decode(payload)
	if err != nil {
		s.logf("netio: decode: %v", err)
		s.mu.Lock()
		s.applyErr++
		s.mu.Unlock()
		s.tele.applyErrs.Inc()
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesIn += len(payload)
	s.tele.bytesIn.Add(int64(len(payload)))
	if msg.Seq != 0 {
		tr := s.seen[msg.SiteID]
		if tr == nil {
			tr = &siteSeq{}
			s.seen[msg.SiteID] = tr
		}
		switch {
		case msg.Epoch < tr.epoch:
			// Late frame from a dead incarnation: ack so the stale sender
			// stops retrying, but never apply.
			s.dup++
			s.dupBytes += len(payload)
			s.tele.dups.Inc()
			s.tele.dupBytes.Add(int64(len(payload)))
			return true
		case msg.Epoch > tr.epoch:
			if tr.epoch != 0 {
				s.coord.ResetSite(int(msg.SiteID))
				s.resets++
				s.tele.siteResets.Inc()
				s.logf("netio: site %d returned with epoch %d, state reset", msg.SiteID, msg.Epoch)
			}
			tr.epoch, tr.maxSeq = msg.Epoch, 0
		}
		if msg.Seq <= tr.maxSeq {
			s.dup++
			s.dupBytes += len(payload)
			s.tele.dups.Inc()
			s.tele.dupBytes.Add(int64(len(payload)))
			return true
		}
		tr.maxSeq = msg.Seq
	}
	s.messages++
	s.tele.applied.Inc()
	switch msg.Kind {
	case transport.MsgDeletion:
		err = s.coord.HandleDeletion(int(msg.SiteID), int(msg.ModelID), int(msg.Count))
	default:
		err = s.coord.HandleUpdate(msg.ToSiteUpdate())
	}
	if err != nil {
		s.applyErr++
		s.tele.applyErrs.Inc()
		s.logf("netio: apply %v from site %d: %v", msg.Kind, msg.SiteID, err)
		return false
	}
	return true
}

// Snapshot runs fn with the coordinator locked — the only safe way to read
// coordinator state while the server is live.
func (s *Server) Snapshot(fn func(*coordinator.Coordinator)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.coord)
}

// Stats returns (bytes received, messages applied, apply errors).
func (s *Server) Stats() (bytesIn, messages, applyErrors int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesIn, s.messages, s.applyErr
}

// ServerStats is the coordinator-side delivery accounting.
type ServerStats struct {
	// BytesIn counts every received payload byte, duplicates included.
	BytesIn int
	// Applied is the number of messages applied to the coordinator.
	Applied int
	// ApplyErrors counts undecodable or refused messages.
	ApplyErrors int
	// Duplicates / DuplicateBytes count retransmitted frames that were
	// acked without re-applying — the receive-side view of retransmission
	// overhead.
	Duplicates     int
	DuplicateBytes int
	// SiteResets counts epoch bumps that discarded a dead incarnation.
	SiteResets int
}

// DeliveryStats returns the full fault-tolerance counters.
func (s *Server) DeliveryStats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerStats{
		BytesIn:        s.bytesIn,
		Applied:        s.messages,
		ApplyErrors:    s.applyErr,
		Duplicates:     s.dup,
		DuplicateBytes: s.dupBytes,
		SiteResets:     s.resets,
	}
}

// Close stops accepting, severs every live site connection and waits for
// the connection goroutines to drain.
func (s *Server) Close() error {
	close(s.closing)
	err := s.ln.Close()
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = nil
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}
