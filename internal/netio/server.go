package netio

import (
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"cludistream/internal/coordinator"
	"cludistream/internal/durable"
	"cludistream/internal/telemetry"
	"cludistream/internal/transport"
)

// Server is the coordinator endpoint: it accepts site connections, decodes
// frames, and applies them to the shared Coordinator under a mutex. It is
// safe for any number of concurrent site connections. With a durable.Store
// attached, every decodable frame is logged to the WAL *before* the
// dedupe-then-apply sequence runs, so a crash-recovered server replays the
// byte stream through the identical path and lands on identical state; a
// frame the WAL refuses is nacked with no state change and the site
// retries it.
type Server struct {
	ln    net.Listener
	coord *coordinator.Coordinator
	// Logf receives connection-level errors; nil silences them. Set before
	// Serve is running.
	Logf func(format string, args ...any)

	mu       sync.Mutex // guards coord, store, counters and dedupe state
	bytesIn  int
	messages int
	applyErr int
	dup      int
	dupBytes int
	resets   int
	// ded tracks the highest (epoch, seq) applied per site; retransmitted
	// frames and frames from dead incarnations are acked without
	// re-applying, making delivery exactly-once in effect.
	ded   *durable.Dedupe
	store *durable.Store
	tele  serverTele

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
}

// serverTele holds the coordinator endpoint's receive-side instruments
// (all nil ⇒ no-op).
type serverTele struct {
	reg        *telemetry.Registry
	tracer     *telemetry.Tracer
	bytesIn    *telemetry.Counter
	applied    *telemetry.Counter
	applyErrs  *telemetry.Counter
	dups       *telemetry.Counter
	dupBytes   *telemetry.Counter
	siteResets *telemetry.Counter
	hellos     *telemetry.Counter
	walErrs    *telemetry.Counter
}

func newServerTele(reg *telemetry.Registry) serverTele {
	if reg == nil {
		return serverTele{}
	}
	return serverTele{
		reg:        reg,
		tracer:     reg.Tracer(),
		bytesIn:    reg.Counter("srv.bytes_in"),
		applied:    reg.Counter("srv.applied"),
		applyErrs:  reg.Counter("srv.apply_errors"),
		dups:       reg.Counter("srv.duplicates"),
		dupBytes:   reg.Counter("srv.duplicate_bytes"),
		siteResets: reg.Counter("srv.site_resets"),
		hellos:     reg.Counter("srv.hellos"),
		walErrs:    reg.Counter("srv.wal_errors"),
	}
}

// ServerOptions configures the optional server machinery.
type ServerOptions struct {
	// Telemetry registers srv.* instruments (nil ⇒ none).
	Telemetry *telemetry.Registry
	// Store, when non-nil, makes the server crash-durable: frames are
	// WAL-logged before applying and checkpoints rotate automatically.
	Store *durable.Store
	// Dedupe seeds the exactly-once table — pass the recovered table from
	// durable.Open so a restarted server drops already-applied
	// retransmissions. Nil starts empty.
	Dedupe *durable.Dedupe
}

// NewServer listens on addr ("host:port", ":0" for an ephemeral port) and
// serves the given coordinator until Close. Serving starts immediately in
// background goroutines.
func NewServer(addr string, coord *coordinator.Coordinator) (*Server, error) {
	return NewServerOpts(addr, coord, ServerOptions{})
}

// NewServerTelemetry is NewServer with receive-side srv.* instruments
// registered in reg (nil reg behaves exactly like NewServer). A separate
// constructor because NewServer starts accepting before it returns, so
// instruments cannot be attached after the fact without racing apply.
func NewServerTelemetry(addr string, coord *coordinator.Coordinator, reg *telemetry.Registry) (*Server, error) {
	return NewServerOpts(addr, coord, ServerOptions{Telemetry: reg})
}

// NewServerOpts is the full constructor: telemetry plus optional
// durability (a store and a recovered dedupe table from durable.Open).
func NewServerOpts(addr string, coord *coordinator.Coordinator, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ded := opts.Dedupe
	if ded == nil {
		ded = durable.NewDedupe()
	}
	s := &Server{
		ln:      ln,
		coord:   coord,
		conns:   make(map[net.Conn]struct{}),
		closing: make(chan struct{}),
		ded:     ded,
		store:   opts.Store,
		tele:    newServerTele(opts.Telemetry),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	// Default: quiet about expected shutdown noise, loud otherwise.
	select {
	case <-s.closing:
	default:
		log.Printf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return
			default:
				s.logf("netio: accept: %v", err)
				return
			}
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles one site connection: frame → decode → apply → ack
// (or hello → watermark reply).
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.connMu.Lock()
	if s.conns == nil { // closed while this connection raced Accept
		s.connMu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			// EOF is the normal client hang-up; closed-connection errors
			// accompany shutdown. Anything else is worth a log line.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("netio: read from %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if err := s.respond(conn, payload); err != nil {
			s.logf("netio: ack to %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// respond processes one frame and writes its reply: a watermark ack for a
// hello, a one-byte status for everything else.
func (s *Server) respond(conn net.Conn, payload []byte) error {
	msg, err := transport.Decode(payload)
	if err != nil {
		s.logf("netio: decode: %v", err)
		s.mu.Lock()
		s.applyErr++
		s.mu.Unlock()
		s.tele.applyErrs.Inc()
		return writeAck(conn, false)
	}
	if msg.Kind == transport.MsgHello {
		s.mu.Lock()
		w := s.ded.Watermark(msg.SiteID)
		s.mu.Unlock()
		s.tele.hellos.Inc()
		// Grant the trace-suffix capability only when the site asked for it
		// and this server actually has a tracer to receive the context.
		traced := msg.Count&helloTraceBit != 0 && s.tele.tracer != nil
		return writeWatermarkAck(conn, w.Epoch, w.MaxSeq, traced)
	}
	return writeAck(conn, s.apply(payload, msg))
}

// apply logs and applies one decoded message, returning whether it
// succeeded. Versioned messages are deduped by (site, epoch, seq):
// duplicates are acked without re-applying, and a higher epoch first
// resets the site's coordinator state (the restarted site replays its
// model list).
func (s *Server) apply(payload []byte, msg transport.Message) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesIn += len(payload)
	s.tele.bytesIn.Add(int64(len(payload)))
	if s.store != nil {
		// Log before mutating anything: a frame the WAL cannot hold is
		// refused with the dedupe watermark untouched, so the site's retry
		// of the same (epoch, seq) is admitted, not dropped as a duplicate.
		walSpan := s.tele.tracer.Begin(msg.TraceID, msg.SpanID, "wal-append", int(msg.SiteID), int(msg.ModelID))
		err := s.store.Append(payload)
		walSpan.End(len(payload), "")
		if err != nil {
			s.logf("netio: wal append: %v", err)
			s.tele.walErrs.Inc()
			return false
		}
	}
	verdict := s.ded.Admit(msg.SiteID, msg.Epoch, msg.Seq)
	if s.tele.tracer != nil && msg.TraceID != 0 {
		now := s.tele.tracer.Now()
		s.tele.tracer.Record(msg.TraceID, msg.SpanID, "dedupe",
			int(msg.SiteID), int(msg.ModelID), now, now, 0, dedupeNote(verdict))
	}
	switch verdict {
	case durable.DropStale, durable.DropDuplicate:
		// Ack so the sender stops retrying, but never (re-)apply.
		s.dup++
		s.dupBytes += len(payload)
		s.tele.dups.Inc()
		s.tele.dupBytes.Add(int64(len(payload)))
		return true
	case durable.AdmitNewEpoch:
		s.coord.ResetSite(int(msg.SiteID))
		s.resets++
		s.tele.siteResets.Inc()
		s.logf("netio: site %d returned with epoch %d, state reset", msg.SiteID, msg.Epoch)
	}
	s.messages++
	s.tele.applied.Inc()
	var err error
	switch msg.Kind {
	case transport.MsgDeletion:
		// Deletions carry no site.Update, so the trace context rides in
		// side-band; updates carry their own (see coordinator.HandleUpdate).
		s.coord.SetTraceContext(msg.TraceID, msg.SpanID)
		err = s.coord.HandleDeletion(int(msg.SiteID), int(msg.ModelID), int(msg.Count))
	default:
		err = s.coord.HandleUpdate(msg.ToSiteUpdate())
	}
	ok := err == nil
	if !ok {
		s.applyErr++
		s.tele.applyErrs.Inc()
		s.logf("netio: apply %v from site %d: %v", msg.Kind, msg.SiteID, err)
	}
	if s.store != nil && s.store.NeedCheckpoint() {
		if cerr := s.store.Checkpoint(s.coord, s.ded); cerr != nil {
			// The previous generation stays armed; replay just gets longer.
			s.logf("netio: checkpoint: %v", cerr)
			s.tele.walErrs.Inc()
		}
	}
	return ok
}

// dedupeNote maps a dedupe verdict to the note on the trace's "dedupe"
// span.
func dedupeNote(v durable.Verdict) string {
	switch v {
	case durable.DropDuplicate:
		return "dup"
	case durable.DropStale:
		return "stale"
	case durable.AdmitNewEpoch:
		return "new-epoch"
	default:
		return "admit"
	}
}

// Snapshot runs fn with the coordinator locked — the only safe way to read
// coordinator state while the server is live.
func (s *Server) Snapshot(fn func(*coordinator.Coordinator)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.coord)
}

// Stats returns (bytes received, messages applied, apply errors).
func (s *Server) Stats() (bytesIn, messages, applyErrors int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesIn, s.messages, s.applyErr
}

// ServerStats is the coordinator-side delivery accounting.
type ServerStats struct {
	// BytesIn counts every received payload byte, duplicates included.
	BytesIn int
	// Applied is the number of messages applied to the coordinator.
	Applied int
	// ApplyErrors counts undecodable or refused messages.
	ApplyErrors int
	// Duplicates / DuplicateBytes count retransmitted frames that were
	// acked without re-applying — the receive-side view of retransmission
	// overhead.
	Duplicates     int
	DuplicateBytes int
	// SiteResets counts epoch bumps that discarded a dead incarnation.
	SiteResets int
}

// DeliveryStats returns the full fault-tolerance counters.
func (s *Server) DeliveryStats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerStats{
		BytesIn:        s.bytesIn,
		Applied:        s.messages,
		ApplyErrors:    s.applyErr,
		Duplicates:     s.dup,
		DuplicateBytes: s.dupBytes,
		SiteResets:     s.resets,
	}
}

// Close stops accepting, severs every live site connection and waits for
// the connection goroutines to drain. With a store attached the WAL is
// flushed and closed but no checkpoint is written — restart replays the
// tail; Shutdown is the graceful path.
func (s *Server) Close() error {
	err := s.sever()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		if cerr := s.store.Close(); err == nil {
			err = cerr
		}
		s.store = nil
	}
	return err
}

// Shutdown is the graceful stop: it stops accepting, waits up to timeout
// for connected sites to hang up on their own, severs stragglers, then
// writes a final checkpoint so the next start replays an empty WAL.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.closeOnce.Do(func() { close(s.closing) })
	err := s.ln.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.sever() //nolint:errcheck — listener error already captured
		<-done
	}
	s.connMu.Lock()
	s.conns = nil
	s.connMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		if cerr := s.store.Checkpoint(s.coord, s.ded); cerr != nil && err == nil {
			err = cerr
		}
		if cerr := s.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.store = nil
	}
	return err
}

// sever closes the listener and every live connection, then waits for the
// connection goroutines.
func (s *Server) sever() error {
	s.closeOnce.Do(func() { close(s.closing) })
	err := s.ln.Close()
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = nil
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}
