package netio

import (
	"errors"
	"io"
	"log"
	"net"
	"sync"

	"cludistream/internal/coordinator"
	"cludistream/internal/transport"
)

// Server is the coordinator endpoint: it accepts site connections, decodes
// frames, and applies them to the shared Coordinator under a mutex. It is
// safe for any number of concurrent site connections.
type Server struct {
	ln    net.Listener
	coord *coordinator.Coordinator
	// Logf receives connection-level errors; nil silences them. Set before
	// Serve is running.
	Logf func(format string, args ...any)

	mu       sync.Mutex // guards coord and counters
	bytesIn  int
	messages int
	applyErr int

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	wg      sync.WaitGroup
	closing chan struct{}
}

// NewServer listens on addr ("host:port", ":0" for an ephemeral port) and
// serves the given coordinator until Close. Serving starts immediately in
// background goroutines.
func NewServer(addr string, coord *coordinator.Coordinator) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, coord: coord, conns: make(map[net.Conn]struct{}), closing: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	// Default: quiet about expected shutdown noise, loud otherwise.
	select {
	case <-s.closing:
	default:
		log.Printf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return
			default:
				s.logf("netio: accept: %v", err)
				return
			}
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles one site connection: frame → decode → apply → ack.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.connMu.Lock()
	if s.conns == nil { // closed while this connection raced Accept
		s.connMu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			// EOF is the normal client hang-up; closed-connection errors
			// accompany shutdown. Anything else is worth a log line.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("netio: read from %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		ok := s.apply(payload)
		if err := writeAck(conn, ok); err != nil {
			s.logf("netio: ack to %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// apply decodes and applies one message, returning whether it succeeded.
func (s *Server) apply(payload []byte) bool {
	msg, err := transport.Decode(payload)
	if err != nil {
		s.logf("netio: decode: %v", err)
		s.mu.Lock()
		s.applyErr++
		s.mu.Unlock()
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesIn += len(payload)
	s.messages++
	switch msg.Kind {
	case transport.MsgDeletion:
		err = s.coord.HandleDeletion(int(msg.SiteID), int(msg.ModelID), int(msg.Count))
	default:
		err = s.coord.HandleUpdate(msg.ToSiteUpdate())
	}
	if err != nil {
		s.applyErr++
		s.logf("netio: apply %v from site %d: %v", msg.Kind, msg.SiteID, err)
		return false
	}
	return true
}

// Snapshot runs fn with the coordinator locked — the only safe way to read
// coordinator state while the server is live.
func (s *Server) Snapshot(fn func(*coordinator.Coordinator)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.coord)
}

// Stats returns (bytes received, messages applied, apply errors).
func (s *Server) Stats() (bytesIn, messages, applyErrors int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesIn, s.messages, s.applyErr
}

// Close stops accepting, severs every live site connection and waits for
// the connection goroutines to drain.
func (s *Server) Close() error {
	close(s.closing)
	err := s.ln.Close()
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = nil
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}
