package netio

import (
	"math/rand"
	"testing"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
	"cludistream/internal/transport"
)

// tracedRegistry returns a registry with tracing enabled, or nil.
func tracedRegistry(on bool) *telemetry.Registry {
	if !on {
		return nil
	}
	reg := telemetry.NewRegistry()
	reg.EnableTracing(telemetry.TraceOptions{})
	return reg
}

// TestTraceCapabilityNegotiation pins the wire contract of the trace
// suffix: it crosses the TCP link only when the client asked for it in the
// hello AND the server has a tracer — in every other combination the bytes
// on the wire are exactly the untraced v1/v2 encoding. The byte proof is
// accounting: the client's goodput counts queued (suffix-free) payload
// bytes, the server counts received payload bytes, so the difference is
// precisely the suffixes that crossed.
func TestTraceCapabilityNegotiation(t *testing.T) {
	cases := []struct {
		name                       string
		clientTraced, serverTraced bool
	}{
		{"both-traced", true, true},
		{"server-untraced", true, false},
		{"client-untraced", false, true},
		{"neither", false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			creg := tracedRegistry(tc.clientTraced)
			sreg := tracedRegistry(tc.serverTraced)

			coord, err := coordinator.New(coordinator.Config{
				Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}, Telemetry: sreg,
			})
			if err != nil {
				t.Fatal(err)
			}
			srv, err := NewServerTelemetry("127.0.0.1:0", coord, sreg)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			st, err := site.New(site.Config{
				SiteID: 1, Dim: 1, K: 2, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
				Seed: 1, ChunkSize: 200, Telemetry: creg,
			})
			if err != nil {
				t.Fatal(err)
			}
			client, err := Dial(srv.Addr().String(), st, 1, DialOptions{
				Retry: RetryPolicy{Telemetry: creg},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			rng := rand.New(rand.NewSource(2))
			mix := regime(0)
			for rec := 0; rec < 400; rec++ { // two chunks → two updates
				if err := client.Observe(mix.Sample(rng)); err != nil {
					t.Fatal(err)
				}
			}

			goodput, acked := client.Stats()
			serverBytes, applied, applyErrs := srv.Stats()
			if applyErrs != 0 || applied != acked || acked < 1 {
				t.Fatalf("delivery: acked=%d applied=%d errors=%d", acked, applied, applyErrs)
			}

			suffixBytes := 0
			if tc.clientTraced && tc.serverTraced {
				suffixBytes = acked * transport.TraceSuffixSize
			}
			if serverBytes != goodput+suffixBytes {
				t.Fatalf("wire bytes: server saw %d, client queued %d, want suffix overhead %d",
					serverBytes, goodput, suffixBytes)
			}

			str := sreg.Tracer()
			if tc.clientTraced && tc.serverTraced {
				// The context arrived: the server tracer saw one dedupe
				// verdict and one coordinator apply per message, and its
				// exemplars are wire-reconstructed (non-origin) traces whose
				// spans hang off the client-minted root span.
				if got := str.SpanCount("dedupe"); got != int64(acked) {
					t.Fatalf("server dedupe spans = %d, want %d", got, acked)
				}
				if got := str.SpanCount("apply"); got != int64(acked) {
					t.Fatalf("server apply spans = %d, want %d", got, acked)
				}
				snap := str.Snapshot()
				if len(snap.Slowest) == 0 {
					t.Fatal("no completed traces on the server")
				}
				ex := snap.Slowest[0]
				if ex.Origin {
					t.Fatal("server trace claims to be the minting origin")
				}
				if len(ex.Spans) == 0 || ex.Spans[0].Parent == 0 {
					t.Fatalf("server spans lost the wire parent: %+v", ex.Spans)
				}
			} else if tc.serverTraced {
				// An untraced client must leave no trace context behind.
				if got := str.SpanCount("dedupe"); got != 0 {
					t.Fatalf("untraced client produced %d dedupe spans", got)
				}
			}
			if tc.clientTraced {
				// The client records a wire-send span per transmission
				// attempt whether or not the capability was granted.
				if got := creg.Tracer().SpanCount("wire-send"); got != int64(acked) {
					t.Fatalf("client wire-send spans = %d, want %d", got, acked)
				}
			}
		})
	}
}
