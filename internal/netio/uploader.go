package netio

import (
	"math"

	"cludistream/internal/gaussian"
	"cludistream/internal/transport"
)

// Uploader maintains an internal node's presence at its parent coordinator
// (the multi-layer network of Section 7 over real links): each Sync call
// compares the node's current merged mixture against the last uploaded one
// and, when it changed, replaces the stale upload with a deletion followed
// by a fresh model message. Unchanged mixtures transmit nothing — the same
// stability property the leaf sites have.
type Uploader struct {
	conn   *Conn
	nodeID int

	// WeightTol and MeanTol define a "material" model change (see
	// gaussian.Mixture.ApproxEqual); drift inside the tolerance does not
	// re-upload. Defaults: 0.05 and 0.25.
	WeightTol, MeanTol float64

	lastModelID int
	lastCount   int
	lastMix     *gaussian.Mixture
}

// NewUploader wraps a connection for node nodeID (the pseudo-site id the
// parent sees).
func NewUploader(conn *Conn, nodeID int) *Uploader {
	return &Uploader{conn: conn, nodeID: nodeID, WeightTol: 0.05, MeanTol: 0.25}
}

// Sync uploads mix (with total record weight) if it differs materially
// from the last uploaded model. It reports whether a transmission
// happened. A nil mix is a no-op.
func (u *Uploader) Sync(mix *gaussian.Mixture, totalWeight float64) (bool, error) {
	if mix == nil {
		return false, nil
	}
	if u.lastMix != nil && mix.ApproxEqual(u.lastMix, u.WeightTol, u.MeanTol) {
		return false, nil
	}
	if u.lastModelID > 0 {
		del := transport.Message{
			Kind:    transport.MsgDeletion,
			SiteID:  int32(u.nodeID),
			ModelID: int32(u.lastModelID),
			Count:   int64(u.lastCount),
		}
		if err := u.conn.Send(del); err != nil {
			return false, err
		}
	}
	u.lastModelID++
	count := int(math.Round(totalWeight))
	if count < 1 {
		count = 1
	}
	msg := transport.Message{
		Kind:    transport.MsgNewModel,
		SiteID:  int32(u.nodeID),
		ModelID: int32(u.lastModelID),
		Count:   int64(count),
		Mixture: mix,
	}
	if err := u.conn.Send(msg); err != nil {
		return false, err
	}
	u.lastCount = count
	u.lastMix = mix
	return true, nil
}
