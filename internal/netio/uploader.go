package netio

import (
	"cludistream/internal/gaussian"
	"cludistream/internal/hier"
)

// Uploader maintains an internal node's presence at its parent coordinator
// (the multi-layer network of Section 7 over real links): each Sync call
// compares the node's current merged mixture against the last uploaded one
// and, when it changed, replaces the stale upload with a deletion followed
// by a fresh model message. Unchanged mixtures transmit nothing — the same
// stability property the leaf sites have. The change-detection and
// message-construction logic lives in hier.UploadMirror (embedded, so
// WeightTol/MeanTol remain settable fields); this type binds it to a
// connection.
type Uploader struct {
	conn *Conn
	*hier.UploadMirror
}

// NewUploader wraps a connection for node nodeID (the pseudo-site id the
// parent sees).
func NewUploader(conn *Conn, nodeID int) *Uploader {
	return &Uploader{conn: conn, UploadMirror: hier.NewUploadMirror(nodeID)}
}

// Sync uploads mix (with total record weight) if it differs materially
// from the last uploaded model. It reports whether a transmission
// happened. A nil mix is a no-op. On a send error the mirror is
// invalidated so the next Sync retries the upload.
func (u *Uploader) Sync(mix *gaussian.Mixture, totalWeight float64) (bool, error) {
	msgs := u.UploadMirror.Sync(mix, totalWeight)
	for _, m := range msgs {
		if err := u.conn.Send(m); err != nil {
			u.Invalidate()
			return false, err
		}
	}
	return len(msgs) > 0, nil
}
