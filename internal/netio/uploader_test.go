package netio

import (
	"testing"
	"time"

	"cludistream/internal/coordinator"
	"cludistream/internal/durable"
	"cludistream/internal/linalg"
)

// TestUploaderReconnectPreservesDedupeWatermark: an aggregator child
// disconnects (its parent restarts in place, keeping coordinator + dedupe
// state) and reconnects through the watermark handshake. The parent's
// per-child (epoch, seq) watermark must survive the disconnect — the
// re-drained outbox advances it monotonically in the same epoch instead of
// resetting it — and the parent must end with exactly one pseudo-model, not
// a duplicate per connection.
func TestUploaderReconnectPreservesDedupeWatermark(t *testing.T) {
	const child = 100
	coord := newCoord(t)
	ded := durable.NewDedupe()
	srv1, err := NewServerOpts("127.0.0.1:0", coord, ServerOptions{Dedupe: ded})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr().String()

	conn, err := DialConnRetry(addr, restartPolicy(child))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	up := NewUploader(conn, child)

	// First upload while connected.
	sent, err := up.Sync(regime(0), 200)
	if err != nil || !sent {
		t.Fatalf("first sync: sent=%v err=%v", sent, err)
	}
	if err := conn.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	w1 := ded.Watermark(child)
	if w1.Epoch != 1 || w1.MaxSeq != 1 {
		t.Fatalf("watermark after first upload = %+v", w1)
	}

	// The link drops. The child's merged mixture changes while
	// disconnected: Sync queues the deletion + replacement in the outbox.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	sent, err = up.Sync(regime(50), 400)
	if err != nil || !sent {
		t.Fatalf("disconnected sync: sent=%v err=%v", sent, err)
	}

	// The parent comes back with its in-memory state intact (same
	// coordinator, same dedupe table) and the child reconnects.
	srv2, err := NewServerOpts(addr, coord, ServerOptions{Dedupe: ded})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := conn.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d := conn.Delivery(); d.Reconnects == 0 {
		t.Fatal("client never reconnected — the restart was not exercised")
	}

	// Watermark preserved: same epoch, monotonically advanced by the
	// deletion (seq 2) and the replacement model (seq 3).
	w2 := ded.Watermark(child)
	if w2.Epoch != w1.Epoch {
		t.Fatalf("epoch changed across reconnect: %+v -> %+v", w1, w2)
	}
	if w2.MaxSeq != 3 {
		t.Fatalf("watermark after reconnect = %+v, want MaxSeq 3", w2)
	}

	// Exactly one pseudo-model at the parent, carrying the new regime.
	srv2.Snapshot(func(co *coordinator.Coordinator) {
		if co.NumModels() != 1 {
			t.Fatalf("parent holds %d models, want 1", co.NumModels())
		}
		gm := co.GlobalMixture()
		if ll := gm.AvgLogLikelihood([]linalg.Vector{{48}, {52}}); ll < -8 {
			t.Fatalf("replacement regime missing at parent: LL=%v", ll)
		}
	})

	// An unchanged mixture after the reconnect stays silent.
	sent, err = up.Sync(regime(50), 400)
	if err != nil {
		t.Fatal(err)
	}
	if sent {
		t.Fatal("unchanged mixture re-uploaded after reconnect")
	}
}
