package netsim

import (
	"fmt"
	"math"
	"math/rand"

	"cludistream/internal/telemetry"
)

// Courier provides ordered at-least-once delivery over a faulty Link:
// payloads queue FIFO and only the head is transmitted, so retransmission
// never reorders messages. A send the link refuses (TrySend returning
// false — the simulation's stand-in for a missing ack) is retried with
// capped exponential backoff and deterministic jitter from the injected
// rand. Pair it with sequence-numbered payloads and a deduping receiver
// for exactly-once effect; the Courier itself only guarantees
// at-least-once, in order.
type Courier struct {
	sim  *Simulator
	link *Link
	base float64 // first retry delay, seconds
	max  float64 // backoff cap, seconds
	rng  *rand.Rand

	queue    []courierItem
	attempts int  // transmissions of the current head
	waiting  bool // a retry timer is pending

	retries   int
	delivered int

	teleRetries   *telemetry.Counter
	teleDelivered *telemetry.Counter
	teleBackoff   *telemetry.Histogram
}

// SetTelemetry registers sim.courier_* instruments in reg (nil detaches).
func (c *Courier) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		c.teleRetries, c.teleDelivered, c.teleBackoff = nil, nil, nil
		return
	}
	c.teleRetries = reg.Counter("sim.courier_retries")
	c.teleDelivered = reg.Counter("sim.courier_delivered")
	c.teleBackoff = reg.Histogram("sim.courier_backoff_seconds",
		0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10)
}

// NewCourier wraps link with retransmission. baseBackoff must be positive
// — a zero or negative backoff would retry in a zero-delay loop, spinning
// the simulator without advancing virtual time. maxBackoff is raised to
// baseBackoff if smaller. rng drives the jitter and must not be nil.
func (s *Simulator) NewCourier(link *Link, baseBackoff, maxBackoff float64, rng *rand.Rand) (*Courier, error) {
	if math.IsNaN(baseBackoff) || baseBackoff <= 0 {
		return nil, fmt.Errorf("netsim: courier backoff %v, want > 0 (zero would spin retries at the same instant)", baseBackoff)
	}
	if math.IsNaN(maxBackoff) || maxBackoff < 0 {
		return nil, fmt.Errorf("netsim: courier max backoff %v, want >= 0", maxBackoff)
	}
	if maxBackoff < baseBackoff {
		maxBackoff = baseBackoff
	}
	if link == nil {
		return nil, fmt.Errorf("netsim: courier needs a link")
	}
	if rng == nil {
		return nil, fmt.Errorf("netsim: courier needs a rand source for jitter")
	}
	return &Courier{sim: s, link: link, base: baseBackoff, max: maxBackoff, rng: rng}, nil
}

// courierItem is one queued payload with the causal trace context of the
// chunk that produced it: retransmissions of the same payload keep
// recording wire-send spans under the same trace.
type courierItem struct {
	payload     []byte
	trace, span uint64
}

// Send queues a payload and pumps the queue unless a retry timer is
// already pending.
func (c *Courier) Send(payload []byte) { c.SendTraced(payload, 0, 0) }

// SendTraced is Send with trace context, forwarded to the link so every
// transmission attempt (first send and each retry) records a wire-send
// span under parentSpan.
func (c *Courier) SendTraced(payload []byte, traceID, parentSpan uint64) {
	c.queue = append(c.queue, courierItem{payload: payload, trace: traceID, span: parentSpan})
	if !c.waiting {
		c.pump()
	}
}

// pump transmits from the head until the queue drains or a send fails,
// in which case a retry is scheduled.
func (c *Courier) pump() {
	for len(c.queue) > 0 {
		head := c.queue[0]
		if c.link.TrySendTraced(head.payload, c.attempts > 0, head.trace, head.span) {
			c.queue[0] = courierItem{}
			c.queue = c.queue[1:]
			c.attempts = 0
			c.delivered++
			c.teleDelivered.Inc()
			continue
		}
		c.attempts++
		c.retries++
		c.teleRetries.Inc()
		d := c.base * math.Pow(2, float64(c.attempts-1))
		if d > c.max {
			d = c.max
		}
		d *= 0.5 + 0.5*c.rng.Float64()
		c.teleBackoff.Observe(d)
		c.waiting = true
		c.sim.Schedule(d, func() {
			c.waiting = false
			c.pump()
		})
		return
	}
}

// Crash models the sending process dying: the queue — and any message it
// would still have retried — is lost. Counters survive; a pending retry
// timer fires harmlessly on the empty queue.
func (c *Courier) Crash() {
	c.queue = nil
	c.attempts = 0
}

// Pending returns the queue depth.
func (c *Courier) Pending() int { return len(c.queue) }

// Retries returns the number of failed transmissions.
func (c *Courier) Retries() int { return c.retries }

// Delivered returns the number of payloads the link accepted.
func (c *Courier) Delivered() int { return c.delivered }
