package netsim

import (
	"math/rand"
	"testing"
)

// TestSlowLinkDoesNotStallSiblings: links are independently serialized —
// a bandwidth-starved child queues behind its own busyUntil, while a
// sibling on a fast link delivers at pure propagation latency regardless
// of how much traffic the slow link is digesting.
func TestSlowLinkDoesNotStallSiblings(t *testing.T) {
	sim := NewSimulator()
	var slowTimes, fastTimes []float64
	slow, err := sim.NewLink(0.01, 100, func([]byte) { slowTimes = append(slowTimes, sim.Now()) })
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sim.NewLink(0.01, 0, func([]byte) { fastTimes = append(fastTimes, sim.Now()) })
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100) // 1 simulated second per frame on the slow link
	for i := 0; i < 3; i++ {
		slow.Send(payload)
		fast.Send(payload)
	}
	sim.Run()
	if len(slowTimes) != 3 || len(fastTimes) != 3 {
		t.Fatalf("deliveries: slow=%d fast=%d", len(slowTimes), len(fastTimes))
	}
	// All fast deliveries land at the propagation latency: the sibling
	// never waits on the slow link's transmission queue.
	for i, at := range fastTimes {
		if at != 0.01 {
			t.Fatalf("fast delivery %d at %v, want 0.01", i, at)
		}
	}
	// The slow link serializes its own frames: 1s, 2s, 3s of transmission
	// time plus latency.
	for i, at := range slowTimes {
		want := float64(i+1) + 0.01
		if at != want {
			t.Fatalf("slow delivery %d at %v, want %v", i, at, want)
		}
	}
}

// TestPerLinkAccountingSumsToCourierTotals: across a heterogeneous set of
// lossy links, every link's wire bytes must decompose exactly into
// goodput + dropped, goodput must equal the courier's delivered payload
// bytes, and attempt counts must reconcile with courier retries.
func TestPerLinkAccountingSumsToCourierTotals(t *testing.T) {
	sim := NewSimulator()
	shapes := []struct {
		latency, bandwidth, drop float64
	}{
		{0.01, 0, 0.3},
		{0.05, 5000, 0.2},
		{0.2, 200, 0},
	}
	type edge struct {
		link *Link
		cour *Courier
		sent int // payload bytes handed to the courier (excl. retransmits)
		msgs int
	}
	var edges []*edge
	for i, sh := range shapes {
		e := &edge{}
		var plan *FaultPlan
		if sh.drop > 0 {
			plan = &FaultPlan{DropProb: sh.drop, Rand: rand.New(rand.NewSource(int64(i + 1)))}
		}
		link, err := sim.NewFaultyLink(sh.latency, sh.bandwidth, plan, func([]byte) {})
		if err != nil {
			t.Fatal(err)
		}
		cour, err := sim.NewCourier(link, 0.05, 1.0, rand.New(rand.NewSource(int64(100+i))))
		if err != nil {
			t.Fatal(err)
		}
		e.link, e.cour = link, cour
		edges = append(edges, e)
	}
	rng := rand.New(rand.NewSource(9))
	for rec := 0; rec < 60; rec++ {
		e := edges[rec%len(edges)]
		payload := make([]byte, 20+rng.Intn(200))
		e.sent += len(payload)
		e.msgs++
		e.cour.Send(payload)
	}
	sim.Run()
	for i, e := range edges {
		if e.cour.Pending() != 0 {
			t.Fatalf("link %d: %d payloads still queued", i, e.cour.Pending())
		}
		_, droppedBytes := e.link.Dropped()
		if e.link.BytesSent() != e.link.GoodputBytes()+droppedBytes {
			t.Fatalf("link %d: wire %d != goodput %d + dropped %d",
				i, e.link.BytesSent(), e.link.GoodputBytes(), droppedBytes)
		}
		// Exactly-once goodput: each payload crosses successfully once, so
		// the link's goodput equals the courier's accepted payload bytes.
		if e.link.GoodputBytes() != e.sent {
			t.Fatalf("link %d: goodput %d != courier payload bytes %d",
				i, e.link.GoodputBytes(), e.sent)
		}
		if e.cour.Delivered() != e.msgs {
			t.Fatalf("link %d: courier delivered %d of %d", i, e.cour.Delivered(), e.msgs)
		}
		// Every wire message is either the first attempt or a courier
		// retry, and retransmitted bytes are exactly the re-sent copies.
		if e.link.Messages() != e.msgs+e.cour.Retries() {
			t.Fatalf("link %d: %d wire messages != %d payloads + %d retries",
				i, e.link.Messages(), e.msgs, e.cour.Retries())
		}
		if e.link.RetransmitBytes() != e.link.BytesSent()-e.sent {
			t.Fatalf("link %d: retransmit bytes %d != wire %d - first-attempt %d",
				i, e.link.RetransmitBytes(), e.link.BytesSent(), e.sent)
		}
	}
}
