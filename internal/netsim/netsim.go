// Package netsim is a small discrete-event simulator standing in for the
// C++Sim package the paper used "for easier control of experiments...to
// simulate the distributed processing effect". It provides a virtual clock,
// an event heap with deterministic FIFO tie-breaking, and point-to-point
// links that account every byte sent — the observable behind the paper's
// "total communication cost is collected every second".
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"cludistream/internal/telemetry"
)

// Simulator owns the virtual clock and the pending-event heap.
type Simulator struct {
	now    float64
	events eventHeap
	seq    int64
	ran    int
}

// NewSimulator returns a simulator at time 0.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// EventsRun returns how many events have executed.
func (s *Simulator) EventsRun() int { return s.ran }

// Schedule runs fn delay seconds from now. Negative delays panic —
// causality violations are bugs, not data.
func (s *Simulator) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("netsim: negative or NaN delay %v", delay))
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time t (>= Now).
func (s *Simulator) ScheduleAt(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling into the past: %v < %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// Step executes the next event, returning false when the heap is empty.
func (s *Simulator) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	s.ran++
	e.fn()
	return true
}

// Run executes events until the heap drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t (even if no event lands there).
func (s *Simulator) RunUntil(t float64) {
	for s.events.Len() > 0 && s.events[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

type event struct {
	at  float64
	seq int64 // FIFO among simultaneous events — determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Outage is a time window during which nothing reaches the receiver —
// the simulated counterpart of a crashed or partitioned coordinator.
type Outage struct {
	Start, End float64 // [Start, End) in simulated seconds, by arrival time
}

// FaultPlan injects delivery faults on a Link: independent probabilistic
// message loss, duplicate delivery, and burst outage windows. Randomness
// comes from an injected source so fault sequences are reproducible.
type FaultPlan struct {
	// DropProb is the independent per-message loss probability.
	DropProb float64
	// DupProb is the independent probability that a delivered message is
	// delivered a second time — the network analogue of an ack lost after
	// the receiver already processed the original, forcing a blind
	// retransmit. Duplicates exercise receiver-side dedupe; they cost no
	// extra wire bytes and are accounted separately from goodput.
	DupProb float64
	// Rand drives the loss and duplication draws; required when DropProb
	// or DupProb is positive.
	Rand *rand.Rand
	// Outages lists receiver-down windows; a message whose arrival time
	// falls inside any window is lost.
	Outages []Outage
}

// Validate reports configuration errors: probabilities outside [0, 1],
// missing random sources, and inverted or negative outage windows. A nil
// plan is valid (a perfect link).
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	if math.IsNaN(p.DropProb) || p.DropProb < 0 || p.DropProb > 1 {
		return fmt.Errorf("netsim: FaultPlan.DropProb = %v, want [0, 1]", p.DropProb)
	}
	if math.IsNaN(p.DupProb) || p.DupProb < 0 || p.DupProb > 1 {
		return fmt.Errorf("netsim: FaultPlan.DupProb = %v, want [0, 1]", p.DupProb)
	}
	if (p.DropProb > 0 || p.DupProb > 0) && p.Rand == nil {
		return fmt.Errorf("netsim: FaultPlan with DropProb=%v DupProb=%v needs a Rand source", p.DropProb, p.DupProb)
	}
	for i, o := range p.Outages {
		if math.IsNaN(o.Start) || math.IsNaN(o.End) {
			return fmt.Errorf("netsim: outage %d has NaN bounds [%v, %v)", i, o.Start, o.End)
		}
		if o.Start < 0 {
			return fmt.Errorf("netsim: outage %d starts at negative time %v", i, o.Start)
		}
		if o.End <= o.Start {
			return fmt.Errorf("netsim: outage %d window inverted or empty: [%v, %v)", i, o.Start, o.End)
		}
	}
	return nil
}

// lost decides the fate of a message arriving at the given time. Outage
// checks come first so loss draws are only consumed outside outages.
func (p *FaultPlan) lost(arrive float64) bool {
	for _, o := range p.Outages {
		if arrive >= o.Start && arrive < o.End {
			return true
		}
	}
	return p.DropProb > 0 && p.Rand.Float64() < p.DropProb
}

// Link is a unidirectional site→coordinator channel with latency, optional
// finite bandwidth, optional fault injection, and exact byte accounting
// that separates goodput from retransmissions and losses.
type Link struct {
	sim       *Simulator
	latency   float64
	bandwidth float64 // bytes/second; 0 means infinite
	fault     *FaultPlan
	deliver   func([]byte)

	bytesSent       int
	messages        int
	goodputBytes    int
	retransmitBytes int
	droppedMessages int
	droppedBytes    int
	dupDelivered    int
	sendLog         []sendRecord
	// busyUntil serializes transmissions on a finite-bandwidth link.
	busyUntil float64

	tele linkTele
}

// linkTele holds a Link's instruments (all nil ⇒ no-op). Every link
// sharing a registry increments the same sim.* counters, so the registry
// view is the whole simulated network.
type linkTele struct {
	tracer     *telemetry.Tracer // wire-send spans; nil unless tracing enabled
	bytesSent  *telemetry.Counter
	messages   *telemetry.Counter
	goodput    *telemetry.Counter
	retransmit *telemetry.Counter
	dropped    *telemetry.Counter
	dropBytes  *telemetry.Counter
	dup        *telemetry.Counter
}

// SetTelemetry registers sim.* instruments for this link in reg (nil
// detaches). Attach before traffic flows; counters only cover subsequent
// sends.
func (l *Link) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		l.tele = linkTele{}
		return
	}
	l.tele = linkTele{
		tracer:     reg.Tracer(),
		bytesSent:  reg.Counter("sim.bytes_sent"),
		messages:   reg.Counter("sim.messages"),
		goodput:    reg.Counter("sim.goodput_bytes"),
		retransmit: reg.Counter("sim.retransmit_bytes"),
		dropped:    reg.Counter("sim.dropped_messages"),
		dropBytes:  reg.Counter("sim.dropped_bytes"),
		dup:        reg.Counter("sim.dup_delivered"),
	}
}

type sendRecord struct {
	at    float64
	bytes int
}

// NewLink creates a perfect link on sim. deliver is invoked (inside the
// simulation) when a payload arrives; it may be nil for fire-and-forget
// accounting. It returns an error for configurations that would schedule
// events at negative times (negative latency) or divide by a nonsense
// bandwidth, instead of misbehaving at send time.
func (s *Simulator) NewLink(latency, bandwidth float64, deliver func([]byte)) (*Link, error) {
	return s.NewFaultyLink(latency, bandwidth, nil, deliver)
}

// NewFaultyLink creates a link whose deliveries are subject to plan; a
// nil plan is a perfect link. The latency, bandwidth and fault plan are
// validated here, at construction, so a misconfigured scenario fails with
// a clear error rather than panicking mid-simulation.
func (s *Simulator) NewFaultyLink(latency, bandwidth float64, plan *FaultPlan, deliver func([]byte)) (*Link, error) {
	if math.IsNaN(latency) || latency < 0 {
		return nil, fmt.Errorf("netsim: link latency %v, want >= 0", latency)
	}
	if math.IsNaN(bandwidth) || bandwidth < 0 {
		return nil, fmt.Errorf("netsim: link bandwidth %v, want >= 0 (0 = infinite)", bandwidth)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Link{sim: s, latency: latency, bandwidth: bandwidth, fault: plan, deliver: deliver}, nil
}

// Send transmits payload: bytes are accounted at send time; delivery is
// scheduled after transmission delay (serialized on the link) plus latency.
func (l *Link) Send(payload []byte) { l.TrySend(payload, false) }

// TrySend transmits payload, classifying it as an original send or a
// retransmission for the byte accounting, and reports whether delivery
// was scheduled — the simulation shorthand for the receiver's ack. Lost
// messages still consume wire bytes (and transmission time on a
// finite-bandwidth link); only delivered payload counts as goodput.
func (l *Link) TrySend(payload []byte, retransmit bool) bool {
	return l.TrySendTraced(payload, retransmit, 0, 0)
}

// TrySendTraced is TrySend with causal trace context: when the link's
// registry has tracing enabled and traceID is non-zero, a "wire-send"
// span is recorded under parentSpan covering send-initiation → scheduled
// arrival (noting "retransmit" and "dropped" transmissions), one span per
// transmission attempt — so a trace's waterfall shows every time its
// update touched the wire.
func (l *Link) TrySendTraced(payload []byte, retransmit bool, traceID, parentSpan uint64) bool {
	n := len(payload)
	l.bytesSent += n
	l.messages++
	l.tele.bytesSent.Add(int64(n))
	l.tele.messages.Inc()
	if retransmit {
		l.retransmitBytes += n
		l.tele.retransmit.Add(int64(n))
	}
	l.sendLog = append(l.sendLog, sendRecord{at: l.sim.Now(), bytes: n})

	start := l.sim.Now()
	if l.bandwidth > 0 {
		if l.busyUntil > start {
			start = l.busyUntil
		}
		start += float64(n) / l.bandwidth
		l.busyUntil = start
	}
	arrive := start + l.latency
	if l.fault != nil && l.fault.lost(arrive) {
		l.droppedMessages++
		l.droppedBytes += n
		l.tele.dropped.Inc()
		l.tele.dropBytes.Add(int64(n))
		l.recordWireSpan(traceID, parentSpan, arrive, n, retransmit, true)
		return false
	}
	l.goodputBytes += n
	l.tele.goodput.Add(int64(n))
	// Duplicate-delivery draw: decided at send time (so the draw sequence
	// is a pure function of the send sequence), delivered shortly after
	// the original. Duplicates consume no extra wire bytes and never count
	// as goodput — they model receiver-side duplication, the input the
	// exactly-once dedupe layer exists to absorb.
	dup := l.fault != nil && l.fault.DupProb > 0 && l.fault.Rand.Float64() < l.fault.DupProb
	if dup {
		l.dupDelivered++
		l.tele.dup.Inc()
	}
	if l.deliver != nil {
		p := payload
		l.sim.ScheduleAt(arrive, func() { l.deliver(p) })
		if dup {
			l.sim.ScheduleAt(arrive+l.latency*0.5, func() { l.deliver(p) })
		}
	}
	l.recordWireSpan(traceID, parentSpan, arrive, n, retransmit, false)
	return true
}

// recordWireSpan emits one transmission attempt's "wire-send" span,
// spanning send initiation to the (scheduled or hypothetical) arrival.
func (l *Link) recordWireSpan(traceID, parentSpan uint64, arrive float64, n int, retransmit, dropped bool) {
	tr := l.tele.tracer
	if tr == nil || traceID == 0 {
		return
	}
	note := ""
	switch {
	case dropped && retransmit:
		note = "retransmit-dropped"
	case dropped:
		note = "dropped"
	case retransmit:
		note = "retransmit"
	}
	tr.Record(traceID, parentSpan, "wire-send", 0, 0, l.sim.Now(), arrive, n, note)
}

// BytesSent returns total bytes pushed onto the link, retransmissions
// and losses included — the wire-cost observable.
func (l *Link) BytesSent() int { return l.bytesSent }

// Messages returns the number of Send/TrySend calls.
func (l *Link) Messages() int { return l.messages }

// GoodputBytes returns the bytes of payloads that reached the receiver.
func (l *Link) GoodputBytes() int { return l.goodputBytes }

// RetransmitBytes returns the bytes of sends flagged as retransmissions.
func (l *Link) RetransmitBytes() int { return l.retransmitBytes }

// Dropped returns (messages, bytes) lost to the fault plan.
func (l *Link) Dropped() (messages, bytes int) { return l.droppedMessages, l.droppedBytes }

// DupDelivered returns how many messages were delivered twice by the
// fault plan's DupProb. Duplicates consume no wire bytes and no goodput.
func (l *Link) DupDelivered() int { return l.dupDelivered }

// CostSeries buckets the link's sent bytes into intervals of the given
// width, cumulatively: entry i is the total bytes sent in [0, (i+1)·width).
// This is the paper's "total communication cost collected every second"
// with width = 1.
func (l *Link) CostSeries(width float64, until float64) []int {
	n := int(math.Ceil(until / width))
	if n < 1 {
		n = 1
	}
	out := make([]int, n)
	for _, r := range l.sendLog {
		idx := int(r.at / width)
		if idx >= n {
			idx = n - 1
		}
		out[idx] += r.bytes
	}
	for i := 1; i < n; i++ {
		out[i] += out[i-1]
	}
	return out
}

// MergeCostSeries sums per-link cumulative series element-wise (series may
// have differing lengths; shorter ones are treated as flat after their
// end — they are cumulative).
func MergeCostSeries(series ...[]int) []int {
	var n int
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
	}
	out := make([]int, n)
	for _, s := range series {
		for i := 0; i < n; i++ {
			v := 0
			if len(s) > 0 {
				if i < len(s) {
					v = s[i]
				} else {
					v = s[len(s)-1]
				}
			}
			out[i] += v
		}
	}
	return out
}
