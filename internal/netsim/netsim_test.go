package netsim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v", s.Now())
	}
	if s.EventsRun() != 3 {
		t.Fatalf("EventsRun = %d", s.EventsRun())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(1, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSimulator()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		s.Schedule(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v", s.Now())
	}
	// Advancing past all events moves the clock anyway.
	s.RunUntil(10)
	if s.Now() != 10 || len(fired) != 5 {
		t.Fatalf("Now = %v fired = %v", s.Now(), fired)
	}
}

func TestSchedulePanics(t *testing.T) {
	s := NewSimulator()
	for _, fn := range []func(){
		func() { s.Schedule(-1, func() {}) },
		func() { s.ScheduleAt(-0.5, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLinkDeliveryAndAccounting(t *testing.T) {
	s := NewSimulator()
	var got [][]byte
	var at []float64
	l := s.NewLink(0.5, 0, func(p []byte) {
		got = append(got, p)
		at = append(at, s.Now())
	})
	l.Send([]byte{1, 2, 3})
	l.Send([]byte{4})
	s.Run()
	if l.BytesSent() != 4 || l.Messages() != 2 {
		t.Fatalf("bytes=%d msgs=%d", l.BytesSent(), l.Messages())
	}
	if len(got) != 2 || at[0] != 0.5 || at[1] != 0.5 {
		t.Fatalf("deliveries at %v", at)
	}
	if got[0][0] != 1 || got[1][0] != 4 {
		t.Fatal("payload corrupted")
	}
}

func TestLinkBandwidthSerialization(t *testing.T) {
	s := NewSimulator()
	var at []float64
	l := s.NewLink(0, 10, func(p []byte) { at = append(at, s.Now()) }) // 10 B/s
	l.Send(make([]byte, 20))                                           // finishes at t=2
	l.Send(make([]byte, 10))                                           // queued, finishes at t=3
	s.Run()
	if len(at) != 2 || at[0] != 2 || at[1] != 3 {
		t.Fatalf("deliveries at %v, want [2 3]", at)
	}
}

func TestLinkNilDeliver(t *testing.T) {
	s := NewSimulator()
	l := s.NewLink(1, 0, nil)
	l.Send(make([]byte, 100))
	s.Run()
	if l.BytesSent() != 100 {
		t.Fatalf("bytes = %d", l.BytesSent())
	}
}

func TestLinkValidation(t *testing.T) {
	s := NewSimulator()
	for _, fn := range []func(){
		func() { s.NewLink(-1, 0, nil) },
		func() { s.NewLink(0, -1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCostSeriesCumulative(t *testing.T) {
	s := NewSimulator()
	l := s.NewLink(0, 0, nil)
	send := func(at float64, n int) {
		s.Schedule(at, func() { l.Send(make([]byte, n)) })
	}
	send(0.5, 10)
	send(1.5, 20)
	send(1.9, 5)
	send(3.5, 100)
	s.Run()
	got := l.CostSeries(1, 4)
	want := []int{10, 35, 35, 135}
	if len(got) != len(want) {
		t.Fatalf("series = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
}

func TestCostSeriesClampsLateSends(t *testing.T) {
	s := NewSimulator()
	l := s.NewLink(0, 0, nil)
	s.Schedule(9.5, func() { l.Send(make([]byte, 7)) })
	s.Run()
	got := l.CostSeries(1, 5) // series shorter than the send time
	if got[len(got)-1] != 7 {
		t.Fatalf("late send lost: %v", got)
	}
}

func TestMergeCostSeries(t *testing.T) {
	a := []int{1, 2, 3}
	b := []int{10, 20, 30, 40}
	got := MergeCostSeries(a, b)
	want := []int{11, 22, 33, 43} // a is flat at 3 after its end
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
	if got := MergeCostSeries(); len(got) != 0 {
		t.Fatal("empty merge not empty")
	}
	if got := MergeCostSeries(nil, []int{5}); got[0] != 5 {
		t.Fatalf("nil series handling: %v", got)
	}
}
