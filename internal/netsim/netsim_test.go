package netsim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// mustLink / mustFaultyLink / mustCourier unwrap the error-returning
// constructors for tests whose configurations are valid by construction.
func mustLink(t *testing.T, s *Simulator, latency, bandwidth float64, deliver func([]byte)) *Link {
	t.Helper()
	l, err := s.NewLink(latency, bandwidth, deliver)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustFaultyLink(t *testing.T, s *Simulator, latency, bandwidth float64, plan *FaultPlan, deliver func([]byte)) *Link {
	t.Helper()
	l, err := s.NewFaultyLink(latency, bandwidth, plan, deliver)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustCourier(t *testing.T, s *Simulator, link *Link, base, max float64, rng *rand.Rand) *Courier {
	t.Helper()
	c, err := s.NewCourier(link, base, max, rng)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEventOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v", s.Now())
	}
	if s.EventsRun() != 3 {
		t.Fatalf("EventsRun = %d", s.EventsRun())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(1, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSimulator()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		s.Schedule(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v", s.Now())
	}
	// Advancing past all events moves the clock anyway.
	s.RunUntil(10)
	if s.Now() != 10 || len(fired) != 5 {
		t.Fatalf("Now = %v fired = %v", s.Now(), fired)
	}
}

func TestSchedulePanics(t *testing.T) {
	s := NewSimulator()
	for _, fn := range []func(){
		func() { s.Schedule(-1, func() {}) },
		func() { s.ScheduleAt(-0.5, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLinkDeliveryAndAccounting(t *testing.T) {
	s := NewSimulator()
	var got [][]byte
	var at []float64
	l := mustLink(t, s, 0.5, 0, func(p []byte) {
		got = append(got, p)
		at = append(at, s.Now())
	})
	l.Send([]byte{1, 2, 3})
	l.Send([]byte{4})
	s.Run()
	if l.BytesSent() != 4 || l.Messages() != 2 {
		t.Fatalf("bytes=%d msgs=%d", l.BytesSent(), l.Messages())
	}
	if len(got) != 2 || at[0] != 0.5 || at[1] != 0.5 {
		t.Fatalf("deliveries at %v", at)
	}
	if got[0][0] != 1 || got[1][0] != 4 {
		t.Fatal("payload corrupted")
	}
}

func TestLinkBandwidthSerialization(t *testing.T) {
	s := NewSimulator()
	var at []float64
	l := mustLink(t, s, 0, 10, func(p []byte) { at = append(at, s.Now()) }) // 10 B/s
	l.Send(make([]byte, 20))                                                // finishes at t=2
	l.Send(make([]byte, 10))                                                // queued, finishes at t=3
	s.Run()
	if len(at) != 2 || at[0] != 2 || at[1] != 3 {
		t.Fatalf("deliveries at %v, want [2 3]", at)
	}
}

func TestLinkNilDeliver(t *testing.T) {
	s := NewSimulator()
	l := mustLink(t, s, 1, 0, nil)
	l.Send(make([]byte, 100))
	s.Run()
	if l.BytesSent() != 100 {
		t.Fatalf("bytes = %d", l.BytesSent())
	}
}

func TestLinkValidation(t *testing.T) {
	s := NewSimulator()
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		err  string
		do   func() error
	}{
		{"negative latency", "latency", func() error { _, err := s.NewLink(-1, 0, nil); return err }},
		{"NaN latency", "latency", func() error { _, err := s.NewLink(math.NaN(), 0, nil); return err }},
		{"negative bandwidth", "bandwidth", func() error { _, err := s.NewLink(0, -1, nil); return err }},
		{"drop prob out of range", "DropProb", func() error {
			_, err := s.NewFaultyLink(0, 0, &FaultPlan{DropProb: 1.5, Rand: rng}, nil)
			return err
		}},
		{"dup prob negative", "DupProb", func() error {
			_, err := s.NewFaultyLink(0, 0, &FaultPlan{DupProb: -0.1, Rand: rng}, nil)
			return err
		}},
		{"drop prob without rand", "Rand", func() error {
			_, err := s.NewFaultyLink(0, 0, &FaultPlan{DropProb: 0.5}, nil)
			return err
		}},
		{"dup prob without rand", "Rand", func() error {
			_, err := s.NewFaultyLink(0, 0, &FaultPlan{DupProb: 0.5}, nil)
			return err
		}},
		{"inverted outage", "inverted", func() error {
			_, err := s.NewFaultyLink(0, 0, &FaultPlan{Outages: []Outage{{Start: 6, End: 2}}}, nil)
			return err
		}},
		{"empty outage", "inverted", func() error {
			_, err := s.NewFaultyLink(0, 0, &FaultPlan{Outages: []Outage{{Start: 2, End: 2}}}, nil)
			return err
		}},
		{"negative outage start", "negative", func() error {
			_, err := s.NewFaultyLink(0, 0, &FaultPlan{Outages: []Outage{{Start: -1, End: 2}}}, nil)
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.do()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.err) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.err)
		}
	}
	// Valid configurations still construct.
	if _, err := s.NewFaultyLink(0.1, 100, &FaultPlan{DropProb: 0.2, DupProb: 0.1, Rand: rng, Outages: []Outage{{Start: 1, End: 2}}}, nil); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestCourierValidation(t *testing.T) {
	s := NewSimulator()
	rng := rand.New(rand.NewSource(1))
	l := mustLink(t, s, 0, 0, nil)
	for _, tc := range []struct {
		name string
		do   func() error
	}{
		{"zero backoff", func() error { _, err := s.NewCourier(l, 0, 1, rng); return err }},
		{"negative backoff", func() error { _, err := s.NewCourier(l, -0.5, 1, rng); return err }},
		{"NaN backoff", func() error { _, err := s.NewCourier(l, math.NaN(), 1, rng); return err }},
		{"negative max backoff", func() error { _, err := s.NewCourier(l, 0.1, -1, rng); return err }},
		{"nil rng", func() error { _, err := s.NewCourier(l, 0.1, 1, nil); return err }},
		{"nil link", func() error { _, err := s.NewCourier(nil, 0.1, 1, rng); return err }},
	} {
		if err := tc.do(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// max < base is raised, not rejected.
	c, err := s.NewCourier(l, 0.5, 0.1, rng)
	if err != nil || c == nil {
		t.Fatalf("max<base rejected: %v", err)
	}
}

func TestFaultPlanDupDelivery(t *testing.T) {
	s := NewSimulator()
	var got []float64
	plan := &FaultPlan{DupProb: 1, Rand: rand.New(rand.NewSource(5))}
	l := mustFaultyLink(t, s, 0.4, 0, plan, func(p []byte) { got = append(got, s.Now()) })
	l.Send(make([]byte, 10))
	s.Run()
	if len(got) != 2 {
		t.Fatalf("deliveries = %d, want 2 (original + duplicate)", len(got))
	}
	if got[0] != 0.4 || got[1] <= got[0] {
		t.Fatalf("delivery times %v: duplicate must trail the original", got)
	}
	// Duplicates consume no wire bytes and no goodput.
	if l.BytesSent() != 10 || l.GoodputBytes() != 10 {
		t.Fatalf("bytes=%d goodput=%d, want 10/10", l.BytesSent(), l.GoodputBytes())
	}
	if l.DupDelivered() != 1 {
		t.Fatalf("DupDelivered = %d", l.DupDelivered())
	}
}

func TestCostSeriesCumulative(t *testing.T) {
	s := NewSimulator()
	l := mustLink(t, s, 0, 0, nil)
	send := func(at float64, n int) {
		s.Schedule(at, func() { l.Send(make([]byte, n)) })
	}
	send(0.5, 10)
	send(1.5, 20)
	send(1.9, 5)
	send(3.5, 100)
	s.Run()
	got := l.CostSeries(1, 4)
	want := []int{10, 35, 35, 135}
	if len(got) != len(want) {
		t.Fatalf("series = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
}

func TestCostSeriesClampsLateSends(t *testing.T) {
	s := NewSimulator()
	l := mustLink(t, s, 0, 0, nil)
	s.Schedule(9.5, func() { l.Send(make([]byte, 7)) })
	s.Run()
	got := l.CostSeries(1, 5) // series shorter than the send time
	if got[len(got)-1] != 7 {
		t.Fatalf("late send lost: %v", got)
	}
}

func TestRunUntilEmptyHeap(t *testing.T) {
	// With nothing scheduled the clock still advances to t exactly.
	s := NewSimulator()
	s.RunUntil(5)
	if s.Now() != 5 || s.EventsRun() != 0 {
		t.Fatalf("Now = %v, ran = %d", s.Now(), s.EventsRun())
	}
	// A RunUntil into the past never rewinds the clock.
	s.RunUntil(2)
	if s.Now() != 5 {
		t.Fatalf("clock rewound to %v", s.Now())
	}
	// Draining an empty heap is a no-op.
	s.Run()
	if s.Now() != 5 || s.Step() {
		t.Fatal("empty Run/Step misbehaved")
	}
}

func TestMergeCostSeriesEdgeCases(t *testing.T) {
	if got := MergeCostSeries(nil, nil, nil); len(got) != 0 {
		t.Fatalf("all-nil merge = %v", got)
	}
	if got := MergeCostSeries([]int{}, []int{}); len(got) != 0 {
		t.Fatalf("all-empty merge = %v", got)
	}
	// Wildly unequal lengths: the short series stays flat at its last value.
	got := MergeCostSeries([]int{7}, []int{1, 2, 3, 4, 5})
	want := []int{8, 9, 10, 11, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
	// A single series passes through unchanged.
	got = MergeCostSeries([]int{3, 6})
	if got[0] != 3 || got[1] != 6 {
		t.Fatalf("identity merge = %v", got)
	}
}

func TestBandwidthBusyUntilOrdering(t *testing.T) {
	// Back-to-back sends serialize; after an idle gap the link restarts
	// from the current time rather than the stale busyUntil.
	s := NewSimulator()
	var at []float64
	l := mustLink(t, s, 0, 10, func(p []byte) { at = append(at, s.Now()) }) // 10 B/s
	l.Send(make([]byte, 20))                                                // busy until t=2
	s.Schedule(1, func() { l.Send(make([]byte, 10)) })                      // queued: 2..3
	s.Schedule(5, func() { l.Send(make([]byte, 10)) })                      // idle link: 5..6
	s.Run()
	want := []float64{2, 3, 6}
	if len(at) != 3 || at[0] != want[0] || at[1] != want[1] || at[2] != want[2] {
		t.Fatalf("deliveries at %v, want %v", at, want)
	}
}

func TestFaultPlanDropProb(t *testing.T) {
	s := NewSimulator()
	var delivered int
	plan := &FaultPlan{DropProb: 0.5, Rand: rand.New(rand.NewSource(11))}
	l := mustFaultyLink(t, s, 0, 0, plan, func(p []byte) { delivered++ })
	const n = 1000
	for i := 0; i < n; i++ {
		l.Send(make([]byte, 10))
	}
	s.Run()
	dropMsgs, dropBytes := l.Dropped()
	if delivered+dropMsgs != n {
		t.Fatalf("delivered %d + dropped %d != %d", delivered, dropMsgs, n)
	}
	if dropMsgs < n/3 || dropMsgs > 2*n/3 {
		t.Fatalf("p=0.5 dropped %d of %d", dropMsgs, n)
	}
	if l.BytesSent() != 10*n {
		t.Fatalf("wire bytes = %d, want %d (losses still cost wire bytes)", l.BytesSent(), 10*n)
	}
	if l.GoodputBytes() != 10*delivered || dropBytes != 10*dropMsgs {
		t.Fatalf("goodput %d / droppedBytes %d inconsistent", l.GoodputBytes(), dropBytes)
	}
}

func TestFaultPlanOutageWindow(t *testing.T) {
	s := NewSimulator()
	var at []float64
	plan := &FaultPlan{Outages: []Outage{{Start: 1, End: 3}}}
	l := mustFaultyLink(t, s, 0.5, 0, plan, func(p []byte) { at = append(at, s.Now()) })
	for _, sendAt := range []float64{0, 1, 2, 3} { // arrivals 0.5, 1.5, 2.5, 3.5
		sendAt := sendAt
		s.Schedule(sendAt, func() { l.Send([]byte{1}) })
	}
	s.Run()
	if len(at) != 2 || at[0] != 0.5 || at[1] != 3.5 {
		t.Fatalf("deliveries at %v, want [0.5 3.5]", at)
	}
	if d, _ := l.Dropped(); d != 2 {
		t.Fatalf("dropped = %d, want 2", d)
	}
}

func TestCourierRetransmitsInOrder(t *testing.T) {
	s := NewSimulator()
	var got []byte
	// Outage by arrival time: everything arriving before t=2 is lost.
	plan := &FaultPlan{Outages: []Outage{{Start: 0, End: 2}}}
	l := mustFaultyLink(t, s, 0.1, 0, plan, func(p []byte) { got = append(got, p[0]) })
	c := mustCourier(t, s, l, 0.05, 0.4, rand.New(rand.NewSource(3)))
	for i := byte(0); i < 5; i++ {
		c.Send([]byte{i})
	}
	s.Run()
	if len(got) != 5 {
		t.Fatalf("delivered %d of 5 (pending %d)", len(got), c.Pending())
	}
	for i := byte(0); i < 5; i++ {
		if got[i] != i {
			t.Fatalf("order violated: %v", got)
		}
	}
	if c.Retries() == 0 || l.RetransmitBytes() == 0 {
		t.Fatalf("outage survived without retries (retries=%d, retransmit=%d)", c.Retries(), l.RetransmitBytes())
	}
	// Goodput counts each payload once; the rest of the wire bytes are
	// retransmissions and losses.
	if l.GoodputBytes() != 5 {
		t.Fatalf("goodput = %d, want 5", l.GoodputBytes())
	}
	if l.BytesSent() != l.GoodputBytes()+l.RetransmitBytes() {
		// First attempts that were dropped are neither goodput nor
		// retransmit... unless every loss was a head retry. Account exactly:
		_, dropBytes := l.Dropped()
		if l.BytesSent() != l.GoodputBytes()+dropBytes {
			t.Fatalf("bytes %d != goodput %d + dropped %d", l.BytesSent(), l.GoodputBytes(), dropBytes)
		}
	}
	if c.Delivered() != 5 {
		t.Fatalf("courier delivered = %d", c.Delivered())
	}
}

func TestCourierCrashDropsQueue(t *testing.T) {
	s := NewSimulator()
	var got int
	plan := &FaultPlan{Outages: []Outage{{Start: 0, End: 10}}}
	l := mustFaultyLink(t, s, 0, 0, plan, func(p []byte) { got++ })
	c := mustCourier(t, s, l, 0.1, 0.1, rand.New(rand.NewSource(4)))
	c.Send([]byte{1})
	c.Send([]byte{2})
	if c.Pending() != 2 {
		t.Fatalf("pending = %d", c.Pending())
	}
	c.Crash()
	if c.Pending() != 0 {
		t.Fatal("crash kept the queue")
	}
	// The orphaned retry timer fires harmlessly; nothing is delivered.
	s.Run()
	if got != 0 {
		t.Fatalf("delivered %d after crash", got)
	}
	// The restarted incarnation can send again.
	s2 := NewSimulator()
	l2 := mustLink(t, s2, 0, 0, func(p []byte) { got++ })
	c2 := mustCourier(t, s2, l2, 0.1, 0.1, rand.New(rand.NewSource(4)))
	c2.Send([]byte{3})
	s2.Run()
	if got != 1 {
		t.Fatalf("restart delivery failed: got %d", got)
	}
}

func TestMergeCostSeries(t *testing.T) {
	a := []int{1, 2, 3}
	b := []int{10, 20, 30, 40}
	got := MergeCostSeries(a, b)
	want := []int{11, 22, 33, 43} // a is flat at 3 after its end
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
	if got := MergeCostSeries(); len(got) != 0 {
		t.Fatal("empty merge not empty")
	}
	if got := MergeCostSeries(nil, []int{5}); got[0] != 5 {
		t.Fatalf("nil series handling: %v", got)
	}
}
