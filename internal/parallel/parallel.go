// Package parallel is the multi-core in-process runtime: one goroutine per
// remote site, each consuming its own stream through a buffered channel,
// with model updates funneled to a shared coordinator under a mutex. It is
// the deployment shape between the fully simulated System (internal/netsim
// clock, exact byte accounting) and the fully distributed one
// (internal/netio over TCP): same protocol semantics, real concurrency,
// zero network.
package parallel

import (
	"fmt"
	"sync"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/transport"
	"cludistream/internal/window"
)

// Config assembles a Cluster.
type Config struct {
	// Sites configures each remote site; SiteIDs are overwritten with the
	// 1-based index so coordinator bookkeeping stays collision-free.
	Sites []site.Config
	// Coord configures the shared coordinator.
	Coord coordinator.Config
	// Buffer is the per-site input channel depth (default 256).
	Buffer int
	// SlidingHorizonChunks enables sliding-window deletions per site.
	SlidingHorizonChunks int
}

// Cluster runs the sites.
type Cluster struct {
	sites  []*site.Site
	inputs []chan linalg.Vector
	wg     sync.WaitGroup

	coordMu sync.Mutex
	coord   *coordinator.Coordinator

	errMu sync.Mutex
	err   error // first error observed by any site goroutine

	statMu   sync.Mutex
	bytesOut int
	messages int

	closed bool
}

// New builds and starts a Cluster; site goroutines run until Close.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("parallel: no sites configured")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	coord, err := coordinator.New(cfg.Coord)
	if err != nil {
		return nil, err
	}
	c := &Cluster{coord: coord}
	for i, sc := range cfg.Sites {
		sc.SiteID = i + 1
		// Sites already run one goroutine each; nested EM parallelism would
		// oversubscribe the cores. Bit-identical at any worker count, so
		// this is purely a scheduling choice.
		sc.EM.Workers = 1
		if cfg.SlidingHorizonChunks > 0 {
			sc.EmitFitWeightUpdates = true
		}
		st, err := site.New(sc)
		if err != nil {
			return nil, fmt.Errorf("parallel: site %d: %w", i+1, err)
		}
		var tr *window.Tracker
		if cfg.SlidingHorizonChunks > 0 {
			tr, err = window.NewTracker(st, cfg.SlidingHorizonChunks)
			if err != nil {
				return nil, err
			}
		}
		in := make(chan linalg.Vector, cfg.Buffer)
		c.sites = append(c.sites, st)
		c.inputs = append(c.inputs, in)
		c.wg.Add(1)
		go c.run(st, tr, in, i+1)
	}
	return c, nil
}

// run is one site goroutine: observe records, apply updates to the shared
// coordinator. After an error it keeps draining its channel so feeders
// never block; the error surfaces through Feed/Close.
func (c *Cluster) run(st *site.Site, tr *window.Tracker, in <-chan linalg.Vector, siteID int) {
	defer c.wg.Done()
	failed := false
	for x := range in {
		if failed {
			continue
		}
		ups, err := st.Observe(x)
		if err != nil {
			c.setErr(err)
			failed = true
			continue
		}
		for _, u := range ups {
			if err := c.applyUpdate(u); err != nil {
				c.setErr(err)
				failed = true
				break
			}
		}
		if failed || tr == nil {
			continue
		}
		for _, d := range tr.Expire(siteID) {
			if err := c.applyDeletion(d); err != nil {
				c.setErr(err)
				failed = true
				break
			}
		}
	}
}

func (c *Cluster) applyUpdate(u site.Update) error {
	size := transport.FromSiteUpdate(u).WireSize()
	c.coordMu.Lock()
	err := c.coord.HandleUpdate(u)
	c.coordMu.Unlock()
	if err != nil {
		return err
	}
	c.statMu.Lock()
	c.bytesOut += size
	c.messages++
	c.statMu.Unlock()
	return nil
}

func (c *Cluster) applyDeletion(d window.Deletion) error {
	size := transport.Message{Kind: transport.MsgDeletion}.WireSize()
	c.coordMu.Lock()
	err := c.coord.HandleDeletion(d.SiteID, d.ModelID, d.Count)
	c.coordMu.Unlock()
	if err != nil {
		return err
	}
	c.statMu.Lock()
	c.bytesOut += size
	c.messages++
	c.statMu.Unlock()
	return nil
}

func (c *Cluster) setErr(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// Err returns the first error any site goroutine hit (nil if none).
func (c *Cluster) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// Feed enqueues one record for site i (0-based). It blocks only on
// backpressure (full channel) and surfaces any previously recorded error.
func (c *Cluster) Feed(i int, x linalg.Vector) error {
	if i < 0 || i >= len(c.inputs) {
		return fmt.Errorf("parallel: site index %d of %d", i, len(c.inputs))
	}
	if c.closed {
		return fmt.Errorf("parallel: cluster closed")
	}
	if err := c.Err(); err != nil {
		return err
	}
	c.inputs[i] <- x
	return nil
}

// NumSites returns the site count.
func (c *Cluster) NumSites() int { return len(c.sites) }

// Close stops intake, waits for all sites to drain, and returns the first
// error encountered.
func (c *Cluster) Close() error {
	if !c.closed {
		c.closed = true
		for _, in := range c.inputs {
			close(in)
		}
	}
	c.wg.Wait()
	return c.Err()
}

// Snapshot runs fn with the coordinator locked. Safe while sites run, but
// typically called after Close.
func (c *Cluster) Snapshot(fn func(*coordinator.Coordinator)) {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	fn(c.coord)
}

// GlobalMixture returns the merged global model under the lock.
func (c *Cluster) GlobalMixture() *gaussian.Mixture {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	return c.coord.GlobalMixture()
}

// Site returns site i. Only read it after Close: the owning goroutine
// mutates it while the cluster runs.
func (c *Cluster) Site(i int) *site.Site { return c.sites[i] }

// Stats returns (wire-equivalent bytes, messages) applied so far.
func (c *Cluster) Stats() (bytesOut, messages int) {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.bytesOut, c.messages
}
