// Package parallel is the multi-core in-process runtime: one goroutine per
// remote site, each consuming its own stream through a buffered channel.
// Model updates flow through per-site ordered queues drained by a single
// apply goroutine (actor pattern), so site goroutines never stall on the
// coordinator's merge/placement work. It is the deployment shape between
// the fully simulated System (internal/netsim clock, exact byte
// accounting) and the fully distributed one (internal/netio over TCP):
// same protocol semantics, real concurrency, zero network.
package parallel

import (
	"fmt"
	"sync"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
	"cludistream/internal/transport"
	"cludistream/internal/window"
)

// Config assembles a Cluster.
type Config struct {
	// Sites configures each remote site; SiteIDs are overwritten with the
	// 1-based index so coordinator bookkeeping stays collision-free.
	Sites []site.Config
	// Coord configures the shared coordinator.
	Coord coordinator.Config
	// Buffer is the per-site input channel depth (default 256). The apply
	// queues use the same depth.
	Buffer int
	// SlidingHorizonChunks enables sliding-window deletions per site.
	SlidingHorizonChunks int
	// MutexApply reverts to the pre-actor behaviour: each site goroutine
	// applies its own updates to the coordinator inline under a mutex,
	// blocking on merge/placement work. Kept as the reference
	// implementation the sharded apply loop is pinned against; production
	// paths leave it off.
	MutexApply bool
	// Telemetry, when non-nil, exports per-site apply-queue depth gauges
	// (parallel.queue_depth.site<N>, sampled at every drain) and is NOT
	// propagated to sites or the coordinator — wire those through their
	// own configs.
	Telemetry *telemetry.Registry
}

// applyMsg is one coordinator mutation riding a site's apply queue.
// Exactly one of the two kinds is set; size is its wire-equivalent cost.
type applyMsg struct {
	update   site.Update
	deletion window.Deletion
	isDel    bool
	size     int
}

// Cluster runs the sites.
type Cluster struct {
	sites  []*site.Site
	inputs []chan linalg.Vector
	wg     sync.WaitGroup

	// Apply path: per-site FIFO queues (channel order = seq order within a
	// site) drained in ascending siteID by the one apply goroutine. notify
	// has capacity 1 and works as a pending flag: producers enqueue first,
	// then set it; the apply goroutine re-checks every queue after
	// consuming it, so no enqueue is ever missed.
	queues     []chan applyMsg
	notify     chan struct{}
	quit       chan struct{}
	applyWg    sync.WaitGroup
	mutexApply bool
	depth      []*telemetry.Gauge

	coordMu sync.Mutex
	coord   *coordinator.Coordinator

	// mu guards the cross-goroutine bookkeeping: the first error observed
	// by any site or apply goroutine, and the byte/message totals (updated
	// together with the error path, so one lock serves both).
	mu       sync.Mutex
	err      error
	bytesOut int
	messages int

	// closeMu serialises Feed against Close so intake channels are never
	// closed mid-send.
	closeMu sync.RWMutex
	closed  bool
}

// New builds and starts a Cluster; site goroutines run until Close.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("parallel: no sites configured")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	coord, err := coordinator.New(cfg.Coord)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		coord:      coord,
		mutexApply: cfg.MutexApply,
		notify:     make(chan struct{}, 1),
		quit:       make(chan struct{}),
	}
	for i, sc := range cfg.Sites {
		sc.SiteID = i + 1
		// Sites already run one goroutine each; nested EM parallelism would
		// oversubscribe the cores. Bit-identical at any worker count, so
		// this is purely a scheduling choice.
		sc.EM.Workers = 1
		if cfg.SlidingHorizonChunks > 0 {
			sc.EmitFitWeightUpdates = true
		}
		st, err := site.New(sc)
		if err != nil {
			return nil, fmt.Errorf("parallel: site %d: %w", i+1, err)
		}
		var tr *window.Tracker
		if cfg.SlidingHorizonChunks > 0 {
			tr, err = window.NewTracker(st, cfg.SlidingHorizonChunks)
			if err != nil {
				return nil, err
			}
		}
		in := make(chan linalg.Vector, cfg.Buffer)
		c.sites = append(c.sites, st)
		c.inputs = append(c.inputs, in)
		c.queues = append(c.queues, make(chan applyMsg, cfg.Buffer))
		var g *telemetry.Gauge
		if cfg.Telemetry != nil {
			g = cfg.Telemetry.Gauge(fmt.Sprintf("parallel.queue_depth.site%d", i+1))
		}
		c.depth = append(c.depth, g)
		c.wg.Add(1)
		go c.run(st, tr, in, i+1)
	}
	if !c.mutexApply {
		c.applyWg.Add(1)
		go c.applyLoop()
	}
	return c, nil
}

// run is one site goroutine: observe records, hand resulting updates to
// the apply path. After an error it keeps draining its channel so feeders
// never block; the error surfaces through Feed/Close.
func (c *Cluster) run(st *site.Site, tr *window.Tracker, in <-chan linalg.Vector, siteID int) {
	defer c.wg.Done()
	failed := false
	for x := range in {
		if failed {
			continue
		}
		ups, err := st.Observe(x)
		if err != nil {
			c.setErr(err)
			failed = true
			continue
		}
		for _, u := range ups {
			if err := c.submitUpdate(siteID, u); err != nil {
				c.setErr(err)
				failed = true
				break
			}
		}
		if failed || tr == nil {
			continue
		}
		for _, d := range tr.Expire(siteID) {
			if err := c.submitDeletion(siteID, d); err != nil {
				c.setErr(err)
				failed = true
				break
			}
		}
	}
}

func (c *Cluster) submitUpdate(siteID int, u site.Update) error {
	m := applyMsg{update: u, size: transport.FromSiteUpdate(u).WireSize()}
	if c.mutexApply {
		return c.apply(m)
	}
	c.enqueue(siteID, m)
	return nil
}

func (c *Cluster) submitDeletion(siteID int, d window.Deletion) error {
	m := applyMsg{
		deletion: d,
		isDel:    true,
		size:     transport.Message{Kind: transport.MsgDeletion}.WireSize(),
	}
	if c.mutexApply {
		return c.apply(m)
	}
	c.enqueue(siteID, m)
	return nil
}

// enqueue puts one message on the site's apply queue (blocking only on
// apply-loop backpressure) and flags the apply goroutine.
func (c *Cluster) enqueue(siteID int, m applyMsg) {
	c.queues[siteID-1] <- m
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// applyLoop is the coordinator actor: it alone mutates the coordinator
// while the cluster runs, draining the per-site queues on every notify and
// once more on shutdown.
func (c *Cluster) applyLoop() {
	defer c.applyWg.Done()
	for {
		select {
		case <-c.notify:
			c.drainQueues()
		case <-c.quit:
			// All site goroutines have exited; one final sweep empties
			// whatever they enqueued after the last notify was consumed.
			c.drainQueues()
			return
		}
	}
}

// drainQueues applies every queued message, visiting sites in ascending
// siteID and each site's queue in FIFO (= seq) order, which keeps the
// apply order deterministic within a drain.
func (c *Cluster) drainQueues() {
	for i := range c.queues {
	site:
		for {
			select {
			case m := <-c.queues[i]:
				if err := c.apply(m); err != nil {
					c.setErr(err)
				}
			default:
				break site
			}
		}
		c.depth[i].Set(float64(len(c.queues[i])))
	}
}

// apply performs one coordinator mutation and accounts its wire cost. In
// sharded mode only the apply goroutine calls it; coordMu is still taken
// so Snapshot/GlobalMixture can read concurrently.
func (c *Cluster) apply(m applyMsg) error {
	c.coordMu.Lock()
	var err error
	if m.isDel {
		err = c.coord.HandleDeletion(m.deletion.SiteID, m.deletion.ModelID, m.deletion.Count)
	} else {
		err = c.coord.HandleUpdate(m.update)
	}
	c.coordMu.Unlock()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.bytesOut += m.size
	c.messages++
	c.mu.Unlock()
	return nil
}

func (c *Cluster) setErr(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

// Err returns the first error any site goroutine hit (nil if none).
func (c *Cluster) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Feed enqueues one record for site i (0-based). It blocks only on
// backpressure (full channel) and surfaces any previously recorded error.
// Safe to call from multiple goroutines, concurrently with Close.
func (c *Cluster) Feed(i int, x linalg.Vector) error {
	if i < 0 || i >= len(c.inputs) {
		return fmt.Errorf("parallel: site index %d of %d", i, len(c.inputs))
	}
	if err := c.Err(); err != nil {
		return err
	}
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed {
		return fmt.Errorf("parallel: cluster closed")
	}
	c.inputs[i] <- x
	return nil
}

// NumSites returns the site count.
func (c *Cluster) NumSites() int { return len(c.sites) }

// Close stops intake, waits for all sites and the apply loop to drain,
// and returns the first error encountered. Safe to call more than once
// and concurrently with Feed.
func (c *Cluster) Close() error {
	c.closeMu.Lock()
	first := !c.closed
	if first {
		c.closed = true
		for _, in := range c.inputs {
			close(in)
		}
	}
	c.closeMu.Unlock()
	c.wg.Wait()
	if first && !c.mutexApply {
		close(c.quit)
	}
	c.applyWg.Wait()
	return c.Err()
}

// Snapshot runs fn with the coordinator locked. Safe while sites run —
// the apply goroutine takes the same lock per message — but typically
// called after Close.
func (c *Cluster) Snapshot(fn func(*coordinator.Coordinator)) {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	fn(c.coord)
}

// GlobalMixture returns the merged global model under the lock.
func (c *Cluster) GlobalMixture() *gaussian.Mixture {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	return c.coord.GlobalMixture()
}

// Site returns site i. Only read it after Close: the owning goroutine
// mutates it while the cluster runs.
func (c *Cluster) Site(i int) *site.Site { return c.sites[i] }

// Stats returns (wire-equivalent bytes, messages) applied so far.
func (c *Cluster) Stats() (bytesOut, messages int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesOut, c.messages
}
