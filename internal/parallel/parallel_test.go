package parallel

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
)

func testConfig(sites int) Config {
	scs := make([]site.Config, sites)
	for i := range scs {
		scs[i] = site.Config{
			Dim: 1, K: 2, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
			Seed: int64(i + 1), ChunkSize: 200,
		}
	}
	return Config{
		Sites: scs,
		Coord: coordinator.Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}},
	}
}

func regime(mean float64) *gaussian.Mixture {
	return gaussian.MustMixture(
		[]float64{0.5, 0.5},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{mean - 2}, 0.5),
			gaussian.Spherical(linalg.Vector{mean + 2}, 0.5),
		})
}

func TestClusterEndToEnd(t *testing.T) {
	c, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(10 + i)))
			mix := regime(float64(i) * 40)
			for rec := 0; rec < 200*3; rec++ {
				if err := c.Feed(i, mix.Sample(rng)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c.Snapshot(func(co *coordinator.Coordinator) {
		if co.NumModels() != 4 {
			t.Fatalf("models = %d, want 4", co.NumModels())
		}
	})
	gm := c.GlobalMixture()
	for i := 0; i < 4; i++ {
		mean := float64(i) * 40
		probe := []linalg.Vector{{mean - 2}, {mean + 2}}
		if ll := gm.AvgLogLikelihood(probe); ll < -6 {
			t.Fatalf("site %d regime missing from global model: LL=%v", i, ll)
		}
	}
	_, messages := c.Stats()
	if messages != 4 {
		t.Fatalf("messages = %d, want 4", messages)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := testConfig(1)
	bad.Sites[0].K = 0
	if _, err := New(bad); err == nil {
		t.Fatal("invalid site config accepted")
	}
	bad2 := testConfig(1)
	bad2.Coord.Dim = 0
	if _, err := New(bad2); err == nil {
		t.Fatal("invalid coord config accepted")
	}
}

func TestClusterFeedValidation(t *testing.T) {
	c, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Feed(5, linalg.Vector{0}); err == nil {
		t.Fatal("bad index accepted")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Feed(0, linalg.Vector{0}); err == nil {
		t.Fatal("feed after close accepted")
	}
	// Double close is safe.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSurfacesSiteError(t *testing.T) {
	c, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-dimension record: the site goroutine records the error; a
	// subsequent Feed (or Close) must surface it rather than hang.
	_ = c.Feed(0, linalg.Vector{1, 2, 3})
	if err := c.Close(); err == nil {
		t.Fatal("dimension error swallowed")
	}
}

func TestClusterSlidingWindow(t *testing.T) {
	cfg := testConfig(1)
	cfg.SlidingHorizonChunks = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	mix := regime(0)
	for rec := 0; rec < 200*6; rec++ {
		if err := c.Feed(0, mix.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c.Snapshot(func(co *coordinator.Coordinator) {
		var total float64
		for _, g := range co.Groups() {
			total += g.Weight()
		}
		if math.Abs(total-400) > 1e-6 {
			t.Fatalf("mass = %v, want 400", total)
		}
	})
}

func TestClusterMatchesSequentialResult(t *testing.T) {
	// The concurrent runtime must produce the same site models as driving
	// the same site sequentially — concurrency must not change results.
	run := func() *site.Site {
		c, err := New(testConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		mix := regime(0)
		for rec := 0; rec < 200*4; rec++ {
			if err := c.Feed(0, mix.Sample(rng)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return c.Site(0)
	}
	seq, err := site.New(site.Config{
		SiteID: 1, Dim: 1, K: 2, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
		Seed: 1, ChunkSize: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	mix := regime(0)
	for rec := 0; rec < 200*4; rec++ {
		if _, err := seq.Observe(mix.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	par := run()
	if len(par.Models()) != len(seq.Models()) {
		t.Fatalf("model counts differ: %d vs %d", len(par.Models()), len(seq.Models()))
	}
	for i := range par.Models() {
		pm, sm := par.Models()[i], seq.Models()[i]
		if pm.Counter != sm.Counter {
			t.Fatalf("counters differ at %d", i)
		}
		for j := 0; j < pm.Mixture.K(); j++ {
			if !pm.Mixture.Component(j).Equal(sm.Mixture.Component(j), 0) {
				t.Fatal("components differ between parallel and sequential runs")
			}
		}
	}
}

// canonicalGroups renders the coordinator's final groups in a
// representation that is independent of group IDs and arrival order:
// groups sorted by their (deterministically ordered) member keys, with
// exact float bits for weights and representative parameters.
func canonicalGroups(t *testing.T, c *Cluster) string {
	t.Helper()
	var lines []string
	c.Snapshot(func(co *coordinator.Coordinator) {
		for _, g := range co.Groups() {
			line := ""
			for _, k := range g.MemberKeys() {
				line += k.String() + ";"
			}
			line += fmt.Sprintf("w=%016x;", math.Float64bits(g.Weight()))
			rep := g.Representative()
			for _, v := range rep.Mean() {
				line += fmt.Sprintf("m=%016x;", math.Float64bits(v))
			}
			d := len(rep.Mean())
			for r := 0; r < d; r++ {
				for q := 0; q < d; q++ {
					line += fmt.Sprintf("c=%016x;", math.Float64bits(rep.Cov().At(r, q)))
				}
			}
			lines = append(lines, line)
		}
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// runShardedWorkload drives a 4-site cluster where every site sees its own
// regime sequence (two models each, all regimes distinct across sites) and
// returns the canonical final groups.
func runShardedWorkload(t *testing.T, mutexApply bool) string {
	t.Helper()
	cfg := testConfig(4)
	cfg.MutexApply = mutexApply
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(20 + i)))
			for rec := 0; rec < 200*3; rec++ {
				if err := c.Feed(i, regime(float64(i)*80).Sample(rng)); err != nil {
					t.Error(err)
					return
				}
			}
			for rec := 0; rec < 200*2; rec++ {
				if err := c.Feed(i, regime(float64(i)*80+40).Sample(rng)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return canonicalGroups(t, c)
}

func TestShardedApplyMatchesMutex(t *testing.T) {
	// The sharded apply loop must land on bit-identical final groups as
	// the single-mutex reference, at any parallelism level. Site update
	// sequences are deterministic per site and the workload keeps sites'
	// regimes disjoint, so the coordinator's final state is a pure
	// function of the update multiset — any divergence means the actor
	// pipeline dropped, duplicated or corrupted an update.
	ref := runShardedWorkload(t, true)
	if ref == "" {
		t.Fatal("reference run produced no groups")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		if got := runShardedWorkload(t, false); got != ref {
			t.Fatalf("GOMAXPROCS=%d sharded groups differ from mutex reference:\n%s\n--- want ---\n%s",
				procs, got, ref)
		}
	}
}

func TestFeedCloseConcurrencyHammer(t *testing.T) {
	// Feed from many producers racing Close: no send-on-closed-channel
	// panic, no lost shutdown, and the error surfaced (if any) is the
	// clean "cluster closed" refusal. Run under -race this also checks the
	// stat/err path consolidation.
	for round := 0; round < 5; round++ {
		c, err := New(testConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < 8; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + p)))
				<-start
				for rec := 0; ; rec++ {
					x := linalg.Vector{rng.NormFloat64()}
					if err := c.Feed(rec%4, x); err != nil {
						return // closed mid-feed: expected
					}
				}
			}(p)
		}
		close(start)
		if round%2 == 0 {
			runtime.Gosched()
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		// After Close every accepted record was processed and applied.
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueueDepthGauges(t *testing.T) {
	cfg := testConfig(2)
	cfg.Telemetry = telemetry.NewRegistry()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for rec := 0; rec < 200*2; rec++ {
		for i := 0; i < 2; i++ {
			if err := c.Feed(i, regime(float64(i)*60).Sample(rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The final shutdown drain must leave both queues observed empty.
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("parallel.queue_depth.site%d", i)
		if v := cfg.Telemetry.Gauge(name).Value(); v != 0 {
			t.Fatalf("%s = %v after close, want 0", name, v)
		}
	}
	_, messages := c.Stats()
	if messages == 0 {
		t.Fatal("no messages applied")
	}
}
