package parallel

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

func testConfig(sites int) Config {
	scs := make([]site.Config, sites)
	for i := range scs {
		scs[i] = site.Config{
			Dim: 1, K: 2, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
			Seed: int64(i + 1), ChunkSize: 200,
		}
	}
	return Config{
		Sites: scs,
		Coord: coordinator.Config{Dim: 1, Merge: gaussian.MergeOptions{MomentOnly: true}},
	}
}

func regime(mean float64) *gaussian.Mixture {
	return gaussian.MustMixture(
		[]float64{0.5, 0.5},
		[]*gaussian.Component{
			gaussian.Spherical(linalg.Vector{mean - 2}, 0.5),
			gaussian.Spherical(linalg.Vector{mean + 2}, 0.5),
		})
}

func TestClusterEndToEnd(t *testing.T) {
	c, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(10 + i)))
			mix := regime(float64(i) * 40)
			for rec := 0; rec < 200*3; rec++ {
				if err := c.Feed(i, mix.Sample(rng)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c.Snapshot(func(co *coordinator.Coordinator) {
		if co.NumModels() != 4 {
			t.Fatalf("models = %d, want 4", co.NumModels())
		}
	})
	gm := c.GlobalMixture()
	for i := 0; i < 4; i++ {
		mean := float64(i) * 40
		probe := []linalg.Vector{{mean - 2}, {mean + 2}}
		if ll := gm.AvgLogLikelihood(probe); ll < -6 {
			t.Fatalf("site %d regime missing from global model: LL=%v", i, ll)
		}
	}
	_, messages := c.Stats()
	if messages != 4 {
		t.Fatalf("messages = %d, want 4", messages)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := testConfig(1)
	bad.Sites[0].K = 0
	if _, err := New(bad); err == nil {
		t.Fatal("invalid site config accepted")
	}
	bad2 := testConfig(1)
	bad2.Coord.Dim = 0
	if _, err := New(bad2); err == nil {
		t.Fatal("invalid coord config accepted")
	}
}

func TestClusterFeedValidation(t *testing.T) {
	c, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Feed(5, linalg.Vector{0}); err == nil {
		t.Fatal("bad index accepted")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Feed(0, linalg.Vector{0}); err == nil {
		t.Fatal("feed after close accepted")
	}
	// Double close is safe.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSurfacesSiteError(t *testing.T) {
	c, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-dimension record: the site goroutine records the error; a
	// subsequent Feed (or Close) must surface it rather than hang.
	_ = c.Feed(0, linalg.Vector{1, 2, 3})
	if err := c.Close(); err == nil {
		t.Fatal("dimension error swallowed")
	}
}

func TestClusterSlidingWindow(t *testing.T) {
	cfg := testConfig(1)
	cfg.SlidingHorizonChunks = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	mix := regime(0)
	for rec := 0; rec < 200*6; rec++ {
		if err := c.Feed(0, mix.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c.Snapshot(func(co *coordinator.Coordinator) {
		var total float64
		for _, g := range co.Groups() {
			total += g.Weight()
		}
		if math.Abs(total-400) > 1e-6 {
			t.Fatalf("mass = %v, want 400", total)
		}
	})
}

func TestClusterMatchesSequentialResult(t *testing.T) {
	// The concurrent runtime must produce the same site models as driving
	// the same site sequentially — concurrency must not change results.
	run := func() *site.Site {
		c, err := New(testConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		mix := regime(0)
		for rec := 0; rec < 200*4; rec++ {
			if err := c.Feed(0, mix.Sample(rng)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return c.Site(0)
	}
	seq, err := site.New(site.Config{
		SiteID: 1, Dim: 1, K: 2, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
		Seed: 1, ChunkSize: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	mix := regime(0)
	for rec := 0; rec < 200*4; rec++ {
		if _, err := seq.Observe(mix.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	par := run()
	if len(par.Models()) != len(seq.Models()) {
		t.Fatalf("model counts differ: %d vs %d", len(par.Models()), len(seq.Models()))
	}
	for i := range par.Models() {
		pm, sm := par.Models()[i], seq.Models()[i]
		if pm.Counter != sm.Counter {
			t.Fatalf("counters differ at %d", i)
		}
		for j := 0; j < pm.Mixture.K(); j++ {
			if !pm.Mixture.Component(j).Equal(sm.Mixture.Component(j), 0) {
				t.Fatal("components differ between parallel and sequential runs")
			}
		}
	}
}
