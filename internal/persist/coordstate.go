package persist

import (
	"bufio"
	"hash/crc32"
	"io"
	"math"

	"cludistream/internal/coordinator"
)

// Coordinator checkpoint format: magic "CLUC", explicit little-endian
// binary like the site archive, with a whole-file CRC32 trailer so a
// flipped bit anywhere — not just in a field a validator happens to look
// at — surfaces as ErrBadFormat. A checkpoint carries everything the
// coordinator needs to resume exactly-once application after a crash: the
// model tree snapshot (mixtures, counters, grouping, work stats) and the
// full (site, epoch, seq) dedupe table.
var coordMagic = [4]byte{'C', 'L', 'U', 'C'}

const coordVersion = 1

// plausibleCount caps list lengths before allocation, mirroring Load.
const plausibleCount = 1 << 24

// DedupeEntry is one site's exactly-once watermark: the highest (epoch,
// seq) applied. Retransmitted frames at or below it are acked without
// re-applying.
type DedupeEntry struct {
	SiteID int32
	Epoch  uint32
	MaxSeq uint64
}

// CoordinatorState is the complete durable coordinator state: what a
// checkpoint stores and what recovery rebuilds before replaying the WAL
// tail.
type CoordinatorState struct {
	// Applied is the number of messages applied since the state store was
	// created (checkpoint continuity for logs and telemetry).
	Applied uint64
	// Snapshot is the coordinator's model tree.
	Snapshot *coordinator.Snapshot
	// Dedupe is the per-site watermark table, sorted by SiteID.
	Dedupe []DedupeEntry
}

// crcWriter forwards writes and accumulates an IEEE CRC32.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p)
	return c.w.Write(p)
}

// crcReader forwards reads and accumulates an IEEE CRC32.
type crcReader struct {
	r   io.Reader
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	return n, err
}

func writeU64(w io.Writer, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	w.Write(b[:]) //nolint:errcheck — bufio defers errors to Flush
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}

// SaveCoordinatorState writes the checkpoint format.
func SaveCoordinatorState(w io.Writer, st *CoordinatorState) error {
	if st == nil || st.Snapshot == nil {
		return badFormat("nil coordinator state")
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write(coordMagic[:]); err != nil {
		return err
	}
	writeU32(cw, coordVersion)
	snap := st.Snapshot
	writeU32(cw, uint32(snap.Dim))
	writeU64(cw, st.Applied)
	writeU32(cw, uint32(snap.NextGroupID))
	for _, v := range statsFields(snap.Stats) {
		writeU32(cw, uint32(v))
	}
	writeU32(cw, uint32(len(snap.Models)))
	for _, m := range snap.Models {
		writeU32(cw, uint32(m.SiteID))
		writeU32(cw, uint32(m.ModelID))
		writeU32(cw, uint32(m.Counter))
		if err := writeMixture(cw, m.Mixture); err != nil {
			return err
		}
	}
	writeU32(cw, uint32(len(snap.Groups)))
	for _, g := range snap.Groups {
		writeU32(cw, uint32(g.ID))
		writeU32(cw, uint32(len(g.Members)))
		for _, mem := range g.Members {
			writeU32(cw, uint32(mem.Key.SiteID))
			writeU32(cw, uint32(mem.Key.ModelID))
			writeU32(cw, uint32(mem.Key.Comp))
			writeF64(cw, mem.MRemergeAtJoin)
		}
	}
	writeU32(cw, uint32(len(st.Dedupe)))
	for _, d := range st.Dedupe {
		writeU32(cw, uint32(d.SiteID))
		writeU32(cw, d.Epoch)
		writeU64(cw, d.MaxSeq)
	}
	// Trailer: CRC of everything above, written outside the CRC stream.
	writeU32(bw, cw.sum)
	return bw.Flush()
}

// LoadCoordinatorState reads a checkpoint written by SaveCoordinatorState.
// Wrong magic, an unknown version, truncation, implausible counts, invalid
// mixtures, or a CRC mismatch all return errors wrapping ErrBadFormat; I/O
// errors from the reader pass through untouched.
func LoadCoordinatorState(r io.Reader) (*CoordinatorState, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	var m [4]byte
	if _, err := io.ReadFull(cr, m[:]); err != nil {
		return nil, readErr("magic", err)
	}
	if m != coordMagic {
		return nil, badFormat("bad coordinator-state magic %q", m[:])
	}
	ver, err := readU32(cr)
	if err != nil {
		return nil, readErr("version", err)
	}
	if ver != coordVersion {
		return nil, badFormat("unsupported coordinator-state version %d", ver)
	}
	st := &CoordinatorState{Snapshot: &coordinator.Snapshot{}}
	snap := st.Snapshot
	if snap.Dim, err = readInt(cr); err != nil {
		return nil, readErr("header", err)
	}
	if snap.Dim < 1 || snap.Dim > 1<<20 {
		return nil, badFormat("implausible dim %d", snap.Dim)
	}
	if st.Applied, err = readU64(cr); err != nil {
		return nil, readErr("header", err)
	}
	if snap.NextGroupID, err = readInt(cr); err != nil {
		return nil, readErr("header", err)
	}
	if snap.NextGroupID < 1 {
		return nil, badFormat("next group id %d", snap.NextGroupID)
	}
	var stats [statsFieldCount]int
	for i := range stats {
		if stats[i], err = readInt(cr); err != nil {
			return nil, readErr("stats", err)
		}
		if stats[i] < 0 {
			return nil, badFormat("negative stats counter %d", stats[i])
		}
	}
	snap.Stats = statsFromFields(stats)
	nModels, err := readInt(cr)
	if err != nil {
		return nil, readErr("model count", err)
	}
	if nModels < 0 || nModels > plausibleCount {
		return nil, badFormat("implausible model count %d", nModels)
	}
	for i := 0; i < nModels; i++ {
		var sm coordinator.SnapshotModel
		if sm.SiteID, err = readInt(cr); err != nil {
			return nil, readErr("model list", err)
		}
		if sm.ModelID, err = readInt(cr); err != nil {
			return nil, readErr("model list", err)
		}
		if sm.Counter, err = readInt(cr); err != nil {
			return nil, readErr("model list", err)
		}
		if sm.Counter <= 0 {
			return nil, badFormat("model %d/%d counter %d", sm.SiteID, sm.ModelID, sm.Counter)
		}
		if sm.Mixture, err = readMixture(cr); err != nil {
			return nil, err
		}
		snap.Models = append(snap.Models, sm)
	}
	nGroups, err := readInt(cr)
	if err != nil {
		return nil, readErr("group count", err)
	}
	if nGroups < 0 || nGroups > plausibleCount {
		return nil, badFormat("implausible group count %d", nGroups)
	}
	for i := 0; i < nGroups; i++ {
		var g coordinator.SnapshotGroup
		if g.ID, err = readInt(cr); err != nil {
			return nil, readErr("group list", err)
		}
		nMembers, err := readInt(cr)
		if err != nil {
			return nil, readErr("group list", err)
		}
		if nMembers < 1 || nMembers > plausibleCount {
			return nil, badFormat("implausible member count %d in group %d", nMembers, g.ID)
		}
		for j := 0; j < nMembers; j++ {
			var mem coordinator.SnapshotMember
			if mem.Key.SiteID, err = readInt(cr); err != nil {
				return nil, readErr("group members", err)
			}
			if mem.Key.ModelID, err = readInt(cr); err != nil {
				return nil, readErr("group members", err)
			}
			if mem.Key.Comp, err = readInt(cr); err != nil {
				return nil, readErr("group members", err)
			}
			if mem.MRemergeAtJoin, err = readF64(cr); err != nil {
				return nil, readErr("group members", err)
			}
			if math.IsNaN(mem.MRemergeAtJoin) || mem.MRemergeAtJoin <= 0 {
				return nil, badFormat("member %v MRemergeAtJoin %v", mem.Key, mem.MRemergeAtJoin)
			}
			g.Members = append(g.Members, mem)
		}
		snap.Groups = append(snap.Groups, g)
	}
	nDedupe, err := readInt(cr)
	if err != nil {
		return nil, readErr("dedupe count", err)
	}
	if nDedupe < 0 || nDedupe > plausibleCount {
		return nil, badFormat("implausible dedupe count %d", nDedupe)
	}
	var prevSite int64 = math.MinInt64
	for i := 0; i < nDedupe; i++ {
		var d DedupeEntry
		site, err := readInt(cr)
		if err != nil {
			return nil, readErr("dedupe table", err)
		}
		d.SiteID = int32(site)
		if int64(d.SiteID) <= prevSite {
			return nil, badFormat("dedupe table not strictly sorted at site %d", d.SiteID)
		}
		prevSite = int64(d.SiteID)
		if d.Epoch, err = readU32(cr); err != nil {
			return nil, readErr("dedupe table", err)
		}
		if d.MaxSeq, err = readU64(cr); err != nil {
			return nil, readErr("dedupe table", err)
		}
		st.Dedupe = append(st.Dedupe, d)
	}
	sum := cr.sum
	stored, err := readU32(br)
	if err != nil {
		return nil, readErr("checksum", err)
	}
	if stored != sum {
		return nil, badFormat("checksum mismatch: stored %08x, computed %08x", stored, sum)
	}
	return st, nil
}

// statsFieldCount pins the serialized Stats layout; bump coordVersion when
// the struct grows.
const statsFieldCount = 9

func statsFields(s coordinator.Stats) [statsFieldCount]int {
	return [statsFieldCount]int{
		s.UpdatesHandled, s.NewModels, s.WeightUpdates, s.Deletions,
		s.Splits, s.Remerges, s.GroupsCreated, s.GroupsRemoved, s.SiteResets,
	}
}

func statsFromFields(f [statsFieldCount]int) coordinator.Stats {
	return coordinator.Stats{
		UpdatesHandled: f[0], NewModels: f[1], WeightUpdates: f[2], Deletions: f[3],
		Splits: f[4], Remerges: f[5], GroupsCreated: f[6], GroupsRemoved: f[7], SiteResets: f[8],
	}
}
