package persist

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cludistream/internal/coordinator"
)

// randomCoordState builds an arbitrary but format-valid coordinator
// checkpoint. Mixtures come from randomMixture, so every float in the
// state is a Save/Load fixed point; group membership mirrors the models
// so FromSnapshot-style structural checks would also pass, though the
// format layer never requires that.
func randomCoordState(rng *rand.Rand) *CoordinatorState {
	d := 1 + rng.Intn(3)
	snap := &coordinator.Snapshot{
		Dim:         d,
		NextGroupID: 1,
		Stats: coordinator.Stats{
			UpdatesHandled: rng.Intn(10000),
			NewModels:      rng.Intn(100),
			WeightUpdates:  rng.Intn(1000),
			Deletions:      rng.Intn(50),
			Splits:         rng.Intn(20),
			Remerges:       rng.Intn(20),
			GroupsCreated:  rng.Intn(100),
			GroupsRemoved:  rng.Intn(50),
			SiteResets:     rng.Intn(5),
		},
	}
	nModels := 1 + rng.Intn(3)
	for id := 1; id <= nModels; id++ {
		snap.Models = append(snap.Models, coordinator.SnapshotModel{
			SiteID:  1 + rng.Intn(4),
			ModelID: id,
			Counter: 1 + rng.Intn(1<<16),
			Mixture: randomMixture(rng, d),
		})
	}
	for _, m := range snap.Models {
		g := coordinator.SnapshotGroup{ID: snap.NextGroupID}
		snap.NextGroupID++
		for c := 0; c < m.Mixture.K(); c++ {
			// +Inf marks a group-seeding leaf; finite joins carry the
			// Algorithm-2 reference frozen at join time.
			mr := math.Inf(1)
			if rng.Intn(2) == 0 {
				mr = 1 + rng.Float64()*10
			}
			g.Members = append(g.Members, coordinator.SnapshotMember{
				Key:            coordinator.MemberKey{SiteID: m.SiteID, ModelID: m.ModelID, Comp: c},
				MRemergeAtJoin: mr,
			})
		}
		snap.Groups = append(snap.Groups, g)
	}
	st := &CoordinatorState{Applied: rng.Uint64() >> 16, Snapshot: snap}
	site := int32(rng.Intn(3))
	for i, n := 0, rng.Intn(5); i < n; i++ {
		site += 1 + int32(rng.Intn(4)) // strictly ascending, as the format requires
		st.Dedupe = append(st.Dedupe, DedupeEntry{
			SiteID: site,
			Epoch:  1 + uint32(rng.Intn(5)),
			MaxSeq: uint64(rng.Intn(1 << 20)),
		})
	}
	return st
}

// TestQuickCoordStateRoundTrip: Save → Load → Save is bit-identical for
// random checkpoint states — recovery reads back exactly the state the
// crashed coordinator persisted, floats and counters untouched.
func TestQuickCoordStateRoundTrip(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomCoordState(rng)
		var first bytes.Buffer
		if err := SaveCoordinatorState(&first, st); err != nil {
			t.Logf("seed %d: save: %v", seed, err)
			return false
		}
		got, err := LoadCoordinatorState(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Logf("seed %d: load: %v", seed, err)
			return false
		}
		var second bytes.Buffer
		if err := SaveCoordinatorState(&second, got); err != nil {
			t.Logf("seed %d: re-save: %v", seed, err)
			return false
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Logf("seed %d: round trip changed %d bytes", seed, len(first.Bytes()))
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCoordStateTruncationIsBadFormat: every strict prefix of a
// valid checkpoint — the file a crash mid-checkpoint-write could leave if
// the tmp+rename protocol were broken — must be rejected with an
// ErrBadFormat-wrapped error, never loaded as a shorter state.
func TestQuickCoordStateTruncationIsBadFormat(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		if err := SaveCoordinatorState(&buf, randomCoordState(rng)); err != nil {
			t.Logf("seed %d: save: %v", seed, err)
			return false
		}
		cut := rng.Intn(buf.Len())
		_, err := LoadCoordinatorState(bytes.NewReader(buf.Bytes()[:cut]))
		if err == nil {
			t.Logf("seed %d: %d-byte prefix of %d accepted", seed, cut, buf.Len())
			return false
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Logf("seed %d: prefix rejected with %v, want ErrBadFormat", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCoordStateBitFlipIsBadFormat: the whole-file CRC trailer means
// any single flipped bit — wherever it lands, including in the trailer
// itself — surfaces as ErrBadFormat rather than silently perturbing the
// recovered model.
func TestQuickCoordStateBitFlipIsBadFormat(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		if err := SaveCoordinatorState(&buf, randomCoordState(rng)); err != nil {
			t.Logf("seed %d: save: %v", seed, err)
			return false
		}
		data := append([]byte(nil), buf.Bytes()...)
		pos := rng.Intn(len(data))
		data[pos] ^= 1 << rng.Intn(8)
		_, err := LoadCoordinatorState(bytes.NewReader(data))
		if err == nil {
			t.Logf("seed %d: bit flip at byte %d of %d accepted", seed, pos, len(data))
			return false
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Logf("seed %d: bit flip rejected with %v, want ErrBadFormat", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzLoadCoordinatorState feeds arbitrary bytes to the checkpoint
// loader: it must never panic or over-allocate, every rejection must wrap
// ErrBadFormat, and accepted states must round-trip.
func FuzzLoadCoordinatorState(f *testing.F) {
	var buf bytes.Buffer
	if err := SaveCoordinatorState(&buf, randomCoordState(rand.New(rand.NewSource(1)))); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CLUC"))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadCoordinatorState(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("corrupted input rejected with %v, want an ErrBadFormat-wrapped error", err)
			}
			return
		}
		var out bytes.Buffer
		if err := SaveCoordinatorState(&out, got); err != nil {
			t.Fatalf("accepted state failed to save: %v", err)
		}
		if _, err := LoadCoordinatorState(&out); err != nil {
			t.Fatalf("re-load failed: %v", err)
		}
	})
}
