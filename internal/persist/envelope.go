package persist

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonEnvelope is the on-disk frame for the project's JSON documents
// (deterministic-simulation scenarios and failure artifacts): a format
// tag and version outside the payload, so readers can reject foreign or
// future files before parsing a byte of the body.
type jsonEnvelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

// SaveJSONEnvelope writes payload wrapped in a versioned envelope.
func SaveJSONEnvelope(w io.Writer, format string, version int, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("persist: encoding %s payload: %w", format, err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonEnvelope{Format: format, Version: version, Payload: body})
}

// LoadJSONEnvelope reads an envelope, requiring the given format tag and
// a version in [1, maxVersion], and returns the raw payload and its
// version. Malformed JSON, a foreign format tag, or an out-of-range
// version return ErrBadFormat-wrapped errors; I/O errors pass through.
func LoadJSONEnvelope(r io.Reader, format string, maxVersion int) (json.RawMessage, int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	var env jsonEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if env.Format != format {
		return nil, 0, fmt.Errorf("%w: format %q, want %q", ErrBadFormat, env.Format, format)
	}
	if env.Version < 1 || env.Version > maxVersion {
		return nil, 0, fmt.Errorf("%w: version %d, want 1..%d", ErrBadFormat, env.Version, maxVersion)
	}
	if len(env.Payload) == 0 {
		return nil, 0, fmt.Errorf("%w: missing payload", ErrBadFormat)
	}
	return env.Payload, env.Version, nil
}
