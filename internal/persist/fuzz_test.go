package persist

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the archive loader: it must never
// panic or over-allocate, every rejection must wrap ErrBadFormat (the
// input is in memory, so no genuine I/O error can occur), and accepted
// archives must round-trip.
func FuzzLoad(f *testing.F) {
	// Seed with a small real archive and corruptions of it.
	a := &SiteArchive{SiteID: 1, Dim: 2, ChunkSize: 10, ChunksSeen: 3}
	var buf bytes.Buffer
	if err := Save(&buf, a); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CLUD"))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[5] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("corrupted input rejected with %v, want an ErrBadFormat-wrapped error", err)
			}
			return
		}
		var out bytes.Buffer
		if err := Save(&out, got); err != nil {
			t.Fatalf("accepted archive failed to save: %v", err)
		}
		if _, err := Load(&out); err != nil {
			t.Fatalf("re-load failed: %v", err)
		}
	})
}
