// Package persist serializes CluDistream state for offline use: a
// SiteArchive captures everything a remote site has learned — its model
// list with counters and reference likelihoods, and its event table — in a
// versioned binary format. An archive answers the same evolving-analysis
// queries (Section 7) as the live site: which model governed chunk n, and
// what mixture covered any past window.
//
// The format is explicit little-endian binary (not gob) so files are
// stable across Go versions and readable from other languages.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"cludistream/internal/events"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
)

// Format constants.
var magic = [4]byte{'C', 'L', 'U', 'D'}

const version = 1

// ErrBadFormat is returned for files that are not CluDistream archives.
var ErrBadFormat = errors.New("persist: not a CluDistream archive")

// ArchivedModel is one model-list entry.
type ArchivedModel struct {
	ID       int
	RefAvgLL float64
	Counter  int
	Mixture  *gaussian.Mixture
}

// SiteArchive is a site's complete persisted state.
type SiteArchive struct {
	SiteID     int
	Dim        int
	ChunkSize  int
	ChunksSeen int
	Models     []ArchivedModel
	Events     []events.Entry
}

// FromSite captures a snapshot of a live site. The mixtures are shared
// (immutable), so the snapshot is cheap.
func FromSite(s *site.Site) *SiteArchive {
	a := &SiteArchive{
		SiteID:     s.ID(),
		ChunkSize:  s.ChunkSize(),
		ChunksSeen: s.ChunksSeen(),
		Events:     s.Events().All(),
	}
	for _, m := range s.Models() {
		if a.Dim == 0 {
			a.Dim = m.Mixture.Dim()
		}
		a.Models = append(a.Models, ArchivedModel{
			ID:       m.ID,
			RefAvgLL: m.RefAvgLL,
			Counter:  m.Counter,
			Mixture:  m.Mixture,
		})
	}
	return a
}

// Save writes the archive.
func Save(w io.Writer, a *SiteArchive) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	writeU32(bw, version)
	writeU32(bw, uint32(a.SiteID))
	writeU32(bw, uint32(a.Dim))
	writeU32(bw, uint32(a.ChunkSize))
	writeU32(bw, uint32(a.ChunksSeen))
	writeU32(bw, uint32(len(a.Models)))
	for _, m := range a.Models {
		writeU32(bw, uint32(m.ID))
		writeF64(bw, m.RefAvgLL)
		writeU32(bw, uint32(m.Counter))
		if err := writeMixture(bw, m.Mixture); err != nil {
			return err
		}
	}
	writeU32(bw, uint32(len(a.Events)))
	for _, e := range a.Events {
		writeU32(bw, uint32(e.ModelID))
		writeU32(bw, uint32(e.StartChunk))
		writeU32(bw, uint32(e.EndChunk))
	}
	return bw.Flush()
}

// Load reads an archive written by Save. Any input that is not a complete,
// well-formed archive — wrong magic, unknown version, truncation, or
// decoded values that cannot form a valid model — yields an error wrapping
// ErrBadFormat. Errors from the reader itself (a failing disk, a closed
// pipe) pass through untouched so callers can tell corruption from I/O.
func Load(r io.Reader) (*SiteArchive, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, readErr("magic", err)
	}
	if m != magic {
		return nil, badFormat("bad magic %q", m[:])
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, readErr("version", err)
	}
	if ver != version {
		return nil, badFormat("unsupported version %d", ver)
	}
	a := &SiteArchive{}
	if a.SiteID, err = readInt(br); err != nil {
		return nil, readErr("header", err)
	}
	if a.Dim, err = readInt(br); err != nil {
		return nil, readErr("header", err)
	}
	if a.ChunkSize, err = readInt(br); err != nil {
		return nil, readErr("header", err)
	}
	if a.ChunksSeen, err = readInt(br); err != nil {
		return nil, readErr("header", err)
	}
	nModels, err := readInt(br)
	if err != nil {
		return nil, readErr("model count", err)
	}
	if nModels < 0 || nModels > 1<<24 {
		return nil, badFormat("implausible model count %d", nModels)
	}
	for i := 0; i < nModels; i++ {
		var am ArchivedModel
		if am.ID, err = readInt(br); err != nil {
			return nil, readErr("model list", err)
		}
		if am.RefAvgLL, err = readF64(br); err != nil {
			return nil, readErr("model list", err)
		}
		if am.Counter, err = readInt(br); err != nil {
			return nil, readErr("model list", err)
		}
		if am.Mixture, err = readMixture(br); err != nil {
			return nil, fmt.Errorf("model %d: %w", am.ID, err)
		}
		a.Models = append(a.Models, am)
	}
	nEvents, err := readInt(br)
	if err != nil {
		return nil, readErr("event count", err)
	}
	if nEvents < 0 || nEvents > 1<<24 {
		return nil, badFormat("implausible event count %d", nEvents)
	}
	for i := 0; i < nEvents; i++ {
		var e events.Entry
		if e.ModelID, err = readInt(br); err != nil {
			return nil, readErr("event table", err)
		}
		if e.StartChunk, err = readInt(br); err != nil {
			return nil, readErr("event table", err)
		}
		if e.EndChunk, err = readInt(br); err != nil {
			return nil, readErr("event table", err)
		}
		a.Events = append(a.Events, e)
	}
	return a, nil
}

// ModelAt returns the id of the model governing the given chunk, falling
// back to the last model for the open span, and false when the chunk was
// never processed.
func (a *SiteArchive) ModelAt(chunk int) (int, bool) {
	if chunk < 1 || chunk > a.ChunksSeen {
		return 0, false
	}
	for _, e := range a.Events {
		if e.StartChunk <= chunk && chunk <= e.EndChunk {
			return e.ModelID, true
		}
	}
	if len(a.Models) == 0 {
		return 0, false
	}
	// Open span of the model that was current at snapshot time — the last
	// model in list order.
	return a.Models[len(a.Models)-1].ID, true
}

// WindowMixture rebuilds the mixture covering chunks [start, end] exactly
// as window.Mixture does on a live site. Returns nil for empty windows.
func (a *SiteArchive) WindowMixture(start, end int) *gaussian.Mixture {
	if start < 1 {
		start = 1
	}
	if end > a.ChunksSeen {
		end = a.ChunksSeen
	}
	if end < start || len(a.Models) == 0 {
		return nil
	}
	counts := map[int]int{}
	var order []int
	add := func(id, n int) {
		if n <= 0 {
			return
		}
		if _, seen := counts[id]; !seen {
			order = append(order, id)
		}
		counts[id] += n
	}
	lastClosed := 0
	for _, e := range a.Events {
		lo, hi := maxInt(e.StartChunk, start), minInt(e.EndChunk, end)
		add(e.ModelID, hi-lo+1)
		if e.EndChunk > lastClosed {
			lastClosed = e.EndChunk
		}
	}
	// Open span: (lastClosed, ChunksSeen] belongs to the final model.
	cur := a.Models[len(a.Models)-1]
	lo, hi := maxInt(lastClosed+1, start), minInt(a.ChunksSeen, end)
	add(cur.ID, hi-lo+1)

	byID := map[int]*ArchivedModel{}
	for i := range a.Models {
		byID[a.Models[i].ID] = &a.Models[i]
	}
	var comps []*gaussian.Component
	var weights []float64
	for _, id := range order {
		m := byID[id]
		if m == nil {
			continue
		}
		w := float64(counts[id] * a.ChunkSize)
		for j := 0; j < m.Mixture.K(); j++ {
			comps = append(comps, m.Mixture.Component(j))
			weights = append(weights, m.Mixture.Weight(j)*w)
		}
	}
	if len(comps) == 0 {
		return nil
	}
	mix, err := gaussian.NewMixture(weights, comps)
	if err != nil {
		return nil
	}
	return mix
}

// LandmarkMixture composes all models weighted by their counters.
func (a *SiteArchive) LandmarkMixture() *gaussian.Mixture {
	var comps []*gaussian.Component
	var weights []float64
	for _, m := range a.Models {
		for j := 0; j < m.Mixture.K(); j++ {
			comps = append(comps, m.Mixture.Component(j))
			weights = append(weights, m.Mixture.Weight(j)*float64(m.Counter))
		}
	}
	if len(comps) == 0 {
		return nil
	}
	mix, err := gaussian.NewMixture(weights, comps)
	if err != nil {
		return nil
	}
	return mix
}

// --- low-level encoding ---

func writeU32(w io.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:]) //nolint:errcheck — bufio defers errors to Flush
}

func writeF64(w io.Writer, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.Write(b[:]) //nolint:errcheck
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readInt(r io.Reader) (int, error) {
	v, err := readU32(r)
	return int(int32(v)), err
}

func readF64(r io.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func writeMixture(w io.Writer, m *gaussian.Mixture) error {
	if m == nil {
		return errors.New("persist: nil mixture")
	}
	k, d := m.K(), m.Dim()
	writeU32(w, uint32(k))
	writeU32(w, uint32(d))
	for j := 0; j < k; j++ {
		writeF64(w, m.Weight(j))
	}
	for j := 0; j < k; j++ {
		for _, v := range m.Component(j).Mean() {
			writeF64(w, v)
		}
	}
	for j := 0; j < k; j++ {
		for _, v := range m.Component(j).Cov().Packed() {
			writeF64(w, v)
		}
	}
	return nil
}

func readMixture(r io.Reader) (*gaussian.Mixture, error) {
	k, err := readInt(r)
	if err != nil {
		return nil, readErr("mixture header", err)
	}
	d, err := readInt(r)
	if err != nil {
		return nil, readErr("mixture header", err)
	}
	if k < 1 || d < 1 || k > 1<<20 || d > 1<<20 {
		return nil, badFormat("implausible mixture K=%d d=%d", k, d)
	}
	weights := make([]float64, k)
	for j := range weights {
		if weights[j], err = readF64(r); err != nil {
			return nil, readErr("mixture weights", err)
		}
	}
	means := make([]linalg.Vector, k)
	for j := range means {
		means[j] = linalg.NewVector(d)
		for i := 0; i < d; i++ {
			if means[j][i], err = readF64(r); err != nil {
				return nil, readErr("mixture means", err)
			}
		}
	}
	comps := make([]*gaussian.Component, k)
	for j := range comps {
		packed := make([]float64, linalg.PackedLen(d))
		for i := range packed {
			if packed[i], err = readF64(r); err != nil {
				return nil, readErr("mixture covariances", err)
			}
		}
		c, err := gaussian.NewComponent(means[j], linalg.SymFromPacked(d, packed), 0)
		if err != nil {
			return nil, badFormat("invalid component: %v", err)
		}
		comps[j] = c
	}
	mix, err := gaussian.NewMixture(weights, comps)
	if err != nil {
		return nil, badFormat("invalid mixture: %v", err)
	}
	return mix, nil
}

// badFormat reports malformed input, wrapping ErrBadFormat with detail.
func badFormat(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadFormat}, args...)...)
}

// readErr classifies a failed low-level read: running out of bytes means
// the input is a truncated archive (ErrBadFormat); anything else is a
// genuine I/O failure and passes through untouched.
func readErr(what string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return badFormat("truncated reading %s", what)
	}
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
