package persist

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/window"
)

func builtSite(t *testing.T) *site.Site {
	t.Helper()
	s, err := site.New(site.Config{
		SiteID: 3, Dim: 1, K: 2, Epsilon: 0.1, FitEps: 0.8, Delta: 0.01,
		Seed: 1, ChunkSize: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	regime := func(mean float64) *gaussian.Mixture {
		return gaussian.MustMixture(
			[]float64{0.5, 0.5},
			[]*gaussian.Component{
				gaussian.Spherical(linalg.Vector{mean - 2}, 0.5),
				gaussian.Spherical(linalg.Vector{mean + 2}, 0.5),
			})
	}
	for _, mean := range []float64{0, 50, -50} {
		for i := 0; i < 200*3; i++ {
			if _, err := s.Observe(regime(mean).Sample(rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := builtSite(t)
	a := FromSite(s)
	var buf bytes.Buffer
	if err := Save(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SiteID != 3 || got.Dim != 1 || got.ChunkSize != 200 || got.ChunksSeen != 9 {
		t.Fatalf("header = %+v", got)
	}
	if len(got.Models) != len(a.Models) {
		t.Fatalf("models = %d, want %d", len(got.Models), len(a.Models))
	}
	for i := range a.Models {
		am, gm := a.Models[i], got.Models[i]
		if am.ID != gm.ID || am.Counter != gm.Counter || am.RefAvgLL != gm.RefAvgLL {
			t.Fatalf("model %d metadata differs", i)
		}
		for j := 0; j < am.Mixture.K(); j++ {
			if !am.Mixture.Component(j).Equal(gm.Mixture.Component(j), 0) {
				t.Fatalf("model %d component %d differs", i, j)
			}
			if am.Mixture.Weight(j) != gm.Mixture.Weight(j) {
				t.Fatalf("model %d weight %d differs", i, j)
			}
		}
	}
	if len(got.Events) != len(a.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(a.Events))
	}
	for i := range a.Events {
		if got.Events[i] != a.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestArchiveAnswersSameQueriesAsLiveSite(t *testing.T) {
	s := builtSite(t)
	a := FromSite(s)
	var buf bytes.Buffer
	if err := Save(&buf, a); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// ModelAt parity across every chunk.
	for chunk := 1; chunk <= s.ChunksSeen(); chunk++ {
		liveID, liveOK := s.Events().ModelAt(chunk)
		if !liveOK && s.Current() != nil {
			liveID = s.Current().ID
		}
		gotID, ok := loaded.ModelAt(chunk)
		if !ok {
			t.Fatalf("archive has no model for chunk %d", chunk)
		}
		if gotID != liveID {
			t.Fatalf("chunk %d: archive model %d vs live %d", chunk, gotID, liveID)
		}
	}
	if _, ok := loaded.ModelAt(0); ok {
		t.Fatal("chunk 0 should be out of range")
	}
	if _, ok := loaded.ModelAt(100); ok {
		t.Fatal("future chunk should be out of range")
	}

	// WindowMixture parity with the live window package on several windows.
	for _, w := range [][2]int{{1, 3}, {4, 6}, {2, 8}, {1, 9}} {
		live := window.Mixture(s, w[0], w[1])
		arch := loaded.WindowMixture(w[0], w[1])
		if (live == nil) != (arch == nil) {
			t.Fatalf("window %v: nil mismatch", w)
		}
		if live == nil {
			continue
		}
		if live.K() != arch.K() {
			t.Fatalf("window %v: K %d vs %d", w, arch.K(), live.K())
		}
		probe := []linalg.Vector{{0}, {50}, {-50}}
		if math.Abs(live.AvgLogLikelihood(probe)-arch.AvgLogLikelihood(probe)) > 1e-12 {
			t.Fatalf("window %v: likelihoods differ", w)
		}
	}

	// Landmark parity.
	liveLM := s.LandmarkMixture()
	archLM := loaded.LandmarkMixture()
	if liveLM.K() != archLM.K() {
		t.Fatalf("landmark K %d vs %d", archLM.K(), liveLM.K())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage magic accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Wrong version.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := Load(&buf); err == nil {
		t.Fatal("future version accepted")
	}
	// Truncated archive.
	s := builtSite(t)
	var full bytes.Buffer
	if err := Save(&full, FromSite(s)); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{5, 20, full.Len() / 2, full.Len() - 1} {
		if _, err := Load(bytes.NewReader(full.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestEmptyArchive(t *testing.T) {
	a := &SiteArchive{SiteID: 1, Dim: 2, ChunkSize: 100}
	var buf bytes.Buffer
	if err := Save(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.LandmarkMixture() != nil {
		t.Fatal("empty archive produced a mixture")
	}
	if got.WindowMixture(1, 10) != nil {
		t.Fatal("empty archive produced a window mixture")
	}
	if _, ok := got.ModelAt(1); ok {
		t.Fatal("empty archive claims a model")
	}
}
