package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"cludistream/internal/events"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
)

// randomMixture builds a mixture whose serialization is a fixed point of
// Save/Load. Weights are dyadic rationals n/2^20 summing to exactly 2^20
// numerator total, so every weight and every partial sum is exact in
// float64 and NewMixture's re-normalization on load divides by exactly
// 1.0. Covariances are strictly diagonally dominant, so the Cholesky in
// NewComponent succeeds and the matrix is stored verbatim, never repaired.
func randomMixture(rng *rand.Rand, d int) *gaussian.Mixture {
	const denom = 1 << 20
	k := 1 + rng.Intn(3)
	weights := make([]float64, k)
	rem := denom
	for j := 0; j < k; j++ {
		n := rem
		if j < k-1 {
			n = rng.Intn(rem + 1)
			rem -= n
		}
		weights[j] = float64(n) / denom
	}
	comps := make([]*gaussian.Component, k)
	for j := range comps {
		mean := linalg.NewVector(d)
		for i := range mean {
			mean[i] = rng.NormFloat64() * 100
		}
		cov := linalg.NewSym(d)
		for i := 0; i < d; i++ {
			cov.Set(i, i, 1+rng.Float64()*4)
			for l := 0; l < i; l++ {
				cov.Set(i, l, (rng.Float64()-0.5)*0.2)
			}
		}
		comps[j] = gaussian.MustComponent(mean, cov)
	}
	return gaussian.MustMixture(weights, comps)
}

// randomArchive builds an arbitrary but valid SiteArchive.
func randomArchive(rng *rand.Rand) *SiteArchive {
	d := 1 + rng.Intn(3)
	a := &SiteArchive{
		SiteID:     1 + rng.Intn(100),
		Dim:        d,
		ChunkSize:  50 + rng.Intn(500),
		ChunksSeen: rng.Intn(1000),
	}
	nModels := 1 + rng.Intn(4)
	for id := 1; id <= nModels; id++ {
		a.Models = append(a.Models, ArchivedModel{
			ID:       id,
			RefAvgLL: rng.NormFloat64() * 10,
			Counter:  rng.Intn(1 << 20),
			Mixture:  randomMixture(rng, d),
		})
	}
	start := 1
	for i, n := 0, rng.Intn(5); i < n; i++ {
		end := start + rng.Intn(10)
		a.Events = append(a.Events, events.Entry{
			ModelID:    1 + rng.Intn(nModels),
			StartChunk: start,
			EndChunk:   end,
		})
		start = end + 1
	}
	return a
}

// TestQuickSaveLoadRoundTrip: for random archives, Save → Load → Save is
// bit-identical — the loaded archive serializes to the very bytes it was
// read from, so nothing is lost or perturbed by a round trip.
func TestQuickSaveLoadRoundTrip(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomArchive(rng)
		var first bytes.Buffer
		if err := Save(&first, a); err != nil {
			t.Logf("seed %d: save: %v", seed, err)
			return false
		}
		got, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Logf("seed %d: load: %v", seed, err)
			return false
		}
		var second bytes.Buffer
		if err := Save(&second, got); err != nil {
			t.Logf("seed %d: re-save: %v", seed, err)
			return false
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Logf("seed %d: round trip changed %d bytes", seed, len(first.Bytes()))
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTruncationIsBadFormat: every strict prefix of a valid archive
// must be rejected with an ErrBadFormat-wrapped error — in-memory input
// has no genuine I/O failures, so nothing else may surface.
func TestQuickTruncationIsBadFormat(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		if err := Save(&buf, randomArchive(rng)); err != nil {
			t.Logf("seed %d: save: %v", seed, err)
			return false
		}
		cut := rng.Intn(buf.Len())
		_, err := Load(bytes.NewReader(buf.Bytes()[:cut]))
		if !errors.Is(err, ErrBadFormat) {
			t.Logf("seed %d: cut at %d/%d: error %v, want ErrBadFormat", seed, cut, buf.Len(), err)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
