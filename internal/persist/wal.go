package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Write-ahead log format: a header (magic "CLUW", version, the checkpoint
// generation the log extends) followed by CRC-framed records, one per
// message applied since that checkpoint:
//
//	[len u32][crc32(payload) u32][payload]
//
// Replay is prefix-tolerant: a torn final record — the half-written frame
// a crash leaves behind — terminates replay silently (its byte count is
// reported so recovery can log it), while a corrupted *header* is a
// foreign or damaged file and returns ErrBadFormat. The per-record CRC
// guarantees replayed records are exactly the bytes appended: a record
// either replays intact or ends the log, never mutates.

var walMagic = [4]byte{'C', 'L', 'U', 'W'}

const (
	walVersion = 1
	// walHeaderSize is magic + version + generation.
	walHeaderSize = 4 + 4 + 8
	// walMaxRecord caps one record, matching netio's frame cap.
	walMaxRecord = 64 << 20
)

// FsyncMode selects the WAL durability/throughput trade-off.
type FsyncMode string

const (
	// FsyncAlways flushes and syncs after every record: an acknowledged
	// message is durable before the ack. The default.
	FsyncAlways FsyncMode = "always"
	// FsyncInterval syncs every Nth record: a crash can lose up to N-1
	// acknowledged messages.
	FsyncInterval FsyncMode = "interval"
	// FsyncNever leaves syncing to the OS (and Close): fastest, weakest.
	FsyncNever FsyncMode = "never"
)

// ParseFsyncMode validates a -fsync flag value; empty selects FsyncAlways.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch FsyncMode(s) {
	case "":
		return FsyncAlways, nil
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncMode(s), nil
	}
	return "", fmt.Errorf("persist: unknown fsync mode %q (want always, interval or never)", s)
}

// WAL is an append-only write-ahead log of applied coordinator messages.
// Not safe for concurrent use; the coordinator applies under a mutex and
// appends under the same one.
type WAL struct {
	f         *os.File
	w         *bufio.Writer
	mode      FsyncMode
	interval  int
	sinceSync int
	gen       uint64
	records   int
	bytes     int64
}

// CreateWAL creates (truncating) the log at path for the given checkpoint
// generation. interval is the records-per-sync cadence for FsyncInterval
// (default 32; ignored otherwise).
func CreateWAL(path string, gen uint64, mode FsyncMode, interval int) (*WAL, error) {
	if mode == "" {
		mode = FsyncAlways
	}
	if interval <= 0 {
		interval = 32
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f, w: bufio.NewWriter(f), mode: mode, interval: interval, gen: gen}
	if _, err := w.w.Write(walMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	writeU32(w.w, walVersion)
	writeU64(w.w, gen)
	if err := w.sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append logs one applied payload, syncing per the fsync mode.
func (w *WAL) Append(payload []byte) error {
	if len(payload) == 0 {
		// A zero-length record is indistinguishable from a zero-filled
		// torn tail (crc32("") == 0), so the format forbids it.
		return fmt.Errorf("persist: empty WAL record")
	}
	if len(payload) > walMaxRecord {
		return fmt.Errorf("persist: WAL record of %d bytes exceeds cap %d", len(payload), walMaxRecord)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.records++
	w.bytes += int64(len(hdr) + len(payload))
	switch w.mode {
	case FsyncAlways:
		return w.sync()
	case FsyncInterval:
		w.sinceSync++
		if w.sinceSync >= w.interval {
			return w.sync()
		}
	}
	return nil
}

func (w *WAL) sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	w.sinceSync = 0
	return w.f.Sync()
}

// Sync flushes buffered records and fsyncs the file.
func (w *WAL) Sync() error { return w.sync() }

// Records returns the number of records appended.
func (w *WAL) Records() int { return w.records }

// Bytes returns the record bytes appended (header included).
func (w *WAL) Bytes() int64 { return w.bytes }

// Gen returns the checkpoint generation this log extends.
func (w *WAL) Gen() uint64 { return w.gen }

// Close flushes, syncs and closes the log.
func (w *WAL) Close() error {
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Crash closes the file descriptor without flushing the write buffer —
// the test hook that models a process crash: records not yet flushed by
// the fsync mode are lost, exactly as an unsynced page cache would be.
func (w *WAL) Crash() error { return w.f.Close() }

// ReadWAL parses a log's bytes: header, then records until the data ends.
// A torn tail — a final record whose frame is incomplete, implausible, or
// fails its CRC — ends replay; its length comes back in torn. A missing
// or foreign header returns an error wrapping ErrBadFormat. The returned
// slices alias data.
func ReadWAL(data []byte) (gen uint64, records [][]byte, torn int, err error) {
	if len(data) < walHeaderSize {
		return 0, nil, 0, badFormat("truncated WAL header (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != walMagic {
		return 0, nil, 0, badFormat("bad WAL magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != walVersion {
		return 0, nil, 0, badFormat("unsupported WAL version %d", v)
	}
	gen = binary.LittleEndian.Uint64(data[8:])
	rest := data[walHeaderSize:]
	for len(rest) > 0 {
		if len(rest) < 8 {
			return gen, records, len(rest), nil
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n == 0 || n > walMaxRecord || int(n) > len(rest)-8 {
			return gen, records, len(rest), nil
		}
		payload := rest[8 : 8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			// Bit rot mid-record; the length fields beyond it cannot be
			// trusted, so everything from here is tail.
			return gen, records, len(rest), nil
		}
		records = append(records, payload)
		rest = rest[8+int(n):]
	}
	return gen, records, 0, nil
}

// ReadWALFile reads and parses the log at path (see ReadWAL).
func ReadWALFile(path string) (gen uint64, records [][]byte, torn int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, 0, err
	}
	return ReadWAL(data)
}
