package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// walFixture writes a WAL of n random records and returns the file's
// bytes plus the records appended.
func walFixture(t testing.TB, rng *rand.Rand, n int, mode FsyncMode) ([]byte, [][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path, 7, mode, 0)
	if err != nil {
		t.Fatal(err)
	}
	records := make([][]byte, n)
	for i := range records {
		rec := make([]byte, 1+rng.Intn(64))
		rng.Read(rec)
		records[i] = rec
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, records
}

// isPrefix reports whether got is a record-for-record prefix of want.
func isPrefix(got, want [][]byte) bool {
	if len(got) > len(want) {
		return false
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			return false
		}
	}
	return true
}

func TestWALAppendReadRoundTrip(t *testing.T) {
	data, want := walFixture(t, rand.New(rand.NewSource(1)), 25, FsyncAlways)
	gen, got, torn, err := ReadWAL(data)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 {
		t.Fatalf("gen = %d, want 7", gen)
	}
	if torn != 0 {
		t.Fatalf("torn = %d on a cleanly closed log", torn)
	}
	if len(got) != len(want) || !isPrefix(got, want) {
		t.Fatalf("replayed %d records, want %d identical", len(got), len(want))
	}
}

func TestWALRejectsEmptyAndOversizedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path, 1, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// crc32("") == 0 makes an empty record indistinguishable from a
	// zero-filled torn tail, so the format forbids it outright.
	if err := w.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if err := w.Append(make([]byte, walMaxRecord+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if w.Records() != 0 {
		t.Fatalf("rejected appends counted: %d", w.Records())
	}
}

// TestQuickWALTruncationIsPrefix is the torn-tail contract: cutting a
// valid log at ANY byte offset must replay a record-for-record prefix of
// what was appended, reporting the leftover bytes as torn — or reject the
// cut as ErrBadFormat when it lands inside the header. No offset may
// produce a record that was never appended.
func TestQuickWALTruncationIsPrefix(t *testing.T) {
	data, want := walFixture(t, rand.New(rand.NewSource(2)), 20, FsyncAlways)
	property := func(seed int64) bool {
		cut := int(uint64(seed) % uint64(len(data)+1))
		gen, got, torn, err := ReadWAL(data[:cut])
		if cut < walHeaderSize {
			if err == nil || !errors.Is(err, ErrBadFormat) {
				t.Logf("cut %d inside header: err = %v, want ErrBadFormat", cut, err)
				return false
			}
			return true
		}
		if err != nil {
			t.Logf("cut %d: unexpected error %v", cut, err)
			return false
		}
		if gen != 7 {
			t.Logf("cut %d: gen = %d", cut, gen)
			return false
		}
		if !isPrefix(got, want) {
			t.Logf("cut %d: replay is not a prefix (%d records)", cut, len(got))
			return false
		}
		// Byte accounting: everything after the header is either a
		// replayed frame or torn tail.
		consumed := walHeaderSize
		for _, r := range got {
			consumed += 8 + len(r)
		}
		if consumed+torn != cut {
			t.Logf("cut %d: consumed %d + torn %d != %d", cut, consumed, torn, cut)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWALBitFlipNeverMutatesARecord: flipping any single bit in the
// record region ends replay at or before the damaged frame — the
// per-record CRC means a record either replays intact or becomes tail,
// never comes back altered.
func TestQuickWALBitFlipNeverMutatesARecord(t *testing.T) {
	data, want := walFixture(t, rand.New(rand.NewSource(3)), 20, FsyncAlways)
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mut := append([]byte(nil), data...)
		pos := walHeaderSize + rng.Intn(len(mut)-walHeaderSize)
		mut[pos] ^= 1 << rng.Intn(8)
		_, got, _, err := ReadWAL(mut)
		if err != nil {
			t.Logf("seed %d: record-region flip at %d errored: %v", seed, pos, err)
			return false
		}
		if !isPrefix(got, want) {
			t.Logf("seed %d: flip at %d produced a non-prefix replay", seed, pos)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWALHeaderCorruptionIsBadFormat(t *testing.T) {
	data, _ := walFixture(t, rand.New(rand.NewSource(4)), 3, FsyncAlways)
	for _, corrupt := range [][]byte{
		{},
		data[:walHeaderSize-1],
		append([]byte("XLUW"), data[4:]...), // wrong magic
		append(append([]byte{}, data[:4]...), 0xFF, 0xFF), // wrong version, truncated
	} {
		if _, _, _, err := ReadWAL(corrupt); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("header corruption (%d bytes) rejected with %v, want ErrBadFormat", len(corrupt), err)
		}
	}
}

// TestWALCrashDurabilityByMode pins the fsync-policy contract: after
// Crash() — close without flushing, the test model of a process kill —
// FsyncAlways has persisted every appended record, FsyncInterval every
// record up to the last sync boundary, and FsyncNever only what bufio
// happened to spill. In every mode the survivors are a strict prefix.
func TestWALCrashDurabilityByMode(t *testing.T) {
	appendAndCrash := func(t *testing.T, mode FsyncMode, interval, n int) ([][]byte, [][]byte) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "wal.log")
		w, err := CreateWAL(path, 1, mode, interval)
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, n)
		for i := range want {
			want[i] = []byte{byte(i), byte(i >> 8), 0xAB}
			if err := w.Append(want[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Crash(); err != nil {
			t.Fatal(err)
		}
		_, got, _, err := ReadWALFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return got, want
	}

	t.Run("always", func(t *testing.T) {
		got, want := appendAndCrash(t, FsyncAlways, 0, 10)
		if len(got) != len(want) || !isPrefix(got, want) {
			t.Fatalf("FsyncAlways lost records through a crash: %d of %d", len(got), len(want))
		}
	})
	t.Run("interval", func(t *testing.T) {
		got, want := appendAndCrash(t, FsyncInterval, 4, 10)
		// Syncs fire after records 4 and 8; 9 and 10 die in the buffer.
		if len(got) != 8 || !isPrefix(got, want) {
			t.Fatalf("FsyncInterval(4) recovered %d of 10 records, want 8", len(got))
		}
	})
	t.Run("never", func(t *testing.T) {
		got, want := appendAndCrash(t, FsyncNever, 0, 10)
		if !isPrefix(got, want) {
			t.Fatalf("FsyncNever crash recovery is not a prefix: %d records", len(got))
		}
	})
}

// FuzzReadWAL feeds arbitrary bytes to the WAL parser: no panics, every
// rejection wraps ErrBadFormat, and on acceptance the frame accounting
// must be exact — every input byte is header, a replayed frame, or torn.
func FuzzReadWAL(f *testing.F) {
	data, _ := walFixture(f, rand.New(rand.NewSource(5)), 5, FsyncAlways)
	f.Add(data)
	f.Add([]byte{})
	f.Add(data[:walHeaderSize])
	f.Add(data[:len(data)-3])
	flipped := append([]byte(nil), data...)
	flipped[walHeaderSize+2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, in []byte) {
		_, records, torn, err := ReadWAL(in)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("rejected with %v, want an ErrBadFormat-wrapped error", err)
			}
			return
		}
		consumed := walHeaderSize
		for _, r := range records {
			if len(r) == 0 {
				t.Fatal("empty record replayed — the format forbids them")
			}
			consumed += 8 + len(r)
		}
		if consumed+torn != len(in) {
			t.Fatalf("accounting: %d consumed + %d torn != %d input", consumed, torn, len(in))
		}
	})
}
