package query

import (
	"math/rand"
	"sync"
	"testing"

	"cludistream/internal/coordinator"
	"cludistream/internal/gaussian"
	"cludistream/internal/linalg"
	"cludistream/internal/site"
	"cludistream/internal/telemetry"
)

// benchSites is how many sites feed the benchmarked coordinator.
const benchSites = 8

// clusteredMixture draws a 3-component site mixture whose means jitter
// around fixed well-separated centers — the steady-state shape of a real
// deployment, where sites see the same underlying clusters and the
// coordinator's grouping keeps the global K bounded (rather than letting
// every update mint fresh far-apart components and grow K without limit).
func clusteredMixture(rng *rand.Rand, dim int) *gaussian.Mixture {
	comps := make([]*gaussian.Component, 3)
	ws := make([]float64, 3)
	for j := range comps {
		center := float64(rng.Intn(4)) * 20
		mean := make(linalg.Vector, dim)
		for d := range mean {
			mean[d] = center + rng.NormFloat64()*0.1
		}
		comps[j] = gaussian.Spherical(mean, 1)
		ws[j] = 0.5 + rng.Float64()
	}
	return gaussian.MustMixture(ws, comps)
}

// startIngest spins up the writer side of the Mqps claim: a goroutine
// that keeps replacing site models (reset + re-cluster, the drift case)
// and republishing the mixture, so the benchmarked read path runs
// against a snapshot stream that is actually churning through merges,
// splits and remerges.
func startIngest(b *testing.B, p *Publisher, c *coordinator.Coordinator, dim int) func() {
	b.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := 1 + i%benchSites
			c.ResetSite(s)
			_ = c.HandleUpdate(site.Update{SiteID: s, ModelID: 1, Kind: site.NewModel,
				Mixture: clusteredMixture(rng, dim), Count: 80})
			if _, err := p.Publish(c.GlobalMixture(), c.MixtureVersion(), c.TotalWeight()); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	return func() { close(stop); wg.Wait() }
}

// benchSetup builds a published snapshot (dim=4, a realistic global K),
// asserts the read op is allocation-free while everything is still
// quiet, then starts the concurrent ingest+remerge+publish churn.
func benchSetup(b *testing.B, assertZeroAlloc func(q *Querier, x []float64)) (*Publisher, func()) {
	b.Helper()
	const dim = 4
	rng := rand.New(rand.NewSource(42))
	c, err := coordinator.New(coordinator.Config{Dim: dim, Merge: gaussian.MergeOptions{MomentOnly: true}})
	if err != nil {
		b.Fatal(err)
	}
	for s := 1; s <= benchSites; s++ {
		u := site.Update{SiteID: s, ModelID: 1, Kind: site.NewModel,
			Mixture: clusteredMixture(rng, dim), Count: 100}
		if err := c.HandleUpdate(u); err != nil {
			b.Fatal(err)
		}
	}
	p := NewPublisher(Options{Telemetry: telemetry.NewRegistry()})
	sn := publishCoord(b, p, c)
	b.Logf("serving K=%d components, dim=%d", sn.K(), dim)

	// The 0 allocs/op gate: measured before the churn starts, because
	// AllocsPerRun counts process-global allocations and the writer
	// goroutine legitimately allocates snapshots.
	q := p.NewQuerier()
	x := randPoint(rng, dim)
	assertZeroAlloc(q, x)

	stopIngest := startIngest(b, p, c, dim)
	return p, stopIngest
}

// queryPoints pre-generates query points so the timed loop does no rng
// work; readers stride through them.
func queryPoints(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = randPoint(rng, dim)
	}
	return pts
}

// BenchmarkQueryClassify is the acceptance benchmark: argmax-posterior
// classification through the RCU snapshot at 0 allocs/op while ingest,
// remerge and publication churn underneath. Run with -cpu 1,2,4 to see
// the linear scaling claim; the qps metric is aggregate across readers.
func BenchmarkQueryClassify(b *testing.B) {
	p, stop := benchSetup(b, func(q *Querier, x []float64) {
		q.Classify(x) // warm scratch
		if allocs := testing.AllocsPerRun(500, func() { q.Classify(x) }); allocs != 0 {
			b.Fatalf("Classify allocates %v per op, want 0", allocs)
		}
	})
	defer stop()
	pts := queryPoints(1024, 4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		q := p.NewQuerier()
		defer q.Flush()
		i := 0
		for pb.Next() {
			if _, ok := q.Classify(pts[i&1023]); !ok {
				b.Error("no snapshot")
				return
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkQueryDensity: log-likelihood evaluation under churn.
func BenchmarkQueryDensity(b *testing.B) {
	p, stop := benchSetup(b, func(q *Querier, x []float64) {
		q.LogDensity(x)
		if allocs := testing.AllocsPerRun(500, func() { q.LogDensity(x) }); allocs != 0 {
			b.Fatalf("LogDensity allocates %v per op, want 0", allocs)
		}
	})
	defer stop()
	pts := queryPoints(1024, 4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		q := p.NewQuerier()
		defer q.Flush()
		i := 0
		for pb.Next() {
			if _, ok := q.LogDensity(pts[i&1023]); !ok {
				b.Error("no snapshot")
				return
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkQueryTopK: kd-indexed nearest-components under churn.
func BenchmarkQueryTopK(b *testing.B) {
	p, stop := benchSetup(b, func(q *Querier, x []float64) {
		q.TopK(x, 4)
		if allocs := testing.AllocsPerRun(500, func() { q.TopK(x, 4) }); allocs != 0 {
			b.Fatalf("TopK allocates %v per op, want 0", allocs)
		}
	})
	defer stop()
	pts := queryPoints(1024, 4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		q := p.NewQuerier()
		defer q.Flush()
		i := 0
		for pb.Next() {
			if _, ok := q.TopK(pts[i&1023], 4); !ok {
				b.Error("no snapshot")
				return
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}
